// Command sperke-loadgen drives K concurrent simulated viewers against
// one tiled DASH origin, exercising the sharded chunk store under real
// HTTP concurrency while each viewer's QoE stays seed-deterministic.
// It prints aggregate QoE, the fetch-latency distribution and the chunk
// store's hit/miss accounting — the E19 loadgen sweep.
//
// Usage:
//
//	sperke-loadgen                      # 8 viewers, in-process origin
//	sperke-loadgen -sessions 32 -workers 8
//	sperke-loadgen -url http://host:8360  # aim at an external origin
//	sperke-loadgen -no-http             # pure simulation, no HTTP leg
//	sperke-loadgen -nodes 3             # edge/origin cluster topology
//	sperke-loadgen -nodes 3 -kill-at 10s -recover-at 20s  # chaos run
//	sperke-loadgen -nodes 3 -wire -replicas 2  # real listeners, R=2
//	sperke-loadgen -nodes 3 -add-node-at 15s   # live membership growth
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sperke/internal/cluster"
	"sperke/internal/core"
	"sperke/internal/dash"
	"sperke/internal/hmp"
	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/serve"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	sessions := flag.Int("sessions", 8, "number of simulated viewers")
	workers := flag.Int("workers", 0, "concurrent sessions (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "base seed; viewer i uses seed+i")
	mbps := flag.Float64("bandwidth", 25, "per-viewer emulated link in Mbit/s")
	dur := flag.Duration("duration", 60*time.Second, "video duration")
	chunk := flag.Duration("chunk", 2*time.Second, "chunk duration")
	url := flag.String("url", "", "external origin URL (empty = in-process origin)")
	noHTTP := flag.Bool("no-http", false, "skip the HTTP leg; pure simulation")
	storeMB := flag.Int("store-budget-mb", 256, "in-process store byte budget in MiB")
	storeShards := flag.Int("store-shards", 16, "in-process store shard count")
	agnostic := flag.Bool("agnostic", false, "stream FoV-agnostic instead of FoV-guided")
	nodes := flag.Int("nodes", 0, "edge nodes in front of the origin (0 = no cluster tier)")
	wire := flag.Bool("wire", false, "run each edge as a real HTTP process on its own loopback listener")
	replicas := flag.Int("replicas", 1, "rendezvous owners per chunk key (R>1 = replication)")
	coalesce := flag.Bool("coalesce", true, "collapse concurrent same-key cold misses at the cluster router")
	prewarm := flag.Int("prewarm", 0, "crowd-prior pre-warm fanout per served chunk (0 = off; needs -nodes)")
	addNodeAt := flag.Duration("add-node-at", 0, "grow the cluster by one edge this long into the run (0 = never)")
	killAt := flag.Duration("kill-at", 0, "crash -kill-node this long into the run (0 = never)")
	recoverAt := flag.Duration("recover-at", 0, "restart the killed node this long into the run (0 = never)")
	killNode := flag.String("kill-node", "edge-1", "cluster node to crash at -kill-at")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	video := &media.Video{
		ID:             "demo",
		Duration:       *dur,
		ChunkDuration:  *chunk,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}
	reg := obs.NewRegistry()

	var client *dash.Client
	var store *serve.Store
	var clu *cluster.Cluster
	if !*noHTTP {
		base := *url
		if base == "" {
			catalog := dash.NewCatalog()
			if err := catalog.Add(video); err != nil {
				return err
			}
			store = serve.NewCatalogStore(catalog, serve.StoreConfig{
				Shards:      *storeShards,
				BudgetBytes: int64(*storeMB) << 20,
				Obs:         reg,
			})
			var handler http.Handler
			if *nodes > 0 {
				// Cluster topology: N edge caches rendezvous-route in front
				// of the catalog store, which becomes the origin tier.
				opts := []cluster.Option{
					cluster.WithNodes(*nodes),
					cluster.WithCatalog(catalog),
					cluster.WithNodeShards(*storeShards),
					cluster.WithNodeBudget(int64(*storeMB) << 20 / int64(*nodes)),
					cluster.WithReplication(*replicas),
					cluster.WithWire(*wire),
					cluster.WithCoalescing(*coalesce),
					cluster.WithObs(reg),
				}
				if *prewarm > 0 {
					// The crowd prior is built from the exact head traces
					// this run's viewers will follow (same seeds, same
					// recipe), so the pre-warm tier sees the correlation
					// §3.2 measures on real crowds.
					heat := hmp.BuildHeatmap(video.Grid, sphere.Equirectangular{},
						sphere.DefaultFoV, video.ChunkDuration, video.Duration,
						serve.SessionTraces(serve.EngineConfig{
							Video: video, Sessions: *sessions, BaseSeed: *seed,
						}))
					opts = append(opts, cluster.WithPrewarm(heat, *prewarm))
				}
				var err error
				clu, err = cluster.New(store, opts...)
				if err != nil {
					return err
				}
				defer clu.Close()
				clu.StartProbes(ctx)
				handler = clu.FrontDoor()
				if *addNodeAt > 0 {
					time.AfterFunc(*addNodeAt, func() {
						n, err := clu.AddNode("")
						if err != nil {
							fmt.Printf("!! add node at +%v failed: %v\n", *addNodeAt, err)
							return
						}
						fmt.Printf("!! added %s at +%v\n", n.ID(), *addNodeAt)
					})
				}
				if *killAt > 0 {
					name := *killNode
					time.AfterFunc(*killAt, func() {
						fmt.Printf("!! killing %s at +%v\n", name, *killAt)
						clu.KillNode(name)
					})
					if *recoverAt > *killAt {
						time.AfterFunc(*recoverAt, func() {
							fmt.Printf("!! recovering %s at +%v\n", name, *recoverAt)
							clu.RecoverNode(name)
						})
					}
				}
			} else {
				handler = dash.NewServer(catalog, dash.WithObs(reg), dash.WithStore(store))
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			httpSrv := &http.Server{Handler: handler}
			go httpSrv.Serve(ln)
			defer httpSrv.Close()
			base = "http://" + ln.Addr().String()
			if clu != nil {
				form := "in-process"
				if clu.Wire() {
					form = "wire"
				}
				fmt.Printf("%s %d-edge cluster (R=%d) at %s (origin: %d shards, %d MiB budget)\n",
					form, *nodes, clu.Replication(), base, store.Shards(), *storeMB)
			} else {
				fmt.Printf("in-process origin at %s (%d shards, %d MiB budget)\n",
					base, store.Shards(), *storeMB)
			}
		}
		client = dash.NewClient(base)
		client.Obs = reg
	}

	mode := core.FoVGuided
	if *agnostic {
		mode = core.FoVAgnostic
	}
	eng, err := serve.NewEngine(serve.EngineConfig{
		Video:        video,
		Sessions:     *sessions,
		Workers:      *workers,
		BaseSeed:     *seed,
		BandwidthBPS: *mbps * 1e6,
		Mode:         mode,
		Client:       client,
		Obs:          reg,
	})
	if err != nil {
		return err
	}

	fmt.Printf("driving %d viewers (%d workers) over a %.0f Mbit/s emulated link each\n",
		*sessions, effectiveWorkers(*workers, *sessions), *mbps)
	res := eng.Run(ctx)

	for _, sr := range res.Sessions {
		if sr.Err != nil {
			return sr.Err
		}
	}
	a := res.Agg
	fmt.Printf("\ncompleted %d sessions in %v wall\n", a.Sessions, res.Wall.Round(time.Millisecond))
	fmt.Printf("  mean FoV quality %.2f   mean QoE score %.3f\n", a.MeanQuality, a.MeanScore)
	fmt.Printf("  stalls %d (%v)   blank %v   urgent fetches %d\n",
		a.Stalls, a.StallTime.Round(time.Millisecond), a.BlankTime.Round(time.Millisecond), a.UrgentFetches)
	fmt.Printf("  fetched %.1f MB (%.1f MB wasted)\n",
		float64(a.BytesFetched)/1e6, float64(a.BytesWasted)/1e6)
	if res.HTTPFetches > 0 {
		fl := res.FetchLatency
		fmt.Printf("  HTTP: %d fetches, %d errors; latency ms p50=%.2f p95=%.2f p99=%.2f (window %d)\n",
			res.HTTPFetches, res.HTTPErrors, fl.P50, fl.P95, fl.P99, fl.Window)
	}
	if store != nil {
		hits := reg.Counter("serve.store.hits").Value()
		misses := reg.Counter("serve.store.misses").Value()
		shared := reg.Counter("serve.store.singleflight_shared").Value()
		fmt.Printf("  store: %d hits, %d misses, %d singleflight-shared, %d evictions, %.1f MB cached\n",
			hits, misses, shared, reg.Counter("serve.store.evictions").Value(),
			float64(store.Bytes())/1e6)
	}
	if clu != nil {
		// Fence the async warm tier so the warm/prewarm counters below
		// are exact, not a snapshot of a still-draining queue.
		clu.DrainWarms()
		printClusterSummary(clu, reg)
	}
	return nil
}

func printClusterSummary(clu *cluster.Cluster, reg *obs.Registry) {
	req, fetches := clu.OffloadCounts()
	fmt.Printf("  cluster: %d requests, %d reroutes, %d sheds, %d warms, %d origin fallbacks, offload %.1f%%\n",
		req,
		reg.Counter("cluster.reroutes").Value(),
		reg.Counter("cluster.sheds").Value(),
		clu.Warms(),
		reg.Counter("cluster.origin_fallbacks").Value(),
		float64(reg.Gauge("cluster.origin_offload_ratio").Value())/100)
	fmt.Printf("    coalesced %d, warm drops %d, prewarms %d (%d origin syntheses)\n",
		clu.Coalesced(), clu.WarmDrops(), clu.Prewarms(), clu.PrewarmFetches())
	fmt.Printf("    health: %d down transitions, %d up transitions; origin fetches %d\n",
		reg.Counter("cluster.health.down_transitions").Value(),
		reg.Counter("cluster.health.up_transitions").Value(),
		fetches)
	for _, n := range clu.Nodes() {
		state := "up"
		if n.Down() {
			state = "down"
		}
		fmt.Printf("    %s [%s]: %d hits, %d misses, %d sheds, %.1f MB cached\n",
			n.ID(), state, n.Hits(), n.Misses(),
			reg.Counter("cluster.node."+n.ID()+".sheds").Value(),
			float64(n.Store().Bytes())/1e6)
	}
}

func effectiveWorkers(w, sessions int) int {
	if w <= 0 {
		w = serve.DefaultWorkers()
	}
	if w > sessions {
		w = sessions
	}
	return w
}

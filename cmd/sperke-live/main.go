// Command sperke-live runs the whole live 360° broadcast pipeline of
// §3.4 over real loopback TCP: a broadcaster pushes segments through the
// RTMP-like ingest protocol (optionally shaped to emulate a constrained
// uplink), the server re-packages them into a live DASH window, and a
// viewer polls the manifest and fetches chunks over HTTP, measuring
// end-to-end latency exactly as the paper does (T2 − T1).
//
// Usage:
//
//	sperke-live                      # 10 s broadcast, unshaped
//	sperke-live -uplink 2            # shape the uplink to 2 Mbit/s
//	sperke-live -duration 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"time"

	"sperke/internal/dash"
	"sperke/internal/faults"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/rtmp"
	"sperke/internal/tiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	dur := flag.Duration("duration", 10*time.Second, "broadcast duration")
	uplinkMbps := flag.Float64("uplink", 0, "uplink shaping in Mbit/s (0 = unshaped)")
	segment := flag.Duration("segment", 500*time.Millisecond, "segment duration")
	faultErrors := flag.Int("fault-errors", 0, "inject this many 502 responses on chunk fetches")
	faultTruncate := flag.Int("fault-truncate", 0, "truncate this many chunk response bodies mid-flight")
	faultSeed := flag.Int64("fault-seed", 42, "fault injection seed")
	debugAddr := flag.String("debug-addr", "", "listen address for pprof/expvar debug endpoints (empty = disabled)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	reg := obs.Default()
	reg.PublishExpvar("sperke")
	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux via its import; a side
		// port keeps the debug surface off the pipeline's listeners.
		go http.ListenAndServe(*debugAddr, nil)
	}

	video := &media.Video{
		ID:             "live",
		Duration:       *dur,
		ChunkDuration:  *segment,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.LiveLadder,
		Encoding:       media.EncodingAVC,
	}
	catalog := dash.NewCatalog()
	if err := catalog.Add(video); err != nil {
		return err
	}

	// --- server: RTMP ingest feeding the live DASH window ---
	captureAt := make(map[int]time.Time) // segment index → capture wall time
	var mu sync.Mutex
	last := -1
	ingest := &rtmp.Server{
		Log: log,
		OnSegment: func(stream string, at time.Time, ts time.Duration, h media.SegmentHeader, payload []byte) {
			idx := int(h.Start / *segment)
			mu.Lock()
			if idx > last {
				last = idx
				catalog.SetLiveWindow(video.ID, 0, last)
			}
			mu.Unlock()
		},
	}
	ingestLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go ingest.Serve(ingestLn)
	defer ingest.Close()

	dashLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Optional server-side chaos: a deterministic burst of 5xx responses
	// and truncated bodies on the chunk route, which the viewer's
	// resilient client must absorb.
	dashSrv := dash.NewServer(catalog, dash.WithLogger(log), dash.WithObs(reg))
	var handler http.Handler = dashSrv
	var injector *faults.Injector
	if *faultErrors > 0 || *faultTruncate > 0 {
		var rules []faults.Rule
		if *faultErrors > 0 {
			rules = append(rules, faults.Rule{
				PathContains: "/c/", ErrorProb: 1,
				ErrorStatus: http.StatusBadGateway, MaxCount: *faultErrors,
			})
		}
		if *faultTruncate > 0 {
			rules = append(rules, faults.Rule{
				PathContains: "/c/", TruncateProb: 1, MaxCount: *faultTruncate,
			})
		}
		injector = faults.NewInjector(*faultSeed, rules...)
		handler = injector.Wrap(handler)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(dashLn)
	defer httpSrv.Close()

	// --- broadcaster: capture → (shaped) upload ---
	conn, err := net.Dial("tcp", ingestLn.Addr().String())
	if err != nil {
		return err
	}
	var up net.Conn = conn
	if *uplinkMbps > 0 {
		up = netem.NewRateLimitedConn(conn, *uplinkMbps*1e6, 0)
	}
	pub, err := rtmp.NewPublisher(up, video.ID)
	if err != nil {
		return err
	}

	nSegs := int(*dur / *segment)
	go func() {
		defer pub.Close()
		start := time.Now()
		perTileBytes := video.ChunkBytes(len(video.Ladder)-1, 0, 0)
		for i := 0; i < nSegs; i++ {
			// Real-time pacing: the scene for segment i exists only after
			// (i+1)·segment of wall time.
			target := start.Add(time.Duration(i+1) * *segment)
			time.Sleep(time.Until(target))
			mu.Lock()
			captureAt[i] = time.Now()
			mu.Unlock()
			for tile := tiling.TileID(0); int(tile) < video.Grid.Tiles(); tile++ {
				h := media.SegmentHeader{
					VideoID:  video.ID,
					Quality:  len(video.Ladder) - 1,
					Flags:    media.FlagLive,
					Tile:     tile,
					Start:    time.Duration(i) * *segment,
					Duration: *segment,
				}
				payload := media.SyntheticPayload(uint64(i)<<16|uint64(tile), int(perTileBytes))
				if err := pub.SendSegment(h.Start, h, payload); err != nil {
					log.Warn("broadcast send", "err", err)
					return
				}
			}
		}
	}()

	// --- viewer: poll the MPD, fetch new chunks, record E2E latency ---
	client := dash.NewClient("http://" + dashLn.Addr().String())
	client.Obs = reg
	fmt.Printf("live broadcast: %d segments of %v, uplink %s\n",
		nSegs, *segment, shapingLabel(*uplinkMbps))
	fetched, attempts := 0, 0
	var latencies []time.Duration
	deadline := time.Now().Add(*dur + 30*time.Second)
	for fetched < nSegs && time.Now().Before(deadline) {
		mpd, err := client.FetchMPD(context.Background(), video.ID)
		if err != nil || mpd.Type != "dynamic" {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		for fetched <= mpd.LastChunk {
			res, err := client.FetchChunk(context.Background(), video.ID, 0, 0, fetched)
			if err != nil {
				// An exhausted fetch still spent attempts; the next poll
				// round re-requests the same segment.
				var derr *dash.Error
				if errors.As(err, &derr) {
					attempts += derr.Attempts
				}
				break
			}
			attempts += res.Attempts
			displayed := time.Now()
			mu.Lock()
			cap, ok := captureAt[fetched]
			mu.Unlock()
			if ok {
				lat := displayed.Sub(cap)
				latencies = append(latencies, lat)
				fmt.Printf("  segment %2d  E2E latency %7.0f ms\n", fetched, float64(lat.Milliseconds()))
			}
			fetched++
		}
		time.Sleep(*segment / 4)
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no segments delivered")
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("mean E2E latency: %.0f ms over %d segments\n",
		float64(sum.Milliseconds())/float64(len(latencies)), len(latencies))
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("faults absorbed: %d errors, %d truncations (%d fetch attempts for %d segments)\n",
			st.Errors, st.Truncations, attempts, fetched)
	}
	return nil
}

func shapingLabel(mbps float64) string {
	if mbps <= 0 {
		return "unshaped"
	}
	return fmt.Sprintf("%.1f Mbit/s", mbps)
}

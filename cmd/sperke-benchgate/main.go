// Command sperke-benchgate is the continuous benchmark gate (package
// internal/benchgate): it parses `go test -bench -benchmem` output and
// compares it against the committed BENCH_BASELINE.json, failing CI on
// performance regressions.
//
//	go test -run=NONE -bench=. -benchmem . | sperke-benchgate -update BENCH_BASELINE.json
//	go test -run=NONE -bench=. -benchmem . | sperke-benchgate -compare BENCH_BASELINE.json
//	sperke-benchgate -compare BENCH_BASELINE.json -input bench.txt -ns-tolerance 0.5
//
// Compare exits 0 when every baselined benchmark holds its numbers, 1
// when one regresses (> the ns/op tolerance, any allocs/op growth, or
// a baselined benchmark missing from the run), and 2 on usage or parse
// errors. Update merges the run into the baseline file, creating it if
// absent, and leaves entries for benchmarks outside the run untouched.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sperke/internal/benchgate"
)

func main() {
	update := flag.String("update", "", "merge this run into the baseline file and exit")
	compare := flag.String("compare", "", "compare this run against the baseline file")
	input := flag.String("input", "-", "bench output to read (- = stdin)")
	nsTol := flag.Float64("ns-tolerance", 0.25, "allowed fractional ns/op growth before failing")
	allocSlack := flag.Int64("alloc-slack", 0, "allowed absolute allocs/op growth (default: any increase fails)")
	allowMissing := flag.Bool("allow-missing", false, "don't fail when a baselined benchmark is absent from the run")
	note := flag.String("note", "", "with -update: set the baseline's note field")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: go test -run=NONE -bench=. -benchmem [pkgs] | sperke-benchgate (-update|-compare) BENCH_BASELINE.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if (*update == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "sperke-benchgate: exactly one of -update or -compare is required")
		flag.Usage()
		os.Exit(2)
	}

	var src io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	results, err := benchgate.ParseBench(src)
	if err != nil {
		fail(err)
	}
	if len(results) == 0 {
		fail(fmt.Errorf("sperke-benchgate: no benchmark lines in input (did the bench run produce output?)"))
	}

	if *update != "" {
		base, err := benchgate.LoadBaseline(*update)
		if errors.Is(err, os.ErrNotExist) {
			base, err = &benchgate.Baseline{Benchmarks: map[string]benchgate.Entry{}}, nil
		}
		if err != nil {
			fail(err)
		}
		base.Merge(results)
		if *note != "" {
			base.Note = *note
		}
		if err := base.Save(*update); err != nil {
			fail(err)
		}
		fmt.Printf("sperke-benchgate: %s now pins %d benchmark(s) (%d from this run)\n",
			*update, len(base.Benchmarks), len(results))
		return
	}

	base, err := benchgate.LoadBaseline(*compare)
	if err != nil {
		fail(err)
	}
	regressions, notes := benchgate.Compare(base, results, benchgate.CompareConfig{
		NsTolerance:  *nsTol,
		AllocSlack:   *allocSlack,
		AllowMissing: *allowMissing,
	})
	for _, n := range notes {
		fmt.Printf("note: %s\n", n.Msg)
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r.Msg)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "sperke-benchgate: %d regression(s) against %s\n", len(regressions), *compare)
		os.Exit(1)
	}
	fmt.Printf("sperke-benchgate: %d benchmark(s) within baseline %s\n", len(results), *compare)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// Command sperke-collector runs the §3.2 telemetry aggregation service:
// player apps POST compact head-movement records and clients GET
// per-video crowd heatmaps that drive FoV-guided prefetching.
//
//	sperke-collector -addr :8361
//	curl -s --data-binary @session.sptl http://localhost:8361/t/my-video
//	curl -s http://localhost:8361/t/my-video/heatmap?chunkms=2000 | jq .
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/telemetry"
	"sperke/internal/tiling"
)

func main() {
	addr := flag.String("addr", ":8361", "listen address")
	rows := flag.Int("rows", 4, "heatmap tile grid rows")
	cols := flag.Int("cols", 6, "heatmap tile grid columns")
	maxSessions := flag.Int("max-sessions", 1000, "retained sessions per video")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	c := telemetry.NewCollector(
		tiling.Grid{Rows: *rows, Cols: *cols},
		sphere.Equirectangular{},
		sphere.DefaultFoV,
	)
	c.MaxSessionsPerVideo = *maxSessions

	srv := &http.Server{Addr: *addr, Handler: c}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	log.Info("sperke-collector listening", "addr", *addr,
		"grid", tiling.Grid{Rows: *rows, Cols: *cols}.Tiles())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Error("collector exited", "err", err)
		os.Exit(1)
	}
}

// Command sperke-server runs the tiled DASH origin of Fig. 2 over real
// HTTP: manifests at /v/{video}/manifest.mpd and chunk segments at
// /v/{video}/c/{quality}/{tile}/{index} (append ?layer=1 for one SVC
// layer). Content is synthetic but deterministically sized by the
// Sperke rate model, so any client sees realistic chunk-size dynamics.
//
// Usage:
//
//	sperke-server -addr :8360
//	curl http://localhost:8360/v/demo/manifest.mpd
//	curl http://localhost:8360/metrics
//	sperke-server -debug-addr :6060   # pprof + expvar on a side port
package main

import (
	"context"
	_ "expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/serve"
	"sperke/internal/tiling"
)

func main() {
	addr := flag.String("addr", ":8360", "listen address")
	debugAddr := flag.String("debug-addr", "", "listen address for pprof/expvar debug endpoints (empty = disabled)")
	dur := flag.Duration("duration", 2*time.Minute, "demo video duration")
	chunk := flag.Duration("chunk", 2*time.Second, "chunk duration")
	rows := flag.Int("rows", 4, "tile grid rows")
	cols := flag.Int("cols", 6, "tile grid columns")
	enc := flag.String("encoding", "SVC", "encoding of the demo video: AVC or SVC")
	storeMB := flag.Int("store-budget-mb", 256, "sharded chunk store byte budget in MiB")
	storeShards := flag.Int("store-shards", 16, "chunk store shard count (rounded up to a power of two)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	encoding := media.EncodingAVC
	if *enc == "SVC" {
		encoding = media.EncodingSVC
	} else if *enc != "AVC" {
		fmt.Fprintf(os.Stderr, "unknown encoding %q\n", *enc)
		os.Exit(2)
	}

	catalog := dash.NewCatalog()
	videos := []*media.Video{
		{
			ID:             "demo",
			Duration:       *dur,
			ChunkDuration:  *chunk,
			Grid:           tiling.Grid{Rows: *rows, Cols: *cols},
			ProjectionName: "equirectangular",
			Ladder:         media.DefaultLadder,
			Encoding:       encoding,
		},
		{
			ID:             "concert",
			Duration:       *dur,
			ChunkDuration:  *chunk,
			Grid:           tiling.GridPrototype,
			ProjectionName: "cubemap",
			Ladder:         media.LiveLadder,
			Encoding:       media.EncodingAVC,
		},
	}
	for _, v := range videos {
		if err := catalog.Add(v); err != nil {
			log.Error("adding video", "id", v.ID, "err", err)
			os.Exit(1)
		}
		log.Info("serving video", "id", v.ID, "chunks", v.NumChunks(),
			"tiles", v.Grid.Tiles(), "encoding", v.Encoding.String())
	}

	reg := obs.Default()
	reg.PublishExpvar("sperke")

	store := serve.NewCatalogStore(catalog, serve.StoreConfig{
		Shards:      *storeShards,
		BudgetBytes: int64(*storeMB) << 20,
		Obs:         reg,
	})
	dashSrv := dash.NewServer(catalog,
		dash.WithLogger(log), dash.WithObs(reg), dash.WithStore(store))
	log.Info("chunk store", "shards", store.Shards(), "budget_mb", *storeMB)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", dashSrv)

	if *debugAddr != "" {
		// net/http/pprof and expvar register /debug/pprof and /debug/vars
		// on http.DefaultServeMux via their imports; serving it on a side
		// port keeps debug endpoints off the content-facing listener.
		go func() {
			log.Info("debug endpoints listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Error("debug server exited", "err", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	log.Info("sperke-server listening", "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Error("server exited", "err", err)
		os.Exit(1)
	}
}

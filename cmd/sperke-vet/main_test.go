package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestModule lays out a miniature module with one ctxflow
// violation and one stale nolint waiver, and chdirs into it for the
// duration of the test (run() resolves the module from the working
// directory).
func writeTestModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module sperke\n\ngo 1.22\n",
		"internal/serve/bad.go": `package serve

import "context"

func refetch(get func(context.Context) error) error {
	return get(context.Background())
}
`,
		"internal/serve/stale.go": `package serve

import "context"

func threaded(ctx context.Context) context.Context {
	return ctx //sperke:nolint(ctxflow) — stale: suppresses nothing
}
`,
	}
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

func TestRunJSONOutput(t *testing.T) {
	writeTestModule(t)
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var findings []jsonDiag
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != "ctxflow" || f.Path != "internal/serve/bad.go" || f.Line != 6 || f.Col == 0 || f.Message == "" {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

func TestRunTextOutputAndExitCodes(t *testing.T) {
	writeTestModule(t)
	var stdout, stderr strings.Builder
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "internal/serve/bad.go:6:") ||
		!strings.Contains(stdout.String(), "[ctxflow]") {
		t.Fatalf("finding not rendered:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "typed load of") {
		t.Fatalf("typed load wall time not logged:\n%s", stderr.String())
	}

	// A target prefix that excludes the finding exits clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./internal/dash"}, &stdout, &stderr); code != 0 {
		t.Fatalf("filtered run exit = %d, want 0\n%s", code, stdout.String())
	}

	// Unknown checkers are a usage error.
	if code := run([]string{"-checks", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown checker exit = %d, want 2", code)
	}
}

func TestRunUnusedNolint(t *testing.T) {
	writeTestModule(t)
	var stdout, stderr strings.Builder
	code := run([]string{"-unused-nolint", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "internal/serve/stale.go:6: unused //sperke:nolint(ctxflow)") {
		t.Fatalf("stale waiver not reported:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "bad.go") {
		t.Fatalf("-unused-nolint mode leaked diagnostics:\n%s", stdout.String())
	}

	// -unused-nolint needs the full typed suite.
	if code := run([]string{"-unused-nolint", "-untyped"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-unused-nolint -untyped exit = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"clockhygiene", "ctxflow", "lockscope", "streamdiscipline"} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}

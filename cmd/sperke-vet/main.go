// Command sperke-vet runs Sperke's domain-aware static-analysis suite
// (package internal/vet) over the module tree:
//
//	go run ./cmd/sperke-vet ./...
//	go run ./cmd/sperke-vet -checks clockhygiene,maporder ./internal/sim
//	go run ./cmd/sperke-vet -json ./...
//	go run ./cmd/sperke-vet -unused-nolint ./...
//	go run ./cmd/sperke-vet -list
//
// By default the suite is type-resolved: the whole module is parsed
// and type-checked (pure stdlib, see internal/vet/typed.go), which
// enables the cross-package checkers (ctxflow, lockscope,
// streamdiscipline and clockhygiene's taint pass). -untyped falls back
// to the per-file syntax suite, which is faster but blind across
// package boundaries.
//
// It exits 0 when clean, 1 when it finds violations (one
// "path:line:col: [check] message" line per finding, or a JSON array
// under -json), and 2 on usage, parse, or type-check errors. Findings
// are suppressed in source with //sperke:nolint(<check>) on or
// directly above the offending line; -unused-nolint reports waivers
// that no longer suppress anything so stale ones rot visibly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sperke/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the stable -json schema, one object per finding.
type jsonDiag struct {
	Check   string `json:"check"`
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sperke-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered checkers and exit")
	checks := fs.String("checks", "", "comma-separated subset of checkers to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (schema: check, path, line, col, message)")
	unusedNolint := fs.Bool("unused-nolint", false, "report //sperke:nolint comments that suppress nothing (typed, full-suite run)")
	untyped := fs.Bool("untyped", false, "syntax-only suite: skip the typed load and the cross-package checkers")
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: sperke-vet [-list] [-checks a,b] [-json] [-unused-nolint] [-untyped] [packages]\n\npackages are module-relative paths; ./... (the default) means the whole module.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := vet.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-17s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *unusedNolint && (*untyped || *checks != "") {
		fmt.Fprintln(stderr, "sperke-vet: -unused-nolint needs the full typed suite (drop -untyped/-checks)")
		return 2
	}

	root, err := vet.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	prefixes, err := targetPrefixes(root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var diags []vet.Diagnostic
	var unused []vet.UnusedNolint
	if *untyped {
		pkgs, err := vet.Load(root)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = vet.Run(pkgs, analyzers)
	} else {
		start := time.Now()
		m, err := vet.LoadModule(root)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "sperke-vet: typed load of %d packages in %v\n",
			len(m.Pkgs), time.Since(start).Round(time.Millisecond))
		res := vet.RunModule(m, analyzers)
		diags, unused = res.Diags, res.Unused
	}

	if *unusedNolint {
		n := 0
		for _, u := range unused {
			if !matchesTarget(u.Path, prefixes) {
				continue
			}
			fmt.Fprintln(stdout, u)
			n++
		}
		if n > 0 {
			fmt.Fprintf(stderr, "sperke-vet: %d unused nolint waiver(s)\n", n)
			return 1
		}
		return 0
	}

	var kept []vet.Diagnostic
	for _, d := range diags {
		if matchesTarget(d.Pos.Filename, prefixes) {
			kept = append(kept, d)
		}
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(kept))
		for _, d := range kept {
			out = append(out, jsonDiag{
				Check: d.Check, Path: d.Pos.Filename,
				Line: d.Pos.Line, Col: d.Pos.Column, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range kept {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(stderr, "sperke-vet: %d finding(s)\n", len(kept))
		return 1
	}
	return 0
}

// targetPrefixes converts CLI package arguments into module-relative
// path prefixes. Empty (or "./...") means everything.
func targetPrefixes(root string, args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		if a == "." || a == "./" || a == "" {
			return nil, nil // whole module
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("sperke-vet: %s is outside the module", a)
		}
		out = append(out, filepath.ToSlash(rel))
	}
	return out, nil
}

// matchesTarget reports whether the module-relative file path falls
// under any requested prefix (nil prefixes match everything).
func matchesTarget(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if p == "." || path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Command sperke-vet runs Sperke's domain-aware static-analysis suite
// (package internal/vet) over the module tree:
//
//	go run ./cmd/sperke-vet ./...
//	go run ./cmd/sperke-vet -checks clockhygiene,maporder ./internal/sim
//	go run ./cmd/sperke-vet -list
//
// It exits 0 when clean, 1 when it finds violations (one
// "path:line:col: [check] message" line per finding), and 2 on usage
// or parse errors. Findings are suppressed in source with
// //sperke:nolint(<check>) on or directly above the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sperke/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "list registered checkers and exit")
	checks := flag.String("checks", "", "comma-separated subset of checkers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sperke-vet [-list] [-checks a,b] [packages]\n\npackages are module-relative paths; ./... (the default) means the whole module.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := vet.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := vet.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := vet.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	prefixes, err := targetPrefixes(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := vet.Run(pkgs, analyzers)
	n := 0
	for _, d := range diags {
		if !matchesTarget(d.Pos.Filename, prefixes) {
			continue
		}
		fmt.Println(d)
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "sperke-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// targetPrefixes converts CLI package arguments into module-relative
// path prefixes. Empty (or "./...") means everything.
func targetPrefixes(root string, args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		if a == "." || a == "./" || a == "" {
			return nil, nil // whole module
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("sperke-vet: %s is outside the module", a)
		}
		out = append(out, filepath.ToSlash(rel))
	}
	return out, nil
}

// matchesTarget reports whether the module-relative file path falls
// under any requested prefix (nil prefixes match everything).
func matchesTarget(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if p == "." || path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

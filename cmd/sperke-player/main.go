// Command sperke-player simulates one full FoV-guided streaming session
// (Fig. 4): a synthetic viewer watches a synthetic 360° title over an
// emulated network, and the tool reports the QoE and bandwidth outcome.
//
// Usage examples:
//
//	sperke-player                                # defaults
//	sperke-player -mode agnostic                 # FoV-agnostic baseline
//	sperke-player -net lte -mbps 6 -algo mpc     # LTE trace, MPC VRA
//	sperke-player -encoding SVC -upgrades        # incremental upgrades
//	sperke-player -multipath -faults "outage:wifi:20s:5s"   # scripted chaos
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sperke/internal/abr"
	"sperke/internal/core"
	"sperke/internal/faults"
	"sperke/internal/media"
	"sperke/internal/multipath"
	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "guided", "streaming mode: guided or agnostic")
	algo := flag.String("algo", "throughput", "VRA algorithm: throughput, buffer, mpc")
	netKind := flag.String("net", "const", "network model: const, lte, wifi, spec")
	traceSpec := flag.String("trace", "", `bandwidth schedule for -net spec, e.g. "0:8M,30s:1.5M"`)
	mbps := flag.Float64("mbps", 12, "mean bandwidth in Mbit/s")
	enc := flag.String("encoding", "AVC", "chunk encoding: AVC or SVC")
	upgrades := flag.Bool("upgrades", false, "enable incremental chunk upgrades (§3.1.1)")
	dur := flag.Duration("duration", time.Minute, "video duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	speed := flag.Float64("headspeed", 1.0, "viewer head-speed scale")
	multi := flag.Bool("multipath", false, "stream over WiFi+LTE with the content-aware scheduler (§3.3)")
	faultPlan := flag.String("faults", "", `fault plan against the network, e.g. "outage:wifi:20s:5s,cliff:lte:30s:10s:500k"`)
	budget := flag.Float64("budget", 0, "user bandwidth budget in Mbit/s (0 = none, §3.1.2)")
	timeline := flag.Bool("timeline", false, "print the session event timeline")
	metricsJSON := flag.String("metrics-json", "", `dump a JSON metrics snapshot after the run ("-" = stdout)`)
	flag.Parse()

	encoding := media.EncodingAVC
	switch *enc {
	case "AVC":
	case "SVC":
		encoding = media.EncodingSVC
	default:
		return fmt.Errorf("unknown encoding %q", *enc)
	}
	alg, err := abr.ByName(*algo)
	if err != nil {
		return err
	}
	streamMode := core.FoVGuided
	switch *mode {
	case "guided":
	case "agnostic":
		streamMode = core.FoVAgnostic
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	video := &media.Video{
		ID:             "player-demo",
		Duration:       *dur,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       encoding,
	}

	clock := sim.NewClock(*seed)
	var tr *netem.BandwidthTrace
	switch *netKind {
	case "const":
		tr = netem.Constant(*mbps * 1e6)
	case "lte":
		tr = netem.LTETrace(clock.RNG("net"), *mbps*1e6, time.Second, *dur+30*time.Second)
	case "wifi":
		tr = netem.WiFiTrace(clock.RNG("net"), *mbps*1e6, time.Second, *dur+30*time.Second)
	case "spec":
		var err error
		tr, err = netem.ParseTrace(*traceSpec)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown network model %q", *netKind)
	}
	var sched transport.Scheduler
	var paths []*netem.Path
	if *multi {
		// The -net model shapes the WiFi path; LTE rides alongside.
		wifi := netem.NewPath(clock, "wifi", tr, 20*time.Millisecond, 0.002)
		lte := netem.NewPath(clock, "lte",
			netem.LTETrace(clock.RNG("lte"), *mbps*0.6*1e6, time.Second, *dur+30*time.Second),
			45*time.Millisecond, 0.015)
		paths = []*netem.Path{wifi, lte}
		sched = multipath.NewContentAware(clock, wifi, lte)
	} else {
		path := netem.NewPath(clock, *netKind, tr, 25*time.Millisecond, 0)
		paths = []*netem.Path{path}
		sched = transport.NewSinglePath(clock, path)
	}
	if *faultPlan != "" {
		plan, err := faults.Parse(*faultPlan)
		if err != nil {
			return err
		}
		if err := plan.Apply(clock, paths...); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(*seed+1)), *dur+10*time.Second)
	head := trace.Generate(rng, trace.UserProfile{ID: "viewer", SpeedScale: *speed}, att, *dur+10*time.Second)

	cfg := core.Config{
		Video:           video,
		Mode:            streamMode,
		Algorithm:       alg,
		EnableUpgrades:  *upgrades,
		BandwidthBudget: *budget * 1e6,
	}
	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *timeline {
		cfg.Observer = func(e core.Event) {
			switch e.Kind {
			case core.EventPlanned, core.EventPlay, core.EventStall,
				core.EventUpgraded, core.EventUrgent, core.EventDropped:
				fmt.Println(" ", e)
			}
		}
	}
	session, err := core.NewSession(clock, cfg, head, sched)
	if err != nil {
		return err
	}
	rep := session.Run()
	m := rep.QoE

	netLabel := *netKind
	if *multi {
		netLabel = "wifi+lte (content-aware)"
	}
	fmt.Printf("session: %s, %s VRA, %s, %s over %s @%.1f Mbps\n",
		streamMode, alg.Name(), encoding, dur, netLabel, *mbps)
	fmt.Printf("  startup delay     %v\n", rep.StartupDelay.Round(time.Millisecond))
	fmt.Printf("  play time         %v\n", m.PlayTime.Round(time.Millisecond))
	fmt.Printf("  stalls            %d (%v)\n", m.Stalls, m.StallTime.Round(time.Millisecond))
	fmt.Printf("  mean FoV quality  %.2f / %d\n", m.MeanQuality(), video.Qualities()-1)
	fmt.Printf("  quality switches  %d\n", m.Switches)
	fmt.Printf("  blank time        %v\n", m.BlankTime.Round(time.Millisecond))
	fmt.Printf("  bytes fetched     %.1f MB\n", float64(rep.BytesFetched)/1e6)
	fmt.Printf("  bytes wasted      %.1f MB (%.0f%%)\n", float64(rep.BytesWasted)/1e6, m.WasteRatio()*100)
	fmt.Printf("  urgent fetches    %d\n", rep.UrgentFetches)
	if *upgrades {
		fmt.Printf("  upgrades          %d now, %d deferred, %d skipped\n",
			rep.Upgrades, rep.UpgradesDeferred, rep.UpgradesSkipped)
	}
	fmt.Printf("  QoE score         %.1f / 100\n", m.Score(video.Qualities()-1))
	if reg != nil {
		if err := dumpMetrics(reg, *metricsJSON); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes the registry snapshot as JSON to path ("-" means
// stdout).
func dumpMetrics(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command sperke-bench runs the experiment suite that regenerates every
// table and figure of the paper (see DESIGN.md's per-experiment index)
// and prints them as text tables.
//
// Usage:
//
//	sperke-bench              # run everything
//	sperke-bench -run E2      # one experiment
//	sperke-bench -list        # list experiment IDs
//	sperke-bench -seed 7      # change the reproducibility seed
package main

import (
	"flag"
	"fmt"
	"os"

	"sperke/internal/experiments"
	"sperke/internal/obs"
)

func main() {
	run := flag.String("run", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Int64("seed", 1, "random seed for all experiments")
	format := flag.String("format", "text", "output format: text or csv")
	metricsJSON := flag.String("metrics-json", "", `dump an aggregate JSON metrics snapshot after the run ("-" = stderr)`)
	flag.Parse()

	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
		experiments.SetObs(reg)
	}
	dumpMetrics := func() {
		if reg == nil {
			return
		}
		// Tables go to stdout, so "-" routes the snapshot to stderr to
		// keep piped output parseable.
		if *metricsJSON == "-" {
			reg.WriteJSON(os.Stderr)
			return
		}
		f, err := os.Create(*metricsJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	render := func(t *experiments.Table) {
		if *format == "csv" {
			t.RenderCSV(os.Stdout)
			fmt.Println()
			return
		}
		t.Render(os.Stdout)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run != "" {
		t, err := experiments.Run(*run, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		render(t)
		dumpMetrics()
		return
	}
	for _, t := range experiments.RunAll(*seed) {
		render(t)
	}
	dumpMetrics()
}

// Package sperke_bench holds the benchmark harness that regenerates
// every table and figure of the paper's evaluation. One testing.B
// benchmark per experiment; run with
//
//	go test -bench=. -benchmem
//
// Each iteration executes the full experiment deterministically;
// rendered tables come from `go run ./cmd/sperke-bench` and are recorded
// in EXPERIMENTS.md.
package sperke_bench

import (
	"io"
	"testing"

	"sperke/internal/experiments"
)

// runExperiment is the shared benchmark body.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, 1)
		if err != nil {
			b.Fatal(err)
		}
		tbl.Render(io.Discard)
	}
}

// BenchmarkFigure5PlayerFPS regenerates Figure 5 (player FPS under the
// three §3.5 configurations).
func BenchmarkFigure5PlayerFPS(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkTable2LiveLatency regenerates Table 2 (live E2E latency,
// 3 platforms × 5 conditions).
func BenchmarkTable2LiveLatency(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkClaimTilingSavings regenerates the §2 tiling bandwidth-saving
// claims (45% [16], 60–80% [37]).
func BenchmarkClaimTilingSavings(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkClaimVersioningOverhead regenerates the §2 versioning storage
// comparison (88 versions [46]).
func BenchmarkClaimVersioningOverhead(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkSVCIncrementalUpgrade regenerates the §3.1.1 SVC-vs-AVC
// upgrade cost comparison.
func BenchmarkSVCIncrementalUpgrade(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkVRAAlgorithms regenerates the §3.1.2 VRA comparison on super
// chunks.
func BenchmarkVRAAlgorithms(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkHMPAccuracy regenerates the §3.2 predictor accuracy sweep.
func BenchmarkHMPAccuracy(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkMultipathSchedulers regenerates the §3.3 multipath
// comparison.
func BenchmarkMultipathSchedulers(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkSpatialFallback regenerates the §3.4.2 spatial fall-back
// comparison.
func BenchmarkSpatialFallback(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkCrowdLiveHMP regenerates the §3.4.2 crowd-sourced live HMP
// evaluation.
func BenchmarkCrowdLiveHMP(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkClaim360Size regenerates the §1 "5× larger" size claim.
func BenchmarkClaim360Size(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkTable1Priorities regenerates the Table 1 priority-class
// demonstration.
func BenchmarkTable1Priorities(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkFrameCacheDeltaShift regenerates the §3.5 decoded-frame-cache
// delta-shift measurement.
func BenchmarkFrameCacheDeltaShift(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkAblationOOSRing regenerates ablation A1 (OOS ring width).
func BenchmarkAblationOOSRing(b *testing.B) { runExperiment(b, "A1") }

// BenchmarkAblationHybridSVC regenerates ablation A2 (hybrid SVC/AVC
// crossover).
func BenchmarkAblationHybridSVC(b *testing.B) { runExperiment(b, "A2") }

// BenchmarkAblationDecoderPool regenerates ablation A3 (decoder pool
// size).
func BenchmarkAblationDecoderPool(b *testing.B) { runExperiment(b, "A3") }

// BenchmarkSperkeLive regenerates the §3.4.2 end-to-end projection:
// SVC-ingest FoV-guided live vs the commercial platforms.
func BenchmarkSperkeLive(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkViewerLatencySpread regenerates the §3.4.2 latency-variance
// premise across a heterogeneous viewer population.
func BenchmarkViewerLatencySpread(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkHybridSession regenerates ablation A4 (session-level hybrid
// SVC/AVC).
func BenchmarkHybridSession(b *testing.B) { runExperiment(b, "A4") }

// BenchmarkPredictionWindow regenerates ablation A5 (HMP window vs VRA
// behaviour).
func BenchmarkPredictionWindow(b *testing.B) { runExperiment(b, "A5") }

// BenchmarkBandwidthSweep regenerates the E16 crossover figure
// (FoV-guided vs agnostic quality across link rates).
func BenchmarkBandwidthSweep(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkTileCoverage regenerates ablation A6 (FoV tile coverage at a
// fixed budget per predictor).
func BenchmarkTileCoverage(b *testing.B) { runExperiment(b, "A6") }

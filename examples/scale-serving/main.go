// Scale-serving: the serving layer end to end. One DASH origin fronted
// by the sharded chunk store serves a crowd of concurrent simulated
// viewers driven by the worker-pool session engine; every viewer's QoE
// is a pure function of its seed (run it twice — the per-viewer numbers
// repeat exactly), while the store turns the crowd's overlapping
// FoV-guided access pattern into cache hits.
//
//	go run ./examples/scale-serving
//	go run ./examples/scale-serving -viewers 16 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/serve"
	"sperke/internal/tiling"
)

func main() {
	viewers := flag.Int("viewers", 8, "concurrent simulated viewers")
	workers := flag.Int("workers", 4, "worker-pool size")
	seed := flag.Int64("seed", 360, "base seed; viewer i uses seed+i")
	flag.Parse()
	if err := run(*viewers, *workers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(viewers, workers int, seed int64) error {
	video := &media.Video{
		ID:             "stadium",
		Duration:       30 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}

	// 1. One origin: catalog → sharded store → DASH server on loopback.
	//    The store fronts chunk synthesis with lock-striped LRU shards
	//    and singleflight miss de-duplication.
	catalog := dash.NewCatalog()
	if err := catalog.Add(video); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	store := serve.NewCatalogStore(catalog, serve.StoreConfig{
		Shards:      8,
		BudgetBytes: 128 << 20,
		Obs:         reg,
	})
	srv := dash.NewServer(catalog, dash.WithObs(reg), dash.WithStore(store))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Printf("origin: %d-shard store, %s\n", store.Shards(), ln.Addr())

	// 2. A crowd: the engine runs each viewer as a full core.Session on
	//    its own sim clock, mirroring every planned chunk fetch to the
	//    origin over real HTTP. The HTTP leg feeds only metrics, so QoE
	//    stays deterministic per seed no matter how many workers run.
	client := dash.NewClient("http://" + ln.Addr().String())
	eng, err := serve.NewEngine(serve.EngineConfig{
		Video:    video,
		Sessions: viewers,
		Workers:  workers,
		BaseSeed: seed,
		Client:   client,
		Obs:      reg,
	})
	if err != nil {
		return err
	}
	res := eng.Run(context.Background())

	// 3. Per-viewer QoE (seed-deterministic) and the serving-side story.
	fmt.Printf("\n%d viewers, %d workers, %v wall:\n", viewers, workers,
		res.Wall.Round(time.Millisecond))
	for _, sr := range res.Sessions {
		if sr.Err != nil {
			return sr.Err
		}
		m := sr.Report.QoE
		fmt.Printf("  viewer %2d (seed %3d): quality %.2f  stalls %d  fetched %5.1f MB\n",
			sr.Index, sr.Seed, m.MeanQuality(), m.Stalls,
			float64(sr.Report.BytesFetched)/1e6)
	}
	fl := res.FetchLatency
	fmt.Printf("\naggregate: quality %.2f, score %.1f\n", res.Agg.MeanQuality, res.Agg.MeanScore)
	fmt.Printf("HTTP: %d fetches, %d errors, latency p50 %.2f ms / p95 %.2f / p99 %.2f\n",
		res.HTTPFetches, res.HTTPErrors, fl.P50, fl.P95, fl.P99)
	hits := reg.Counter("serve.store.hits").Value()
	misses := reg.Counter("serve.store.misses").Value()
	fmt.Printf("store: %d hits / %d misses (%.0f%% hit rate), %.1f MB resident\n",
		hits, misses, 100*float64(hits)/float64(hits+misses),
		float64(store.Bytes())/1e6)
	return nil
}

// Quickstart: describe a tiled 360° title, stream it to a synthetic
// viewer twice — FoV-guided (Sperke) and FoV-agnostic (today's
// platforms) — and compare bytes and quality.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/abr"
	"sperke/internal/core"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func main() {
	// 1. The content: a one-minute panoramic title, 4×6 tile grid,
	//    2-second chunks, six-level ladder (Fig. 2 organization).
	video := &media.Video{
		ID:             "quickstart",
		Duration:       time.Minute,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}

	// 2. The viewer: a synthetic head-movement trace following the
	//    video's attention hotspots.
	rng := rand.New(rand.NewSource(7))
	att := trace.GenerateAttention(rand.New(rand.NewSource(8)), video.Duration+10*time.Second)
	head := trace.Generate(rng, trace.UserProfile{ID: "alice", SpeedScale: 1}, att,
		video.Duration+10*time.Second)

	// 3. Stream twice over the same 20 Mbps link, holding quality at
	//    1080p so the byte comparison is direct.
	run := func(mode core.StreamMode) core.Report {
		clock := sim.NewClock(7)
		path := netem.NewPath(clock, "net", netem.Constant(20e6), 20*time.Millisecond, 0)
		session, err := core.NewSession(clock, core.Config{
			Video:     video,
			Mode:      mode,
			Algorithm: &abr.Fixed{Q: 4},
		}, head, transport.NewSinglePath(clock, path))
		if err != nil {
			panic(err)
		}
		return session.Run()
	}
	guided := run(core.FoVGuided)
	agnostic := run(core.FoVAgnostic)

	fmt.Println("Sperke quickstart — FoV-guided vs FoV-agnostic @1080p, 20 Mbps")
	fmt.Printf("%-14s %12s %12s %10s\n", "mode", "fetched", "FoV quality", "stalls")
	report := func(name string, r core.Report) {
		fmt.Printf("%-14s %9.1f MB %12.2f %10d\n",
			name, float64(r.BytesFetched)/1e6, r.QoE.MeanQuality(), r.QoE.Stalls)
	}
	report("fov-guided", guided)
	report("fov-agnostic", agnostic)
	saving := 1 - float64(guided.BytesFetched)/float64(agnostic.BytesFetched)
	fmt.Printf("\nFoV-guided tiling saved %.0f%% of the bytes (§2 cites 45%% [16], 60–80%% [37]).\n",
		saving*100)
}

// Chaos-failover: resilient chunk delivery through a scripted network
// fault. A session requests a chunk every 250 ms over WiFi+LTE while a
// fault plan blacks out WiFi mid-run; the circuit-breaking failover
// scheduler trips the dead path open, reroutes its queue to LTE, probes
// WiFi after a cooldown and moves back once it recovers. Compare the
// same session on naive single paths.
//
//	go run ./examples/chaos-failover
//	go run ./examples/chaos-failover -plan "outage:wifi:10s:8s,cliff:lte:12s:5s:800k"
package main

import (
	"flag"
	"fmt"
	"time"

	"sperke/internal/faults"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

func main() {
	planSpec := flag.String("plan", "outage:wifi:10s:6s", "fault plan (kind:path:at:duration[:param], comma-separated)")
	flag.Parse()

	plan, err := faults.Parse(*planSpec)
	if err != nil {
		fmt.Println("bad plan:", err)
		return
	}
	fmt.Printf("fault plan: %s\n", *planSpec)
	fmt.Printf("%-12s %12s %10s %10s %10s\n", "scheduler", "on time", "late", "failed", "rerouted")

	type outcome struct {
		onTime, late, lost, rerouted int
		cycles                       []transport.BreakerTransition
	}
	run := func(build func(c *sim.Clock, wifi, lte *netem.Path) transport.Scheduler) outcome {
		clock := sim.NewClock(7)
		wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 10*time.Millisecond, 0)
		lte := netem.NewPath(clock, "lte", netem.Constant(4e6), 30*time.Millisecond, 0)
		if err := plan.Apply(clock, wifi, lte); err != nil {
			fmt.Println("apply:", err)
			return outcome{}
		}
		s := build(clock, wifi, lte)

		var o outcome
		for i := 0; i < 120; i++ {
			at := time.Duration(i) * 250 * time.Millisecond
			req := &transport.Request{
				Class: transport.ClassFoV, Bytes: 150_000, Deadline: at + time.Second,
				OnDone: func(d netem.Delivery, met bool) {
					switch {
					case met:
						o.onTime++
					case d.OK:
						o.late++
					default:
						o.lost++
					}
				},
			}
			clock.Schedule(at, func() { s.Submit(req) })
		}
		clock.Run()
		if f, ok := s.(*transport.Failover); ok {
			o.rerouted = f.TotalStats().Rerouted
			o.cycles = f.Breaker(0).Transitions()
		}
		return o
	}

	schedulers := []struct {
		name  string
		build func(c *sim.Clock, wifi, lte *netem.Path) transport.Scheduler
	}{
		{"wifi-only", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewSinglePath(c, w)
		}},
		{"lte-only", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewSinglePath(c, l)
		}},
		{"failover", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewFailover(c,
				transport.BreakerConfig{FailureThreshold: 1, Cooldown: 2 * time.Second}, w, l)
		}},
	}
	var cycles []transport.BreakerTransition
	for _, sc := range schedulers {
		o := run(sc.build)
		fmt.Printf("%-12s %9d/120 %10d %10d %10d\n", sc.name, o.onTime, o.late, o.lost, o.rerouted)
		if sc.name == "failover" {
			cycles = o.cycles
		}
	}
	fmt.Println("\nwifi breaker under failover:")
	for _, tr := range cycles {
		fmt.Printf("  %8v  %s -> %s\n", tr.At, tr.From, tr.To)
	}
	fmt.Println("\nthe breaker trips on the transfer the blackout caught in flight, sheds")
	fmt.Println("the stale backlog, reroutes the rest to LTE, and probes WiFi back to")
	fmt.Println("closed — most chunks stay on time instead of arriving uniformly late.")
}

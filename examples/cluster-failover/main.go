// Cluster-failover: the fault-tolerant edge/origin tier end to end on
// a virtual clock. Three edge caches rendezvous-route a tiled video's
// chunks in front of one origin; a scripted fault plan crashes edge-1
// mid-run and restarts it five seconds later. The probe loop declares
// the node down, its keys fail over to their next-ranked edges (and
// only those keys move), the origin absorbs the cold refill, and once
// probes re-admit the recovered node the routing — and the origin
// offload ratio — return to the pre-outage steady state.
//
//	go run ./examples/cluster-failover
package main

import (
	"context"
	"fmt"
	"time"

	"sperke/internal/cluster"
	"sperke/internal/faults"
	"sperke/internal/obs"
	"sperke/internal/serve"
	"sperke/internal/sim"
)

// origin synthesizes chunk bodies deterministically and counts how
// often the edge tier falls through to it.
type origin struct{ fetches int }

func (o *origin) Chunk(ctx context.Context, videoID string, q, tile, idx int, layer bool) ([]byte, error) {
	o.fetches++
	return []byte(fmt.Sprintf("%s/q%d/t%d/i%d", videoID, q, tile, idx)), nil
}

func main() {
	clock := sim.NewClock(7)
	reg := obs.NewRegistry()
	org := &origin{}
	c, err := cluster.New(org,
		cluster.WithNodes(3),
		cluster.WithClock(clock),
		cluster.WithObs(reg),
		cluster.WithHealth(cluster.HealthConfig{
			FailThreshold:  3,
			ProbeSuccesses: 2,
			Cooldown:       500 * time.Millisecond,
			ProbeInterval:  250 * time.Millisecond,
		}),
	)
	if err != nil {
		panic(err)
	}

	// The chaos script, in the same grammar loadgen flags use: crash
	// edge-1 at 6s, restart it at 11s.
	plan := faults.MustParse("node:edge-1:6s:5s")
	if err := plan.ApplyNodes(clock, c); err != nil {
		panic(err)
	}

	// A viewer's working set: 48 chunk keys spread over the tile grid.
	keys := make([]serve.ChunkKey, 48)
	for i := range keys {
		keys[i] = serve.ChunkKey{Video: "demo", Quality: i % 3, Tile: i % 12, Index: i / 12}
	}
	owners := map[string]int{}
	for _, k := range keys {
		owners[cluster.Rank(k, c.NodeNames())[0]]++
	}
	fmt.Printf("rendezvous placement over 3 edges: %v\n\n", owners)

	// Tick loop on the virtual clock: every 500ms fetch the working set;
	// the probe pump runs at 4 Hz in between.
	for at := 250 * time.Millisecond; at <= 16*time.Second; at += 250 * time.Millisecond {
		clock.Schedule(at, c.ProbeAll)
	}
	fmt.Println("   t     reroutes  origin  alive(edge-1)  offload")
	prevFetch := 0
	for tick := time.Duration(0); tick <= 16*time.Second; tick += 500 * time.Millisecond {
		clock.RunUntil(tick)
		errs := 0
		for _, k := range keys {
			if _, err := c.Chunk(context.Background(), k.Video, k.Quality, k.Tile, k.Index, k.Layer); err != nil {
				errs++
			}
		}
		if errs > 0 {
			fmt.Printf("%6s  %d FAILED FETCHES\n", tick, errs)
			continue
		}
		if tick%(2*time.Second) != 0 {
			continue
		}
		fmt.Printf("%6s  %8d  %6d  %13d  %6.1f%%\n",
			tick,
			reg.Counter("cluster.reroutes").Value(),
			org.fetches-prevFetch,
			reg.Gauge("cluster.health.edge-1.alive").Value(),
			float64(reg.Gauge("cluster.origin_offload_ratio").Value())/100)
		prevFetch = org.fetches
	}

	fmt.Printf("\nafter the kill/recover cycle:\n")
	fmt.Printf("  down transitions %d, up transitions %d\n",
		reg.Counter("cluster.health.down_transitions").Value(),
		reg.Counter("cluster.health.up_transitions").Value())
	for _, n := range c.Nodes() {
		fmt.Printf("  %s: %d hits, %d misses\n", n.ID(), n.Hits(), n.Misses())
	}
	req, fetches := c.OffloadCounts()
	fmt.Printf("  %d front-door requests, %d origin fetches: the edge tier absorbed %.1f%%\n",
		req, fetches, 100*float64(req-fetches)/float64(req))
}

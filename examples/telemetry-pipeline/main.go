// Telemetry-pipeline: the §3.2 loop end to end over real HTTP. Player
// apps record 50 Hz head movement (< 5 Kbps per viewer), upload it to
// the collector service, and the next viewer's player pulls the
// aggregated crowd heatmap to guide its OOS tile selection.
//
//	go run ./examples/telemetry-pipeline
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"sperke/internal/abr"
	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/telemetry"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func main() {
	// 1. The collector service (cmd/sperke-collector in deployment).
	collector := telemetry.NewCollector(tiling.GridCellular, sphere.Equirectangular{}, sphere.DefaultFoV)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: collector}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("collector running at", base)

	// 2. Twenty viewers watch "launch-360" and their apps upload
	//    telemetry. Note the per-record size: the paper's scaling claim.
	const videoID = "launch-360"
	dur := 30 * time.Second
	att := trace.GenerateAttention(rand.New(rand.NewSource(2)), dur)
	pop := trace.NewPopulation(rand.New(rand.NewSource(3)), 20)
	var totalBytes int
	for i, u := range pop.Users {
		h := trace.Generate(rand.New(rand.NewSource(int64(10+i))), u, att, dur)
		rec := telemetry.FromHeadTrace(videoID, u.ID, u.Context, h)
		var buf bytes.Buffer
		if err := telemetry.Encode(&buf, rec); err != nil {
			panic(err)
		}
		totalBytes += buf.Len()
		resp, err := http.Post(base+"/t/"+videoID, "application/octet-stream", &buf)
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			panic(fmt.Sprintf("upload rejected: %d", resp.StatusCode))
		}
	}
	perViewer := float64(totalBytes) / 20 * 8 / dur.Seconds()
	fmt.Printf("uploaded 20 sessions, %.0f bps per viewer (paper budget: <5 Kbps)\n", perViewer)

	// 3. A new player fetches the crowd heatmap before streaming.
	resp, err := http.Get(base + "/t/" + videoID + "/heatmap?chunkms=2000")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var hm telemetry.HeatmapResponse
	if err := json.NewDecoder(resp.Body).Decode(&hm); err != nil {
		panic(err)
	}
	fmt.Printf("heatmap: %d sessions, %d intervals, %dx%d grid\n",
		hm.Sessions, hm.Intervals, hm.Rows, hm.Cols)

	// Show where the crowd looks mid-video.
	mid := hm.Intervals / 2
	fmt.Printf("interval %d tile probabilities (row-major):\n", mid)
	for r := 0; r < hm.Rows; r++ {
		for c := 0; c < hm.Cols; c++ {
			fmt.Printf(" %4.2f", hm.Prob[mid][r*hm.Cols+c])
		}
		fmt.Println()
	}
	fmt.Println("\ntiles with p≈0 are what §3.2 prunes from OOS fetching;")
	fmt.Println("tiles with high p are prefetched even at long horizons.")

	// 4. The player reconstructs a usable heatmap from the JSON and lets
	//    it plan OOS fetching for the next session.
	heat, err := hmp.HeatmapFromProbabilities(
		tiling.Grid{Rows: hm.Rows, Cols: hm.Cols}, sphere.Equirectangular{},
		time.Duration(hm.ChunkMs)*time.Millisecond, hm.Prob)
	if err != nil {
		panic(err)
	}
	view := heat.CrowdCenter(time.Duration(mid) * 2 * time.Second)
	fovTiles := tiling.VisibleTiles(tiling.GridCellular, sphere.Equirectangular{}, view, sphere.DefaultFoV)
	plan := abr.PlanOOS(abr.OOSInput{
		Grid:       tiling.GridCellular,
		Projection: sphere.Equirectangular{},
		FoVTiles:   fovTiles,
		FoVQuality: 4,
		Prediction: hmp.Prediction{View: view, Radius: 40},
		FoV:        sphere.DefaultFoV,
		Heatmap:    heat,
		At:         time.Duration(mid) * 2 * time.Second,
	}, abr.OOSPolicy{MaxRing: 3, MinCrowdProb: 0.15})
	fmt.Printf("\nnext viewer's plan at the crowd center: %d FoV tiles + %d crowd-pruned OOS tiles\n",
		len(fovTiles), len(plan))
}

// Multipath-commute: a viewer streams 360° video on a train with WiFi
// and LTE both available. WiFi degrades mid-ride. Compare §3.3's
// content-aware multipath against MPTCP-style splitting and each single
// path: the content-aware scheduler keeps FoV chunks on the healthier
// path and lets best-effort OOS chunks absorb the loss.
//
//	go run ./examples/multipath-commute
package main

import (
	"fmt"
	"time"

	"sperke/internal/multipath"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/transport"
)

func main() {
	fmt.Println("commute scenario: WiFi healthy for 60s, then degrades; LTE steady but lossy")
	fmt.Printf("%-16s %14s %12s %14s\n", "scheduler", "FoV met", "urgent met", "OOS delivered")

	type result struct {
		fovMet, fov, urgMet, urg, oosOK, oos int
	}
	run := func(build func(c *sim.Clock, wifi, lte *netem.Path) transport.Scheduler) result {
		clock := sim.NewClock(11)
		// WiFi: 8 Mbps then a congested 1.5 Mbps after 60s.
		wifiTrace := netem.MustSteps(
			netem.Step{Start: 0, BPS: 8e6},
			netem.Step{Start: 60 * time.Second, BPS: 1.5e6},
		)
		wifi := netem.NewPath(clock, "wifi", wifiTrace, 15*time.Millisecond, 0.002)
		lte := netem.NewPath(clock, "lte", netem.Constant(5e6), 45*time.Millisecond, 0.015)
		s := build(clock, wifi, lte)

		var r result
		for i := 0; i < 60; i++ {
			i := i
			submitAt := time.Duration(i) * 2 * time.Second
			deadline := submitAt + 6*time.Second
			clock.Schedule(submitAt, func() {
				r.fov++
				s.Submit(&transport.Request{
					Chunk: tiling.ChunkID{Tile: tiling.TileID(i), Start: submitAt},
					Bytes: 1_000_000, Deadline: deadline, Class: transport.ClassFoV,
					OnDone: func(d netem.Delivery, met bool) {
						if met {
							r.fovMet++
						}
					},
				})
				r.oos++
				s.Submit(&transport.Request{
					Chunk: tiling.ChunkID{Tile: tiling.TileID(i + 100), Start: submitAt},
					Bytes: 400_000, Deadline: deadline, Class: transport.ClassOOS,
					OnDone: func(d netem.Delivery, met bool) {
						if d.OK && met {
							r.oosOK++
						}
					},
				})
				if i%5 == 4 { // an HMP correction needs a rush chunk
					r.urg++
					s.Submit(&transport.Request{
						Chunk: tiling.ChunkID{Tile: tiling.TileID(i + 200), Start: submitAt},
						Bytes: 250_000, Deadline: submitAt + 1200*time.Millisecond,
						Class: transport.ClassFoV, Urgent: true,
						OnDone: func(d netem.Delivery, met bool) {
							if met {
								r.urgMet++
							}
						},
					})
				}
			})
		}
		clock.Run()
		return r
	}

	schedulers := []struct {
		name  string
		build func(c *sim.Clock, wifi, lte *netem.Path) transport.Scheduler
	}{
		{"wifi-only", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewSinglePath(c, w)
		}},
		{"lte-only", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewSinglePath(c, l)
		}},
		{"mptcp-like", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return multipath.NewMPTCPLike(c, w, l)
		}},
		{"content-aware", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			ca := multipath.NewContentAware(c, w, l)
			ca.DuplicateUrgent = true
			return ca
		}},
	}
	for _, sc := range schedulers {
		r := run(sc.build)
		fmt.Printf("%-16s %10d/%d %9d/%d %11d/%d\n",
			sc.name, r.fovMet, r.fov, r.urgMet, r.urg, r.oosOK, r.oos)
	}
	fmt.Println("\ncontent-aware multipath keeps FoV chunks on the best path and duplicates")
	fmt.Println("urgent ones across both (§3.3), so HMP corrections survive the WiFi collapse.")
}

// Bigdata-hmp: the §3.2 pipeline end to end. A crowd of earlier viewers
// produces head traces for a video; Sperke aggregates them into a
// heatmap; a new viewer's session then uses crowd statistics to pick
// and prune OOS tiles — and the data-fusion predictor outperforms pure
// motion extrapolation at long horizons.
//
//	go run ./examples/bigdata-hmp
package main

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/abr"
	"sperke/internal/core"
	"sperke/internal/hmp"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func main() {
	video := &media.Video{
		ID:             "crowd-annotated",
		Duration:       time.Minute,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}
	dur := video.Duration + 10*time.Second

	// 1. Crowd data: 25 earlier viewers of the same video (in deployment
	//    this is what the player app uploads — <5 Kbps per viewer, §3.2).
	rng := rand.New(rand.NewSource(3))
	att := trace.GenerateAttention(rand.New(rand.NewSource(4)), dur)
	pop := trace.NewPopulation(rng, 25)
	sessions := pop.Sessions(rng, att, dur)
	heat := hmp.BuildHeatmap(video.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
		video.ChunkDuration, video.Duration, sessions)
	fmt.Printf("heatmap built from %d sessions, %d intervals\n", len(sessions), heat.Intervals())
	top := heat.TopTiles(10*time.Second, 3)
	fmt.Printf("most-watched tiles at t=10s: %v (p=%.2f, %.2f, %.2f)\n\n", top,
		heat.Probability(10*time.Second, top[0]),
		heat.Probability(10*time.Second, top[1]),
		heat.Probability(10*time.Second, top[2]))

	// 2. Predictor accuracy for a held-out viewer.
	user := trace.UserProfile{ID: "newcomer", SpeedScale: 1}
	holdout := trace.Generate(rand.New(rand.NewSource(5)), user, att, dur)
	fmt.Println("held-out viewer, 4s prediction horizon:")
	for _, p := range []struct {
		name string
		mk   func() hmp.Predictor
	}{
		{"linear", func() hmp.Predictor { return &hmp.LinearRegression{} }},
		{"crowd", func() hmp.Predictor { return &hmp.Crowd{Heatmap: heat} }},
		{"fusion", func() hmp.Predictor {
			return &hmp.Fusion{Heatmap: heat, SpeedBound: 260, Context: &user.Context}
		}},
	} {
		acc := hmp.Evaluate(p.mk, holdout, sphere.DefaultFoV, 4*time.Second)
		fmt.Printf("  %-8s mean err %5.1f°, FoV hit rate %.2f\n", p.name, acc.MeanError, acc.HitRate)
	}

	// 3. Streaming with crowd-informed OOS pruning.
	run := func(h *hmp.Heatmap) core.Report {
		clock := sim.NewClock(6)
		path := netem.NewPath(clock, "net", netem.Constant(18e6), 20*time.Millisecond, 0)
		s, err := core.NewSession(clock, core.Config{
			Video:     video,
			Mode:      core.FoVGuided,
			Algorithm: &abr.Fixed{Q: 4},
			Heatmap:   h,
			OOS:       abr.OOSPolicy{MaxRing: 3, MinCrowdProb: 0.2},
		}, holdout, transport.NewSinglePath(clock, path))
		if err != nil {
			panic(err)
		}
		return s.Run()
	}
	with := run(heat)
	without := run(nil)
	fmt.Printf("\nsession with crowd pruning:    %.1f MB fetched, FoV quality %.2f\n",
		float64(with.BytesFetched)/1e6, with.QoE.MeanQuality())
	fmt.Printf("session without crowd data:    %.1f MB fetched, FoV quality %.2f\n",
		float64(without.BytesFetched)/1e6, without.QoE.MeanQuality())
	fmt.Printf("crowd statistics trimmed %.0f%% of the bytes at equal quality (§3.2).\n",
		(1-float64(with.BytesFetched)/float64(without.BytesFetched))*100)
}

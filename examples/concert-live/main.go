// Concert-live: a live 360° concert broadcast hits a degraded uplink.
// The broadcaster can keep dropping frames (today's behaviour), reduce
// the whole panorama's quality, or use Sperke's spatial fall-back
// (§3.4.2): keep full quality but upload only the horizon the crowd
// actually watches.
//
//	go run ./examples/concert-live
package main

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/live"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func main() {
	// The audience: 200 viewers watching the stage (yaw ≈ 0), a handful
	// wandering. Their live head traces double as the crowd signal the
	// horizon planner uses.
	rng := rand.New(rand.NewSource(42))
	dur := 30 * time.Second
	// The performer crosses the stage at ~10°/s, so the crowd's gaze
	// drifts — exactly the motion a lagging viewer cannot anticipate
	// alone.
	att := &trace.Attention{Hotspots: []trace.Hotspot{{
		Center: sphere.Orientation{Yaw: -20}, Start: 0, Duration: dur, Pull: 0.95, Drift: 10,
	}}}
	var viewers []live.Viewer
	var views []sphere.Orientation
	for i := 0; i < 40; i++ {
		profile := trace.UserProfile{ID: fmt.Sprintf("fan-%d", i), SpeedScale: 1,
			Context: trace.Context{Engaged: 0.95}}
		tr := trace.Generate(rand.New(rand.NewSource(int64(100+i))), profile, att, dur)
		viewers = append(viewers, live.Viewer{Trace: tr, Latency: time.Duration(8+i%20) * time.Second})
		views = append(views, tr.At(15*time.Second))
	}
	_ = rng

	// The crowd heatmap tells the planner where the audience looks.
	heat := live.LiveHeatmap(tiling.GridPrototype, sphere.Equirectangular{}, sphere.DefaultFoV,
		2*time.Second, dur, viewers)
	crowdCenter := heat.CrowdCenter(15 * time.Second)
	fmt.Printf("crowd center at t=15s: %v\n\n", crowdCenter)

	fmt.Println("uplink drops to 50% of the source rate — the broadcaster's options:")
	fmt.Printf("%-18s %16s %14s\n", "mode", "FoV quality", "blanked views")
	plan := live.PlanHorizon(nil, heat, 15*time.Second, 0.5, 160)
	for _, mode := range []live.UploadMode{
		live.UploadFixed, live.UploadQualityReduce, live.UploadSpatialFallback,
	} {
		out := live.EvaluateFallback(mode, plan, 0.5, views, sphere.DefaultFoV)
		fmt.Printf("%-18s %16.2f %13.0f%%\n", mode, out.MeanFoVQuality, out.OutsideHorizonFrac*100)
	}
	fmt.Printf("\nplanned horizon: %.0f° centered at %v (floor 160° keeps the stage visible)\n",
		plan.SpanDeg, plan.Center)

	// Bonus: the same crowd predicts for a lagging viewer (§3.4.2's
	// second idea).
	lagger := live.Viewer{
		Trace: trace.Generate(rand.New(rand.NewSource(999)),
			trace.UserProfile{ID: "lagger", SpeedScale: 1, Context: trace.Context{Engaged: 0.9}}, att, dur),
		Latency: 40 * time.Second,
	}
	pred := &live.CrowdLivePredictor{Ahead: viewers, TargetLatency: lagger.Latency}
	rep := live.LiveHMPAccuracy(pred, lagger, sphere.DefaultFoV, dur, 6*time.Second)
	fmt.Printf("\ncrowd-sourced HMP for the lagging viewer (6s horizon, moving performer):\n")
	fmt.Printf("  static hit rate %.2f, crowd hit rate %.2f, recovery of misses %.2f\n",
		rep.StaticHit, rep.CrowdHit, rep.CrowdRecovery)
}

module sperke

go 1.22

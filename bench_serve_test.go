package sperke_bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sperke/internal/cluster"
	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/serve"
	"sperke/internal/tiling"
)

func benchVideo() *media.Video {
	return &media.Video{
		ID:             "bench",
		Duration:       20 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}
}

func benchKeys(v *media.Video) []serve.ChunkKey {
	var keys []serve.ChunkKey
	for idx := 0; idx < v.NumChunks(); idx++ {
		for tile := 0; tile < v.Grid.Tiles(); tile++ {
			keys = append(keys, serve.ChunkKey{Video: v.ID, Quality: 3, Tile: tile, Index: idx})
		}
	}
	return keys
}

// BenchmarkChunkStore pins the sharded chunk store's cache win: "warm"
// serves resident bodies, "cold" synthesizes every request (a 1-byte
// budget makes everything uncacheable). The acceptance bar for PR 4 is
// warm ≥ 5× faster than cold; PR 5 additionally pins the allocation
// profile of both paths in BENCH_BASELINE.json.
func BenchmarkChunkStore(b *testing.B) {
	v := benchVideo()
	catalog := dash.NewCatalog()
	if err := catalog.Add(v); err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(v)
	run := func(b *testing.B, st *serve.Store) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := st.Get(ctx, keys[i%len(keys)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		st := serve.NewCatalogStore(catalog, serve.StoreConfig{Shards: 16, BudgetBytes: 1})
		b.ReportAllocs()
		b.ResetTimer()
		run(b, st)
	})
	b.Run("warm", func(b *testing.B) {
		st := serve.NewCatalogStore(catalog, serve.StoreConfig{Shards: 16, BudgetBytes: 256 << 20})
		ctx := context.Background()
		for _, k := range keys {
			if _, err := st.Get(ctx, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		run(b, st)
	})
}

// BenchmarkAppendChunkBody pins the synthesis chain itself: "fresh"
// allocates a new body per chunk (the legacy BuildChunkBody shape),
// "reuse" rebuilds into one recycled buffer — the steady state of the
// pooled handler scratch path, which must stay at zero allocs/op.
func BenchmarkAppendChunkBody(b *testing.B) {
	v := benchVideo()
	keys := benchKeys(v)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			if _, err := dash.BuildChunkBody(v, k.Quality, k.Tile, k.Index, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			out, err := dash.AppendChunkBody(buf[:0], v, k.Quality, k.Tile, k.Index, false)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
}

// discardResponse sinks a response body without buffering it — the
// benchmark's stand-in for a network connection, so the numbers measure
// the handler, not a recorder's append loop.
type discardResponse struct {
	h http.Header
	n int64
}

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) WriteHeader(int)             {}
func (d *discardResponse) Write(p []byte) (int, error) { d.n += int64(len(p)); return len(p), nil }

// BenchmarkColdServeThroughput pins the writer-first serving path's
// headline number: bytes per second streamed by the store-less handler,
// which regenerates every body block-by-block straight into the
// ResponseWriter (zero body materialization). b.SetBytes makes the
// gate-tracked MB/s column; allocs/op must stay at mux routing
// overhead, never body-sized.
func BenchmarkColdServeThroughput(b *testing.B) {
	v := benchVideo()
	catalog := dash.NewCatalog()
	if err := catalog.Add(v); err != nil {
		b.Fatal(err)
	}
	srv := dash.NewServer(catalog)
	bodyLen, err := dash.ChunkBodyLen(v, 3, 0, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v/bench/c/3/0/0", nil)
	w := &discardResponse{h: make(http.Header, 4)}
	srv.ServeHTTP(w, req) // warm the mux and block pool
	b.SetBytes(int64(bodyLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ServeHTTP(w, req)
	}
	if w.n == 0 {
		b.Fatal("no bytes served")
	}
}

// BenchmarkWireColdServeThroughput pins the wire cluster's router
// proxy path: a front-door GET rendezvous-routes to an edge node over
// its loopback carrier and the router streams the edge's response body
// into the ResponseWriter through a pooled copy block. The router
// holds no cache of its own — every op is a full over-the-wire round
// trip — so allocs/op is the price of one proxied request and must
// never grow body-sized (the streamdiscipline vet bans io.ReadAll on
// this path; benchgate pins the number).
func BenchmarkWireColdServeThroughput(b *testing.B) {
	v := benchVideo()
	catalog := dash.NewCatalog()
	if err := catalog.Add(v); err != nil {
		b.Fatal(err)
	}
	origin := serve.NewCatalogStore(catalog, serve.StoreConfig{Shards: 16, BudgetBytes: 256 << 20})
	c, err := cluster.New(origin,
		cluster.WithNodes(3),
		cluster.WithLoopback(),
		cluster.WithCatalog(catalog),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, name := range c.NodeNames() {
			c.RemoveNode(name)
		}
	}()
	front := c.FrontDoor()
	bodyLen, err := dash.ChunkBodyLen(v, 3, 0, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v/bench/c/3/0/0", nil)
	w := &discardResponse{h: make(http.Header, 4)}
	front.ServeHTTP(w, req) // warm the owning edge and the copy pool
	b.SetBytes(int64(bodyLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front.ServeHTTP(w, req)
	}
	if w.n == 0 {
		b.Fatal("no bytes served")
	}
}

// BenchmarkWireCoalescedHerd pins the router singleflight's price
// under contention: parallel front-door GETs of one warm key, so every
// op runs the coalescer's enter/finish protocol (leading its own
// flight or briefly following a concurrent one) on top of the proxied
// round trip. The column to watch is allocs/op — a flight costs its
// leader one struct, and the protocol must never add body-sized work
// or a channel per uncontended op.
func BenchmarkWireCoalescedHerd(b *testing.B) {
	v := benchVideo()
	catalog := dash.NewCatalog()
	if err := catalog.Add(v); err != nil {
		b.Fatal(err)
	}
	origin := serve.NewCatalogStore(catalog, serve.StoreConfig{Shards: 16, BudgetBytes: 256 << 20})
	c, err := cluster.New(origin,
		cluster.WithNodes(3),
		cluster.WithLoopback(),
		cluster.WithCatalog(catalog),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	defer func() {
		for _, name := range c.NodeNames() {
			c.RemoveNode(name)
		}
	}()
	front := c.FrontDoor()
	bodyLen, err := dash.ChunkBodyLen(v, 3, 0, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	warm := httptest.NewRequest("GET", "/v/bench/c/3/0/0", nil)
	front.ServeHTTP(&discardResponse{h: make(http.Header, 4)}, warm)
	b.SetBytes(int64(bodyLen))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest("GET", "/v/bench/c/3/0/0", nil)
		w := &discardResponse{h: make(http.Header, 4)}
		for pb.Next() {
			front.ServeHTTP(w, req)
		}
	})
}

// BenchmarkConcurrentSessions pins the session engine's scaling: 32
// simulated viewers at 1 worker vs 8. The acceptance bar is >2× wall
// speedup at 8 workers — with byte-identical per-session QoE, which the
// benchmark itself verifies against the first run's reports.
func BenchmarkConcurrentSessions(b *testing.B) {
	v := benchVideo()
	var baseline []serve.SessionResult
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := serve.NewEngine(serve.EngineConfig{
					Video:    v,
					Sessions: 32,
					Workers:  workers,
					BaseSeed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := eng.Run(context.Background())
				if baseline == nil {
					baseline = res.Sessions
					continue
				}
				for j := range res.Sessions {
					if !reflect.DeepEqual(res.Sessions[j].Report, baseline[j].Report) {
						b.Fatalf("session %d QoE differs from the 1-worker baseline", j)
					}
				}
			}
		})
	}
}

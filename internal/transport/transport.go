// Package transport moves chunk requests over emulated network paths.
// It defines the request vocabulary — every chunk carries the spatial
// and temporal priorities of Table 1 (FoV vs OOS, urgent vs regular) —
// and the scheduler interface that single-path and multipath strategies
// (§3.3) implement. Schedulers hold their own priority queues and keep
// at most a small number of transfers outstanding per path, so that a
// newly urgent chunk can overtake queued regular ones instead of
// drowning behind them.
package transport

import (
	"container/heap"
	"context"
	"time"

	"sperke/internal/netem"
	"sperke/internal/tiling"
)

// Class is the spatial priority of a chunk (Table 1).
type Class int

// Spatial priorities.
const (
	// ClassFoV marks chunks inside the predicted field of view.
	ClassFoV Class = iota
	// ClassOOS marks out-of-sight chunks fetched to absorb HMP error.
	ClassOOS
)

func (c Class) String() string {
	if c == ClassFoV {
		return "fov"
	}
	return "oos"
}

// Request is one chunk download.
type Request struct {
	Chunk tiling.ChunkID
	Bytes int64
	// Deadline is the playback time by which the chunk must arrive.
	Deadline time.Duration
	// Class is the spatial priority; Urgent the temporal one (Table 1).
	// A chunk turns urgent when an HMP correction leaves it a very short
	// deadline (§3.3).
	Class  Class
	Urgent bool
	// Probability the chunk will be displayed (1 for FoV chunks).
	Probability float64
	// OnDone receives the delivery outcome and whether the deadline was
	// met. May be nil.
	OnDone func(d netem.Delivery, metDeadline bool)

	seq     int             // submission order, for stable tie-breaks
	retries int             // redispatches consumed after lost deliveries (Failover)
	ctx     context.Context // caller's context (SubmitCtx); nil means Background
}

// Context returns the context the request was submitted under;
// requests submitted through the legacy Submit carry Background.
func (r *Request) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// canceled reports whether the submitter no longer wants the request.
func (r *Request) canceled() bool {
	return r.ctx != nil && r.ctx.Err() != nil
}

// less orders requests by Table 1: urgent before regular, FoV before
// OOS, then earliest deadline, then submission order.
func (r *Request) less(o *Request) bool {
	if r.Urgent != o.Urgent {
		return r.Urgent
	}
	if r.Class != o.Class {
		return r.Class == ClassFoV
	}
	if r.Deadline != o.Deadline {
		return r.Deadline < o.Deadline
	}
	return r.seq < o.seq
}

// Queue is a priority queue of requests in Table 1 order. The zero
// value is ready to use.
type Queue struct {
	h   reqHeap
	seq int
}

type reqHeap []*Request

func (h reqHeap) Len() int           { return len(h) }
func (h reqHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h reqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x any)        { *h = append(*h, x.(*Request)) }
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// Push enqueues a request.
func (q *Queue) Push(r *Request) {
	r.seq = q.seq
	q.seq++
	heap.Push(&q.h, r)
}

// Pop removes and returns the highest-priority request, or nil.
func (q *Queue) Pop() *Request {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Request)
}

// Peek returns the highest-priority request without removing it, or
// nil.
func (q *Queue) Peek() *Request {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len returns the number of queued requests.
func (q *Queue) Len() int { return len(q.h) }

// Scheduler dispatches chunk requests onto network paths.
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Submit enqueues one request; the scheduler decides path, order and
	// QoS.
	Submit(r *Request)
}

// ContextScheduler is implemented by schedulers whose submissions honor
// a caller context: a request whose context is done by the time the
// scheduler would dispatch it is shed (completed with a failed
// delivery) instead of occupying the wire. SinglePath and Failover
// implement it; callers holding only a Scheduler can type-assert, and
// SubmitContext does exactly that as a convenience.
type ContextScheduler interface {
	Scheduler
	// SubmitCtx enqueues one request under ctx. Cancellation is checked
	// at dispatch points (sim-clock schedulers cannot observe it between
	// events); a canceled request completes through OnDone with a failed
	// delivery.
	SubmitCtx(ctx context.Context, r *Request)
}

// SubmitContext submits r under ctx when the scheduler supports
// contexts and falls back to a plain Submit otherwise — the one-line
// bridge call sites use while legacy schedulers remain.
func SubmitContext(s Scheduler, ctx context.Context, r *Request) {
	if cs, ok := s.(ContextScheduler); ok {
		cs.SubmitCtx(ctx, r)
		return
	}
	s.Submit(r)
}

// Clock abstracts the time source for deadline checks and breaker
// cooldowns: *sim.Clock in simulated pipelines, obs.Wall (or anything
// with a Now) in real-socket ones. Exported so other layers — the
// edge/origin cluster's health detector reuses Breaker — can name the
// seam they must satisfy.
type Clock interface{ Now() time.Duration }

// SinglePath sends everything over one path, reliably, in Table 1
// order, keeping one transfer in flight so priorities stay live.
type SinglePath struct {
	Path  *netem.Path
	Clock Clock

	q      Queue
	active bool
}

// NewSinglePath creates a single-path scheduler.
func NewSinglePath(clock Clock, path *netem.Path) *SinglePath {
	return &SinglePath{Path: path, Clock: clock}
}

// Name implements Scheduler.
func (s *SinglePath) Name() string { return "single-path" }

// Submit implements Scheduler.
func (s *SinglePath) Submit(r *Request) {
	s.q.Push(r)
	s.pump()
}

// SubmitCtx implements ContextScheduler: the request is shed at
// dispatch time if ctx has been canceled by then.
func (s *SinglePath) SubmitCtx(ctx context.Context, r *Request) {
	r.ctx = ctx
	s.Submit(r)
}

// shed completes a request that will never be dispatched with a failed
// zero-service delivery at the current virtual time.
func shed(clock Clock, r *Request) {
	if r.OnDone == nil {
		return
	}
	var now time.Duration
	if clock != nil {
		now = clock.Now()
	}
	r.OnDone(netem.Delivery{Start: now, Service: now, Done: now, Bytes: r.Bytes, OK: false}, false)
}

func (s *SinglePath) pump() {
	if s.active {
		return
	}
	r := s.q.Pop()
	for r != nil && r.canceled() {
		shed(s.Clock, r)
		r = s.q.Pop()
	}
	if r == nil {
		return
	}
	s.active = true
	s.Path.Transfer(r.Bytes, netem.Reliable, func(d netem.Delivery) {
		s.active = false
		if r.OnDone != nil {
			r.OnDone(d, d.Done <= r.Deadline)
		}
		s.pump()
	})
}

// Pending returns the queued (not in-flight) request count.
func (s *SinglePath) Pending() int { return s.q.Len() }

package transport

import (
	"testing"
	"testing/quick"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
)

func req(tile int, class Class, urgent bool, deadline time.Duration, bytes int64) *Request {
	return &Request{
		Chunk:    tiling.ChunkID{Tile: tiling.TileID(tile)},
		Bytes:    bytes,
		Deadline: deadline,
		Class:    class,
		Urgent:   urgent,
	}
}

func TestQueueTable1Ordering(t *testing.T) {
	var q Queue
	regOOS := req(1, ClassOOS, false, 10*time.Second, 1)
	regFoV := req(2, ClassFoV, false, 10*time.Second, 1)
	urgOOS := req(3, ClassOOS, true, 10*time.Second, 1)
	urgFoV := req(4, ClassFoV, true, 10*time.Second, 1)
	q.Push(regOOS)
	q.Push(regFoV)
	q.Push(urgOOS)
	q.Push(urgFoV)
	want := []*Request{urgFoV, urgOOS, regFoV, regOOS}
	for i, w := range want {
		if got := q.Pop(); got != w {
			t.Fatalf("pop %d = tile %d, want tile %d", i, got.Chunk.Tile, w.Chunk.Tile)
		}
	}
	if q.Pop() != nil {
		t.Fatal("empty queue popped non-nil")
	}
}

func TestQueueDeadlineTieBreak(t *testing.T) {
	var q Queue
	late := req(1, ClassFoV, false, 10*time.Second, 1)
	early := req(2, ClassFoV, false, 2*time.Second, 1)
	q.Push(late)
	q.Push(early)
	if got := q.Pop(); got != early {
		t.Fatal("earlier deadline did not win")
	}
}

func TestQueueFIFOAmongEquals(t *testing.T) {
	var q Queue
	a := req(1, ClassFoV, false, time.Second, 1)
	b := req(2, ClassFoV, false, time.Second, 1)
	q.Push(a)
	q.Push(b)
	if q.Pop() != a || q.Pop() != b {
		t.Fatal("equal-priority requests not FIFO")
	}
}

func TestSinglePathDeliversInPriorityOrder(t *testing.T) {
	clock := sim.NewClock(1)
	path := netem.NewPath(clock, "p", netem.Constant(8e6), 0, 0)
	s := NewSinglePath(clock, path)

	var order []tiling.TileID
	mk := func(tile int, class Class, urgent bool) *Request {
		r := req(tile, class, urgent, time.Minute, 1e6)
		r.OnDone = func(d netem.Delivery, met bool) {
			order = append(order, r.Chunk.Tile)
			if !met {
				t.Errorf("tile %d missed a one-minute deadline", tile)
			}
		}
		return r
	}
	// Submit low-priority first; the in-flight one (tile 1) cannot be
	// preempted but the rest must reorder.
	s.Submit(mk(1, ClassOOS, false))
	s.Submit(mk(2, ClassOOS, false))
	s.Submit(mk(3, ClassFoV, false))
	s.Submit(mk(4, ClassOOS, true))
	clock.Run()
	want := []tiling.TileID{1, 4, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", s.Pending())
	}
}

func TestSinglePathDeadlineReported(t *testing.T) {
	clock := sim.NewClock(1)
	path := netem.NewPath(clock, "p", netem.Constant(8e6), 0, 0)
	s := NewSinglePath(clock, path)
	var met, missed bool
	r1 := req(1, ClassFoV, false, 2*time.Second, 1e6) // takes 1s → met
	r1.OnDone = func(d netem.Delivery, ok bool) { met = ok }
	r2 := req(2, ClassFoV, false, 1500*time.Millisecond, 1e6) // finishes at 2s → missed
	r2.OnDone = func(d netem.Delivery, ok bool) { missed = !ok }
	s.Submit(r1)
	s.Submit(r2)
	clock.Run()
	if !met {
		t.Fatal("r1 deadline should be met")
	}
	if !missed {
		t.Fatal("r2 deadline should be missed")
	}
}

func TestClassString(t *testing.T) {
	if ClassFoV.String() != "fov" || ClassOOS.String() != "oos" {
		t.Fatal("bad class strings")
	}
}

func TestQueuePropertyPopOrder(t *testing.T) {
	// Property: popping the whole queue yields the Table 1 order —
	// urgent first, FoV before OOS, earlier deadlines first.
	f := func(raw []uint16) bool {
		var q Queue
		for i, r := range raw {
			q.Push(&Request{
				Chunk:    tiling.ChunkID{Tile: tiling.TileID(i)},
				Deadline: time.Duration(r%64) * time.Second,
				Class:    Class(int(r>>6) % 2),
				Urgent:   (r>>7)%2 == 0,
			})
		}
		var prev *Request
		for {
			cur := q.Pop()
			if cur == nil {
				return true
			}
			if prev != nil {
				if prev.less(cur) == false && cur.less(prev) {
					return false // strictly out of order
				}
			}
			prev = cur
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

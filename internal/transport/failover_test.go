package transport

import (
	"testing"
	"time"

	"sperke/internal/faults"
	"sperke/internal/netem"
	"sperke/internal/sim"
)

func failoverReq(bytes int64, deadline time.Duration, done *[]bool) *Request {
	return &Request{
		Class:    ClassFoV,
		Bytes:    bytes,
		Deadline: deadline,
		OnDone: func(d netem.Delivery, ok bool) {
			*done = append(*done, ok)
		},
	}
}

func TestFailoverPrefersFastestHealthyPath(t *testing.T) {
	clock := sim.NewClock(1)
	fast := netem.NewPath(clock, "fast", netem.Constant(16e6), 0, 0)
	slow := netem.NewPath(clock, "slow", netem.Constant(1e6), 0, 0)
	f := NewFailover(clock, BreakerConfig{}, fast, slow)
	var done []bool
	for i := 0; i < 3; i++ {
		f.Submit(failoverReq(1e5, time.Minute, &done))
	}
	clock.Run()
	if f.Stats(0).Dispatched == 0 {
		t.Fatal("fast path never used")
	}
	if f.Stats(1).Dispatched != 0 {
		t.Fatal("slow path used while the fast one was cheaper")
	}
	for i, ok := range done {
		if !ok {
			t.Fatalf("request %d failed", i)
		}
	}
}

func TestFailoverTripsAndReroutesQueuedRequests(t *testing.T) {
	clock := sim.NewClock(1)
	// wifi is the faster path, so a burst submitted before the outage all
	// queues there. The outage then catches the backlog: the in-service
	// transfer stalls past its deadline, the breaker trips, and the still
	// queued requests must move to lte instead of waiting out the window.
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(4e6), 0, 0)
	if err := faults.MustParse("outage:wifi:2500ms:3500ms").Apply(clock, wifi); err != nil {
		t.Fatal(err)
	}
	f := NewFailover(clock, BreakerConfig{FailureThreshold: 1, Cooldown: 2 * time.Second}, wifi, lte)
	var done []bool
	for i := 0; i < 12; i++ {
		// Tight deadlines on the first three (the outage will break the
		// third); the rest are loose enough to still matter after failover.
		deadline := 30 * time.Second
		if i < 3 {
			deadline = 3 * time.Second
		}
		f.Submit(failoverReq(1e6, deadline, &done)) // 1s on wifi, 2s on lte
	}
	clock.RunUntil(time.Minute)
	if !f.Breaker(0).Opened() {
		t.Fatal("wifi breaker never opened across the outage")
	}
	if f.Stats(0).Rerouted == 0 {
		t.Fatal("no queued requests rerouted off the tripped path")
	}
	if f.Stats(1).Dispatched == 0 {
		t.Fatal("lte never received the rerouted work")
	}
	if len(done) != 12 {
		t.Fatalf("%d completions, want all 12 despite the outage", len(done))
	}
	if f.Stats(0).Successes == 0 {
		t.Fatal("pre-outage wifi deliveries should have met their deadlines")
	}
}

func TestFailoverDeadlineMissAccountingAcrossFaultPlan(t *testing.T) {
	clock := sim.NewClock(1)
	// A single path with a mid-run bandwidth cliff: requests submitted
	// during the cliff arrive late and must be counted as deadline misses,
	// not failures.
	p := netem.NewPath(clock, "lte", netem.Constant(8e6), 0, 0)
	if err := faults.MustParse("cliff:lte:2s:6s:100k").Apply(clock, p); err != nil {
		t.Fatal(err)
	}
	f := NewFailover(clock, BreakerConfig{FailureThreshold: 100}, p)
	var done []bool
	for i := 0; i < 8; i++ {
		at := time.Duration(i) * time.Second
		req := failoverReq(1e5, at+500*time.Millisecond, &done)
		clock.Schedule(at, func() { f.Submit(req) })
	}
	clock.Run()
	st := f.Stats(0)
	if st.DeadlineMisses == 0 {
		t.Fatal("no deadline misses recorded across the cliff")
	}
	if st.Successes == 0 {
		t.Fatal("no successes outside the cliff window")
	}
	if st.Failures != 0 {
		t.Fatalf("late reliable deliveries miscounted as failures: %+v", st)
	}
	if st.Successes+st.DeadlineMisses+st.Expired != len(done) {
		t.Fatalf("accounting does not cover completions: %+v vs %d done", st, len(done))
	}
}

func TestFailoverTotalOutageWakesUpAndRecovers(t *testing.T) {
	clock := sim.NewClock(1)
	// Every path dies, breakers trip, requests park. After the outage ends
	// and a cooldown passes, the armed wakeup must revive the queues.
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(8e6), 0, 0)
	if err := faults.MustParse("outage:*:0:4s").Apply(clock, wifi, lte); err != nil {
		t.Fatal(err)
	}
	f := NewFailover(clock, BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}, wifi, lte)
	var done []bool
	for i := 0; i < 6; i++ {
		// Best-effort requests with generous deadlines: the outage loses
		// them (tripping the breakers), yet the post-cooldown probes can
		// still succeed and re-close.
		f.Submit(&Request{
			Class: ClassOOS, Bytes: 1e5, Deadline: time.Minute,
			OnDone: func(d netem.Delivery, ok bool) { done = append(done, ok) },
		})
	}
	// A second wave after the cooldown gives the tripped breaker probe
	// traffic, so it can demonstrate the half-open → closed recovery.
	clock.Schedule(6*time.Second, func() {
		for i := 0; i < 2; i++ {
			f.Submit(&Request{
				Class: ClassOOS, Bytes: 1e5, Deadline: time.Minute,
				OnDone: func(d netem.Delivery, ok bool) { done = append(done, ok) },
			})
		}
	})
	clock.RunUntil(time.Minute)
	if f.Pending() != 0 {
		t.Fatalf("%d requests still stranded after the outage ended", f.Pending())
	}
	if len(done) != 8 {
		t.Fatalf("%d completions, want 8", len(done))
	}
	if !f.Breaker(0).Opened() && !f.Breaker(1).Opened() {
		t.Fatal("no breaker opened during a total outage")
	}
	reclosed := f.Breaker(0).Reclosed() || f.Breaker(1).Reclosed()
	if !reclosed {
		t.Fatal("no breaker re-closed after recovery")
	}
}

func TestFailoverRetriesLostDeliveries(t *testing.T) {
	clock := sim.NewClock(3)
	// Heavy loss on a best-effort class: lost deliveries are retried up to
	// MaxRetries while the deadline stands.
	p := netem.NewPath(clock, "lossy", netem.Constant(8e6), 0, 0.9)
	f := NewFailover(clock, BreakerConfig{FailureThreshold: 1000}, p)
	f.MaxRetries = 5
	var done []bool
	req := &Request{
		Class: ClassOOS, Bytes: 1e5, Deadline: time.Minute,
		OnDone: func(d netem.Delivery, ok bool) { done = append(done, ok) },
	}
	f.Submit(req)
	clock.Run()
	st := f.Stats(0)
	if st.Failures == 0 {
		t.Fatal("0.9 loss produced no failures")
	}
	if st.Retries == 0 {
		t.Fatal("lost deliveries were not retried")
	}
	if st.Retries > 5 {
		t.Fatalf("%d retries exceed MaxRetries=5", st.Retries)
	}
	if len(done) != 1 {
		t.Fatalf("OnDone fired %d times, want exactly once", len(done))
	}
}

func TestFailoverNegativeMaxRetriesDisables(t *testing.T) {
	clock := sim.NewClock(3)
	// A best-effort transfer submitted during an outage is lost
	// deterministically; with retries disabled the failure must surface
	// directly.
	p := netem.NewPath(clock, "lossy", netem.Constant(8e6), 0, 0)
	p.AddOutage(0, time.Second)
	f := NewFailover(clock, BreakerConfig{FailureThreshold: 1000}, p)
	f.MaxRetries = -1
	var done []bool
	f.Submit(&Request{
		Class: ClassOOS, Bytes: 1e5, Deadline: time.Minute,
		OnDone: func(d netem.Delivery, ok bool) { done = append(done, ok) },
	})
	clock.Run()
	if f.Stats(0).Retries != 0 {
		t.Fatal("retries happened with MaxRetries < 0")
	}
	if len(done) != 1 || done[0] {
		t.Fatalf("want a single failed completion, got %v", done)
	}
}

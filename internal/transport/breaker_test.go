package transport

import (
	"testing"
	"time"

	"sperke/internal/sim"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clock := sim.NewClock(1)
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 3})
	if b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if !b.Opened() {
		t.Fatal("Opened() false after trip")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clock := sim.NewClock(1)
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 3})
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	clock := sim.NewClock(1)
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 1, Cooldown: 2 * time.Second})
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	if got := b.RetryAt(); got != 2*time.Second {
		t.Fatalf("RetryAt = %v, want 2s", got)
	}
	clock.RunUntil(time.Second)
	if b.Allow() {
		t.Fatal("allowed before cooldown")
	}
	clock.RunUntil(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("cooldown did not half-open")
	}
	if !b.Allow() {
		t.Fatal("half-open refused the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open allowed a second concurrent probe")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("probe success did not close")
	}
	if !b.Reclosed() {
		t.Fatal("Reclosed() false after open→half-open→closed")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := sim.NewClock(1)
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.OnFailure()
	clock.RunUntil(time.Second)
	if !b.Allow() {
		t.Fatal("no probe allowed")
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("probe failure did not reopen")
	}
	if got := b.RetryAt(); got != 2*time.Second {
		t.Fatalf("RetryAt = %v, want a fresh full cooldown (2s)", got)
	}
}

func TestBreakerProbeSuccessesThreshold(t *testing.T) {
	clock := sim.NewClock(1)
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, ProbeSuccesses: 2})
	b.OnFailure()
	clock.RunUntil(time.Second)
	b.Allow()
	b.OnSuccess()
	if b.State() != BreakerHalfOpen {
		t.Fatal("closed after 1 of 2 required probe successes")
	}
	b.Allow()
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("did not close after 2 probe successes")
	}
}

func TestBreakerTransitionsLog(t *testing.T) {
	clock := sim.NewClock(1)
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.OnFailure()
	clock.RunUntil(time.Second)
	b.Allow()
	b.OnSuccess()
	trs := b.Transitions()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(trs) != len(want) {
		t.Fatalf("%d transitions, want %d: %+v", len(trs), len(want), trs)
	}
	for i, w := range want {
		if trs[i].To != w {
			t.Fatalf("transition %d to %v, want %v", i, trs[i].To, w)
		}
	}
	if trs[1].At != time.Second {
		t.Fatalf("half-open at %v, want 1s", trs[1].At)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" ||
		BreakerHalfOpen.String() != "half-open" {
		t.Fatal("bad state strings")
	}
}

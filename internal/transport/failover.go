package transport

import (
	"context"
	"time"

	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/sim"
)

// PathStats is the per-path delivery accounting a Failover scheduler
// keeps — the observable chaos tests assert against.
type PathStats struct {
	// Dispatched counts transfers handed to the path.
	Dispatched int
	// Successes counts deliveries that arrived intact and on time.
	Successes int
	// Failures counts lost deliveries.
	Failures int
	// DeadlineMisses counts deliveries that arrived but late.
	DeadlineMisses int
	// Rerouted counts queued requests moved off this path after its
	// breaker tripped.
	Rerouted int
	// Retries counts failed deliveries redispatched from this path.
	Retries int
	// Expired counts queued requests shed because their deadline passed
	// before they could be dispatched.
	Expired int
	// Canceled counts queued requests shed because their submission
	// context was canceled before they could be dispatched (SubmitCtx).
	Canceled int
}

// Failover is a multipath scheduler with a circuit breaker per path:
// consecutive deadline misses or delivery failures trip a path open,
// its queued requests reroute to healthy paths, and after a cooldown a
// single probe request tests recovery. This is the mechanism §3.3's
// "newly urgent chunk overtakes queued regular ones" implies for a
// degraded path: rather than letting urgent chunks drown behind a
// stalled queue, the whole queue moves.
type Failover struct {
	Clock *sim.Clock
	// MaxRetries bounds how many times one request is redispatched after
	// a lost delivery; 0 defaults to 2, negative disables retries.
	MaxRetries int

	paths    []*netem.Path
	breakers []*Breaker
	queues   []Queue
	active   []int
	stats    []PathStats
	wakeup   *sim.Event
	met      failoverMetrics
}

// failoverMetrics caches the scheduler's instruments so hot-path
// updates are a pointer call; all fields are nil (no-op) until SetObs.
type failoverMetrics struct {
	queueDepth *obs.Gauge
	dispatched *obs.Counter
	successes  *obs.Counter
	failures   *obs.Counter
	misses     *obs.Counter
	rerouted   *obs.Counter
	retries    *obs.Counter
	expired    *obs.Counter
	canceled   *obs.Counter
}

// SetObs wires the scheduler (and every path breaker) into a metrics
// registry: queue depth gauge, dispatch/outcome counters, reroute and
// expiry-shed counts, breaker transition counters. A nil registry
// leaves everything a no-op.
func (f *Failover) SetObs(r *obs.Registry) {
	f.met = failoverMetrics{
		queueDepth: r.Gauge("transport.failover.queue_depth"),
		dispatched: r.Counter("transport.failover.dispatched"),
		successes:  r.Counter("transport.failover.successes"),
		failures:   r.Counter("transport.failover.failures"),
		misses:     r.Counter("transport.failover.deadline_misses"),
		rerouted:   r.Counter("transport.failover.rerouted"),
		retries:    r.Counter("transport.failover.retries"),
		expired:    r.Counter("transport.failover.expired"),
		canceled:   r.Counter("transport.failover.canceled"),
	}
	for _, b := range f.breakers {
		b.Obs = r
	}
}

// NewFailover builds the scheduler over the given paths, one breaker
// per path.
func NewFailover(clock *sim.Clock, cfg BreakerConfig, paths ...*netem.Path) *Failover {
	f := &Failover{
		Clock:    clock,
		paths:    paths,
		breakers: make([]*Breaker, len(paths)),
		queues:   make([]Queue, len(paths)),
		active:   make([]int, len(paths)),
		stats:    make([]PathStats, len(paths)),
	}
	for i := range paths {
		f.breakers[i] = NewBreaker(clock, cfg)
	}
	return f
}

// Name implements Scheduler.
func (f *Failover) Name() string { return "failover" }

// Breaker exposes path i's breaker for observation.
func (f *Failover) Breaker(i int) *Breaker { return f.breakers[i] }

// Stats returns path i's delivery accounting.
func (f *Failover) Stats(i int) PathStats { return f.stats[i] }

// TotalStats aggregates accounting across paths.
func (f *Failover) TotalStats() PathStats {
	var t PathStats
	for _, s := range f.stats {
		t.Dispatched += s.Dispatched
		t.Successes += s.Successes
		t.Failures += s.Failures
		t.DeadlineMisses += s.DeadlineMisses
		t.Rerouted += s.Rerouted
		t.Retries += s.Retries
		t.Expired += s.Expired
		t.Canceled += s.Canceled
	}
	return t
}

// Pending returns queued (not in-flight) requests across all paths.
func (f *Failover) Pending() int {
	n := 0
	for i := range f.queues {
		n += f.queues[i].Len()
	}
	return n
}

func (f *Failover) maxRetries() int {
	if f.MaxRetries == 0 {
		return 2
	}
	if f.MaxRetries < 0 {
		return 0
	}
	return f.MaxRetries
}

// Submit implements Scheduler.
func (f *Failover) Submit(r *Request) {
	if len(f.paths) == 0 {
		return
	}
	idx := f.route(r.Bytes)
	f.queues[idx].Push(r)
	f.pump(idx)
	f.syncQueueGauge()
}

// SubmitCtx implements ContextScheduler: a queued request whose context
// is done by dispatch (or retry) time is shed instead of spending wire
// time nobody is waiting for.
func (f *Failover) SubmitCtx(ctx context.Context, r *Request) {
	r.ctx = ctx
	f.Submit(r)
}

// syncQueueGauge mirrors the queued (not in-flight) request count into
// the queue-depth gauge.
func (f *Failover) syncQueueGauge() { f.met.queueDepth.Set(int64(f.Pending())) }

// route picks the non-open path with the shortest estimated completion;
// when every breaker is open it parks the request on the path that will
// probe soonest.
func (f *Failover) route(bytes int64) int {
	best, bestT := -1, time.Duration(0)
	for i, p := range f.paths {
		if f.breakers[i].State() == BreakerOpen {
			continue
		}
		if t := p.EstimateTransferTime(bytes); best < 0 || t < bestT {
			best, bestT = i, t
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	for i := 1; i < len(f.paths); i++ {
		if f.breakers[i].RetryAt() < f.breakers[best].RetryAt() {
			best = i
		}
	}
	return best
}

func (f *Failover) pump(i int) {
	if f.active[i] > 0 {
		return
	}
	// Shed queued requests whose deadline has already passed: delivering
	// them cannot help anymore, and after an outage a stale request
	// dispatched as the half-open probe would doom the probe on arrival,
	// keeping the breaker open indefinitely while fresh requests pile up
	// behind it.
	for {
		r := f.queues[i].Peek()
		if r == nil || (f.Clock.Now() < r.Deadline && !r.canceled()) {
			break
		}
		f.queues[i].Pop()
		if r.canceled() {
			f.stats[i].Canceled++
			f.met.canceled.Inc()
		} else {
			f.stats[i].Expired++
			f.met.expired.Inc()
		}
		shed(f.Clock, r)
	}
	if f.queues[i].Len() == 0 {
		return
	}
	switch f.breakers[i].State() {
	case BreakerOpen:
		f.reroute(i)
		return
	case BreakerHalfOpen:
		if !f.breakers[i].Allow() {
			return // a probe is already in flight; wait for its verdict
		}
	}
	r := f.queues[i].Pop()
	f.dispatch(i, r)
}

func (f *Failover) dispatch(i int, r *Request) {
	f.active[i]++
	f.stats[i].Dispatched++
	f.met.dispatched.Inc()
	qos := netem.Reliable
	if r.Class == ClassOOS && !r.Urgent {
		qos = netem.BestEffort
	}
	f.paths[i].Transfer(r.Bytes, qos, func(d netem.Delivery) {
		f.active[i]--
		f.onDelivery(i, r, d)
		f.pump(i)
		f.syncQueueGauge()
	})
}

func (f *Failover) onDelivery(i int, r *Request, d netem.Delivery) {
	if d.OK && d.Done <= r.Deadline {
		f.stats[i].Successes++
		f.met.successes.Inc()
		f.breakers[i].OnSuccess()
		if r.OnDone != nil {
			r.OnDone(d, true)
		}
		return
	}
	f.breakers[i].OnFailure()
	if f.breakers[i].State() == BreakerOpen {
		f.reroute(i)
	}
	if !d.OK {
		f.stats[i].Failures++
		f.met.failures.Inc()
		// A lost delivery is worth another try on a (possibly different)
		// path while the deadline still stands and the submitter is still
		// listening.
		if r.retries < f.maxRetries() && f.Clock.Now() < r.Deadline && !r.canceled() {
			r.retries++
			f.stats[i].Retries++
			f.met.retries.Inc()
			f.Submit(r)
			return
		}
	} else {
		f.stats[i].DeadlineMisses++
		f.met.misses.Inc()
	}
	if r.OnDone != nil {
		r.OnDone(d, false)
	}
}

// reroute drains path i's queue onto healthy paths; when none exist the
// requests stay parked and a wakeup is armed for the earliest probe.
func (f *Failover) reroute(i int) {
	if f.queues[i].Len() == 0 {
		return
	}
	target, targetT := -1, time.Duration(0)
	for j, p := range f.paths {
		if j == i || f.breakers[j].State() == BreakerOpen {
			continue
		}
		if t := p.EstimateTransferTime(1); target < 0 || t < targetT {
			target, targetT = j, t
		}
	}
	if target < 0 {
		f.armWakeup()
		return
	}
	for {
		r := f.queues[i].Pop()
		if r == nil {
			break
		}
		f.stats[i].Rerouted++
		f.met.rerouted.Inc()
		f.queues[target].Push(r)
	}
	f.pump(target)
	f.syncQueueGauge()
}

// armWakeup schedules a re-pump at the earliest breaker probe time so
// parked requests move again once a cooldown expires — without it a
// total outage would strand the queues forever.
func (f *Failover) armWakeup() {
	if f.wakeup != nil && f.wakeup.At() > f.Clock.Now() {
		return
	}
	at := time.Duration(-1)
	for i := range f.breakers {
		// State() promotes Open→HalfOpen once the cooldown has passed, so a
		// breaker idle since its trip (empty queue, never pumped) cannot
		// keep a stale RetryAt in the past and re-arm at the current
		// instant forever.
		f.breakers[i].State()
		if t := f.breakers[i].RetryAt(); t > 0 && (at < 0 || t < at) {
			at = t
		}
	}
	if at <= f.Clock.Now() {
		// Nothing is open anymore; in-flight probes or the next delivery
		// will pump the queues.
		return
	}
	f.wakeup = f.Clock.Schedule(at, func() {
		f.wakeup = nil
		for i := range f.paths {
			f.pump(i)
		}
		// Still fully open (no probe dispatched because every queue was
		// empty elsewhere)? Re-arm for the next probe window.
		if f.Pending() > 0 {
			f.armWakeup()
		}
	})
}

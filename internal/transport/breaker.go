package transport

import (
	"time"

	"sperke/internal/obs"
)

// BreakerState is the classic circuit-breaker state machine.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: the path is healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the path tripped; requests are routed elsewhere until
	// the cooldown passes.
	BreakerOpen
	// BreakerHalfOpen: the cooldown passed; one probe request is allowed
	// through to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// metricName is the state's suffix in transition counter names
// (half-open loses its dash so metric names stay word-shaped).
func (s BreakerState) metricName() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half_open"
	}
}

// BreakerConfig tunes a per-path circuit breaker. Zero values mean
// defaults.
type BreakerConfig struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures — delivery failures or deadline misses; 0 defaults to 3.
	FailureThreshold int
	// Cooldown is how long an open breaker waits before allowing a
	// half-open probe; 0 defaults to 2s.
	Cooldown time.Duration
	// ProbeSuccesses closes a half-open breaker after this many
	// consecutive successful probes; 0 defaults to 1.
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	return c
}

// BreakerTransition records one state change, for observability and
// chaos-test assertions.
type BreakerTransition struct {
	At       time.Duration
	From, To BreakerState
}

// Breaker is a circuit breaker over the sim clock: it tracks
// consecutive deadline misses and delivery failures on one path, opens
// when they cross the threshold, and probes for recovery after a
// cooldown. Not safe for concurrent use; the scheduler owns it.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	// Obs, when set, counts state transitions
	// (transport.breaker.to_{open,half_open,closed}) and mirrors the
	// current state in the transport.breaker.state gauge. Set it before
	// the breaker first trips.
	Obs *obs.Registry

	state       BreakerState
	consecFails int
	probeOK     int
	probing     bool
	openedAt    time.Duration
	transitions []BreakerTransition
}

// NewBreaker builds a closed breaker on the given clock.
func NewBreaker(clock Clock, cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	b.transitions = append(b.transitions, BreakerTransition{At: b.clock.Now(), From: b.state, To: to})
	b.state = to
	b.Obs.Counter("transport.breaker.to_" + to.metricName()).Inc()
	b.Obs.Gauge("transport.breaker.state").Set(int64(to))
}

// State reports the current state, promoting Open to HalfOpen once the
// cooldown has passed.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.clock.Now() >= b.openedAt+b.cfg.Cooldown {
		b.transition(BreakerHalfOpen)
		b.probing = false
		b.probeOK = 0
	}
	return b.state
}

// Allow reports whether a request may be dispatched now: always in
// Closed, never in Open, and one probe at a time in HalfOpen.
func (b *Breaker) Allow() bool {
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// OnSuccess records a clean delivery that met its deadline.
func (b *Breaker) OnSuccess() {
	b.probing = false
	switch b.State() {
	case BreakerHalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.ProbeSuccesses {
			b.consecFails = 0
			b.transition(BreakerClosed)
		}
	case BreakerClosed:
		b.consecFails = 0
	}
}

// OnFailure records a delivery failure or deadline miss.
func (b *Breaker) OnFailure() {
	b.probing = false
	switch b.State() {
	case BreakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.open()
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.open()
		}
	}
}

func (b *Breaker) open() {
	b.openedAt = b.clock.Now()
	b.probeOK = 0
	b.transition(BreakerOpen)
}

// RetryAt reports when an open breaker will allow its next probe (zero
// when the breaker is not open).
func (b *Breaker) RetryAt() time.Duration {
	if b.state != BreakerOpen {
		return 0
	}
	return b.openedAt + b.cfg.Cooldown
}

// Transitions returns a copy of the state-change log.
func (b *Breaker) Transitions() []BreakerTransition {
	out := make([]BreakerTransition, len(b.transitions))
	copy(out, b.transitions)
	return out
}

// Opened reports whether the breaker has ever tripped, and Reclosed
// whether it returned to Closed after tripping — the open-and-re-close
// cycle chaos tests assert.
func (b *Breaker) Opened() bool {
	for _, tr := range b.transitions {
		if tr.To == BreakerOpen {
			return true
		}
	}
	return false
}

// Reclosed reports whether the breaker returned to Closed after having
// been open.
func (b *Breaker) Reclosed() bool {
	opened := false
	for _, tr := range b.transitions {
		if tr.To == BreakerOpen {
			opened = true
		}
		if opened && tr.To == BreakerClosed {
			return true
		}
	}
	return false
}

package codec

import (
	"testing"
	"time"

	"sperke/internal/sim"
)

func TestDecodeTimeLinear(t *testing.T) {
	d := DecoderSpec{PixelRate: 1e6}
	if got := d.DecodeTime(1e6); got != time.Second {
		t.Fatalf("DecodeTime(1e6 px @1e6 px/s) = %v, want 1s", got)
	}
	if got := d.DecodeTime(0); got != 0 {
		t.Fatalf("DecodeTime(0) = %v", got)
	}
	if got := d.DecodeTime(-5); got != 0 {
		t.Fatalf("DecodeTime(-5) = %v", got)
	}
}

func TestSyncDecodeAddsOverhead(t *testing.T) {
	d := DecoderSpec{PixelRate: 1e6, SubmitOverhead: 10 * time.Millisecond}
	if got := d.SyncDecodeTime(1e6); got != time.Second+10*time.Millisecond {
		t.Fatalf("SyncDecodeTime = %v", got)
	}
}

func TestRenderTime(t *testing.T) {
	p := DeviceProfile{RenderPixelRate: 2e6, RenderOverhead: 5 * time.Millisecond}
	if got := p.RenderTime(1e6); got != 505*time.Millisecond {
		t.Fatalf("RenderTime = %v", got)
	}
	zero := DeviceProfile{RenderOverhead: time.Millisecond}
	if got := zero.RenderTime(1e6); got != time.Millisecond {
		t.Fatalf("RenderTime with zero rate = %v", got)
	}
}

func TestPoolParallelism(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPool(clock, DecoderSpec{PixelRate: 1e6}, 4)
	var finishes []time.Duration
	for i := 0; i < 4; i++ {
		p.Submit(1e6, func() { finishes = append(finishes, clock.Now()) })
	}
	clock.Run()
	// Four jobs across four decoders all finish at 1s.
	for _, f := range finishes {
		if f != time.Second {
			t.Fatalf("parallel job finished at %v, want 1s", f)
		}
	}
	if p.JobsCompleted() != 4 {
		t.Fatalf("JobsCompleted = %d", p.JobsCompleted())
	}
}

func TestPoolQueuesBeyondCapacity(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPool(clock, DecoderSpec{PixelRate: 1e6}, 2)
	var last time.Duration
	for i := 0; i < 4; i++ {
		p.Submit(1e6, func() { last = clock.Now() })
	}
	clock.Run()
	// 4 jobs on 2 decoders: two waves → 2s.
	if last != 2*time.Second {
		t.Fatalf("last finish = %v, want 2s", last)
	}
}

func TestPoolBacklog(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPool(clock, DecoderSpec{PixelRate: 1e6}, 1)
	if p.Backlog() != 0 {
		t.Fatal("fresh pool has backlog")
	}
	p.Submit(2e6, nil)
	if p.Backlog() != 2*time.Second {
		t.Fatalf("Backlog = %v, want 2s", p.Backlog())
	}
	clock.Run()
	if p.Backlog() != 0 {
		t.Fatal("drained pool has backlog")
	}
}

func TestPoolDeterministicAssignment(t *testing.T) {
	run := func() []time.Duration {
		clock := sim.NewClock(1)
		p := NewPool(clock, DecoderSpec{PixelRate: 1e6}, 3)
		var out []time.Duration
		for i := 0; i < 10; i++ {
			p.Submit(int64(1e5*(i+1)), func() { out = append(out, clock.Now()) })
		}
		clock.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pool scheduling nondeterministic")
		}
	}
}

func TestPoolInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size pool accepted")
		}
	}()
	NewPool(sim.NewClock(1), DecoderSpec{}, 0)
}

func TestDeviceProfilesSane(t *testing.T) {
	for _, d := range []DeviceProfile{SGS5, SGS7} {
		if d.HWDecoders <= 0 || d.Decoder.PixelRate <= 0 || d.MaxDisplayFPS <= 0 {
			t.Fatalf("profile %s has zero fields", d.Name)
		}
	}
	if SGS7.Decoder.PixelRate <= SGS5.Decoder.PixelRate {
		t.Fatal("SGS7 decoder not faster than SGS5")
	}
	if SGS7.HWDecoders != 16 || SGS5.HWDecoders != 8 {
		t.Fatal("decoder counts disagree with the paper (§3.5)")
	}
}

func TestTranscoderTime(t *testing.T) {
	tr := Transcoder{Latency: 10 * time.Millisecond, ByteRate: 1 << 20}
	if got := tr.TranscodeTime(1 << 20); got != 1010*time.Millisecond {
		t.Fatalf("TranscodeTime = %v", got)
	}
	if got := tr.TranscodeTime(0); got != 10*time.Millisecond {
		t.Fatalf("TranscodeTime(0) = %v", got)
	}
	if got := DefaultCloudlet.TranscodeTime(500 << 10); got > 100*time.Millisecond {
		t.Fatalf("cloudlet transcode of a chunk took %v — too slow to be useful", got)
	}
}

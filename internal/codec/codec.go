// Package codec models the client-side decoding hardware Sperke
// schedules (§3.5): the parallel hardware H.264 decoders of commodity
// phones (8 on a Samsung Galaxy S5, 16 on an S7), their throughput, and
// the cloudlet transcoder that converts SVC chunks to AVC for devices
// without hardware SVC decoders (§3.1.1).
//
// The model is deliberately simple — a decoder sustains a pixel rate and
// each synchronous submission pays a fixed overhead — because that is
// all Figure 5's three configurations differ in: whether decodes
// serialize on the render thread, run in parallel across the pool, and
// whether non-FoV tiles are rendered at all.
package codec

import (
	"fmt"
	"time"

	"sperke/internal/sim"
)

// DecoderSpec is the throughput model of one hardware decoder.
type DecoderSpec struct {
	// PixelRate is the sustained decode rate in luma pixels/second.
	PixelRate float64
	// SubmitOverhead is the fixed cost of a synchronous submission
	// (buffer setup, codec state switch). Asynchronous pipelines hide
	// it behind the previous decode.
	SubmitOverhead time.Duration
}

// DecodeTime returns the pure decode time for a frame of the given
// pixel count, excluding submission overhead.
func (d DecoderSpec) DecodeTime(pixels int64) time.Duration {
	if pixels <= 0 || d.PixelRate <= 0 {
		return 0
	}
	return time.Duration(float64(pixels) / d.PixelRate * float64(time.Second))
}

// SyncDecodeTime returns the wall time of a blocking decode: pure decode
// plus submission overhead.
func (d DecoderSpec) SyncDecodeTime(pixels int64) time.Duration {
	return d.DecodeTime(pixels) + d.SubmitOverhead
}

// DeviceProfile describes a phone's decode and render capabilities.
type DeviceProfile struct {
	Name string
	// HWDecoders is the number of hardware decoder instances the SoC
	// exposes (§3.5: 8 for SGS5, 16 for SGS7).
	HWDecoders int
	Decoder    DecoderSpec
	// RenderPixelRate is the GPU texture/composite rate in pixels/second
	// for projecting and displaying tiles.
	RenderPixelRate float64
	// RenderOverhead is the fixed per-frame compositor cost.
	RenderOverhead time.Duration
	// MaxDisplayFPS caps the achievable frame rate (display refresh).
	MaxDisplayFPS float64
}

// RenderTime returns the time to project and display the given number
// of pixels in one frame.
func (p DeviceProfile) RenderTime(pixels int64) time.Duration {
	if p.RenderPixelRate <= 0 {
		return p.RenderOverhead
	}
	return p.RenderOverhead + time.Duration(float64(pixels)/p.RenderPixelRate*float64(time.Second))
}

// Device profiles calibrated against the paper's §3.5 measurements
// (2K video, 2×4 tiles on SGS7: 11 FPS unoptimized, 53 FPS with the
// parallel-decode pipeline, 120 FPS rendering FoV only).
var (
	SGS7 = DeviceProfile{
		Name:       "SGS7",
		HWDecoders: 16,
		Decoder: DecoderSpec{
			PixelRate:      80e6,
			SubmitOverhead: 3300 * time.Microsecond,
		},
		RenderPixelRate: 218e6,
		RenderOverhead:  2 * time.Millisecond,
		MaxDisplayFPS:   120,
	}
	SGS5 = DeviceProfile{
		Name:       "SGS5",
		HWDecoders: 8,
		Decoder: DecoderSpec{
			PixelRate:      48e6,
			SubmitOverhead: 4500 * time.Microsecond,
		},
		RenderPixelRate: 130e6,
		RenderOverhead:  3 * time.Millisecond,
		MaxDisplayFPS:   60,
	}
)

// Pool schedules decode jobs across n parallel decoder instances on the
// sim clock — the "decoding scheduler" box of Fig. 4. Jobs go to the
// earliest-free decoder.
type Pool struct {
	clock  *sim.Clock
	spec   DecoderSpec
	freeAt []time.Duration
	jobs   int
}

// NewPool creates a pool of n decoders. n must be positive.
func NewPool(clock *sim.Clock, spec DecoderSpec, n int) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("codec: pool size %d", n))
	}
	return &Pool{clock: clock, spec: spec, freeAt: make([]time.Duration, n)}
}

// Size returns the number of decoder instances.
func (p *Pool) Size() int { return len(p.freeAt) }

// JobsCompleted returns the number of finished decode jobs.
func (p *Pool) JobsCompleted() int { return p.jobs }

// Submit queues an asynchronous decode of the given pixels and calls
// done (which may be nil) at its completion time. It returns the
// completion time. The submission overhead is hidden by pipelining:
// only pure decode time occupies the decoder.
func (p *Pool) Submit(pixels int64, done func()) time.Duration {
	now := p.clock.Now()
	// Earliest-free decoder; ties break to the lowest index for
	// determinism.
	best := 0
	for i, f := range p.freeAt {
		if f < p.freeAt[best] {
			best = i
		}
		_ = i
	}
	start := p.freeAt[best]
	if start < now {
		start = now
	}
	finish := start + p.spec.DecodeTime(pixels)
	p.freeAt[best] = finish
	p.clock.Schedule(finish, func() {
		p.jobs++
		if done != nil {
			done()
		}
	})
	return finish
}

// Backlog returns how far ahead of the clock the busiest decoder is
// booked.
func (p *Pool) Backlog() time.Duration {
	now := p.clock.Now()
	var max time.Duration
	for _, f := range p.freeAt {
		if f > now && f-now > max {
			max = f - now
		}
	}
	return max
}

// Transcoder models the cloudlet that converts SVC streams to AVC at
// runtime so mobile GPUs can decode them (§3.1.1). It adds a fixed
// processing latency plus a throughput-limited term.
type Transcoder struct {
	// Latency is the per-chunk base processing delay.
	Latency time.Duration
	// ByteRate is the transcode throughput in bytes/second.
	ByteRate float64
}

// DefaultCloudlet is a LAN cloudlet doing faster-than-realtime
// transcoding.
var DefaultCloudlet = Transcoder{
	Latency:  30 * time.Millisecond,
	ByteRate: 50 << 20, // 50 MiB/s
}

// TranscodeTime returns how long converting a chunk of the given size
// takes.
func (t Transcoder) TranscodeTime(bytes int64) time.Duration {
	d := t.Latency
	if t.ByteRate > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / t.ByteRate * float64(time.Second))
	}
	return d
}

package hmp

import (
	"testing"
	"time"

	"sperke/internal/sphere"
)

func BenchmarkLinearObservePredict(b *testing.B) {
	h := steadyYawTrace(25, 10*time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var p LinearRegression
		for _, s := range h.Samples[:50] {
			p.Observe(s)
		}
		p.Predict(2 * time.Second)
	}
}

func BenchmarkBuildHeatmap(b *testing.B) {
	hm, sessions, _ := buildTestHeatmap(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHeatmap(hm.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
			2*time.Second, 30*time.Second, sessions)
	}
}

package hmp

import (
	"fmt"
	"sort"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// Heatmap holds crowd-sourced viewing statistics for one video: for
// each chunk interval, the probability that each tile falls in a
// viewer's FoV. This is the "viewing statistics of the same video
// across users" dimension of §3.2, and the direct input to
// probability-weighted OOS selection.
type Heatmap struct {
	Grid     tiling.Grid
	ChunkDur time.Duration

	// prob[interval][tile] = fraction of sessions whose FoV covered the
	// tile at any sample inside the interval.
	prob [][]float64
	// center[interval] = crowd mean view direction.
	center []sphere.Orientation
}

// BuildHeatmap aggregates a set of sessions (head traces of different
// users watching the same video) into a heatmap. Intervals are
// [i·chunkDur, (i+1)·chunkDur).
func BuildHeatmap(g tiling.Grid, p sphere.Projection, fov sphere.FoV, chunkDur, videoDur time.Duration, sessions []*trace.HeadTrace) *Heatmap {
	n := int(videoDur / chunkDur)
	if videoDur%chunkDur != 0 {
		n++
	}
	h := &Heatmap{
		Grid:     g,
		ChunkDur: chunkDur,
		prob:     make([][]float64, n),
		center:   make([]sphere.Orientation, n),
	}
	for i := range h.prob {
		h.prob[i] = make([]float64, g.Tiles())
	}
	if len(sessions) == 0 {
		return h
	}
	const probes = 4 // view samples per interval per session
	for i := 0; i < n; i++ {
		start := time.Duration(i) * chunkDur
		var sumVec sphere.Vec3
		counts := make([]int, g.Tiles())
		for _, s := range sessions {
			seen := make(map[tiling.TileID]bool)
			for k := 0; k < probes; k++ {
				ts := start + time.Duration(k)*chunkDur/probes
				view := s.At(ts)
				d := view.Direction()
				sumVec.X += d.X
				sumVec.Y += d.Y
				sumVec.Z += d.Z
				for _, id := range tiling.VisibleTiles(g, p, view, fov) {
					seen[id] = true
				}
			}
			for id := range seen {
				counts[id]++
			}
		}
		for tile, c := range counts {
			h.prob[i][tile] = float64(c) / float64(len(sessions))
		}
		h.center[i] = sphere.FromDirection(sumVec)
	}
	return h
}

// Intervals returns the number of chunk intervals covered.
func (h *Heatmap) Intervals() int { return len(h.prob) }

// interval maps a time to an interval index, clamped into range.
func (h *Heatmap) interval(at time.Duration) int {
	if h.ChunkDur <= 0 || len(h.prob) == 0 {
		return 0
	}
	i := int(at / h.ChunkDur)
	if i < 0 {
		i = 0
	}
	if i >= len(h.prob) {
		i = len(h.prob) - 1
	}
	return i
}

// Probability returns the crowd viewing probability of a tile during
// the interval containing at.
func (h *Heatmap) Probability(at time.Duration, tile tiling.TileID) float64 {
	if len(h.prob) == 0 || !h.Grid.Valid(tile) {
		return 0
	}
	return h.prob[h.interval(at)][tile]
}

// TopTiles returns the k most-viewed tiles for the interval containing
// at, most popular first. Ties break toward lower tile IDs for
// determinism.
func (h *Heatmap) TopTiles(at time.Duration, k int) []tiling.TileID {
	if len(h.prob) == 0 || k <= 0 {
		return nil
	}
	row := h.prob[h.interval(at)]
	ids := make([]tiling.TileID, len(row))
	for i := range ids {
		ids[i] = tiling.TileID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if row[ids[a]] != row[ids[b]] {
			return row[ids[a]] > row[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// TopTilesAt returns up to k tile IDs for chunk interval index,
// most-viewed first, with ties broken toward lower IDs — the
// plain-int form of TopTiles keyed directly by chunk index. Chunk
// index and heatmap interval share an axis (intervals are
// [i·ChunkDur, (i+1)·ChunkDur), exactly the chunk boundaries), so a
// cache tier that knows which chunk it just served can ask for the
// crowd's likely co-requests without converting through time or
// importing the tiling types. Out-of-range indexes clamp like
// interval() does. Unlike TopTiles, tiles no session ever viewed are
// omitted — a zero-probability candidate is a wasted speculative
// fetch, not a ranked one — so fewer than k tiles may come back.
func (h *Heatmap) TopTilesAt(index, k int) []int {
	if len(h.prob) == 0 || k <= 0 {
		return nil
	}
	if index < 0 {
		index = 0
	}
	if index >= len(h.prob) {
		index = len(h.prob) - 1
	}
	row := h.prob[index]
	ids := make([]int, len(row))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if row[ids[a]] != row[ids[b]] {
			return row[ids[a]] > row[ids[b]]
		}
		return ids[a] < ids[b]
	})
	viewed := len(ids)
	for i, id := range ids {
		if row[id] == 0 {
			viewed = i
			break
		}
	}
	if k > viewed {
		k = viewed
	}
	if k == 0 {
		return nil
	}
	return ids[:k]
}

// CrowdCenter returns the crowd's mean viewing direction during the
// interval containing at.
func (h *Heatmap) CrowdCenter(at time.Duration) sphere.Orientation {
	if len(h.center) == 0 {
		return sphere.Orientation{}
	}
	return h.center[h.interval(at)]
}

// Crowd predicts from the heatmap alone: everyone is assumed to look
// where the crowd looked. Useful for long horizons where individual
// motion has decorrelated ("making long-term prediction feasible",
// §3.2), and for live viewers with no personal history (§3.4.2).
type Crowd struct {
	Heatmap *Heatmap

	last trace.Sample
	seen bool
}

// Name implements Predictor.
func (c *Crowd) Name() string { return "crowd" }

// Observe implements Predictor.
func (c *Crowd) Observe(s trace.Sample) {
	c.last = s
	c.seen = true
}

// Predict implements Predictor.
func (c *Crowd) Predict(at time.Duration) Prediction {
	if c.Heatmap == nil || c.Heatmap.Intervals() == 0 {
		return Prediction{Radius: 180}
	}
	// Crowd dispersion sets the radius: if the top tile probability is
	// high the crowd is concentrated.
	top := c.Heatmap.TopTiles(at, 1)
	radius := 60.0
	if len(top) > 0 {
		p := c.Heatmap.Probability(at, top[0])
		radius = 20 + (1-p)*70
	}
	return Prediction{View: c.Heatmap.CrowdCenter(at), Radius: radius}
}

// Fusion is the §3.2 "data fusion" predictor: short horizons follow the
// user's own motion (linear extrapolation); long horizons blend toward
// the crowd; the user's learned speed bound caps the predicted
// displacement; and the viewing context prunes unreachable directions
// (a lying viewer will not look 180° behind).
type Fusion struct {
	Linear  LinearRegression
	Heatmap *Heatmap
	// SpeedBound is the user's learned max head speed in degrees/second
	// (0 = unknown, no cap).
	SpeedBound float64
	// Context prunes the yaw range; nil imposes no pruning.
	Context *trace.Context
	// CrowdHorizon is where crowd weight reaches 1; 0 defaults to 2 s.
	CrowdHorizon time.Duration

	last trace.Sample
	seen bool
}

// Name implements Predictor.
func (f *Fusion) Name() string { return "fusion" }

// Observe implements Predictor.
func (f *Fusion) Observe(s trace.Sample) {
	f.Linear.Observe(s)
	f.last = s
	f.seen = true
}

// Predict implements Predictor.
func (f *Fusion) Predict(at time.Duration) Prediction {
	lp := f.Linear.Predict(at)
	if !f.seen {
		return lp
	}
	horizon := (at - f.last.At).Seconds()
	if horizon < 0 {
		horizon = 0
	}
	view := lp.View
	radius := lp.Radius

	// Blend toward the crowd as the horizon grows.
	if f.Heatmap != nil && f.Heatmap.Intervals() > 0 {
		ch := f.CrowdHorizon
		if ch <= 0 {
			ch = 2 * time.Second
		}
		w := horizon / ch.Seconds()
		if w > 1 {
			w = 1
		}
		// Personal motion dominates below ~1/3 of the crowd horizon.
		if w > 0.3 {
			crowd := f.Heatmap.CrowdCenter(at)
			blend := (w - 0.3) / 0.7
			view = sphere.Lerp(view, crowd, blend*0.8)
			// Crowd agreement tightens the radius at long horizons.
			top := f.Heatmap.TopTiles(at, 1)
			if len(top) > 0 {
				p := f.Heatmap.Probability(at, top[0])
				crowdRadius := 20 + (1-p)*70
				radius = radius*(1-blend*0.6) + crowdRadius*blend*0.6
			}
		}
	}

	// Cap displacement by the user's speed bound.
	if f.SpeedBound > 0 {
		maxMove := f.SpeedBound * horizon
		if d := sphere.AngularDistance(f.last.View, view); d > maxMove {
			t := maxMove / d
			view = sphere.Lerp(f.last.View, view, t)
			if radius > maxMove+20 {
				radius = maxMove + 20
			}
		}
	}

	// Context pruning: clamp yaw into the reachable range.
	if f.Context != nil {
		yr := f.Context.YawRange()
		if view.Yaw > yr {
			view.Yaw = yr
		}
		if view.Yaw < -yr {
			view.Yaw = -yr
		}
	}
	return Prediction{View: view.Normalized(), Radius: radius}
}

// HeatmapFromProbabilities reconstructs a heatmap from raw per-interval
// tile probabilities — the client-side inverse of the telemetry
// collector's JSON heatmap endpoint, so a player can consume crowd
// intelligence fetched over HTTP (§3.2). Crowd centers are derived as
// the probability-weighted mean of tile center directions.
func HeatmapFromProbabilities(g tiling.Grid, p sphere.Projection, chunkDur time.Duration,
	prob [][]float64) (*Heatmap, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if chunkDur <= 0 {
		return nil, fmt.Errorf("hmp: non-positive chunk duration")
	}
	h := &Heatmap{
		Grid:     g,
		ChunkDur: chunkDur,
		prob:     make([][]float64, len(prob)),
		center:   make([]sphere.Orientation, len(prob)),
	}
	for i, row := range prob {
		if len(row) != g.Tiles() {
			return nil, fmt.Errorf("hmp: interval %d has %d tiles, grid has %d", i, len(row), g.Tiles())
		}
		h.prob[i] = append([]float64(nil), row...)
		var sum sphere.Vec3
		for tile, pr := range row {
			if pr < 0 || pr > 1 {
				return nil, fmt.Errorf("hmp: interval %d tile %d probability %v", i, tile, pr)
			}
			d := g.Center(tiling.TileID(tile), p).Direction()
			sum.X += d.X * pr
			sum.Y += d.Y * pr
			sum.Z += d.Z * pr
		}
		h.center[i] = sphere.FromDirection(sum)
	}
	return h, nil
}

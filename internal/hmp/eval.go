package hmp

import (
	"time"

	"sperke/internal/sphere"
	"sperke/internal/trace"
)

// Accuracy summarizes a predictor's replay performance at one horizon.
type Accuracy struct {
	Horizon time.Duration
	// MeanError is the mean angular error in degrees.
	MeanError float64
	// P90Error is the 90th-percentile angular error.
	P90Error float64
	// HitRate is the fraction of predictions whose error stayed within
	// half the FoV width — i.e. the true view center remained inside the
	// predicted FoV.
	HitRate float64
	// Samples is the number of prediction points evaluated.
	Samples int
}

// Evaluate replays a head trace through a predictor factory and measures
// accuracy at the given horizon: at each evaluation instant the
// predictor has observed all samples up to t and predicts t+horizon.
//
// newPred must return a fresh predictor; Evaluate owns feeding it.
func Evaluate(newPred func() Predictor, h *trace.HeadTrace, fov sphere.FoV, horizon time.Duration) Accuracy {
	p := newPred()
	acc := Accuracy{Horizon: horizon}
	var errs []float64
	const step = 100 * time.Millisecond

	next := 0
	dur := h.Duration()
	for t := 500 * time.Millisecond; t+horizon <= dur; t += step {
		// Feed all samples up to t.
		for next < len(h.Samples) && h.Samples[next].At <= t {
			p.Observe(h.Samples[next])
			next++
		}
		pred := p.Predict(t + horizon)
		actual := h.At(t + horizon)
		errs = append(errs, sphere.AngularDistance(pred.View, actual))
	}
	if len(errs) == 0 {
		return acc
	}
	var sum float64
	hits := 0
	half := fov.Width / 2
	for _, e := range errs {
		sum += e
		if e <= half {
			hits++
		}
	}
	acc.Samples = len(errs)
	acc.MeanError = sum / float64(len(errs))
	acc.HitRate = float64(hits) / float64(len(errs))
	// P90 without sorting the caller's data twice: copy and partial sort.
	sorted := append([]float64(nil), errs...)
	insertionSort(sorted)
	idx := int(0.9 * float64(len(sorted)-1))
	acc.P90Error = sorted[idx]
	return acc
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// EvaluateMany averages Evaluate across several traces (one per user).
func EvaluateMany(newPred func() Predictor, hs []*trace.HeadTrace, fov sphere.FoV, horizon time.Duration) Accuracy {
	var agg Accuracy
	agg.Horizon = horizon
	var wErr, wP90, wHit float64
	for _, h := range hs {
		a := Evaluate(newPred, h, fov, horizon)
		if a.Samples == 0 {
			continue
		}
		w := float64(a.Samples)
		wErr += a.MeanError * w
		wP90 += a.P90Error * w
		wHit += a.HitRate * w
		agg.Samples += a.Samples
	}
	if agg.Samples > 0 {
		n := float64(agg.Samples)
		agg.MeanError = wErr / n
		agg.P90Error = wP90 / n
		agg.HitRate = wHit / n
	}
	return agg
}

// LearnSpeedBound estimates a user's head-speed bound from their past
// sessions (§3.2: "a user's head movement speed can be learned to bound
// the latency requirement for fetching a distant tile"). It returns the
// maximum observed angular speed across sessions, padded by 10% so the
// bound prunes only genuinely unreachable tiles.
func LearnSpeedBound(sessions []*trace.HeadTrace) float64 {
	var vmax float64
	for _, s := range sessions {
		if v := s.MaxVelocity(); v > vmax {
			vmax = v
		}
	}
	return vmax * 1.1
}

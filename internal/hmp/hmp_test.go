package hmp

import (
	"math/rand"
	"testing"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// steadyYawTrace builds a trace rotating at a constant yaw rate.
func steadyYawTrace(rate float64, dur time.Duration) *trace.HeadTrace {
	h := &trace.HeadTrace{}
	for t := time.Duration(0); t <= dur; t += 20 * time.Millisecond {
		h.Samples = append(h.Samples, trace.Sample{
			At:   t,
			View: sphere.Orientation{Yaw: sphere.NormalizeYaw(rate * t.Seconds())},
		})
	}
	return h
}

func feed(p Predictor, h *trace.HeadTrace, upTo time.Duration) {
	for _, s := range h.Samples {
		if s.At > upTo {
			break
		}
		p.Observe(s)
	}
}

func TestStaticPredictsLastView(t *testing.T) {
	var p Static
	if got := p.Predict(time.Second); got.Radius != 180 {
		t.Fatal("unobserved static should be maximally uncertain")
	}
	p.Observe(trace.Sample{At: time.Second, View: sphere.Orientation{Yaw: 42}})
	got := p.Predict(2 * time.Second)
	if got.View.Yaw != 42 {
		t.Fatalf("yaw = %v, want 42", got.View.Yaw)
	}
	// Radius grows with horizon.
	if p.Predict(3*time.Second).Radius <= got.Radius {
		t.Fatal("radius did not grow with horizon")
	}
}

func TestLinearExtrapolatesConstantVelocity(t *testing.T) {
	h := steadyYawTrace(20, 5*time.Second)  // 20°/s
	p := LinearRegression{Persistence: 1e6} // pure extrapolation
	feed(&p, h, 3*time.Second)
	pred := p.Predict(4 * time.Second) // 1s ahead: expect yaw ≈ 80
	if d := sphere.AngularDistance(pred.View, sphere.Orientation{Yaw: 80}); d > 3 {
		t.Fatalf("prediction %v, want ≈ yaw 80 (err %v°)", pred.View, d)
	}
}

func TestLinearHandlesYawWraparound(t *testing.T) {
	// Rotating through the ±180° seam must not break the fit.
	h := steadyYawTrace(40, 10*time.Second)
	p := LinearRegression{Persistence: 1e6}
	feed(&p, h, 4700*time.Millisecond) // yaw ≈ 188 → wrapped to -172
	pred := p.Predict(5 * time.Second) // expect yaw ≈ 200 → -160
	want := sphere.Orientation{Yaw: -160}
	if d := sphere.AngularDistance(pred.View, want); d > 4 {
		t.Fatalf("wraparound prediction %v, want ≈%v (err %v°)", pred.View, want, d)
	}
}

func TestLinearBeatsStaticOnSmoothMotion(t *testing.T) {
	h := steadyYawTrace(30, 10*time.Second)
	horizon := time.Second
	lin := Evaluate(func() Predictor { return &LinearRegression{} }, h, sphere.DefaultFoV, horizon)
	sta := Evaluate(func() Predictor { return &Static{} }, h, sphere.DefaultFoV, horizon)
	if lin.MeanError >= sta.MeanError {
		t.Fatalf("linear %.1f° not better than static %.1f° on smooth motion", lin.MeanError, sta.MeanError)
	}
}

func TestLinearCapsExtrapolationSpeed(t *testing.T) {
	// A saccade inside the window should not fling the prediction.
	h := &trace.HeadTrace{}
	for t := time.Duration(0); t <= 400*time.Millisecond; t += 20 * time.Millisecond {
		yaw := 0.0
		if t >= 300*time.Millisecond {
			yaw = float64(t-300*time.Millisecond) / float64(100*time.Millisecond) * 40 // 400°/s burst
		}
		h.Samples = append(h.Samples, trace.Sample{At: t, View: sphere.Orientation{Yaw: yaw}})
	}
	var p LinearRegression
	feed(&p, h, 400*time.Millisecond)
	pred := p.Predict(1400 * time.Millisecond) // 1s ahead
	// Uncapped the fit would predict far beyond 160°; the cap holds it
	// to ≤ 120°/s → ≤ ~160° total; mainly assert it stays on-sphere and
	// radius reflects high uncertainty.
	if pred.Radius < 20 {
		t.Fatalf("saccade horizon radius %v too confident", pred.Radius)
	}
}

func TestLinearEmptyAndSingleSample(t *testing.T) {
	var p LinearRegression
	if p.Predict(time.Second).Radius != 180 {
		t.Fatal("empty predictor should be maximally uncertain")
	}
	p.Observe(trace.Sample{At: 0, View: sphere.Orientation{Yaw: 10}})
	pred := p.Predict(time.Second)
	if pred.View.Yaw != 10 {
		t.Fatalf("single-sample prediction yaw %v, want 10", pred.View.Yaw)
	}
}

func buildTestHeatmap(t testing.TB, nUsers int) (*Heatmap, []*trace.HeadTrace, *trace.Attention) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	att := trace.GenerateAttention(rand.New(rand.NewSource(22)), 30*time.Second)
	pop := trace.NewPopulation(rng, nUsers)
	sessions := pop.Sessions(rng, att, 30*time.Second)
	h := BuildHeatmap(tiling.GridCellular, sphere.Equirectangular{}, sphere.DefaultFoV,
		2*time.Second, 30*time.Second, sessions)
	return h, sessions, att
}

func TestHeatmapProbabilitiesInRange(t *testing.T) {
	h, _, _ := buildTestHeatmap(t, 10)
	if h.Intervals() != 15 {
		t.Fatalf("intervals = %d, want 15", h.Intervals())
	}
	for i := 0; i < h.Intervals(); i++ {
		at := time.Duration(i) * 2 * time.Second
		var maxP float64
		for tile := tiling.TileID(0); int(tile) < h.Grid.Tiles(); tile++ {
			p := h.Probability(at, tile)
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
			if p > maxP {
				maxP = p
			}
		}
		if maxP == 0 {
			t.Fatalf("interval %d has no viewed tiles", i)
		}
	}
}

func TestHeatmapTopTilesOrdered(t *testing.T) {
	h, _, _ := buildTestHeatmap(t, 10)
	top := h.TopTiles(4*time.Second, 5)
	if len(top) != 5 {
		t.Fatalf("TopTiles returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if h.Probability(4*time.Second, top[i]) > h.Probability(4*time.Second, top[i-1]) {
			t.Fatal("TopTiles not ordered by probability")
		}
	}
	if h.TopTiles(0, 0) != nil {
		t.Fatal("TopTiles(k=0) not nil")
	}
}

func TestHeatmapTopTilesAtMatchesTopTiles(t *testing.T) {
	h, _, _ := buildTestHeatmap(t, 10)
	// Chunk index i addresses the same interval as playhead i·ChunkDur,
	// so the int-keyed form must agree with the time-keyed ranking on
	// its (possibly shorter — TopTilesAt drops zero-probability tiles)
	// prefix, and every tile it returns must have been viewed.
	for idx := 0; idx < h.Intervals(); idx++ {
		byIndex := h.TopTilesAt(idx, 5)
		at := time.Duration(idx) * 2 * time.Second
		byTime := h.TopTiles(at, 5)
		if len(byIndex) > len(byTime) {
			t.Fatalf("index %d: %d tiles by index, only %d by time", idx, len(byIndex), len(byTime))
		}
		for i := range byIndex {
			if tiling.TileID(byIndex[i]) != byTime[i] {
				t.Fatalf("index %d rank %d: tile %d by index, %d by time", idx, i, byIndex[i], byTime[i])
			}
			if h.Probability(at, byTime[i]) == 0 {
				t.Fatalf("index %d rank %d: zero-probability tile %d returned", idx, i, byIndex[i])
			}
		}
	}
	// Most-viewed first, ties toward lower IDs.
	top := h.TopTilesAt(2, h.Grid.Tiles())
	for i := 1; i < len(top); i++ {
		pa, pb := h.prob[2][top[i-1]], h.prob[2][top[i]]
		if pb > pa || (pb == pa && top[i] < top[i-1]) {
			t.Fatalf("rank %d: tile %d (p=%v) ordered after tile %d (p=%v)", i, top[i-1], pa, top[i], pb)
		}
	}
	// Out-of-range indexes clamp; k truncates and never over-asks.
	if got, want := h.TopTilesAt(-3, 4), h.TopTilesAt(0, 4); !equalInts(got, want) {
		t.Fatalf("negative index = %v, want clamp to first interval %v", got, want)
	}
	if got, want := h.TopTilesAt(999, 4), h.TopTilesAt(h.Intervals()-1, 4); !equalInts(got, want) {
		t.Fatalf("overlong index = %v, want clamp to last interval %v", got, want)
	}
	viewed := 0
	for _, p := range h.prob[0] {
		if p > 0 {
			viewed++
		}
	}
	if got := h.TopTilesAt(0, h.Grid.Tiles()+10); len(got) != viewed {
		t.Fatalf("oversized k returned %d tiles, want the %d viewed ones", len(got), viewed)
	}
	if h.TopTilesAt(0, 0) != nil {
		t.Fatal("TopTilesAt(k=0) not nil")
	}
	empty := BuildHeatmap(tiling.GridPrototype, sphere.Equirectangular{}, sphere.DefaultFoV,
		2*time.Second, 10*time.Second, nil)
	if empty.TopTilesAt(0, 3) != nil {
		t.Fatal("empty heatmap TopTilesAt not nil")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHeatmapEmptySessions(t *testing.T) {
	h := BuildHeatmap(tiling.GridPrototype, sphere.Equirectangular{}, sphere.DefaultFoV,
		2*time.Second, 10*time.Second, nil)
	if h.Probability(0, 0) != 0 {
		t.Fatal("empty heatmap has nonzero probability")
	}
}

func TestHeatmapOutOfRangeClamped(t *testing.T) {
	h, _, _ := buildTestHeatmap(t, 5)
	// Probing far beyond the video clamps to the last interval.
	_ = h.Probability(time.Hour, 0)
	_ = h.CrowdCenter(-time.Second)
	if h.Probability(0, tiling.TileID(999)) != 0 {
		t.Fatal("invalid tile has probability")
	}
}

func TestCrowdPredictorTracksCrowd(t *testing.T) {
	h, sessions, _ := buildTestHeatmap(t, 12)
	// Evaluate the crowd predictor on a held-out user: it should beat
	// random (90° mean error) by a wide margin at long horizons.
	rng := rand.New(rand.NewSource(99))
	att2 := trace.GenerateAttention(rand.New(rand.NewSource(22)), 30*time.Second) // same video attention
	holdout := trace.Generate(rng, trace.UserProfile{ID: "x", SpeedScale: 1}, att2, 30*time.Second)
	_ = sessions
	acc := Evaluate(func() Predictor { return &Crowd{Heatmap: h} }, holdout, sphere.DefaultFoV, 2*time.Second)
	if acc.MeanError >= 85 {
		t.Fatalf("crowd predictor mean error %.1f°, no better than random", acc.MeanError)
	}
}

func TestFusionBeatsPartsAtLongHorizon(t *testing.T) {
	h, _, att := buildTestHeatmap(t, 12)
	rng := rand.New(rand.NewSource(123))
	user := trace.UserProfile{ID: "holdout", SpeedScale: 1}
	holdout := trace.Generate(rng, user, att, 30*time.Second)

	horizon := 2 * time.Second
	lin := Evaluate(func() Predictor { return &LinearRegression{} }, holdout, sphere.DefaultFoV, horizon)
	fus := Evaluate(func() Predictor {
		return &Fusion{Heatmap: h, SpeedBound: 240, Context: &user.Context}
	}, holdout, sphere.DefaultFoV, horizon)
	// Fusion must not be worse than pure linear at the 2s horizon where
	// crowd data carries signal.
	if fus.MeanError > lin.MeanError*1.05 {
		t.Fatalf("fusion %.1f° worse than linear %.1f° at long horizon", fus.MeanError, lin.MeanError)
	}
}

func TestFusionShortHorizonMatchesLinear(t *testing.T) {
	h, _, _ := buildTestHeatmap(t, 8)
	tr := steadyYawTrace(25, 10*time.Second)
	horizon := 200 * time.Millisecond
	lin := Evaluate(func() Predictor { return &LinearRegression{} }, tr, sphere.DefaultFoV, horizon)
	fus := Evaluate(func() Predictor { return &Fusion{Heatmap: h} }, tr, sphere.DefaultFoV, horizon)
	if diff := fus.MeanError - lin.MeanError; diff > 2 {
		t.Fatalf("fusion deviates from linear at short horizon by %.1f°", diff)
	}
}

func TestFusionSpeedBoundCapsDisplacement(t *testing.T) {
	f := &Fusion{SpeedBound: 10} // very slow user
	f.Observe(trace.Sample{At: 0, View: sphere.Orientation{Yaw: 0}})
	f.Observe(trace.Sample{At: 100 * time.Millisecond, View: sphere.Orientation{Yaw: 8}}) // 80°/s apparent
	pred := f.Predict(1100 * time.Millisecond)                                            // 1s horizon
	d := sphere.AngularDistance(sphere.Orientation{Yaw: 8}, pred.View)
	if d > 10.5 {
		t.Fatalf("displacement %v° exceeds speed bound 10°/s × 1s", d)
	}
}

func TestFusionContextClampsYaw(t *testing.T) {
	f := &Fusion{Context: &trace.Context{Pose: trace.Lying}} // yaw range ±110
	f.Observe(trace.Sample{At: 0, View: sphere.Orientation{Yaw: 100}})
	f.Observe(trace.Sample{At: 100 * time.Millisecond, View: sphere.Orientation{Yaw: 108}})
	pred := f.Predict(2100 * time.Millisecond)
	if pred.View.Yaw > 110.5 {
		t.Fatalf("lying context allowed yaw %v", pred.View.Yaw)
	}
}

func TestEvaluateAccuracyFields(t *testing.T) {
	h := steadyYawTrace(10, 10*time.Second)
	acc := Evaluate(func() Predictor { return &Static{} }, h, sphere.DefaultFoV, 500*time.Millisecond)
	if acc.Samples == 0 {
		t.Fatal("no samples evaluated")
	}
	if acc.MeanError <= 0 || acc.P90Error < acc.MeanError {
		t.Fatalf("suspicious accuracy: mean %v p90 %v", acc.MeanError, acc.P90Error)
	}
	if acc.HitRate <= 0 || acc.HitRate > 1 {
		t.Fatalf("hit rate %v out of range", acc.HitRate)
	}
}

func TestEvaluateManyAggregates(t *testing.T) {
	hs := []*trace.HeadTrace{steadyYawTrace(10, 5*time.Second), steadyYawTrace(20, 5*time.Second)}
	agg := EvaluateMany(func() Predictor { return &Static{} }, hs, sphere.DefaultFoV, 500*time.Millisecond)
	if agg.Samples == 0 {
		t.Fatal("no aggregate samples")
	}
	single := Evaluate(func() Predictor { return &Static{} }, hs[0], sphere.DefaultFoV, 500*time.Millisecond)
	if agg.Samples <= single.Samples {
		t.Fatal("aggregate did not include both traces")
	}
}

func TestAccuracyDegradesWithHorizon(t *testing.T) {
	// Fundamental property (§3.2): prediction gets harder further out.
	rng := rand.New(rand.NewSource(31))
	att := trace.GenerateAttention(rand.New(rand.NewSource(32)), 60*time.Second)
	h := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, 60*time.Second)
	short := Evaluate(func() Predictor { return &LinearRegression{} }, h, sphere.DefaultFoV, 200*time.Millisecond)
	long := Evaluate(func() Predictor { return &LinearRegression{} }, h, sphere.DefaultFoV, 2*time.Second)
	if short.MeanError >= long.MeanError {
		t.Fatalf("short-horizon error %.1f° not below long-horizon %.1f°", short.MeanError, long.MeanError)
	}
	if short.HitRate <= long.HitRate {
		t.Fatalf("short-horizon hit rate %.2f not above long-horizon %.2f", short.HitRate, long.HitRate)
	}
}

func TestLearnSpeedBound(t *testing.T) {
	if LearnSpeedBound(nil) != 0 {
		t.Fatal("empty sessions have a speed bound")
	}
	slow := steadyYawTrace(10, 5*time.Second)
	fast := steadyYawTrace(40, 5*time.Second)
	bound := LearnSpeedBound([]*trace.HeadTrace{slow, fast})
	// The bound covers the fastest observed session plus padding.
	if bound < 40 || bound > 55 {
		t.Fatalf("bound = %v °/s, want ≈44", bound)
	}
	// Learned bounds feed Fusion/OOS pruning: slower user, tighter bound.
	if LearnSpeedBound([]*trace.HeadTrace{slow}) >= bound {
		t.Fatal("slow-only bound not below mixed bound")
	}
}

func TestHeatmapFromProbabilitiesRoundTrip(t *testing.T) {
	// Build a heatmap from sessions, export its probabilities (as the
	// collector's JSON does), reconstruct, and compare behaviour.
	orig, _, _ := buildTestHeatmap(t, 8)
	prob := make([][]float64, orig.Intervals())
	for i := range prob {
		row := make([]float64, orig.Grid.Tiles())
		at := time.Duration(i) * orig.ChunkDur
		for tile := range row {
			row[tile] = orig.Probability(at, tiling.TileID(tile))
		}
		prob[i] = row
	}
	back, err := HeatmapFromProbabilities(orig.Grid, sphere.Equirectangular{}, orig.ChunkDur, prob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orig.Intervals(); i++ {
		at := time.Duration(i) * orig.ChunkDur
		for tile := tiling.TileID(0); int(tile) < orig.Grid.Tiles(); tile++ {
			if back.Probability(at, tile) != orig.Probability(at, tile) {
				t.Fatalf("probability drifted at interval %d tile %d", i, tile)
			}
		}
		// Reconstructed crowd centers are probability-weighted tile
		// centers: close to, though not identical with, the original
		// sample-mean centers.
		// Tile granularity on the 4×6 grid is 60°×45°; allow one tile.
		if d := sphere.AngularDistance(back.CrowdCenter(at), orig.CrowdCenter(at)); d > 45 {
			t.Fatalf("crowd center drifted %v° at interval %d", d, i)
		}
	}
	// The reconstructed heatmap drives TopTiles identically.
	a := orig.TopTiles(4*time.Second, 3)
	b := back.TopTiles(4*time.Second, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopTiles diverged: %v vs %v", a, b)
		}
	}
}

func TestHeatmapFromProbabilitiesValidation(t *testing.T) {
	g := tiling.GridPrototype
	p := sphere.Equirectangular{}
	if _, err := HeatmapFromProbabilities(tiling.Grid{}, p, time.Second, nil); err == nil {
		t.Fatal("invalid grid accepted")
	}
	if _, err := HeatmapFromProbabilities(g, p, 0, nil); err == nil {
		t.Fatal("zero chunk duration accepted")
	}
	if _, err := HeatmapFromProbabilities(g, p, time.Second, [][]float64{{0.5}}); err == nil {
		t.Fatal("wrong row width accepted")
	}
	if _, err := HeatmapFromProbabilities(g, p, time.Second,
		[][]float64{{0, 0, 0, 0, 0, 0, 0, 2}}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}

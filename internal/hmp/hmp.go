// Package hmp implements head-movement prediction, the prerequisite of
// FoV-guided streaming (§3.2). It provides the single-user predictors
// prior work established (last-value and linear extrapolation over a
// short window [16, 37]), the crowd-sourced heatmap predictor the paper
// proposes, and the "data fusion" predictor that joins per-user motion,
// crowd statistics, per-user speed bounds, and viewing context.
package hmp

import (
	"math"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/trace"
)

// Prediction is a predicted orientation with an uncertainty radius: the
// expected angular error in degrees. Rate adaptation sizes OOS rings
// from the radius (§3.1.2: "the lower the accuracy, the more OOS chunks
// are needed").
type Prediction struct {
	View   sphere.Orientation
	Radius float64
}

// Predictor forecasts where the viewer will look. Implementations are
// fed sensor samples in time order via Observe and asked for the view at
// a future instant via Predict.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Observe feeds one sensor reading; samples must arrive in
	// nondecreasing time order.
	Observe(s trace.Sample)
	// Predict forecasts the orientation at the (future) time at.
	Predict(at time.Duration) Prediction
}

// Static predicts the viewer keeps looking where they look now — the
// baseline every HMP study starts from.
type Static struct {
	last trace.Sample
	seen bool
}

// Name implements Predictor.
func (s *Static) Name() string { return "static" }

// Observe implements Predictor.
func (s *Static) Observe(x trace.Sample) {
	s.last = x
	s.seen = true
}

// Predict implements Predictor.
func (s *Static) Predict(at time.Duration) Prediction {
	if !s.seen {
		return Prediction{Radius: 180}
	}
	horizon := (at - s.last.At).Seconds()
	if horizon < 0 {
		horizon = 0
	}
	// Uncertainty grows with horizon: typical head speed ~20°/s.
	return Prediction{View: s.last.View, Radius: 5 + 20*horizon}
}

// LinearRegression extrapolates yaw and pitch with a least-squares fit
// over a sliding window of recent samples — the short-horizon technique
// of [16, 37]. Yaw is unwrapped before fitting so the seam at ±180°
// doesn't corrupt the slope.
type LinearRegression struct {
	// Window is the fit window; 0 defaults to 500 ms.
	Window time.Duration
	// Persistence is the motion-persistence constant τ in seconds: the
	// predictor extrapolates at most τ seconds of motion regardless of
	// horizon (heads pursue and stop). 0 defaults to 0.7.
	Persistence float64

	samples []trace.Sample
	unwYaw  []float64 // unwrapped yaw parallel to samples
}

// Name implements Predictor.
func (l *LinearRegression) Name() string { return "linear" }

// Observe implements Predictor.
func (l *LinearRegression) Observe(s trace.Sample) {
	w := l.Window
	if w <= 0 {
		w = 500 * time.Millisecond
	}
	// Unwrap the new yaw against the previous one.
	yaw := s.View.Yaw
	if n := len(l.samples); n > 0 {
		prev := l.unwYaw[n-1]
		delta := sphere.NormalizeYaw(yaw - sphere.NormalizeYaw(prev))
		yaw = prev + delta
	}
	l.samples = append(l.samples, s)
	l.unwYaw = append(l.unwYaw, yaw)
	// Evict samples older than the window.
	cut := 0
	for cut < len(l.samples) && l.samples[cut].At < s.At-w {
		cut++
	}
	l.samples = l.samples[cut:]
	l.unwYaw = l.unwYaw[cut:]
}

// Predict implements Predictor.
func (l *LinearRegression) Predict(at time.Duration) Prediction {
	n := len(l.samples)
	if n == 0 {
		return Prediction{Radius: 180}
	}
	last := l.samples[n-1]
	horizon := (at - last.At).Seconds()
	if horizon < 0 {
		horizon = 0
	}
	if n == 1 {
		return Prediction{View: last.View, Radius: 5 + 20*horizon}
	}
	// Least squares on (t, yaw) and (t, pitch), t relative to the last
	// sample to keep numbers small.
	var sumT, sumT2, sumY, sumTY, sumP, sumTP float64
	for i, s := range l.samples {
		t := (s.At - last.At).Seconds()
		sumT += t
		sumT2 += t * t
		sumY += l.unwYaw[i]
		sumTY += t * l.unwYaw[i]
		sumP += s.View.Pitch
		sumTP += t * s.View.Pitch
	}
	fn := float64(n)
	det := fn*sumT2 - sumT*sumT
	var yawSlope, yawIc, pitchSlope, pitchIc float64
	if math.Abs(det) < 1e-12 {
		yawIc, pitchIc = l.unwYaw[n-1], last.View.Pitch
	} else {
		yawSlope = (fn*sumTY - sumT*sumY) / det
		yawIc = (sumY - yawSlope*sumT) / fn
		pitchSlope = (fn*sumTP - sumT*sumP) / det
		pitchIc = (sumP - pitchSlope*sumT) / fn
	}
	// Cap extrapolation speed at a plausible human bound so one saccade
	// inside the window doesn't fling the prediction across the sphere.
	const maxSlope = 120 // degrees/second
	yawSlope = clamp(yawSlope, -maxSlope, maxSlope)
	pitchSlope = clamp(pitchSlope, -maxSlope, maxSlope)
	// Fixation dead-zone: micro-jitter during fixation produces small,
	// noisy slopes that only degrade the forecast. Extrapolate only when
	// the head is genuinely moving.
	const minSlope = 8 // degrees/second
	if math.Hypot(yawSlope, pitchSlope) < minSlope {
		yawSlope, pitchSlope = 0, 0
	}
	// Motion persistence is short: heads pursue a target and stop, so
	// constant-velocity extrapolation overshoots at long horizons.
	// Shrink the effective horizon with a persistence constant τ:
	// h' = τ(1 − e^(−h/τ)) extrapolates at most τ seconds of motion.
	tau := l.Persistence
	if tau <= 0 {
		tau = 0.7
	}
	eff := tau * (1 - math.Exp(-horizon/tau))
	view := sphere.Orientation{
		Yaw:   yawIc + yawSlope*eff,
		Pitch: pitchIc + pitchSlope*eff,
	}.Normalized()
	speed := math.Hypot(yawSlope, pitchSlope)
	return Prediction{View: view, Radius: 3 + (8+0.35*speed)*horizon}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

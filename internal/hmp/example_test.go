package hmp_test

import (
	"fmt"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/trace"
)

// ExampleLinearRegression predicts a smoothly panning viewer's future
// orientation from recent sensor samples, the short-horizon HMP of
// [16, 37].
func ExampleLinearRegression() {
	p := hmp.LinearRegression{Persistence: 1e6} // pure extrapolation for the demo
	// 20°/s pan, sampled at 50 Hz for half a second.
	for i := 0; i <= 25; i++ {
		at := time.Duration(i) * 20 * time.Millisecond
		p.Observe(trace.Sample{At: at, View: sphere.Orientation{Yaw: 20 * at.Seconds()}})
	}
	pred := p.Predict(1500 * time.Millisecond) // one second ahead
	fmt.Printf("predicted yaw ≈ %.0f°\n", pred.View.Yaw)
	// Output:
	// predicted yaw ≈ 30°
}

// ExampleFusion builds the §3.2 data-fusion predictor: personal motion,
// crowd heatmap, learned speed bound and viewing context in one.
func ExampleFusion() {
	ctx := trace.Context{Pose: trace.Lying} // cannot look 180° behind
	f := &hmp.Fusion{
		SpeedBound: 120, // learned from this user's history, °/s
		Context:    &ctx,
	}
	f.Observe(trace.Sample{At: 0, View: sphere.Orientation{Yaw: 100}})
	f.Observe(trace.Sample{At: 100 * time.Millisecond, View: sphere.Orientation{Yaw: 104}})
	pred := f.Predict(2100 * time.Millisecond)
	fmt.Printf("prediction stays inside the lying viewer's ±110° range: %v\n",
		pred.View.Yaw <= 110)
	// Output:
	// prediction stays inside the lying viewer's ±110° range: true
}

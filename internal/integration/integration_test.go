// Package integration exercises Sperke's real-network substrates end to
// end over loopback: the RTMP-like ingest feeding a live DASH window, a
// polling HTTP viewer, and the rate shaper standing in for `tc`
// (§3.4.1's measurement toolchain). These are the wire paths the
// simulation-based experiments abstract; here they run for real, with
// sub-second parameters so the suite stays fast.
package integration

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/rtmp"
	"sperke/internal/tiling"
)

func liveVideo(segment time.Duration, n int) *media.Video {
	return &media.Video{
		ID:             "it-live",
		Duration:       time.Duration(n) * segment,
		ChunkDuration:  segment,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.LiveLadder,
		Encoding:       media.EncodingAVC,
	}
}

// TestLivePipelineOverLoopback runs broadcaster → RTMP ingest → live
// DASH window → HTTP viewer on real sockets and checks ordering,
// integrity and that E2E latency is sane.
func TestLivePipelineOverLoopback(t *testing.T) {
	const segment = 100 * time.Millisecond
	const nSegs = 8
	video := liveVideo(segment, nSegs)
	catalog := dash.NewCatalog()
	if err := catalog.Add(video); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	captureAt := map[int]time.Time{}
	last := -1
	ingest := &rtmp.Server{
		OnSegment: func(stream string, at time.Time, ts time.Duration, h media.SegmentHeader, payload []byte) {
			idx := int(h.Start / segment)
			mu.Lock()
			if idx > last {
				last = idx
				catalog.SetLiveWindow(video.ID, 0, last)
			}
			mu.Unlock()
		},
	}
	ingestLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ingest.Serve(ingestLn)
	defer ingest.Close()

	httpSrv := httptest.NewServer(dash.NewServer(catalog, nil))
	defer httpSrv.Close()

	// Broadcaster.
	conn, err := net.Dial("tcp", ingestLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := rtmp.NewPublisher(conn, video.ID)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer pub.Close()
		start := time.Now()
		for i := 0; i < nSegs; i++ {
			time.Sleep(time.Until(start.Add(time.Duration(i+1) * segment)))
			mu.Lock()
			captureAt[i] = time.Now()
			mu.Unlock()
			h := media.SegmentHeader{
				VideoID: video.ID, Quality: 2, Flags: media.FlagLive,
				Tile: 0, Start: time.Duration(i) * segment, Duration: segment,
			}
			if err := pub.SendSegment(h.Start, h, media.SyntheticPayload(uint64(i), 2000)); err != nil {
				t.Errorf("send segment %d: %v", i, err)
				return
			}
		}
	}()

	// Viewer.
	client := dash.NewClient(httpSrv.URL)
	fetched := 0
	deadline := time.Now().Add(10 * time.Second)
	var worst time.Duration
	for fetched < nSegs && time.Now().Before(deadline) {
		mpd, err := client.FetchMPD(context.Background(), video.ID)
		if err != nil || mpd.Type != "dynamic" {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		for fetched <= mpd.LastChunk {
			res, err := client.FetchChunk(context.Background(), video.ID, 2, 0, fetched)
			if err != nil {
				t.Fatalf("fetch chunk %d: %v", fetched, err)
			}
			if res.Header.Start != time.Duration(fetched)*segment {
				t.Fatalf("chunk %d has start %v", fetched, res.Header.Start)
			}
			mu.Lock()
			cap, ok := captureAt[fetched]
			mu.Unlock()
			if ok {
				if lat := time.Since(cap); lat > worst {
					worst = lat
				}
			}
			fetched++
		}
		time.Sleep(segment / 4)
	}
	if fetched != nSegs {
		t.Fatalf("viewer got %d/%d segments", fetched, nSegs)
	}
	// On loopback with 100 ms segments, E2E latency must stay well under
	// a second.
	if worst > 2*time.Second {
		t.Fatalf("worst E2E latency %v on loopback", worst)
	}
}

// TestShapedIngestSlowsDelivery verifies the rate shaper constrains a
// real RTMP upload the way `tc` does in the paper's testbed.
func TestShapedIngestSlowsDelivery(t *testing.T) {
	run := func(bps float64) time.Duration {
		received := make(chan time.Time, 1)
		srv := &rtmp.Server{
			OnSegment: func(stream string, at time.Time, ts time.Duration, h media.SegmentHeader, payload []byte) {
				select {
				case received <- time.Now():
				default:
				}
			},
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()

		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		var up net.Conn = conn
		if bps > 0 {
			up = netem.NewRateLimitedConn(conn, bps, 8<<10)
		}
		pub, err := rtmp.NewPublisher(up, "s")
		if err != nil {
			t.Fatal(err)
		}
		defer pub.Close()
		start := time.Now()
		// 200 KB segment: ~0.4 s at 4 Mbit/s, instant unshaped.
		h := media.SegmentHeader{VideoID: "s", Quality: 1}
		if err := pub.SendSegment(0, h, media.SyntheticPayload(9, 200<<10)); err != nil {
			t.Fatal(err)
		}
		select {
		case at := <-received:
			return at.Sub(start)
		case <-time.After(10 * time.Second):
			t.Fatal("segment never arrived")
			return 0
		}
	}
	unshaped := run(0)
	shaped := run(4e6)
	if shaped < unshaped+100*time.Millisecond {
		t.Fatalf("shaping had no effect: unshaped %v, shaped %v", unshaped, shaped)
	}
	if shaped < 300*time.Millisecond {
		t.Fatalf("200KB at 4Mbit/s arrived in %v — shaper too permissive", shaped)
	}
}

// TestDashClientEndToEndSVC walks the full VOD path a Sperke client
// takes: fetch the MPD, derive geometry, fetch base + enhancement
// layers of a chunk, and verify the layered sizes follow the §3.1.1
// model.
func TestDashClientEndToEndSVC(t *testing.T) {
	video := &media.Video{
		ID:             "it-vod",
		Duration:       10 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingSVC,
	}
	catalog := dash.NewCatalog()
	if err := catalog.Add(video); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dash.NewServer(catalog, nil))
	defer srv.Close()
	client := dash.NewClient(srv.URL)

	mpd, err := client.FetchMPD(context.Background(), video.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mpd.Grid() != video.Grid || mpd.Encoding != "SVC" {
		t.Fatalf("MPD mismatch: %+v", mpd)
	}

	// Fetch layers 0..2 of one tile-chunk and compare with a q2 chunk
	// fetched whole (the server also serves the cumulative form for AVC
	// clients via the plain chunk route).
	var layered int64
	for layer := 0; layer <= 2; layer++ {
		res, err := client.FetchLayer(context.Background(), video.ID, layer, 3, 1)
		if err != nil {
			t.Fatalf("layer %d: %v", layer, err)
		}
		if res.Header.Flags&media.FlagSVCLayer == 0 {
			t.Fatalf("layer %d missing flag", layer)
		}
		layered += int64(len(res.Payload))
	}
	whole, err := client.FetchChunk(context.Background(), video.ID, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cumulative layers exceed the single-layer chunk by the SVC
	// overhead, bounded by ~(1+overhead).
	if layered <= int64(len(whole.Payload)) {
		t.Fatalf("layers %d not above single-layer %d", layered, len(whole.Payload))
	}
	if float64(layered) > float64(len(whole.Payload))*1.2 {
		t.Fatalf("layers %d exceed overhead bound over %d", layered, len(whole.Payload))
	}
}

// TestSegmentIntegrityOverHTTP re-decodes a fetched segment byte stream
// to prove the wire format survives the HTTP transport unchanged.
func TestSegmentIntegrityOverHTTP(t *testing.T) {
	video := liveVideo(2*time.Second, 5)
	catalog := dash.NewCatalog()
	if err := catalog.Add(video); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dash.NewServer(catalog, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v/it-live/c/1/2/3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	h, payload, err := media.ReadSegment(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if h.VideoID != "it-live" || h.Quality != 1 || h.Tile != 2 {
		t.Fatalf("header %+v", h)
	}
	want := video.ChunkBytes(1, 2, 6*time.Second)
	if int64(len(payload)) != want {
		t.Fatalf("payload %d bytes, want %d", len(payload), want)
	}
	// Deterministic content: a second fetch is byte-identical.
	resp2, err := http.Get(srv.URL + "/v/it-live/c/1/2/3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	_, payload2, err := media.ReadSegment(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("same chunk differs across fetches")
	}
}

package integration

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"sperke/internal/codec"
	"sperke/internal/core"
	"sperke/internal/dash"
	"sperke/internal/faults"
	"sperke/internal/live"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func breakerCycle(trs []transport.BreakerTransition) (opened, reclosed bool) {
	for _, tr := range trs {
		if tr.To == transport.BreakerOpen {
			opened = true
		}
		if opened && tr.To == transport.BreakerClosed {
			reclosed = true
		}
	}
	return
}

// TestChaosBroadcastSurvivesScriptedPlan replays a scripted fault plan —
// a mid-session uplink outage followed by a bandwidth cliff — against a
// full simulated broadcast with the breaker-driven spatial fallback
// active. The session must complete with bounded rebuffering and the
// breaker must open and re-close.
func TestChaosBroadcastSurvivesScriptedPlan(t *testing.T) {
	reg := obs.NewRegistry()
	plan := faults.MustParse("outage:uplink:8s:4s,cliff:uplink:16s:4s:1M")
	run := live.MeasureE2EResilient(5, live.Facebook,
		netem.Constant(8e6), netem.Constant(10e6), 30*time.Second,
		live.DegradeConfig{
			Breaker: transport.BreakerConfig{FailureThreshold: 2, Cooldown: 2 * time.Second},
			Plan:    live.HorizonPlan{SpanDeg: 180},
			ArmFaults: func(clock *sim.Clock, upload *netem.Path) {
				if err := plan.Apply(clock, upload); err != nil {
					t.Errorf("apply plan: %v", err)
				}
			},
			Obs: reg,
		})

	opened, reclosed := breakerCycle(run.Transitions)
	if !opened || !reclosed {
		t.Fatalf("breaker cycle incomplete (opened=%v reclosed=%v): %+v",
			opened, reclosed, run.Transitions)
	}
	if run.Result.Samples == 0 {
		t.Fatal("viewer displayed nothing — the session did not survive the plan")
	}
	nSegs := int(30 * time.Second / live.Facebook.SegmentDur)
	if run.Result.SkippedSegments >= nSegs/2 {
		t.Fatalf("%d of %d segments skipped — degradation unbounded",
			run.Result.SkippedSegments, nSegs)
	}
	if run.Result.Stalls > 8 {
		t.Fatalf("%d rebuffer events — not bounded across a 4s outage", run.Result.Stalls)
	}
	if run.DegradedPieces == 0 || run.DegradedPieces >= run.TotalPieces {
		t.Fatalf("fallback accounting %d/%d — expected partial degradation",
			run.DegradedPieces, run.TotalPieces)
	}

	// The whole episode must be visible through the metrics registry: the
	// breaker cycle, the fallback doing work, and the pipeline's latency
	// histograms filling in.
	snap := reg.Snapshot()
	if n := snap.Counters["transport.breaker.to_open"]; n < 1 {
		t.Fatalf("breaker.to_open counter = %d, want >= 1", n)
	}
	if n := snap.Counters["transport.breaker.to_closed"]; n < 1 {
		t.Fatalf("breaker.to_closed counter = %d, want >= 1", n)
	}
	if n := snap.Counters["live.fallback.activations"]; n < 1 {
		t.Fatalf("fallback activations counter = %d, want >= 1", n)
	}
	if n := snap.Counters["live.fallback.degraded_pieces"]; n != int64(run.DegradedPieces) {
		t.Fatalf("degraded_pieces counter = %d, want %d", n, run.DegradedPieces)
	}
	if h := snap.Histograms["live.e2e_ms"]; h.Count == 0 {
		t.Fatal("live.e2e_ms histogram empty — viewer latency unobserved")
	}
	for _, stage := range []string{"span.encode_ms", "span.upload_ms", "span.transcode_ms", "span.fetch_ms"} {
		if h := snap.Histograms[stage]; h.Count == 0 {
			t.Fatalf("%s histogram empty — stage span unrecorded", stage)
		}
	}
}

// TestChaosChunkSessionFailsOver replays a path outage against a
// two-path failover session: a chunk request every 250 ms for 30 s.
// Every chunk must complete, misses must stay bounded to the requests
// the outage caught in flight, and the tripped breaker must recover.
func TestChaosChunkSessionFailsOver(t *testing.T) {
	clock := sim.NewClock(9)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 10*time.Millisecond, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(4e6), 30*time.Millisecond, 0)
	// 4.8s start so the outage catches the 4.75s chunk mid-transfer: that
	// delivery lands late, trips the breaker, and the rest of the session
	// must fail over.
	if err := faults.MustParse("outage:wifi:4800ms:5s").Apply(clock, wifi); err != nil {
		t.Fatal(err)
	}
	f := transport.NewFailover(clock,
		transport.BreakerConfig{FailureThreshold: 1, Cooldown: 2 * time.Second}, wifi, lte)
	reg := obs.NewRegistry()
	f.SetObs(reg)

	completions, missed := 0, 0
	submit := func(at time.Duration, bytes int64) {
		req := &transport.Request{
			Class: transport.ClassFoV, Bytes: bytes, Deadline: at + time.Second,
			OnDone: func(d netem.Delivery, ok bool) {
				completions++
				if !ok {
					missed++
				}
			},
		}
		clock.Schedule(at, func() { f.Submit(req) })
	}
	const session = 120
	for i := 0; i < session; i++ {
		submit(time.Duration(i)*250*time.Millisecond, 1e5)
	}
	// A burst just before the outage builds a wifi backlog the blackout
	// catches mid-queue; the router's estimates cannot see queued work, so
	// this is what actually trips the breaker.
	const burst = 4
	for i := 0; i < burst; i++ {
		submit(4050*time.Millisecond, 250e3)
	}
	clock.Run()

	const total = session + burst
	if completions != total {
		t.Fatalf("%d/%d chunks completed — session did not finish", completions, total)
	}
	if f.Pending() != 0 {
		t.Fatalf("%d requests stranded", f.Pending())
	}
	if missed > 5 {
		t.Fatalf("%d deadline misses — failover did not contain the outage", missed)
	}
	opened, reclosed := breakerCycle(f.Breaker(0).Transitions())
	if !opened || !reclosed {
		t.Fatalf("wifi breaker cycle incomplete (opened=%v reclosed=%v): %+v",
			opened, reclosed, f.Breaker(0).Transitions())
	}
	if f.Stats(1).Successes == 0 {
		t.Fatal("lte absorbed nothing during the wifi outage")
	}

	// The failover's work must be observable: reroutes counted, the queue
	// drained back to zero, and the breaker cycle mirrored in counters.
	snap := reg.Snapshot()
	if n := snap.Counters["transport.failover.rerouted"]; n < 1 {
		t.Fatalf("rerouted counter = %d, want >= 1", n)
	}
	if n := snap.Gauges["transport.failover.queue_depth"]; n != 0 {
		t.Fatalf("queue_depth gauge = %d at session end, want 0", n)
	}
	wantSucc := int64(f.Stats(0).Successes + f.Stats(1).Successes)
	if n := snap.Counters["transport.failover.successes"]; n != wantSucc {
		t.Fatalf("successes counter = %d, want %d (per-path stats)", n, wantSucc)
	}
	if n := snap.Counters["transport.breaker.to_open"]; n < 1 {
		t.Fatalf("breaker.to_open counter = %d, want >= 1", n)
	}
}

// TestChaosHTTPFaultBurstAndTruncation runs a real HTTP session against
// a dash server behind the fault injector: a 5xx burst plus exactly one
// truncated segment. The resilient client must absorb every fault, and
// the session must not leak goroutines.
func TestChaosHTTPFaultBurstAndTruncation(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		video := liveVideo(2*time.Second, 5)
		catalog := dash.NewCatalog()
		if err := catalog.Add(video); err != nil {
			t.Fatal(err)
		}
		in := faults.NewInjector(42,
			faults.Rule{PathContains: "/c/", ErrorProb: 1, ErrorStatus: http.StatusBadGateway, MaxCount: 3},
			faults.Rule{PathContains: "/c/", TruncateProb: 1, MaxCount: 1},
		)
		srv := httptest.NewServer(in.Wrap(dash.NewServer(catalog, nil)))
		defer srv.Close()

		tr := &http.Transport{}
		defer tr.CloseIdleConnections()
		client := dash.NewClient(srv.URL)
		client.HTTPClient = &http.Client{Transport: tr, Timeout: 5 * time.Second}
		client.Retry.MaxAttempts = 8
		client.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }

		mpd, err := client.FetchMPD(context.Background(), video.ID)
		if err != nil {
			t.Fatalf("manifest: %v", err)
		}
		fetches, attempts := 0, 0
		for idx := 0; idx < mpd.NumChunks(); idx++ {
			for tile := 0; tile < 2; tile++ {
				res, err := client.FetchChunk(context.Background(), video.ID, 1, tile, idx)
				if err != nil {
					t.Fatalf("chunk %d/%d through faults: %v", tile, idx, err)
				}
				fetches++
				attempts += res.Attempts
			}
		}
		if attempts <= fetches {
			t.Fatalf("%d attempts for %d fetches — the faults never fired", attempts, fetches)
		}
		st := in.Stats()
		if st.Errors != 3 {
			t.Fatalf("injected %d 502s, want the scripted 3", st.Errors)
		}
		if st.Truncations != 1 {
			t.Fatalf("injected %d truncations, want exactly 1", st.Truncations)
		}
		// Every injected fault cost exactly one extra attempt.
		if got, want := attempts-fetches, 4; got != want {
			t.Fatalf("%d retries, want %d (3 errors + 1 truncation)", got, want)
		}
	}()

	// No goroutine leaks: everything the session spawned must wind down.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d -> %d after session teardown", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSlowDeviceMetricsObservable runs a full player session on a
// pathologically slow device with a tight chunk-cache budget and checks
// that the stress is visible end-to-end through the metrics registry:
// decode-deadline misses fire, both caches record hits and misses, and
// the session report lands in the core.session counters. This is the
// acceptance path for "cache hit ratios and decode-deadline misses all
// observable".
func TestChaosSlowDeviceMetricsObservable(t *testing.T) {
	reg := obs.NewRegistry()
	video := &media.Video{
		ID:             "chaos-device",
		Duration:       30 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}
	// A 2 Mpx/s single decoder cannot keep up with a 360° tile stream —
	// the same "potato" profile the core tests use to force hiccups.
	slow := codec.DeviceProfile{
		Name:          "potato",
		HWDecoders:    1,
		Decoder:       codec.DecoderSpec{PixelRate: 2e6, SubmitOverhead: 5 * time.Millisecond},
		MaxDisplayFPS: 60,
	}
	cfg := core.Config{
		Video:             video,
		Mode:              core.FoVGuided,
		Device:            &slow,
		Decoders:          1,
		EncodedCacheBytes: 2 << 20, // tight: forces chunk-cache churn
		Obs:               reg,
	}

	clock := sim.NewClock(14)
	path := netem.NewPath(clock, "net", netem.Constant(15e6), 20*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)
	dur := video.Duration + 10*time.Second
	rng := rand.New(rand.NewSource(14))
	att := trace.GenerateAttention(rand.New(rand.NewSource(514)), dur)
	head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
	s, err := core.NewSession(clock, cfg, head, sched)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()
	if rep.QoE.PlayTime == 0 {
		t.Fatal("session played nothing")
	}

	snap := reg.Snapshot()
	if n := snap.Counters["player.decode.deadline_misses"]; n < 1 {
		t.Fatalf("deadline_misses = %d on a 2 Mpx/s decoder, want >= 1", n)
	}
	if h := snap.Counters["player.frame_cache.hits"]; h < 1 {
		t.Fatalf("frame cache hits = %d, want >= 1", h)
	}
	if m := snap.Counters["player.frame_cache.misses"]; m < 1 {
		t.Fatalf("frame cache misses = %d, want >= 1", m)
	}
	if h := snap.Counters["player.chunk_cache.hits"]; h < 1 {
		t.Fatalf("chunk cache hits = %d, want >= 1", h)
	}
	if n := snap.Counters["core.session.runs"]; n != 1 {
		t.Fatalf("core.session.runs = %d, want 1", n)
	}
	if n := snap.Counters["core.session.bytes_fetched"]; n != rep.BytesFetched {
		t.Fatalf("bytes_fetched counter = %d, report says %d", n, rep.BytesFetched)
	}
}

package integration

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/faults"
	"sperke/internal/live"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

func breakerCycle(trs []transport.BreakerTransition) (opened, reclosed bool) {
	for _, tr := range trs {
		if tr.To == transport.BreakerOpen {
			opened = true
		}
		if opened && tr.To == transport.BreakerClosed {
			reclosed = true
		}
	}
	return
}

// TestChaosBroadcastSurvivesScriptedPlan replays a scripted fault plan —
// a mid-session uplink outage followed by a bandwidth cliff — against a
// full simulated broadcast with the breaker-driven spatial fallback
// active. The session must complete with bounded rebuffering and the
// breaker must open and re-close.
func TestChaosBroadcastSurvivesScriptedPlan(t *testing.T) {
	plan := faults.MustParse("outage:uplink:8s:4s,cliff:uplink:16s:4s:1M")
	run := live.MeasureE2EResilient(5, live.Facebook,
		netem.Constant(8e6), netem.Constant(10e6), 30*time.Second,
		live.DegradeConfig{
			Breaker: transport.BreakerConfig{FailureThreshold: 2, Cooldown: 2 * time.Second},
			Plan:    live.HorizonPlan{SpanDeg: 180},
			ArmFaults: func(clock *sim.Clock, upload *netem.Path) {
				if err := plan.Apply(clock, upload); err != nil {
					t.Errorf("apply plan: %v", err)
				}
			},
		})

	opened, reclosed := breakerCycle(run.Transitions)
	if !opened || !reclosed {
		t.Fatalf("breaker cycle incomplete (opened=%v reclosed=%v): %+v",
			opened, reclosed, run.Transitions)
	}
	if run.Result.Samples == 0 {
		t.Fatal("viewer displayed nothing — the session did not survive the plan")
	}
	nSegs := int(30 * time.Second / live.Facebook.SegmentDur)
	if run.Result.SkippedSegments >= nSegs/2 {
		t.Fatalf("%d of %d segments skipped — degradation unbounded",
			run.Result.SkippedSegments, nSegs)
	}
	if run.Result.Stalls > 8 {
		t.Fatalf("%d rebuffer events — not bounded across a 4s outage", run.Result.Stalls)
	}
	if run.DegradedPieces == 0 || run.DegradedPieces >= run.TotalPieces {
		t.Fatalf("fallback accounting %d/%d — expected partial degradation",
			run.DegradedPieces, run.TotalPieces)
	}
}

// TestChaosChunkSessionFailsOver replays a path outage against a
// two-path failover session: a chunk request every 250 ms for 30 s.
// Every chunk must complete, misses must stay bounded to the requests
// the outage caught in flight, and the tripped breaker must recover.
func TestChaosChunkSessionFailsOver(t *testing.T) {
	clock := sim.NewClock(9)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 10*time.Millisecond, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(4e6), 30*time.Millisecond, 0)
	// 4.8s start so the outage catches the 4.75s chunk mid-transfer: that
	// delivery lands late, trips the breaker, and the rest of the session
	// must fail over.
	if err := faults.MustParse("outage:wifi:4800ms:5s").Apply(clock, wifi); err != nil {
		t.Fatal(err)
	}
	f := transport.NewFailover(clock,
		transport.BreakerConfig{FailureThreshold: 1, Cooldown: 2 * time.Second}, wifi, lte)

	completions, missed := 0, 0
	submit := func(at time.Duration, bytes int64) {
		req := &transport.Request{
			Class: transport.ClassFoV, Bytes: bytes, Deadline: at + time.Second,
			OnDone: func(d netem.Delivery, ok bool) {
				completions++
				if !ok {
					missed++
				}
			},
		}
		clock.Schedule(at, func() { f.Submit(req) })
	}
	const session = 120
	for i := 0; i < session; i++ {
		submit(time.Duration(i)*250*time.Millisecond, 1e5)
	}
	// A burst just before the outage builds a wifi backlog the blackout
	// catches mid-queue; the router's estimates cannot see queued work, so
	// this is what actually trips the breaker.
	const burst = 4
	for i := 0; i < burst; i++ {
		submit(4050*time.Millisecond, 250e3)
	}
	clock.Run()

	const total = session + burst
	if completions != total {
		t.Fatalf("%d/%d chunks completed — session did not finish", completions, total)
	}
	if f.Pending() != 0 {
		t.Fatalf("%d requests stranded", f.Pending())
	}
	if missed > 5 {
		t.Fatalf("%d deadline misses — failover did not contain the outage", missed)
	}
	opened, reclosed := breakerCycle(f.Breaker(0).Transitions())
	if !opened || !reclosed {
		t.Fatalf("wifi breaker cycle incomplete (opened=%v reclosed=%v): %+v",
			opened, reclosed, f.Breaker(0).Transitions())
	}
	if f.Stats(1).Successes == 0 {
		t.Fatal("lte absorbed nothing during the wifi outage")
	}
}

// TestChaosHTTPFaultBurstAndTruncation runs a real HTTP session against
// a dash server behind the fault injector: a 5xx burst plus exactly one
// truncated segment. The resilient client must absorb every fault, and
// the session must not leak goroutines.
func TestChaosHTTPFaultBurstAndTruncation(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		video := liveVideo(2*time.Second, 5)
		catalog := dash.NewCatalog()
		if err := catalog.Add(video); err != nil {
			t.Fatal(err)
		}
		in := faults.NewInjector(42,
			faults.Rule{PathContains: "/c/", ErrorProb: 1, ErrorStatus: http.StatusBadGateway, MaxCount: 3},
			faults.Rule{PathContains: "/c/", TruncateProb: 1, MaxCount: 1},
		)
		srv := httptest.NewServer(in.Wrap(dash.NewServer(catalog, nil)))
		defer srv.Close()

		tr := &http.Transport{}
		defer tr.CloseIdleConnections()
		client := dash.NewClient(srv.URL)
		client.HTTPClient = &http.Client{Transport: tr, Timeout: 5 * time.Second}
		client.Retry.MaxAttempts = 8
		client.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }

		mpd, err := client.FetchMPD(context.Background(), video.ID)
		if err != nil {
			t.Fatalf("manifest: %v", err)
		}
		fetches, attempts := 0, 0
		for idx := 0; idx < mpd.NumChunks(); idx++ {
			for tile := 0; tile < 2; tile++ {
				res, err := client.FetchChunk(context.Background(), video.ID, 1, tile, idx)
				if err != nil {
					t.Fatalf("chunk %d/%d through faults: %v", tile, idx, err)
				}
				fetches++
				attempts += res.Attempts
			}
		}
		if attempts <= fetches {
			t.Fatalf("%d attempts for %d fetches — the faults never fired", attempts, fetches)
		}
		st := in.Stats()
		if st.Errors != 3 {
			t.Fatalf("injected %d 502s, want the scripted 3", st.Errors)
		}
		if st.Truncations != 1 {
			t.Fatalf("injected %d truncations, want exactly 1", st.Truncations)
		}
		// Every injected fault cost exactly one extra attempt.
		if got, want := attempts-fetches, 4; got != want {
			t.Fatalf("%d retries, want %d (3 errors + 1 truncation)", got, want)
		}
	}()

	// No goroutine leaks: everything the session spawned must wind down.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d -> %d after session teardown", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

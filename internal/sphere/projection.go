package sphere

import (
	"fmt"
	"math"
)

// Projection maps between viewing directions and normalized 2-D texture
// coordinates (u, v in [0,1]). Sperke's tiling substrate partitions the
// projected plane, so which projection a video uses determines which
// directions each tile covers. The paper calls out two deployed schemes:
// equirectangular (YouTube) and cube map (Facebook) (§2).
type Projection interface {
	// Name identifies the projection in MPDs and logs.
	Name() string
	// Forward maps a direction to texture coordinates.
	Forward(o Orientation) (u, v float64)
	// Inverse maps texture coordinates back to a direction.
	Inverse(u, v float64) Orientation
	// PixelEfficiency reports the fraction of stored pixels that carry
	// non-redundant content (1 = no oversampling). Equirectangular
	// oversamples the poles; cube map is closer to uniform.
	PixelEfficiency() float64
}

// Equirectangular is the projection used by YouTube 360 (§2): u is yaw
// mapped linearly across [0,1), v is pitch mapped linearly with v=0 at
// +90° (top).
type Equirectangular struct{}

// Name implements Projection.
func (Equirectangular) Name() string { return "equirectangular" }

// Forward implements Projection.
func (Equirectangular) Forward(o Orientation) (u, v float64) {
	o = o.Normalized()
	u = (o.Yaw + 180) / 360
	v = (90 - o.Pitch) / 180
	if u >= 1 {
		u -= 1
	}
	return u, v
}

// Inverse implements Projection.
func (Equirectangular) Inverse(u, v float64) Orientation {
	return Orientation{
		Yaw:   NormalizeYaw(u*360 - 180),
		Pitch: 90 - v*180,
	}.Normalized()
}

// PixelEfficiency implements Projection. An equirectangular frame
// stores each latitude band at full width although the band's true
// circumference shrinks as cos(pitch); the useful fraction is
// ∫cos/∫1 = 2/π.
func (Equirectangular) PixelEfficiency() float64 { return 2 / math.Pi }

// CubeFace identifies one of the six cube-map faces.
type CubeFace int

// Cube faces in Facebook layout order.
const (
	FaceFront CubeFace = iota
	FaceBack
	FaceLeft
	FaceRight
	FaceTop
	FaceBottom
)

var faceNames = [...]string{"front", "back", "left", "right", "top", "bottom"}

func (f CubeFace) String() string {
	if f < 0 || int(f) >= len(faceNames) {
		return fmt.Sprintf("face(%d)", int(f))
	}
	return faceNames[f]
}

// CubeMap is the projection employed by Facebook 360 (§2): the sphere is
// mapped onto six square faces laid out in a 3×2 atlas
// (front|back|left on the top row, right|top|bottom on the bottom row).
type CubeMap struct{}

// Name implements Projection.
func (CubeMap) Name() string { return "cubemap" }

// faceOf returns the dominant axis face for a direction and the in-face
// coordinates in [-1,1].
func faceOf(d Vec3) (CubeFace, float64, float64) {
	ax, ay, az := math.Abs(d.X), math.Abs(d.Y), math.Abs(d.Z)
	switch {
	case az >= ax && az >= ay:
		if d.Z > 0 {
			return FaceFront, d.X / az, d.Y / az
		}
		return FaceBack, -d.X / az, d.Y / az
	case ax >= ay:
		if d.X > 0 {
			return FaceRight, -d.Z / ax, d.Y / ax
		}
		return FaceLeft, d.Z / ax, d.Y / ax
	default:
		if d.Y > 0 {
			return FaceTop, d.X / ay, -d.Z / ay
		}
		return FaceBottom, d.X / ay, d.Z / ay
	}
}

// faceDirection inverts faceOf for in-face coordinates a,b in [-1,1].
func faceDirection(f CubeFace, a, b float64) Vec3 {
	switch f {
	case FaceFront:
		return Vec3{X: a, Y: b, Z: 1}
	case FaceBack:
		return Vec3{X: -a, Y: b, Z: -1}
	case FaceRight:
		return Vec3{X: 1, Y: b, Z: -a}
	case FaceLeft:
		return Vec3{X: -1, Y: b, Z: a}
	case FaceTop:
		return Vec3{X: a, Y: 1, Z: -b}
	default: // FaceBottom
		return Vec3{X: a, Y: -1, Z: b}
	}
}

// atlas positions: column, row for each face in the 3×2 layout.
var atlasPos = [6][2]int{
	FaceFront:  {0, 0},
	FaceBack:   {1, 0},
	FaceLeft:   {2, 0},
	FaceRight:  {0, 1},
	FaceTop:    {1, 1},
	FaceBottom: {2, 1},
}

// Forward implements Projection.
func (CubeMap) Forward(o Orientation) (u, v float64) {
	f, a, b := faceOf(o.Direction())
	// Map in-face [-1,1] to the face's atlas cell.
	fu := (a + 1) / 2
	fv := (1 - b) / 2 // texture v grows downward
	col, row := atlasPos[f][0], atlasPos[f][1]
	u = (float64(col) + fu) / 3
	v = (float64(row) + fv) / 2
	return clamp(u, 0, nextBelow(1)), clamp(v, 0, nextBelow(1))
}

func nextBelow(x float64) float64 { return math.Nextafter(x, 0) }

// Inverse implements Projection.
func (CubeMap) Inverse(u, v float64) Orientation {
	col := int(u * 3)
	row := int(v * 2)
	if col > 2 {
		col = 2
	}
	if row > 1 {
		row = 1
	}
	var face CubeFace
	for f, pos := range atlasPos {
		if pos[0] == col && pos[1] == row {
			face = CubeFace(f)
			break
		}
	}
	fu := u*3 - float64(col)
	fv := v*2 - float64(row)
	a := fu*2 - 1
	b := 1 - fv*2
	return FromDirection(faceDirection(face, a, b))
}

// PixelEfficiency implements Projection. A cube face oversamples its
// corners relative to its center; the useful fraction is π/6 per face
// area ratio ≈ 0.524/0.667 — conventionally quoted as ≈ 0.79 overall.
func (CubeMap) PixelEfficiency() float64 { return math.Pi / 4 }

// Package sphere implements the spherical geometry that underpins
// FoV-guided 360° streaming: viewing orientations (yaw/pitch/roll, Fig. 1
// of the paper), field-of-view frusta, great-circle distances, and the
// projections used by commercial platforms — equirectangular (YouTube)
// and cube map (Facebook).
//
// All angles are in degrees at the API boundary (matching how headsets
// and the paper report them) and converted to radians internally.
package sphere

import (
	"fmt"
	"math"
)

// Orientation is a viewing direction: yaw (rotation about the vertical
// axis, positive to the right), pitch (elevation, positive up) and roll
// (rotation about the view axis). Yaw is normalized to [-180, 180);
// pitch is clamped to [-90, 90].
type Orientation struct {
	Yaw, Pitch, Roll float64
}

// NormalizeYaw maps any yaw angle into [-180, 180).
func NormalizeYaw(yaw float64) float64 {
	y := math.Mod(yaw+180, 360)
	if y < 0 {
		y += 360
	}
	return y - 180
}

// Normalized returns the orientation with yaw wrapped into [-180, 180)
// and pitch clamped to [-90, 90].
func (o Orientation) Normalized() Orientation {
	p := o.Pitch
	if p > 90 {
		p = 90
	}
	if p < -90 {
		p = -90
	}
	return Orientation{Yaw: NormalizeYaw(o.Yaw), Pitch: p, Roll: NormalizeYaw(o.Roll)}
}

func (o Orientation) String() string {
	return fmt.Sprintf("(yaw %.1f°, pitch %.1f°, roll %.1f°)", o.Yaw, o.Pitch, o.Roll)
}

// Vec3 is a direction in the right-handed world frame: +Z forward
// (yaw 0, pitch 0), +X right, +Y up.
type Vec3 struct {
	X, Y, Z float64
}

// Dot returns the scalar product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm returns the Euclidean length.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Direction converts the orientation's view axis into a unit vector.
// Roll does not affect the axis.
func (o Orientation) Direction() Vec3 {
	yaw := o.Yaw * math.Pi / 180
	pitch := o.Pitch * math.Pi / 180
	return Vec3{
		X: math.Cos(pitch) * math.Sin(yaw),
		Y: math.Sin(pitch),
		Z: math.Cos(pitch) * math.Cos(yaw),
	}
}

// FromDirection converts a (not necessarily unit) direction vector back
// to an orientation with zero roll. The zero vector maps to the zero
// orientation.
func FromDirection(v Vec3) Orientation {
	n := v.Norm()
	if n == 0 {
		return Orientation{}
	}
	pitch := math.Asin(clamp(v.Y/n, -1, 1)) * 180 / math.Pi
	yaw := math.Atan2(v.X, v.Z) * 180 / math.Pi
	return Orientation{Yaw: yaw, Pitch: pitch}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AngularDistance returns the great-circle angle in degrees between the
// view axes of a and b. This is the |X - X'| prediction-error metric of
// §3.1.1.
func AngularDistance(a, b Orientation) float64 {
	d := clamp(a.Direction().Dot(b.Direction()), -1, 1)
	return math.Acos(d) * 180 / math.Pi
}

// FoV is the field of view of a headset or on-screen viewport, in
// degrees. The paper notes width and height are fixed parameters of the
// device (§2); DefaultFoV matches a Cardboard-class headset.
type FoV struct {
	Width, Height float64
}

// DefaultFoV is a typical mobile-VR viewport (100° × 90°).
var DefaultFoV = FoV{Width: 100, Height: 90}

// SolidAngleSr returns the solid angle of the FoV frustum in steradians,
// computed exactly for a rectangular frustum:
//
//	Ω = 4·asin( sin(w/2)·sin(h/2) )
func (f FoV) SolidAngleSr() float64 {
	w := f.Width * math.Pi / 360  // half-width in radians
	h := f.Height * math.Pi / 360 // half-height in radians
	return 4 * math.Asin(math.Sin(w)*math.Sin(h))
}

// SphereFraction returns the fraction of the full sphere the FoV covers.
// For the default 100°×90° FoV this is ≈ 0.20, which is where the
// paper's "360° videos are around 5× larger than conventional videos
// under the same perceived quality" claim comes from (§1).
func (f FoV) SphereFraction() float64 { return f.SolidAngleSr() / (4 * math.Pi) }

// Contains reports whether the direction target falls inside the FoV
// frustum when looking along view. The target is transformed into the
// viewer's frame (undoing yaw, pitch, then roll) and tested against the
// angular half-extents.
func Contains(view Orientation, fov FoV, target Orientation) bool {
	hx, hy := angleInView(view, target)
	return math.Abs(hx) <= fov.Width/2 && math.Abs(hy) <= fov.Height/2
}

// angleInView returns the horizontal and vertical view-space angles (in
// degrees) of target as seen from view.
func angleInView(view, target Orientation) (hx, hy float64) {
	v := target.Direction()
	// Undo yaw: rotate about Y by -yaw.
	yaw := -view.Yaw * math.Pi / 180
	v = Vec3{
		X: v.X*math.Cos(yaw) + v.Z*math.Sin(yaw),
		Y: v.Y,
		Z: -v.X*math.Sin(yaw) + v.Z*math.Cos(yaw),
	}
	// Undo pitch. The forward pitch rotation maps (0,0,1) to
	// (0, sin p, cos p); its inverse is Y' = Y·cos p − Z·sin p,
	// Z' = Y·sin p + Z·cos p.
	pitch := view.Pitch * math.Pi / 180
	v = Vec3{
		X: v.X,
		Y: v.Y*math.Cos(pitch) - v.Z*math.Sin(pitch),
		Z: v.Y*math.Sin(pitch) + v.Z*math.Cos(pitch),
	}
	// Undo roll: rotate about Z by -roll.
	roll := -view.Roll * math.Pi / 180
	v = Vec3{
		X: v.X*math.Cos(roll) - v.Y*math.Sin(roll),
		Y: v.X*math.Sin(roll) + v.Y*math.Cos(roll),
		Z: v.Z,
	}
	hx = math.Atan2(v.X, v.Z) * 180 / math.Pi
	hy = math.Atan2(v.Y, math.Hypot(v.X, v.Z)) * 180 / math.Pi
	return hx, hy
}

// Lerp interpolates between two orientations along the shortest yaw arc;
// t=0 gives a, t=1 gives b. Used by head-movement trace generation and
// by predictors that extrapolate.
func Lerp(a, b Orientation, t float64) Orientation {
	dy := NormalizeYaw(b.Yaw - a.Yaw)
	return Orientation{
		Yaw:   NormalizeYaw(a.Yaw + dy*t),
		Pitch: a.Pitch + (b.Pitch-a.Pitch)*t,
		Roll:  NormalizeYaw(a.Roll + NormalizeYaw(b.Roll-a.Roll)*t),
	}.Normalized()
}

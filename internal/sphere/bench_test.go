package sphere

import "testing"

func BenchmarkEquirectForward(b *testing.B) {
	var p Equirectangular
	o := Orientation{Yaw: 37, Pitch: -12}
	for i := 0; i < b.N; i++ {
		p.Forward(o)
	}
}

func BenchmarkCubeMapForward(b *testing.B) {
	var p CubeMap
	o := Orientation{Yaw: 37, Pitch: -12}
	for i := 0; i < b.N; i++ {
		p.Forward(o)
	}
}

func BenchmarkContains(b *testing.B) {
	view := Orientation{Yaw: 30, Pitch: 10, Roll: 5}
	target := Orientation{Yaw: 55, Pitch: -3}
	for i := 0; i < b.N; i++ {
		Contains(view, DefaultFoV, target)
	}
}

func BenchmarkAngularDistance(b *testing.B) {
	x := Orientation{Yaw: 170, Pitch: 40}
	y := Orientation{Yaw: -120, Pitch: -10}
	for i := 0; i < b.N; i++ {
		AngularDistance(x, y)
	}
}

package sphere

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEquirectKnownPoints(t *testing.T) {
	var p Equirectangular
	u, v := p.Forward(Orientation{}) // looking forward
	if !almostEqual(u, 0.5, 1e-9) || !almostEqual(v, 0.5, 1e-9) {
		t.Fatalf("Forward(0,0) = (%v,%v), want (0.5,0.5)", u, v)
	}
	u, v = p.Forward(Orientation{Pitch: 90})
	if !almostEqual(v, 0, 1e-9) {
		t.Fatalf("top of sphere v = %v, want 0", v)
	}
	u, v = p.Forward(Orientation{Yaw: -180})
	if !almostEqual(u, 0, 1e-9) {
		t.Fatalf("yaw -180 u = %v, want 0", u)
	}
}

func TestEquirectRoundTrip(t *testing.T) {
	var p Equirectangular
	f := func(yaw, pitch float64) bool {
		o := Orientation{Yaw: math.Mod(yaw, 179.9), Pitch: math.Mod(pitch, 89.9)}.Normalized()
		u, v := p.Forward(o)
		if u < 0 || u >= 1 || v < 0 || v > 1 {
			return false
		}
		back := p.Inverse(u, v)
		return AngularDistance(o, back) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEquirectInverseCoversUnitSquare(t *testing.T) {
	var p Equirectangular
	for _, uv := range [][2]float64{{0, 0}, {0.999, 0.999}, {0.25, 0.75}, {0.5, 0.5}} {
		o := p.Inverse(uv[0], uv[1])
		if o.Pitch < -90 || o.Pitch > 90 || o.Yaw < -180 || o.Yaw >= 180+1e-9 {
			t.Fatalf("Inverse(%v) = %v out of range", uv, o)
		}
	}
}

func TestCubeMapRoundTrip(t *testing.T) {
	var p CubeMap
	f := func(yaw, pitch float64) bool {
		o := Orientation{Yaw: math.Mod(yaw, 179.9), Pitch: math.Mod(pitch, 89.9)}.Normalized()
		u, v := p.Forward(o)
		if u < 0 || u >= 1 || v < 0 || v >= 1 {
			return false
		}
		back := p.Inverse(u, v)
		return AngularDistance(o, back) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCubeMapFaceAssignment(t *testing.T) {
	cases := []struct {
		o    Orientation
		want CubeFace
	}{
		{Orientation{}, FaceFront},
		{Orientation{Yaw: -180}, FaceBack},
		{Orientation{Yaw: 90}, FaceRight},
		{Orientation{Yaw: -90}, FaceLeft},
		{Orientation{Pitch: 90}, FaceTop},
		{Orientation{Pitch: -90}, FaceBottom},
	}
	for _, c := range cases {
		f, _, _ := faceOf(c.o.Direction())
		if f != c.want {
			t.Errorf("faceOf(%v) = %v, want %v", c.o, f, c.want)
		}
	}
}

func TestCubeFaceString(t *testing.T) {
	if FaceTop.String() != "top" {
		t.Fatalf("FaceTop = %q", FaceTop.String())
	}
	if CubeFace(99).String() != "face(99)" {
		t.Fatalf("unknown face = %q", CubeFace(99).String())
	}
}

func TestPixelEfficiencyOrdering(t *testing.T) {
	// Cube map wastes fewer pixels than equirectangular — one of the
	// reasons Facebook adopted it (§2 refs [10]).
	eq := Equirectangular{}.PixelEfficiency()
	cm := CubeMap{}.PixelEfficiency()
	if !(eq > 0 && eq < 1 && cm > 0 && cm < 1) {
		t.Fatalf("efficiencies out of (0,1): eq=%v cm=%v", eq, cm)
	}
	if cm <= eq {
		t.Fatalf("cubemap efficiency %v should exceed equirect %v", cm, eq)
	}
}

func TestProjectionsImplementInterface(t *testing.T) {
	for _, p := range []Projection{Equirectangular{}, CubeMap{}} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
		u, v := p.Forward(Orientation{Yaw: 12, Pitch: 34})
		o := p.Inverse(u, v)
		if AngularDistance(o, Orientation{Yaw: 12, Pitch: 34}) > 1e-4 {
			t.Fatalf("%s round trip failed", p.Name())
		}
	}
}

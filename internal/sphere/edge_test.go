package sphere

import (
	"math"
	"testing"
)

// The unitsafety checker (internal/vet) guards the degree/radian
// boundary statically; these tests back it with runtime evidence at the
// singular points of the sphere — the poles (Pitch ±90), the
// antimeridian (Yaw ±180), and the acos clamp in AngularDistance.

func TestPoleRoundTrip(t *testing.T) {
	for _, pitch := range []float64{90, -90} {
		for _, yaw := range []float64{0, 45, -135, 179.5} {
			o := Orientation{Yaw: yaw, Pitch: pitch}
			back := FromDirection(o.Direction())
			// At a pole the view axis is vertical: yaw is degenerate, but
			// the recovered direction must coincide.
			if d := AngularDistance(o, back); !almostEqual(d, 0, 1e-6) {
				t.Errorf("pole round-trip %v -> %v drifted %v°", o, back, d)
			}
			if !almostEqual(back.Pitch, pitch, 1e-9) {
				t.Errorf("pole round-trip %v lost pitch: got %v", o, back.Pitch)
			}
		}
	}
}

func TestAntimeridianRoundTrip(t *testing.T) {
	for _, yaw := range []float64{180, -180, 179.999, -179.999} {
		for _, pitch := range []float64{0, 30, -60, 89} {
			o := Orientation{Yaw: yaw, Pitch: pitch}
			back := FromDirection(o.Direction())
			if d := AngularDistance(o, back); !almostEqual(d, 0, 1e-6) {
				t.Errorf("antimeridian round-trip %v -> %v drifted %v°", o, back, d)
			}
		}
	}
	// Yaw +180 and -180 are the same meridian.
	if d := AngularDistance(Orientation{Yaw: 180}, Orientation{Yaw: -180}); !almostEqual(d, 0, 1e-9) {
		t.Errorf("yaw +180 vs -180 distance = %v, want 0", d)
	}
	if got := NormalizeYaw(180); got != -180 {
		t.Errorf("NormalizeYaw(180) = %v, want -180 (half-open [-180,180))", got)
	}
}

func TestAngularDistanceEdgeCases(t *testing.T) {
	// Identical axes: the dot product can exceed 1 by rounding; the
	// clamp must keep Acos out of NaN territory.
	for _, o := range []Orientation{
		{},
		{Yaw: 180},
		{Pitch: 90},
		{Pitch: -90},
		{Yaw: -179.999, Pitch: 89.999},
	} {
		d := AngularDistance(o, o)
		if math.IsNaN(d) {
			t.Fatalf("AngularDistance(%v, self) = NaN: acos clamp failed", o)
		}
		if !almostEqual(d, 0, 1e-6) {
			t.Errorf("AngularDistance(%v, self) = %v, want 0", o, d)
		}
	}
	// Antipodal pairs are exactly 180° apart.
	pairs := [][2]Orientation{
		{{Yaw: 0}, {Yaw: 180}},
		{{Pitch: 90}, {Pitch: -90}},
		{{Yaw: 90, Pitch: 0}, {Yaw: -90, Pitch: 0}},
	}
	for _, p := range pairs {
		d := AngularDistance(p[0], p[1])
		if math.IsNaN(d) || !almostEqual(d, 180, 1e-6) {
			t.Errorf("AngularDistance(%v, %v) = %v, want 180", p[0], p[1], d)
		}
	}
}

func TestNormalizedClampBehavior(t *testing.T) {
	cases := []struct {
		in        Orientation
		wantPitch float64
	}{
		{Orientation{Pitch: 90.0000001}, 90},
		{Orientation{Pitch: -90.0000001}, -90},
		{Orientation{Pitch: 540}, 90},
		{Orientation{Pitch: -540}, -90},
	}
	for _, c := range cases {
		got := c.in.Normalized()
		if got.Pitch != c.wantPitch {
			t.Errorf("Normalized(%v).Pitch = %v, want %v", c.in, got.Pitch, c.wantPitch)
		}
		// A clamped orientation must survive a projection round-trip
		// without NaN.
		back := FromDirection(got.Direction())
		if math.IsNaN(back.Yaw) || math.IsNaN(back.Pitch) {
			t.Errorf("round-trip of clamped %v produced NaN: %v", c.in, back)
		}
	}
}

func TestFromDirectionDegenerate(t *testing.T) {
	if got := FromDirection(Vec3{}); got != (Orientation{}) {
		t.Errorf("FromDirection(zero) = %v, want zero orientation", got)
	}
	// Nearly-vertical vectors exercise the asin clamp.
	for _, v := range []Vec3{{X: 1e-300, Y: 1, Z: 1e-300}, {X: 0, Y: -1, Z: 0}} {
		got := FromDirection(v)
		if math.IsNaN(got.Pitch) || math.IsNaN(got.Yaw) {
			t.Errorf("FromDirection(%+v) produced NaN: %v", v, got)
		}
	}
}

func TestLerpShortestArcAcrossAntimeridian(t *testing.T) {
	a := Orientation{Yaw: 170}
	b := Orientation{Yaw: -170}
	mid := Lerp(a, b, 0.5)
	// The short way crosses the antimeridian: midpoint is ±180, never 0.
	if !almostEqual(math.Abs(mid.Yaw), 180, 1e-9) {
		t.Errorf("Lerp(170, -170, 0.5).Yaw = %v, want ±180", mid.Yaw)
	}
	// Endpoints reproduce (modulo normalization).
	if d := AngularDistance(Lerp(a, b, 0), a); !almostEqual(d, 0, 1e-9) {
		t.Errorf("Lerp t=0 drifted %v°", d)
	}
	if d := AngularDistance(Lerp(a, b, 1), b); !almostEqual(d, 0, 1e-9) {
		t.Errorf("Lerp t=1 drifted %v°", d)
	}
}

func TestContainsAtPole(t *testing.T) {
	view := Orientation{Pitch: 90}
	fov := DefaultFoV
	// A target a few degrees off the pole must be visible regardless of
	// its (degenerate) yaw.
	for _, yaw := range []float64{0, 90, -180} {
		target := Orientation{Yaw: yaw, Pitch: 87}
		if !Contains(view, fov, target) {
			t.Errorf("pole view misses nearby target %v", target)
		}
	}
	// The opposite pole is never visible.
	if Contains(view, fov, Orientation{Pitch: -90}) {
		t.Error("pole view claims to see the antipode")
	}
}

package sphere

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalizeYaw(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170},
		{360, 0}, {720, 0}, {-360, 0}, {540, -180}, {90, 90},
	}
	for _, c := range cases {
		if got := NormalizeYaw(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalizeYaw(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizedClampsPitch(t *testing.T) {
	o := Orientation{Yaw: 10, Pitch: 120}.Normalized()
	if o.Pitch != 90 {
		t.Fatalf("pitch = %v, want 90", o.Pitch)
	}
	o = Orientation{Pitch: -95}.Normalized()
	if o.Pitch != -90 {
		t.Fatalf("pitch = %v, want -90", o.Pitch)
	}
}

func TestDirectionCardinal(t *testing.T) {
	cases := []struct {
		o    Orientation
		want Vec3
	}{
		{Orientation{}, Vec3{0, 0, 1}},
		{Orientation{Yaw: 90}, Vec3{1, 0, 0}},
		{Orientation{Yaw: -90}, Vec3{-1, 0, 0}},
		{Orientation{Yaw: -180}, Vec3{0, 0, -1}},
		{Orientation{Pitch: 90}, Vec3{0, 1, 0}},
		{Orientation{Pitch: -90}, Vec3{0, -1, 0}},
	}
	for _, c := range cases {
		got := c.o.Direction()
		if !almostEqual(got.X, c.want.X, 1e-12) || !almostEqual(got.Y, c.want.Y, 1e-12) || !almostEqual(got.Z, c.want.Z, 1e-12) {
			t.Errorf("Direction(%v) = %+v, want %+v", c.o, got, c.want)
		}
	}
}

func TestDirectionRoundTrip(t *testing.T) {
	f := func(yaw, pitch float64) bool {
		o := Orientation{Yaw: math.Mod(yaw, 180), Pitch: math.Mod(pitch, 89)}.Normalized()
		back := FromDirection(o.Direction())
		return almostEqual(AngularDistance(o, back), 0, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromDirectionZero(t *testing.T) {
	if got := FromDirection(Vec3{}); got != (Orientation{}) {
		t.Fatalf("FromDirection(0) = %v, want zero", got)
	}
}

func TestAngularDistance(t *testing.T) {
	cases := []struct {
		a, b Orientation
		want float64
	}{
		{Orientation{}, Orientation{}, 0},
		{Orientation{}, Orientation{Yaw: 90}, 90},
		{Orientation{}, Orientation{Yaw: -180}, 180},
		{Orientation{}, Orientation{Pitch: 45}, 45},
		{Orientation{Yaw: 170}, Orientation{Yaw: -170}, 20},
	}
	for _, c := range cases {
		if got := AngularDistance(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AngularDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngularDistanceSymmetric(t *testing.T) {
	f := func(y1, p1, y2, p2 float64) bool {
		a := Orientation{Yaw: math.Mod(y1, 360), Pitch: math.Mod(p1, 90)}.Normalized()
		b := Orientation{Yaw: math.Mod(y2, 360), Pitch: math.Mod(p2, 90)}.Normalized()
		return almostEqual(AngularDistance(a, b), AngularDistance(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsCenterAndEdges(t *testing.T) {
	view := Orientation{Yaw: 30}
	fov := FoV{Width: 100, Height: 90}
	if !Contains(view, fov, view) {
		t.Fatal("view center not contained")
	}
	// Just inside the horizontal edge (view pitch 0 keeps the yaw arc on
	// the frustum's horizontal axis).
	if !Contains(view, fov, Orientation{Yaw: 30 + 49}) {
		t.Fatal("point just inside right edge not contained")
	}
	// Just outside.
	if Contains(view, fov, Orientation{Yaw: 30 + 51}) {
		t.Fatal("point outside right edge contained")
	}
	// Behind the viewer.
	if Contains(view, fov, Orientation{Yaw: -150}) {
		t.Fatal("point behind viewer contained")
	}
	// Vertical edges.
	if !Contains(view, fov, Orientation{Yaw: 30, Pitch: 44}) {
		t.Fatal("point just inside top edge not contained")
	}
	if Contains(view, fov, Orientation{Yaw: 30, Pitch: 46}) {
		t.Fatal("point outside top edge contained")
	}
}

func TestContainsYawWraparound(t *testing.T) {
	view := Orientation{Yaw: 175}
	fov := FoV{Width: 100, Height: 90}
	if !Contains(view, fov, Orientation{Yaw: -175}) {
		t.Fatal("wraparound target not contained")
	}
}

func TestContainsWithRoll(t *testing.T) {
	// A narrow-but-tall FoV rolled 90° becomes wide-but-short.
	view := Orientation{Roll: 90}
	fov := FoV{Width: 20, Height: 120}
	// 40° to the right: outside unrolled width 20 but inside the rolled
	// frustum (the rolled horizontal extent is the 120° height).
	if !Contains(view, fov, Orientation{Yaw: 40}) {
		t.Fatal("rolled frustum did not widen horizontally")
	}
	if Contains(view, fov, Orientation{Pitch: 40}) {
		t.Fatal("rolled frustum did not shrink vertically")
	}
}

func TestSphereFractionDefaultNearFifth(t *testing.T) {
	frac := DefaultFoV.SphereFraction()
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("default FoV covers %.3f of sphere, want ≈0.2", frac)
	}
	// The §1 size claim: full sphere is ≈5× the FoV area.
	ratio := 1 / frac
	if ratio < 4 || ratio > 7 {
		t.Fatalf("sphere/FoV ratio = %.2f, want in [4,7]", ratio)
	}
}

func TestSolidAngleFullSphereLimit(t *testing.T) {
	full := FoV{Width: 180, Height: 180}.SolidAngleSr()
	if !almostEqual(full, 2*math.Pi, 1e-9) {
		// A 180×180 frustum is a hemisphere-like wedge: Ω = 4·asin(1·1) = 2π.
		t.Fatalf("Ω(180,180) = %v, want 2π", full)
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	a := Orientation{Yaw: 170, Pitch: 10}
	b := Orientation{Yaw: -170, Pitch: 20}
	if got := Lerp(a, b, 0); AngularDistance(got, a) > 1e-9 {
		t.Fatalf("Lerp t=0 = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); AngularDistance(got, b) > 1e-9 {
		t.Fatalf("Lerp t=1 = %v, want %v", got, b)
	}
	mid := Lerp(a, b, 0.5)
	if !almostEqual(mid.Yaw, -180, 1e-9) && !almostEqual(mid.Yaw, 180, 1e-9) {
		t.Fatalf("Lerp midpoint yaw = %v, want ±180 (shortest arc)", mid.Yaw)
	}
	if !almostEqual(mid.Pitch, 15, 1e-9) {
		t.Fatalf("Lerp midpoint pitch = %v, want 15", mid.Pitch)
	}
}

func TestContainsYawRotationInvariant(t *testing.T) {
	// Property: rotating both view and target by the same yaw leaves
	// containment unchanged.
	f := func(viewYaw, viewPitch, tYaw, tPitch, shift float64) bool {
		v := Orientation{Yaw: math.Mod(viewYaw, 180), Pitch: math.Mod(viewPitch, 80)}.Normalized()
		tg := Orientation{Yaw: math.Mod(tYaw, 180), Pitch: math.Mod(tPitch, 80)}.Normalized()
		s := math.Mod(shift, 360)
		a := Contains(v, DefaultFoV, tg)
		v2 := Orientation{Yaw: NormalizeYaw(v.Yaw + s), Pitch: v.Pitch}
		t2 := Orientation{Yaw: NormalizeYaw(tg.Yaw + s), Pitch: tg.Pitch}
		b := Contains(v2, DefaultFoV, t2)
		// Allow disagreement only within numeric slack of the frustum
		// edge.
		if a != b {
			hx, hy := angleInView(v, tg)
			nearEdge := math.Abs(math.Abs(hx)-DefaultFoV.Width/2) < 1e-6 ||
				math.Abs(math.Abs(hy)-DefaultFoV.Height/2) < 1e-6
			return nearEdge
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

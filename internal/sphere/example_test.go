package sphere_test

import (
	"fmt"

	"sperke/internal/sphere"
)

// ExampleContains shows the basic FoV test every tiling decision builds
// on: is a direction inside the viewer's frustum?
func ExampleContains() {
	view := sphere.Orientation{Yaw: 30, Pitch: 0}
	fov := sphere.DefaultFoV // 100° × 90°

	fmt.Println(sphere.Contains(view, fov, sphere.Orientation{Yaw: 60}))
	fmt.Println(sphere.Contains(view, fov, sphere.Orientation{Yaw: -150}))
	// Output:
	// true
	// false
}

// ExampleFoV_SphereFraction derives the paper's §1 size claim: a 360°
// video carries the whole sphere while a conventional one carries only
// the FoV — about a 5× ratio.
func ExampleFoV_SphereFraction() {
	frac := sphere.DefaultFoV.SphereFraction()
	fmt.Printf("FoV covers %.0f%% of the sphere → 360° is %.1fx larger\n",
		frac*100, 1/frac)
	// Output:
	// FoV covers 18% of the sphere → 360° is 5.5x larger
}

// ExampleEquirectangular round-trips a viewing direction through the
// projection YouTube uses.
func ExampleEquirectangular() {
	var p sphere.Equirectangular
	u, v := p.Forward(sphere.Orientation{Yaw: 90, Pitch: 45})
	back := p.Inverse(u, v)
	fmt.Printf("u=%.3f v=%.3f → %v\n", u, v, back)
	// Output:
	// u=0.750 v=0.250 → (yaw 90.0°, pitch 45.0°, roll 0.0°)
}

package player

import (
	"container/heap"
	"time"

	"sperke/internal/codec"
	"sperke/internal/obs"
	"sperke/internal/sim"
)

// DecodeJob is one tile chunk awaiting decode.
type DecodeJob struct {
	Key    FrameCacheKey
	Pixels int64
	// PlayAt is the wall time the decoded tile must be in the frame
	// cache.
	PlayAt time.Duration
	// InFoV marks tiles the HMP expects in view — they outrank OOS
	// tiles with equal deadlines.
	InFoV bool
	// OnDecoded, if set, fires when the tile lands in the cache.
	OnDecoded func(missedDeadline bool)

	seq int
}

// less orders jobs by §3.5's decoding-scheduler policy: earliest
// playback time first; FoV before OOS on ties; then submission order.
func (j *DecodeJob) less(o *DecodeJob) bool {
	if j.PlayAt != o.PlayAt {
		return j.PlayAt < o.PlayAt
	}
	if j.InFoV != o.InFoV {
		return j.InFoV
	}
	return j.seq < o.seq
}

type jobHeap []*DecodeJob

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(*DecodeJob)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// DecodeScheduler is the "decoding scheduler" box of Fig. 4: it holds
// decode jobs in a deadline/HMP priority queue and feeds the hardware
// decoder pool, keeping at most one job per decoder outstanding so a
// newly urgent tile can overtake queued distant ones. Decoded tiles
// land in the frame cache.
type DecodeScheduler struct {
	clock *sim.Clock
	pool  *codec.Pool
	cache *FrameCache

	queue       jobHeap
	seq         int
	outstanding int

	decoded, missed int
	met             decodeMetrics
}

// decodeMetrics caches the instruments SetObs wires; nil fields no-op.
type decodeMetrics struct {
	hits    *obs.Counter
	misses  *obs.Counter
	pending *obs.Gauge
}

// NewDecodeScheduler wires the scheduler to a pool and cache.
func NewDecodeScheduler(clock *sim.Clock, pool *codec.Pool, cache *FrameCache) *DecodeScheduler {
	return &DecodeScheduler{clock: clock, pool: pool, cache: cache}
}

// SetObs wires the scheduler into a metrics registry: decode-deadline
// hit/miss counters and a pending-jobs gauge (player.decode.*). Nil
// disables metrics.
func (s *DecodeScheduler) SetObs(r *obs.Registry) {
	s.met = decodeMetrics{
		hits:    r.Counter("player.decode.deadline_hits"),
		misses:  r.Counter("player.decode.deadline_misses"),
		pending: r.Gauge("player.decode.pending"),
	}
}

// Submit enqueues a decode job.
func (s *DecodeScheduler) Submit(job DecodeJob) {
	j := job
	j.seq = s.seq
	s.seq++
	heap.Push(&s.queue, &j)
	s.pump()
}

func (s *DecodeScheduler) pump() {
	for s.outstanding < s.pool.Size() && len(s.queue) > 0 {
		j := heap.Pop(&s.queue).(*DecodeJob)
		s.outstanding++
		s.pool.Submit(j.Pixels, func() {
			s.outstanding--
			s.decoded++
			missed := s.clock.Now() > j.PlayAt
			if missed {
				s.missed++
				s.met.misses.Inc()
			} else {
				s.met.hits.Inc()
			}
			if s.cache != nil {
				s.cache.Put(j.Key)
			}
			if j.OnDecoded != nil {
				j.OnDecoded(missed)
			}
			s.pump()
		})
	}
	s.met.pending.Set(int64(len(s.queue)))
}

// Pending returns queued (not yet decoding) jobs.
func (s *DecodeScheduler) Pending() int { return len(s.queue) }

// Decoded and Missed report completed jobs and those finished after
// their playback time.
func (s *DecodeScheduler) Decoded() int { return s.decoded }
func (s *DecodeScheduler) Missed() int  { return s.missed }

package player

import (
	"testing"
	"time"

	"sperke/internal/codec"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
)

func fig5(t *testing.T, config int) PipelineConfig {
	t.Helper()
	cfg, err := Figure5Config(codec.SGS7, config)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func simFPS(t *testing.T, cfg PipelineConfig) float64 {
	t.Helper()
	res, err := SimulateFPS(cfg, nil, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res.FPS
}

func TestFigure5Shape(t *testing.T) {
	// The paper's headline numbers: 11 → 53 → 120 FPS (§3.5). The model
	// must land near them and strictly in that order.
	f1 := simFPS(t, fig5(t, 1))
	f2 := simFPS(t, fig5(t, 2))
	f3 := simFPS(t, fig5(t, 3))
	if !(f1 < f2 && f2 < f3) {
		t.Fatalf("FPS ordering broken: %.1f, %.1f, %.1f", f1, f2, f3)
	}
	if f1 < 8 || f1 > 15 {
		t.Fatalf("config 1 FPS %.1f, want ≈11", f1)
	}
	if f2 < 45 || f2 > 62 {
		t.Fatalf("config 2 FPS %.1f, want ≈53", f2)
	}
	if f3 < 100 || f3 > 125 {
		t.Fatalf("config 3 FPS %.1f, want ≈120", f3)
	}
}

func TestFigure5InvalidConfig(t *testing.T) {
	if _, err := Figure5Config(codec.SGS7, 0); err == nil {
		t.Fatal("config 0 accepted")
	}
	if _, err := Figure5Config(codec.SGS7, 4); err == nil {
		t.Fatal("config 4 accepted")
	}
}

func TestDisplayCapsFPS(t *testing.T) {
	cfg := fig5(t, 3)
	res, err := SimulateFPS(cfg, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.FPS > cfg.Device.MaxDisplayFPS+0.5 {
		t.Fatalf("FPS %.1f exceeds display cap %.0f", res.FPS, cfg.Device.MaxDisplayFPS)
	}
}

func TestMoreDecodersNeverSlower(t *testing.T) {
	// Ablation A3 shape: FPS is nondecreasing in pool size and saturates
	// once decode stops being the bottleneck.
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := fig5(t, 2)
		cfg.Decoders = n
		fps := simFPS(t, cfg)
		if fps+0.01 < prev {
			t.Fatalf("FPS dropped from %.1f to %.1f at %d decoders", prev, fps, n)
		}
		prev = fps
	}
	// 1 decoder with cache must still beat config 1 (overhead hiding).
	one := fig5(t, 2)
	one.Decoders = 1
	if simFPS(t, one) <= simFPS(t, fig5(t, 1)) {
		t.Fatal("async pipeline with 1 decoder not faster than sync")
	}
}

func TestSGS5SlowerThanSGS7(t *testing.T) {
	cfg7 := fig5(t, 2)
	cfg5, err := Figure5Config(codec.SGS5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if simFPS(t, cfg5) >= simFPS(t, cfg7) {
		t.Fatal("SGS5 not slower than SGS7")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cfg := fig5(t, 2)
	cfg.Decoders = 100 // more than the device has
	if cfg.Validate() == nil {
		t.Fatal("oversubscribed decoders accepted")
	}
	cfg = fig5(t, 2)
	cfg.FrameWidth = 0
	if cfg.Validate() == nil {
		t.Fatal("zero frame width accepted")
	}
	cfg = fig5(t, 2)
	cfg.Grid = tiling.Grid{}
	if cfg.Validate() == nil {
		t.Fatal("invalid grid accepted")
	}
	if _, err := SimulateFPS(fig5(t, 1), nil, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestFrameTimeFoVOnlyDependsOnView(t *testing.T) {
	cfg := fig5(t, 3)
	// Looking at a pole covers more tiles than looking at the equator on
	// an equirect grid; decode stage may grow, but render stays
	// FoV-sized. Just assert both compute and are positive.
	eq := cfg.FrameTime(sphere.Orientation{})
	pole := cfg.FrameTime(sphere.Orientation{Pitch: 90})
	if eq <= 0 || pole <= 0 {
		t.Fatal("non-positive frame times")
	}
}

func TestTilePixels2K(t *testing.T) {
	cfg := fig5(t, 1)
	if cfg.TilePixels() != 2560*1440/8 {
		t.Fatalf("TilePixels = %d", cfg.TilePixels())
	}
}

func TestHEVCTilesLosesToSperkePipeline(t *testing.T) {
	// §3.5: "our approach also significantly outperforms the built-in
	// 'tiles' mechanism introduced in the latest H.265 codec".
	cfg := fig5(t, 3) // Sperke FoV-only config
	sperke := simFPS(t, cfg)
	hevc, err := SimulateHEVCTilesFPS(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if hevc.FPS >= sperke {
		t.Fatalf("HEVC tiles %.0f FPS not below Sperke %.0f", hevc.FPS, sperke)
	}
	// But better than the fully serial configuration 1.
	serial := simFPS(t, fig5(t, 1))
	if hevc.FPS <= serial {
		t.Fatalf("HEVC tiles %.0f FPS not above serial %.0f", hevc.FPS, serial)
	}
}

func TestHEVCTilesValidation(t *testing.T) {
	cfg := fig5(t, 2)
	if _, err := SimulateHEVCTilesFPS(cfg, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad := cfg
	bad.FrameWidth = 0
	if _, err := SimulateHEVCTilesFPS(bad, time.Second); err == nil {
		t.Fatal("invalid config accepted")
	}
}

package player

import (
	"container/list"
	"time"

	"sperke/internal/tiling"
)

// ChunkCache is the encoded-chunk cache of Fig. 4: fetched chunks wait
// in main memory until the decoding scheduler consumes them. It evicts
// least-recently-used entries when a byte budget is exceeded.
type ChunkCache struct {
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *chunkEntry
	byID   map[tiling.ChunkID]*list.Element

	evictions int
}

type chunkEntry struct {
	id    tiling.ChunkID
	bytes int64
}

// NewChunkCache creates a cache with the given byte budget (<=0 means
// unlimited).
func NewChunkCache(budget int64) *ChunkCache {
	return &ChunkCache{
		budget: budget,
		lru:    list.New(),
		byID:   make(map[tiling.ChunkID]*list.Element),
	}
}

// Put stores (or refreshes) a chunk of the given size, evicting LRU
// entries as needed.
func (c *ChunkCache) Put(id tiling.ChunkID, bytes int64) {
	if e, ok := c.byID[id]; ok {
		ent := e.Value.(*chunkEntry)
		c.used += bytes - ent.bytes
		ent.bytes = bytes
		c.lru.MoveToFront(e)
	} else {
		c.byID[id] = c.lru.PushFront(&chunkEntry{id: id, bytes: bytes})
		c.used += bytes
	}
	if c.budget > 0 {
		for c.used > c.budget && c.lru.Len() > 1 {
			c.evictOldest()
		}
	}
}

func (c *ChunkCache) evictOldest() {
	e := c.lru.Back()
	if e == nil {
		return
	}
	ent := e.Value.(*chunkEntry)
	c.lru.Remove(e)
	delete(c.byID, ent.id)
	c.used -= ent.bytes
	c.evictions++
}

// Has reports whether the chunk is cached, refreshing its recency.
func (c *ChunkCache) Has(id tiling.ChunkID) bool {
	e, ok := c.byID[id]
	if ok {
		c.lru.MoveToFront(e)
	}
	return ok
}

// Remove drops a chunk (after it has been decoded, or superseded).
func (c *ChunkCache) Remove(id tiling.ChunkID) {
	if e, ok := c.byID[id]; ok {
		ent := e.Value.(*chunkEntry)
		c.lru.Remove(e)
		delete(c.byID, id)
		c.used -= ent.bytes
	}
}

// Used returns the cached bytes; Len the entry count; Evictions the
// number of budget evictions so far.
func (c *ChunkCache) Used() int64    { return c.used }
func (c *ChunkCache) Len() int       { return c.lru.Len() }
func (c *ChunkCache) Evictions() int { return c.evictions }

// FrameCacheKey identifies a decoded tile for one time interval at one
// quality.
type FrameCacheKey struct {
	Tile     tiling.TileID
	Interval int
	Quality  int
}

// FrameCache is the decoded-frame cache of §3.5: uncompressed tiles in
// video memory (FBOs in the prototype). Its two payoffs, which E13
// measures, are (a) decoders work asynchronously ahead of render and
// (b) when HMP was wrong, the FoV shifts by decoding only the missing
// "delta" tiles instead of the whole view.
type FrameCache struct {
	slots int
	lru   *list.List
	byKey map[FrameCacheKey]*list.Element

	hits, misses int
}

// NewFrameCache creates a cache holding up to slots decoded tiles
// (video memory is the scarce resource; each uncompressed 2K tile is
// ~1.3 MB at NV12).
func NewFrameCache(slots int) *FrameCache {
	if slots < 1 {
		slots = 1
	}
	return &FrameCache{
		slots: slots,
		lru:   list.New(),
		byKey: make(map[FrameCacheKey]*list.Element),
	}
}

// Put inserts a decoded tile, evicting the LRU tile if full.
func (f *FrameCache) Put(k FrameCacheKey) {
	if e, ok := f.byKey[k]; ok {
		f.lru.MoveToFront(e)
		return
	}
	for f.lru.Len() >= f.slots {
		e := f.lru.Back()
		delete(f.byKey, e.Value.(FrameCacheKey))
		f.lru.Remove(e)
	}
	f.byKey[k] = f.lru.PushFront(k)
}

// Has reports whether the tile is cached, counting a hit or miss and
// refreshing recency on hit.
func (f *FrameCache) Has(k FrameCacheKey) bool {
	e, ok := f.byKey[k]
	if ok {
		f.lru.MoveToFront(e)
		f.hits++
		return true
	}
	f.misses++
	return false
}

// Len returns the cached tile count.
func (f *FrameCache) Len() int { return f.lru.Len() }

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (f *FrameCache) HitRate() float64 {
	t := f.hits + f.misses
	if t == 0 {
		return 0
	}
	return float64(f.hits) / float64(t)
}

// ShiftResult describes the cost of moving the FoV after an HMP error.
type ShiftResult struct {
	// DeltaTiles are the newly visible tiles that had to come from
	// somewhere.
	DeltaTiles int
	// CacheHits of those were already decoded (fetched earlier as OOS).
	CacheHits int
	// Redecoded tiles had to be decoded synchronously before display.
	Redecoded int
	// Stall is the render hiccup the re-decodes caused.
	Stall time.Duration
}

// Shift computes the cost of changing the visible tile set from old to
// new at the given interval and quality. With the frame cache, only
// missing delta tiles are decoded; the §3.5 contrast — re-decoding the
// entire new FoV — is what you get with an empty cache.
func (f *FrameCache) Shift(cfg PipelineConfig, old, new []tiling.TileID, interval, quality int) ShiftResult {
	inOld := make(map[tiling.TileID]bool, len(old))
	for _, id := range old {
		inOld[id] = true
	}
	var res ShiftResult
	for _, id := range new {
		if inOld[id] {
			continue
		}
		res.DeltaTiles++
		if f.Has(FrameCacheKey{Tile: id, Interval: interval, Quality: quality}) {
			res.CacheHits++
			continue
		}
		res.Redecoded++
	}
	// Re-decodes block the next frame: they run synchronously because
	// the frame must display now.
	res.Stall = time.Duration(res.Redecoded) * cfg.Device.Decoder.SyncDecodeTime(cfg.TilePixels())
	return res
}

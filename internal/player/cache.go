package player

import (
	"container/list"
	"sync"
	"time"

	"sperke/internal/obs"
	"sperke/internal/tiling"
)

// ChunkCache is the encoded-chunk cache of Fig. 4: fetched chunks wait
// in main memory until the decoding scheduler consumes them. It evicts
// least-recently-used entries when a byte budget is exceeded.
//
// The cache sits between the fetch loop and the decode scheduler, which
// in real deployments run on different goroutines, so it is safe for
// concurrent use.
type ChunkCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *chunkEntry
	byID   map[tiling.ChunkID]*list.Element

	evictions int
	met       chunkCacheMetrics
}

// chunkCacheMetrics caches the instruments SetObs wires; nil fields
// no-op.
type chunkCacheMetrics struct {
	hits       *obs.Counter
	misses     *obs.Counter
	evictions  *obs.Counter
	usedBytes  *obs.Gauge
	overBudget *obs.Gauge
	entries    *obs.Gauge
}

// NewChunkCache creates a cache with the given byte budget (<=0 means
// unlimited).
func NewChunkCache(budget int64) *ChunkCache {
	return &ChunkCache{
		budget: budget,
		lru:    list.New(),
		byID:   make(map[tiling.ChunkID]*list.Element),
	}
}

// SetObs wires the cache into a metrics registry: hit/miss/eviction
// counters, used-bytes and entry-count gauges, and the over-budget
// gauge that flags the keep-one case (a single entry larger than the
// whole budget stays cached — see Put). Nil disables metrics.
func (c *ChunkCache) SetObs(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = chunkCacheMetrics{
		hits:       r.Counter("player.chunk_cache.hits"),
		misses:     r.Counter("player.chunk_cache.misses"),
		evictions:  r.Counter("player.chunk_cache.evictions"),
		usedBytes:  r.Gauge("player.chunk_cache.used_bytes"),
		overBudget: r.Gauge("player.chunk_cache.over_budget"),
		entries:    r.Gauge("player.chunk_cache.entries"),
	}
}

// syncGauges mirrors occupancy into the gauges; call with mu held.
func (c *ChunkCache) syncGauges() {
	c.met.usedBytes.Set(c.used)
	c.met.entries.Set(int64(c.lru.Len()))
	over := int64(0)
	if c.budget > 0 && c.used > c.budget {
		over = 1
	}
	c.met.overBudget.Set(over)
}

type chunkEntry struct {
	id    tiling.ChunkID
	bytes int64
}

// Put stores (or refreshes) a chunk of the given size, evicting LRU
// entries as needed. Eviction deliberately stops at one entry: a single
// chunk larger than the whole budget stays cached (evicting it buys
// nothing — the chunk is needed for playback and would only be rushed
// again), and the over-budget gauge flags the condition instead.
func (c *ChunkCache) Put(id tiling.ChunkID, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byID[id]; ok {
		ent := e.Value.(*chunkEntry)
		c.used += bytes - ent.bytes
		ent.bytes = bytes
		c.lru.MoveToFront(e)
	} else {
		c.byID[id] = c.lru.PushFront(&chunkEntry{id: id, bytes: bytes})
		c.used += bytes
	}
	if c.budget > 0 {
		for c.used > c.budget && c.lru.Len() > 1 {
			c.evictOldest()
		}
	}
	c.syncGauges()
}

// evictOldest drops the LRU entry; call with mu held.
func (c *ChunkCache) evictOldest() {
	e := c.lru.Back()
	if e == nil {
		return
	}
	ent := e.Value.(*chunkEntry)
	c.lru.Remove(e)
	delete(c.byID, ent.id)
	c.used -= ent.bytes
	c.evictions++
	c.met.evictions.Inc()
}

// Has reports whether the chunk is cached, refreshing its recency.
func (c *ChunkCache) Has(id tiling.ChunkID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byID[id]
	if ok {
		c.lru.MoveToFront(e)
		c.met.hits.Inc()
	} else {
		c.met.misses.Inc()
	}
	return ok
}

// Remove drops a chunk (after it has been decoded, or superseded).
func (c *ChunkCache) Remove(id tiling.ChunkID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byID[id]; ok {
		ent := e.Value.(*chunkEntry)
		c.lru.Remove(e)
		delete(c.byID, id)
		c.used -= ent.bytes
		c.syncGauges()
	}
}

// Used returns the cached bytes; Len the entry count; Evictions the
// number of budget evictions so far.
func (c *ChunkCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the entry count.
func (c *ChunkCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Evictions returns the number of budget evictions so far.
func (c *ChunkCache) Evictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// OverBudget reports whether the cache currently exceeds its byte
// budget — true only in the keep-one case where a single entry is
// larger than the entire budget.
func (c *ChunkCache) OverBudget() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget > 0 && c.used > c.budget
}

// FrameCacheKey identifies a decoded tile for one time interval at one
// quality.
type FrameCacheKey struct {
	Tile     tiling.TileID
	Interval int
	Quality  int
}

// FrameCache is the decoded-frame cache of §3.5: uncompressed tiles in
// video memory (FBOs in the prototype). Its two payoffs, which E13
// measures, are (a) decoders work asynchronously ahead of render and
// (b) when HMP was wrong, the FoV shifts by decoding only the missing
// "delta" tiles instead of the whole view. Safe for concurrent use:
// the decode pool fills it while the render loop probes it.
type FrameCache struct {
	mu    sync.Mutex
	slots int
	lru   *list.List
	byKey map[FrameCacheKey]*list.Element

	hits, misses int
	met          frameCacheMetrics
}

// frameCacheMetrics caches the instruments SetObs wires; nil fields
// no-op.
type frameCacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// NewFrameCache creates a cache holding up to slots decoded tiles
// (video memory is the scarce resource; each uncompressed 2K tile is
// ~1.3 MB at NV12).
func NewFrameCache(slots int) *FrameCache {
	if slots < 1 {
		slots = 1
	}
	return &FrameCache{
		slots: slots,
		lru:   list.New(),
		byKey: make(map[FrameCacheKey]*list.Element),
	}
}

// SetObs wires the cache into a metrics registry (hit/miss/eviction
// counters, player.frame_cache.*). Nil disables metrics.
func (f *FrameCache) SetObs(r *obs.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.met = frameCacheMetrics{
		hits:      r.Counter("player.frame_cache.hits"),
		misses:    r.Counter("player.frame_cache.misses"),
		evictions: r.Counter("player.frame_cache.evictions"),
	}
}

// Put inserts a decoded tile, evicting the LRU tile if full.
func (f *FrameCache) Put(k FrameCacheKey) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.byKey[k]; ok {
		f.lru.MoveToFront(e)
		return
	}
	for f.lru.Len() >= f.slots {
		e := f.lru.Back()
		delete(f.byKey, e.Value.(FrameCacheKey))
		f.lru.Remove(e)
		f.met.evictions.Inc()
	}
	f.byKey[k] = f.lru.PushFront(k)
}

// Has reports whether the tile is cached, counting a hit or miss and
// refreshing recency on hit.
func (f *FrameCache) Has(k FrameCacheKey) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.byKey[k]
	if ok {
		f.lru.MoveToFront(e)
		f.hits++
		f.met.hits.Inc()
		return true
	}
	f.misses++
	f.met.misses.Inc()
	return false
}

// Len returns the cached tile count.
func (f *FrameCache) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lru.Len()
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (f *FrameCache) HitRate() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.hits + f.misses
	if t == 0 {
		return 0
	}
	return float64(f.hits) / float64(t)
}

// ShiftResult describes the cost of moving the FoV after an HMP error.
type ShiftResult struct {
	// DeltaTiles are the newly visible tiles that had to come from
	// somewhere.
	DeltaTiles int
	// CacheHits of those were already decoded (fetched earlier as OOS).
	CacheHits int
	// Redecoded tiles had to be decoded synchronously before display.
	Redecoded int
	// Stall is the render hiccup the re-decodes caused.
	Stall time.Duration
}

// Shift computes the cost of changing the visible tile set from old to
// new at the given interval and quality. With the frame cache, only
// missing delta tiles are decoded; the §3.5 contrast — re-decoding the
// entire new FoV — is what you get with an empty cache.
func (f *FrameCache) Shift(cfg PipelineConfig, old, new []tiling.TileID, interval, quality int) ShiftResult {
	inOld := make(map[tiling.TileID]bool, len(old))
	for _, id := range old {
		inOld[id] = true
	}
	var res ShiftResult
	for _, id := range new {
		if inOld[id] {
			continue
		}
		res.DeltaTiles++
		if f.Has(FrameCacheKey{Tile: id, Interval: interval, Quality: quality}) {
			res.CacheHits++
			continue
		}
		res.Redecoded++
	}
	// Re-decodes block the next frame: they run synchronously because
	// the frame must display now.
	res.Stall = time.Duration(res.Redecoded) * cfg.Device.Decoder.SyncDecodeTime(cfg.TilePixels())
	return res
}

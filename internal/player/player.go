// Package player implements the client-side rendering pipeline of
// Fig. 4: the decoding scheduler feeding parallel hardware decoders, the
// encoded-chunk cache in main memory, the decoded-frame cache in video
// memory (OpenGL FBOs in the prototype), and the projection/display
// stage. It reproduces the §3.5 measurements: how the pipeline's
// structure — serial vs parallel decode, cached vs re-decoded frames,
// all-tile vs FoV-only rendering — determines the achievable frame rate
// (Figure 5).
package player

import (
	"fmt"
	"time"

	"sperke/internal/codec"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// PipelineConfig selects one rendering configuration.
type PipelineConfig struct {
	Device codec.DeviceProfile
	Grid   tiling.Grid
	// FrameWidth and FrameHeight are the full-panorama luma dimensions
	// (the §3.5 experiment uses a 2K 2560×1440 source).
	FrameWidth, FrameHeight int
	// Decoders is how many of the device's hardware decoders the
	// pipeline uses in parallel.
	Decoders int
	// FrameCache enables the §3.5 optimizations: decoders run
	// asynchronously and deposit uncompressed tiles into the video-memory
	// cache, hiding submission overhead and decoupling decode from
	// render.
	FrameCache bool
	// RenderFoVOnly renders only the tiles inside the current FoV
	// instead of the whole panorama.
	RenderFoVOnly bool
	FoV           sphere.FoV
	Projection    sphere.Projection
}

// Validate reports configuration problems.
func (c *PipelineConfig) Validate() error {
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.FrameWidth <= 0 || c.FrameHeight <= 0 {
		return fmt.Errorf("player: frame %dx%d", c.FrameWidth, c.FrameHeight)
	}
	if c.Decoders <= 0 || c.Decoders > c.Device.HWDecoders {
		return fmt.Errorf("player: %d decoders outside device range 1..%d", c.Decoders, c.Device.HWDecoders)
	}
	return nil
}

// TilePixels returns the luma pixels of one tile.
func (c *PipelineConfig) TilePixels() int64 {
	return int64(c.FrameWidth) * int64(c.FrameHeight) / int64(c.Grid.Tiles())
}

// framePixels returns the full-panorama pixel count.
func (c *PipelineConfig) framePixels() int64 {
	return int64(c.FrameWidth) * int64(c.FrameHeight)
}

// renderedPixels returns how many pixels the render stage touches per
// frame: the whole panorama texture, or only the FoV's share when
// RenderFoVOnly is set.
func (c *PipelineConfig) renderedPixels() int64 {
	if !c.RenderFoVOnly {
		return c.framePixels()
	}
	frac := c.FoV.SphereFraction()
	if frac <= 0 || frac > 1 {
		frac = 0.2
	}
	return int64(float64(c.framePixels()) * frac)
}

// decodedTiles returns how many tiles must be decoded per frame: all of
// them when rendering the panorama, the visible set when FoV-only.
func (c *PipelineConfig) decodedTiles(view sphere.Orientation) int {
	if !c.RenderFoVOnly {
		return c.Grid.Tiles()
	}
	if c.Projection == nil {
		return c.Grid.Tiles()
	}
	return len(tiling.VisibleTiles(c.Grid, c.Projection, view, c.FoV))
}

// FrameTime returns the wall time one frame takes in this configuration
// for the given view direction.
//
// Without the frame cache every tile decode serializes on the render
// thread (paying submission overhead each time) and render follows;
// with it, decode runs on the pool concurrently with render, so the
// frame period is whichever stage is slower.
func (c *PipelineConfig) FrameTime(view sphere.Orientation) time.Duration {
	tiles := c.decodedTiles(view)
	render := c.Device.RenderTime(c.renderedPixels())
	if !c.FrameCache {
		decodeAll := time.Duration(tiles) * c.Device.Decoder.SyncDecodeTime(c.TilePixels())
		return decodeAll + render
	}
	// Async: each decoder handles ⌈tiles/decoders⌉ tiles per frame.
	waves := (tiles + c.Decoders - 1) / c.Decoders
	decodeStage := time.Duration(waves) * c.Device.Decoder.DecodeTime(c.TilePixels())
	period := render
	if decodeStage > period {
		period = decodeStage
	}
	return period
}

// FPSResult is the outcome of a pipeline simulation.
type FPSResult struct {
	Frames int
	// FPS is the mean achieved frame rate, capped by the display.
	FPS float64
}

// SimulateFPS replays a head trace through the pipeline for its
// duration and returns the achieved frame rate.
func SimulateFPS(cfg PipelineConfig, head *trace.HeadTrace, dur time.Duration) (FPSResult, error) {
	if err := cfg.Validate(); err != nil {
		return FPSResult{}, err
	}
	if dur <= 0 {
		return FPSResult{}, fmt.Errorf("player: non-positive duration")
	}
	minPeriod := time.Duration(float64(time.Second) / cfg.Device.MaxDisplayFPS)
	var t time.Duration
	frames := 0
	for t < dur {
		view := sphere.Orientation{}
		if head != nil {
			view = head.At(t)
		}
		ft := cfg.FrameTime(view)
		if ft < minPeriod {
			ft = minPeriod
		}
		t += ft
		frames++
	}
	return FPSResult{Frames: frames, FPS: float64(frames) / t.Seconds()}, nil
}

// Figure5Config returns the three §3.5 configurations on the given
// device with the paper's 2K, 2×4-tile setup:
//
//	1 — render all tiles without optimization (serial decode+render)
//	2 — render all tiles with optimization (8 parallel decoders + cache)
//	3 — render only FoV tiles with optimization
func Figure5Config(device codec.DeviceProfile, config int) (PipelineConfig, error) {
	base := PipelineConfig{
		Device:      device,
		Grid:        tiling.GridPrototype, // 2×4
		FrameWidth:  2560,
		FrameHeight: 1440,
		FoV:         sphere.DefaultFoV,
		Projection:  sphere.Equirectangular{},
	}
	switch config {
	case 1:
		base.Decoders = 1
		base.FrameCache = false
		base.RenderFoVOnly = false
	case 2:
		base.Decoders = 8
		base.FrameCache = true
		base.RenderFoVOnly = false
	case 3:
		base.Decoders = 8
		base.FrameCache = true
		base.RenderFoVOnly = true
	default:
		return PipelineConfig{}, fmt.Errorf("player: figure 5 has configs 1..3, got %d", config)
	}
	return base, nil
}

// HEVCTilesFrameTime models the §3.5 comparison point: the H.265
// built-in "tiles" mechanism [40]. HEVC tiles parallelize decoding
// *within one decoder session* — the bitstream is one panorama, so the
// whole frame must always be decoded (no FoV-only decode, no per-tile
// quality) and intra-frame tile parallelism carries a synchronization
// penalty. It beats serial decoding but cannot skip non-FoV work, which
// is why it loses to Sperke's independent per-tile streams.
func (c *PipelineConfig) HEVCTilesFrameTime() time.Duration {
	// Parallel efficiency of intra-frame tile threads (shared entropy
	// state, loop-filter sync): ~70%.
	const parallelEff = 0.7
	threads := c.Decoders
	if threads > c.Grid.Tiles() {
		threads = c.Grid.Tiles()
	}
	if threads < 1 {
		threads = 1
	}
	decode := time.Duration(float64(c.framePixels()) /
		(c.Device.Decoder.PixelRate * float64(threads) * parallelEff) * float64(time.Second))
	decode += c.Device.Decoder.SubmitOverhead // one session submission per frame
	render := c.Device.RenderTime(c.renderedPixels())
	// One decoder session: decode and render serialize on the frame.
	return decode + render
}

// SimulateHEVCTilesFPS measures the HEVC-tiles pipeline's frame rate
// for the same configuration geometry.
func SimulateHEVCTilesFPS(cfg PipelineConfig, dur time.Duration) (FPSResult, error) {
	if err := cfg.Validate(); err != nil {
		return FPSResult{}, err
	}
	if dur <= 0 {
		return FPSResult{}, fmt.Errorf("player: non-positive duration")
	}
	minPeriod := time.Duration(float64(time.Second) / cfg.Device.MaxDisplayFPS)
	ft := cfg.HEVCTilesFrameTime()
	if ft < minPeriod {
		ft = minPeriod
	}
	frames := int(dur / ft)
	if frames < 1 {
		frames = 1
	}
	return FPSResult{Frames: frames, FPS: float64(time.Second) / float64(ft)}, nil
}

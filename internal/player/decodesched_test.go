package player

import (
	"testing"
	"time"

	"sperke/internal/codec"
	"sperke/internal/sim"
	"sperke/internal/tiling"
)

// testScheduler builds a 1-decoder scheduler so ordering is observable.
func testScheduler(t *testing.T, decoders int) (*sim.Clock, *DecodeScheduler, *FrameCache) {
	t.Helper()
	clock := sim.NewClock(1)
	pool := codec.NewPool(clock, codec.DecoderSpec{PixelRate: 1e6}, decoders)
	cache := NewFrameCache(16)
	return clock, NewDecodeScheduler(clock, pool, cache), cache
}

func job(tile int, playAt time.Duration, fov bool, done func(bool)) DecodeJob {
	return DecodeJob{
		Key:       FrameCacheKey{Tile: tiling.TileID(tile)},
		Pixels:    1e5, // 100 ms at 1e6 px/s
		PlayAt:    playAt,
		InFoV:     fov,
		OnDecoded: done,
	}
}

func TestDecodeSchedulerDeadlineOrder(t *testing.T) {
	clock, s, _ := testScheduler(t, 1)
	var order []tiling.TileID
	rec := func(tile int) func(bool) {
		return func(bool) { order = append(order, tiling.TileID(tile)) }
	}
	// Submit far-deadline jobs first; a near-deadline job must overtake
	// all queued ones (but not the one already decoding).
	s.Submit(job(1, 10*time.Second, true, rec(1)))
	s.Submit(job(2, 8*time.Second, true, rec(2)))
	s.Submit(job(3, 6*time.Second, true, rec(3)))
	s.Submit(job(4, 500*time.Millisecond, true, rec(4)))
	clock.Run()
	want := []tiling.TileID{1, 4, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("decode order %v, want %v", order, want)
		}
	}
}

func TestDecodeSchedulerFoVBeforeOOS(t *testing.T) {
	clock, s, _ := testScheduler(t, 1)
	var order []tiling.TileID
	rec := func(tile int) func(bool) {
		return func(bool) { order = append(order, tiling.TileID(tile)) }
	}
	deadline := 5 * time.Second
	s.Submit(job(1, deadline, false, rec(1))) // decoding immediately
	s.Submit(job(2, deadline, false, rec(2))) // OOS queued
	s.Submit(job(3, deadline, true, rec(3)))  // FoV, same deadline
	clock.Run()
	if order[1] != 3 {
		t.Fatalf("FoV tile did not outrank OOS: %v", order)
	}
}

func TestDecodeSchedulerFillsPool(t *testing.T) {
	clock, s, _ := testScheduler(t, 4)
	finish := make([]time.Duration, 0, 4)
	for i := 0; i < 4; i++ {
		s.Submit(job(i, time.Minute, true, func(bool) { finish = append(finish, clock.Now()) }))
	}
	clock.Run()
	// Four decoders: all four finish at 100 ms.
	for _, f := range finish {
		if f != 100*time.Millisecond {
			t.Fatalf("parallel finish at %v", f)
		}
	}
}

func TestDecodeSchedulerMissedDeadlines(t *testing.T) {
	clock, s, _ := testScheduler(t, 1)
	// 100 ms per job, deadlines at 150 ms: job 1 meets, jobs 2-3 miss.
	missed := 0
	for i := 0; i < 3; i++ {
		s.Submit(job(i, 150*time.Millisecond, true, func(m bool) {
			if m {
				missed++
			}
		}))
	}
	clock.Run()
	if missed != 2 {
		t.Fatalf("missed = %d, want 2", missed)
	}
	if s.Missed() != 2 || s.Decoded() != 3 {
		t.Fatalf("Missed=%d Decoded=%d", s.Missed(), s.Decoded())
	}
}

func TestDecodeSchedulerPopulatesCache(t *testing.T) {
	clock, s, cache := testScheduler(t, 1)
	s.Submit(job(7, time.Second, true, nil))
	clock.Run()
	if !cache.Has(FrameCacheKey{Tile: 7}) {
		t.Fatal("decoded tile missing from frame cache")
	}
}

func TestDecodeSchedulerPendingCount(t *testing.T) {
	clock, s, _ := testScheduler(t, 1)
	for i := 0; i < 5; i++ {
		s.Submit(job(i, time.Minute, true, nil))
	}
	// One outstanding, four queued.
	if s.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", s.Pending())
	}
	clock.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", s.Pending())
	}
}

package player

import (
	"sync"
	"testing"
	"time"

	"sperke/internal/codec"
	"sperke/internal/obs"
	"sperke/internal/tiling"
)

func cid(q, tile, startSec int) tiling.ChunkID {
	return tiling.ChunkID{Quality: q, Tile: tiling.TileID(tile), Start: time.Duration(startSec) * time.Second}
}

func TestChunkCachePutHasRemove(t *testing.T) {
	c := NewChunkCache(0)
	c.Put(cid(1, 2, 0), 100)
	if !c.Has(cid(1, 2, 0)) {
		t.Fatal("missing just-put chunk")
	}
	if c.Has(cid(1, 3, 0)) {
		t.Fatal("phantom chunk")
	}
	if c.Used() != 100 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d", c.Used(), c.Len())
	}
	c.Remove(cid(1, 2, 0))
	if c.Has(cid(1, 2, 0)) || c.Used() != 0 || c.Len() != 0 {
		t.Fatal("remove failed")
	}
	c.Remove(cid(1, 2, 0)) // idempotent
}

func TestChunkCacheEvictsLRU(t *testing.T) {
	c := NewChunkCache(300)
	c.Put(cid(0, 0, 0), 100)
	c.Put(cid(0, 1, 0), 100)
	c.Put(cid(0, 2, 0), 100)
	// Touch tile 0 so tile 1 is LRU.
	c.Has(cid(0, 0, 0))
	c.Put(cid(0, 3, 0), 100) // over budget → evict tile 1
	if c.Has(cid(0, 1, 0)) {
		t.Fatal("LRU entry survived eviction")
	}
	if !c.Has(cid(0, 0, 0)) || !c.Has(cid(0, 3, 0)) {
		t.Fatal("wrong entry evicted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d", c.Evictions())
	}
	if c.Used() > 300 {
		t.Fatalf("Used %d exceeds budget", c.Used())
	}
}

func TestChunkCachePutUpdatesSize(t *testing.T) {
	c := NewChunkCache(0)
	c.Put(cid(0, 0, 0), 100)
	c.Put(cid(0, 0, 0), 250) // same chunk re-put (e.g. upgraded layers)
	if c.Used() != 250 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after re-put", c.Used(), c.Len())
	}
}

func TestChunkCacheKeepsAtLeastOne(t *testing.T) {
	c := NewChunkCache(10)
	c.Put(cid(0, 0, 0), 100) // bigger than budget — still kept (can't evict itself)
	if c.Len() != 1 {
		t.Fatal("sole oversized entry evicted")
	}
}

func TestFrameCacheLRUEviction(t *testing.T) {
	f := NewFrameCache(2)
	k1 := FrameCacheKey{Tile: 1}
	k2 := FrameCacheKey{Tile: 2}
	k3 := FrameCacheKey{Tile: 3}
	f.Put(k1)
	f.Put(k2)
	f.Has(k1) // refresh k1; k2 becomes LRU
	f.Put(k3)
	if f.Has(k2) {
		t.Fatal("LRU tile survived")
	}
	if !f.Has(k1) || !f.Has(k3) {
		t.Fatal("wrong tile evicted")
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFrameCacheHitRate(t *testing.T) {
	f := NewFrameCache(4)
	if f.HitRate() != 0 {
		t.Fatal("hit rate before lookups")
	}
	f.Put(FrameCacheKey{Tile: 1})
	f.Has(FrameCacheKey{Tile: 1}) // hit
	f.Has(FrameCacheKey{Tile: 9}) // miss
	if f.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", f.HitRate())
	}
}

func TestFrameCachePutIdempotent(t *testing.T) {
	f := NewFrameCache(2)
	f.Put(FrameCacheKey{Tile: 1})
	f.Put(FrameCacheKey{Tile: 1})
	if f.Len() != 1 {
		t.Fatalf("duplicate put created %d entries", f.Len())
	}
}

func TestShiftDeltaOnly(t *testing.T) {
	cfg, err := Figure5Config(codec.SGS7, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrameCache(8)
	// Old FoV: tiles 1,2; new FoV: tiles 2,3,4. Tile 3 is cached (was
	// fetched as OOS), 4 is not.
	f.Put(FrameCacheKey{Tile: 3, Interval: 7, Quality: 2})
	res := f.Shift(cfg, []tiling.TileID{1, 2}, []tiling.TileID{2, 3, 4}, 7, 2)
	if res.DeltaTiles != 2 {
		t.Fatalf("DeltaTiles = %d, want 2", res.DeltaTiles)
	}
	if res.CacheHits != 1 || res.Redecoded != 1 {
		t.Fatalf("hits=%d redecoded=%d, want 1/1", res.CacheHits, res.Redecoded)
	}
	want := cfg.Device.Decoder.SyncDecodeTime(cfg.TilePixels())
	if res.Stall != want {
		t.Fatalf("Stall = %v, want %v", res.Stall, want)
	}
}

func TestShiftNoChangeNoCost(t *testing.T) {
	cfg, _ := Figure5Config(codec.SGS7, 2)
	f := NewFrameCache(8)
	res := f.Shift(cfg, []tiling.TileID{1, 2}, []tiling.TileID{1, 2}, 0, 0)
	if res.DeltaTiles != 0 || res.Stall != 0 {
		t.Fatalf("no-op shift cost %+v", res)
	}
}

func TestShiftWithEmptyCacheRedecodesAll(t *testing.T) {
	// The §3.5 contrast: without cached OOS tiles the whole new FoV
	// re-decodes, a much longer stall.
	cfg, _ := Figure5Config(codec.SGS7, 2)
	f := NewFrameCache(8)
	res := f.Shift(cfg, nil, []tiling.TileID{0, 1, 2, 3}, 0, 0)
	if res.Redecoded != 4 {
		t.Fatalf("Redecoded = %d, want 4", res.Redecoded)
	}
	if res.Stall <= 3*cfg.Device.Decoder.SyncDecodeTime(cfg.TilePixels()) {
		t.Fatal("full re-decode stall implausibly small")
	}
}

// TestChunkCacheConcurrentAccess hammers Put/Has/Remove from many
// goroutines: the fetch loop fills the cache while the decode scheduler
// drains it. Run under -race; correctness here is "no data race and no
// corrupted bookkeeping", not a specific final state.
func TestChunkCacheConcurrentAccess(t *testing.T) {
	c := NewChunkCache(50_000)
	c.SetObs(obs.NewRegistry())
	const workers = 8
	const ops = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := cid(w%3, i%17, i%5)
				switch i % 3 {
				case 0:
					c.Put(id, int64(100+i%900))
				case 1:
					c.Has(id)
				case 2:
					c.Remove(id)
				}
			}
		}(w)
	}
	wg.Wait()
	// Bookkeeping must still be internally consistent.
	if c.Len() < 0 || c.Used() < 0 {
		t.Fatalf("corrupted bookkeeping: Len=%d Used=%d", c.Len(), c.Used())
	}
	if c.Len() == 0 && c.Used() != 0 {
		t.Fatalf("empty cache reports %d used bytes", c.Used())
	}
}

// TestFrameCacheConcurrentAccess races the decode pool's Put against
// the render loop's Has. Run under -race.
func TestFrameCacheConcurrentAccess(t *testing.T) {
	f := NewFrameCache(64)
	f.SetObs(obs.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := FrameCacheKey{Tile: tiling.TileID(i % 32), Interval: i % 7, Quality: w % 3}
				if i%2 == 0 {
					f.Put(k)
				} else {
					f.Has(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := f.Len(); n < 0 || n > 64 {
		t.Fatalf("Len=%d outside [0, slots]", n)
	}
}

// TestChunkCacheOverBudgetPinned pins down the keep-one eviction
// semantics: a sole entry larger than the entire budget stays cached
// (evicting it buys nothing), and the condition is surfaced through
// OverBudget and the over-budget gauge rather than hidden.
func TestChunkCacheOverBudgetPinned(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewChunkCache(100)
	c.SetObs(reg)

	c.Put(cid(0, 0, 0), 250) // oversized: exceeds the whole budget
	if c.Len() != 1 || c.Used() != 250 {
		t.Fatalf("oversized sole entry: Len=%d Used=%d, want 1/250", c.Len(), c.Used())
	}
	if !c.OverBudget() {
		t.Fatal("OverBudget() false while used > budget")
	}
	snap := reg.Snapshot()
	if g := snap.Gauges["player.chunk_cache.over_budget"]; g != 1 {
		t.Fatalf("over_budget gauge = %d, want 1", g)
	}
	if g := snap.Gauges["player.chunk_cache.used_bytes"]; g != 250 {
		t.Fatalf("used_bytes gauge = %d, want 250", g)
	}

	// A second entry gives the evictor something to drop: the oversized
	// LRU entry goes, the new one stays, and the flag clears.
	c.Put(cid(0, 1, 0), 50)
	if c.Has(cid(0, 0, 0)) {
		t.Fatal("oversized entry survived once eviction had a candidate")
	}
	if c.OverBudget() {
		t.Fatal("OverBudget() stuck after recovery")
	}
	snap = reg.Snapshot()
	if g := snap.Gauges["player.chunk_cache.over_budget"]; g != 0 {
		t.Fatalf("over_budget gauge = %d after recovery, want 0", g)
	}
	if ev := snap.Counters["player.chunk_cache.evictions"]; ev != 1 {
		t.Fatalf("evictions counter = %d, want 1", ev)
	}
}

//go:build race

package obs

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-pinning tests consult it: race-mode sync.Pool
// deliberately drops a random fraction of Puts (to shake out
// use-after-Put bugs), so "pooled path allocates nothing per op"
// cannot hold under -race and those pins are skipped there — the
// non-race test run and the benchmark allocs/op gate still enforce
// them.
const RaceEnabled = true

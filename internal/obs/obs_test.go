package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// lookups racing creations, recordings racing snapshots — and checks
// the totals. Run under -race this is the package's thread-safety
// proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter(fmt.Sprintf("worker.%d", w%4)).Inc()
				r.Gauge("shared.gauge").Set(int64(i))
				r.Histogram("shared.hist").Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var perWorkerSum int64
	for i := 0; i < 4; i++ {
		perWorkerSum += r.Counter(fmt.Sprintf("worker.%d", i)).Value()
	}
	if perWorkerSum != workers*perWorker {
		t.Fatalf("per-worker counters sum to %d, want %d", perWorkerSum, workers*perWorker)
	}
}

// TestNilRegistryIsNoOp pins the disabled path: a nil registry hands
// out nil instruments and nothing panics or records.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("x")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("x")
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestInstrumentIdentity checks that the same name always yields the
// same instrument.
func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity broken")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("gauge identity broken")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("histogram identity broken")
	}
}

// TestMetricsHandlerJSON round-trips a snapshot through the HTTP
// handler the server mounts at /metrics.
func TestMetricsHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("dash.server.requests").Add(3)
	r.Gauge("transport.failover.queue_depth").Set(2)
	r.Histogram("live.e2e_ms").Observe(120)
	r.Histogram("live.e2e_ms").Observe(80)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal /metrics: %v", err)
	}
	if snap.Counters["dash.server.requests"] != 3 {
		t.Fatalf("counter lost in JSON: %+v", snap.Counters)
	}
	if snap.Gauges["transport.failover.queue_depth"] != 2 {
		t.Fatalf("gauge lost in JSON: %+v", snap.Gauges)
	}
	h := snap.Histograms["live.e2e_ms"]
	if h.Count != 2 || h.Min != 80 || h.Max != 120 || h.Mean != 100 {
		t.Fatalf("histogram stat wrong: %+v", h)
	}
}

// TestPublishExpvarIdempotent ensures double publication does not
// panic (expvar.Publish panics on duplicates).
func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("obs-test")
	r.PublishExpvar("obs-test")
	var nilReg *Registry
	nilReg.PublishExpvar("obs-test-nil") // must not panic either
}

package obs

import (
	"testing"
	"time"

	"sperke/internal/sim"
)

// TestSpanTimingWithSimClock runs spans on the deterministic sim clock
// and checks exact durations, monotone ordering of the log, and the
// per-stage histogram side effect.
func TestSpanTimingWithSimClock(t *testing.T) {
	clock := sim.NewClock(1)
	reg := NewRegistry()
	tr := NewTracer(reg, clock)

	// Schedule a little pipeline: upload 0→200ms, transcode 200→250ms,
	// fetch 250→400ms.
	type stage struct {
		name       string
		start, end time.Duration
	}
	stages := []stage{
		{StageUpload, 0, 200 * time.Millisecond},
		{StageTranscode, 200 * time.Millisecond, 250 * time.Millisecond},
		{StageFetch, 250 * time.Millisecond, 400 * time.Millisecond},
	}
	for _, st := range stages {
		st := st
		clock.Schedule(st.start, func() {
			sp := tr.Start(st.name)
			clock.Schedule(st.end, func() { sp.End() })
		})
	}
	clock.Run()

	spans := tr.Spans()
	if len(spans) != len(stages) {
		t.Fatalf("%d spans recorded, want %d", len(spans), len(stages))
	}
	var prevEnd time.Duration
	for i, sp := range spans {
		want := stages[i]
		if sp.Stage != want.name || sp.Start != want.start || sp.End != want.end {
			t.Fatalf("span %d = %+v, want %+v", i, sp, want)
		}
		if sp.End < sp.Start {
			t.Fatalf("span %d ends before it starts: %+v", i, sp)
		}
		if sp.End < prevEnd {
			t.Fatalf("span log not monotone in completion time: %+v", spans)
		}
		prevEnd = sp.End
		if sp.Duration() != want.end-want.start {
			t.Fatalf("span %d duration %v, want %v", i, sp.Duration(), want.end-want.start)
		}
	}
	// Histogram side effect, in milliseconds.
	h := reg.Histogram("span." + StageUpload + "_ms")
	if h.Count() != 1 || h.Quantile(0.5) != 200 {
		t.Fatalf("upload span histogram count=%d p50=%v, want 1/200ms", h.Count(), h.Quantile(0.5))
	}
}

// TestTracerRecordRetroactive covers Record for stages timed by
// delivery callbacks, and its refusal of negative spans.
func TestTracerRecordRetroactive(t *testing.T) {
	clock := sim.NewClock(2)
	reg := NewRegistry()
	tr := NewTracer(reg, clock)
	tr.Record(StageEncode, 100*time.Millisecond, 130*time.Millisecond)
	tr.Record(StageEncode, 200*time.Millisecond, 150*time.Millisecond) // negative: dropped
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Duration() != 30*time.Millisecond {
		t.Fatalf("retroactive record wrong: %+v", spans)
	}
}

// TestNilTracerIsNoOp pins the disabled tracing path.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(StageDecode)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil tracer span measured %v", d)
	}
	tr.Record(StageDecode, 0, time.Second)
	if tr.Spans() != nil {
		t.Fatal("nil tracer logged spans")
	}
	if NewTracer(NewRegistry(), nil) != nil {
		t.Fatal("tracer without a clock must be nil")
	}
}

// TestSpanLogBounded keeps long runs from growing the log without
// bound while histograms keep counting.
func TestSpanLogBounded(t *testing.T) {
	clock := sim.NewClock(3)
	reg := NewRegistry()
	tr := NewTracer(reg, clock)
	for i := 0; i < maxSpans+100; i++ {
		tr.Record(StageRender, 0, time.Millisecond)
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("span log grew to %d, cap is %d", got, maxSpans)
	}
	if got := reg.Histogram("span." + StageRender + "_ms").Count(); got != maxSpans+100 {
		t.Fatalf("histogram stopped counting at %d", got)
	}
}

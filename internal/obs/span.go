package obs

import (
	"sync"
	"time"
)

// Clock is the time source spans read. *sim.Clock satisfies it, so
// simulated pipelines trace in virtual time; Wall adapts time.Now for
// the real-socket substrates.
type Clock interface {
	Now() time.Duration
}

// Wall is a Clock reporting wall time elapsed since its creation.
type Wall struct {
	epoch time.Time
}

// NewWall returns a wall clock anchored at time.Now.
func NewWall() *Wall { return &Wall{epoch: time.Now()} }

// Now reports wall time since the epoch.
func (w *Wall) Now() time.Duration { return time.Since(w.epoch) }

// SpanRecord is one completed span in a tracer's log.
type SpanRecord struct {
	Stage string        `json:"stage"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Duration is the span's length.
func (s SpanRecord) Duration() time.Duration { return s.End - s.Start }

// maxSpans bounds a tracer's in-memory span log; beyond it the log
// degrades to histograms only (the per-stage *_ms histograms keep
// recording), so a long-running pipeline cannot grow without bound.
const maxSpans = 4096

// Tracer records pipeline-stage spans against a Clock. Each completed
// span lands in the registry histogram "span.<stage>_ms" and, up to
// maxSpans, in an in-memory log for ordering assertions and timeline
// dumps. Safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	reg   *Registry
	clock Clock

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer builds a tracer recording into reg (nil reg disables
// histograms but keeps the span log). A nil clock returns a nil,
// no-op tracer.
func NewTracer(reg *Registry, clock Clock) *Tracer {
	if clock == nil {
		return nil
	}
	return &Tracer{reg: reg, clock: clock}
}

// Span is an open span; call End to complete it. The zero Span is a
// no-op, so code can unconditionally End spans from a nil tracer.
type Span struct {
	t     *Tracer
	stage string
	start time.Duration
}

// Start opens a span for a pipeline stage.
func (t *Tracer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: t.clock.Now()}
}

// End completes the span, recording it, and returns its duration.
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	end := s.t.clock.Now()
	s.t.record(s.stage, s.start, end)
	return end - s.start
}

// Record logs a span retroactively — for stages whose timing is known
// after the fact (a modeled encode delay, a delivery callback that
// carries its own start/done stamps).
func (t *Tracer) Record(stage string, start, end time.Duration) {
	if t == nil || end < start {
		return
	}
	t.record(stage, start, end)
}

func (t *Tracer) record(stage string, start, end time.Duration) {
	t.reg.Histogram("span." + stage + "_ms").Observe(float64(end-start) / float64(time.Millisecond))
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, SpanRecord{Stage: stage, Start: start, End: end})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the span log in completion order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

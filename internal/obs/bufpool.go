package obs

import "sync"

// BufferPool is a sync.Pool of byte buffers with hit/miss accounting —
// the scratch-buffer seam of the allocation-light serve path (DESIGN.md
// "Memory discipline"). Borrowers Get a *[]byte, build into
// `(*buf)[:0]`, store the grown slice back through the pointer, and Put
// the pointer before returning; the pointer indirection keeps Get and
// Put themselves allocation-free. Ownership is strictly scoped: a
// buffer must be Put by the same function that borrowed it (the
// bufownership checker of internal/vet enforces this), and nothing
// reachable after Put may alias it.
//
// A nil *BufferPool is the disabled pool: Get hands out fresh buffers
// and Put drops them, so callers never need a nil check.
type BufferPool struct {
	pool   sync.Pool
	minCap int
	maxCap int
	hits   *Counter
	misses *Counter
}

// NewBufferPool builds a pool registering <prefix>.pool_hits and
// <prefix>.pool_misses on r (a nil registry disables the counters, not
// the pool). Buffers whose capacity grew past maxCap are dropped on
// Put so one oversized body cannot pin memory forever; maxCap <= 0
// means unlimited.
func NewBufferPool(r *Registry, prefix string, maxCap int) *BufferPool {
	return NewSizedBufferPool(r, prefix, 0, maxCap)
}

// NewSizedBufferPool is NewBufferPool for fixed-size scratch blocks: a
// pool miss mints a buffer with minCap capacity up front instead of
// growing a fresh one on first use. Setting maxCap == minCap pins the
// pool to exactly one block size — what the writer-first streaming
// path uses, so its resident scratch is blocks, never bodies.
func NewSizedBufferPool(r *Registry, prefix string, minCap, maxCap int) *BufferPool {
	return &BufferPool{
		minCap: minCap,
		maxCap: maxCap,
		hits:   r.Counter(prefix + ".pool_hits"),
		misses: r.Counter(prefix + ".pool_misses"),
	}
}

// Get returns a pointer to a zero-length buffer, recycling a previously
// Put one when available (a pool hit) and minting a fresh pointer
// otherwise (a miss).
func (p *BufferPool) Get() *[]byte {
	if p == nil {
		return new([]byte)
	}
	if v := p.pool.Get(); v != nil {
		p.hits.Inc()
		return v.(*[]byte)
	}
	p.misses.Inc()
	if p.minCap > 0 {
		buf := make([]byte, 0, p.minCap)
		return &buf
	}
	return new([]byte)
}

// Put recycles a buffer obtained from Get. The caller must not touch
// the pointer or any slice aliasing it afterwards.
func (p *BufferPool) Put(buf *[]byte) {
	if p == nil || buf == nil {
		return
	}
	if p.maxCap > 0 && cap(*buf) > p.maxCap {
		return
	}
	*buf = (*buf)[:0]
	p.pool.Put(buf)
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the independent reference: sort everything, linear
// interpolation between closest ranks.
func refQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// TestHistogramQuantilesMatchReferenceSort feeds random samples within
// the window and checks p50/p95/p99 against the reference sort.
func TestHistogramQuantilesMatchReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 10, 500, DefaultWindow} {
		h := NewHistogram(DefaultWindow)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * 1000
			h.Observe(samples[i])
		}
		st := h.Stat()
		for _, q := range []struct {
			q    float64
			got  float64
			name string
		}{
			{0.5, st.P50, "p50"},
			{0.95, st.P95, "p95"},
			{0.99, st.P99, "p99"},
		} {
			want := refQuantile(samples, q.q)
			if math.Abs(q.got-want) > 1e-9 {
				t.Fatalf("n=%d %s = %v, reference %v", n, q.name, q.got, want)
			}
			if got := h.Quantile(q.q); math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d Quantile(%v) = %v, reference %v", n, q.q, got, want)
			}
		}
	}
}

// TestHistogramWindowSlides checks that quantiles track the recent
// window while Count/Sum stay all-time.
func TestHistogramWindowSlides(t *testing.T) {
	const window = 64
	h := NewHistogram(window)
	// Fill the window with low values, then overwrite with high ones.
	for i := 0; i < window; i++ {
		h.Observe(1)
	}
	for i := 0; i < window; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 1000 {
		t.Fatalf("p50 after window slide = %v, want 1000 (old samples must age out)", got)
	}
	st := h.Stat()
	if st.Count != 2*window {
		t.Fatalf("all-time count = %d, want %d", st.Count, 2*window)
	}
	if st.Min != 1 || st.Max != 1000 {
		t.Fatalf("all-time min/max = %v/%v", st.Min, st.Max)
	}
	if st.Window != window {
		t.Fatalf("window size = %d, want %d", st.Window, window)
	}
}

// TestHistogramPartialWindowWrap exercises the ring mid-wrap: more
// samples than the window but not a multiple of it.
func TestHistogramPartialWindowWrap(t *testing.T) {
	const window = 8
	h := NewHistogram(window)
	var all []float64
	for i := 0; i < window+3; i++ {
		v := float64(i * 10)
		all = append(all, v)
		h.Observe(v)
	}
	recent := all[len(all)-window:]
	if got, want := h.Quantile(0.5), refQuantile(recent, 0.5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mid-wrap p50 = %v, want %v over the last %d samples", got, want, window)
	}
}

// TestHistogramIgnoresNaN keeps poisoned samples out of the stats.
func TestHistogramIgnoresNaN(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(math.NaN())
	h.Observe(5)
	if st := h.Stat(); st.Count != 1 || st.Min != 5 || st.Max != 5 {
		t.Fatalf("NaN leaked into stats: %+v", st)
	}
}

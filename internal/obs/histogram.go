package obs

import (
	"math"
	"sort"
	"sync"
)

// DefaultWindow is the sample window of registry-created histograms:
// large enough for stable p99s over a session, small enough that a
// snapshot sort stays cheap.
const DefaultWindow = 2048

// Histogram records float64 observations (latencies in milliseconds by
// convention: name them *_ms) and reports quantiles over a sliding
// window of the most recent observations. Count, Sum, Min and Max are
// all-time; quantiles are windowed so they track current behaviour
// rather than averaging over an entire run. Safe for concurrent use;
// no-op on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	window []float64 // ring buffer of recent samples
	next   int       // ring write position
	filled bool      // ring has wrapped at least once
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram keeping the most recent window
// samples for quantiles (window < 1 uses DefaultWindow).
func NewHistogram(window int) *Histogram {
	if window < 1 {
		window = DefaultWindow
	}
	return &Histogram{window: make([]float64, 0, window)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.window) < cap(h.window) {
		h.window = append(h.window, v)
		return
	}
	h.window[h.next] = v
	h.next++
	if h.next == cap(h.window) {
		h.next = 0
		h.filled = true
	}
}

// Count returns the all-time observation count.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) over the window using
// nearest-rank interpolation, or 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	samples := append([]float64(nil), h.window...)
	h.mu.Unlock()
	return quantile(samples, q)
}

// quantile computes the q-quantile of samples by sorting a copy —
// the reference definition the windowed histogram is tested against.
func quantile(samples []float64, q float64) float64 {
	sort.Float64s(samples)
	return sortedQuantile(samples, q)
}

// HistogramStat is a histogram snapshot for JSON export.
type HistogramStat struct {
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Window int     `json:"window"`
}

// Stat captures the histogram's current statistics.
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	h.mu.Lock()
	samples := append([]float64(nil), h.window...)
	st := HistogramStat{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Window: len(h.window),
	}
	h.mu.Unlock()
	if st.Count > 0 {
		st.Mean = st.Sum / float64(st.Count)
	}
	sort.Float64s(samples)
	st.P50 = sortedQuantile(samples, 0.5)
	st.P95 = sortedQuantile(samples, 0.95)
	st.P99 = sortedQuantile(samples, 0.99)
	return st
}

// sortedQuantile is quantile over an already-sorted slice (Stat sorts
// once for all three percentiles).
func sortedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"sync"
)

// WriteJSON writes the registry snapshot as indented JSON — the
// payload of the /metrics endpoint and the -metrics-json dump flags.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an http.Handler serving the registry snapshot as
// JSON (the sperke-server /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

var expvarOnce sync.Map // name → *sync.Once

// PublishExpvar publishes the registry under the given expvar name
// (visible at /debug/vars). Safe to call more than once per name;
// expvar itself forbids duplicate publication.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	onceAny, _ := expvarOnce.LoadOrStore(name, &sync.Once{})
	onceAny.(*sync.Once).Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}

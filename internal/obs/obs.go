// Package obs is Sperke's observability substrate: a pure-stdlib
// metrics registry (counters, gauges, windowed histograms with
// p50/p95/p99) plus lightweight span tracing for the pipeline stages of
// Figs. 2 and 4 (capture → stitch → encode → upload → transcode →
// fetch → decode → render).
//
// The paper's evaluation is entirely quantitative — Table 2 E2E
// latency, Figure 5 player FPS, §3.2 telemetry budgets — and this
// package makes those signals visible inside a live run rather than
// only in test assertions: breaker trips, failover reroutes,
// decode-deadline misses and cache hit ratios all land here.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments,
// and every instrument method on a nil receiver is a no-op costing one
// branch. Components therefore take an optional *Registry and pay
// nothing when observability is off. Default returns the process-wide
// registry the CLIs expose over /metrics and expvar.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Pipeline stage names — the span taxonomy of Figs. 2 and 4. Tracers
// and histograms use these so dashboards and tests agree on naming.
const (
	StageCapture   = "capture"
	StageStitch    = "stitch"
	StageEncode    = "encode"
	StageUpload    = "upload"
	StageTranscode = "transcode"
	StageFetch     = "fetch"
	StageDecode    = "decode"
	StageRender    = "render"
)

// Counter is a monotonically increasing int64. Safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value (queue depth, cache bytes,
// breaker state). Safe for concurrent use; no-op on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named instruments. Instruments are created on first
// use and live for the registry's lifetime; looking up the same name
// always returns the same instrument. A nil *Registry is the disabled
// registry: every lookup returns nil and every recording is a cheap
// no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry the CLIs expose.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram with the default window,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(DefaultWindow)
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every instrument, shaped for
// JSON (the /metrics endpoint and -metrics-json dumps).
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]HistogramStat `json:"histograms"`
}

// Snapshot captures every instrument. On a nil registry it returns an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramStat),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stat()
	}
	return s
}

// Names returns the sorted instrument names of one kind ("counter",
// "gauge", "histogram") — convenient for tests and docs.
func (r *Registry) Names(kind string) []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	switch kind {
	case "counter":
		for n := range r.counters {
			out = append(out, n)
		}
	case "gauge":
		for n := range r.gauges {
			out = append(out, n)
		}
	case "histogram":
		for n := range r.hists {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

package obs

import "testing"

func TestBufferPoolRecyclesAndCounts(t *testing.T) {
	r := NewRegistry()
	p := NewBufferPool(r, "test", 1<<10)

	b := p.Get()
	if len(*b) != 0 {
		t.Fatalf("fresh buffer has len %d", len(*b))
	}
	*b = append(*b, 1, 2, 3)
	p.Put(b)

	b2 := p.Get()
	if len(*b2) != 0 {
		t.Fatalf("recycled buffer not trimmed: len %d", len(*b2))
	}
	if r.Counter("test.pool_misses").Value() != 1 || r.Counter("test.pool_hits").Value() != 1 {
		t.Fatalf("counters: misses=%d hits=%d, want 1/1",
			r.Counter("test.pool_misses").Value(), r.Counter("test.pool_hits").Value())
	}
}

func TestBufferPoolDropsOversized(t *testing.T) {
	r := NewRegistry()
	p := NewBufferPool(r, "test", 64)
	b := p.Get()
	*b = make([]byte, 0, 128) // grew past maxCap
	p.Put(b)
	p.Get()
	if got := r.Counter("test.pool_misses").Value(); got != 2 {
		t.Fatalf("oversized buffer was recycled: misses = %d, want 2", got)
	}
}

func TestBufferPoolNilSafe(t *testing.T) {
	var p *BufferPool
	b := p.Get()
	if b == nil || len(*b) != 0 {
		t.Fatal("nil pool must mint fresh buffers")
	}
	p.Put(b)   // must not panic
	p.Put(nil) // must not panic
	var q = NewBufferPool(nil, "x", 0)
	q.Put(q.Get()) // nil registry: counters no-op, pool still works
}

// TestBufferPoolGetPutZeroAlloc pins the reason the pool traffics in
// *[]byte: the Get/Put round trip itself must not allocate (interface
// boxing of a plain []byte would).
func TestBufferPoolGetPutZeroAlloc(t *testing.T) {
	p := NewBufferPool(nil, "x", 0)
	seed := p.Get()
	*seed = make([]byte, 0, 64)
	p.Put(seed)
	allocs := testing.AllocsPerRun(100, func() {
		b := p.Get()
		*b = append(*b, 0xaa)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("Get/Put round trip: %v allocs/op, want 0", allocs)
	}
}

package obs

import "testing"

func TestBufferPoolRecyclesAndCounts(t *testing.T) {
	r := NewRegistry()
	p := NewBufferPool(r, "test", 1<<10)

	b := p.Get()
	if len(*b) != 0 {
		t.Fatalf("fresh buffer has len %d", len(*b))
	}
	if r.Counter("test.pool_misses").Value() != 1 {
		t.Fatalf("first Get: misses = %d, want 1", r.Counter("test.pool_misses").Value())
	}

	// sync.Pool may shed a Put (GC, or the race detector's deliberate
	// random drops), so recycling is asserted as "a hit within a few
	// rounds", not on the first round.
	for i := 0; i < 32 && r.Counter("test.pool_hits").Value() == 0; i++ {
		*b = append((*b)[:0], 1, 2, 3)
		p.Put(b)
		b = p.Get()
		if len(*b) != 0 {
			t.Fatalf("recycled buffer not trimmed: len %d", len(*b))
		}
	}
	if r.Counter("test.pool_hits").Value() == 0 {
		t.Fatal("no pool hit in 32 Put/Get rounds")
	}
}

func TestBufferPoolDropsOversized(t *testing.T) {
	r := NewRegistry()
	p := NewBufferPool(r, "test", 64)
	b := p.Get()
	*b = make([]byte, 0, 128) // grew past maxCap
	p.Put(b)
	p.Get()
	if got := r.Counter("test.pool_misses").Value(); got != 2 {
		t.Fatalf("oversized buffer was recycled: misses = %d, want 2", got)
	}
}

func TestBufferPoolNilSafe(t *testing.T) {
	var p *BufferPool
	b := p.Get()
	if b == nil || len(*b) != 0 {
		t.Fatal("nil pool must mint fresh buffers")
	}
	p.Put(b)   // must not panic
	p.Put(nil) // must not panic
	var q = NewBufferPool(nil, "x", 0)
	q.Put(q.Get()) // nil registry: counters no-op, pool still works
}

// TestSizedBufferPoolMintsAtMinCap: a sized pool's miss path hands out
// a buffer already at block capacity, and maxCap == minCap pins the
// pool to exactly that block size — an overgrown buffer is dropped on
// Put instead of widening the resident scratch.
func TestSizedBufferPoolMintsAtMinCap(t *testing.T) {
	r := NewRegistry()
	p := NewSizedBufferPool(r, "blk", 512, 512)

	b := p.Get()
	if cap(*b) != 512 || len(*b) != 0 {
		t.Fatalf("minted buffer: len %d cap %d, want 0/512", len(*b), cap(*b))
	}
	p.Put(b)
	if got := p.Get(); cap(*got) != 512 {
		t.Fatalf("post-recycle buffer: cap %d, want 512", cap(*got))
	}

	grown := p.Get()
	*grown = make([]byte, 0, 1024)
	p.Put(grown)
	again := p.Get()
	if cap(*again) != 512 {
		t.Fatalf("overgrown buffer recycled: cap %d, want fresh 512", cap(*again))
	}
}

// TestBufferPoolGetPutZeroAlloc pins the reason the pool traffics in
// *[]byte: the Get/Put round trip itself must not allocate (interface
// boxing of a plain []byte would). Shed Puts (GC, race-detector drops)
// can force occasional refills, so the assertion is "average under
// one" — boxing would read >= 1 every round trip.
func TestBufferPoolGetPutZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random; the allocs/op pin holds only without -race")
	}
	p := NewBufferPool(nil, "x", 0)
	seed := p.Get()
	*seed = make([]byte, 0, 64)
	p.Put(seed)
	allocs := testing.AllocsPerRun(100, func() {
		b := p.Get()
		*b = append(*b, 0xaa)
		p.Put(b)
	})
	if allocs >= 1 {
		t.Fatalf("Get/Put round trip: %v allocs/op, want 0 per op", allocs)
	}
}

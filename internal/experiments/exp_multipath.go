package experiments

import (
	"fmt"
	"time"

	"sperke/internal/multipath"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/transport"
)

func init() {
	register("E8", MultipathSchedulers)
	register("E12", Table1Priorities)
}

// mpWorkload drives one scheduler through a 60-interval tiled-video
// workload over a WiFi+LTE pair and reports delivery statistics.
type mpStats struct {
	fovMet, fovTotal   int
	oosOK, oosTotal    int
	urgentMet, urgents int
	bytes              int64
}

func runMultipath(seed int64, build func(clock *sim.Clock, wifi, lte *netem.Path) transport.Scheduler) mpStats {
	clock := sim.NewClock(seed)
	wifi := netem.NewPath(clock, "wifi", netem.WiFiTrace(clock.RNG("wifi"), 7e6, time.Second, 3*time.Minute), 15*time.Millisecond, 0.002)
	lte := netem.NewPath(clock, "lte", netem.LTETrace(clock.RNG("lte"), 5e6, time.Second, 3*time.Minute), 45*time.Millisecond, 0.02)
	s := build(clock, wifi, lte)

	var st mpStats
	const intervals = 60
	for i := 0; i < intervals; i++ {
		i := i
		deadline := time.Duration(i+3) * 2 * time.Second
		submitAt := time.Duration(i) * 2 * time.Second
		clock.Schedule(submitAt, func() {
			// One FoV super chunk (~1.1 MB), one OOS bundle (~0.45 MB),
			// and every 6th interval an urgent correction chunk.
			st.fovTotal++
			s.Submit(&transport.Request{
				Chunk:    tiling.ChunkID{Tile: tiling.TileID(i * 3), Start: submitAt},
				Bytes:    1_100_000,
				Deadline: deadline,
				Class:    transport.ClassFoV,
				OnDone: func(d netem.Delivery, met bool) {
					st.bytes += d.Bytes
					if met {
						st.fovMet++
					}
				},
			})
			st.oosTotal++
			s.Submit(&transport.Request{
				Chunk:    tiling.ChunkID{Tile: tiling.TileID(i*3 + 1), Start: submitAt},
				Bytes:    450_000,
				Deadline: deadline,
				Class:    transport.ClassOOS,
				OnDone: func(d netem.Delivery, met bool) {
					st.bytes += d.Bytes
					if d.OK && met {
						st.oosOK++
					}
				},
			})
			if i%6 == 5 {
				st.urgents++
				s.Submit(&transport.Request{
					Chunk:    tiling.ChunkID{Tile: tiling.TileID(i*3 + 2), Start: submitAt},
					Bytes:    300_000,
					Deadline: submitAt + 1500*time.Millisecond,
					Class:    transport.ClassFoV,
					Urgent:   true,
					OnDone: func(d netem.Delivery, met bool) {
						st.bytes += d.Bytes
						if met {
							st.urgentMet++
						}
					},
				})
			}
		})
	}
	clock.Run()
	return st
}

// MultipathSchedulers reproduces §3.3's comparison: content-aware
// multipath vs MPTCP-style content-agnostic splitting vs each single
// path, on a WiFi+LTE pair with asymmetric quality.
func MultipathSchedulers(seed int64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "§3.3 — multipath schedulers on WiFi (good) + LTE (lossy)",
		Columns: []string{"scheduler", "FoV deadlines met", "urgent met", "OOS delivered", "MB moved"},
		Notes: []string{
			"content-aware keeps paths decoupled and maps Table 1 priorities onto them",
			"MPTCP-like splitting couples every chunk to the slower subflow [36]",
		},
	}
	builders := []struct {
		name  string
		build func(clock *sim.Clock, wifi, lte *netem.Path) transport.Scheduler
	}{
		{"wifi only", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewSinglePath(c, w)
		}},
		{"lte only", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return transport.NewSinglePath(c, l)
		}},
		{"mptcp-like", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return multipath.NewMPTCPLike(c, w, l)
		}},
		{"content-aware", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			return multipath.NewContentAware(c, w, l)
		}},
		{"content-aware + duplicate urgent", func(c *sim.Clock, w, l *netem.Path) transport.Scheduler {
			ca := multipath.NewContentAware(c, w, l)
			ca.DuplicateUrgent = true
			return ca
		}},
	}
	for _, b := range builders {
		st := runMultipath(seed, b.build)
		t.AddRow(b.name,
			fmt.Sprintf("%d/%d", st.fovMet, st.fovTotal),
			fmt.Sprintf("%d/%d", st.urgentMet, st.urgents),
			fmt.Sprintf("%d/%d", st.oosOK, st.oosTotal),
			fmt.Sprintf("%.0f", float64(st.bytes)/1e6))
	}
	return t
}

// Table1Priorities demonstrates Table 1: the spatial and temporal
// priority classes and the delivery order they induce under contention.
func Table1Priorities(seed int64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Table 1 — spatial & temporal priorities under contention",
		Columns: []string{"class", "priority", "delivered", "mean lateness vs deadline"},
		Notes: []string{
			"all four classes submitted together on a congested path; urgent-FoV drains first",
		},
	}
	clock := sim.NewClock(seed)
	path := netem.NewPath(clock, "net", netem.Constant(6e6), 10*time.Millisecond, 0)
	s := transport.NewSinglePath(clock, path)

	type bucket struct {
		name      string
		class     transport.Class
		urgent    bool
		delivered int
		lateSum   time.Duration
		n         int
	}
	buckets := []*bucket{
		{name: "urgent FoV", class: transport.ClassFoV, urgent: true},
		{name: "urgent OOS", class: transport.ClassOOS, urgent: true},
		{name: "regular FoV", class: transport.ClassFoV},
		{name: "regular OOS", class: transport.ClassOOS},
	}
	deadline := 4 * time.Second
	// Submit interleaved so arrival order cannot fake priority order.
	for rep := 0; rep < 6; rep++ {
		for _, b := range buckets {
			b := b
			b.n++
			s.Submit(&transport.Request{
				Chunk:    tiling.ChunkID{Tile: tiling.TileID(rep)},
				Bytes:    400_000,
				Deadline: deadline,
				Class:    b.class,
				Urgent:   b.urgent,
				OnDone: func(d netem.Delivery, met bool) {
					b.delivered++
					b.lateSum += d.Done - deadline
				},
			})
		}
	}
	clock.Run()
	for i, b := range buckets {
		mean := time.Duration(0)
		if b.delivered > 0 {
			mean = b.lateSum / time.Duration(b.delivered)
		}
		t.AddRow(b.name, fmt.Sprintf("#%d", i+1),
			fmt.Sprintf("%d/%d", b.delivered, b.n),
			mean.Round(time.Millisecond).String())
	}
	return t
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/abr"
	"sperke/internal/core"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func init() {
	register("E5", SVCUpgrade)
	register("E6", VRAComparison)
	register("A2", AblationHybridSVC)
	register("A4", HybridSession)
	register("A5", PredictionWindowSweep)
}

// SVCUpgrade quantifies §3.1.1: the cost of raising an already-fetched
// chunk to a higher quality under SVC (delta layers) vs AVC (full
// re-fetch), per chunk and at the session level under HMP error.
func SVCUpgrade(seed int64) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "§3.1.1 — incremental upgrade cost: SVC delta vs AVC re-fetch",
		Columns: []string{"upgrade", "SVC delta (KB)", "AVC re-fetch (KB)", "SVC/AVC"},
		Notes: []string{
			"SVC pays its ~10%/layer overhead once at fetch time and then upgrades for the delta only",
		},
	}
	svc := expVideo(media.EncodingSVC)
	avc := expVideo(media.EncodingAVC)
	tile := tiling.TileID(7)
	kb := func(b int64) string { return fmt.Sprintf("%.1f", float64(b)/1e3) }
	for _, up := range [][2]int{{0, 2}, {1, 3}, {2, 4}, {3, 5}, {0, 5}} {
		s := svc.UpgradeBytes(up[0], up[1], tile, 0)
		a := avc.UpgradeBytes(up[0], up[1], tile, 0)
		t.AddRow(fmt.Sprintf("q%d → q%d", up[0], up[1]), kb(s), kb(a), float64(s)/float64(a))
	}

	// Session level: same viewer, same network, upgrades enabled.
	for _, enc := range []media.Encoding{media.EncodingSVC, media.EncodingAVC} {
		rep := runGuidedSession(seed, expVideo(enc), 15e6, abr.OOSPolicy{}, nil, true)
		t.AddRow(fmt.Sprintf("session (%s): fetched MB / wasted MB / upgrades", enc),
			fmt.Sprintf("%.1f", float64(rep.BytesFetched)/1e6),
			fmt.Sprintf("%.1f", float64(rep.BytesWasted)/1e6),
			fmt.Sprintf("%d", rep.Upgrades))
	}
	return t
}

// runGuidedSession is the shared session harness for ABR experiments.
func runGuidedSession(seed int64, v *media.Video, bps float64, oos abr.OOSPolicy,
	alg abr.Algorithm, upgrades bool) core.Report {
	clock := sim.NewClock(seed)
	path := netem.NewPath(clock, "net", netem.Constant(bps), 20*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)
	dur := v.Duration + 10*time.Second
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+40)), dur)
	head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
	s, err := core.NewSession(clock, core.Config{
		Video:          v,
		Mode:           core.FoVGuided,
		Algorithm:      alg,
		OOS:            oos,
		EnableUpgrades: upgrades,
		Obs:            obsReg,
	}, head, sched)
	if err != nil {
		panic(err)
	}
	return s.Run()
}

// runGuidedSessionTrace runs a session on a bandwidth trace.
func runGuidedSessionTrace(seed int64, v *media.Video, tr *netem.BandwidthTrace,
	alg abr.Algorithm) core.Report {
	clock := sim.NewClock(seed)
	path := netem.NewPath(clock, "net", tr, 30*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)
	dur := v.Duration + 20*time.Second
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+41)), dur)
	head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
	s, err := core.NewSession(clock, core.Config{
		Video:     v,
		Mode:      core.FoVGuided,
		Algorithm: alg,
		Obs:       obsReg,
	}, head, sched)
	if err != nil {
		panic(err)
	}
	return s.Run()
}

// VRAComparison runs §3.1.2 part one: classic VRA algorithms applied to
// super chunks on a fluctuating LTE trace, with the short HMP window
// bounding the usable buffer — the condition under which the paper
// argues buffer-based adaptation struggles.
func VRAComparison(seed int64) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "§3.1.2 — VRA algorithms on super chunks (LTE trace, 2s HMP window)",
		Columns: []string{"algorithm", "mean FoV quality", "stalls", "stall time", "switches", "QoE score"},
		Notes: []string{
			"buffer-based VRA is handicapped: the HMP window caps its cushion (§3.1.2)",
		},
	}
	v := expVideo(media.EncodingAVC)
	for _, name := range []string{"throughput", "buffer", "mpc"} {
		alg, err := abr.ByName(name)
		if err != nil {
			panic(err)
		}
		// Fresh trace per algorithm with the same seed → identical
		// network.
		lte := netem.LTETrace(rand.New(rand.NewSource(seed+7)), 8e6, time.Second, v.Duration+30*time.Second)
		rep := runGuidedSessionTrace(seed, v, lte, alg)
		m := rep.QoE
		t.AddRow(name, m.MeanQuality(), m.Stalls, m.StallTime.Round(10*time.Millisecond).String(),
			m.Switches, m.Score(v.Qualities()-1))
	}
	return t
}

// AblationHybridSVC sweeps the §3.1.2 hybrid SVC/AVC split: expected
// delivery bytes per chunk as a function of the upgrade probability,
// for pure AVC, pure SVC, and the hybrid threshold rule.
func AblationHybridSVC(seed int64) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation — hybrid SVC/AVC: expected bytes per chunk vs upgrade probability",
		Columns: []string{"P(upgrade)", "pure AVC (KB)", "pure SVC (KB)", "hybrid (KB)", "hybrid picks"},
		Notes: []string{
			"crossover where the expected delta savings pay for the SVC fetch overhead (§3.1.2)",
		},
	}
	svc := expVideo(media.EncodingSVC)
	avc := expVideo(media.EncodingAVC)
	tile := tiling.TileID(3)
	const from, to = 2, 4
	fetchAVC := avc.FetchBytes(from, tile, 0)
	fetchSVC := svc.FetchBytes(from, tile, 0)
	upAVC := avc.UpgradeBytes(from, to, tile, 0)
	upSVC := svc.UpgradeBytes(from, to, tile, 0)
	kb := func(x float64) string { return fmt.Sprintf("%.1f", x/1e3) }
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8} {
		eAVC := float64(fetchAVC) + p*float64(upAVC)
		eSVC := float64(fetchSVC) + p*float64(upSVC)
		pick := abr.HybridChoice(p, fetchAVC, fetchSVC, upAVC, upSVC)
		var eHyb float64
		if pick == media.EncodingSVC {
			eHyb = eSVC
		} else {
			eHyb = eAVC
		}
		t.AddRow(fmt.Sprintf("%.2f", p), kb(eAVC), kb(eSVC), kb(eHyb), pick.String())
	}
	return t
}

// HybridSession runs the §3.1.2 hybrid extension at session level: the
// same viewer and network under pure AVC, pure SVC, and hybrid
// per-chunk encoding selection.
func HybridSession(seed int64) *Table {
	t := &Table{
		ID:      "A4",
		Title:   "Ablation — session-level hybrid SVC/AVC vs pure encodings",
		Columns: []string{"encoding policy", "fetched (MB)", "wasted (MB)", "upgrades", "AVC/SVC picks"},
		Notes: []string{
			"hybrid fetches low-upgrade-probability chunks as AVC, dodging the SVC overhead (§3.1.2)",
		},
	}
	run := func(enc media.Encoding, hybrid bool) core.Report {
		clock := sim.NewClock(seed)
		path := netem.NewPath(clock, "net", netem.Constant(15e6), 20*time.Millisecond, 0)
		sched := transport.NewSinglePath(clock, path)
		v := expVideo(enc)
		dur := v.Duration + 10*time.Second
		rng := rand.New(rand.NewSource(seed))
		att := trace.GenerateAttention(rand.New(rand.NewSource(seed+44)), dur)
		head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
		s, err := core.NewSession(clock, core.Config{
			Video:          v,
			Mode:           core.FoVGuided,
			EnableUpgrades: true,
			HybridSVC:      hybrid,
			Obs:            obsReg,
		}, head, sched)
		if err != nil {
			panic(err)
		}
		return s.Run()
	}
	rows := []struct {
		name   string
		enc    media.Encoding
		hybrid bool
	}{
		{"pure AVC", media.EncodingAVC, false},
		{"pure SVC", media.EncodingSVC, false},
		{"hybrid", media.EncodingSVC, true},
	}
	for _, r := range rows {
		rep := run(r.enc, r.hybrid)
		picks := "—"
		if r.hybrid {
			picks = fmt.Sprintf("%d/%d", rep.HybridAVCFetches, rep.HybridSVCFetches)
		}
		t.AddRow(r.name,
			fmt.Sprintf("%.1f", float64(rep.BytesFetched)/1e6),
			fmt.Sprintf("%.1f", float64(rep.BytesWasted)/1e6),
			rep.Upgrades, picks)
	}
	return t
}

// PredictionWindowSweep quantifies the §3.1.2 observation that the HMP
// window bounds the usable buffer: each VRA algorithm runs with
// prediction windows from 1 to 8 seconds on the same LTE trace.
func PredictionWindowSweep(seed int64) *Table {
	t := &Table{
		ID:      "A5",
		Title:   "Ablation — HMP prediction window vs VRA behaviour (LTE trace)",
		Columns: []string{"window", "algorithm", "mean FoV quality", "stalls", "QoE score"},
		Notes: []string{
			"long windows help buffer-based VRA but fetch blind beyond HMP's reach — waste grows with the window",
			"a longer window prefetches content HMP cannot predict; quality shown is what the viewer saw",
		},
	}
	v := expVideo(media.EncodingAVC)
	for _, window := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		for _, name := range []string{"throughput", "buffer"} {
			alg, err := abr.ByName(name)
			if err != nil {
				panic(err)
			}
			clock := sim.NewClock(seed)
			lte := netem.LTETrace(rand.New(rand.NewSource(seed+7)), 8e6, time.Second, v.Duration+30*time.Second)
			path := netem.NewPath(clock, "net", lte, 30*time.Millisecond, 0)
			sched := transport.NewSinglePath(clock, path)
			dur := v.Duration + 20*time.Second
			rng := rand.New(rand.NewSource(seed))
			att := trace.GenerateAttention(rand.New(rand.NewSource(seed+41)), dur)
			head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
			s, err := core.NewSession(clock, core.Config{
				Video:            v,
				Mode:             core.FoVGuided,
				Algorithm:        alg,
				PredictionWindow: window,
				Obs:              obsReg,
			}, head, sched)
			if err != nil {
				panic(err)
			}
			rep := s.Run()
			m := rep.QoE
			t.AddRow(window.String(), name, m.MeanQuality(), m.Stalls, m.Score(v.Qualities()-1))
		}
	}
	return t
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/abr"
	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func init() {
	register("E7", HMPAccuracy)
	register("A6", TileCoverage)
}

// HMPAccuracy compares the §3.2 predictor family across horizons:
// static, linear extrapolation [16, 37], crowd-only, and the proposed
// data fusion, on held-out viewers of a crowd-annotated video.
func HMPAccuracy(seed int64) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "§3.2 — HMP accuracy by predictor and horizon (held-out viewers)",
		Columns: []string{"horizon", "predictor", "mean err (°)", "p90 err (°)", "FoV hit rate"},
		Notes: []string{
			"on fixation-heavy 360° content the static baseline is strong at short horizons [16,37]",
			"crowd accuracy is horizon-independent: it overtakes personal motion once the horizon grows (§3.2)",
			"fusion tracks the personal predictors early and the crowd late",
			"hit rate = predicted view within half the FoV width of the truth",
		},
	}
	const dur = 60 * time.Second
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+3)), dur)

	// Training crowd.
	pop := trace.NewPopulation(rng, 20)
	crowdTraces := pop.Sessions(rng, att, dur)
	heat := hmp.BuildHeatmap(tiling.GridCellular, sphere.Equirectangular{}, sphere.DefaultFoV,
		2*time.Second, dur, crowdTraces)

	// Held-out evaluation viewers (same video, fresh individuals).
	evalPop := trace.NewPopulation(rand.New(rand.NewSource(seed+4)), 6)
	var holdouts []*trace.HeadTrace
	var profiles []trace.UserProfile
	for i, u := range evalPop.Users {
		userRNG := rand.New(rand.NewSource(seed + 100 + int64(i)))
		holdouts = append(holdouts, trace.Generate(userRNG, u, att, dur))
		profiles = append(profiles, u)
	}

	predictors := []struct {
		name string
		mk   func(u trace.UserProfile) func() hmp.Predictor
	}{
		{"static", func(trace.UserProfile) func() hmp.Predictor {
			return func() hmp.Predictor { return &hmp.Static{} }
		}},
		{"linear", func(trace.UserProfile) func() hmp.Predictor {
			return func() hmp.Predictor { return &hmp.LinearRegression{} }
		}},
		{"crowd", func(trace.UserProfile) func() hmp.Predictor {
			return func() hmp.Predictor { return &hmp.Crowd{Heatmap: heat} }
		}},
		{"fusion", func(u trace.UserProfile) func() hmp.Predictor {
			ctx := u.Context
			return func() hmp.Predictor {
				return &hmp.Fusion{Heatmap: heat, SpeedBound: 260 * u.SpeedScale, Context: &ctx}
			}
		}},
	}

	for _, horizon := range []time.Duration{200 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		for _, p := range predictors {
			// Aggregate across holdouts; fusion is personalized per user.
			var sumErr, sumP90, sumHit float64
			var n int
			for i, h := range holdouts {
				acc := hmp.Evaluate(p.mk(profiles[i]), h, sphere.DefaultFoV, horizon)
				if acc.Samples == 0 {
					continue
				}
				sumErr += acc.MeanError
				sumP90 += acc.P90Error
				sumHit += acc.HitRate
				n++
			}
			if n == 0 {
				continue
			}
			t.AddRow(horizon.String(), p.name, sumErr/float64(n), sumP90/float64(n), sumHit/float64(n))
		}
	}
	return t
}

// TileCoverage is ablation A6: the §3.2 payoff measured operationally.
// Each predictor drives the real planning machinery (super chunk + OOS
// rings, heatmap-weighted) under a fixed tile budget; the score is the
// fraction of the viewer's actual FoV tiles that were fetched — the
// quantity that determines blanks and urgent fetches.
func TileCoverage(seed int64) *Table {
	t := &Table{
		ID:      "A6",
		Title:   "Ablation — FoV tile coverage at a fixed fetch budget, by predictor",
		Columns: []string{"horizon", "predictor", "coverage@12 tiles", "coverage@16 tiles"},
		Notes: []string{
			"coverage = share of the tiles actually visible at play time that the plan had fetched",
			"crowd-informed planning holds coverage at long horizons where motion extrapolation decays (§3.2)",
		},
	}
	const dur = 60 * time.Second
	g := tiling.GridCellular
	proj := sphere.Equirectangular{}
	fov := sphere.DefaultFoV
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+3)), dur)
	pop := trace.NewPopulation(rng, 20)
	crowd := pop.Sessions(rng, att, dur)
	heat := hmp.BuildHeatmap(g, proj, fov, 2*time.Second, dur, crowd)
	holdout := trace.Generate(rand.New(rand.NewSource(seed+200)),
		trace.UserProfile{ID: "h", SpeedScale: 1.3}, att, dur)

	type pd struct {
		name string
		mk   func() hmp.Predictor
		heat *hmp.Heatmap
	}
	preds := []pd{
		{"static", func() hmp.Predictor { return &hmp.Static{} }, nil},
		{"linear", func() hmp.Predictor { return &hmp.LinearRegression{} }, nil},
		{"fusion+crowd", func() hmp.Predictor { return &hmp.Fusion{Heatmap: heat, SpeedBound: 300} }, heat},
	}

	coverage := func(p pd, horizon time.Duration, budget int) float64 {
		pred := p.mk()
		fed := 0
		var hits, total float64
		for at := time.Second; at+horizon < dur; at += 500 * time.Millisecond {
			for fed < len(holdout.Samples) && holdout.Samples[fed].At <= at {
				pred.Observe(holdout.Samples[fed])
				fed++
			}
			forecast := pred.Predict(at + horizon)
			fovTiles := tiling.VisibleTiles(g, proj, forecast.View, fov)
			chosen := make(map[tiling.TileID]bool)
			for _, id := range fovTiles {
				chosen[id] = true
			}
			plan := abr.PlanOOS(abr.OOSInput{
				Grid: g, Projection: proj, FoVTiles: fovTiles, FoVQuality: 4,
				Prediction: forecast, FoV: fov, Heatmap: p.heat, At: at + horizon,
			}, abr.OOSPolicy{MaxRing: 3})
			for _, tq := range plan {
				if len(chosen) >= budget {
					break
				}
				chosen[tq.Tile] = true
			}
			actual := tiling.VisibleTiles(g, proj, holdout.At(at+horizon), fov)
			for _, id := range actual {
				total++
				if chosen[id] {
					hits++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return hits / total
	}

	for _, horizon := range []time.Duration{500 * time.Millisecond, 2 * time.Second, 4 * time.Second} {
		for _, p := range preds {
			t.AddRow(horizon.String(), p.name,
				fmt.Sprintf("%.2f", coverage(p, horizon, 12)),
				fmt.Sprintf("%.2f", coverage(p, horizon, 16)))
		}
	}
	return t
}

// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the quantitative claims woven through its text. Each
// experiment is a pure function from a seed to a Table whose rows mirror
// what the paper reports; cmd/sperke-bench renders them and
// bench_test.go wraps each in a testing.B benchmark.
//
// The experiment IDs match DESIGN.md's per-experiment index: E1..E13
// for paper artifacts, A1..A3 for ablations of Sperke design choices.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sperke/internal/obs"
)

// obsReg, when set, is wired into every session the suite runs so
// sperke-bench can dump an aggregate metrics snapshot. Nil disables
// metrics (the default; experiments stay pure functions of their seed —
// metrics are observation only and never feed back into results).
var obsReg *obs.Registry

// SetObs routes all subsequently-run experiments' player-side metrics
// (caches, decode scheduler, fetch pipeline) into the registry.
func SetObs(r *obs.Registry) { obsReg = r }

// Table is one experiment's output: labeled columns, formatted rows,
// and free-form notes (calibration caveats, paper reference values).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are Sprint-ed.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as RFC-4180-ish CSV (experiment metadata in
// a comment line), for plotting pipelines.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}

// Runner produces one experiment's table from a seed.
type Runner func(seed int64) *Table

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns the registered experiment IDs in a stable order: E* by
// number, then A*.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a[0] != b[0] {
			return a[0] < b[0] // 'A' < 'E'; flip below
		}
		// Numeric suffix order.
		return num(a) < num(b)
	})
	// Put E-experiments (paper artifacts) before A-ablations.
	sort.SliceStable(out, func(i, j int) bool {
		return strings.HasPrefix(out[i], "E") && !strings.HasPrefix(out[j], "E")
	})
	return out
}

func num(id string) int {
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Run executes one experiment by ID.
func Run(id string, seed int64) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(seed), nil
}

// RunAll executes every experiment in order.
func RunAll(seed int64) []*Table {
	var out []*Table
	for _, id := range IDs() {
		t, _ := Run(id, seed)
		out = append(out, t)
	}
	return out
}

package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestIDsCompleteAndOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "A1", "A2", "A3", "A4", "A5", "A6"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestEveryExperimentProducesRows(t *testing.T) {
	for _, id := range IDs() {
		tbl, err := Run(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.ID != id {
			t.Errorf("%s: table ID %q", id, tbl.ID)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if len(tbl.Columns) == 0 {
			t.Errorf("%s: no columns", id)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: row width %d != %d columns: %v", id, len(row), len(tbl.Columns), row)
			}
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"E1", "E3", "E7", "E8"} {
		a, _ := Run(id, 5)
		b, _ := Run(id, 5)
		var bufA, bufB bytes.Buffer
		a.Render(&bufA)
		b.Render(&bufB)
		if bufA.String() != bufB.String() {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

func TestRenderFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"},
		Notes: []string{"hello"}}
	tbl.AddRow("v", 3.14159)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== X: demo ==") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float not formatted: %q", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Fatalf("missing note: %q", out)
	}
}

// grab parses a float out of a table cell like "47%" or "12.3".
func grab(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestFigure5Shape(t *testing.T) {
	tbl, _ := Run("E1", 1)
	fps := []float64{}
	for _, row := range tbl.Rows {
		fps = append(fps, grab(t, row[1]))
	}
	if !(fps[0] < fps[1] && fps[1] < fps[2]) {
		t.Fatalf("Figure 5 ordering broken: %v", fps)
	}
	if fps[0] < 8 || fps[0] > 15 || fps[1] < 45 || fps[1] > 62 || fps[2] < 100 || fps[2] > 125 {
		t.Fatalf("Figure 5 values off the paper's band: %v", fps)
	}
}

func TestTable2Shape(t *testing.T) {
	tbl, _ := Run("E2", 1)
	// Row 0 is unconstrained: FB < Periscope < YouTube.
	base := tbl.Rows[0]
	fb, ps, yt := grab(t, base[1]), grab(t, base[2]), grab(t, base[3])
	if !(fb < ps && ps < yt) {
		t.Fatalf("base ordering broken: %v %v %v", fb, ps, yt)
	}
	// 0.5Mbps rows inflate every platform; YouTube least on the download
	// side (its ladder reaches 144p), Periscope most (no adaptation).
	for _, i := range []int{3, 4} {
		row := tbl.Rows[i]
		for col := 1; col <= 3; col++ {
			if grab(t, row[col]) < grab(t, base[col])*1.15 {
				t.Fatalf("row %d col %d did not inflate: %s vs base %s", i, col, row[col], base[col])
			}
		}
		if !(grab(t, row[2]) > grab(t, row[1]) && grab(t, row[2]) > grab(t, row[3])) {
			t.Fatalf("row %d: Periscope not the worst: %v", i, row)
		}
	}
}

func TestTilingSavingsBand(t *testing.T) {
	tbl, _ := Run("E3", 1)
	foundBand := false
	for _, row := range tbl.Rows {
		if row[3] == "—" {
			continue
		}
		s := grab(t, row[3])
		if s >= 40 && s <= 85 {
			foundBand = true
		}
		if s < 5 {
			t.Fatalf("a tiling policy saved only %v%%", s)
		}
	}
	if !foundBand {
		t.Fatal("no policy landed in the cited 45–80% band")
	}
}

func TestVersioningRatio(t *testing.T) {
	tbl, _ := Run("E4", 1)
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "versioning (Oculus-style)" {
			found = true
			if ratio := grab(t, row[3]); ratio < 10 {
				t.Fatalf("versioning ratio %v, want ≫1", ratio)
			}
		}
		if strings.HasPrefix(row[0], "versioning delivery") {
			if !strings.Contains(row[1], "switches") {
				t.Fatalf("delivery row missing switch count: %v", row)
			}
		}
	}
	if !found {
		t.Fatal("versioning storage row missing")
	}
}

func TestSize360NearFive(t *testing.T) {
	tbl, _ := Run("E11", 1)
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "geometric ratio") {
			if r := grab(t, row[1]); r < 4 || r > 7 {
				t.Fatalf("geometric ratio %v outside the ≈5× claim", r)
			}
			return
		}
	}
	t.Fatal("geometric ratio row missing")
}

func TestRunAllMatchesIDs(t *testing.T) {
	tables := RunAll(1)
	ids := IDs()
	if len(tables) != len(ids) {
		t.Fatalf("RunAll returned %d tables for %d IDs", len(tables), len(ids))
	}
	for i, tbl := range tables {
		if tbl.ID != ids[i] {
			t.Fatalf("RunAll[%d] = %s, want %s", i, tbl.ID, ids[i])
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `has "quotes", commas`)
	var buf bytes.Buffer
	tbl.RenderCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, "# X: demo") {
		t.Fatalf("missing metadata comment: %q", out)
	}
	if !strings.Contains(out, `plain,"has ""quotes"", commas"`) {
		t.Fatalf("CSV escaping wrong: %q", out)
	}
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/abr"
	"sperke/internal/core"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func init() {
	register("E3", TilingSavings)
	register("A1", AblationOOSRing)
	register("E16", BandwidthSweep)
}

// sessionUnder runs one full session for the savings experiments.
func sessionUnder(seed int64, mode core.StreamMode, oos abr.OOSPolicy, speedScale float64) core.Report {
	v := expVideo(media.EncodingAVC)
	clock := sim.NewClock(seed)
	path := netem.NewPath(clock, "net", netem.Constant(25e6), 20*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)
	dur := v.Duration + 10*time.Second
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+60)), dur)
	head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: speedScale}, att, dur)
	s, err := core.NewSession(clock, core.Config{
		Video:     v,
		Mode:      mode,
		OOS:       oos,
		Algorithm: &abr.Fixed{Q: 4}, // equal quality: compare bytes only
		Obs:       obsReg,
	}, head, sched)
	if err != nil {
		panic(err)
	}
	return s.Run()
}

// TilingSavings reproduces the §2 bandwidth-saving claims: tiled
// FoV-guided streaming vs FoV-agnostic full-panorama delivery, under
// conservative and aggressive OOS policies and two viewer mobility
// levels. Prior systems report 45% [16] and 60–80% [37].
func TilingSavings(seed int64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "§2 — bandwidth saving of FoV-guided tiling vs FoV-agnostic delivery",
		Columns: []string{"OOS policy", "viewer", "fetched (MB)", "saving", "FoV quality Δ"},
		Notes: []string{
			"paper-cited bands: ~45% [16], 60–80% [37]; quality held at 1080p for both sides",
			"quality Δ = guided mean FoV quality − agnostic (positive means guided looks better)",
		},
	}
	type policy struct {
		name string
		oos  abr.OOSPolicy
	}
	policies := []policy{
		{"conservative (2 rings, -1/ring)", abr.OOSPolicy{MaxRing: 2, QualityDropPerRing: 1}},
		{"moderate (1 ring, -2)", abr.OOSPolicy{MaxRing: 1, QualityDropPerRing: 2}},
		{"aggressive (1 ring, base only)", abr.OOSPolicy{MaxRing: 1, QualityDropPerRing: 5}},
	}
	viewers := []struct {
		name  string
		speed float64
	}{
		{"calm", 0.7},
		{"active", 1.6},
	}
	for _, vw := range viewers {
		agnostic := sessionUnder(seed, core.FoVAgnostic, abr.OOSPolicy{}, vw.speed)
		t.AddRow("fov-agnostic (baseline)", vw.name,
			fmt.Sprintf("%.1f", float64(agnostic.BytesFetched)/1e6), "—", 0.0)
		for _, p := range policies {
			guided := sessionUnder(seed, core.FoVGuided, p.oos, vw.speed)
			saving := 1 - float64(guided.BytesFetched)/float64(agnostic.BytesFetched)
			t.AddRow(p.name, vw.name,
				fmt.Sprintf("%.1f", float64(guided.BytesFetched)/1e6),
				fmt.Sprintf("%.0f%%", saving*100),
				guided.QoE.MeanQuality()-agnostic.QoE.MeanQuality())
		}
	}
	return t
}

// AblationOOSRing sweeps the OOS ring width (§3.1.2 part two): wider
// rings waste bytes, narrower rings risk blanks and urgent corrections.
func AblationOOSRing(seed int64) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation — OOS ring width vs waste and robustness",
		Columns: []string{"max ring", "fetched (MB)", "waste", "blank time", "urgent fetches", "QoE score"},
		Notes: []string{
			"the §3.1.2 trade-off: more OOS chunks tolerate HMP error, fewer save bandwidth",
		},
	}
	v := expVideo(media.EncodingAVC)
	for _, ring := range []int{1, 2, 3} {
		clock := sim.NewClock(seed)
		path := netem.NewPath(clock, "net", netem.Constant(12e6), 20*time.Millisecond, 0)
		sched := transport.NewSinglePath(clock, path)
		dur := v.Duration + 10*time.Second
		rng := rand.New(rand.NewSource(seed))
		att := trace.GenerateAttention(rand.New(rand.NewSource(seed+61)), dur)
		head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1.4}, att, dur)
		s, err := core.NewSession(clock, core.Config{
			Video:          v,
			Mode:           core.FoVGuided,
			OOS:            abr.OOSPolicy{MaxRing: ring},
			EnableUpgrades: true,
			Obs:            obsReg,
		}, head, sched)
		if err != nil {
			panic(err)
		}
		rep := s.Run()
		m := rep.QoE
		t.AddRow(ring,
			fmt.Sprintf("%.1f", float64(rep.BytesFetched)/1e6),
			fmt.Sprintf("%.0f%%", m.WasteRatio()*100),
			m.BlankTime.Round(time.Millisecond).String(),
			rep.UrgentFetches,
			m.Score(v.Qualities()-1))
	}
	return t
}

// BandwidthSweep produces the crossover figure the §2 argument implies:
// mean FoV quality and stalls for FoV-guided vs FoV-agnostic delivery
// as the access link shrinks. Guided streaming holds quality far longer
// because the budget concentrates where the user looks.
func BandwidthSweep(seed int64) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "§2 — FoV quality vs link rate: FoV-guided vs FoV-agnostic",
		Columns: []string{"link", "guided quality", "guided stalls", "agnostic quality", "agnostic stalls"},
		Notes: []string{
			"adaptive VRA on both sides; guided spends the link on the FoV, agnostic spreads it over the sphere",
		},
	}
	v := expVideo(media.EncodingAVC)
	for _, mbps := range []float64{2, 4, 6, 10, 16, 24, 40} {
		row := []any{fmt.Sprintf("%.0f Mbps", mbps)}
		for _, mode := range []core.StreamMode{core.FoVGuided, core.FoVAgnostic} {
			clock := sim.NewClock(seed)
			path := netem.NewPath(clock, "net", netem.Constant(mbps*1e6), 20*time.Millisecond, 0)
			sched := transport.NewSinglePath(clock, path)
			dur := v.Duration + 10*time.Second
			rng := rand.New(rand.NewSource(seed))
			att := trace.GenerateAttention(rand.New(rand.NewSource(seed+60)), dur)
			head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
			s, err := core.NewSession(clock, core.Config{Video: v, Mode: mode, Obs: obsReg}, head, sched)
			if err != nil {
				panic(err)
			}
			rep := s.Run()
			row = append(row, rep.QoE.MeanQuality(), rep.QoE.Stalls)
		}
		t.AddRow(row...)
	}
	return t
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/codec"
	"sperke/internal/player"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func init() {
	register("E1", Figure5)
	register("E13", FrameCacheDelta)
	register("A3", AblationDecoderPool)
}

// Figure5 reproduces Fig. 5: frames per second of the Sperke player on
// an SGS7 with a 2K video and 2×4 tiles under the three rendering
// configurations.
func Figure5(seed int64) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Figure 5 — player FPS on SGS7 (2K video, 2×4 tiles, 8 decoders)",
		Columns: []string{"configuration", "fps", "paper"},
		Notes: []string{
			"paper §3.5: 11 → 53 → 120 FPS",
		},
	}
	head := fig5HeadTrace(seed)
	paper := []string{"11", "53", "120"}
	labels := []string{
		"1. render all tiles w/o optimization",
		"2. render all tiles with optimization",
		"3. render only FoV tiles with optimization",
	}
	for cfgNum := 1; cfgNum <= 3; cfgNum++ {
		cfg, err := player.Figure5Config(codec.SGS7, cfgNum)
		if err != nil {
			panic(err)
		}
		res, err := player.SimulateFPS(cfg, head, 10*time.Second)
		if err != nil {
			panic(err)
		}
		t.AddRow(labels[cfgNum-1], fmt.Sprintf("%.0f", res.FPS), paper[cfgNum-1])
	}
	// The §3.5 comparison point: H.265's built-in tiles mechanism, which
	// parallelizes within one decoder session but cannot skip non-FoV
	// decode work.
	cfg, err := player.Figure5Config(codec.SGS7, 3)
	if err != nil {
		panic(err)
	}
	hevc, err := player.SimulateHEVCTilesFPS(cfg, 10*time.Second)
	if err != nil {
		panic(err)
	}
	t.AddRow("(H.265 built-in tiles, for comparison)", fmt.Sprintf("%.0f", hevc.FPS), "outperformed")
	return t
}

func fig5HeadTrace(seed int64) *trace.HeadTrace {
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+1)), 12*time.Second)
	return trace.Generate(rng, trace.UserProfile{ID: "bench", SpeedScale: 1}, att, 12*time.Second)
}

// FrameCacheDelta reproduces the §3.5 decoded-frame-cache claim: after
// an inaccurate HMP, the FoV shifts by decoding only the delta tiles
// instead of the whole view.
func FrameCacheDelta(seed int64) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "§3.5 — FoV shift cost with vs without the decoded-frame cache",
		Columns: []string{"scenario", "delta tiles", "re-decoded", "render hiccup (ms)"},
		Notes: []string{
			"with the cache, OOS tiles decoded ahead of time absorb the shift (§3.5)",
		},
	}
	cfg, err := player.Figure5Config(codec.SGS7, 2)
	if err != nil {
		panic(err)
	}
	// Old FoV: tiles of the left half; new FoV after an HMP miss: shifted
	// one column right; the ring tile was prefetched as OOS.
	g := cfg.Grid
	old := []tiling.TileID{g.Tile(0, 0), g.Tile(0, 1), g.Tile(1, 0), g.Tile(1, 1)}
	new := []tiling.TileID{g.Tile(0, 1), g.Tile(0, 2), g.Tile(1, 1), g.Tile(1, 2)}

	// With cache: the OOS prefetch decoded the adjacent column already.
	warm := player.NewFrameCache(8)
	warm.Put(player.FrameCacheKey{Tile: g.Tile(0, 2), Interval: 0, Quality: 3})
	warm.Put(player.FrameCacheKey{Tile: g.Tile(1, 2), Interval: 0, Quality: 3})
	res := warm.Shift(cfg, old, new, 0, 3)
	t.AddRow("with frame cache (OOS pre-decoded)", res.DeltaTiles, res.Redecoded,
		fmt.Sprintf("%.1f", float64(res.Stall.Microseconds())/1000))

	// Without cache: every delta tile re-decodes synchronously.
	cold := player.NewFrameCache(8)
	res = cold.Shift(cfg, old, new, 0, 3)
	t.AddRow("without frame cache", res.DeltaTiles, res.Redecoded,
		fmt.Sprintf("%.1f", float64(res.Stall.Microseconds())/1000))

	// Worst case: the whole FoV re-decodes (cache disabled entirely, as
	// in configuration 1).
	res = cold.Shift(cfg, nil, new, 1, 3)
	t.AddRow("re-decode entire FoV", res.DeltaTiles, res.Redecoded,
		fmt.Sprintf("%.1f", float64(res.Stall.Microseconds())/1000))
	return t
}

// AblationDecoderPool sweeps the decoder-pool size for configuration 2
// on both device profiles (§3.5: SGS5 has 8 decoders, SGS7 has 16).
func AblationDecoderPool(seed int64) *Table {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation — parallel decoder count vs FPS (config 2)",
		Columns: []string{"device", "decoders", "fps"},
		Notes: []string{
			"FPS saturates once decode stops being the bottleneck; the render stage then dominates",
		},
	}
	head := fig5HeadTrace(seed)
	for _, dev := range []codec.DeviceProfile{codec.SGS5, codec.SGS7} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			if n > dev.HWDecoders {
				continue
			}
			cfg, err := player.Figure5Config(dev, 2)
			if err != nil {
				panic(err)
			}
			cfg.Device = dev
			cfg.Decoders = n
			res, err := player.SimulateFPS(cfg, head, 5*time.Second)
			if err != nil {
				panic(err)
			}
			t.AddRow(dev.Name, n, fmt.Sprintf("%.0f", res.FPS))
		}
	}
	return t
}

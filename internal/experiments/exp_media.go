package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/media"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func init() {
	register("E4", VersioningOverhead)
	register("E11", Size360)
}

// expVideo builds the standard 60-second test title used by the storage
// and size experiments.
func expVideo(enc media.Encoding) *media.Video {
	return &media.Video{
		ID:             "experiment-title",
		Duration:       60 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       enc,
	}
}

// VersioningOverhead quantifies the §2 versioning-vs-tiling trade-off:
// Oculus-style versioning needs up to 88 versions of the same video on
// the server, while tiling stores each quality once.
func VersioningOverhead(seed int64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "§2 — server storage: Oculus-style versioning (88 versions) vs tiling",
		Columns: []string{"approach", "versions/qualities", "storage (GB)", "ratio vs tiled AVC"},
		Notes: []string{
			"Oculus 360 maintains up to 88 versions of the same video [46]",
			"SVC tiling stores only layer deltas, beating even AVC tiling",
		},
	}
	avc := expVideo(media.EncodingAVC)
	svc := expVideo(media.EncodingSVC)
	tiledAVC := avc.TotalBytes()
	tiledSVC := svc.TotalBytes()
	versioned := media.OculusScheme.StorageBytes(avc)
	gb := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/1e9) }
	t.AddRow("tiling (AVC)", fmt.Sprintf("%d qualities × %d tiles", avc.Qualities(), avc.Grid.Tiles()),
		gb(tiledAVC), 1.0)
	t.AddRow("tiling (SVC)", fmt.Sprintf("%d layers × %d tiles", svc.Qualities(), svc.Grid.Tiles()),
		gb(tiledSVC), float64(tiledSVC)/float64(tiledAVC))
	t.AddRow("versioning (Oculus-style)", fmt.Sprintf("%d versions × %d qualities",
		media.OculusScheme.Versions(), avc.Qualities()),
		gb(versioned), media.OculusScheme.StorageRatio(avc))

	// Client-side dynamics: versioning re-fetches the whole chunk every
	// time the head crosses one of the 22 yaw cells (every ≈16.4°).
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+5)), avc.Duration)
	head := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, avc.Duration)
	delivered, switches := media.OculusScheme.SessionDelivery(avc, 4, head)
	t.AddRow("versioning delivery (60s session)",
		fmt.Sprintf("%d version switches", switches),
		gb(delivered), "—")
	t.Notes = append(t.Notes,
		"every version switch re-downloads the chunk in the new version — the client-side tax of §2's versioning")
	return t
}

// Size360 reproduces the §1 claim that 360° videos are ≈5× larger than
// conventional videos at the same perceived quality, and the §3.4.1
// live variant (4–5×).
func Size360(seed int64) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "§1/§3.4.1 — 360° vs conventional video size at equal perceived quality",
		Columns: []string{"quantity", "value"},
		Notes: []string{
			"paper: ≈5× for on-demand (§1); 4–5× for live (§3.4.1)",
			"the ratio is the sphere area over the FoV solid angle, corrected for projection oversampling",
		},
	}
	fov := sphere.DefaultFoV
	frac := fov.SphereFraction()
	t.AddRow("FoV share of sphere", fmt.Sprintf("%.1f%%", frac*100))
	t.AddRow("geometric ratio (sphere/FoV)", 1/frac)
	for _, p := range []sphere.Projection{sphere.Equirectangular{}, sphere.CubeMap{}} {
		// Stored pixels inflate by the projection's oversampling; a
		// conventional video stores the FoV at 1:1.
		ratio := (1 / frac) / p.PixelEfficiency() * 1.0
		t.AddRow(fmt.Sprintf("stored-pixel ratio (%s)", p.Name()), ratio)
	}
	// Byte-level check with the rate model: panorama bytes per chunk vs a
	// conventional video carrying only FoV-sized content at the same
	// pixel density.
	v := expVideo(media.EncodingAVC)
	q := 4 // 1080p-equivalent
	pan := v.PanoramaBytes(q, 0)
	conventional := int64(float64(pan) * frac)
	t.AddRow("rate-model ratio (panorama/FoV bytes)", float64(pan)/float64(conventional))
	return t
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/live"
	"sperke/internal/media"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func init() {
	register("E2", Table2)
	register("E9", SpatialFallback)
	register("E10", CrowdLiveHMP)
	register("E14", SperkeLiveComparison)
	register("E15", ViewerLatencySpread)
}

// Table2 reproduces the paper's Table 2: live 360° E2E latency on the
// three commercial platforms under five network conditions.
func Table2(seed int64) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Table 2 — live E2E latency (seconds) under network conditions",
		Columns: []string{"upload / download BW", "Facebook", "Periscope", "YouTube", "paper (F/P/Y)"},
		Notes: []string{
			"each cell averages 3 two-minute broadcasts, as in §3.4.1",
			"platform profiles calibrated to the unconstrained row; constrained rows emerge from the pipeline model",
		},
	}
	paper := []string{
		"9.2 / 12.4 / 22.2",
		"11 / 22.3 / 22.3",
		"9.3 / 20 / 22.2",
		"22.2 / 53.4 / 31.5",
		"45.4 / 61.8 / 38.6",
	}
	for i, cond := range live.Table2Conditions {
		row := []any{cond.Name}
		for _, p := range live.Platforms {
			r := live.Table2Cell(p, cond)
			row = append(row, fmt.Sprintf("%.1f", r.MeanLatency.Seconds()))
		}
		row = append(row, paper[i])
		t.AddRow(row...)
	}
	return t
}

// SpatialFallback evaluates §3.4.2's spatial fall-back against blind
// quality reduction across uplink fractions, for a concert-like crowd
// and a dispersed crowd.
func SpatialFallback(seed int64) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "§3.4.2 — upload adaptation: FoV quality by mode and uplink fraction",
		Columns: []string{"crowd", "uplink", "fixed", "quality-reduce", "spatial-fallback", "blanked"},
		Notes: []string{
			"spatial fallback wins when the horizon of interest is narrow (concert); loses when viewers disperse",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	crowds := map[string][]sphere.Orientation{}
	for i := 0; i < 300; i++ {
		yaw := rng.NormFloat64() * 20
		if rng.Float64() < 0.05 {
			yaw = rng.Float64()*360 - 180
		}
		crowds["concert"] = append(crowds["concert"], sphere.Orientation{Yaw: yaw}.Normalized())
		crowds["dispersed"] = append(crowds["dispersed"],
			sphere.Orientation{Yaw: rng.Float64()*360 - 180}.Normalized())
	}
	hint := sphere.Orientation{}
	fov := sphere.DefaultFoV
	for _, crowd := range []string{"concert", "dispersed"} {
		for _, frac := range []float64{0.75, 0.5, 0.35} {
			plan := live.PlanHorizon(&hint, nil, 0, frac, 160)
			fx := live.EvaluateFallback(live.UploadFixed, plan, frac, crowds[crowd], fov)
			qr := live.EvaluateFallback(live.UploadQualityReduce, plan, frac, crowds[crowd], fov)
			sf := live.EvaluateFallback(live.UploadSpatialFallback, plan, frac, crowds[crowd], fov)
			t.AddRow(crowd, fmt.Sprintf("%.0f%%", frac*100),
				fx.MeanFoVQuality, qr.MeanFoVQuality, sf.MeanFoVQuality,
				fmt.Sprintf("%.0f%%", sf.OutsideHorizonFrac*100))
		}
	}

	// The same decision run through the full pipeline (Facebook profile
	// at ≈55% uplink): skips and latency instead of abstract quality.
	cond := live.Condition{Up: 1.2e6}
	plan := live.PlanHorizon(&hint, nil, 0, cond.Up/float64(live.Facebook.IngestBitrate), 160)
	for _, mode := range []live.UploadMode{live.UploadFixed, live.UploadQualityReduce, live.UploadSpatialFallback} {
		run := live.MeasureE2EWithFallback(seed+500, live.Facebook, cond, 2*time.Minute, mode, plan)
		t.AddRow("pipeline (FB, 55% uplink)", mode.String(),
			fmt.Sprintf("%d skips", run.Result.SkippedSegments),
			fmt.Sprintf("%.1fs latency", run.Result.MeanLatency.Seconds()),
			fmt.Sprintf("uploads %.0f%%", run.UploadedFraction*100), "—")
	}
	t.Notes = append(t.Notes,
		"pipeline rows: spatial fall-back uploads a 196° horizon at full quality and removes the fixed mode's skips")
	return t
}

// CrowdLiveHMP evaluates §3.4.2's crowd-sourced live prediction: how
// well low-latency viewers' reactions predict a high-latency viewer's
// FoV, versus the static baseline, across prefetch horizons.
func CrowdLiveHMP(seed int64) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "§3.4.2 — crowd-sourced live HMP for high-latency viewers",
		Columns: []string{"horizon", "static hit", "crowd hit", "crowd recovery of static misses", "moved"},
		Notes: []string{
			"recovery = crowd hit rate on exactly the samples where assuming a still head fails",
		},
	}
	const dur = 90 * time.Second
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+9)), dur)
	pop := trace.NewPopulation(rng, 16)
	traces := pop.Sessions(rng, att, dur)
	viewers := make([]live.Viewer, len(traces))
	for i, tr := range traces {
		viewers[i] = live.Viewer{Trace: tr, Latency: time.Duration(8+rng.Float64()*30) * time.Second}
	}
	target := live.Viewer{
		Trace:   trace.Generate(rand.New(rand.NewSource(seed+77)), trace.UserProfile{ID: "lagger", SpeedScale: 1}, att, dur),
		Latency: 45 * time.Second,
	}
	pred := &live.CrowdLivePredictor{Ahead: viewers, TargetLatency: target.Latency}
	for _, h := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		rep := live.LiveHMPAccuracy(pred, target, sphere.DefaultFoV, dur, h)
		t.AddRow(h.String(), rep.StaticHit, rep.CrowdHit, rep.CrowdRecovery,
			fmt.Sprintf("%.0f%%", rep.MovedFrac*100))
	}
	return t
}

// SperkeLiveComparison evaluates the §3.4.2 endgame: a live pipeline
// with SVC ingest (no server re-encode), short segments, and FoV-guided
// delivery, against the three commercial platforms.
func SperkeLiveComparison(seed int64) *Table {
	t := &Table{
		ID:    "E14",
		Title: "§3.4.2 — Sperke live (SVC ingest + FoV-guided delivery) vs commercial platforms",
		Columns: []string{"platform", "base E2E (s)", "0.5Mbps up (s)", "0.5Mbps down (s)",
			"viewer MB / 2min"},
		Notes: []string{
			"SVC ingest removes the server re-encode stage; FoV-guided delivery carries ~45% of the panorama",
			"an agenda projection, not a paper measurement: what the §3.4.2 proposals buy end to end",
		},
	}
	platforms := append(append([]live.Platform{}, live.Platforms...), live.SperkeLive)
	for _, p := range platforms {
		base := live.Table2Cell(p, live.Condition{})
		up := live.Table2Cell(p, live.Condition{Up: 0.5e6})
		down := live.Table2Cell(p, live.Condition{Down: 0.5e6})
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", base.MeanLatency.Seconds()),
			fmt.Sprintf("%.1f", up.MeanLatency.Seconds()),
			fmt.Sprintf("%.1f", down.MeanLatency.Seconds()),
			fmt.Sprintf("%.0f", float64(base.BytesDownloaded)/1e6))
	}

	// The same pipeline measured mechanistically: a viewer that fetches
	// per tile (FoV + one OOS ring + crowd tiles) instead of scaled
	// whole-panorama segments.
	mech := live.SperkeLive
	mech.Name = "Sperke-live (per-tile)"
	mech.DownLadder = []media.Bitrate{ // full panoramic rates; tiles shrink them
		200 * media.Kbps, 400 * media.Kbps, 750 * media.Kbps,
		1200 * media.Kbps, 2000 * media.Kbps, 3500 * media.Kbps,
	}
	const dur = 2 * time.Minute
	g := tiling.GridCellular
	proj := sphere.Equirectangular{}
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+80)), dur)
	head := trace.Generate(rand.New(rand.NewSource(seed+81)),
		trace.UserProfile{ID: "viewer", SpeedScale: 1}, att, dur)
	pop := trace.NewPopulation(rand.New(rand.NewSource(seed+82)), 8)
	sessions := pop.Sessions(rand.New(rand.NewSource(seed+83)), att, dur)
	heat := hmp.BuildHeatmap(g, proj, sphere.DefaultFoV, mech.SegmentDur, dur, sessions)
	cell := func(cond live.Condition) (live.Result, live.FoVLiveStats) {
		return live.MeasureFoVGuidedLive(seed+1000, mech, g, proj, sphere.DefaultFoV, head, heat, cond, dur)
	}
	base, stats := cell(live.Condition{})
	up, _ := cell(live.Condition{Up: 0.5e6})
	down, _ := cell(live.Condition{Down: 0.5e6})
	t.AddRow(mech.Name,
		fmt.Sprintf("%.1f", base.MeanLatency.Seconds()),
		fmt.Sprintf("%.1f", up.MeanLatency.Seconds()),
		fmt.Sprintf("%.1f", down.MeanLatency.Seconds()),
		fmt.Sprintf("%.0f", float64(base.BytesDownloaded)/1e6))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"per-tile row: mean fetch share %.0f%% of the panorama, FoV coverage %.0f%%",
		stats.FetchShare*100, stats.Coverage*100))
	return t
}

// ViewerLatencySpread verifies the §3.4.2 premise behind crowd-sourced
// live HMP: viewers behind heterogeneous downlinks experience widely
// different E2E latencies on the same broadcast.
func ViewerLatencySpread(seed int64) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "§3.4.2 premise — E2E latency spread across a heterogeneous viewer population",
		Columns: []string{"platform", "viewers", "min (s)", "mean (s)", "max (s)", "stddev (s)"},
		Notes: []string{
			"downlinks drawn from {unlimited, 8, 5, 3, 2, 1.6, 1.2, 0.9} Mbps",
			"\"the E2E latency across users will likely exhibit high variance\" — the raw material of crowd live HMP",
		},
	}
	downs := []float64{0, 8e6, 5e6, 3e6, 2e6, 1.6e6, 1.2e6, 0.9e6}
	for _, p := range live.Platforms {
		results := live.MeasureViewers(seed, p, 0, downs, 2*time.Minute)
		s := live.Spread(results)
		t.AddRow(p.Name, len(results),
			fmt.Sprintf("%.1f", s.Min.Seconds()),
			fmt.Sprintf("%.1f", s.Mean.Seconds()),
			fmt.Sprintf("%.1f", s.Max.Seconds()),
			fmt.Sprintf("%.1f", s.StdDev.Seconds()))
	}
	return t
}

package experiments_test

import (
	"bytes"
	"testing"

	"sperke/internal/experiments"
	"sperke/internal/obs"
)

// representative covers every layer the maporder checker polices:
// E2 drives the live pipeline and platform sessions, E4 the telemetry
// crowd path, E8/E9 the ABR planners, E11 tiling claims, E15 the player
// caches. Together a rerun touches sim, core, abr, qoe and obs.
var representative = []string{"E2", "E4", "E8", "E9", "E11", "E15"}

// renderAll runs the experiments and renders both the text and CSV
// forms into one byte stream.
func renderAll(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range representative {
		tbl, err := experiments.Run(id, seed)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		tbl.Render(&buf)
		tbl.RenderCSV(&buf)
	}
	return buf.Bytes()
}

// TestRerunsAreByteIdentical is the maporder determinism regression:
// the same seed must produce byte-identical rendered output on every
// run. Any map-iteration-order leak into a table row (what the
// maporder checker flags statically) shows up here as a diff.
func TestRerunsAreByteIdentical(t *testing.T) {
	first := renderAll(t, 7)
	if again := renderAll(t, 7); !bytes.Equal(first, again) {
		t.Fatalf("rerun diverged from first run (%d vs %d bytes) near:\n%s",
			len(first), len(again), firstDiff(first, again))
	}
}

// TestMetricsAreObservationOnly pins the PR 2 claim: wiring an obs
// registry into the suite must not change a single output byte.
func TestMetricsAreObservationOnly(t *testing.T) {
	experiments.SetObs(nil)
	plain := renderAll(t, 7)
	experiments.SetObs(obs.NewRegistry())
	t.Cleanup(func() { experiments.SetObs(nil) })
	instrumented := renderAll(t, 7)
	if !bytes.Equal(plain, instrumented) {
		t.Fatalf("metrics changed experiment output near:\n%s", firstDiff(plain, instrumented))
	}
}

// firstDiff renders a small window around the first diverging byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	win := func(s []byte) string {
		hi := i + 80
		if hi > len(s) {
			hi = len(s)
		}
		if lo > len(s) {
			return ""
		}
		return string(s[lo:hi])
	}
	return "a: …" + win(a) + "…\nb: …" + win(b) + "…"
}

package tiling_test

import (
	"fmt"

	"sperke/internal/sphere"
	"sperke/internal/tiling"
)

// ExampleVisibleTiles computes the super-chunk tile set of §3.1.2: the
// minimal tiles covering a predicted FoV, plus the first OOS ring that
// absorbs prediction error.
func ExampleVisibleTiles() {
	g := tiling.GridCellular // the 4×6 grid of [37]
	p := sphere.Equirectangular{}
	view := sphere.Orientation{Yaw: 0, Pitch: 0}

	fov := tiling.VisibleTiles(g, p, view, sphere.DefaultFoV)
	ring := tiling.Ring(g, fov, 1)
	fmt.Printf("FoV tiles: %d of %d\n", len(fov), g.Tiles())
	fmt.Printf("first OOS ring: %d tiles\n", len(ring))
	// Output:
	// FoV tiles: 6 of 24
	// first OOS ring: 10 tiles
}

// ExampleChunkID shows the chunk addressing of Fig. 2.
func ExampleChunkID() {
	c := tiling.ChunkID{Quality: 3, Tile: 7, Start: 4e9} // 4s in nanoseconds
	fmt.Println(c)
	// Output:
	// C(q=3, l=7, t=4s)
}

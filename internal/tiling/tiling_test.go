package tiling

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"sperke/internal/sphere"
)

func TestGridValidate(t *testing.T) {
	if err := (Grid{Rows: 2, Cols: 4}).Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	if err := (Grid{Rows: 0, Cols: 4}).Validate(); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestTileRowColRoundTrip(t *testing.T) {
	g := Grid{Rows: 4, Cols: 6}
	for id := TileID(0); int(id) < g.Tiles(); id++ {
		row, col := g.RowCol(id)
		if got := g.Tile(row, col); got != id {
			t.Fatalf("Tile(RowCol(%d)) = %d", id, got)
		}
	}
}

func TestTileColumnWraps(t *testing.T) {
	g := Grid{Rows: 2, Cols: 4}
	if g.Tile(0, 4) != g.Tile(0, 0) {
		t.Fatal("column did not wrap at +Cols")
	}
	if g.Tile(0, -1) != g.Tile(0, 3) {
		t.Fatal("column did not wrap at -1")
	}
}

func TestTileRowClamps(t *testing.T) {
	g := Grid{Rows: 2, Cols: 4}
	if g.Tile(-1, 0) != g.Tile(0, 0) {
		t.Fatal("row did not clamp at top")
	}
	if g.Tile(5, 0) != g.Tile(1, 0) {
		t.Fatal("row did not clamp at bottom")
	}
}

func TestRectPartitionsUnitSquare(t *testing.T) {
	g := Grid{Rows: 3, Cols: 5}
	var area float64
	for id := TileID(0); int(id) < g.Tiles(); id++ {
		u0, v0, u1, v1 := g.Rect(id)
		if u0 >= u1 || v0 >= v1 {
			t.Fatalf("tile %d rect degenerate", id)
		}
		area += (u1 - u0) * (v1 - v0)
	}
	if area < 0.999 || area > 1.001 {
		t.Fatalf("tile areas sum to %v, want 1", area)
	}
}

func TestTileAtMatchesRect(t *testing.T) {
	g := Grid{Rows: 4, Cols: 6}
	f := func(u, v float64) bool {
		u = frac(u)
		v = frac(v)
		id := g.TileAt(u, v)
		u0, v0, u1, v1 := g.Rect(id)
		return u >= u0-1e-12 && u < u1+1e-12 && v >= v0-1e-12 && v < v1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func frac(x float64) float64 {
	f := math.Abs(math.Mod(x, 1))
	if math.IsNaN(f) {
		return 0
	}
	return f
}

func TestVisibleTilesForwardView(t *testing.T) {
	g := GridPrototype // 2x4
	p := sphere.Equirectangular{}
	tiles := VisibleTiles(g, p, sphere.Orientation{}, sphere.DefaultFoV)
	if len(tiles) == 0 {
		t.Fatal("no visible tiles")
	}
	// A 100° wide FoV at yaw 0 must cover the two middle columns (each
	// column spans 90° of yaw) and not the back column exclusively.
	if len(tiles) >= g.Tiles() {
		t.Fatalf("forward view claims all %d tiles visible", len(tiles))
	}
	// The tile containing the exact view center must be present.
	u, v := p.Forward(sphere.Orientation{})
	center := g.TileAt(u, v)
	found := false
	for _, id := range tiles {
		if id == center {
			found = true
		}
	}
	if !found {
		t.Fatal("center tile missing from visible set")
	}
}

func TestVisibleTilesCoverEveryFoVDirection(t *testing.T) {
	// Property: every direction sampled strictly inside the FoV maps to a
	// tile in the visible set.
	g := GridCellular
	p := sphere.Equirectangular{}
	views := []sphere.Orientation{
		{}, {Yaw: 90}, {Yaw: -170, Pitch: 30}, {Pitch: 80}, {Pitch: -75, Yaw: 45},
	}
	for _, view := range views {
		set := make(map[TileID]bool)
		for _, id := range VisibleTiles(g, p, view, sphere.DefaultFoV) {
			set[id] = true
		}
		for i := -4; i <= 4; i++ {
			for j := -4; j <= 4; j++ {
				hx := float64(i) / 4 * sphere.DefaultFoV.Width / 2 * 0.99
				hy := float64(j) / 4 * sphere.DefaultFoV.Height / 2 * 0.99
				dir := frustumDirection(view, hx, hy)
				u, v := p.Forward(dir)
				if !set[g.TileAt(u, v)] {
					t.Fatalf("view %v: direction (%.0f,%.0f) tile %d not in visible set %v",
						view, hx, hy, g.TileAt(u, v), setKeys(set))
				}
			}
		}
	}
}

func setKeys(m map[TileID]bool) []TileID {
	var out []TileID
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestVisibleTilesAtPoleCoverAllColumns(t *testing.T) {
	// Looking straight up, the FoV surrounds the pole: in equirectangular
	// space that touches every column of the top row.
	g := GridCellular
	p := sphere.Equirectangular{}
	tiles := VisibleTiles(g, p, sphere.Orientation{Pitch: 90}, sphere.DefaultFoV)
	cols := make(map[int]bool)
	for _, id := range tiles {
		row, col := g.RowCol(id)
		if row == 0 {
			cols[col] = true
		}
	}
	if len(cols) != g.Cols {
		t.Fatalf("pole view covers %d/%d top-row columns", len(cols), g.Cols)
	}
}

func TestVisibleTilesCubeMap(t *testing.T) {
	g := Grid{Rows: 2, Cols: 3} // one tile per cube face
	p := sphere.CubeMap{}
	tiles := VisibleTiles(g, p, sphere.Orientation{}, sphere.FoV{Width: 60, Height: 60})
	// A 60° FoV looking forward fits inside the front face but spills to
	// adjacent faces only at most; the front-face tile must be present.
	found := false
	for _, id := range tiles {
		if id == 0 { // front face is atlas cell (0,0) = tile 0
			found = true
		}
	}
	if !found {
		t.Fatalf("front face not visible: %v", tiles)
	}
}

func TestRingBasic(t *testing.T) {
	g := GridCellular // 4x6
	fov := []TileID{g.Tile(1, 1), g.Tile(1, 2), g.Tile(2, 1), g.Tile(2, 2)}
	ring1 := Ring(g, fov, 1)
	for _, id := range ring1 {
		for _, f := range fov {
			if id == f {
				t.Fatalf("ring tile %d is in the FoV set", id)
			}
		}
	}
	// The 2x2 block's ring-1 is the surrounding 4x4 minus the block = 12.
	if len(ring1) != 12 {
		t.Fatalf("ring1 size = %d, want 12", len(ring1))
	}
}

func TestRingWrapsYaw(t *testing.T) {
	g := Grid{Rows: 1, Cols: 6}
	ring := Ring(g, []TileID{0}, 1)
	// Neighbors of column 0 on a 1-row wrap grid: columns 1 and 5.
	if len(ring) != 2 {
		t.Fatalf("ring = %v, want 2 tiles", ring)
	}
	has5 := false
	for _, id := range ring {
		if id == 5 {
			has5 = true
		}
	}
	if !has5 {
		t.Fatalf("ring %v missing wrapped column 5", ring)
	}
}

func TestRingZeroOrNegativeEmpty(t *testing.T) {
	g := GridPrototype
	if Ring(g, []TileID{0}, 0) != nil {
		t.Fatal("Ring dist=0 not empty")
	}
	if Ring(g, []TileID{0}, -1) != nil {
		t.Fatal("Ring dist<0 not empty")
	}
}

func TestDistancesCoverGrid(t *testing.T) {
	g := GridCellular
	d := Distances(g, []TileID{0})
	if len(d) != g.Tiles() {
		t.Fatalf("Distances covers %d tiles, want %d", len(d), g.Tiles())
	}
	if d[0] != 0 {
		t.Fatalf("seed distance = %d, want 0", d[0])
	}
	// On a 4x6 wrap grid the farthest tile from (0,0) is 3 steps
	// (Chebyshev with column wrap: max row dist 3, max col dist 3).
	maxD := 0
	for _, v := range d {
		if v > maxD {
			maxD = v
		}
	}
	if maxD != 3 {
		t.Fatalf("max distance = %d, want 3", maxD)
	}
}

func TestDistancesMonotoneUnderGrowingSet(t *testing.T) {
	// Property: adding tiles to the seed set can only decrease distances.
	g := GridCellular
	d1 := Distances(g, []TileID{0})
	d2 := Distances(g, []TileID{0, g.Tile(3, 3)})
	for id, v2 := range d2 {
		if v2 > d1[id] {
			t.Fatalf("tile %d distance grew from %d to %d after adding seeds", id, d1[id], v2)
		}
	}
}

func TestChunkIDIndexAndString(t *testing.T) {
	c := ChunkID{Quality: 2, Tile: 5, Start: 4 * time.Second}
	if c.Index(2*time.Second) != 2 {
		t.Fatalf("Index = %d, want 2", c.Index(2*time.Second))
	}
	if c.Index(0) != 0 {
		t.Fatal("Index with zero duration should be 0")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCenterInsideTileRect(t *testing.T) {
	g := GridCellular
	p := sphere.Equirectangular{}
	for id := TileID(0); int(id) < g.Tiles(); id++ {
		o := g.Center(id, p)
		u, v := p.Forward(o)
		if g.TileAt(u, v) != id {
			t.Fatalf("tile %d center maps to tile %d", id, g.TileAt(u, v))
		}
	}
}

// Package tiling implements Sperke's spatial segmentation substrate
// (Fig. 2 of the paper): a panoramic video is divided into a grid of
// tiles in projected texture space, each tile is encoded at multiple
// quality levels, and each (quality, tile) pair is split temporally into
// chunks. A chunk C(q, l, t) is the smallest downloadable unit.
//
// The package answers the two geometric questions FoV-guided streaming
// asks every scheduling round:
//
//  1. which tiles cover the (predicted) FoV, and
//  2. which tiles form the surrounding out-of-sight (OOS) rings that
//     absorb head-movement prediction error (§3.1.1).
package tiling

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sperke/internal/sphere"
)

// TileID identifies a tile within a Grid, row-major from the top-left.
type TileID int

// Grid is a Rows×Cols tile partition of the projected frame. The
// paper's prototype uses 2×4 on a 2K video (§3.5); its cellular study
// [37] uses 4×6.
type Grid struct {
	Rows, Cols int
}

// Common grids referenced by the paper and its citations.
var (
	GridPrototype = Grid{Rows: 2, Cols: 4} // §3.5 preliminary system
	GridCellular  = Grid{Rows: 4, Cols: 6} // [37]
)

// Validate reports an error for degenerate grids.
func (g Grid) Validate() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("tiling: invalid grid %dx%d", g.Rows, g.Cols)
	}
	return nil
}

// Tiles returns the number of tiles in the grid.
func (g Grid) Tiles() int { return g.Rows * g.Cols }

// Tile returns the TileID at (row, col), wrapping the column around the
// yaw seam and clamping the row at the poles.
func (g Grid) Tile(row, col int) TileID {
	if row < 0 {
		row = 0
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	col %= g.Cols
	if col < 0 {
		col += g.Cols
	}
	return TileID(row*g.Cols + col)
}

// RowCol returns the (row, col) of a tile.
func (g Grid) RowCol(id TileID) (row, col int) {
	return int(id) / g.Cols, int(id) % g.Cols
}

// Valid reports whether id addresses a tile of this grid.
func (g Grid) Valid(id TileID) bool { return id >= 0 && int(id) < g.Tiles() }

// Rect returns the tile's texture-space rectangle [u0,u1)×[v0,v1).
func (g Grid) Rect(id TileID) (u0, v0, u1, v1 float64) {
	row, col := g.RowCol(id)
	u0 = float64(col) / float64(g.Cols)
	u1 = float64(col+1) / float64(g.Cols)
	v0 = float64(row) / float64(g.Rows)
	v1 = float64(row+1) / float64(g.Rows)
	return u0, v0, u1, v1
}

// TileAt returns the tile containing texture coordinates (u, v),
// clamping coordinates into [0,1).
func (g Grid) TileAt(u, v float64) TileID {
	if u < 0 {
		u = 0
	}
	if v < 0 {
		v = 0
	}
	col := int(u * float64(g.Cols))
	row := int(v * float64(g.Rows))
	if col >= g.Cols {
		col = g.Cols - 1
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	return TileID(row*g.Cols + col)
}

// Center returns the viewing direction of the tile's center under the
// given projection.
func (g Grid) Center(id TileID, p sphere.Projection) sphere.Orientation {
	u0, v0, u1, v1 := g.Rect(id)
	return p.Inverse((u0+u1)/2, (v0+v1)/2)
}

// fovSamples controls the sampling density of VisibleTiles. A 17×17
// lattice over the frustum is dense enough that no tile bigger than
// FoV/16 can slip between samples; the prototype grids are far coarser
// than that.
const fovSamples = 17

// VisibleTiles returns the sorted set of tiles that cover any part of
// the FoV when looking along view, under projection p. The result is
// the minimal fetch set when head-movement prediction is perfect
// (§3.1.2, "super chunk" construction).
func VisibleTiles(g Grid, p sphere.Projection, view sphere.Orientation, fov sphere.FoV) []TileID {
	seen := make(map[TileID]bool)
	for i := 0; i < fovSamples; i++ {
		for j := 0; j < fovSamples; j++ {
			// Sample the frustum on a regular angular lattice including
			// the edges.
			hx := (float64(i)/(fovSamples-1) - 0.5) * fov.Width
			hy := (float64(j)/(fovSamples-1) - 0.5) * fov.Height
			dir := frustumDirection(view, hx, hy)
			u, v := p.Forward(dir)
			seen[g.TileAt(u, v)] = true
		}
	}
	out := make([]TileID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// frustumDirection returns the world direction at view-space angles
// (hx, hy) degrees from the view axis, honoring roll.
func frustumDirection(view sphere.Orientation, hx, hy float64) sphere.Orientation {
	// Build the direction in view space, then rotate into world space by
	// applying roll, pitch, yaw (the inverse order of sphere.angleInView).
	local := sphere.Orientation{Yaw: hx, Pitch: hy}.Direction()
	v := rotZ(local, view.Roll)
	v = rotX(v, view.Pitch)
	v = rotY(v, view.Yaw)
	return sphere.FromDirection(v)
}

func rotY(v sphere.Vec3, deg float64) sphere.Vec3 {
	s, c := sincos(deg)
	return sphere.Vec3{X: v.X*c + v.Z*s, Y: v.Y, Z: -v.X*s + v.Z*c}
}

// rotX applies the pitch rotation convention of sphere.Orientation:
// rotX(p) maps (0,0,1) to (0, sin p, cos p).
func rotX(v sphere.Vec3, deg float64) sphere.Vec3 {
	s, c := sincos(deg)
	return sphere.Vec3{X: v.X, Y: v.Y*c + v.Z*s, Z: -v.Y*s + v.Z*c}
}

func rotZ(v sphere.Vec3, deg float64) sphere.Vec3 {
	s, c := sincos(deg)
	return sphere.Vec3{X: v.X*c - v.Y*s, Y: v.X*s + v.Y*c, Z: v.Z}
}

func sincos(deg float64) (s, c float64) {
	r := deg * math.Pi / 180
	return math.Sin(r), math.Cos(r)
}

// Ring returns the tiles exactly dist grid steps (Chebyshev distance,
// with yaw wraparound) away from the given tile set. Ring(s, 1) is the
// first OOS ring around the FoV tiles; Ring(s, 2) the second; and so on.
// Tiles in the input set are never part of any ring.
func Ring(g Grid, set []TileID, dist int) []TileID {
	if dist <= 0 {
		return nil
	}
	in := make(map[TileID]bool, len(set))
	for _, id := range set {
		in[id] = true
	}
	// Compute grid distance from the set by BFS over the wrap-aware
	// neighborhood.
	distMap := distancesFrom(g, in)
	var out []TileID
	for id, d := range distMap {
		if d == dist {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Distances returns each tile's grid distance (Chebyshev steps with yaw
// wraparound) from the given set. Tiles in the set have distance 0.
// Used by OOS quality falloff: "the further away they are from X, the
// lower their qualities will be" (§3.1.1).
func Distances(g Grid, set []TileID) map[TileID]int {
	in := make(map[TileID]bool, len(set))
	for _, id := range set {
		in[id] = true
	}
	return distancesFrom(g, in)
}

func distancesFrom(g Grid, in map[TileID]bool) map[TileID]int {
	dist := make(map[TileID]int, g.Tiles())
	var frontier []TileID
	for id := range in {
		if g.Valid(id) {
			dist[id] = 0
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	for d := 1; len(frontier) > 0; d++ {
		var next []TileID
		for _, id := range frontier {
			row, col := g.RowCol(id)
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					nr := row + dr
					if nr < 0 || nr >= g.Rows {
						continue
					}
					n := g.Tile(nr, col+dc)
					if _, ok := dist[n]; !ok {
						dist[n] = d
						next = append(next, n)
					}
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	return dist
}

// ChunkID addresses a chunk C(q, l, t): quality level q, tile l, start
// time t (Fig. 2). Quality 0 is the lowest level of the ladder. For
// SVC-encoded content, Quality doubles as the layer index (§3.1.1).
type ChunkID struct {
	Quality int
	Tile    TileID
	Start   time.Duration
}

func (c ChunkID) String() string {
	return fmt.Sprintf("C(q=%d, l=%d, t=%v)", c.Quality, c.Tile, c.Start)
}

// Index returns the chunk's temporal index for a given chunk duration.
func (c ChunkID) Index(chunkDur time.Duration) int {
	if chunkDur <= 0 {
		return 0
	}
	return int(c.Start / chunkDur)
}

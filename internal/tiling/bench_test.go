package tiling

import (
	"testing"

	"sperke/internal/sphere"
)

func BenchmarkVisibleTiles(b *testing.B) {
	g := GridCellular
	p := sphere.Equirectangular{}
	view := sphere.Orientation{Yaw: 42, Pitch: 17}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		VisibleTiles(g, p, view, sphere.DefaultFoV)
	}
}

func BenchmarkRing(b *testing.B) {
	g := GridCellular
	fov := VisibleTiles(g, sphere.Equirectangular{}, sphere.Orientation{}, sphere.DefaultFoV)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Ring(g, fov, 2)
	}
}

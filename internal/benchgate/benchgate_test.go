package benchgate

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestParseGoldenFixtures runs the parser over captured `go test
// -bench` outputs — with and without -benchmem columns, with MB/s, and
// with parallel/sub-benchmark names — and compares the parse against
// committed .golden.json files.
func TestParseGoldenFixtures(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "sample_*.txt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sample fixtures under testdata/: %v", err)
	}
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".txt")
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			results, err := ParseBench(f)
			if err != nil {
				t.Fatalf("ParseBench: %v", err)
			}
			got, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			goldenPath := strings.TrimSuffix(path, ".txt") + ".golden.json"
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("parse mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestParseSpecifics pins the parser behaviors the golden files can't
// express as failures: suffix stripping, absent columns, bad input.
func TestParseSpecifics(t *testing.T) {
	results, err := ParseBench(strings.NewReader(
		"BenchmarkA/sub-case-8 \t 10 \t 5.0 ns/op\nBenchmarkB \t 20 \t 7.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "BenchmarkA/sub-case" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", results[0].Name)
	}
	if results[1].Name != "BenchmarkB" {
		t.Errorf("suffix-less name mangled: %q", results[1].Name)
	}
	if results[0].AllocsPerOp != -1 || results[0].BytesPerOp != -1 || results[0].MBPerSec != -1 {
		t.Errorf("absent columns should be -1: %+v", results[0])
	}

	for _, bad := range []string{
		"BenchmarkX 10 notanumber ns/op\n",
		"BenchmarkX ten 5 ns/op\n",
		"BenchmarkX 10 5 B/op 1 allocs/op\n", // no ns/op column
	} {
		if _, err := ParseBench(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line accepted: %q", bad)
		}
	}

	if got, err := ParseBench(strings.NewReader("PASS\nok  \tsperke\t1.0s\n")); err != nil || len(got) != 0 {
		t.Errorf("chatter-only input: %v results, err %v", got, err)
	}
}

func baseOf(entries map[string]Entry) *Baseline {
	return &Baseline{Benchmarks: entries}
}

func TestCompareGates(t *testing.T) {
	base := baseOf(map[string]Entry{
		"BenchmarkWarm": {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkCold": {NsPerOp: 200000, BytesPerOp: 110000, AllocsPerOp: 4},
	})
	ok := []Result{
		{Name: "BenchmarkWarm", NsPerOp: 120, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "BenchmarkCold", NsPerOp: 180000, BytesPerOp: 110000, AllocsPerOp: 4},
	}
	if regs, _ := Compare(base, ok, CompareConfig{}); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %+v", regs)
	}

	// >25% ns/op regression gates.
	slow := []Result{
		{Name: "BenchmarkWarm", NsPerOp: 126, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "BenchmarkCold", NsPerOp: 200000, BytesPerOp: 110000, AllocsPerOp: 4},
	}
	regs, _ := Compare(base, slow, CompareConfig{})
	if len(regs) != 1 || regs[0].Kind != "ns/op" || regs[0].Name != "BenchmarkWarm" {
		t.Fatalf("ns/op regression not caught: %+v", regs)
	}
	// ...but a wider tolerance admits it.
	if regs, _ := Compare(base, slow, CompareConfig{NsTolerance: 0.5}); len(regs) != 0 {
		t.Fatalf("tolerance override ignored: %+v", regs)
	}

	// Any allocs/op growth gates, even inside the ns tolerance.
	leaky := []Result{
		{Name: "BenchmarkWarm", NsPerOp: 100, BytesPerOp: 16, AllocsPerOp: 1},
		{Name: "BenchmarkCold", NsPerOp: 200000, BytesPerOp: 110000, AllocsPerOp: 4},
	}
	regs, _ = Compare(base, leaky, CompareConfig{})
	if len(regs) != 1 || regs[0].Kind != "allocs/op" {
		t.Fatalf("allocs/op regression not caught: %+v", regs)
	}

	// A baselined benchmark missing from the run gates, unless allowed.
	partial := []Result{{Name: "BenchmarkWarm", NsPerOp: 100, AllocsPerOp: 0}}
	regs, _ = Compare(base, partial, CompareConfig{})
	if len(regs) != 1 || regs[0].Kind != "missing" {
		t.Fatalf("missing benchmark not caught: %+v", regs)
	}
	if regs, _ := Compare(base, partial, CompareConfig{AllowMissing: true}); len(regs) != 0 {
		t.Fatalf("AllowMissing ignored: %+v", regs)
	}

	// A run without -benchmem cannot vouch for a pinned alloc budget.
	noMem := []Result{
		{Name: "BenchmarkWarm", NsPerOp: 100, BytesPerOp: -1, AllocsPerOp: -1},
		{Name: "BenchmarkCold", NsPerOp: 200000, BytesPerOp: -1, AllocsPerOp: -1},
	}
	regs, _ = Compare(base, noMem, CompareConfig{})
	if len(regs) != 2 || regs[0].Kind != "no-benchmem" {
		t.Fatalf("missing -benchmem columns not caught: %+v", regs)
	}

	// Improvements and unbaselined benchmarks are notes, not failures.
	better := []Result{
		{Name: "BenchmarkWarm", NsPerOp: 50, AllocsPerOp: 0},
		{Name: "BenchmarkCold", NsPerOp: 200000, AllocsPerOp: 4},
		{Name: "BenchmarkNew", NsPerOp: 10, AllocsPerOp: 0},
	}
	regs, notes := Compare(base, better, CompareConfig{})
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
	kinds := map[string]bool{}
	for _, n := range notes {
		kinds[n.Kind] = true
	}
	if !kinds["improved"] || !kinds["new"] {
		t.Fatalf("expected improved+new notes, got %+v", notes)
	}
}

// TestCompareCollapsesRepeatedRuns: with -count>1 the gate judges the
// mean ns/op across runs (one noisy sample must not fail the build)
// but the worst allocs/op (allocation counts are deterministic, so a
// single bad run is a real regression). Duplicates also produce one
// "new" note, not one per run.
func TestCompareCollapsesRepeatedRuns(t *testing.T) {
	base := baseOf(map[string]Entry{"BenchmarkHot": {NsPerOp: 100, AllocsPerOp: 1}})
	// Runs: 90, 160, 110 → mean 120, within 25% of 100. Last-write-wins
	// would judge 110 too, so include one where only the mean passes:
	// 160 alone would fail.
	runs := []Result{
		{Name: "BenchmarkHot", NsPerOp: 90, AllocsPerOp: 1},
		{Name: "BenchmarkHot", NsPerOp: 160, AllocsPerOp: 1},
		{Name: "BenchmarkHot", NsPerOp: 110, AllocsPerOp: 1},
		{Name: "BenchmarkFresh", NsPerOp: 10, AllocsPerOp: 0},
		{Name: "BenchmarkFresh", NsPerOp: 12, AllocsPerOp: 0},
	}
	regs, notes := Compare(base, runs, CompareConfig{})
	if len(regs) != 0 {
		t.Fatalf("mean within tolerance still flagged: %+v", regs)
	}
	newNotes := 0
	for _, n := range notes {
		if n.Kind == "new" {
			newNotes++
		}
	}
	if newNotes != 1 {
		t.Fatalf("repeated unbaselined benchmark noted %d times, want 1", newNotes)
	}

	// One run allocating more than baseline gates even when others don't.
	leakyOnce := []Result{
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 1},
	}
	regs, _ = Compare(base, leakyOnce, CompareConfig{})
	if len(regs) != 1 || regs[0].Kind != "allocs/op" {
		t.Fatalf("worst-run alloc growth not caught: %+v", regs)
	}
}

func TestBaselineRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_BASELINE.json")
	b := baseOf(map[string]Entry{"BenchmarkKeep": {NsPerOp: 9, AllocsPerOp: 1}})
	b.Note = "recorded on the dev box"
	b.Merge([]Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 32, AllocsPerOp: 2},
		{Name: "BenchmarkA", NsPerOp: 200, BytesPerOp: 48, AllocsPerOp: 3}, // -count=2: avg ns, worst allocs
		{Name: "BenchmarkKeep", NsPerOp: 10, BytesPerOp: 0, AllocsPerOp: 1},
	})
	if e := b.Benchmarks["BenchmarkA"]; e.NsPerOp != 150 || e.AllocsPerOp != 3 || e.BytesPerOp != 48 {
		t.Fatalf("duplicate merge wrong: %+v", e)
	}
	if e := b.Benchmarks["BenchmarkKeep"]; e.NsPerOp != 10 {
		t.Fatalf("re-run entry not replaced: %+v", e)
	}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != b.Note || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Benchmarks["BenchmarkA"] != b.Benchmarks["BenchmarkA"] {
		t.Fatalf("entry changed across round trip")
	}
	if _, err := LoadBaseline(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing baseline loaded")
	}
}

// Package benchgate is Sperke's continuous benchmark gate: a
// pure-stdlib parser for `go test -bench [-benchmem]` output plus a
// committed-baseline comparison that turns silent performance
// regressions into CI failures.
//
// The ROADMAP's north star is a serving stack that runs "as fast as
// the hardware allows"; the gate pins the numbers that claim so. The
// workflow (EXPERIMENTS.md E20):
//
//	go test -run=NONE -bench=. -benchmem . | sperke-benchgate -update BENCH_BASELINE.json
//	go test -run=NONE -bench=. -benchmem . | sperke-benchgate -compare BENCH_BASELINE.json
//
// Comparison fails (exit 1 in the CLI) when a benchmark regresses more
// than the ns/op tolerance (default 25%), when allocs/op grows at all
// (allocation counts are deterministic, so any increase is a real
// change), or when a baselined benchmark disappears from the run.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Bytes/allocs columns come from
// -benchmem; fields for absent columns are -1 so "not reported" is
// distinguishable from zero.
type Result struct {
	// Name is the full sub-benchmark path with the trailing -GOMAXPROCS
	// suffix stripped, e.g. "BenchmarkChunkStore/warm".
	Name        string
	Iterations  int64
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
	MBPerSec    float64
}

// ParseBench reads `go test -bench` output and returns the benchmark
// lines in input order, skipping headers (goos/goarch/pkg/cpu), test
// chatter and the PASS/ok trailer. It is tolerant of interleaved
// non-benchmark lines but rejects a malformed Benchmark line outright —
// a gate that half-parses its input is worse than one that fails.
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name iterations value unit [value unit]...";
		// a bare "BenchmarkFoo" progress line (from -v) has one field.
		if len(fields) < 4 || len(fields)%2 != 0 {
			if len(fields) == 1 {
				continue
			}
			return nil, fmt.Errorf("benchgate: malformed benchmark line %q", line)
		}
		res := Result{
			Name:        trimProcs(fields[0]),
			BytesPerOp:  -1,
			AllocsPerOp: -1,
			MBPerSec:    -1,
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad iteration count in %q: %w", line, err)
		}
		res.Iterations = iters
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q: %w", val, line, err)
			}
			switch unit {
			case "ns/op":
				res.NsPerOp = f
				sawNs = true
			case "B/op":
				res.BytesPerOp = int64(f)
			case "allocs/op":
				res.AllocsPerOp = int64(f)
			case "MB/s":
				res.MBPerSec = f
			default:
				// Custom b.ReportMetric units ride along unparsed.
			}
		}
		if !sawNs {
			return nil, fmt.Errorf("benchgate: benchmark line %q has no ns/op column", line)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	return out, nil
}

// trimProcs strips the trailing -GOMAXPROCS suffix ("-8" in
// "BenchmarkX/sub-8") so names are stable across machines. Only an
// all-digit final segment is stripped.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Entry is one benchmark's committed baseline numbers.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_BASELINE.json shape.
type Baseline struct {
	// Note documents how the baseline was recorded (command, machine
	// class) for whoever regenerates it next.
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = make(map[string]Entry)
	}
	return &b, nil
}

// Merge folds parsed results into the baseline, replacing entries for
// benchmarks present in results and keeping the rest — so baselines
// for different bench patterns can be accumulated across runs.
// Duplicate names in results (e.g. -count>1) average their ns/op and
// keep the worst (highest) allocs/op and B/op, which is the
// conservative side for a gate.
func (b *Baseline) Merge(results []Result) {
	if b.Benchmarks == nil {
		b.Benchmarks = make(map[string]Entry)
	}
	seen := make(map[string]int)
	for _, r := range results {
		e, dup := b.Benchmarks[r.Name]
		n := seen[r.Name]
		if !dup || n == 0 {
			b.Benchmarks[r.Name] = Entry{NsPerOp: r.NsPerOp, BytesPerOp: r.BytesPerOp, AllocsPerOp: r.AllocsPerOp}
			seen[r.Name] = 1
			continue
		}
		e.NsPerOp = (e.NsPerOp*float64(n) + r.NsPerOp) / float64(n+1)
		if r.AllocsPerOp > e.AllocsPerOp {
			e.AllocsPerOp = r.AllocsPerOp
		}
		if r.BytesPerOp > e.BytesPerOp {
			e.BytesPerOp = r.BytesPerOp
		}
		b.Benchmarks[r.Name] = e
		seen[r.Name] = n + 1
	}
}

// Save writes the baseline as stable, human-diffable JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareConfig tunes the gate. The zero value means: 25% ns/op
// tolerance, zero alloc slack, missing benchmarks fail.
type CompareConfig struct {
	// NsTolerance is the allowed fractional ns/op growth before a
	// benchmark counts as regressed; 0 defaults to 0.25 (>25% fails).
	NsTolerance float64
	// AllocSlack is the allowed absolute allocs/op growth; the default
	// 0 fails on any increase (allocation counts are deterministic).
	AllocSlack int64
	// AllowMissing skips baselined benchmarks absent from the run
	// instead of failing — for gating partial local runs.
	AllowMissing bool
}

// Finding is one comparison outcome. Regressions gate; notes inform.
type Finding struct {
	Name string
	Kind string // "ns/op", "allocs/op", "missing", "no-benchmem", "improved", "new"
	Base float64
	Cur  float64
	Msg  string
}

// Compare checks results against the baseline and returns gating
// regressions plus informational notes (improvements, new benchmarks),
// both sorted by benchmark name. Duplicate result names (-count>1)
// are collapsed the way Merge records them — ns/op averaged across
// runs, worst allocs/op and B/op kept — so the ns gate judges the
// mean, not whichever run happened to land last.
func Compare(base *Baseline, results []Result, cfg CompareConfig) (regressions, notes []Finding) {
	tol := cfg.NsTolerance
	if tol <= 0 {
		tol = 0.25
	}
	cur := make(map[string]Result, len(results))
	runs := make(map[string]int, len(results))
	for _, r := range results {
		prev, dup := cur[r.Name]
		n := runs[r.Name]
		if !dup || n == 0 {
			cur[r.Name] = r
			runs[r.Name] = 1
			continue
		}
		prev.NsPerOp = (prev.NsPerOp*float64(n) + r.NsPerOp) / float64(n+1)
		if r.AllocsPerOp > prev.AllocsPerOp {
			prev.AllocsPerOp = r.AllocsPerOp
		}
		if r.BytesPerOp > prev.BytesPerOp {
			prev.BytesPerOp = r.BytesPerOp
		}
		cur[r.Name] = prev
		runs[r.Name] = n + 1
	}
	for name, e := range base.Benchmarks {
		r, ok := cur[name]
		if !ok {
			if !cfg.AllowMissing {
				regressions = append(regressions, Finding{
					Name: name, Kind: "missing",
					Msg: fmt.Sprintf("%s: baselined benchmark missing from this run", name),
				})
			}
			continue
		}
		if limit := e.NsPerOp * (1 + tol); r.NsPerOp > limit {
			regressions = append(regressions, Finding{
				Name: name, Kind: "ns/op", Base: e.NsPerOp, Cur: r.NsPerOp,
				Msg: fmt.Sprintf("%s: %.1f ns/op exceeds baseline %.1f ns/op by more than %.0f%%",
					name, r.NsPerOp, e.NsPerOp, tol*100),
			})
		} else if r.NsPerOp < e.NsPerOp*(1-tol) {
			notes = append(notes, Finding{
				Name: name, Kind: "improved", Base: e.NsPerOp, Cur: r.NsPerOp,
				Msg: fmt.Sprintf("%s: %.1f ns/op improved on baseline %.1f ns/op — consider -update",
					name, r.NsPerOp, e.NsPerOp),
			})
		}
		if e.AllocsPerOp >= 0 {
			switch {
			case r.AllocsPerOp < 0:
				regressions = append(regressions, Finding{
					Name: name, Kind: "no-benchmem", Base: float64(e.AllocsPerOp),
					Msg: fmt.Sprintf("%s: baseline pins %d allocs/op but the run lacks -benchmem columns",
						name, e.AllocsPerOp),
				})
			case r.AllocsPerOp > e.AllocsPerOp+cfg.AllocSlack:
				regressions = append(regressions, Finding{
					Name: name, Kind: "allocs/op", Base: float64(e.AllocsPerOp), Cur: float64(r.AllocsPerOp),
					Msg: fmt.Sprintf("%s: %d allocs/op exceeds baseline %d allocs/op",
						name, r.AllocsPerOp, e.AllocsPerOp),
				})
			}
		}
	}
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			notes = append(notes, Finding{
				Name: name, Kind: "new",
				Msg: fmt.Sprintf("%s: not in baseline — run -update to pin it", name),
			})
		}
	}
	byName := func(fs []Finding) {
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].Name != fs[j].Name {
				return fs[i].Name < fs[j].Name
			}
			return fs[i].Kind < fs[j].Kind
		})
	}
	byName(regressions)
	byName(notes)
	return regressions, notes
}

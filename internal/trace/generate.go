package trace

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/sphere"
)

// regime is the head-movement state of the generator's Markov model.
type regime int

const (
	fixation regime = iota // micro-drift around the current target
	pursuit                // smooth bounded-speed move to a new target
	saccade                // fast reorientation
)

// SampleRate is the generated sensor rate: 50 Hz, the rate the paper's
// app collects (§3.2).
const SampleRate = 50

// Generate synthesizes one viewing session: the user's head trace while
// watching a video with the given attention schedule.
//
// The model: viewers fixate on a hotspot most of the time (slow drift),
// periodically pursue a newly interesting hotspot at a bounded speed
// scaled by the user's SpeedScale, and occasionally saccade to an
// idiosyncratic direction. Low-engagement viewers wander more. The
// context's yaw range is enforced throughout. The result reproduces the
// two properties the paper builds on: short-horizon predictability from
// recent motion [16, 37] and cross-user correlation through hotspots.
func Generate(rng *rand.Rand, profile UserProfile, attention *Attention, dur time.Duration) *HeadTrace {
	dt := time.Second / SampleRate
	n := int(dur/dt) + 1
	h := &HeadTrace{Samples: make([]Sample, 0, n)}

	speed := profile.SpeedScale
	if speed <= 0 {
		speed = 1
	}
	yawRange := profile.Context.YawRange()
	engage := profile.Context.Engaged
	if engage <= 0 {
		engage = 0.7
	}

	cur := sphere.Orientation{Yaw: rng.NormFloat64() * 20}
	target := cur
	state := fixation
	// Base speeds in degrees/second.
	pursuitSpeed := 35 * speed
	saccadeSpeed := 220 * speed

	clampYaw := func(o sphere.Orientation) sphere.Orientation {
		if o.Yaw > yawRange {
			o.Yaw = yawRange
		}
		if o.Yaw < -yawRange {
			o.Yaw = -yawRange
		}
		return o.Normalized()
	}

	retarget := func(ts time.Duration) {
		hs := attention.ActiveHotspots(ts)
		// Engaged viewers follow hotspots; disengaged ones wander.
		if len(hs) > 0 && rng.Float64() < engage {
			pick := hs[0]
			if len(hs) > 1 {
				// Weight by pull.
				total := 0.0
				for _, x := range hs {
					total += x.Pull
				}
				r := rng.Float64() * total
				for _, x := range hs {
					r -= x.Pull
					if r <= 0 {
						pick = x
						break
					}
				}
			}
			// Personal offset around the hotspot.
			target = clampYaw(sphere.Orientation{
				Yaw:   pick.Center.Yaw + rng.NormFloat64()*8,
				Pitch: pick.Center.Pitch + rng.NormFloat64()*6,
			})
			return
		}
		target = clampYaw(sphere.Orientation{
			Yaw:   cur.Yaw + rng.NormFloat64()*30,
			Pitch: rng.NormFloat64() * 15,
		})
	}
	retarget(0)

	for i := 0; i < n; i++ {
		ts := time.Duration(i) * dt
		h.Samples = append(h.Samples, Sample{At: ts, View: cur})

		// State transitions, evaluated each ~200 ms on average.
		if rng.Float64() < float64(dt)/float64(200*time.Millisecond) {
			r := rng.Float64()
			switch {
			case r < 0.10: // rare saccade
				state = saccade
				retarget(ts)
				// Saccades sometimes go to idiosyncratic directions.
				if rng.Float64() > engage {
					target = clampYaw(sphere.Orientation{
						Yaw:   rng.Float64()*2*yawRange - yawRange,
						Pitch: rng.NormFloat64() * 25,
					})
				}
			case r < 0.45:
				state = pursuit
				retarget(ts)
			default:
				state = fixation
			}
		}

		// Advance toward the target.
		dist := sphere.AngularDistance(cur, target)
		var stepDeg float64
		switch state {
		case fixation:
			stepDeg = 4 * dt.Seconds() // micro-drift
			// Fixation jitter.
			cur = clampYaw(sphere.Orientation{
				Yaw:   cur.Yaw + rng.NormFloat64()*0.15,
				Pitch: cur.Pitch + rng.NormFloat64()*0.1,
			})
		case pursuit:
			stepDeg = pursuitSpeed * dt.Seconds()
			// Humans cover large reorientations with a saccade rather
			// than a long slow pursuit.
			if dist > 60 {
				stepDeg = saccadeSpeed * dt.Seconds()
			}
		case saccade:
			stepDeg = saccadeSpeed * dt.Seconds()
		}
		if dist > 1e-6 {
			t := stepDeg / dist
			if t > 1 {
				t = 1
			}
			cur = clampYaw(sphere.Lerp(cur, target, t))
		} else if state != fixation {
			state = fixation
		}
	}
	return h
}

// Population is a set of viewer profiles with realistic diversity.
type Population struct {
	Users []UserProfile
}

// NewPopulation builds n users with varied speed scales and contexts.
func NewPopulation(rng *rand.Rand, n int) *Population {
	p := &Population{Users: make([]UserProfile, n)}
	for i := range p.Users {
		// Log-normal-ish speed distribution: most near 1, some slow
		// (elderly, §3.2) and some fast.
		speed := 0.5 + rng.Float64()
		if rng.Float64() < 0.15 {
			speed *= 0.5 // slow movers
		}
		ctx := Context{
			Pose:    Pose(rng.Intn(3)),
			Mode:    WatchMode(rng.Intn(2)),
			Mobile:  rng.Float64() < 0.3,
			Indoors: rng.Float64() < 0.7,
			Engaged: 0.4 + 0.6*rng.Float64(),
		}
		p.Users[i] = UserProfile{
			ID:         fmt.Sprintf("user-%03d", i),
			SpeedScale: speed,
			Context:    ctx,
		}
	}
	return p
}

// Sessions generates one head trace per user for the same video — the
// dataset the crowd-sourced predictor trains on (§3.2).
func (p *Population) Sessions(rng *rand.Rand, attention *Attention, dur time.Duration) []*HeadTrace {
	out := make([]*HeadTrace, len(p.Users))
	for i, u := range p.Users {
		// Derive a per-user RNG so adding users doesn't shift others.
		userRNG := rand.New(rand.NewSource(rng.Int63() ^ int64(i*2654435761)))
		out[i] = Generate(userRNG, u, attention, dur)
	}
	return out
}

package trace

import (
	"math/rand"
	"testing"
	"time"

	"sperke/internal/sphere"
)

func genTrace(t *testing.T, seed int64, profile UserProfile, dur time.Duration) *HeadTrace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	att := GenerateAttention(rand.New(rand.NewSource(seed+1000)), dur)
	return Generate(rng, profile, att, dur)
}

func TestHeadTraceAtEmptyAndClamp(t *testing.T) {
	var h HeadTrace
	if h.At(time.Second) != (sphere.Orientation{}) {
		t.Fatal("empty trace not zero orientation")
	}
	h.Samples = []Sample{
		{At: time.Second, View: sphere.Orientation{Yaw: 10}},
		{At: 2 * time.Second, View: sphere.Orientation{Yaw: 20}},
	}
	if h.At(0).Yaw != 10 {
		t.Fatal("before-start not clamped to first sample")
	}
	if h.At(time.Hour).Yaw != 20 {
		t.Fatal("after-end not clamped to last sample")
	}
}

func TestHeadTraceAtInterpolates(t *testing.T) {
	h := HeadTrace{Samples: []Sample{
		{At: 0, View: sphere.Orientation{Yaw: 0}},
		{At: time.Second, View: sphere.Orientation{Yaw: 10}},
	}}
	got := h.At(500 * time.Millisecond)
	if got.Yaw < 4.9 || got.Yaw > 5.1 {
		t.Fatalf("midpoint yaw = %v, want ≈5", got.Yaw)
	}
}

func TestGenerateSampleCountAndRate(t *testing.T) {
	h := genTrace(t, 1, UserProfile{ID: "u", SpeedScale: 1}, 10*time.Second)
	want := 10*SampleRate + 1
	if len(h.Samples) != want {
		t.Fatalf("samples = %d, want %d", len(h.Samples), want)
	}
	dt := h.Samples[1].At - h.Samples[0].At
	if dt != time.Second/SampleRate {
		t.Fatalf("sample interval = %v, want %v", dt, time.Second/SampleRate)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTrace(t, 5, UserProfile{ID: "u", SpeedScale: 1}, 5*time.Second)
	b := genTrace(t, 5, UserProfile{ID: "u", SpeedScale: 1}, 5*time.Second)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same-seed traces diverge")
		}
	}
}

func TestGenerateBoundedVelocity(t *testing.T) {
	h := genTrace(t, 2, UserProfile{ID: "u", SpeedScale: 1}, 30*time.Second)
	v := h.MaxVelocity()
	if v <= 0 {
		t.Fatal("trace never moves")
	}
	// Saccade ceiling 220°/s at scale 1 (plus jitter slack).
	if v > 300 {
		t.Fatalf("max velocity %v°/s exceeds human bounds", v)
	}
}

func TestGenerateShortHorizonPredictability(t *testing.T) {
	// The core empirical property from [16,37]: over ~500 ms the view
	// usually moves only a few degrees — last-value prediction is mostly
	// inside a half-FoV.
	h := genTrace(t, 3, UserProfile{ID: "u", SpeedScale: 1}, 60*time.Second)
	within := 0
	total := 0
	for ts := time.Second; ts < 59*time.Second; ts += 200 * time.Millisecond {
		d := sphere.AngularDistance(h.At(ts), h.At(ts+500*time.Millisecond))
		total++
		if d < 30 {
			within++
		}
	}
	if frac := float64(within) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of 500ms horizons within 30°, want ≥80%%", frac*100)
	}
}

func TestGenerateSpeedScaleMatters(t *testing.T) {
	slow := genTrace(t, 4, UserProfile{ID: "s", SpeedScale: 0.4}, 60*time.Second)
	fast := genTrace(t, 4, UserProfile{ID: "f", SpeedScale: 1.6}, 60*time.Second)
	if slow.MaxVelocity() >= fast.MaxVelocity() {
		t.Fatalf("slow user max %v not below fast user %v", slow.MaxVelocity(), fast.MaxVelocity())
	}
}

func TestGenerateLyingYawRestricted(t *testing.T) {
	p := UserProfile{ID: "lying", SpeedScale: 1, Context: Context{Pose: Lying}}
	h := genTrace(t, 6, p, 120*time.Second)
	for _, s := range h.Samples {
		if s.View.Yaw > 111 || s.View.Yaw < -111 {
			t.Fatalf("lying viewer reached yaw %v, beyond the §3.2 bound", s.View.Yaw)
		}
	}
}

func TestContextYawRange(t *testing.T) {
	if (Context{Pose: Lying}).YawRange() >= (Context{Pose: Standing, Mode: Headset}).YawRange() {
		t.Fatal("lying range not smaller than standing")
	}
}

func TestPoseString(t *testing.T) {
	if Sitting.String() != "sitting" || Lying.String() != "lying" {
		t.Fatal("bad pose strings")
	}
	if Pose(9).String() != "pose(9)" {
		t.Fatal("bad unknown pose string")
	}
}

func TestAttentionSchedulesCoverDuration(t *testing.T) {
	att := GenerateAttention(rand.New(rand.NewSource(8)), time.Minute)
	if len(att.Hotspots) == 0 {
		t.Fatal("no hotspots generated")
	}
	// At several probe times there should be at least one active hotspot.
	for ts := time.Second; ts < 55*time.Second; ts += 5 * time.Second {
		if len(att.ActiveHotspots(ts)) == 0 {
			t.Fatalf("no active hotspot at %v", ts)
		}
	}
}

func TestHotspotDrift(t *testing.T) {
	h := Hotspot{
		Center:   sphere.Orientation{Yaw: 0},
		Start:    0,
		Duration: 10 * time.Second,
		Drift:    5,
	}
	c, ok := h.ActiveAt(2 * time.Second)
	if !ok {
		t.Fatal("hotspot inactive at 2s")
	}
	if c.Yaw < 9.9 || c.Yaw > 10.1 {
		t.Fatalf("drifted yaw = %v, want 10", c.Yaw)
	}
	if _, ok := h.ActiveAt(11 * time.Second); ok {
		t.Fatal("hotspot active after end")
	}
}

func TestCrowdCorrelation(t *testing.T) {
	// Users watching the same video are drawn to the same hotspots: the
	// mean pairwise angular distance at a probe time should be far below
	// the 90° expected for independent uniform viewers.
	rng := rand.New(rand.NewSource(11))
	att := GenerateAttention(rand.New(rand.NewSource(12)), 30*time.Second)
	pop := NewPopulation(rng, 12)
	sessions := pop.Sessions(rng, att, 30*time.Second)
	var sum float64
	var pairs int
	for ts := 5 * time.Second; ts < 28*time.Second; ts += 2 * time.Second {
		for i := 0; i < len(sessions); i++ {
			for j := i + 1; j < len(sessions); j++ {
				sum += sphere.AngularDistance(sessions[i].At(ts), sessions[j].At(ts))
				pairs++
			}
		}
	}
	mean := sum / float64(pairs)
	if mean > 70 {
		t.Fatalf("mean pairwise distance %v°, crowd not correlated", mean)
	}
}

func TestNewPopulationDiversity(t *testing.T) {
	pop := NewPopulation(rand.New(rand.NewSource(13)), 50)
	if len(pop.Users) != 50 {
		t.Fatalf("population size %d", len(pop.Users))
	}
	speeds := map[bool]int{}
	ids := map[string]bool{}
	for _, u := range pop.Users {
		speeds[u.SpeedScale < 0.75]++
		if ids[u.ID] {
			t.Fatalf("duplicate user ID %s", u.ID)
		}
		ids[u.ID] = true
		if u.SpeedScale <= 0 {
			t.Fatal("non-positive speed scale")
		}
	}
	if speeds[true] == 0 || speeds[false] == 0 {
		t.Fatal("population lacks speed diversity")
	}
}

func TestVelocityAtStationaryTrace(t *testing.T) {
	h := HeadTrace{Samples: []Sample{
		{At: 0, View: sphere.Orientation{Yaw: 45}},
		{At: time.Second, View: sphere.Orientation{Yaw: 45}},
		{At: 2 * time.Second, View: sphere.Orientation{Yaw: 45}},
	}}
	if v := h.VelocityAt(time.Second); v > 1e-9 {
		t.Fatalf("stationary velocity = %v", v)
	}
}

// Package trace synthesizes the viewing behaviour data Sperke's
// head-movement prediction learns from (§3.2). The paper's agenda rests
// on crowd-sourced "big data" collected from a player app in the wild;
// offline we generate it: a regime-switching head-movement model
// (fixation / smooth pursuit / saccade, matching the short-horizon
// predictability reported by [16, 37]), per-video attention hotspots
// that correlate viewers with each other (the crowd signal), and user
// profiles carrying the §3.2 contextual features — head-speed scale,
// pose, watching mode.
package trace

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/sphere"
)

// Sample is one sensor reading: the viewer's orientation at a time.
type Sample struct {
	At   time.Duration
	View sphere.Orientation
}

// HeadTrace is a time series of orientation samples at a fixed rate
// (the paper collects 50 Hz readings, §3.2).
type HeadTrace struct {
	Samples []Sample
}

// Duration returns the time of the last sample.
func (h *HeadTrace) Duration() time.Duration {
	if len(h.Samples) == 0 {
		return 0
	}
	return h.Samples[len(h.Samples)-1].At
}

// At returns the interpolated orientation at time ts, clamping outside
// the trace.
func (h *HeadTrace) At(ts time.Duration) sphere.Orientation {
	n := len(h.Samples)
	if n == 0 {
		return sphere.Orientation{}
	}
	if ts <= h.Samples[0].At {
		return h.Samples[0].View
	}
	if ts >= h.Samples[n-1].At {
		return h.Samples[n-1].View
	}
	// Samples are uniform; locate by index then refine.
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if h.Samples[mid].At <= ts {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := h.Samples[lo], h.Samples[hi]
	span := b.At - a.At
	if span <= 0 {
		return a.View
	}
	t := float64(ts-a.At) / float64(span)
	return sphere.Lerp(a.View, b.View, t)
}

// VelocityAt returns the angular speed in degrees/second around ts,
// estimated over a 100 ms window.
func (h *HeadTrace) VelocityAt(ts time.Duration) float64 {
	const w = 50 * time.Millisecond
	a := h.At(ts - w)
	b := h.At(ts + w)
	return sphere.AngularDistance(a, b) / (2 * w.Seconds())
}

// MaxVelocity returns the peak angular speed over the whole trace,
// sampled at 100 ms intervals — the per-user speed bound §3.2 proposes
// learning ("elderly people tend to move their heads slower than
// teenagers").
func (h *HeadTrace) MaxVelocity() float64 {
	var vmax float64
	for ts := time.Duration(0); ts <= h.Duration(); ts += 100 * time.Millisecond {
		if v := h.VelocityAt(ts); v > vmax {
			vmax = v
		}
	}
	return vmax
}

// Pose is the viewer's body position (§3.2 contextual information).
type Pose int

// Poses the paper's app would label.
const (
	Sitting Pose = iota
	Standing
	Lying
)

func (p Pose) String() string {
	switch p {
	case Sitting:
		return "sitting"
	case Standing:
		return "standing"
	case Lying:
		return "lying"
	default:
		return fmt.Sprintf("pose(%d)", int(p))
	}
}

// WatchMode distinguishes bare-smartphone from headset viewing (§3.2).
type WatchMode int

// Watch modes.
const (
	BareSmartphone WatchMode = iota
	Headset
)

// Context carries the lightweight contextual features of §3.2.
type Context struct {
	Pose    Pose
	Mode    WatchMode
	Mobile  bool // stationary vs mobile
	Indoors bool
	Engaged float64 // engagement level in [0,1] from reaction sensing [15]
}

// YawRange returns the reachable yaw half-range in degrees given the
// context: lying viewers cannot comfortably look 180° behind (§3.2).
func (c Context) YawRange() float64 {
	if c.Pose == Lying {
		return 110
	}
	if c.Pose == Sitting && c.Mode == BareSmartphone {
		return 150
	}
	return 180
}

// UserProfile describes one viewer in the population.
type UserProfile struct {
	ID string
	// SpeedScale multiplies the base head-movement speed; learned
	// per-user in §3.2 to bound fetch latency for distant tiles.
	SpeedScale float64
	Context    Context
}

// Hotspot is a region of interest in the video that attracts viewers'
// gaze over an interval — the cross-user structure the crowd predictor
// of §3.2 exploits.
type Hotspot struct {
	Center   sphere.Orientation
	Start    time.Duration
	Duration time.Duration
	// Drift is the hotspot's own angular velocity (a moving subject),
	// degrees/second in yaw.
	Drift float64
	// Pull is the probability per decision epoch that a viewer
	// re-targets this hotspot.
	Pull float64
}

// ActiveAt reports whether the hotspot is active at ts and its current
// center (it drifts while active).
func (h Hotspot) ActiveAt(ts time.Duration) (sphere.Orientation, bool) {
	if ts < h.Start || ts >= h.Start+h.Duration {
		return sphere.Orientation{}, false
	}
	el := (ts - h.Start).Seconds()
	c := h.Center
	c.Yaw = sphere.NormalizeYaw(c.Yaw + h.Drift*el)
	return c, true
}

// Attention is a video's schedule of hotspots.
type Attention struct {
	Hotspots []Hotspot
}

// GenerateAttention builds a random hotspot schedule for a video of the
// given duration: at any time 1–2 hotspots are active, mostly near the
// equator (content is horizon-centric), each lasting 5–15 s.
func GenerateAttention(rng *rand.Rand, dur time.Duration) *Attention {
	var a Attention
	prevYaw := rng.Float64()*360 - 180
	for t := time.Duration(0); t < dur; {
		// Consecutive hotspots are spatially correlated: real scenes move
		// the action gradually, which is what lets viewers track it.
		prevYaw = sphere.NormalizeYaw(prevYaw + rng.NormFloat64()*50)
		h := Hotspot{
			Center: sphere.Orientation{
				Yaw:   prevYaw,
				Pitch: rng.NormFloat64() * 15,
			}.Normalized(),
			Start:    t,
			Duration: time.Duration(5+rng.Float64()*10) * time.Second,
			Drift:    rng.NormFloat64() * 3,
			Pull:     0.5 + rng.Float64()*0.4,
		}
		a.Hotspots = append(a.Hotspots, h)
		// Occasionally overlap a second hotspot.
		if rng.Float64() < 0.4 {
			h2 := h
			h2.Center = sphere.Orientation{
				Yaw:   sphere.NormalizeYaw(h.Center.Yaw + 90 + rng.Float64()*90),
				Pitch: rng.NormFloat64() * 15,
			}.Normalized()
			h2.Pull = 0.3
			a.Hotspots = append(a.Hotspots, h2)
		}
		t += h.Duration
	}
	return &a
}

// ActiveHotspots returns the hotspots active at ts with their drifted
// centers.
func (a *Attention) ActiveHotspots(ts time.Duration) []Hotspot {
	var out []Hotspot
	for _, h := range a.Hotspots {
		if c, ok := h.ActiveAt(ts); ok {
			h.Center = c
			out = append(out, h)
		}
	}
	return out
}

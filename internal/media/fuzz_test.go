package media

import (
	"bytes"
	"testing"

	"sperke/internal/tiling"
)

// FuzzReadSegment hardens the segment decoder against arbitrary wire
// bytes: it must never panic, and any segment it accepts must re-encode
// to exactly the bytes it consumed.
func FuzzReadSegment(f *testing.F) {
	for i, payloadLen := range []int{0, 1, 100, 4096} {
		h := SegmentHeader{VideoID: "seed", Quality: i, Tile: tiling.TileID(i), Flags: uint8(i)}
		var buf bytes.Buffer
		if err := WriteSegment(&buf, h, SyntheticPayload(uint64(i), payloadLen)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SPRK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := ReadSegment(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSegment(&buf, h, payload); err != nil {
			t.Fatalf("accepted segment does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encoded segment differs from consumed bytes")
		}
	})
}

package media

import (
	"math"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/trace"
)

// VersionScheme models the "versioning" alternative to tiling (§2): the
// video is pre-rendered into many versions, each with a different
// high-quality region centered on one viewing direction; the player
// picks the version matching the user's head orientation. Oculus 360's
// offset-cube scheme maintains up to 88 versions of the same video [46].
type VersionScheme struct {
	// YawVersions and PitchVersions partition the orientation space.
	YawVersions, PitchVersions int
	// HQFraction is the fraction of the panorama kept at full quality in
	// each version; the rest is stored downgraded.
	HQFraction float64
	// LQFactor is the rate multiplier applied to the non-HQ region.
	LQFactor float64
}

// OculusScheme reproduces the Oculus 360 figure the paper quotes:
// 22 yaw × 4 pitch = 88 versions [46].
var OculusScheme = VersionScheme{
	YawVersions:   22,
	PitchVersions: 4,
	HQFraction:    0.25,
	LQFactor:      0.25,
}

// Versions returns the number of stored versions per quality level.
func (s VersionScheme) Versions() int { return s.YawVersions * s.PitchVersions }

// VersionBytes returns the stored size of one version of one chunk
// interval at quality q: the HQ region at full rate plus the rest
// downgraded.
func (s VersionScheme) VersionBytes(v *Video, q int, start time.Duration) int64 {
	pan := float64(v.PanoramaBytes(q, start))
	return int64(pan*s.HQFraction + pan*(1-s.HQFraction)*s.LQFactor)
}

// StorageBytes returns the full server-side footprint of the versioning
// approach for the video: every version of every chunk at every quality.
// Compare with Video.TotalBytes (tiling): this is the §2 trade-off —
// versioning shifts complexity from the client to server storage.
func (s VersionScheme) StorageBytes(v *Video) int64 {
	var sum int64
	for i := 0; i < v.NumChunks(); i++ {
		start := v.ChunkStart(i)
		for q := 0; q < len(v.Ladder); q++ {
			sum += s.VersionBytes(v, q, start) * int64(s.Versions())
		}
	}
	return sum
}

// DeliveryBytes returns the bytes delivered for one chunk interval when
// the viewer watches via versioning: exactly one version.
func (s VersionScheme) DeliveryBytes(v *Video, q int, start time.Duration) int64 {
	return s.VersionBytes(v, q, start)
}

// StorageRatio returns versioning storage divided by tiling storage for
// the same video — the overhead factor the paper's §2 argues against.
func (s VersionScheme) StorageRatio(v *Video) float64 {
	t := v.TotalBytes()
	if t == 0 {
		return math.Inf(1)
	}
	return float64(s.StorageBytes(v)) / float64(t)
}

// VersionFor returns the (yaw, pitch) version cell a viewing direction
// selects: versioning players pick the stored version whose high-quality
// region faces the viewer (§2).
func (s VersionScheme) VersionFor(o sphere.Orientation) (yawIdx, pitchIdx int) {
	o = o.Normalized()
	yawIdx = int((o.Yaw + 180) / 360 * float64(s.YawVersions))
	if yawIdx >= s.YawVersions {
		yawIdx = s.YawVersions - 1
	}
	pitchIdx = int((o.Pitch + 90) / 180 * float64(s.PitchVersions))
	if pitchIdx >= s.PitchVersions {
		pitchIdx = s.PitchVersions - 1
	}
	return yawIdx, pitchIdx
}

// SessionDelivery simulates the client-side cost of the versioning
// approach for one viewing session: each chunk interval downloads the
// version matching the viewer's direction, and any mid-interval head
// movement that crosses a version boundary forces a re-fetch of the
// whole chunk in the new version — versioning's hidden tax, since with
// 22 yaw cells a boundary sits every 16.4°.
func (s VersionScheme) SessionDelivery(v *Video, q int, head *trace.HeadTrace) (bytes int64, switches int) {
	const probes = 4
	for i := 0; i < v.NumChunks(); i++ {
		start := v.ChunkStart(i)
		cell := [2]int{-1, -1}
		for k := 0; k < probes; k++ {
			ts := start + time.Duration(k)*v.ChunkDuration/probes
			y, p := s.VersionFor(head.At(ts))
			if y != cell[0] || p != cell[1] {
				if cell[0] >= 0 {
					switches++
				}
				cell = [2]int{y, p}
				bytes += s.VersionBytes(v, q, start)
			}
		}
	}
	return bytes, switches
}

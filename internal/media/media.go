// Package media models the 360° video content Sperke streams: bitrate
// ladders, per-tile chunk sizes, AVC vs SVC encodings (§3.1.1), the
// Oculus-style versioning scheme the paper contrasts tiling with (§2),
// and a binary segment container used on the wire by the DASH and live
// substrates.
//
// Sperke never decodes pixels — every streaming decision in the paper
// depends on chunk sizes, timing, and layer dependencies, which this
// package produces deterministically from a video's identity. Sizes are
// reproducible across runs: the same video ID always yields the same
// per-tile complexity map and per-chunk variation.
package media

import (
	"fmt"
	"math"
	"time"

	"sperke/internal/tiling"
)

// Bitrate is a media rate in bits per second.
type Bitrate float64

// Convenience constructors for readable ladders.
const (
	Kbps Bitrate = 1e3
	Mbps Bitrate = 1e6
)

func (b Bitrate) String() string {
	switch {
	case b >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(b)/1e6)
	case b >= Kbps:
		return fmt.Sprintf("%.1fKbps", float64(b)/1e3)
	default:
		return fmt.Sprintf("%.0fbps", float64(b))
	}
}

// BytesIn returns how many bytes the rate produces over d.
func (b Bitrate) BytesIn(d time.Duration) int64 {
	return int64(float64(b) * d.Seconds() / 8)
}

// QualityLevel is one rung of a bitrate ladder: the resolution and rate
// of the full panoramic frame at that quality.
type QualityLevel struct {
	Name    string
	Width   int // full-panorama luma width in pixels
	Height  int // full-panorama luma height in pixels
	Bitrate Bitrate
}

// Pixels returns the full-panorama pixel count at this level.
func (q QualityLevel) Pixels() int { return q.Width * q.Height }

// DefaultLadder is a six-level panoramic ladder bracketing the rates the
// paper observes on commercial platforms (YouTube live offers six levels
// from 144p to 1080p, §3.4.1; on-demand 360° content goes to 4K).
var DefaultLadder = []QualityLevel{
	{Name: "240p", Width: 960, Height: 480, Bitrate: 400 * Kbps},
	{Name: "360p", Width: 1280, Height: 640, Bitrate: 800 * Kbps},
	{Name: "480p", Width: 1920, Height: 960, Bitrate: 1600 * Kbps},
	{Name: "720p", Width: 2560, Height: 1280, Bitrate: 3200 * Kbps},
	{Name: "1080p", Width: 3840, Height: 1920, Bitrate: 6400 * Kbps},
	{Name: "4K", Width: 5120, Height: 2560, Bitrate: 12800 * Kbps},
}

// LiveLadder mirrors the paper's YouTube live observation: six levels
// from 144p to 1080p (§3.4.1).
var LiveLadder = []QualityLevel{
	{Name: "144p", Width: 640, Height: 320, Bitrate: 200 * Kbps},
	{Name: "240p", Width: 960, Height: 480, Bitrate: 400 * Kbps},
	{Name: "360p", Width: 1280, Height: 640, Bitrate: 750 * Kbps},
	{Name: "480p", Width: 1920, Height: 960, Bitrate: 1200 * Kbps},
	{Name: "720p", Width: 2560, Height: 1280, Bitrate: 2000 * Kbps},
	{Name: "1080p", Width: 3840, Height: 1920, Bitrate: 3500 * Kbps},
}

// Encoding selects how chunks of a video are coded (§3.1.1, Fig. 3).
type Encoding int

const (
	// EncodingAVC is conventional single-layer coding: each quality is an
	// independent bitstream; upgrading a fetched chunk means re-fetching
	// it entirely at the higher quality.
	EncodingAVC Encoding = iota
	// EncodingSVC is scalable layered coding: one base layer plus
	// enhancement layers; upgrading fetches only the missing layers
	// ("delta encoding"). Each layer carries a size overhead relative to
	// the AVC delta it replaces.
	EncodingSVC
)

func (e Encoding) String() string {
	if e == EncodingSVC {
		return "SVC"
	}
	return "AVC"
}

// DefaultSVCOverhead is the per-layer size inflation of SVC relative to
// single-layer AVC at the same quality — around 10% per layer in the
// H.264/SVC literature the paper builds on [12, 31].
const DefaultSVCOverhead = 0.10

// Video describes one panoramic title: its temporal and spatial
// chunking (Fig. 2) and its encoding. ProjectionName is informational
// (which projection the texture uses); geometry callers pass the actual
// sphere.Projection alongside.
type Video struct {
	ID             string
	Duration       time.Duration
	ChunkDuration  time.Duration
	Grid           tiling.Grid
	ProjectionName string
	Ladder         []QualityLevel
	Encoding       Encoding
	// SVCOverhead is the per-layer inflation; zero means
	// DefaultSVCOverhead when Encoding is SVC.
	SVCOverhead float64
}

// Validate reports structural problems with the video description.
func (v *Video) Validate() error {
	if v.ID == "" {
		return fmt.Errorf("media: video has empty ID")
	}
	if v.Duration <= 0 || v.ChunkDuration <= 0 {
		return fmt.Errorf("media: video %q has non-positive duration or chunk duration", v.ID)
	}
	if err := v.Grid.Validate(); err != nil {
		return fmt.Errorf("media: video %q: %w", v.ID, err)
	}
	if len(v.Ladder) == 0 {
		return fmt.Errorf("media: video %q has empty ladder", v.ID)
	}
	for i := 1; i < len(v.Ladder); i++ {
		if v.Ladder[i].Bitrate <= v.Ladder[i-1].Bitrate {
			return fmt.Errorf("media: video %q ladder not strictly increasing at level %d", v.ID, i)
		}
	}
	return nil
}

// Qualities returns the number of ladder rungs.
func (v *Video) Qualities() int { return len(v.Ladder) }

// NumChunks returns how many chunk intervals the video spans (the last
// may be partial).
func (v *Video) NumChunks() int {
	if v.ChunkDuration <= 0 {
		return 0
	}
	return int(math.Ceil(float64(v.Duration) / float64(v.ChunkDuration)))
}

// ChunkStart returns the start time of chunk interval i.
func (v *Video) ChunkStart(i int) time.Duration {
	return time.Duration(i) * v.ChunkDuration
}

// svcOverhead returns the effective per-layer overhead.
func (v *Video) svcOverhead() float64 {
	if v.SVCOverhead > 0 {
		return v.SVCOverhead
	}
	return DefaultSVCOverhead
}

// fnv64 is an incremental FNV-1a fold with typed mixers, the source of
// all per-video "content" randomness. The typed methods (rather than a
// variadic ...any signature) matter: ChunkBytes hashes on every chunk
// request, and interface boxing of the video ID was two heap
// allocations per call on the serving hot path. Each part is folded
// byte-wise and terminated with a 0xff sentinel so "ab","c" and
// "a","bc" hash differently.
type fnv64 uint64

func newFNV64() fnv64 { return 14695981039346656037 }

func (h fnv64) mix(b byte) fnv64 { return (h ^ fnv64(b)) * 1099511628211 }

func (h fnv64) str(s string) fnv64 {
	for i := 0; i < len(s); i++ {
		h = h.mix(s[i])
	}
	return h.mix(0xff)
}

func (h fnv64) num(x int64) fnv64 {
	for i := 0; i < 8; i++ {
		h = h.mix(byte(uint64(x) >> (8 * i)))
	}
	return h.mix(0xff)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// TileComplexity returns the relative coding complexity of a tile in
// [0.6, 1.4], mean ≈ 1 across tiles. Sky tiles compress better than
// action tiles; the exact map is a deterministic function of the video
// ID so experiments are reproducible.
func (v *Video) TileComplexity(tile tiling.TileID) float64 {
	return 0.6 + 0.8*unit(uint64(newFNV64().str(v.ID).str("tile").num(int64(tile))))
}

// chunkVariation is the temporal size variation of a chunk interval in
// [0.8, 1.2] (scene activity varies over time).
func (v *Video) chunkVariation(idx int) float64 {
	return 0.8 + 0.4*unit(uint64(newFNV64().str(v.ID).str("time").num(int64(idx))))
}

// ChunkBytes returns the size in bytes of chunk C(q, l, t) under
// single-layer (AVC) coding: the tile's share of the full-panorama rate
// at quality q, over one chunk duration, scaled by the tile's complexity
// and the interval's activity.
func (v *Video) ChunkBytes(q int, tile tiling.TileID, start time.Duration) int64 {
	if q < 0 || q >= len(v.Ladder) || !v.Grid.Valid(tile) {
		return 0
	}
	dur := v.chunkDurAt(start)
	if dur <= 0 {
		return 0
	}
	mean := float64(v.Ladder[q].Bitrate) * dur.Seconds() / 8 / float64(v.Grid.Tiles())
	idx := int(start / v.ChunkDuration)
	size := mean * v.TileComplexity(tile) * v.chunkVariation(idx)
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// chunkDurAt returns the actual duration of the chunk interval starting
// at start (the final interval may be shorter).
func (v *Video) chunkDurAt(start time.Duration) time.Duration {
	if start < 0 || start >= v.Duration {
		return 0
	}
	if start+v.ChunkDuration > v.Duration {
		return v.Duration - start
	}
	return v.ChunkDuration
}

// LayerBytes returns the size of SVC layer `layer` of the tile-chunk:
// layer 0 is the base layer (the lowest ladder rung), layer i>0 is the
// enhancement from rung i-1 to rung i, inflated by the SVC overhead
// (Fig. 3, right).
func (v *Video) LayerBytes(layer int, tile tiling.TileID, start time.Duration) int64 {
	if layer < 0 || layer >= len(v.Ladder) {
		return 0
	}
	if layer == 0 {
		return v.ChunkBytes(0, tile, start)
	}
	delta := v.ChunkBytes(layer, tile, start) - v.ChunkBytes(layer-1, tile, start)
	if delta < 0 {
		delta = 0
	}
	return int64(float64(delta) * (1 + v.svcOverhead()))
}

// CumulativeLayerBytes returns the total bytes needed to play the
// tile-chunk at quality q under SVC: all layers 0..q (§3.1.1: "when
// playing a chunk at layer i > 0, the player must have all its layers
// from 0 to i").
func (v *Video) CumulativeLayerBytes(q int, tile tiling.TileID, start time.Duration) int64 {
	var sum int64
	for l := 0; l <= q && l < len(v.Ladder); l++ {
		sum += v.LayerBytes(l, tile, start)
	}
	return sum
}

// UpgradeBytes returns the bytes needed to raise an already-fetched
// tile-chunk from quality `from` to quality `to`.
//
// Under SVC this is the enhancement-layer delta; under AVC the chunk
// must be re-fetched whole at the target quality — the fundamental
// mismatch §3.1.1 identifies.
func (v *Video) UpgradeBytes(from, to int, tile tiling.TileID, start time.Duration) int64 {
	if to <= from {
		return 0
	}
	if v.Encoding == EncodingSVC {
		var sum int64
		for l := from + 1; l <= to && l < len(v.Ladder); l++ {
			sum += v.LayerBytes(l, tile, start)
		}
		return sum
	}
	return v.ChunkBytes(to, tile, start)
}

// FetchBytes returns the bytes to fetch a not-yet-downloaded tile-chunk
// at quality q under the video's encoding.
func (v *Video) FetchBytes(q int, tile tiling.TileID, start time.Duration) int64 {
	if v.Encoding == EncodingSVC {
		return v.CumulativeLayerBytes(q, tile, start)
	}
	return v.ChunkBytes(q, tile, start)
}

// TotalBytes returns the stored size of the entire video at every
// quality (the server-side footprint of the tiling approach, Fig. 2).
func (v *Video) TotalBytes() int64 {
	var sum int64
	for i := 0; i < v.NumChunks(); i++ {
		start := v.ChunkStart(i)
		for tile := tiling.TileID(0); int(tile) < v.Grid.Tiles(); tile++ {
			for q := 0; q < len(v.Ladder); q++ {
				if v.Encoding == EncodingSVC {
					sum += v.LayerBytes(q, tile, start)
				} else {
					sum += v.ChunkBytes(q, tile, start)
				}
			}
		}
	}
	return sum
}

// PanoramaBytes returns the size of the whole panorama at quality q for
// one chunk interval — what a FoV-agnostic player downloads per interval
// (§2 "Related Work").
func (v *Video) PanoramaBytes(q int, start time.Duration) int64 {
	var sum int64
	for tile := tiling.TileID(0); int(tile) < v.Grid.Tiles(); tile++ {
		sum += v.ChunkBytes(q, tile, start)
	}
	return sum
}

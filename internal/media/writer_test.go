package media

import (
	"bytes"
	"io"
	"testing"
	"time"

	"sperke/internal/obs"
	"sperke/internal/tiling"
)

// writerEquivCases spans the alignment edges of the block generator:
// empty, sub-word, word-boundary, word+1, one block, and a multi-block
// body larger than SyntheticBlockLen.
var writerEquivCases = []int{0, 1, 7, 8, 9, SyntheticBlockLen - 1, SyntheticBlockLen, SyntheticBlockLen + 1, 109_000}

func equivHeader() SegmentHeader {
	return SegmentHeader{
		VideoID:  "writer-equiv",
		Quality:  4,
		Flags:    FlagLive,
		Tile:     9,
		Start:    6 * time.Second,
		Duration: 2 * time.Second,
	}
}

// TestWriteSyntheticSegmentEquivalence pins the single-source-of-truth
// claim of the writer-first refactor: the streaming form, the
// appending form and the payload-slice form emit byte-identical
// segments at every size class, and the result round-trips through
// ReadSegment.
func TestWriteSyntheticSegmentEquivalence(t *testing.T) {
	h := equivHeader()
	for _, n := range writerEquivCases {
		var streamed bytes.Buffer
		if err := WriteSyntheticSegment(&streamed, h, 77, n); err != nil {
			t.Fatalf("n=%d: WriteSyntheticSegment: %v", n, err)
		}
		appended, err := AppendSyntheticSegment(nil, h, 77, n)
		if err != nil {
			t.Fatalf("n=%d: AppendSyntheticSegment: %v", n, err)
		}
		materialized, err := AppendSegment(nil, h, SyntheticPayload(77, n))
		if err != nil {
			t.Fatalf("n=%d: AppendSegment: %v", n, err)
		}
		if !bytes.Equal(streamed.Bytes(), appended) {
			t.Fatalf("n=%d: streamed differs from appended", n)
		}
		if !bytes.Equal(streamed.Bytes(), materialized) {
			t.Fatalf("n=%d: streamed differs from AppendSegment(SyntheticPayload)", n)
		}
		got, payload, err := ReadSegment(bytes.NewReader(streamed.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: streamed segment does not round-trip: %v", n, err)
		}
		if got != h || len(payload) != n {
			t.Fatalf("n=%d: round-trip header/payload mismatch", n)
		}
	}
}

// FuzzSyntheticSegmentForms drives the three synthesis forms with
// arbitrary headers, seeds and sizes: they must agree byte-for-byte or
// all reject the input.
func FuzzSyntheticSegmentForms(f *testing.F) {
	f.Add(uint64(42), 1000, uint8(3), uint16(17))
	f.Add(uint64(0), 0, uint8(0), uint16(0))
	f.Add(uint64(1<<40), SyntheticBlockLen+5, uint8(255), uint16(65535))
	f.Fuzz(func(t *testing.T, seed uint64, n int, q uint8, tile uint16) {
		if n < 0 || n > 1<<17 {
			return
		}
		h := SegmentHeader{
			VideoID:  "fuzz",
			Quality:  int(q),
			Tile:     tiling.TileID(tile),
			Start:    time.Duration(seed%1000) * time.Millisecond,
			Duration: 2 * time.Second,
		}
		var streamed bytes.Buffer
		werr := WriteSyntheticSegment(&streamed, h, seed, n)
		appended, aerr := AppendSyntheticSegment(nil, h, seed, n)
		if (werr == nil) != (aerr == nil) {
			t.Fatalf("forms disagree on validity: write=%v append=%v", werr, aerr)
		}
		if werr != nil {
			return
		}
		if !bytes.Equal(streamed.Bytes(), appended) {
			t.Fatal("streamed differs from appended")
		}
		materialized, merr := AppendSegment(nil, h, SyntheticPayload(seed, n))
		if merr != nil {
			t.Fatalf("AppendSegment rejected what the synthetic forms accepted: %v", merr)
		}
		if !bytes.Equal(streamed.Bytes(), materialized) {
			t.Fatal("streamed differs from AppendSegment(SyntheticPayload)")
		}
	})
}

// TestWriteSyntheticSegmentZeroAlloc pins the streaming path's scratch
// budget: once the block pool is warm, streaming a multi-block body
// allocates nothing at all.
func TestWriteSyntheticSegmentZeroAlloc(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random; the allocs/op pin holds only without -race")
	}
	h := equivHeader()
	const n = 3*SyntheticBlockLen + 13
	if err := WriteSyntheticSegment(io.Discard, h, 5, n); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := WriteSyntheticSegment(io.Discard, h, 5, n); err != nil {
			t.Fatal(err)
		}
	})
	// A GC mid-measurement can empty the block pool and force a one-off
	// refill; a real per-op allocation would read >= 1.
	if allocs >= 1 {
		t.Fatalf("WriteSyntheticSegment: %v allocs/op, want 0 per op", allocs)
	}
}

// TestSegmentTimeBoundsRejected: Start and Duration travel as uint32
// milliseconds; values that would silently wrap (negative or past
// ~49.7 days) must be rejected by every encoder entry point, so no
// writer can emit a header that fails to round-trip through
// ReadSegment.
func TestSegmentTimeBoundsRejected(t *testing.T) {
	bad := []SegmentHeader{
		{VideoID: "x", Duration: -time.Second},
		{VideoID: "x", Start: -time.Millisecond},
		{VideoID: "x", Start: MaxSegmentTime + time.Millisecond},
		{VideoID: "x", Duration: MaxSegmentTime + time.Millisecond},
	}
	for i, h := range bad {
		if err := WriteSegment(io.Discard, h, nil); err == nil {
			t.Errorf("case %d: WriteSegment accepted out-of-range time", i)
		}
		if _, err := AppendSegment(nil, h, nil); err == nil {
			t.Errorf("case %d: AppendSegment accepted out-of-range time", i)
		}
		if err := WriteSyntheticSegment(io.Discard, h, 1, 8); err == nil {
			t.Errorf("case %d: WriteSyntheticSegment accepted out-of-range time", i)
		}
		if _, err := AppendSyntheticSegment(nil, h, 1, 8); err == nil {
			t.Errorf("case %d: AppendSyntheticSegment accepted out-of-range time", i)
		}
	}

	// The boundary itself is representable and must round-trip exactly.
	h := SegmentHeader{VideoID: "x", Start: MaxSegmentTime, Duration: MaxSegmentTime}
	var buf bytes.Buffer
	if err := WriteSegment(&buf, h, []byte("p")); err != nil {
		t.Fatalf("max segment time rejected: %v", err)
	}
	got, _, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start != MaxSegmentTime || got.Duration != MaxSegmentTime {
		t.Fatalf("boundary did not round-trip: %+v", got)
	}
}

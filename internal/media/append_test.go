package media

import (
	"bytes"
	"testing"
	"time"
)

// TestSyntheticPayloadSeedCollision is the PR 5 regression test for
// the seed-mixing bug: the old generator forced the low bit of the raw
// seed (xorshift rejects zero state), so seeds 2k and 2k+1 produced
// byte-identical payloads — adjacent chunk indices shared bodies. The
// splitmix64 finalizer now decorrelates them before the |1.
func TestSyntheticPayloadSeedCollision(t *testing.T) {
	for _, k := range []uint64{0, 1, 5, 1 << 20, 0x5eed, 1<<40 + 3} {
		a := SyntheticPayload(2*k, 256)
		b := SyntheticPayload(2*k+1, 256)
		if bytes.Equal(a, b) {
			t.Errorf("seeds %d and %d generate identical payloads", 2*k, 2*k+1)
		}
	}
}

func TestSyntheticPayloadStillDeterministic(t *testing.T) {
	if !bytes.Equal(SyntheticPayload(99, 500), SyntheticPayload(99, 500)) {
		t.Fatal("same seed must give same payload")
	}
	long := SyntheticPayload(99, 500)
	short := SyntheticPayload(99, 100)
	if !bytes.Equal(long[:100], short) {
		t.Fatal("payload must be a prefix-stable stream per seed")
	}
}

// TestAppendSegmentMatchesWriteSegment: the append path is the write
// path — same bytes, to the bit, including the CRC.
func TestAppendSegmentMatchesWriteSegment(t *testing.T) {
	h := SegmentHeader{
		VideoID:  "concert-360",
		Quality:  3,
		Flags:    FlagSVCLayer,
		Tile:     17,
		Start:    4 * time.Second,
		Duration: 2 * time.Second,
	}
	payload := SyntheticPayload(42, 1000)

	var buf bytes.Buffer
	if err := WriteSegment(&buf, h, payload); err != nil {
		t.Fatal(err)
	}
	appended, err := AppendSegment(nil, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended, buf.Bytes()) {
		t.Fatal("AppendSegment bytes differ from WriteSegment")
	}

	// AppendSyntheticSegment back-patches the CRC after generating in
	// place; it must still produce the same encoding.
	synth, err := AppendSyntheticSegment(nil, h, 42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(synth, buf.Bytes()) {
		t.Fatal("AppendSyntheticSegment bytes differ from WriteSegment")
	}

	// And the result must round-trip through the reader.
	got, gotPayload, err := ReadSegment(bytes.NewReader(synth))
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(gotPayload, payload) {
		t.Fatal("AppendSyntheticSegment did not round-trip")
	}
}

func TestAppendSegmentPreservesPrefix(t *testing.T) {
	h := SegmentHeader{VideoID: "v", Quality: 1, Tile: 2, Duration: time.Second}
	prefix := []byte("keep-me")

	dst := append([]byte(nil), prefix...)
	dst, err := AppendSyntheticSegment(dst, h, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:len(prefix)], prefix) {
		t.Fatal("prefix clobbered")
	}
	want, _ := AppendSyntheticSegment(nil, h, 7, 64)
	if !bytes.Equal(dst[len(prefix):], want) {
		t.Fatal("appended segment differs from fresh build")
	}

	// On validation error the dst slice comes back unchanged.
	bad := h
	bad.Quality = -1
	dst2 := append([]byte(nil), prefix...)
	got, err := AppendSegment(dst2, bad, nil)
	if err == nil {
		t.Fatal("invalid header accepted")
	}
	if !bytes.Equal(got, prefix) {
		t.Fatal("dst modified on error")
	}
}

// TestAppendSyntheticPayloadZeroAlloc pins the hot-path budget: with
// capacity already in dst, payload generation allocates nothing.
func TestAppendSyntheticPayloadZeroAlloc(t *testing.T) {
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendSyntheticPayload(dst[:0], 1234, 4096)
	})
	if allocs != 0 {
		t.Fatalf("AppendSyntheticPayload into preallocated dst: %v allocs/op, want 0", allocs)
	}
}

package media

import (
	"bytes"
	"io"
	"testing"
	"time"

	"sperke/internal/tiling"
)

func BenchmarkChunkBytes(b *testing.B) {
	v := testVideo(EncodingAVC)
	for i := 0; i < b.N; i++ {
		v.ChunkBytes(3, tiling.TileID(i%24), time.Duration(i%30)*2*time.Second)
	}
}

func BenchmarkSegmentWrite(b *testing.B) {
	h := SegmentHeader{VideoID: "bench", Quality: 3, Tile: 7, Start: 4 * time.Second, Duration: 2 * time.Second}
	payload := SyntheticPayload(1, 64<<10)
	b.SetBytes(int64(SegmentLen(h.VideoID, len(payload))))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WriteSegment(io.Discard, h, payload)
	}
}

func BenchmarkSegmentRead(b *testing.B) {
	h := SegmentHeader{VideoID: "bench", Quality: 3, Tile: 7}
	payload := SyntheticPayload(1, 64<<10)
	var buf bytes.Buffer
	WriteSegment(&buf, h, payload)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadSegment(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

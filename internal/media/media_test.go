package media

import (
	"testing"
	"testing/quick"
	"time"

	"sperke/internal/tiling"
)

func testVideo(enc Encoding) *Video {
	return &Video{
		ID:            "test-video",
		Duration:      60 * time.Second,
		ChunkDuration: 2 * time.Second,
		Grid:          tiling.Grid{Rows: 4, Cols: 6},
		Ladder:        DefaultLadder,
		Encoding:      enc,
	}
}

func TestVideoValidate(t *testing.T) {
	v := testVideo(EncodingAVC)
	if err := v.Validate(); err != nil {
		t.Fatalf("valid video rejected: %v", err)
	}
	bad := *v
	bad.ID = ""
	if bad.Validate() == nil {
		t.Fatal("empty ID accepted")
	}
	bad = *v
	bad.ChunkDuration = 0
	if bad.Validate() == nil {
		t.Fatal("zero chunk duration accepted")
	}
	bad = *v
	bad.Ladder = []QualityLevel{{Bitrate: 2 * Mbps}, {Bitrate: 1 * Mbps}}
	if bad.Validate() == nil {
		t.Fatal("non-increasing ladder accepted")
	}
	bad = *v
	bad.Ladder = nil
	if bad.Validate() == nil {
		t.Fatal("empty ladder accepted")
	}
}

func TestNumChunksCeil(t *testing.T) {
	v := testVideo(EncodingAVC)
	if got := v.NumChunks(); got != 30 {
		t.Fatalf("NumChunks = %d, want 30", got)
	}
	v.Duration = 61 * time.Second
	if got := v.NumChunks(); got != 31 {
		t.Fatalf("NumChunks(61s) = %d, want 31 (partial chunk)", got)
	}
}

func TestChunkBytesScalesWithQuality(t *testing.T) {
	v := testVideo(EncodingAVC)
	for tile := tiling.TileID(0); int(tile) < v.Grid.Tiles(); tile++ {
		prev := int64(0)
		for q := 0; q < v.Qualities(); q++ {
			b := v.ChunkBytes(q, tile, 0)
			if b <= prev {
				t.Fatalf("tile %d: quality %d size %d not > quality %d size %d", tile, q, b, q-1, prev)
			}
			prev = b
		}
	}
}

func TestChunkBytesDeterministic(t *testing.T) {
	a := testVideo(EncodingAVC)
	b := testVideo(EncodingAVC)
	for q := 0; q < a.Qualities(); q++ {
		if a.ChunkBytes(q, 3, 4*time.Second) != b.ChunkBytes(q, 3, 4*time.Second) {
			t.Fatal("sizes differ across identical videos")
		}
	}
	c := testVideo(EncodingAVC)
	c.ID = "other-video"
	same := 0
	for tile := tiling.TileID(0); int(tile) < a.Grid.Tiles(); tile++ {
		if a.ChunkBytes(2, tile, 0) == c.ChunkBytes(2, tile, 0) {
			same++
		}
	}
	if same == a.Grid.Tiles() {
		t.Fatal("different video IDs produced identical size maps")
	}
}

func TestChunkBytesOutOfRange(t *testing.T) {
	v := testVideo(EncodingAVC)
	if v.ChunkBytes(-1, 0, 0) != 0 {
		t.Fatal("negative quality returned bytes")
	}
	if v.ChunkBytes(99, 0, 0) != 0 {
		t.Fatal("quality beyond ladder returned bytes")
	}
	if v.ChunkBytes(0, tiling.TileID(999), 0) != 0 {
		t.Fatal("invalid tile returned bytes")
	}
	if v.ChunkBytes(0, 0, 2*time.Minute) != 0 {
		t.Fatal("start beyond duration returned bytes")
	}
}

func TestFinalPartialChunkSmaller(t *testing.T) {
	v := testVideo(EncodingAVC)
	v.Duration = 59 * time.Second // final chunk is 1s of a 2s interval
	full := v.ChunkBytes(3, 0, 0)
	partial := v.ChunkBytes(3, 0, 58*time.Second)
	if partial >= full {
		t.Fatalf("partial final chunk %d not smaller than full chunk %d", partial, full)
	}
}

func TestTileComplexityMeanNearOne(t *testing.T) {
	v := testVideo(EncodingAVC)
	var sum float64
	n := v.Grid.Tiles()
	for tile := tiling.TileID(0); int(tile) < n; tile++ {
		c := v.TileComplexity(tile)
		if c < 0.6 || c > 1.4 {
			t.Fatalf("complexity %v out of [0.6,1.4]", c)
		}
		sum += c
	}
	mean := sum / float64(n)
	if mean < 0.8 || mean > 1.2 {
		t.Fatalf("complexity mean %v far from 1", mean)
	}
}

func TestSVCLayerInvariants(t *testing.T) {
	v := testVideo(EncodingSVC)
	tile := tiling.TileID(5)
	start := 10 * time.Second
	// Layer 0 equals the lowest AVC quality.
	if v.LayerBytes(0, tile, start) != v.ChunkBytes(0, tile, start) {
		t.Fatal("base layer != lowest quality chunk")
	}
	// Cumulative layers are monotonically increasing and exceed the AVC
	// size at the same quality (the SVC overhead).
	for q := 1; q < v.Qualities(); q++ {
		cum := v.CumulativeLayerBytes(q, tile, start)
		prev := v.CumulativeLayerBytes(q-1, tile, start)
		if cum <= prev {
			t.Fatalf("cumulative not increasing at layer %d", q)
		}
		avc := v.ChunkBytes(q, tile, start)
		if cum <= avc {
			t.Fatalf("SVC cumulative %d at q%d should exceed AVC %d (overhead)", cum, q, avc)
		}
		// But not by more than ~overhead per layer.
		if float64(cum) > float64(avc)*(1+DefaultSVCOverhead)*1.05 {
			t.Fatalf("SVC cumulative %d at q%d exceeds AVC %d by more than overhead bound", cum, q, avc)
		}
	}
}

func TestUpgradeBytesSVCvsAVC(t *testing.T) {
	svc := testVideo(EncodingSVC)
	avc := testVideo(EncodingAVC)
	tile := tiling.TileID(2)
	// Upgrading 2→4: SVC fetches only layers 3 and 4; AVC re-fetches the
	// whole q4 chunk. SVC must be cheaper — the §3.1.1 argument.
	sv := svc.UpgradeBytes(2, 4, tile, 0)
	av := avc.UpgradeBytes(2, 4, tile, 0)
	if sv >= av {
		t.Fatalf("SVC upgrade %d not cheaper than AVC re-fetch %d", sv, av)
	}
	if svc.UpgradeBytes(4, 2, tile, 0) != 0 {
		t.Fatal("downgrade should cost 0")
	}
	if svc.UpgradeBytes(3, 3, tile, 0) != 0 {
		t.Fatal("no-op upgrade should cost 0")
	}
}

func TestUpgradeBytesProperty(t *testing.T) {
	// Property: for any from<to, SVC upgrade bytes equals cumulative(to) -
	// cumulative(from).
	v := testVideo(EncodingSVC)
	f := func(fromRaw, toRaw uint8, tileRaw uint8) bool {
		from := int(fromRaw) % v.Qualities()
		to := int(toRaw) % v.Qualities()
		if from >= to {
			return v.UpgradeBytes(from, to, 0, 0) == 0
		}
		tile := tiling.TileID(int(tileRaw) % v.Grid.Tiles())
		want := v.CumulativeLayerBytes(to, tile, 0) - v.CumulativeLayerBytes(from, tile, 0)
		return v.UpgradeBytes(from, to, tile, 0) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFetchBytesByEncoding(t *testing.T) {
	svc := testVideo(EncodingSVC)
	avc := testVideo(EncodingAVC)
	if avc.FetchBytes(3, 0, 0) != avc.ChunkBytes(3, 0, 0) {
		t.Fatal("AVC fetch != chunk bytes")
	}
	if svc.FetchBytes(3, 0, 0) != svc.CumulativeLayerBytes(3, 0, 0) {
		t.Fatal("SVC fetch != cumulative layers")
	}
}

func TestPanoramaBytesIsTileSum(t *testing.T) {
	v := testVideo(EncodingAVC)
	var sum int64
	for tile := tiling.TileID(0); int(tile) < v.Grid.Tiles(); tile++ {
		sum += v.ChunkBytes(4, tile, 0)
	}
	if got := v.PanoramaBytes(4, 0); got != sum {
		t.Fatalf("PanoramaBytes = %d, want %d", got, sum)
	}
}

func TestTotalBytesPositiveAndSVCLarger(t *testing.T) {
	avc := testVideo(EncodingAVC)
	svc := testVideo(EncodingSVC)
	ta, ts := avc.TotalBytes(), svc.TotalBytes()
	if ta <= 0 {
		t.Fatal("AVC total not positive")
	}
	// SVC storage is smaller than AVC storage: AVC stores every quality
	// in full; SVC stores only deltas (plus overhead).
	if ts >= ta {
		t.Fatalf("SVC storage %d should be below AVC storage %d", ts, ta)
	}
}

func TestBitrateString(t *testing.T) {
	if (3200 * Kbps).String() != "3.20Mbps" {
		t.Fatalf("got %q", (3200 * Kbps).String())
	}
	if (500 * Kbps).String() != "500.0Kbps" {
		t.Fatalf("got %q", (500 * Kbps).String())
	}
	if Bitrate(100).String() != "100bps" {
		t.Fatalf("got %q", Bitrate(100).String())
	}
}

func TestBitrateBytesIn(t *testing.T) {
	if got := (8 * Mbps).BytesIn(time.Second); got != 1e6 {
		t.Fatalf("8Mbps over 1s = %d bytes, want 1e6", got)
	}
}

func TestEncodingString(t *testing.T) {
	if EncodingAVC.String() != "AVC" || EncodingSVC.String() != "SVC" {
		t.Fatal("bad encoding strings")
	}
}

func TestFetchBytesMonotoneInQuality(t *testing.T) {
	// Property: fetching a higher quality never costs fewer bytes, under
	// either encoding.
	for _, enc := range []Encoding{EncodingAVC, EncodingSVC} {
		v := testVideo(enc)
		f := func(qa, qb, tileRaw uint8, startRaw uint16) bool {
			a, b := int(qa)%v.Qualities(), int(qb)%v.Qualities()
			if a > b {
				a, b = b, a
			}
			tile := tiling.TileID(int(tileRaw) % v.Grid.Tiles())
			start := time.Duration(startRaw%30) * 2 * time.Second
			return v.FetchBytes(a, tile, start) <= v.FetchBytes(b, tile, start)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
	}
}

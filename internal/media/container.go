package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"

	"sperke/internal/obs"
	"sperke/internal/tiling"
)

// Segment container wire format.
//
// Sperke's DASH server and live pipeline move chunks as self-describing
// binary segments so a receiver can validate and demultiplex them
// without out-of-band state:
//
//	offset size field
//	0      4    magic "SPRK"
//	4      1    container version (1)
//	5      1    quality level / SVC layer index
//	6      1    flags (bit 0: SVC layer, bit 1: live)
//	7      1    video-ID length n (1..255)
//	8      2    tile ID (big endian)
//	10     4    chunk start, milliseconds
//	14     4    chunk duration, milliseconds
//	18     4    payload length
//	22     4    CRC-32 (IEEE) of payload
//	26     n    video ID (UTF-8)
//	26+n   ...  payload
//
// All multi-byte fields are big-endian, per network convention.

// Segment flags.
const (
	// FlagSVCLayer marks the payload as one SVC layer rather than a full
	// single-layer chunk.
	FlagSVCLayer = 1 << 0
	// FlagLive marks a segment produced by a live broadcast.
	FlagLive = 1 << 1
)

const (
	segmentMagic   = "SPRK"
	segmentVersion = 1
	headerFixedLen = 26
	// MaxPayloadLen caps a single segment at 64 MiB — far above any
	// realistic chunk and small enough to reject corrupt length fields
	// before allocating.
	MaxPayloadLen = 64 << 20
	// MaxSegmentTime is the largest Start or Duration the wire format
	// can carry: both travel as uint32 milliseconds, so anything past
	// ~49.7 days would silently wrap and fail to round-trip through
	// ReadSegment. validateSegment rejects it instead.
	MaxSegmentTime = time.Duration(math.MaxUint32) * time.Millisecond
	// SyntheticBlockLen is the fixed scratch size of the writer-first
	// synthesis path: WriteSyntheticSegment never holds more than one
	// such block regardless of payload length. A multiple of 8 so block
	// boundaries stay aligned with the generator's 8-byte words.
	SyntheticBlockLen = 32 << 10
)

// SegmentHeader describes one chunk (or one SVC layer of a chunk) on the
// wire.
type SegmentHeader struct {
	VideoID  string
	Quality  int // quality level, or layer index when FlagSVCLayer is set
	Flags    uint8
	Tile     tiling.TileID
	Start    time.Duration
	Duration time.Duration
}

// Errors returned by the segment codec.
var (
	ErrBadMagic   = errors.New("media: segment has bad magic")
	ErrBadVersion = errors.New("media: unsupported segment version")
	ErrCorrupt    = errors.New("media: segment payload CRC mismatch")
)

// validateSegment checks header and payload bounds shared by every
// encoder entry point.
func validateSegment(h SegmentHeader, payloadLen int) error {
	if len(h.VideoID) == 0 || len(h.VideoID) > 255 {
		return fmt.Errorf("media: video ID length %d out of range [1,255]", len(h.VideoID))
	}
	if payloadLen > MaxPayloadLen {
		return fmt.Errorf("media: payload %d exceeds max %d", payloadLen, MaxPayloadLen)
	}
	if h.Quality < 0 || h.Quality > 255 {
		return fmt.Errorf("media: quality %d out of range [0,255]", h.Quality)
	}
	if h.Tile < 0 || h.Tile > 0xffff {
		return fmt.Errorf("media: tile %d out of range", h.Tile)
	}
	if h.Start < 0 || h.Start > MaxSegmentTime {
		return fmt.Errorf("media: start %v outside [0, %v]", h.Start, MaxSegmentTime)
	}
	if h.Duration < 0 || h.Duration > MaxSegmentTime {
		return fmt.Errorf("media: duration %v outside [0, %v]", h.Duration, MaxSegmentTime)
	}
	return nil
}

// appendSegmentHeader appends the fixed header and video ID for a
// payload of payloadLen bytes with the given CRC. Callers must have
// validated h first.
func appendSegmentHeader(dst []byte, h SegmentHeader, payloadLen int, crc uint32) []byte {
	var fixed [headerFixedLen]byte
	copy(fixed[:], segmentMagic)
	fixed[4] = segmentVersion
	fixed[5] = uint8(h.Quality)
	fixed[6] = h.Flags
	fixed[7] = uint8(len(h.VideoID))
	binary.BigEndian.PutUint16(fixed[8:], uint16(h.Tile))
	binary.BigEndian.PutUint32(fixed[10:], uint32(h.Start/time.Millisecond))
	binary.BigEndian.PutUint32(fixed[14:], uint32(h.Duration/time.Millisecond))
	binary.BigEndian.PutUint32(fixed[18:], uint32(payloadLen))
	binary.BigEndian.PutUint32(fixed[22:], crc)
	dst = append(dst, fixed[:]...)
	return append(dst, h.VideoID...)
}

// growCap ensures dst has room for n more bytes without changing its
// length, reallocating exactly once when it does not.
func growCap(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	out := make([]byte, len(dst), len(dst)+n)
	copy(out, dst)
	return out
}

// WriteSegment encodes one segment to w.
func WriteSegment(w io.Writer, h SegmentHeader, payload []byte) error {
	if err := validateSegment(h, len(payload)); err != nil {
		return err
	}
	buf := appendSegmentHeader(make([]byte, 0, headerFixedLen+len(h.VideoID)),
		h, len(payload), crc32.ChecksumIEEE(payload))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendSegment appends the wire encoding of one segment to dst and
// returns the extended slice — the same bytes WriteSegment would emit.
// On error dst is returned unchanged.
func AppendSegment(dst []byte, h SegmentHeader, payload []byte) ([]byte, error) {
	if err := validateSegment(h, len(payload)); err != nil {
		return dst, err
	}
	dst = growCap(dst, SegmentLen(h.VideoID, len(payload)))
	dst = appendSegmentHeader(dst, h, len(payload), crc32.ChecksumIEEE(payload))
	return append(dst, payload...), nil
}

// blockPool recycles the fixed-size scratch blocks of the writer-first
// synthesis path. Blocks are minted and kept at exactly
// SyntheticBlockLen, so the pool's resident memory is bounded by the
// number of concurrent writers, never by body sizes.
var blockPool = obs.NewSizedBufferPool(nil, "media.block", SyntheticBlockLen, SyntheticBlockLen)

// segWriterPool recycles the slice-backed writers that let the
// appending builders delegate to the writer-first path without
// allocating per call.
var segWriterPool = sync.Pool{New: func() any { return new(sliceWriter) }}

// sliceWriter adapts an append destination to io.Writer. Writes within
// the buffer's capacity extend it in place; Write never fails.
type sliceWriter struct{ buf []byte }

func (sw *sliceWriter) Write(p []byte) (int, error) {
	sw.buf = append(sw.buf, p...)
	return len(p), nil
}

// WriteSyntheticSegment streams a segment whose payload is
// SyntheticPayload(seed, n) into w without ever materializing the
// payload: the deterministic generator is run once through a CRC-32
// hasher over a reused SyntheticBlockLen scratch block (the CRC of a
// synthetic payload is computable before emission), then the header is
// emitted and the payload regenerated block by block straight into w.
// Peak scratch is the fixed block size regardless of n, and the bytes
// written are exactly AppendSegment(nil, h, SyntheticPayload(seed, n)).
func WriteSyntheticSegment(w io.Writer, h SegmentHeader, seed uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("media: negative payload length %d", n)
	}
	if err := validateSegment(h, n); err != nil {
		return err
	}
	scratch := blockPool.Get()
	defer blockPool.Put(scratch)
	block := (*scratch)[:SyntheticBlockLen]

	// Pass 1: CRC of the payload, one block at a time.
	var crc uint32
	s := newSynthStream(seed)
	for rem := n; rem > 0; {
		k := rem
		if k > len(block) {
			k = len(block)
		}
		s.fill(block[:k])
		crc = crc32.Update(crc, crc32.IEEETable, block[:k])
		rem -= k
	}

	// Header (the block doubles as header scratch: 26 + ≤255 ID bytes
	// always fit).
	hdr := appendSegmentHeader(block[:0], h, n, crc)
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Pass 2: regenerate the payload into w.
	s = newSynthStream(seed)
	for rem := n; rem > 0; {
		k := rem
		if k > len(block) {
			k = len(block)
		}
		s.fill(block[:k])
		if _, err := w.Write(block[:k]); err != nil {
			return err
		}
		rem -= k
	}
	return nil
}

// AppendSyntheticSegment appends a segment whose payload is
// SyntheticPayload(seed, n) to dst and returns the extended slice — a
// thin wrapper over WriteSyntheticSegment writing into dst's spare
// capacity, so the appending and streaming forms share one encoder and
// cannot drift. On error dst is returned unchanged. The result is
// byte-identical to AppendSegment(dst, h, SyntheticPayload(seed, n)).
func AppendSyntheticSegment(dst []byte, h SegmentHeader, seed uint64, n int) ([]byte, error) {
	if n < 0 {
		return dst, fmt.Errorf("media: negative payload length %d", n)
	}
	if err := validateSegment(h, n); err != nil {
		return dst, err
	}
	dst = growCap(dst, SegmentLen(h.VideoID, n))
	sw := segWriterPool.Get().(*sliceWriter)
	sw.buf = dst
	err := WriteSyntheticSegment(sw, h, seed, n)
	out := sw.buf
	sw.buf = nil
	segWriterPool.Put(sw)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// ReadSegment decodes one segment from r, validating magic, version,
// bounds and payload CRC.
func ReadSegment(r io.Reader) (SegmentHeader, []byte, error) {
	var h SegmentHeader
	fixed := make([]byte, headerFixedLen)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return h, nil, err
	}
	if string(fixed[:4]) != segmentMagic {
		return h, nil, ErrBadMagic
	}
	if fixed[4] != segmentVersion {
		return h, nil, fmt.Errorf("%w: %d", ErrBadVersion, fixed[4])
	}
	h.Quality = int(fixed[5])
	h.Flags = fixed[6]
	idLen := int(fixed[7])
	if idLen == 0 {
		return h, nil, fmt.Errorf("media: segment has empty video ID")
	}
	h.Tile = tiling.TileID(binary.BigEndian.Uint16(fixed[8:]))
	h.Start = time.Duration(binary.BigEndian.Uint32(fixed[10:])) * time.Millisecond
	h.Duration = time.Duration(binary.BigEndian.Uint32(fixed[14:])) * time.Millisecond
	payloadLen := binary.BigEndian.Uint32(fixed[18:])
	if payloadLen > MaxPayloadLen {
		return h, nil, fmt.Errorf("media: payload length %d exceeds max", payloadLen)
	}
	wantCRC := binary.BigEndian.Uint32(fixed[22:])
	id := make([]byte, idLen)
	if _, err := io.ReadFull(r, id); err != nil {
		return h, nil, err
	}
	h.VideoID = string(id)
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return h, nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return h, nil, ErrCorrupt
	}
	return h, payload, nil
}

// SegmentLen returns the encoded size of a segment with the given ID and
// payload length — used to size buffers and to account wire bytes.
func SegmentLen(videoID string, payloadLen int) int {
	return headerFixedLen + len(videoID) + payloadLen
}

// SyntheticPayload produces deterministic pseudo-random payload bytes
// standing in for coded video data. The same (seed, n) always yields the
// same bytes, so CRCs are stable across runs, and distinct seeds yield
// distinct streams.
func SyntheticPayload(seed uint64, n int) []byte {
	if n <= 0 {
		return []byte{}
	}
	return AppendSyntheticPayload(make([]byte, 0, n), seed, n)
}

// AppendSyntheticPayload appends SyntheticPayload(seed, n) to dst and
// returns the extended slice, allocating only when dst lacks capacity.
func AppendSyntheticPayload(dst []byte, seed uint64, n int) []byte {
	if n <= 0 {
		return dst
	}
	dst = growCap(dst, n)
	base := len(dst)
	dst = dst[:base+n]
	s := newSynthStream(seed)
	s.fill(dst[base:])
	return dst
}

// synthStream is the resumable form of the synthetic-payload
// generator: consecutive fill calls emit consecutive bytes of the same
// prefix-stable stream, which is what lets WriteSyntheticSegment
// regenerate a payload block by block instead of holding it whole.
// Callers must keep every fill length a multiple of 8 except the last
// (the word generator has no partial-word carry).
type synthStream struct{ x uint64 }

// newSynthStream seeds the stream. The seed is mixed through a
// splitmix64 finalizer before forcing it odd: seeding xorshift with a
// raw `seed | 1` collapses seeds 2k and 2k+1 onto the same stream, so
// distinct chunks could share payload bytes and skew cache-dedup and
// CRC-based comparisons.
func newSynthStream(seed uint64) synthStream {
	x := seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	x |= 1 // xorshift state must stay non-zero
	return synthStream{x: x}
}

// fill writes the next len(p) bytes of the stream into p.
func (s *synthStream) fill(p []byte) {
	// xorshift64* — tiny, fast, deterministic.
	x := s.x
	n := len(p)
	for i := 0; i < n; i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := x * 2685821657736338717
		if i+8 <= n {
			binary.LittleEndian.PutUint64(p[i:], v)
		} else {
			for j := 0; i+j < n; j++ {
				p[i+j] = byte(v >> (8 * j))
			}
		}
	}
	s.x = x
}

package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"sperke/internal/tiling"
)

// Segment container wire format.
//
// Sperke's DASH server and live pipeline move chunks as self-describing
// binary segments so a receiver can validate and demultiplex them
// without out-of-band state:
//
//	offset size field
//	0      4    magic "SPRK"
//	4      1    container version (1)
//	5      1    quality level / SVC layer index
//	6      1    flags (bit 0: SVC layer, bit 1: live)
//	7      1    video-ID length n (1..255)
//	8      2    tile ID (big endian)
//	10     4    chunk start, milliseconds
//	14     4    chunk duration, milliseconds
//	18     4    payload length
//	22     4    CRC-32 (IEEE) of payload
//	26     n    video ID (UTF-8)
//	26+n   ...  payload
//
// All multi-byte fields are big-endian, per network convention.

// Segment flags.
const (
	// FlagSVCLayer marks the payload as one SVC layer rather than a full
	// single-layer chunk.
	FlagSVCLayer = 1 << 0
	// FlagLive marks a segment produced by a live broadcast.
	FlagLive = 1 << 1
)

const (
	segmentMagic   = "SPRK"
	segmentVersion = 1
	headerFixedLen = 26
	// MaxPayloadLen caps a single segment at 64 MiB — far above any
	// realistic chunk and small enough to reject corrupt length fields
	// before allocating.
	MaxPayloadLen = 64 << 20
)

// SegmentHeader describes one chunk (or one SVC layer of a chunk) on the
// wire.
type SegmentHeader struct {
	VideoID  string
	Quality  int // quality level, or layer index when FlagSVCLayer is set
	Flags    uint8
	Tile     tiling.TileID
	Start    time.Duration
	Duration time.Duration
}

// Errors returned by the segment codec.
var (
	ErrBadMagic   = errors.New("media: segment has bad magic")
	ErrBadVersion = errors.New("media: unsupported segment version")
	ErrCorrupt    = errors.New("media: segment payload CRC mismatch")
)

// validateSegment checks header and payload bounds shared by every
// encoder entry point.
func validateSegment(h SegmentHeader, payloadLen int) error {
	if len(h.VideoID) == 0 || len(h.VideoID) > 255 {
		return fmt.Errorf("media: video ID length %d out of range [1,255]", len(h.VideoID))
	}
	if payloadLen > MaxPayloadLen {
		return fmt.Errorf("media: payload %d exceeds max %d", payloadLen, MaxPayloadLen)
	}
	if h.Quality < 0 || h.Quality > 255 {
		return fmt.Errorf("media: quality %d out of range [0,255]", h.Quality)
	}
	if h.Tile < 0 || h.Tile > 0xffff {
		return fmt.Errorf("media: tile %d out of range", h.Tile)
	}
	return nil
}

// appendSegmentHeader appends the fixed header and video ID for a
// payload of payloadLen bytes with the given CRC. Callers must have
// validated h first.
func appendSegmentHeader(dst []byte, h SegmentHeader, payloadLen int, crc uint32) []byte {
	var fixed [headerFixedLen]byte
	copy(fixed[:], segmentMagic)
	fixed[4] = segmentVersion
	fixed[5] = uint8(h.Quality)
	fixed[6] = h.Flags
	fixed[7] = uint8(len(h.VideoID))
	binary.BigEndian.PutUint16(fixed[8:], uint16(h.Tile))
	binary.BigEndian.PutUint32(fixed[10:], uint32(h.Start/time.Millisecond))
	binary.BigEndian.PutUint32(fixed[14:], uint32(h.Duration/time.Millisecond))
	binary.BigEndian.PutUint32(fixed[18:], uint32(payloadLen))
	binary.BigEndian.PutUint32(fixed[22:], crc)
	dst = append(dst, fixed[:]...)
	return append(dst, h.VideoID...)
}

// growCap ensures dst has room for n more bytes without changing its
// length, reallocating exactly once when it does not.
func growCap(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	out := make([]byte, len(dst), len(dst)+n)
	copy(out, dst)
	return out
}

// WriteSegment encodes one segment to w.
func WriteSegment(w io.Writer, h SegmentHeader, payload []byte) error {
	if err := validateSegment(h, len(payload)); err != nil {
		return err
	}
	buf := appendSegmentHeader(make([]byte, 0, headerFixedLen+len(h.VideoID)),
		h, len(payload), crc32.ChecksumIEEE(payload))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendSegment appends the wire encoding of one segment to dst and
// returns the extended slice — the same bytes WriteSegment would emit.
// On error dst is returned unchanged.
func AppendSegment(dst []byte, h SegmentHeader, payload []byte) ([]byte, error) {
	if err := validateSegment(h, len(payload)); err != nil {
		return dst, err
	}
	dst = growCap(dst, SegmentLen(h.VideoID, len(payload)))
	dst = appendSegmentHeader(dst, h, len(payload), crc32.ChecksumIEEE(payload))
	return append(dst, payload...), nil
}

// AppendSyntheticSegment appends a segment whose payload is
// SyntheticPayload(seed, n), generating the payload directly into dst
// and back-patching the CRC — a single pass with no intermediate
// payload slice. On error dst is returned unchanged. The result is
// byte-identical to AppendSegment(dst, h, SyntheticPayload(seed, n)).
func AppendSyntheticSegment(dst []byte, h SegmentHeader, seed uint64, n int) ([]byte, error) {
	if n < 0 {
		return dst, fmt.Errorf("media: negative payload length %d", n)
	}
	if err := validateSegment(h, n); err != nil {
		return dst, err
	}
	dst = growCap(dst, SegmentLen(h.VideoID, n))
	base := len(dst)
	dst = appendSegmentHeader(dst, h, n, 0)
	payloadStart := len(dst)
	dst = AppendSyntheticPayload(dst, seed, n)
	binary.BigEndian.PutUint32(dst[base+22:], crc32.ChecksumIEEE(dst[payloadStart:]))
	return dst, nil
}

// ReadSegment decodes one segment from r, validating magic, version,
// bounds and payload CRC.
func ReadSegment(r io.Reader) (SegmentHeader, []byte, error) {
	var h SegmentHeader
	fixed := make([]byte, headerFixedLen)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return h, nil, err
	}
	if string(fixed[:4]) != segmentMagic {
		return h, nil, ErrBadMagic
	}
	if fixed[4] != segmentVersion {
		return h, nil, fmt.Errorf("%w: %d", ErrBadVersion, fixed[4])
	}
	h.Quality = int(fixed[5])
	h.Flags = fixed[6]
	idLen := int(fixed[7])
	if idLen == 0 {
		return h, nil, fmt.Errorf("media: segment has empty video ID")
	}
	h.Tile = tiling.TileID(binary.BigEndian.Uint16(fixed[8:]))
	h.Start = time.Duration(binary.BigEndian.Uint32(fixed[10:])) * time.Millisecond
	h.Duration = time.Duration(binary.BigEndian.Uint32(fixed[14:])) * time.Millisecond
	payloadLen := binary.BigEndian.Uint32(fixed[18:])
	if payloadLen > MaxPayloadLen {
		return h, nil, fmt.Errorf("media: payload length %d exceeds max", payloadLen)
	}
	wantCRC := binary.BigEndian.Uint32(fixed[22:])
	id := make([]byte, idLen)
	if _, err := io.ReadFull(r, id); err != nil {
		return h, nil, err
	}
	h.VideoID = string(id)
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return h, nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return h, nil, ErrCorrupt
	}
	return h, payload, nil
}

// SegmentLen returns the encoded size of a segment with the given ID and
// payload length — used to size buffers and to account wire bytes.
func SegmentLen(videoID string, payloadLen int) int {
	return headerFixedLen + len(videoID) + payloadLen
}

// SyntheticPayload produces deterministic pseudo-random payload bytes
// standing in for coded video data. The same (seed, n) always yields the
// same bytes, so CRCs are stable across runs, and distinct seeds yield
// distinct streams.
func SyntheticPayload(seed uint64, n int) []byte {
	if n <= 0 {
		return []byte{}
	}
	return AppendSyntheticPayload(make([]byte, 0, n), seed, n)
}

// AppendSyntheticPayload appends SyntheticPayload(seed, n) to dst and
// returns the extended slice, allocating only when dst lacks capacity.
func AppendSyntheticPayload(dst []byte, seed uint64, n int) []byte {
	if n <= 0 {
		return dst
	}
	dst = growCap(dst, n)
	base := len(dst)
	dst = dst[:base+n]
	// Mix the seed through a splitmix64 finalizer before forcing it
	// odd: seeding xorshift with a raw `seed | 1` collapses seeds 2k
	// and 2k+1 onto the same stream, so distinct chunks could share
	// payload bytes and skew cache-dedup and CRC-based comparisons.
	x := seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	x |= 1 // xorshift state must stay non-zero
	// xorshift64* — tiny, fast, deterministic.
	for i := 0; i < n; i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := x * 2685821657736338717
		for j := 0; j < 8 && i+j < n; j++ {
			dst[base+i+j] = byte(v >> (8 * j))
		}
	}
	return dst
}

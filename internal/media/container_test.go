package media

import (
	"bytes"
	"errors"
	"io"
	"sperke/internal/sphere"
	"sperke/internal/trace"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sperke/internal/tiling"
)

func TestSegmentRoundTrip(t *testing.T) {
	h := SegmentHeader{
		VideoID:  "concert-360",
		Quality:  3,
		Flags:    FlagSVCLayer,
		Tile:     17,
		Start:    4 * time.Second,
		Duration: 2 * time.Second,
	}
	payload := SyntheticPayload(42, 1000)
	var buf bytes.Buffer
	if err := WriteSegment(&buf, h, payload); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != SegmentLen(h.VideoID, len(payload)) {
		t.Fatalf("encoded %d bytes, SegmentLen says %d", buf.Len(), SegmentLen(h.VideoID, len(payload)))
	}
	got, gotPayload, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestSegmentRoundTripProperty(t *testing.T) {
	f := func(q uint8, tile uint16, startMs, durMs uint16, seed uint64, n uint16) bool {
		h := SegmentHeader{
			VideoID:  "v",
			Quality:  int(q),
			Tile:     tiling.TileID(tile),
			Start:    time.Duration(startMs) * time.Millisecond,
			Duration: time.Duration(durMs) * time.Millisecond,
		}
		payload := SyntheticPayload(seed, int(n))
		var buf bytes.Buffer
		if err := WriteSegment(&buf, h, payload); err != nil {
			return false
		}
		got, gotPayload, err := ReadSegment(&buf)
		return err == nil && got == h && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	_, payload, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 0 {
		t.Fatal("nonempty payload for empty write")
	}
}

func TestWriteSegmentValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSegment(&buf, SegmentHeader{VideoID: ""}, nil); err == nil {
		t.Fatal("empty video ID accepted")
	}
	if err := WriteSegment(&buf, SegmentHeader{VideoID: strings.Repeat("a", 256)}, nil); err == nil {
		t.Fatal("256-byte video ID accepted")
	}
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "x", Quality: 300}, nil); err == nil {
		t.Fatal("quality 300 accepted")
	}
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "x", Tile: 70000}, nil); err == nil {
		t.Fatal("tile 70000 accepted")
	}
}

func TestReadSegmentBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "x"}, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] = 'X'
	_, _, err := ReadSegment(bytes.NewReader(data))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadSegmentBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "x"}, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99
	_, _, err := ReadSegment(bytes.NewReader(data))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadSegmentCorruptPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "x"}, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xff
	_, _, err := ReadSegment(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadSegmentTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSegment(&buf, SegmentHeader{VideoID: "concert"}, SyntheticPayload(1, 500)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, headerFixedLen - 1, headerFixedLen + 2, len(data) - 1} {
		_, _, err := ReadSegment(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestReadSegmentStream(t *testing.T) {
	// Multiple segments back to back decode in order — the live push path
	// relies on this framing.
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		h := SegmentHeader{VideoID: "s", Quality: i, Tile: tiling.TileID(i), Flags: FlagLive}
		if err := WriteSegment(&buf, h, SyntheticPayload(uint64(i), 100*i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		h, payload, err := ReadSegment(&buf)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if h.Quality != i || len(payload) != 100*i {
			t.Fatalf("segment %d decoded out of order: %+v", i, h)
		}
	}
	if _, _, err := ReadSegment(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestSyntheticPayloadDeterministic(t *testing.T) {
	a := SyntheticPayload(7, 333)
	b := SyntheticPayload(7, 333)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed differs")
	}
	c := SyntheticPayload(8, 333)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds identical")
	}
	if len(SyntheticPayload(1, 0)) != 0 {
		t.Fatal("zero-length payload")
	}
}

func TestVersioningSchemeCounts(t *testing.T) {
	if OculusScheme.Versions() != 88 {
		t.Fatalf("Oculus versions = %d, want 88 (the paper's figure)", OculusScheme.Versions())
	}
}

func TestVersioningStorageExceedsTiling(t *testing.T) {
	v := testVideo(EncodingAVC)
	ratio := OculusScheme.StorageRatio(v)
	// 88 versions of (0.25 + 0.75*0.25) ≈ 38.5× the panorama per quality,
	// versus tiling's 1× per quality: expect a large multiple.
	if ratio < 10 {
		t.Fatalf("versioning/tiling storage ratio = %.1f, want >10", ratio)
	}
}

func TestVersioningDeliverySmallerThanPanorama(t *testing.T) {
	v := testVideo(EncodingAVC)
	d := OculusScheme.DeliveryBytes(v, 4, 0)
	p := v.PanoramaBytes(4, 0)
	if d >= p {
		t.Fatalf("versioning delivery %d not below full panorama %d", d, p)
	}
}

func TestVersionForCells(t *testing.T) {
	s := OculusScheme // 22 × 4
	y0, p0 := s.VersionFor(sphere.Orientation{Yaw: -180, Pitch: -90})
	if y0 != 0 || p0 != 0 {
		t.Fatalf("corner cell = (%d,%d)", y0, p0)
	}
	yMax, pMax := s.VersionFor(sphere.Orientation{Yaw: 179.9, Pitch: 90})
	if yMax != 21 || pMax != 3 {
		t.Fatalf("far corner = (%d,%d), want (21,3)", yMax, pMax)
	}
	// A yaw boundary sits every 360/22 ≈ 16.36°.
	a, _ := s.VersionFor(sphere.Orientation{Yaw: 0})
	b, _ := s.VersionFor(sphere.Orientation{Yaw: 17})
	if a == b {
		t.Fatal("17° of yaw did not cross a version boundary")
	}
}

func TestSessionDeliverySwitchTax(t *testing.T) {
	v := testVideo(EncodingAVC)
	// A still viewer: one version per chunk, no switches.
	still := &trace.HeadTrace{Samples: []trace.Sample{
		{At: 0, View: sphere.Orientation{Yaw: 5}},
		{At: v.Duration, View: sphere.Orientation{Yaw: 5}},
	}}
	bytesStill, swStill := OculusScheme.SessionDelivery(v, 4, still)
	if swStill != 0 {
		t.Fatalf("still viewer switched %d times", swStill)
	}
	if bytesStill <= 0 {
		t.Fatal("no delivery for still viewer")
	}
	// A panning viewer (25°/s) crosses a 16.4° cell boundary roughly
	// every 0.65 s — multiple switches per 2 s chunk.
	pan := &trace.HeadTrace{}
	for ts := time.Duration(0); ts <= v.Duration; ts += 100 * time.Millisecond {
		pan.Samples = append(pan.Samples, trace.Sample{
			At: ts, View: sphere.Orientation{Yaw: sphere.NormalizeYaw(25 * ts.Seconds())},
		})
	}
	bytesPan, swPan := OculusScheme.SessionDelivery(v, 4, pan)
	if swPan == 0 {
		t.Fatal("panning viewer never switched versions")
	}
	if bytesPan <= bytesStill {
		t.Fatalf("switch tax invisible: pan %d ≤ still %d", bytesPan, bytesStill)
	}
}

package media_test

import (
	"fmt"
	"time"

	"sperke/internal/media"
	"sperke/internal/tiling"
)

// ExampleVideo_UpgradeBytes demonstrates the §3.1.1 mismatch: raising a
// fetched chunk's quality costs a delta under SVC but a full re-fetch
// under AVC.
func ExampleVideo_UpgradeBytes() {
	base := media.Video{
		ID:            "demo",
		Duration:      time.Minute,
		ChunkDuration: 2 * time.Second,
		Grid:          tiling.GridCellular,
		Ladder:        media.DefaultLadder,
	}
	svc, avc := base, base
	svc.Encoding = media.EncodingSVC
	avc.Encoding = media.EncodingAVC

	tile := tiling.TileID(0)
	s := svc.UpgradeBytes(2, 4, tile, 0)
	a := avc.UpgradeBytes(2, 4, tile, 0)
	fmt.Printf("SVC delta is %.0f%% of the AVC re-fetch\n", float64(s)/float64(a)*100)
	// Output:
	// SVC delta is 82% of the AVC re-fetch
}

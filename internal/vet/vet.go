// Package vet is Sperke's domain-aware static-analysis framework: a
// pure-stdlib (go/ast + go/parser, no go/packages) analyzer suite that
// turns the repo's prose invariants into machine-checked CI gates.
//
// The invariants no generic linter knows about:
//
//   - experiments are pure functions of their seed — deterministic
//     packages must not read the wall clock or the global math/rand
//     state (checker clockhygiene) and must not let map iteration
//     order leak into rendered output (checker maporder);
//   - spherical geometry keeps degrees at API boundaries and radians
//     inside math/trig calls (checker unitsafety);
//   - the delivery path returns its typed error taxonomy, wrapping
//     causes with %w (checker errtaxonomy);
//   - metrics instruments flow through the nil-safe obs.Registry,
//     never ad-hoc struct literals (checker obsdiscipline).
//
// Run the suite with `go run ./cmd/sperke-vet ./...`. Suppress a
// finding with a trailing or preceding comment:
//
//	t := time.Now() //sperke:nolint(clockhygiene) — wall seam, see doc
//
// A bare `//sperke:nolint` suppresses every checker on that line. New
// checkers implement CheckFile or CheckPackage and register themselves
// in Analyzers; each ships true-positive and clean golden fixtures
// under testdata/<name>/ (see golden_test.go).
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position. Pos.Filename
// is the module-relative slash path of the offending file.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// String formats the diagnostic the way the CLI prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// File is one parsed source file plus the module-relative context the
// domain checkers key off.
type File struct {
	// Path is module-relative and slash-separated, e.g.
	// "internal/sim/sim.go".
	Path string
	Fset *token.FileSet
	AST  *ast.File
}

// Test reports whether the file is a _test.go file. Every shipped
// checker skips tests: they may use wall clocks and ad-hoc errors
// freely.
func (f *File) Test() bool { return strings.HasSuffix(f.Path, "_test.go") }

// Dir returns the file's module-relative directory.
func (f *File) Dir() string { return path.Dir(f.Path) }

// diag builds a Diagnostic for this file at pos.
func (f *File) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	p := f.Fset.Position(pos)
	p.Filename = f.Path
	return Diagnostic{Check: check, Pos: p, Message: fmt.Sprintf(format, args...)}
}

// Package groups the parsed files of one directory.
type Package struct {
	// Dir is module-relative, e.g. "internal/dash".
	Dir   string
	Files []*File
}

// Analyzer is one domain check. Exactly one of CheckFile and
// CheckPackage is set: CheckFile runs once per file, CheckPackage once
// per directory with every sibling file in view (for checks that need
// cross-file context such as struct field types or package-level
// sentinels).
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by `sperke-vet -list`.
	Doc          string
	CheckFile    func(*File) []Diagnostic
	CheckPackage func(*Package) []Diagnostic
}

// Analyzers returns the full checker suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ClockHygiene,
		UnitSafety,
		ErrTaxonomy,
		ObsDiscipline,
		MapOrder,
		BufOwnership,
	}
}

// ByName resolves a subset of Analyzers from comma-separated names.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	all := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		all[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("vet: unknown checker %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages, drops findings
// suppressed by //sperke:nolint comments, and returns the rest sorted
// by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		sup := newSuppressions(p)
		for _, a := range analyzers {
			var ds []Diagnostic
			switch {
			case a.CheckPackage != nil:
				ds = a.CheckPackage(p)
			case a.CheckFile != nil:
				for _, f := range p.Files {
					ds = append(ds, a.CheckFile(f)...)
				}
			}
			for _, d := range ds {
				if !sup.covers(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

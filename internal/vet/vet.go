// Package vet is Sperke's domain-aware static-analysis framework: a
// pure-stdlib analyzer suite (go/ast + go/parser for the syntax layer,
// go/types through a source-order importer for the typed layer — no
// go/packages either way) that turns the repo's prose invariants into
// machine-checked CI gates.
//
// The invariants no generic linter knows about:
//
//   - experiments are pure functions of their seed — deterministic
//     packages must not read the wall clock or the global math/rand
//     state, directly or laundered through helpers in other packages
//     (checker clockhygiene plus the interprocedural taint pass in
//     taint.go), and must not let map iteration order leak into
//     rendered output (checker maporder);
//   - spherical geometry keeps degrees at API boundaries and radians
//     inside math/trig calls (checker unitsafety);
//   - the delivery path returns its typed error taxonomy, wrapping
//     causes with %w (checker errtaxonomy);
//   - metrics instruments flow through the nil-safe obs.Registry,
//     never ad-hoc struct literals (checker obsdiscipline);
//   - pooled scratch buffers are returned before functions exit
//     (checker bufownership);
//   - contexts thread end-to-end on the delivery path (checker
//     ctxflow), nothing blocks while a sync mutex is held (checker
//     lockscope), and serving hot paths stream chunk bodies
//     writer-first (checker streamdiscipline) — all three resolved
//     over the whole-module type information (typed.go).
//
// Run the suite with `go run ./cmd/sperke-vet ./...`. Suppress a
// finding with a trailing or preceding comment:
//
//	t := time.Now() //sperke:nolint(clockhygiene) — wall seam, see doc
//
// A bare `//sperke:nolint` suppresses every checker on that line;
// waivers that stop suppressing anything are reported by the
// `-unused-nolint` gate. New checkers implement CheckFile,
// CheckPackage or CheckModule and register themselves in Analyzers;
// each ships true-positive and clean golden fixtures under
// testdata/<name>/ (see golden_test.go for single-file syntax
// fixtures, typed_golden_test.go for mini-module typed fixtures).
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position. Pos.Filename
// is the module-relative slash path of the offending file.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// String formats the diagnostic the way the CLI prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// File is one parsed source file plus the module-relative context the
// domain checkers key off.
type File struct {
	// Path is module-relative and slash-separated, e.g.
	// "internal/sim/sim.go".
	Path string
	Fset *token.FileSet
	AST  *ast.File
}

// Test reports whether the file is a _test.go file. Every shipped
// checker skips tests: they may use wall clocks and ad-hoc errors
// freely.
func (f *File) Test() bool { return strings.HasSuffix(f.Path, "_test.go") }

// Dir returns the file's module-relative directory.
func (f *File) Dir() string { return path.Dir(f.Path) }

// diag builds a Diagnostic for this file at pos.
func (f *File) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	p := f.Fset.Position(pos)
	p.Filename = f.Path
	return Diagnostic{Check: check, Pos: p, Message: fmt.Sprintf(format, args...)}
}

// Package groups the parsed files of one directory.
type Package struct {
	// Dir is module-relative, e.g. "internal/dash".
	Dir   string
	Files []*File
}

// Analyzer is one domain check. At least one of the Check hooks is
// set: CheckFile runs once per file, CheckPackage once per directory
// with every sibling file in view (for checks that need cross-file
// context such as struct field types or package-level sentinels), and
// CheckModule once over the whole type-resolved module (for checks
// that follow facts across package boundaries — see typed.go). The
// syntax-only driver (Run) skips CheckModule; the typed driver
// (RunModule) runs all three, so a checker may pair a per-file syntax
// rule with a module-wide typed one (clockhygiene does).
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by `sperke-vet -list`.
	Doc          string
	CheckFile    func(*File) []Diagnostic
	CheckPackage func(*Package) []Diagnostic
	CheckModule  func(*Module) []Diagnostic
}

// Analyzers returns the full checker suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ClockHygiene,
		UnitSafety,
		ErrTaxonomy,
		ObsDiscipline,
		MapOrder,
		BufOwnership,
		CtxFlow,
		LockScope,
		StreamDiscipline,
	}
}

// ByName resolves a subset of Analyzers from comma-separated names.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	all := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		all[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("vet: unknown checker %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers' syntax-level hooks over the packages,
// drops findings suppressed by //sperke:nolint comments, and returns
// the rest sorted by position. CheckModule hooks need type information
// and only run under the typed driver, RunModule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		sup := newSuppressions(p.Files)
		for _, a := range analyzers {
			for _, d := range runSyntax(a, p) {
				if !sup.covers(d) {
					out = append(out, d)
				}
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// runSyntax runs an analyzer's CheckPackage or CheckFile hook on one
// package.
func runSyntax(a *Analyzer, p *Package) []Diagnostic {
	switch {
	case a.CheckPackage != nil:
		return a.CheckPackage(p)
	case a.CheckFile != nil:
		var ds []Diagnostic
		for _, f := range p.Files {
			ds = append(ds, a.CheckFile(f)...)
		}
		return ds
	}
	return nil
}

// UnusedNolint is a //sperke:nolint comment that suppressed nothing in
// a full run — a stale waiver whose violation has since been fixed (or
// whose checker name is misspelled). Surfacing them keeps the waiver
// inventory honest: every surviving nolint marks a live, documented
// seam.
type UnusedNolint struct {
	Path   string
	Line   int
	Checks []string // ["*"] for a bare //sperke:nolint
}

func (u UnusedNolint) String() string {
	if len(u.Checks) == 1 && u.Checks[0] == "*" {
		return fmt.Sprintf("%s:%d: unused //sperke:nolint", u.Path, u.Line)
	}
	return fmt.Sprintf("%s:%d: unused //sperke:nolint(%s)", u.Path, u.Line, strings.Join(u.Checks, ","))
}

// ModuleResult is one typed run's outcome.
type ModuleResult struct {
	Diags []Diagnostic
	// Unused lists the nolint comments that suppressed nothing. Only
	// meaningful when the run covered the full analyzer suite — a
	// subset run trivially leaves other checkers' waivers unused.
	Unused []UnusedNolint
}

// RunModule executes the analyzers — syntax hooks and typed
// CheckModule hooks — over the type-resolved module, applies nolint
// suppression, and reports both the surviving findings and the
// waivers that suppressed nothing.
func RunModule(m *Module, analyzers []*Analyzer) ModuleResult {
	var all []*File
	for _, tp := range m.Pkgs {
		all = append(all, tp.Files...)
	}
	sup := newSuppressions(all)
	var out []Diagnostic
	keep := func(ds []Diagnostic) {
		for _, d := range ds {
			if !sup.covers(d) {
				out = append(out, d)
			}
		}
	}
	for _, a := range analyzers {
		for _, tp := range m.Pkgs {
			keep(runSyntax(a, &Package{Dir: tp.Dir, Files: tp.Files}))
		}
		if a.CheckModule != nil {
			keep(a.CheckModule(m))
		}
	}
	sortDiagnostics(out)
	return ModuleResult{Diags: out, Unused: sup.unused()}
}

// sortDiagnostics orders findings by position, then checker name.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

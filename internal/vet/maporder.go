package vet

import (
	"go/ast"
	"go/token"
)

// MapOrder pins the PR 2 "byte-identical experiment output" claim at
// the source: in deterministic packages, a `for range` over a map whose
// body appends to a slice leaks Go's randomized iteration order into
// whatever that slice feeds (rendered tables, serialized snapshots,
// fetch plans). The finding is waived when the function visibly
// restores order — a sort.*/slices.* call on the destination slice
// after the loop.
//
// Map typing is inferred without go/types: local idents declared via
// make(map...), map literals, explicit var/param/result types, plus
// package-wide struct fields and package-level vars with map types.
// Indexing a slice-of-maps or map-of-maps resolves to the element.
// Expressions the checker cannot resolve are skipped, never guessed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map-range loops that append to slices in deterministic packages without sorting",
	CheckPackage: func(p *Package) []Diagnostic {
		if !inSpan(p.Dir, deterministicSpans) {
			return nil
		}
		types := newTypeIndex(p)
		var out []Diagnostic
		for _, f := range p.Files {
			if f.Test() {
				continue
			}
			funcDecls(f, func(name string, fd *ast.FuncDecl) {
				if fd.Body == nil {
					return
				}
				locals := types.localTypes(fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					if !types.isMap(rng.X, locals) {
						return true
					}
					for _, target := range appendTargets(rng.Body) {
						if sortedAfter(fd.Body, rng, target) {
							continue
						}
						out = append(out, f.diag("maporder", rng.Pos(),
							"map iteration order leaks into slice %q (func %s): sort the keys first or sort %q before it is returned/serialized",
							target, name, target))
					}
					return true
				})
			})
		}
		return out
	},
}

// typeIndex carries the package-wide name→type-expression maps the
// heuristic resolver consults.
type typeIndex struct {
	// fields maps struct field names (any struct in the package) to
	// their declared type expression.
	fields map[string]ast.Expr
	// pkgVars maps package-level var names to a type expression, from
	// either an explicit type or a make/literal initializer.
	pkgVars map[string]ast.Expr
}

func newTypeIndex(p *Package) *typeIndex {
	ti := &typeIndex{fields: make(map[string]ast.Expr), pkgVars: make(map[string]ast.Expr)}
	for _, f := range p.Files {
		for _, d := range f.AST.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, id := range fld.Names {
							ti.fields[id.Name] = fld.Type
						}
					}
				case *ast.ValueSpec:
					for i, id := range spec.Names {
						if spec.Type != nil {
							ti.pkgVars[id.Name] = spec.Type
						} else if i < len(spec.Values) {
							if t := initializerType(spec.Values[i]); t != nil {
								ti.pkgVars[id.Name] = t
							}
						}
					}
				}
			}
		}
	}
	return ti
}

// localTypes scans a function for idents with locally-evident types:
// parameters, receivers, var decls, and := from make()/composite
// literals.
func (ti *typeIndex) localTypes(fd *ast.FuncDecl) map[string]ast.Expr {
	locals := make(map[string]ast.Expr)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, id := range fld.Names {
				locals[id.Name] = fld.Type
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	if fd.Body == nil {
		return locals
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if t := initializerType(n.Rhs[i]); t != nil {
					locals[id.Name] = t
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil {
						for _, id := range vs.Names {
							locals[id.Name] = vs.Type
						}
					}
				}
			}
		}
		return true
	})
	return locals
}

// initializerType extracts a type expression from make(T, ...) and
// composite-literal initializers.
func initializerType(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 1 {
			return e.Args[0]
		}
	case *ast.CompositeLit:
		return e.Type
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return initializerType(e.X)
		}
	}
	return nil
}

// isMap reports whether expr is map-valued as far as the heuristic
// resolver can tell.
func (ti *typeIndex) isMap(expr ast.Expr, locals map[string]ast.Expr) bool {
	_, ok := ti.resolve(expr, locals).(*ast.MapType)
	return ok
}

// resolve maps an expression to a type expression, or nil when unknown.
func (ti *typeIndex) resolve(expr ast.Expr, locals map[string]ast.Expr) ast.Expr {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return ti.resolve(e.X, locals)
	case *ast.Ident:
		if t, ok := locals[e.Name]; ok {
			return t
		}
		return ti.pkgVars[e.Name]
	case *ast.SelectorExpr:
		return ti.fields[e.Sel.Name]
	case *ast.IndexExpr:
		switch base := ti.resolve(e.X, locals).(type) {
		case *ast.ArrayType:
			return base.Elt
		case *ast.MapType:
			return base.Value
		}
	case *ast.CompositeLit:
		return e.Type
	}
	return nil
}

// appendTargets returns the names of slices the block grows via
// s = append(s, ...).
func appendTargets(body *ast.BlockStmt) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == lhs.Name && !seen[lhs.Name] {
			seen[lhs.Name] = true
			out = append(out, lhs.Name)
		}
		return true
	})
	return out
}

// sortedAfter reports whether a sort.*/slices.* call whose first
// argument is the named slice appears after the range loop inside the
// function body.
func sortedAfter(body *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == target {
			found = true
		}
		return true
	})
	return found
}

package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Interprocedural taint: which functions (transitively) read the wall
// clock or the globally-seeded math/rand state. The per-file
// clockhygiene checker sees only direct mentions, so a one-line helper
// launders nondeterminism past it:
//
//	package timeutil                       // not a deterministic span
//	func Stamp() int64 { return time.Now().UnixNano() }
//
//	package core                           // deterministic
//	func tick() int64 { return timeutil.Stamp() }  // invisible per-file
//
// The taint pass propagates "wall-clock tainted" / "global-rand
// tainted" facts along the static call graph to a fixed point, so the
// typed clockhygiene pass can flag the tick → Stamp call site — the
// point where taint crosses into a deterministic package.
//
// Allowlisted seams (clockAllowlist) are taint barriers: obs.NewWall
// is the designated wall adapter, so calling it is not laundering.
// Calls through function values (clock fields, callbacks) have no
// static callee and do not propagate — the same injection seams the
// hygiene rules mandate are exactly the edges the analysis is meant to
// treat as clean.

// taintKind is a bitmask of nondeterminism sources.
type taintKind uint8

const (
	taintWall taintKind = 1 << iota
	taintRand
)

func (k taintKind) String() string {
	switch {
	case k&taintWall != 0 && k&taintRand != 0:
		return "wall-clock and global-rand"
	case k&taintRand != 0:
		return "global-rand"
	default:
		return "wall-clock"
	}
}

// callEdge is one static call site.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
	file   *File
}

// taintFacts is the module's computed taint state.
type taintFacts struct {
	// tainted maps each module function to the nondeterminism it
	// (transitively) touches; absent means clean.
	tainted map[*types.Func]taintKind
	// edges lists each module function's static call sites, in source
	// order per function.
	edges map[*types.Func][]callEdge
}

// Taint computes (once) and returns the module's taint facts.
func (m *Module) Taint() *taintFacts {
	m.taintOnce.Do(func() { m.taintF = buildTaint(m) })
	return m.taintF
}

func buildTaint(m *Module) *taintFacts {
	tf := &taintFacts{
		tainted: make(map[*types.Func]taintKind),
		edges:   make(map[*types.Func][]callEdge),
	}
	// Seed direct taint and record static call edges. Function literals
	// are attributed to their enclosing declaration: a closure that
	// reads the wall clock taints the function that builds it, which is
	// how the per-file checker scopes blame too.
	for _, tp := range m.Pkgs {
		typedFileDecls(tp, func(f *File, name string, fd *ast.FuncDecl) {
			fn := declFunc(tp.Info, fd)
			if fn == nil {
				return
			}
			if clockAllowlist[typedFuncKey(m, fn)] {
				return // seams neither carry nor propagate taint
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if k := directTaint(tp.Info.Uses[n]); k != 0 {
						tf.tainted[fn] |= k
					}
				case *ast.CallExpr:
					callee := calleeOf(tp.Info, n)
					if callee != nil && callee.Pkg() != nil && m.Internal(callee.Pkg().Path()) {
						tf.edges[fn] = append(tf.edges[fn], callEdge{callee: callee, pos: n.Pos(), file: f})
					}
				}
				return true
			})
		})
	}
	// Propagate along call edges to a fixed point. The module's call
	// graph is small; a few passes settle it.
	for changed := true; changed; {
		changed = false
		for fn, edges := range tf.edges {
			if clockAllowlist[typedFuncKey(m, fn)] {
				continue
			}
			for _, e := range edges {
				if k := tf.tainted[e.callee]; k&^tf.tainted[fn] != 0 {
					tf.tainted[fn] |= k
					changed = true
				}
			}
		}
	}
	return tf
}

// directTaint classifies one used object as a nondeterminism source:
// the time package's wall-clock reads, or package-level use of the
// globally-seeded math/rand API (constructors and types excepted).
func directTaint(obj types.Object) taintKind {
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return 0
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return 0 // methods (e.g. *rand.Rand, time.Timer) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockForbidden[fn.Name()] {
			return taintWall
		}
	case "math/rand", "math/rand/v2":
		if ast.IsExported(fn.Name()) && !randConstructors[fn.Name()] {
			return taintRand
		}
	}
	return 0
}

// taintDiagnostics is the typed half of clockhygiene: for every
// function in a clock-disciplined span, flag calls whose callee lives
// outside those spans yet is (transitively) tainted — the exact spot
// where laundered nondeterminism crosses into code that must be a pure
// function of its seed. Direct in-span mentions stay with the per-file
// checker, and tainted in-span callees are flagged at their own
// boundary call, so each launder is reported exactly once.
func taintDiagnostics(m *Module) []Diagnostic {
	tf := m.Taint()
	var out []Diagnostic
	for _, tp := range m.Pkgs {
		if !inSpan(tp.Dir, clockSpans) {
			continue
		}
		typedFileDecls(tp, func(f *File, name string, fd *ast.FuncDecl) {
			fn := declFunc(tp.Info, fd)
			if fn == nil || clockAllowlist[typedFuncKey(m, fn)] {
				return
			}
			for _, e := range tf.edges[fn] {
				k := tf.tainted[e.callee]
				if k == 0 {
					continue
				}
				calleeDir := m.DirOf(e.callee.Pkg().Path())
				if inSpan(calleeDir, clockSpans) {
					continue // flagged at its own boundary (or directly per-file)
				}
				out = append(out, e.file.diag("clockhygiene", e.pos,
					"call to %s launders %s use into deterministic package %s (func %s): thread an injected clock/rand through, or allowlist a named seam",
					calleeDisplay(m, e.callee), k, tp.Dir, name))
			}
		})
	}
	return out
}

// calleeDisplay renders a cross-package callee as "pkg.Func" or
// "pkg.Type.Method" using the callee package's base name.
func calleeDisplay(m *Module, fn *types.Func) string {
	p := fn.Pkg().Path()
	base := p
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		base = p[i+1:]
	}
	return base + "." + typedDisplayName(fn)
}

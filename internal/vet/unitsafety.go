package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// trigRadians are the math functions that take radians; degreeReturning
// are the inverse functions whose radian results routinely get stored
// in Sperke's degree-valued orientation fields.
var (
	trigRadians = map[string]bool{
		"Sin": true, "Cos": true, "Tan": true,
		"Asin": true, "Acos": true, "Atan": true, "Atan2": true,
	}
	trigInverse = map[string]bool{
		"Asin": true, "Acos": true, "Atan": true, "Atan2": true,
	}
)

// degreeSpans are the packages whose exported API speaks degrees; the
// inverse (radian-result-into-degree-field) rule runs only there.
var degreeSpans = []string{"internal/sphere", "internal/tiling"}

// UnitSafety guards the degree/radian boundary of the spherical
// geometry: orientation fields (Yaw/Pitch/Roll) and *Deg-suffixed names
// are degree-valued by convention, while math's trig wants radians.
//
// Forward rule (module-wide): a math.Sin/Cos/... argument mentioning a
// degree-valued name must carry the *math.Pi/180 conversion inside the
// same expression.
//
// Inverse rule (sphere/tiling only): an assignment or composite-literal
// entry whose target is degree-named and whose value contains
// math.Asin/Acos/Atan/Atan2 must convert with *180/math.Pi in the same
// expression.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "flag math trig applied to degree-named values without an adjacent Pi/180 conversion (and the inverse)",
	CheckFile: func(f *File) []Diagnostic {
		if f.Test() {
			return nil
		}
		mathName := importName(f.AST, "math")
		if mathName == "" {
			return nil
		}
		var out []Diagnostic
		// Forward: degrees flowing into radian-taking trig.
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := pkgCall(call, mathName)
			if !ok || !trigRadians[fn] {
				return true
			}
			for _, arg := range call.Args {
				if mentionsDegreeName(arg) && !mentionsPiAnd180(arg, mathName) {
					out = append(out, f.diag("unitsafety", arg.Pos(),
						"degree-valued expression passed to %s.%s without *%s.Pi/180 conversion",
						mathName, fn, mathName))
				}
			}
			return true
		})
		if !inSpan(f.Path, degreeSpans) {
			return out
		}
		// Inverse: radian-returning trig landing in degree-named targets.
		flag := func(target ast.Expr, value ast.Expr) {
			if !isDegreeName(exprName(target)) {
				return
			}
			if containsInverseTrig(value, mathName) && !mentionsPiAnd180(value, mathName) {
				out = append(out, f.diag("unitsafety", value.Pos(),
					"radian result of inverse trig stored in degree-valued %q without *180/%s.Pi conversion",
					exprName(target), mathName))
			}
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					flag(n.Lhs[i], n.Rhs[i])
				}
			case *ast.KeyValueExpr:
				if k, ok := n.Key.(*ast.Ident); ok {
					flag(k, n.Value)
				}
			}
			return true
		})
		return out
	},
}

// exprName extracts the trailing identifier of an ident or selector.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// isDegreeName matches the orientation fields and the *Deg/*Degrees
// naming convention.
func isDegreeName(name string) bool {
	switch strings.ToLower(name) {
	case "yaw", "pitch", "roll", "deg", "degrees":
		return true
	}
	lower := strings.ToLower(name)
	return strings.HasSuffix(lower, "deg") || strings.HasSuffix(lower, "degrees")
}

// mentionsDegreeName reports whether the expression references a
// degree-valued field or a *Deg-suffixed identifier. Bare lowercase
// locals like "yaw" are deliberately not matched in the forward
// direction: the convention is that converted radian temporaries reuse
// those names (yaw := o.Yaw * math.Pi / 180).
func mentionsDegreeName(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			switch n.Sel.Name {
			case "Yaw", "Pitch", "Roll":
				found = true
			}
			if isDegSuffixed(n.Sel.Name) {
				found = true
			}
		case *ast.Ident:
			if isDegSuffixed(n.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isDegSuffixed matches explicit degree-suffixed names of any case.
func isDegSuffixed(name string) bool {
	lower := strings.ToLower(name)
	return lower == "deg" || lower == "degrees" ||
		strings.HasSuffix(lower, "deg") || strings.HasSuffix(lower, "degrees")
}

// mentionsPiAnd180 reports whether the expression carries a degree↔radian
// conversion: both math.Pi and the literal 180 appear somewhere in it.
func mentionsPiAnd180(e ast.Expr, mathName string) bool {
	var hasPi, has180 bool
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && id.Name == mathName && n.Sel.Name == "Pi" {
				hasPi = true
			}
		case *ast.BasicLit:
			if n.Kind == token.INT && n.Value == "180" {
				has180 = true
			}
		}
		return true
	})
	return hasPi && has180
}

// containsInverseTrig reports whether the expression calls
// math.Asin/Acos/Atan/Atan2.
func containsInverseTrig(e ast.Expr, mathName string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := pkgCall(call, mathName); ok && trigInverse[fn] {
				found = true
			}
		}
		return !found
	})
	return found
}

package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// taxonomySpans are the delivery-path packages that carry a typed error
// taxonomy (dash.Error kinds, rtmp/transport sentinels). Callers there
// branch on errors.Is/As, so causes must stay inspectable.
var taxonomySpans = []string{
	"internal/dash",
	"internal/transport",
	"internal/rtmp",
}

// ErrTaxonomy enforces the delivery path's error discipline:
//
//   - fmt.Errorf that embeds an error value must wrap it with %w so
//     errors.Is/As keep seeing the sentinel or *dash.Error underneath;
//   - errors.New inside a function body is forbidden — ad-hoc opaque
//     errors defeat the taxonomy. Package-level sentinel declarations
//     (var ErrX = errors.New(...)) are the taxonomy and stay legal.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "require %w wrapping and typed sentinels (no in-function errors.New) in dash/transport/rtmp",
	CheckPackage: func(p *Package) []Diagnostic {
		if !inSpan(p.Dir, taxonomySpans) {
			return nil
		}
		var out []Diagnostic
		for _, f := range p.Files {
			if f.Test() {
				continue
			}
			fmtName := importName(f.AST, "fmt")
			errorsName := importName(f.AST, "errors")
			if fmtName == "" && errorsName == "" {
				continue
			}
			funcDecls(f, func(name string, fd *ast.FuncDecl) {
				ast.Inspect(fd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn, ok := pkgCall(call, errorsName); ok && errorsName != "" && fn == "New" {
						out = append(out, f.diag("errtaxonomy", call.Pos(),
							"in-function %s.New in %s (func %s): return a typed taxonomy error (sentinel var or *dash.Error) so callers can errors.Is/As",
							errorsName, p.Dir, name))
					}
					if fn, ok := pkgCall(call, fmtName); ok && fmtName != "" && fn == "Errorf" {
						if d, bad := errorfWithoutWrap(f, call, fmtName); bad {
							out = append(out, d)
						}
					}
					return true
				})
			})
		}
		return out
	},
}

// errorfWithoutWrap flags fmt.Errorf calls that pass an error-like
// argument but whose format string has no %w verb.
func errorfWithoutWrap(f *File, call *ast.CallExpr, fmtName string) (Diagnostic, bool) {
	if len(call.Args) < 2 {
		return Diagnostic{}, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
		return Diagnostic{}, false
	}
	for _, arg := range call.Args[1:] {
		if name := exprName(arg); errorLikeName(name) {
			return f.diag("errtaxonomy", arg.Pos(),
				"%s.Errorf embeds %q without %%w: wrap the cause so the taxonomy stays inspectable",
				fmtName, name), true
		}
	}
	return Diagnostic{}, false
}

// errorLikeName matches the idiomatic error variable spellings: err,
// derr, copyErr, e.Err, lastError, ...
func errorLikeName(name string) bool {
	lower := strings.ToLower(name)
	return lower == "err" || strings.HasSuffix(lower, "err") || strings.HasSuffix(lower, "error")
}

package vet

import (
	"go/ast"
	"go/types"
)

// ctxSpans are the delivery-path packages where a dropped context
// breaks cancellation end-to-end: a viewer who closes the player must
// unwind synthesis at the origin, not leave goroutines fetching chunks
// nobody will read.
var ctxSpans = []string{
	"internal/dash",
	"internal/serve",
	"internal/cluster",
	"internal/transport",
	"internal/live",
}

// ctxAllowlist names the functions allowed to mint a fresh root
// context inside the spans — each is a documented seam, not a dropped
// caller context. Keys are "dir:Func" / "dir:Type.Method".
var ctxAllowlist = map[string]bool{
	// Legacy Submit callers never carried a context; Request.Context
	// materializes the background root for that compatibility path, and
	// SubmitContext threads the real one.
	"internal/transport:Request.Context": true,
	// The store's singleflight runs synthesis on a flight-owned context
	// that outlives any single caller and is canceled only when every
	// sharing caller has departed — a fresh root by design.
	"internal/serve:newFlightCtx": true,
	// Health probes originate inside the cluster's probe loop, not from
	// any viewer request; probeCtx mints the root they run under.
	"internal/cluster:probeCtx": true,
	// Background warm work (replica writes, crowd-prior pre-warm
	// syntheses) runs on the warm worker, decoupled by design from the
	// viewer request that enqueued it — cancellation would couple them
	// back. warmCtx mints that root.
	"internal/cluster:warmCtx": true,
}

// CtxFlow enforces context propagation on the delivery path: inside
// ctxSpans, context.Background() and context.TODO() are forbidden
// outside allowlisted seams, and passing a nil context to a
// context-accepting callee is always a bug. The check is type-resolved
// — aliased imports and indirect references to the constructors are
// caught — but does not trace derivation: it trusts that whatever
// non-nil context a function passes along descends from its caller's.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO and nil contexts on the delivery path outside allowlisted seams",
	CheckModule: func(m *Module) []Diagnostic {
		var out []Diagnostic
		for _, tp := range m.Pkgs {
			if !inSpan(tp.Dir, ctxSpans) {
				continue
			}
			check := func(f *File, name string, root ast.Node) {
				ast.Inspect(root, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(tp.Info, call)
					if callee == nil {
						return true
					}
					if callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
						(callee.Name() == "Background" || callee.Name() == "TODO") {
						out = append(out, f.diag("ctxflow", call.Pos(),
							"context.%s in delivery package %s (%s): thread the caller's ctx through, or allowlist a named seam",
							callee.Name(), tp.Dir, name))
					}
					sig, _ := callee.Type().(*types.Signature)
					if sig == nil {
						return true
					}
					for i, arg := range call.Args {
						if i >= sig.Params().Len() && !sig.Variadic() {
							break
						}
						pi := i
						if pi >= sig.Params().Len() {
							pi = sig.Params().Len() - 1
						}
						if !isCtxType(sig.Params().At(pi).Type()) {
							continue
						}
						if tv, ok := tp.Info.Types[arg]; ok && tv.IsNil() {
							out = append(out, f.diag("ctxflow", arg.Pos(),
								"nil context passed to %s in delivery package %s (%s): pass the caller's ctx",
								typedDisplayName(callee), tp.Dir, name))
						}
					}
					return true
				})
			}
			typedFileDecls(tp, func(f *File, name string, fd *ast.FuncDecl) {
				fn := declFunc(tp.Info, fd)
				if fn != nil && ctxAllowlist[typedFuncKey(m, fn)] {
					return
				}
				check(f, name, fd)
			})
			// Package-level var initializers can mint a background root
			// too (var rootCtx = context.Background()).
			for _, f := range tp.Files {
				if f.Test() {
					continue
				}
				for _, d := range f.AST.Decls {
					if gd, ok := d.(*ast.GenDecl); ok {
						check(f, "package-level decl", gd)
					}
				}
			}
		}
		return out
	},
}

package vet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Load walks the module tree rooted at root (the directory holding
// go.mod), parses every .go file, and groups the results by directory.
// It skips .git, vendor, hidden directories, and testdata trees (which
// hold this package's deliberately-violating fixtures).
func Load(root string) ([]*Package, error) {
	byDir := make(map[string]*Package)
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		f, err := ParseFile(p, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		dir := f.Dir()
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Path < p.Files[j].Path })
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out, nil
}

// ParseFile parses the file at osPath, recording positions under the
// module-relative slash path modPath.
func ParseFile(osPath, modPath string) (*File, error) {
	src, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	return ParseSource(src, modPath)
}

// ParseSource parses in-memory source under the given module-relative
// path — the fixture harness uses it directly.
func ParseSource(src []byte, modPath string) (*File, error) {
	fset := token.NewFileSet()
	af, err := parseInto(fset, modPath, src)
	if err != nil {
		return nil, err
	}
	return &File{Path: modPath, Fset: fset, AST: af}, nil
}

// parseInto parses src into an existing FileSet — the typed loader
// needs every file of a package (and the whole module) on one set.
func parseInto(fset *token.FileSet, modPath string, src []byte) (*ast.File, error) {
	af, err := parser.ParseFile(fset, modPath, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("vet: parse %s: %w", modPath, err)
	}
	return af, nil
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("vet: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// suppressions indexes //sperke:nolint comments. A nolint comment
// suppresses matching diagnostics on its own line and on the line
// directly below it (so it can trail the offending expression or sit
// on its own line above it). Each comment tracks whether it ever
// suppressed anything, so a full run can report stale waivers.
type suppressions struct {
	// byFile maps path -> line -> comments anchored there.
	byFile map[string]map[int][]*nolintComment
	all    []*nolintComment
}

// nolintComment is one waiver comment; checks containing "*" waives
// every checker.
type nolintComment struct {
	path   string
	line   int
	test   bool
	checks []string
	used   bool
}

const nolintPrefix = "//sperke:nolint"

func newSuppressions(files []*File) *suppressions {
	s := &suppressions{byFile: make(map[string]map[int][]*nolintComment)}
	for _, f := range files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, nolintPrefix)
				if !ok {
					continue
				}
				checks := []string{"*"}
				if rest, ok := strings.CutPrefix(text, "("); ok {
					if inner, _, ok := strings.Cut(rest, ")"); ok {
						checks = strings.Split(inner, ",")
						for i := range checks {
							checks[i] = strings.TrimSpace(checks[i])
						}
					}
				}
				lines := s.byFile[f.Path]
				if lines == nil {
					lines = make(map[int][]*nolintComment)
					s.byFile[f.Path] = lines
				}
				nc := &nolintComment{
					path:   f.Path,
					line:   f.Fset.Position(c.Pos()).Line,
					test:   f.Test(),
					checks: checks,
				}
				lines[nc.line] = append(lines[nc.line], nc)
				s.all = append(s.all, nc)
			}
		}
	}
	return s
}

// covers reports whether d is suppressed, marking the suppressing
// comment used.
func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byFile[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, nc := range lines[line] {
			for _, c := range nc.checks {
				if c == "*" || c == d.Check {
					nc.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// unused returns the waivers that never suppressed anything, sorted by
// position. Test files are exempt: the checkers skip them, so their
// nolints are documentation, not waivers.
func (s *suppressions) unused() []UnusedNolint {
	var out []UnusedNolint
	for _, nc := range s.all {
		if nc.used || nc.test {
			continue
		}
		out = append(out, UnusedNolint{Path: nc.path, Line: nc.line, Checks: nc.checks})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// ---- shared AST helpers for the checkers ----

// importName returns the local identifier the file binds importPath to:
// the declared alias, or the base name of the path when unaliased.
// Blank and dot imports return "".
func importName(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path.Base(p)
	}
	return ""
}

// pkgCall matches a call to <pkgIdent>.<fn> and returns fn's name.
func pkgCall(call *ast.CallExpr, pkgIdent string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgIdent {
		return "", false
	}
	return sel.Sel.Name, true
}

// inSpan reports whether the module-relative path (file or dir) lives
// under one of the listed package spans.
func inSpan(p string, spans []string) bool {
	for _, s := range spans {
		if p == s || strings.HasPrefix(p, s+"/") {
			return true
		}
	}
	return false
}

// deterministicSpans are the package trees whose outputs must be pure
// functions of their inputs: experiment tables, QoE scores, ABR plans
// and metrics snapshots are all compared byte-for-byte across runs.
var deterministicSpans = []string{
	"internal/sim",
	"internal/experiments",
	"internal/core",
	"internal/qoe",
	"internal/abr",
	"internal/obs",
}

// funcDecls invokes fn for every function declaration in the file with
// a stable display name: "Name" for functions, "Recv.Name" for methods.
func funcDecls(f *File, fn func(name string, decl *ast.FuncDecl)) {
	for _, d := range f.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn(funcDisplayName(fd), fd)
	}
}

// funcDisplayName renders "Name" or "Recv.Name".
func funcDisplayName(fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Drop type parameters on generic receivers.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return name
}

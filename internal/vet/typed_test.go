package vet

import (
	"strings"
	"testing"
)

// TestLoadModuleTypesWholeTree is the typed loader's smoke test: the
// real module type-checks end to end through the source-order importer,
// packages come out in dependency order, and lookups resolve.
func TestLoadModuleTypesWholeTree(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if m.Path != "sperke" {
		t.Fatalf("module path = %q, want sperke", m.Path)
	}
	if len(m.Pkgs) < 20 {
		t.Fatalf("typed load found only %d packages", len(m.Pkgs))
	}
	seen := make(map[string]bool, len(m.Pkgs))
	for _, tp := range m.Pkgs {
		if tp.Pkg == nil || tp.Info == nil {
			t.Fatalf("package %s missing types", tp.Dir)
		}
		// Dependency order: every module-internal import of tp must
		// already have been checked.
		for _, imp := range tp.Pkg.Imports() {
			if m.Internal(imp.Path()) && !seen[imp.Path()] {
				t.Fatalf("package %s checked before its import %s", tp.Dir, imp.Path())
			}
		}
		seen[tp.ImportPath] = true
	}
	dash := m.ByDir("internal/dash")
	if dash == nil {
		t.Fatal("internal/dash not loaded")
	}
	if m.ByImportPath("sperke/internal/dash") != dash {
		t.Fatal("ByImportPath and ByDir disagree on internal/dash")
	}
	if dash.Pkg.Scope().Lookup("ChunkSource") == nil {
		t.Fatal("dash.ChunkSource not resolved")
	}
}

// TestTaintPropagatesAcrossPackages pins the interprocedural pass in
// isolation: a two-hop launder taints every function on the chain, and
// the allowlisted seam is a barrier that keeps taint from spreading
// through it.
func TestTaintPropagatesAcrossPackages(t *testing.T) {
	m, err := LoadModuleSource(map[string][]byte{
		"internal/timeutil/t.go": []byte(`package timeutil
import "time"
func NowNanos() int64 { return time.Now().UnixNano() }
`),
		"internal/xutil/x.go": []byte(`package xutil
import "sperke/internal/timeutil"
func Stamp() int64 { return timeutil.NowNanos() }
`),
		"internal/obs/wall.go": []byte(`package obs
import "time"
func NewWall() int64 { return time.Now().UnixNano() }
`),
		"internal/core/c.go": []byte(`package core
import (
	"sperke/internal/obs"
	"sperke/internal/xutil"
)
func tick() int64 { return xutil.Stamp() }
func seam() int64 { return obs.NewWall() }
`),
	})
	if err != nil {
		t.Fatal(err)
	}
	tf := m.Taint()
	wantTainted := map[string]taintKind{
		"internal/timeutil:NowNanos": taintWall,
		"internal/xutil:Stamp":       taintWall,
		"internal/core:tick":         taintWall,
	}
	got := make(map[string]taintKind)
	for fn, k := range tf.tainted {
		got[typedFuncKey(m, fn)] = k
	}
	for key, k := range wantTainted {
		if got[key] != k {
			t.Errorf("%s: taint = %v, want %v", key, got[key], k)
		}
	}
	// obs.NewWall is the allowlisted wall seam: it must not carry taint,
	// and calling it must not taint the caller.
	for _, key := range []string{"internal/obs:NewWall", "internal/core:seam"} {
		if k, ok := got[key]; ok {
			t.Errorf("%s: tainted %v through an allowlisted seam", key, k)
		}
	}

	diags := taintDiagnostics(m)
	if len(diags) != 1 {
		t.Fatalf("taint diagnostics = %d, want exactly 1 (the core boundary call):\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Filename != "internal/core/c.go" || !strings.Contains(d.Message, "xutil.Stamp") {
		t.Fatalf("unexpected boundary diagnostic: %s", d)
	}
}

// TestWholeTreeIsCleanTyped is the typed acceptance gate: the full
// nine-checker suite over the type-resolved real module reports zero
// findings and zero stale nolint waivers.
func TestWholeTreeIsCleanTyped(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	res := RunModule(m, Analyzers())
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	for _, u := range res.Unused {
		t.Errorf("%s", u)
	}
}

// TestUnusedNolintReporting: a waiver that suppresses a finding is
// used; one anchored to clean code is reported stale; test-file
// waivers are exempt.
func TestUnusedNolintReporting(t *testing.T) {
	m, err := LoadModuleSource(map[string][]byte{
		"internal/serve/s.go": []byte(`package serve
import "context"
func root() context.Context {
	return context.Background() //sperke:nolint(ctxflow) — documented seam
}
func clean(ctx context.Context) context.Context {
	return ctx //sperke:nolint(ctxflow) — stale: nothing to suppress
}
`),
		"internal/serve/s_test.go": []byte(`package serve
func helper() int {
	return 0 //sperke:nolint — tests are exempt from staleness
}
`),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := RunModule(m, Analyzers())
	if len(res.Diags) != 0 {
		t.Fatalf("suppressed run still reported: %v", res.Diags)
	}
	if len(res.Unused) != 1 {
		t.Fatalf("unused waivers = %d, want 1: %v", len(res.Unused), res.Unused)
	}
	u := res.Unused[0]
	if u.Path != "internal/serve/s.go" || u.Line != 7 {
		t.Fatalf("stale waiver at %s:%d, want internal/serve/s.go:7", u.Path, u.Line)
	}
	if got := u.String(); !strings.Contains(got, "ctxflow") {
		t.Fatalf("stale waiver rendering %q lost its checker list", got)
	}
}

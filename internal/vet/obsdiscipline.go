package vet

import (
	"go/ast"
)

// obsInstruments are the obs types that must be obtained from a
// Registry (or its constructor), never built directly: struct literals
// skip registration, so the instrument is invisible to /metrics
// snapshots, and a literal Registry bypasses its map initialization.
var obsInstruments = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Registry":  true,
	// A literal obs.Wall has a zero epoch, so every Now() reads as
	// decades of uptime; obs.NewWall anchors it.
	"Wall": true,
}

// ObsDiscipline requires metrics instruments to flow through the
// nil-safe registry API outside internal/obs: obs.Default() or
// obs.NewRegistry() for registries, r.Counter(name)/r.Gauge(name)/
// r.Histogram(name) for instruments. Composite literals and new() of
// the instrument types are flagged. (Field mutation is already ruled
// out by the compiler — the instrument fields are unexported.)
var ObsDiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "metrics instruments must come from registry methods, not struct literals, outside internal/obs",
	CheckFile: func(f *File) []Diagnostic {
		if f.Test() || inSpan(f.Path, []string{"internal/obs"}) {
			return nil
		}
		obsName := importName(f.AST, "sperke/internal/obs")
		if obsName == "" {
			return nil
		}
		var out []Diagnostic
		flag := func(pos ast.Node, typ string) {
			if typ == "Wall" {
				out = append(out, f.diag("obsdiscipline", pos.Pos(),
					"direct construction of %s.Wall: use %s.NewWall() so the epoch is anchored at creation",
					obsName, obsName))
				return
			}
			out = append(out, f.diag("obsdiscipline", pos.Pos(),
				"direct construction of %s.%s: obtain instruments via the nil-safe registry (%s.NewRegistry / Registry.%s(name))",
				obsName, typ, obsName, typ))
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if sel, ok := n.Type.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == obsName && obsInstruments[sel.Sel.Name] {
						flag(n, sel.Sel.Name)
					}
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(n.Args) != 1 {
					return true
				}
				if sel, ok := n.Args[0].(*ast.SelectorExpr); ok {
					if x, ok := sel.X.(*ast.Ident); ok && x.Name == obsName && obsInstruments[sel.Sel.Name] {
						flag(n, sel.Sel.Name)
					}
				}
			}
			return true
		})
		return out
	},
}

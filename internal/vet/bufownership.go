package vet

import (
	"go/ast"
	"strings"
)

// BufOwnership enforces the PR 5 pooled-scratch contract: a buffer
// borrowed from a pool must be returned before the borrowing function
// exits. Concretely, every `X.Get()` call where X is an ident/selector
// chain whose rendered name mentions "pool" or "scratch" must be
// matched by an `X.Put(...)` on the same chain somewhere in the same
// function — otherwise the buffer is retained past handler return and
// the pool silently degrades to plain allocation (or worse, the buffer
// escapes into a cache and is recycled under a reader).
//
// Without go/types the checker keys off naming: fields and locals that
// hold pools are named for it in this codebase (obs.BufferPool users
// call them `scratch`). Lookups on unrelated types (cache.Get(key),
// flag.Lookup) don't match the chain-name heuristic or take arguments
// and are ignored. The pool implementation itself (internal/obs) is
// exempt, as are tests.
var BufOwnership = &Analyzer{
	Name: "bufownership",
	Doc:  "flag pool/scratch Get() calls with no matching Put on the same pool in the function",
	CheckFile: func(f *File) []Diagnostic {
		if f.Test() || inSpan(f.Dir(), []string{"internal/obs"}) {
			return nil
		}
		var out []Diagnostic
		funcDecls(f, func(name string, fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			// First pass: collect the chains that Put somewhere in
			// this function (defer or not — both keep the contract).
			puts := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if chain, ok := poolMethodChain(n, "Put", 1); ok {
					puts[chain] = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				chain, ok := poolMethodChain(n, "Get", 0)
				if !ok || puts[chain] {
					return true
				}
				out = append(out, f.diag("bufownership", n.Pos(),
					"%s.Get() in func %s has no matching %s.Put in this function: pooled buffers must be returned before the function exits",
					chain, name, chain))
				return true
			})
		})
		return out
	},
}

// poolMethodChain matches a call `<chain>.<method>(...)` with exactly
// argc arguments where <chain> renders to an ident/selector path whose
// name mentions a pool. It returns the rendered chain.
func poolMethodChain(n ast.Node, method string, argc int) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != argc {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	chain := renderChain(sel.X)
	if chain == "" || !poolish(chain) {
		return "", false
	}
	return chain, true
}

// renderChain flattens an ident/selector expression ("s.scratch",
// "pool") to its source text, or "" for anything more exotic.
func renderChain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderChain(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderChain(e.X)
	}
	return ""
}

// poolish reports whether the chain names a buffer pool.
func poolish(chain string) bool {
	lower := strings.ToLower(chain)
	return strings.Contains(lower, "pool") || strings.Contains(lower, "scratch")
}

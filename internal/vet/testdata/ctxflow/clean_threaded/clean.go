//sperke:fixture path=internal/serve/clean.go
package serve

import "context"

func fetchChunk(ctx context.Context, key string) ([]byte, error) {
	_ = ctx
	_ = key
	return nil, nil
}

// refetch threads the caller's context through every hop.
func refetch(ctx context.Context, key string) ([]byte, error) {
	if b, err := fetchChunk(ctx, key); err == nil {
		return b, nil
	}
	return fetchChunk(ctx, key)
}

//sperke:fixture path=internal/transport/seam.go
package transport

import "context"

// Request mirrors the real transport seam: legacy submissions carry no
// context, and Request.Context materializes the Background root for
// them. The function is on the ctxflow allowlist, so the fixture must
// stay clean.
type Request struct{ ctx context.Context }

func (r *Request) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

//sperke:fixture path=internal/serve/bad.go
package serve

import "context"

func fetchChunk(ctx context.Context, key string) ([]byte, error) {
	_ = ctx
	_ = key
	return nil, nil
}

// refetch drops its caller's context twice over: it mints a fresh
// Background root and passes a literal nil.
func refetch(key string) ([]byte, error) {
	if b, err := fetchChunk(context.Background(), key); err == nil {
		return b, nil
	}
	return fetchChunk(nil, key)
}

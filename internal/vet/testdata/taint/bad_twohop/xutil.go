//sperke:fixture path=internal/xutil/xutil.go
package xutil

import "sperke/internal/timeutil"

// Stamp launders the wall clock one hop further: no time import, no
// direct call, but transitively wall-tainted.
func Stamp() int64 { return timeutil.NowNanos() }

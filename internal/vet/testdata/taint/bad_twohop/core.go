//sperke:fixture path=internal/core/bad.go
package core

import "sperke/internal/xutil"

// tick pulls a two-hop-laundered wall-clock read into a deterministic
// package. The per-file checker sees no time import here; only the
// interprocedural taint pass can flag the boundary call.
func tick() int64 { return xutil.Stamp() }

//sperke:fixture path=internal/timeutil/timeutil.go
package timeutil

import "time"

// NowNanos reads the wall clock directly — legal here, since
// internal/timeutil is not a clock-disciplined span.
func NowNanos() int64 { return time.Now().UnixNano() }

//sperke:fixture path=internal/core/clean.go
package core

// tick takes the clock as an injected dependency, so its output is a
// pure function of its inputs.
func tick(now func() int64) int64 { return now() }

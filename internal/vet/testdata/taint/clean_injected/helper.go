//sperke:fixture path=internal/timeutil/timeutil.go
package timeutil

import "time"

// NowNanos is wall-tainted but never called from a clock-disciplined
// span, so the taint stays where it is allowed to live.
func NowNanos() int64 { return time.Now().UnixNano() }

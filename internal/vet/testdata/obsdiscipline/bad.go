//sperke:fixture path=internal/player/bad.go

package player

import "sperke/internal/obs"

// hits bypasses the registry: a literal instrument is invisible to
// /metrics snapshots.
var hits = &obs.Counter{}

// record constructs a gauge directly instead of asking a registry.
func record() {
	g := new(obs.Gauge)
	g.Set(1)
	hits.Inc()
}

// epoch builds a wall clock with a zero epoch: every Now() reads as
// decades of uptime.
func epoch() *obs.Wall {
	return &obs.Wall{}
}

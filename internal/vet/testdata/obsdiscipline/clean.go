//sperke:fixture path=internal/player/clean.go

package player

import "sperke/internal/obs"

// record flows through the nil-safe registry; a nil *Registry makes
// every call a cheap no-op.
func record(r *obs.Registry) {
	r.Counter("player.hits").Inc()
	r.Gauge("player.queue_depth").Set(1)
	r.Histogram("player.decode_ms").Observe(4)
}

//sperke:fixture path=internal/cluster/clean.go
package cluster

import "sync"

type hub struct {
	mu sync.Mutex
	ch chan int
}

// push releases the lock before touching the channel.
func (h *hub) push(v int) {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- v
}

// sendAfterBranch unlocks on the early-return path inside the if; the
// fall-through unlock still precedes the send, so nothing blocks under
// the lock.
func (h *hub) sendAfterBranch(v int) {
	h.mu.Lock()
	if v < 0 {
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	h.ch <- v
}

// poll uses a select with a default, which never blocks.
func (h *hub) poll() (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case v := <-h.ch:
		return v, true
	default:
		return 0, false
	}
}

// spawn starts a goroutine while locked; the goroutine body runs
// without the lock.
func (h *hub) spawn(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() { h.ch <- v }()
}

//sperke:fixture path=internal/cluster/bad.go
package cluster

import "sync"

type hub struct {
	mu sync.Mutex
	ch chan int
}

// push sends on a channel while the mutex is held.
func (h *hub) push(v int) {
	h.mu.Lock()
	h.ch <- v
	h.mu.Unlock()
}

// wait receives under a deferred unlock, so the lock is held for the
// whole wait.
func (h *hub) wait() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.ch
}

// park blocks on a select with no default while locked.
func (h *hub) park(done chan struct{}) {
	h.mu.Lock()
	select {
	case <-done:
	}
	h.mu.Unlock()
}

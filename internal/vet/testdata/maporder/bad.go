//sperke:fixture path=internal/experiments/bad.go

package experiments

// tableRows leaks map iteration order into the rendered slice: two
// runs of the same experiment produce differently-ordered tables.
func tableRows(cells map[string]int) []string {
	var out []string
	for name := range cells {
		out = append(out, name)
	}
	return out
}

// fromField leaks order out of a struct-held map.
type table struct {
	cells map[string]int
}

func (t *table) rows() []string {
	var out []string
	for name, v := range t.cells {
		if v > 0 {
			out = append(out, name)
		}
	}
	return out
}

//sperke:fixture path=internal/experiments/clean.go

package experiments

import "sort"

// tableRows restores a stable order before the slice escapes.
func tableRows(cells map[string]int) []string {
	var out []string
	for name := range cells {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// histogram writes keyed results; map-to-map transfer is order-free.
func histogram(cells map[string]int) map[string]bool {
	seen := make(map[string]bool, len(cells))
	for name := range cells {
		seen[name] = true
	}
	return seen
}

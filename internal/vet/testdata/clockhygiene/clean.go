//sperke:fixture path=internal/sim/clean.go

package sim

import (
	"math/rand"
	"time"
)

// Clock is the injected time source.
type Clock interface{ Now() time.Duration }

// Draw threads an injected clock and an explicitly seeded generator.
func Draw(c Clock, seed int64) (time.Duration, int) {
	rng := rand.New(rand.NewSource(seed))
	return c.Now(), rng.Intn(10)
}

// Epoch is a designated wall seam, waived explicitly.
func Epoch() time.Time {
	return time.Now() //sperke:nolint(clockhygiene) — designated wall seam
}

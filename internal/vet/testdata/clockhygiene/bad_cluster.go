//sperke:fixture path=internal/cluster/bad_cluster.go

package cluster

import "time"

// probeLoop owns a raw ticker: probe pacing must flow through the
// wallSleep seam (or an injected clock) so deterministic tests can
// drive it.
func probeLoop(every time.Duration, probe func()) {
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		probe()
	}
}

// cooldownOver reads the wall directly instead of the breaker's
// injected clock.
func cooldownOver(openedAt time.Time, cooldown time.Duration) bool {
	return time.Since(openedAt) >= cooldown
}

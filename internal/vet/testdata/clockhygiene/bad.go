//sperke:fixture path=internal/sim/bad.go

package sim

import (
	"math/rand"
	"time"
)

// Tick drifts with the host: the wall read and the global RNG draw
// both make outputs differ between runs.
func Tick() (time.Time, int) {
	t := time.Now()
	n := rand.Intn(10)
	return t, n
}

// Wait blocks the simulation on real time.
func Wait(d time.Duration) {
	time.Sleep(d)
}

// Age leaks the wall clock through a value reference.
func Age(epoch time.Time) func() time.Duration {
	since := time.Since
	return func() time.Duration { return since(epoch) }
}

//sperke:fixture path=internal/cluster/clean_cluster.go

package cluster

import (
	"context"
	"time"
)

// wallSleep is the cluster's allowlisted real-time seam: the one place
// the package may block on the wall clock.
func wallSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Clock is the injected time source everything else reads.
type Clock interface{ Now() time.Duration }

// cooldownOver compares against the injected clock, not the wall.
func cooldownOver(c Clock, openedAt, cooldown time.Duration) bool {
	return c.Now()-openedAt >= cooldown
}

//sperke:fixture path=internal/sphere/clean.go

package sphere

import "math"

// OrientationOK mirrors the degree-valued API type.
type OrientationOK struct{ Yaw, Pitch, Roll float64 }

// direction converts to radians before trig.
func direction(o OrientationOK) (x, y float64) {
	yaw := o.Yaw * math.Pi / 180
	pitch := o.Pitch * math.Pi / 180
	return math.Sin(yaw), math.Cos(pitch)
}

// inline keeps the conversion inside the trig argument.
func inline(o OrientationOK) float64 {
	return math.Sin(o.Yaw * math.Pi / 180)
}

// from converts the inverse-trig result back to degrees in the same
// expression.
func from(vx, vz float64) OrientationOK {
	return OrientationOK{Yaw: math.Atan2(vx, vz) * 180 / math.Pi}
}

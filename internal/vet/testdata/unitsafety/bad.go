//sperke:fixture path=internal/sphere/bad.go

package sphere

import "math"

// Orientation mirrors the degree-valued API type.
type Orientation struct{ Yaw, Pitch, Roll float64 }

// badDirection feeds degree-valued fields straight into radian trig.
func badDirection(o Orientation) (x, y float64) {
	return math.Sin(o.Yaw), math.Cos(o.Pitch)
}

// badAngle passes a Deg-suffixed identifier without converting.
func badAngle(rollDeg float64) float64 {
	return math.Tan(rollDeg)
}

// badFrom stores a radian inverse-trig result in a degree name.
func badFrom(vx, vz float64) Orientation {
	yaw := math.Atan2(vx, vz)
	return Orientation{Yaw: yaw}
}

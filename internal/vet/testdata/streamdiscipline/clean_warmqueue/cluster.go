//sperke:fixture path=internal/cluster/clean.go
package cluster

import "io"

// Cluster mirrors the production receiver so the allowlist keys
// (Cluster.runWarmJob / Cluster.runPrewarm) resolve.
type Cluster struct{}

// runWarmJob runs on the warm worker goroutine, off the serving hot
// path — the one place the cluster may own a whole materialized body,
// because a warm write hands each replica cache an owned []byte.
func (c *Cluster) runWarmJob(body io.Reader) ([]byte, error) {
	return io.ReadAll(body)
}

// runPrewarm likewise materializes its speculative synthesis on the
// worker goroutine.
func (c *Cluster) runPrewarm(body io.Reader) ([]byte, error) {
	return io.ReadAll(body)
}

//sperke:fixture path=internal/cluster/clean.go
package cluster

import "io"

// proxyBody streams the edge's response into the caller's writer
// through a reused copy block — no whole-body materialization.
func proxyBody(w io.Writer, body io.Reader, block []byte) (int64, error) {
	return io.CopyBuffer(w, body, block)
}

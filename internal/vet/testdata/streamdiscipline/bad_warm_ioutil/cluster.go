//sperke:fixture path=internal/cluster/bad.go
package cluster

import "io/ioutil"

// enqueueWarm materializes the whole body inline on the serving
// goroutine before queueing the warm — through the deprecated ioutil
// alias, which must not dodge the io.ReadAll ban.
func enqueueWarm(body interface{ Read([]byte) (int, error) }) ([]byte, error) {
	return ioutil.ReadAll(body)
}

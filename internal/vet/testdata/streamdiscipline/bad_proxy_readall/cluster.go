//sperke:fixture path=internal/cluster/bad.go
package cluster

import "io"

// fetchWire slurps the edge's response body into one materialized
// []byte per request — exactly what the router's proxy path exists to
// avoid.
func fetchWire(body io.Reader) ([]byte, error) {
	return io.ReadAll(body)
}

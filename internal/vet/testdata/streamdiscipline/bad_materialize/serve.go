//sperke:fixture path=internal/serve/bad.go
package serve

import "sperke/internal/dash"

// respond materializes a full chunk body per request.
func respond(n int) []byte {
	return dash.BuildChunkBody(n)
}

//sperke:fixture path=internal/dash/body.go
package dash

// BuildChunkBody and AppendChunkBody mirror the real materializing
// builders; both are on the streamdiscipline allowlist, so defining
// one in terms of the other is fine — calling them from a serving hot
// path is not.
func BuildChunkBody(n int) []byte { return AppendChunkBody(nil, n) }

func AppendChunkBody(dst []byte, n int) []byte {
	return append(dst, make([]byte, n)...)
}

//sperke:fixture path=internal/serve/clean.go
package serve

import (
	"io"

	"sperke/internal/dash"
)

// respond streams the chunk body writer-first.
func respond(w io.Writer, n int) error {
	return dash.WriteChunkBody(w, n)
}

//sperke:fixture path=internal/dash/body.go
package dash

import "io"

func WriteChunkBody(w io.Writer, n int) error {
	_, err := w.Write(make([]byte, n))
	return err
}

//sperke:fixture path=internal/dash/clean.go

package dash

type pool struct{}

func (pool) Get() *[]byte  { return new([]byte) }
func (pool) Put(b *[]byte) {}

type cache struct{}

func (cache) Get(key string) []byte { return nil }

type server struct {
	scratch pool
	bodies  cache
}

// deferredReturn is the blessed shape: borrow, defer the repayment,
// hand out only what the caller owns.
func (s *server) deferredReturn() []byte {
	scratch := s.scratch.Get()
	defer s.scratch.Put(scratch)
	body := append((*scratch)[:0], 'x')
	*scratch = body
	out := make([]byte, len(body))
	copy(out, body)
	return out
}

// branchedReturn repays on every path, without defer.
func (s *server) branchedReturn(fail bool) error {
	scratch := s.scratch.Get()
	if fail {
		s.scratch.Put(scratch)
		return nil
	}
	s.scratch.Put(scratch)
	return nil
}

// cacheLookup uses a Get that is not a pool borrow: the receiver chain
// does not name a pool, and the call takes a key.
func (s *server) cacheLookup(key string) []byte {
	return s.bodies.Get(key)
}

//sperke:fixture path=internal/dash/bad.go

package dash

type pool struct{}

func (pool) Get() *[]byte   { return new([]byte) }
func (pool) Put(b *[]byte)  {}
func (pool) Lookup() []byte { return nil }

type server struct {
	scratch pool
	tiles   pool
}

// leakToCache borrows a scratch buffer and stores it instead of
// returning it to the pool: the cache now aliases memory the pool will
// recycle under the next borrower.
func (s *server) leakToCache(cache map[string][]byte, key string) {
	buf := s.scratch.Get()
	cache[key] = *buf
}

// mismatchedPools returns the buffer to the wrong pool: s.scratch is
// never repaid.
func (s *server) mismatchedPools() {
	buf := s.scratch.Get()
	defer s.tiles.Put(buf)
	_ = buf
}

// localPool forgets the Put on a plain local too.
func localPool(bufPool pool) []byte {
	b := bufPool.Get()
	return append((*b)[:0], 'x')
}

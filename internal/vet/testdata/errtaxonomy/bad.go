//sperke:fixture path=internal/dash/bad.go

package dash

import (
	"errors"
	"fmt"
)

// fetch hides its cause behind %v and mints an ad-hoc opaque error.
func fetch(url string) error {
	if err := ping(url); err != nil {
		return fmt.Errorf("dash: GET %s failed: %v", url, err)
	}
	return errors.New("dash: not reachable")
}

func ping(string) error { return nil }

//sperke:fixture path=internal/dash/clean.go

package dash

import (
	"errors"
	"fmt"
)

// ErrStale is part of the typed taxonomy: a package-level sentinel.
var ErrStale = errors.New("dash: manifest stale")

// fetch wraps the cause with %w so errors.Is/As keep working.
func fetch(url string) error {
	if err := ping(url); err != nil {
		return fmt.Errorf("dash: GET %s: %w", url, err)
	}
	return ErrStale
}

func ping(string) error { return nil }

package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockSpans are the concurrent packages where holding a mutex across a
// blocking operation turns one slow peer into a pile-up: the router's
// health table, the transport scheduler, the store's shards and the
// serving tiers all sit on request hot paths.
var lockSpans = []string{
	"internal/cluster",
	"internal/transport",
	"internal/serve",
	"internal/dash",
	"internal/obs",
	"internal/live",
}

// LockScope flags blocking operations — network I/O, channel sends and
// receives, selects without a default, time.Sleep, sync waits, and
// ChunkSource.Chunk synthesis calls — executed while a sync.Mutex or
// sync.RWMutex is held. Locks are keyed off resolved types (a method
// promoted through embedding still counts), and held-ness is tracked in
// source order: an Unlock on the fall-through path releases, a
// deferred Unlock holds to the end of the function. Branch bodies are
// analyzed with a copy of the held set, so an early-return Unlock
// inside an if does not leak a release into the fall-through path.
// Function literals run later and are analyzed separately with an
// empty held set.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "forbid blocking operations (I/O, channel ops, synthesis) while a sync mutex is held",
	CheckModule: func(m *Module) []Diagnostic {
		var out []Diagnostic
		chunkSource := lookupChunkSource(m)
		for _, tp := range m.Pkgs {
			if !inSpan(tp.Dir, lockSpans) {
				continue
			}
			typedFileDecls(tp, func(f *File, name string, fd *ast.FuncDecl) {
				if fd.Body == nil {
					return
				}
				w := &lockWalker{m: m, tp: tp, f: f, fn: name, chunkSource: chunkSource}
				w.walkBody(fd.Body)
				out = append(out, w.diags...)
			})
		}
		return out
	},
}

// lookupChunkSource resolves the module's dash.ChunkSource interface,
// or nil when the module under analysis doesn't define it (fixture
// mini-modules).
func lookupChunkSource(m *Module) *types.Interface {
	tp := m.ByDir("internal/dash")
	if tp == nil {
		return nil
	}
	obj := tp.Pkg.Scope().Lookup("ChunkSource")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// lockWalker tracks the set of held mutexes through one function body
// in source order. Bodies of nested function literals are queued and
// walked with a fresh empty held set.
type lockWalker struct {
	m           *Module
	tp          *TypedPackage
	f           *File
	fn          string
	chunkSource *types.Interface
	diags       []Diagnostic
}

func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	held := map[string]bool{}
	w.stmts(body.List, held)
}

// stmts processes a statement list in order, mutating held as locks
// are taken and released on the fall-through path.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := w.lockOp(s.X); ok {
			if locks {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return, not here: the lock stays
		// held for the rest of the walk. The defer's own args are
		// evaluated now, but Unlock takes none.
		if _, locks, ok := w.lockOp(s.Call); ok && !locks {
			return
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// The spawned body runs without this goroutine's locks; only the
		// call's arguments are evaluated here.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkBody(fl.Body)
		}
	case *ast.SendStmt:
		w.blocking(s.Pos(), "channel send", held)
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := w.tp.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blocking(s.X.Pos(), "range over channel", held)
			}
		}
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, held)
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Pos(), "select without default", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr scans one expression for blocking operations under the current
// held set. Function literals are walked separately with a fresh set.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkBody(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.blocking(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, ok := w.blockingCall(n); ok {
				w.blocking(n.Pos(), desc, held)
			}
		}
		return true
	})
}

// lockOp matches expr as a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex and returns the lock's key (the rendered
// receiver expression) and whether it acquires.
func (w *lockWalker) lockOp(e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	callee := calleeOf(w.tp.Info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch callee.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}

// blockingCall classifies a call as blocking: direct network I/O (the
// net and net/http packages, including net.Conn method calls),
// time.Sleep, sync waits (WaitGroup.Wait, Cond.Wait), and chunk
// synthesis through the dash.ChunkSource interface.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	callee := calleeOf(w.tp.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	switch callee.Pkg().Path() {
	case "net", "net/http":
		return "network I/O (" + callee.Pkg().Name() + "." + typedDisplayName(callee) + ")", true
	case "time":
		if callee.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if callee.Name() == "Wait" {
			return "sync." + typedDisplayName(callee), true
		}
	}
	if w.chunkSource != nil && callee.Name() == "Chunk" {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if types.Implements(t, w.chunkSource) ||
				types.Implements(types.NewPointer(t), w.chunkSource) {
				return "ChunkSource.Chunk synthesis", true
			}
		}
	}
	return "", false
}

// blocking records a finding when any lock is held.
func (w *lockWalker) blocking(pos token.Pos, desc string, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	var lock string
	for k := range held {
		if lock == "" || k < lock {
			lock = k
		}
	}
	w.diags = append(w.diags, w.f.diag("lockscope", pos,
		"%s while %s is locked (func %s): release the lock first, or move the blocking work outside the critical section",
		desc, lock, w.fn))
}

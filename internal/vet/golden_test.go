package vet

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// fixtureDirective assigns a fixture a fake module-relative path, since
// every checker keys off package location. It must be the first line:
//
//	//sperke:fixture path=internal/sim/bad.go
var fixtureDirective = regexp.MustCompile(`(?m)^//sperke:fixture path=(\S+)$`)

// TestGoldenFixtures runs every analyzer over its testdata fixtures:
// files named bad*.go must reproduce their .golden diagnostics exactly
// (and at least one), files named clean*.go must come back empty. This
// is the harness ISSUE 3 specifies: one true-positive and one clean
// fixture per checker, position-accurate.
func TestGoldenFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		if a.CheckFile == nil && a.CheckPackage == nil {
			// Typed-only checkers need a whole mini-module, not a lone
			// file; their fixtures run under TestTypedGoldenFixtures.
			continue
		}
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("checker %s has no fixture dir: %v", a.Name, err)
			}
			var sawBad, sawClean bool
			for _, e := range entries {
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				base := strings.TrimSuffix(e.Name(), ".go")
				got := runFixture(t, a, filepath.Join(dir, e.Name()))
				goldenPath := filepath.Join(dir, base+".golden")
				if *update {
					if got == "" {
						os.Remove(goldenPath)
					} else if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want := ""
				if b, err := os.ReadFile(goldenPath); err == nil {
					want = string(b)
				}
				if got != want {
					t.Errorf("%s: diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", e.Name(), got, want)
				}
				switch {
				case strings.HasPrefix(base, "bad"):
					sawBad = true
					if got == "" {
						t.Errorf("%s: true-positive fixture produced no diagnostics", e.Name())
					}
				case strings.HasPrefix(base, "clean"):
					sawClean = true
					if got != "" {
						t.Errorf("%s: clean fixture produced diagnostics:\n%s", e.Name(), got)
					}
				}
			}
			if !sawBad || !sawClean {
				t.Errorf("checker %s needs both a bad*.go and a clean*.go fixture (bad=%v clean=%v)",
					a.Name, sawBad, sawClean)
			}
		})
	}
}

// runFixture parses one fixture under its directive path and returns
// the analyzer's findings, one formatted diagnostic per line.
func runFixture(t *testing.T, a *Analyzer, osPath string) string {
	t.Helper()
	src, err := os.ReadFile(osPath)
	if err != nil {
		t.Fatal(err)
	}
	m := fixtureDirective.FindSubmatch(src)
	if m == nil {
		t.Fatalf("%s: missing //sperke:fixture path=... directive", osPath)
	}
	f, err := ParseSource(src, string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: f.Dir(), Files: []*File{f}}
	var sb strings.Builder
	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

package vet

import (
	"go/ast"
)

// streamSpans are the serving hot paths: every chunk body they emit
// must stream writer-first (dash.WriteChunkBody, media.Write*
// segment builders, the store's WriterSynth) rather than materialize a
// full []byte per request — PR 7 moved the serving tiers onto the
// writer-first forms precisely to keep per-request allocation flat.
var streamSpans = []string{
	"internal/dash",
	"internal/serve",
	"internal/cluster",
}

// streamMaterializers are the full-body builder entry points, keyed
// "dir:Func" on the callee's module-relative package directory. The
// builders stay exported for tests and offline tooling; the serving
// tiers must not call them.
var streamMaterializers = map[string]string{
	"internal/dash:BuildChunkBody":          "dash.WriteChunkBody",
	"internal/dash:AppendChunkBody":         "dash.WriteChunkBody",
	"internal/media:AppendSegment":          "media.WriteSegment",
	"internal/media:AppendSyntheticSegment": "media.WriteSyntheticSegment",
	"internal/media:AppendSyntheticPayload": "media.WriteSyntheticSegment",
}

// streamStdlibMaterializers are standard-library whole-body readers
// banned in specific spans, keyed "pkg:Func" → the one span directory
// the ban covers. The wire cluster's router proxies chunk bodies into
// the caller's ResponseWriter through a pooled copy buffer
// (Cluster.proxyBody) or a pre-sized sink (fetchWire); slurping a
// response body with io.ReadAll would re-materialize every chunk at
// the router and put per-request allocation back on the hot path.
// The deprecated ioutil alias forwards to the same function but
// resolves to its own package object, so it gets its own entry.
var streamStdlibMaterializers = map[string]string{
	"io:ReadAll":        "internal/cluster",
	"io/ioutil:ReadAll": "internal/cluster",
}

// streamAllowlist names the functions inside the spans that may call a
// materializer: the dash builders themselves (BuildChunkBody is the
// documented convenience wrapper over the append form, and the append
// form is the one place the media appenders are adapted for store
// callbacks that need an owned []byte).
var streamAllowlist = map[string]bool{
	"internal/dash:BuildChunkBody":  true,
	"internal/dash:AppendChunkBody": true,
	// The warm queue's worker is the cluster's sanctioned off-hot-path
	// consumer: it runs on its own goroutine behind a bounded queue, and
	// a warm write inherently needs an owned []byte to hand R caches.
	// Materializing THERE is the design — the discipline is that serving
	// goroutines enqueue and stream on, never materialize inline.
	"internal/cluster:Cluster.runWarmJob": true,
	"internal/cluster:Cluster.runPrewarm": true,
}

// StreamDiscipline flags materializing chunk-body builds on the
// serving hot paths. Resolution is type-based, so aliased imports and
// re-exports don't hide a call; function-literal bodies count against
// their enclosing declaration.
var StreamDiscipline = &Analyzer{
	Name: "streamdiscipline",
	Doc:  "serving hot paths must stream chunk bodies writer-first, not materialize full []byte builds",
	CheckModule: func(m *Module) []Diagnostic {
		var out []Diagnostic
		for _, tp := range m.Pkgs {
			if !inSpan(tp.Dir, streamSpans) {
				continue
			}
			typedFileDecls(tp, func(f *File, name string, fd *ast.FuncDecl) {
				fn := declFunc(tp.Info, fd)
				if fn != nil && streamAllowlist[typedFuncKey(m, fn)] {
					return
				}
				ast.Inspect(fd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(tp.Info, call)
					if callee == nil || callee.Pkg() == nil {
						return true
					}
					if !m.Internal(callee.Pkg().Path()) {
						stdKey := callee.Pkg().Path() + ":" + callee.Name()
						if streamStdlibMaterializers[stdKey] == tp.Dir {
							out = append(out, f.diag("streamdiscipline", call.Pos(),
								"%s.%s slurps a whole stream on the serving hot path %s (func %s): proxy writer-first via io.CopyBuffer with a pooled block",
								callee.Pkg().Name(), callee.Name(), tp.Dir, name))
						}
						return true
					}
					key := m.DirOf(callee.Pkg().Path()) + ":" + callee.Name()
					if writer, hit := streamMaterializers[key]; hit {
						out = append(out, f.diag("streamdiscipline", call.Pos(),
							"materializing %s on the serving hot path %s (func %s): stream writer-first via %s",
							calleeDisplay(m, callee), tp.Dir, name, writer))
					}
					return true
				})
			})
		}
		return out
	},
}

package vet

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// typedFixtureAnalyzers maps each typed fixture tree to the analyzer
// it exercises. "taint" runs clockhygiene: its module hook is the
// cross-package taint pass, and the fixtures place the laundering
// helpers outside the clock spans so every diagnostic they produce
// comes from taint propagation, not the per-file rule.
var typedFixtureAnalyzers = map[string]*Analyzer{
	"ctxflow":          CtxFlow,
	"lockscope":        LockScope,
	"streamdiscipline": StreamDiscipline,
	"taint":            ClockHygiene,
}

// TestTypedGoldenFixtures is the typed counterpart of
// TestGoldenFixtures: each fixture is a directory forming a miniature
// module (every file carries a //sperke:fixture path=... directive),
// type-checked with LoadModuleSource and run through RunModule.
// Fixtures named bad* must reproduce their .golden diagnostics exactly
// (and at least one); clean* fixtures must come back empty.
func TestTypedGoldenFixtures(t *testing.T) {
	names := make([]string, 0, len(typedFixtureAnalyzers))
	for n := range typedFixtureAnalyzers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		a := typedFixtureAnalyzers[name]
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("typed checker %s has no fixture dir: %v", name, err)
			}
			var sawBad, sawClean bool
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				fixture := e.Name()
				got := runTypedFixture(t, a, filepath.Join(dir, fixture))
				goldenPath := filepath.Join(dir, fixture+".golden")
				if *update {
					if got == "" {
						os.Remove(goldenPath)
					} else if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want := ""
				if b, err := os.ReadFile(goldenPath); err == nil {
					want = string(b)
				}
				if got != want {
					t.Errorf("%s: diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", fixture, got, want)
				}
				switch {
				case strings.HasPrefix(fixture, "bad"):
					sawBad = true
					if got == "" {
						t.Errorf("%s: true-positive fixture produced no diagnostics", fixture)
					}
				case strings.HasPrefix(fixture, "clean"):
					sawClean = true
					if got != "" {
						t.Errorf("%s: clean fixture produced diagnostics:\n%s", fixture, got)
					}
				}
			}
			if !sawBad || !sawClean {
				t.Errorf("typed checker %s needs both a bad*/ and a clean*/ fixture dir (bad=%v clean=%v)",
					name, sawBad, sawClean)
			}
		})
	}
}

// runTypedFixture assembles the fixture directory into an in-memory
// module and returns the analyzer's findings, one formatted diagnostic
// per line.
func runTypedFixture(t *testing.T, a *Analyzer, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make(map[string][]byte)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		m := fixtureDirective.FindSubmatch(src)
		if m == nil {
			t.Fatalf("%s/%s: missing //sperke:fixture path=... directive", dir, e.Name())
		}
		srcs[string(m[1])] = src
	}
	if len(srcs) == 0 {
		t.Fatalf("%s: empty fixture module", dir)
	}
	mod, err := LoadModuleSource(srcs)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var sb strings.Builder
	for _, d := range RunModule(mod, []*Analyzer{a}).Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

package vet

import (
	"go/ast"
)

// clockSpans extends the deterministic packages with the real-socket
// substrates the roadmap routes through injected clocks: rtmp stamps
// segment arrival times and handshake nonces, netem schedules token
// buckets, and serve's session engine measures HTTP fetch latency.
// Each reads wall time only through an allowlisted seam (serve borrows
// obs.NewWall rather than owning one). cluster joins the list because
// its failure detector runs on an injected clock (sim.Clock in the
// deterministic failover tests, obs.Wall in real deployments) — a
// stray time.Now in a breaker cooldown would silently split the two.
var clockSpans = append([]string{
	"internal/rtmp",
	"internal/netem",
	"internal/serve",
	"internal/cluster",
}, deterministicSpans...)

// clockAllowlist names the functions that are the designated wall-clock
// seams — the single place a package is allowed to read real time so
// everything else can take an injected clock. Keys are "dir:Func" or
// "dir:Type.Method" using module-relative directories.
var clockAllowlist = map[string]bool{
	// obs.Wall is the explicit wall adapter for real-socket pipelines;
	// simulated pipelines pass *sim.Clock instead.
	"internal/obs:NewWall":  true,
	"internal/obs:Wall.Now": true,
	// The shaper's constructor seeds its injectable nowFunc/sleep with
	// wall defaults; tests override the fields.
	"internal/netem:NewRateLimitedConn": true,
	// rtmp's single wall seam; Server.Now and handshake stamps route
	// through it.
	"internal/rtmp:wallNow": true,
	// The cluster's probe loop is the one place it may block on real
	// time; everything else (breaker cooldowns, health state) reads the
	// injected clock.
	"internal/cluster:wallSleep": true,
	// openWire is the router's one hop onto the wire client, whose
	// retry loop is wall-tainted through its default Now/Sleep fields —
	// the same seam shape as serve's httpMirror.mirror: real-network
	// latency enters here and nowhere else in the cluster.
	"internal/cluster:Node.openWire": true,
	// Node.Ping is the other hop onto that client: its probe GET
	// classifies failures through the client's Retry-After parsing,
	// which reads the client's Now seam to turn HTTP-date deadlines
	// into durations. Same wall-at-the-wire shape as openWire.
	"internal/cluster:Node.Ping": true,
	// The engine's HTTP observation leg calls dash.Client.FetchChunk,
	// which is wall-tainted through its default Now/Sleep fields; the
	// mirror is exactly the seam where measured real-network latency
	// enters, so the taint pass treats it as a barrier.
	"internal/serve:httpMirror.mirror": true,
}

// clockForbidden are the time-package calls that read or block on the
// wall clock.
var clockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the math/rand identifiers that are fine
// anywhere: explicitly-seeded generator construction and the types
// used to thread generators through APIs. Everything else on the
// package (rand.Intn, rand.Float64, rand.Seed, ...) rides the global
// process-wide generator and is forbidden.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// ClockHygiene forbids wall-clock reads (time.Now/Sleep/Since/Until/
// After/Tick) and the globally-seeded math/rand API in deterministic
// and injected-clock packages, outside the allowlisted seams. Every
// component in those spans takes a clock (sim.Clock, a Now func field)
// or an explicit *rand.Rand, so an experiment's output is a pure
// function of its seed.
var ClockHygiene = &Analyzer{
	Name: "clockhygiene",
	Doc:  "forbid wall-clock and global-rand use in deterministic packages outside allowlisted seams",
	// The typed pass (taint.go) extends the per-file rule across
	// package boundaries: helpers that launder time.Now through another
	// package are caught at the call site where taint enters a
	// deterministic span.
	CheckModule: taintDiagnostics,
	CheckFile: func(f *File) []Diagnostic {
		if f.Test() || !inSpan(f.Path, clockSpans) {
			return nil
		}
		timeName := importName(f.AST, "time")
		randName := importName(f.AST, "math/rand")
		if timeName == "" && randName == "" {
			return nil
		}
		var out []Diagnostic
		check := func(name string, root ast.Node) {
			if clockAllowlist[f.Dir()+":"+name] {
				return
			}
			// Inspect selector mentions rather than calls so wall funcs
			// leaked as values (nowFunc: time.Now) are caught too.
			ast.Inspect(root, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch {
				case timeName != "" && id.Name == timeName && clockForbidden[sel.Sel.Name]:
					out = append(out, f.diag("clockhygiene", sel.Pos(),
						"%s.%s in deterministic package %s (func %s): inject a clock (sim.Clock or a Now func field) or allowlist the seam",
						timeName, sel.Sel.Name, f.Dir(), name))
				case randName != "" && id.Name == randName && !randConstructors[sel.Sel.Name] && ast.IsExported(sel.Sel.Name):
					out = append(out, f.diag("clockhygiene", sel.Pos(),
						"globally-seeded %s.%s in deterministic package %s (func %s): use rand.New(rand.NewSource(seed)) and thread the *rand.Rand through",
						randName, sel.Sel.Name, f.Dir(), name))
				}
				return true
			})
		}
		funcDecls(f, func(name string, fd *ast.FuncDecl) { check(name, fd) })
		// Package-level var initializers can leak the wall clock too
		// (var epoch = time.Now()).
		for _, d := range f.AST.Decls {
			if gd, ok := d.(*ast.GenDecl); ok {
				check("package-level decl", gd)
			}
		}
		return out
	},
}

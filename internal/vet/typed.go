package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file is the module-wide, type-resolved layer of the framework:
// a go/types load of the whole module through a source-order importer.
// Packages are type-checked in dependency order and each checked
// package feeds an in-memory importer for its dependents, so the whole
// load stays pure stdlib — no go/packages, no export data, no shelling
// out to the go tool. Standard-library imports are resolved by the
// stdlib source importer (go/importer "source"), which type-checks
// them from $GOROOT/src.
//
// On top of the typed packages sits a static call graph and an
// interprocedural taint pass (taint.go) so checkers can follow facts
// through helpers and across package boundaries instead of pattern-
// matching one file at a time.

// TypedPackage is one type-checked package of the module: the parsed
// files (sharing the Module's FileSet), the *types.Package, and the
// types.Info recorded while checking it.
type TypedPackage struct {
	// Dir is module-relative, e.g. "internal/dash".
	Dir string
	// ImportPath is the full import path, e.g. "sperke/internal/dash".
	ImportPath string
	Files      []*File
	Pkg        *types.Package
	Info       *types.Info
}

// Module is the whole-module view the typed checkers run over. Pkgs is
// in dependency order: every package appears after everything it
// imports.
type Module struct {
	// Path is the module path from go.mod (e.g. "sperke").
	Path string
	Fset *token.FileSet
	Pkgs []*TypedPackage

	byPath map[string]*TypedPackage
	byDir  map[string]*TypedPackage

	taintOnce sync.Once
	taintF    *taintFacts
}

// ByImportPath returns the package with the given import path, or nil.
func (m *Module) ByImportPath(p string) *TypedPackage { return m.byPath[p] }

// ByDir returns the package in the module-relative directory, or nil.
func (m *Module) ByDir(dir string) *TypedPackage { return m.byDir[dir] }

// DirOf converts a module-internal import path back to the
// module-relative directory ("sperke/internal/dash" → "internal/dash",
// the module path itself → ".").
func (m *Module) DirOf(importPath string) string {
	if importPath == m.Path {
		return "."
	}
	return strings.TrimPrefix(importPath, m.Path+"/")
}

// Internal reports whether the import path belongs to this module.
func (m *Module) Internal(importPath string) bool {
	return importPath == m.Path || strings.HasPrefix(importPath, m.Path+"/")
}

// LoadModule parses and type-checks every non-test package under root
// (the directory holding go.mod). Test files are excluded — every
// shipped checker exempts them — as are testdata, vendor and hidden
// trees, and files ruled out by their //go:build constraint for the
// host platform (so internal/obs's race shims don't collide).
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*File
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if !buildTagOK(src) {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		f, err := parseShared(fset, src, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return typeCheckModule(modPath, fset, files)
}

// LoadModuleSource type-checks an in-memory module from path → source
// mappings, under the real module path "sperke" so module-internal
// imports ("sperke/internal/...") resolve between the given files.
// The typed fixture harness builds its miniature modules with this.
func LoadModuleSource(srcs map[string][]byte) (*Module, error) {
	fset := token.NewFileSet()
	files := make([]*File, 0, len(srcs))
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f, err := parseShared(fset, srcs[p], p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheckModule("sperke", fset, files)
}

// parseShared parses src under the module-relative slash path modPath
// into the shared FileSet.
func parseShared(fset *token.FileSet, src []byte, modPath string) (*File, error) {
	af, err := parseInto(fset, modPath, src)
	if err != nil {
		return nil, err
	}
	return &File{Path: modPath, Fset: fset, AST: af}, nil
}

// typeCheckModule groups files by directory, orders the packages so
// imports come first, and type-checks each one, feeding every checked
// package into the importer used for its dependents.
func typeCheckModule(modPath string, fset *token.FileSet, files []*File) (*Module, error) {
	byDir := make(map[string][]*File)
	for _, f := range files {
		byDir[f.Dir()] = append(byDir[f.Dir()], f)
	}
	for _, fs := range byDir {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Path < fs[j].Path })
	}

	m := &Module{
		Path:   modPath,
		Fset:   fset,
		byPath: make(map[string]*TypedPackage),
		byDir:  make(map[string]*TypedPackage),
	}
	importPathOf := func(dir string) string {
		if dir == "." {
			return modPath
		}
		return modPath + "/" + dir
	}

	order, err := dependencyOrder(modPath, byDir)
	if err != nil {
		return nil, err
	}

	for _, dir := range order {
		group := byDir[dir]
		imp := &moduleImporter{module: m}
		var checkErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if len(checkErrs) < 8 {
					checkErrs = append(checkErrs, err.Error())
				}
			},
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		asts := make([]*ast.File, len(group))
		for i, f := range group {
			asts[i] = f.AST
		}
		pkg, err := conf.Check(importPathOf(dir), fset, asts, info)
		if err != nil {
			return nil, fmt.Errorf("vet: type-checking %s: %s", dir, strings.Join(checkErrs, "; "))
		}
		tp := &TypedPackage{
			Dir:        dir,
			ImportPath: importPathOf(dir),
			Files:      group,
			Pkg:        pkg,
			Info:       info,
		}
		m.Pkgs = append(m.Pkgs, tp)
		m.byPath[tp.ImportPath] = tp
		m.byDir[dir] = tp
	}
	return m, nil
}

// dependencyOrder topologically sorts the package directories by their
// module-internal imports (dependencies first). Import cycles are a
// hard error — the go build would reject them too.
func dependencyOrder(modPath string, byDir map[string][]*File) ([]string, error) {
	deps := make(map[string][]string, len(byDir))
	for dir, files := range byDir {
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.AST.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p != modPath && !strings.HasPrefix(p, modPath+"/") {
					continue
				}
				d := strings.TrimPrefix(strings.TrimPrefix(p, modPath), "/")
				if d == "" {
					d = "."
				}
				if d != dir && !seen[d] {
					seen[d] = true
					deps[dir] = append(deps[dir], d)
				}
			}
		}
		sort.Strings(deps[dir])
	}
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(byDir))
	var order []string
	var visit func(dir string, trail []string) error
	visit = func(dir string, trail []string) error {
		switch state[dir] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("vet: import cycle through %s (%s)", dir, strings.Join(trail, " -> "))
		}
		state[dir] = visiting
		for _, d := range deps[dir] {
			if _, ok := byDir[d]; !ok {
				continue // import of a module dir with no non-test files
			}
			if err := visit(d, append(trail, dir)); err != nil {
				return err
			}
		}
		state[dir] = done
		order = append(order, dir)
		return nil
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if err := visit(d, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages
// checked so far and defers everything else to the shared stdlib
// source importer.
type moduleImporter struct {
	module *Module
}

func (mi *moduleImporter) Import(p string) (*types.Package, error) {
	if tp, ok := mi.module.byPath[p]; ok {
		return tp.Pkg, nil
	}
	if mi.module.Internal(p) {
		return nil, fmt.Errorf("vet: module package %s not loaded (import cycle or missing files?)", p)
	}
	return importStd(p)
}

// The stdlib source importer is shared process-wide: it type-checks
// each standard package from $GOROOT/src exactly once and serves every
// subsequent load (fixture modules, CLI runs, tests) from its cache.
// It keeps its own FileSet — checkers never render positions of
// standard-library objects, so the two sets never mix.
var (
	stdMu   sync.Mutex
	stdImp  types.Importer
	stdFset = token.NewFileSet()
)

func importStd(p string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	if stdImp == nil {
		// The source importer honours go/build's context; cgo is disabled
		// so packages like net type-check from their pure-Go fallbacks.
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	}
	return stdImp.Import(p)
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("vet: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vet: no module line in %s/go.mod", root)
}

// buildTagOK evaluates the file's //go:build constraint (if any) for
// the host platform with cgo and the race detector off, mirroring what
// a plain `go build` of the analysis itself would select.
func buildTagOK(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(func(tag string) bool {
					return tag == runtime.GOOS || tag == runtime.GOARCH ||
						tag == "gc" || strings.HasPrefix(tag, "go1.")
				})
			}
			continue
		}
		break // reached the package clause: no constraint
	}
	return true
}

// ---- shared typed helpers for the checkers ----

// typedFuncKey renders the allowlist key of a function: "dir:Name" or
// "dir:Recv.Name" with the module-relative package directory — the
// same scheme the per-file checkers key their seam allowlists on.
func typedFuncKey(m *Module, fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return m.DirOf(fn.Pkg().Path()) + ":" + typedDisplayName(fn)
}

// typedDisplayName renders "Name" or "Recv.Name" for a *types.Func,
// matching funcDisplayName's rendering of the declaration.
func typedDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeOf resolves the static callee of a call expression: a direct
// function call or a method call on a concrete or interface receiver.
// Calls through function values (fields, locals) return nil — they
// have no static callee.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// declFunc resolves a function declaration to its *types.Func.
func declFunc(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// typedFileDecls invokes fn for every function declaration in every
// file of the package, skipping test files (the typed load excludes
// them anyway; fixture modules may still carry them).
func typedFileDecls(tp *TypedPackage, fn func(f *File, name string, fd *ast.FuncDecl)) {
	for _, f := range tp.Files {
		if f.Test() {
			continue
		}
		funcDecls(f, func(name string, fd *ast.FuncDecl) { fn(f, name, fd) })
	}
}

package vet

import (
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, path, src string) *File {
	t.Helper()
	f, err := ParseSource([]byte(src), path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func runOn(t *testing.T, a *Analyzer, files ...*File) []Diagnostic {
	t.Helper()
	pkg := &Package{Dir: files[0].Dir(), Files: files}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

func TestLoadWalksModuleAndSkipsTestdata(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs := make(map[string]bool)
	total := 0
	for _, p := range pkgs {
		dirs[p.Dir] = true
		total += len(p.Files)
		for _, f := range p.Files {
			if strings.Contains(f.Path, "testdata") {
				t.Errorf("Load picked up fixture file %s", f.Path)
			}
		}
	}
	for _, want := range []string{"internal/vet", "internal/sim", "cmd/sperke-vet"} {
		if !dirs[want] {
			t.Errorf("Load missed package %s (have %d packages)", want, len(pkgs))
		}
	}
	if total < 100 {
		t.Errorf("Load found only %d files, expected the full module", total)
	}
}

func TestWholeTreeIsClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range Run(pkgs, Analyzers()) {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("sperke-vet must stay clean on the tree; found:\n%s", strings.Join(msgs, "\n"))
	}
}

func TestNolintSuppression(t *testing.T) {
	const src = `package sim

import "time"

func a() time.Time {
	return time.Now() //sperke:nolint(clockhygiene) — seam
}

func b() time.Time {
	//sperke:nolint(clockhygiene)
	return time.Now()
}

func c() time.Time {
	//sperke:nolint
	return time.Now()
}

func d() time.Time {
	//sperke:nolint(unitsafety)
	return time.Now()
}

func e() time.Time {
	return time.Now()
}
`
	ds := runOn(t, ClockHygiene, parse(t, "internal/sim/x.go", src))
	if len(ds) != 2 {
		t.Fatalf("want 2 surviving findings (funcs d and e), got %d: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Pos.Line != 21 && d.Pos.Line != 25 {
			t.Errorf("unexpected surviving finding at line %d: %s", d.Pos.Line, d)
		}
	}
}

func TestClockHygieneScopesAndAllowlist(t *testing.T) {
	const src = `package x

import "time"

func f() time.Time { return time.Now() }
`
	// Outside the deterministic spans: no findings.
	if ds := runOn(t, ClockHygiene, parse(t, "internal/media/x.go", src)); len(ds) != 0 {
		t.Errorf("non-deterministic package flagged: %v", ds)
	}
	// Inside: flagged.
	if ds := runOn(t, ClockHygiene, parse(t, "internal/qoe/x.go", src)); len(ds) != 1 {
		t.Errorf("deterministic package not flagged: %v", ds)
	}
	// Allowlisted seam (obs.NewWall).
	const seam = `package obs

import "time"

func NewWall() time.Time { return time.Now() }
`
	if ds := runOn(t, ClockHygiene, parse(t, "internal/obs/x.go", seam)); len(ds) != 0 {
		t.Errorf("allowlisted seam flagged: %v", ds)
	}
	// Test files are exempt everywhere.
	if ds := runOn(t, ClockHygiene, parse(t, "internal/qoe/x_test.go", src)); len(ds) != 0 {
		t.Errorf("test file flagged: %v", ds)
	}
}

func TestClockHygieneRenamedImport(t *testing.T) {
	const src = `package sim

import stdtime "time"

func f() stdtime.Time { return stdtime.Now() }
`
	if ds := runOn(t, ClockHygiene, parse(t, "internal/sim/x.go", src)); len(ds) != 1 {
		t.Errorf("renamed time import not tracked: %v", ds)
	}
}

func TestMapOrderSortEscapes(t *testing.T) {
	const sorted = `package abr

import "sort"

func keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
`
	if ds := runOn(t, MapOrder, parse(t, "internal/abr/x.go", sorted)); len(ds) != 0 {
		t.Errorf("sorted-after loop flagged: %v", ds)
	}
	const sliceRange = `package abr

func sum(xs []int) int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return len(out)
}
`
	if ds := runOn(t, MapOrder, parse(t, "internal/abr/x.go", sliceRange)); len(ds) != 0 {
		t.Errorf("slice range flagged as map: %v", ds)
	}
	// Slice-of-maps indexing resolves to a map.
	const indexed = `package abr

func all(states []map[int]bool) []int {
	var out []int
	for k := range states[0] {
		out = append(out, k)
	}
	return out
}
`
	if ds := runOn(t, MapOrder, parse(t, "internal/abr/x.go", indexed)); len(ds) != 1 {
		t.Errorf("slice-of-maps index not resolved: %v", ds)
	}
}

func TestErrTaxonomyScope(t *testing.T) {
	const src = `package x

import "errors"

func f() error { return errors.New("ad hoc") }
`
	if ds := runOn(t, ErrTaxonomy, parse(t, "internal/transport/x.go", src)); len(ds) != 1 {
		t.Errorf("transport ad-hoc error not flagged: %v", ds)
	}
	// Outside the taxonomy spans the same code is fine.
	if ds := runOn(t, ErrTaxonomy, parse(t, "internal/media/x.go", src)); len(ds) != 0 {
		t.Errorf("non-taxonomy package flagged: %v", ds)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("clockhygiene, maporder")
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName subset: %v, %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown checker")
	}
	if as, err := ByName(""); err != nil || len(as) != len(Analyzers()) {
		t.Fatalf("ByName default: %v, %v", as, err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Check:   "clockhygiene",
		Pos:     token.Position{Filename: "internal/sim/sim.go", Line: 10, Column: 3},
		Message: "boom",
	}
	if got, want := d.String(), "internal/sim/sim.go:10:3: [clockhygiene] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

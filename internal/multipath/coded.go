package multipath

import (
	"time"

	"sperke/internal/netem"
	"sperke/internal/transport"
)

// Coded explores the transport-layer primitive §3.3 closes with:
// network-coding-style redundancy [22]. Each chunk is split into K
// equal fragments plus R coded repair fragments; fragments are sprayed
// across all paths round-robin, and the chunk completes as soon as any
// K fragments arrive. Against a lossy or momentarily-slow path this
// buys deadline robustness for a bounded bandwidth overhead R/K —
// without the full duplication of ContentAware.DuplicateUrgent.
type Coded struct {
	Paths []*netem.Path
	Clock clockNow
	// DataFragments (K) and RepairFragments (R); zero values default to
	// 4 and 1 (25% redundancy).
	DataFragments, RepairFragments int
}

// NewCoded builds the scheduler over the given paths.
func NewCoded(clock clockNow, paths ...*netem.Path) *Coded {
	return &Coded{Paths: paths, Clock: clock}
}

// Name implements transport.Scheduler.
func (c *Coded) Name() string { return "coded" }

func (c *Coded) k() int {
	if c.DataFragments <= 0 {
		return 4
	}
	return c.DataFragments
}

func (c *Coded) r() int {
	if c.RepairFragments < 0 {
		return 0
	}
	if c.RepairFragments == 0 && c.DataFragments <= 0 {
		return 1
	}
	return c.RepairFragments
}

// Submit implements transport.Scheduler. Fragments are sent
// best-effort: the code, not retransmission, provides reliability —
// that is the point of the primitive.
func (c *Coded) Submit(req *transport.Request) {
	if len(c.Paths) == 0 {
		return
	}
	k, r := c.k(), c.r()
	total := k + r
	fragBytes := req.Bytes / int64(k)
	if fragBytes <= 0 {
		fragBytes = 1
	}
	arrived := 0
	finished := false
	var firstStart time.Duration = -1
	var lastDone time.Duration
	done := 0
	for i := 0; i < total; i++ {
		path := c.Paths[i%len(c.Paths)]
		path.Transfer(fragBytes, netem.BestEffort, func(d netem.Delivery) {
			done++
			if firstStart < 0 || d.Start < firstStart {
				firstStart = d.Start
			}
			if d.OK {
				arrived++
			}
			if !finished && arrived >= k {
				finished = true
				if req.OnDone != nil {
					req.OnDone(netem.Delivery{
						Start: firstStart, Service: d.Service, Done: d.Done,
						Bytes: req.Bytes, OK: true,
					}, d.Done <= req.Deadline)
				}
				return
			}
			if !finished && done == total {
				// All fragments accounted for and fewer than K arrived:
				// the chunk is lost (would need retransmission upstream).
				if d.Done > lastDone {
					lastDone = d.Done
				}
				if req.OnDone != nil {
					req.OnDone(netem.Delivery{
						Start: firstStart, Service: d.Service, Done: lastDone,
						Bytes: req.Bytes, OK: false,
					}, false)
				}
			}
		})
	}
}

package multipath

import (
	"testing"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/transport"
)

// twoPaths builds the E8 topology: a good WiFi path and a slower,
// lossier LTE path.
func twoPaths(clock *sim.Clock) (wifi, lte *netem.Path) {
	wifi = netem.NewPath(clock, "wifi", netem.Constant(8e6), 10*time.Millisecond, 0)
	lte = netem.NewPath(clock, "lte", netem.Constant(4e6), 35*time.Millisecond, 0.02)
	return wifi, lte
}

func mkReq(tile int, class transport.Class, urgent bool, bytes int64, deadline time.Duration,
	onDone func(netem.Delivery, bool)) *transport.Request {
	return &transport.Request{
		Chunk:    tiling.ChunkID{Tile: tiling.TileID(tile)},
		Bytes:    bytes,
		Deadline: deadline,
		Class:    class,
		Urgent:   urgent,
		OnDone:   onDone,
	}
}

func TestMPTCPSplitsAcrossPaths(t *testing.T) {
	clock := sim.NewClock(1)
	wifi, lte := twoPaths(clock)
	m := NewMPTCPLike(clock, wifi, lte)
	var d netem.Delivery
	m.Submit(mkReq(1, transport.ClassFoV, false, 3e6, time.Minute, func(x netem.Delivery, ok bool) { d = x }))
	clock.Run()
	if d.Bytes != 3e6 {
		t.Fatalf("delivered %d bytes", d.Bytes)
	}
	if wifi.BytesMoved() == 0 || lte.BytesMoved() == 0 {
		t.Fatal("MPTCP did not use both paths")
	}
	// Aggregation: 3 MB over ~12 Mbps combined ≈ 2s — far less than the
	// 3s a single 8 Mbps path would take... but the lossy subflow slows
	// its share; just require better than the slow path alone (6s).
	if d.Done > 4*time.Second {
		t.Fatalf("MPTCP aggregate done at %v", d.Done)
	}
}

func TestMPTCPGatedBySlowerSubflow(t *testing.T) {
	clock := sim.NewClock(1)
	fast := netem.NewPath(clock, "fast", netem.Constant(100e6), 0, 0)
	slow := netem.NewPath(clock, "slow", netem.Constant(1e6), 0, 0)
	m := NewMPTCPLike(clock, fast, slow)
	var done time.Duration
	m.Submit(mkReq(1, transport.ClassFoV, false, 2e6, time.Minute, func(d netem.Delivery, ok bool) { done = d.Done }))
	clock.Run()
	// The slow path carries ~1/101 of the bytes ≈ 20 kB at 1 Mbps ≈
	// 158 ms; the fast path finishes its ~1.98 MB in ~158 ms too
	// (proportional split is rate-fair) — but reordering skew adds a
	// penalty. Completion must exceed the fast path's own finish.
	if done <= 100*time.Millisecond {
		t.Fatalf("MPTCP completion %v implausibly fast", done)
	}
}

func TestContentAwareRoutesByClass(t *testing.T) {
	clock := sim.NewClock(1)
	wifi, lte := twoPaths(clock)
	c := NewContentAware(clock, wifi, lte)
	// FoV chunk goes on the best path (wifi), OOS on the other (lte).
	c.Submit(mkReq(1, transport.ClassFoV, false, 1e6, time.Minute, nil))
	c.Submit(mkReq(2, transport.ClassOOS, false, 1e6, time.Minute, nil))
	clock.Run()
	if wifi.BytesMoved() != 1e6 {
		t.Fatalf("wifi moved %d, want the FoV chunk", wifi.BytesMoved())
	}
	// The OOS chunk went best-effort on LTE: it may have been dropped,
	// but it must not have gone over wifi.
	if lte.InFlight() != 0 {
		t.Fatal("lte still busy")
	}
	if wifi.BytesMoved() > 1e6 {
		t.Fatal("OOS chunk leaked onto the FoV path")
	}
}

func TestContentAwareOOSBestEffortCanDrop(t *testing.T) {
	clock := sim.NewClock(3)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(50e6), 0, 0)
	lossy := netem.NewPath(clock, "lte", netem.Constant(50e6), 0, 0.08)
	c := NewContentAware(clock, wifi, lossy)
	drops, oks := 0, 0
	for i := 0; i < 100; i++ {
		c.Submit(mkReq(i, transport.ClassOOS, false, 512<<10, time.Hour, func(d netem.Delivery, ok bool) {
			if ok {
				oks++
			} else {
				drops++
			}
		}))
	}
	clock.Run()
	if drops == 0 {
		t.Fatal("no OOS drops on a lossy best-effort path")
	}
	if oks == 0 {
		t.Fatal("all OOS chunks dropped")
	}
}

func TestContentAwareUrgentOvertakesQueued(t *testing.T) {
	clock := sim.NewClock(1)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	c := NewContentAware(clock, wifi)
	var order []tiling.TileID
	record := func(d netem.Delivery, ok bool) {}
	_ = record
	mk := func(tile int, urgent bool) *transport.Request {
		r := mkReq(tile, transport.ClassFoV, urgent, 1e6, time.Hour, nil)
		r.OnDone = func(d netem.Delivery, ok bool) { order = append(order, r.Chunk.Tile) }
		return r
	}
	c.Submit(mk(1, false))
	c.Submit(mk(2, false))
	c.Submit(mk(3, true)) // urgent, submitted last
	clock.Run()
	if len(order) != 3 {
		t.Fatalf("delivered %d", len(order))
	}
	if order[1] != 3 {
		t.Fatalf("urgent chunk delivered %v, want second (after in-flight)", order)
	}
}

func TestContentAwareSinglePathDegenerate(t *testing.T) {
	clock := sim.NewClock(1)
	only := netem.NewPath(clock, "only", netem.Constant(8e6), 0, 0)
	c := NewContentAware(clock, only)
	delivered := 0
	c.Submit(mkReq(1, transport.ClassOOS, false, 1e6, time.Minute, func(d netem.Delivery, ok bool) { delivered++ }))
	c.Submit(mkReq(2, transport.ClassFoV, false, 1e6, time.Minute, func(d netem.Delivery, ok bool) { delivered++ }))
	clock.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d on single path", delivered)
	}
}

func TestContentAwareDuplicateUrgentTakesFirst(t *testing.T) {
	clock := sim.NewClock(1)
	fast := netem.NewPath(clock, "fast", netem.Constant(80e6), 0, 0)
	slow := netem.NewPath(clock, "slow", netem.Constant(1e6), 0, 0)
	c := NewContentAware(clock, fast, slow)
	c.DuplicateUrgent = true
	calls := 0
	var done time.Duration
	c.Submit(mkReq(1, transport.ClassFoV, true, 1e6, time.Minute, func(d netem.Delivery, ok bool) {
		calls++
		done = d.Done
	}))
	clock.Run()
	if calls != 1 {
		t.Fatalf("OnDone called %d times, want 1 (first copy wins)", calls)
	}
	if done > 500*time.Millisecond {
		t.Fatalf("duplicated urgent done at %v, should ride the fast path", done)
	}
}

func TestContentAwareBeatsMPTCPOnFoVDeadlines(t *testing.T) {
	// The E8 headline: under an asymmetric two-path setup with a lossy
	// secondary, content-aware scheduling meets more FoV deadlines than
	// content-agnostic splitting.
	run := func(build func(clock *sim.Clock, wifi, lte *netem.Path) transport.Scheduler) (met, total int) {
		clock := sim.NewClock(7)
		wifi := netem.NewPath(clock, "wifi", netem.Constant(6e6), 15*time.Millisecond, 0)
		lte := netem.NewPath(clock, "lte", netem.Constant(5e6), 45*time.Millisecond, 0.05)
		s := build(clock, wifi, lte)
		// 30 intervals; per interval one 1.25 MB FoV super chunk (5 Mbps
		// at 2s) + one 0.5 MB OOS bundle; deadlines 2s apart with 4s
		// startup slack.
		for i := 0; i < 30; i++ {
			deadline := time.Duration(i+2) * 2 * time.Second
			fov := mkReq(i*2, transport.ClassFoV, false, 1250_000, deadline, func(d netem.Delivery, ok bool) {
				total++
				if ok {
					met++
				}
			})
			oos := mkReq(i*2+1, transport.ClassOOS, false, 500_000, deadline, nil)
			clock.Schedule(time.Duration(i)*2*time.Second, func() {
				s.Submit(fov)
				s.Submit(oos)
			})
		}
		clock.Run()
		return met, total
	}
	caMet, caTotal := run(func(clock *sim.Clock, wifi, lte *netem.Path) transport.Scheduler {
		return NewContentAware(clock, wifi, lte)
	})
	mpMet, mpTotal := run(func(clock *sim.Clock, wifi, lte *netem.Path) transport.Scheduler {
		return NewMPTCPLike(clock, wifi, lte)
	})
	if caTotal != 30 || mpTotal != 30 {
		t.Fatalf("totals %d/%d", caTotal, mpTotal)
	}
	if caMet < mpMet {
		t.Fatalf("content-aware met %d/30 FoV deadlines, MPTCP %d/30", caMet, mpMet)
	}
}

package multipath

import (
	"testing"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

func TestCodedDeliversOnCleanPaths(t *testing.T) {
	clock := sim.NewClock(1)
	a := netem.NewPath(clock, "a", netem.Constant(8e6), 5*time.Millisecond, 0)
	b := netem.NewPath(clock, "b", netem.Constant(8e6), 5*time.Millisecond, 0)
	c := NewCoded(clock, a, b)
	var d netem.Delivery
	calls := 0
	c.Submit(mkReq(1, transport.ClassFoV, false, 1e6, time.Minute, func(x netem.Delivery, ok bool) {
		calls++
		d = x
		if !ok {
			t.Error("clean-path coded transfer missed deadline")
		}
	}))
	clock.Run()
	if calls != 1 {
		t.Fatalf("OnDone called %d times", calls)
	}
	if !d.OK || d.Bytes != 1e6 {
		t.Fatalf("delivery %+v", d)
	}
	// K=4 of 5 fragments suffice: completion must beat a serialized
	// full transfer on one path (1 s).
	if d.Done >= time.Second {
		t.Fatalf("coded completion %v not faster than single path", d.Done)
	}
}

func TestCodedSurvivesFragmentLoss(t *testing.T) {
	// With R=2 repair fragments, losing up to 2 fragments still
	// completes the chunk.
	clock := sim.NewClock(3)
	lossy := netem.NewPath(clock, "lossy", netem.Constant(50e6), 0, 0.05)
	clean := netem.NewPath(clock, "clean", netem.Constant(50e6), 0, 0)
	c := NewCoded(clock, clean, lossy)
	c.DataFragments, c.RepairFragments = 4, 2
	oks, losses := 0, 0
	for i := 0; i < 100; i++ {
		c.Submit(mkReq(i, transport.ClassFoV, false, 800_000, time.Hour, func(d netem.Delivery, ok bool) {
			if d.OK {
				oks++
			} else {
				losses++
			}
		}))
	}
	clock.Run()
	if oks == 0 {
		t.Fatal("coded scheduler never completed a chunk")
	}
	// Redundancy must recover most chunks despite 5% fragment loss on
	// half the fragments.
	if float64(oks)/float64(oks+losses) < 0.9 {
		t.Fatalf("only %d/%d chunks recovered", oks, oks+losses)
	}
}

func TestCodedReportsLossWhenCodeInsufficient(t *testing.T) {
	// Zero repair fragments on a very lossy path: some chunks must fail
	// and report OK=false exactly once.
	clock := sim.NewClock(7)
	lossy := netem.NewPath(clock, "lossy", netem.Constant(50e6), 0, 0.3)
	c := NewCoded(clock, lossy)
	c.DataFragments, c.RepairFragments = 4, 0
	calls, losses := 0, 0
	for i := 0; i < 50; i++ {
		c.Submit(mkReq(i, transport.ClassFoV, false, 800_000, time.Hour, func(d netem.Delivery, ok bool) {
			calls++
			if !d.OK {
				losses++
			}
		}))
	}
	clock.Run()
	if calls != 50 {
		t.Fatalf("OnDone called %d times for 50 chunks", calls)
	}
	if losses == 0 {
		t.Fatal("30% loss with no repair never lost a chunk")
	}
}

func TestCodedRedundancyOverheadBounded(t *testing.T) {
	clock := sim.NewClock(1)
	a := netem.NewPath(clock, "a", netem.Constant(100e6), 0, 0)
	c := NewCoded(clock, a)
	c.DataFragments, c.RepairFragments = 4, 1
	c.Submit(mkReq(1, transport.ClassFoV, false, 1_000_000, time.Hour, nil))
	clock.Run()
	// 5 fragments of 250 KB = 1.25 MB on the wire: 25% overhead.
	if a.BytesMoved() > 1_300_000 {
		t.Fatalf("wire bytes %d exceed K+R overhead bound", a.BytesMoved())
	}
	if a.BytesMoved() < 1_200_000 {
		t.Fatalf("wire bytes %d below expected redundancy", a.BytesMoved())
	}
}

func TestCodedDefaults(t *testing.T) {
	c := &Coded{}
	if c.k() != 4 || c.r() != 1 {
		t.Fatalf("defaults K=%d R=%d, want 4/1", c.k(), c.r())
	}
	c.DataFragments = 8
	if c.r() != 0 {
		t.Fatalf("explicit K with zero R should mean R=0, got %d", c.r())
	}
}

package multipath

import (
	"testing"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

// TestContentAwareZeroPathsFailsFast is the PR 5 regression test for
// the bestPath panic: a scheduler with no paths must not crash on
// Submit, and must fail the request through OnDone rather than drop it
// silently.
func TestContentAwareZeroPathsFailsFast(t *testing.T) {
	clock := sim.NewClock(1)
	c := NewContentAware(clock)

	called, okFlag := false, true
	c.Submit(mkReq(1, transport.ClassFoV, false, 1e6, time.Second, func(d netem.Delivery, ok bool) {
		called, okFlag = true, ok
		if d.Bytes != 1e6 {
			t.Errorf("failed delivery reports %d bytes, want the request size", d.Bytes)
		}
		if d.OK {
			t.Error("zero-path delivery marked OK")
		}
	}))
	if !called {
		t.Fatal("OnDone never fired with zero paths")
	}
	if okFlag {
		t.Fatal("zero-path submit reported success")
	}

	// Urgent and OOS classes go down different routing branches; none
	// may panic.
	c.Submit(mkReq(2, transport.ClassOOS, false, 1e5, time.Second, nil))
	c.Submit(mkReq(3, transport.ClassFoV, true, 1e5, time.Second, nil))

	if c.bestPath(1e6) != -1 {
		t.Fatal("bestPath with zero paths must return -1")
	}
}

// TestContentAwareStructLiteral: assembling the scheduler without the
// constructor (nil queues) must still work — ensure() sizes the state
// on first Submit.
func TestContentAwareStructLiteral(t *testing.T) {
	clock := sim.NewClock(1)
	wifi, lte := twoPaths(clock)
	c := &ContentAware{Paths: []*netem.Path{wifi, lte}, Clock: clock}

	var got netem.Delivery
	c.Submit(mkReq(1, transport.ClassFoV, false, 1e6, time.Minute, func(d netem.Delivery, ok bool) { got = d }))
	clock.Run()
	if got.Bytes != 1e6 || !got.OK {
		t.Fatalf("struct-literal scheduler failed delivery: %+v", got)
	}
}

// TestContentAwareOnePath re-pins the degenerate single-path routing
// alongside the new guard: both classes land on the only path.
func TestContentAwareOnePath(t *testing.T) {
	clock := sim.NewClock(1)
	only := netem.NewPath(clock, "only", netem.Constant(8e6), 10*time.Millisecond, 0)
	c := NewContentAware(clock, only)

	done := 0
	cb := func(d netem.Delivery, ok bool) {
		if !d.OK {
			t.Errorf("single-path delivery failed: %+v", d)
		}
		done++
	}
	c.Submit(mkReq(1, transport.ClassFoV, false, 5e5, time.Minute, cb))
	c.Submit(mkReq(2, transport.ClassOOS, false, 5e5, time.Minute, cb))
	clock.Run()
	if done != 2 {
		t.Fatalf("%d of 2 deliveries completed", done)
	}
	if only.BytesMoved() != 1e6 {
		t.Fatalf("path moved %d bytes, want 1e6", only.BytesMoved())
	}
}

// Package multipath implements §3.3: streaming tiled 360° video over
// several network paths at once (e.g. WiFi + LTE). Two strategies are
// provided and compared by experiment E8:
//
//   - MPTCPLike reproduces the content-agnostic state of the art [5]:
//     the application sees one logical pipe and every chunk's bytes are
//     split across the actual paths, so completion is gated by the
//     slower subflow and cross-path reordering adds delay [36].
//
//   - ContentAware is the paper's proposal: chunks keep their identity,
//     and the scheduler uses the Table 1 priorities — FoV and urgent
//     chunks ride the better path with reliable delivery, OOS chunks
//     ride the weaker path best-effort. Paths stay decoupled, so there
//     is no cross-path head-of-line blocking, and losing an OOS chunk
//     costs only a low-quality tile rather than a stall.
package multipath

import (
	"time"

	"sperke/internal/netem"
	"sperke/internal/transport"
)

// clockNow abstracts the sim clock.
type clockNow interface{ Now() time.Duration }

// MPTCPLike is the content-agnostic baseline: each chunk is split
// across all paths proportionally to their instantaneous rates, and the
// chunk completes when its last subflow completes, plus a reordering
// penalty proportional to subflow skew (the cross-path out-of-order
// problem measured by [36]).
type MPTCPLike struct {
	Paths []*netem.Path
	Clock clockNow
	// ReorderPenalty scales the skew between the fastest and slowest
	// subflow into reassembly delay; 0 defaults to 0.25.
	ReorderPenalty float64
}

// NewMPTCPLike builds the baseline over the given paths.
func NewMPTCPLike(clock clockNow, paths ...*netem.Path) *MPTCPLike {
	return &MPTCPLike{Paths: paths, Clock: clock}
}

// Name implements transport.Scheduler.
func (m *MPTCPLike) Name() string { return "mptcp" }

// Submit implements transport.Scheduler.
func (m *MPTCPLike) Submit(r *transport.Request) {
	if len(m.Paths) == 0 {
		return
	}
	now := m.Clock.Now()
	// Split proportional to current raw rates.
	rates := make([]float64, len(m.Paths))
	var total float64
	for i, p := range m.Paths {
		rates[i] = p.RateAt(now)
		if rates[i] <= 0 || rates[i] != rates[i] { // zero or NaN
			rates[i] = 1
		}
		total += rates[i]
	}
	penalty := m.ReorderPenalty
	if penalty <= 0 {
		penalty = 0.25
	}
	remaining := len(m.Paths)
	var firstDone, lastDone time.Duration
	var start time.Duration = -1
	allOK := true
	for i, p := range m.Paths {
		share := int64(float64(r.Bytes) * rates[i] / total)
		if i == len(m.Paths)-1 {
			share = r.Bytes - int64(float64(r.Bytes)*(total-rates[i])/total)
		}
		if share <= 0 {
			share = 1
		}
		p.Transfer(share, netem.Reliable, func(d netem.Delivery) {
			if start < 0 || d.Start < start {
				start = d.Start
			}
			if firstDone == 0 || d.Done < firstDone {
				firstDone = d.Done
			}
			if d.Done > lastDone {
				lastDone = d.Done
			}
			if !d.OK {
				allOK = false
			}
			remaining--
			if remaining == 0 && r.OnDone != nil {
				skew := lastDone - firstDone
				done := lastDone + time.Duration(float64(skew)*penalty)
				r.OnDone(netem.Delivery{
					Start: start, Done: done, Bytes: r.Bytes, OK: allOK,
				}, done <= r.Deadline)
			}
		})
	}
}

// ContentAware is the paper's priority-driven scheduler. It keeps a
// Table 1 priority queue per path and routes by chunk role: FoV and
// urgent chunks to the path with the shortest estimated completion
// (reliable QoS); OOS chunks to the remaining path (best-effort QoS) —
// "prioritize FoV and OOS chunks over the high-quality and low-quality
// paths, and deliver them in different transport-layer QoS" (§3.3).
type ContentAware struct {
	Paths []*netem.Path
	Clock clockNow
	// DuplicateUrgent, when set, sends urgent chunks on every path at
	// once and takes the first arrival — the redundancy/network-coding
	// idea the section closes with [22].
	DuplicateUrgent bool

	queues []transport.Queue
	active []int
}

// NewContentAware builds the scheduler over the given paths.
func NewContentAware(clock clockNow, paths ...*netem.Path) *ContentAware {
	return &ContentAware{
		Paths:  paths,
		Clock:  clock,
		queues: make([]transport.Queue, len(paths)),
		active: make([]int, len(paths)),
	}
}

// Name implements transport.Scheduler.
func (c *ContentAware) Name() string { return "content-aware" }

// bestPath returns the index of the path with the shortest estimated
// completion for the given size, or -1 when the scheduler has no paths
// (mirroring otherPath's handling of the degenerate case instead of
// panicking on Paths[0]).
func (c *ContentAware) bestPath(bytes int64) int {
	if len(c.Paths) == 0 {
		return -1
	}
	best := 0
	bestT := c.Paths[0].EstimateTransferTime(bytes)
	for i := 1; i < len(c.Paths); i++ {
		if t := c.Paths[i].EstimateTransferTime(bytes); t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// ensure sizes the per-path queue state so a ContentAware assembled as
// a struct literal (skipping NewContentAware) is still safe to use.
func (c *ContentAware) ensure() {
	if len(c.queues) != len(c.Paths) {
		c.queues = make([]transport.Queue, len(c.Paths))
		c.active = make([]int, len(c.Paths))
	}
}

// otherPath returns the least-loaded path other than avoid (or avoid
// itself when it is the only path).
func (c *ContentAware) otherPath(avoid int, bytes int64) int {
	best := -1
	var bestT time.Duration
	for i := range c.Paths {
		if i == avoid {
			continue
		}
		t := c.Paths[i].EstimateTransferTime(bytes)
		if best < 0 || t < bestT {
			best, bestT = i, t
		}
	}
	if best < 0 {
		return avoid
	}
	return best
}

// Submit implements transport.Scheduler. With zero paths every request
// fails fast — OnDone fires with an unsuccessful delivery instead of
// silently vanishing (or panicking), so callers waiting on completion
// are never left hanging.
func (c *ContentAware) Submit(r *transport.Request) {
	if len(c.Paths) == 0 {
		if r.OnDone != nil {
			r.OnDone(netem.Delivery{Bytes: r.Bytes, OK: false}, false)
		}
		return
	}
	c.ensure()
	if r.Urgent && c.DuplicateUrgent && len(c.Paths) > 1 {
		c.submitDuplicated(r)
		return
	}
	var idx int
	if r.Class == transport.ClassFoV || r.Urgent {
		idx = c.bestPath(r.Bytes)
	} else {
		idx = c.otherPath(c.bestPath(r.Bytes), r.Bytes)
	}
	c.queues[idx].Push(r)
	c.pump(idx)
}

// submitDuplicated races the chunk on every path; the first completed
// copy wins.
func (c *ContentAware) submitDuplicated(r *transport.Request) {
	done := false
	for i := range c.Paths {
		c.Paths[i].Transfer(r.Bytes, netem.Reliable, func(d netem.Delivery) {
			if done || !d.OK {
				return
			}
			done = true
			if r.OnDone != nil {
				r.OnDone(d, d.Done <= r.Deadline)
			}
		})
	}
}

func (c *ContentAware) pump(idx int) {
	if c.active[idx] > 0 {
		return
	}
	r := c.queues[idx].Pop()
	if r == nil {
		return
	}
	c.active[idx]++
	qos := netem.Reliable
	if r.Class == transport.ClassOOS && !r.Urgent {
		qos = netem.BestEffort
	}
	c.Paths[idx].Transfer(r.Bytes, qos, func(d netem.Delivery) {
		c.active[idx]--
		if r.OnDone != nil {
			r.OnDone(d, d.OK && d.Done <= r.Deadline)
		}
		c.pump(idx)
	})
}

// Pending returns queued requests across all paths.
func (c *ContentAware) Pending() int {
	n := 0
	for i := range c.queues {
		n += c.queues[i].Len()
	}
	return n
}

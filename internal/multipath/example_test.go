package multipath_test

import (
	"fmt"
	"time"

	"sperke/internal/multipath"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

// ExampleContentAware routes one FoV chunk and one OOS chunk per §3.3:
// the FoV chunk rides the better path reliably, the OOS chunk rides the
// other best-effort.
func ExampleContentAware() {
	clock := sim.NewClock(1)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 10*time.Millisecond, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(4e6), 40*time.Millisecond, 0)
	sched := multipath.NewContentAware(clock, wifi, lte)

	sched.Submit(&transport.Request{Bytes: 4e5, Deadline: time.Minute, Class: transport.ClassOOS})
	sched.Submit(&transport.Request{Bytes: 1e6, Deadline: time.Minute, Class: transport.ClassFoV})
	clock.Run()
	fmt.Printf("wifi carried %.1f MB (FoV), lte carried %.1f MB (OOS)\n",
		float64(wifi.BytesMoved())/1e6, float64(lte.BytesMoved())/1e6)
	// Output:
	// wifi carried 1.0 MB (FoV), lte carried 0.4 MB (OOS)
}

package dash

import (
	"context"
	"errors"
	"fmt"
)

// ErrorKind classifies a client failure so callers (and the client's
// own retry loop) can tell transient trouble from permanent failure and
// degrade instead of crash.
type ErrorKind int

// Error kinds.
const (
	// KindTransient marks failures worth retrying: network errors, 5xx
	// and 429 responses, and truncated or corrupt segment bodies.
	KindTransient ErrorKind = iota
	// KindFatal marks failures retrying cannot fix: 4xx responses and
	// malformed requests.
	KindFatal
	// KindCanceled marks the caller's context expiring; the client stops
	// retrying immediately.
	KindCanceled
)

func (k ErrorKind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindFatal:
		return "fatal"
	default:
		return "canceled"
	}
}

// Error is the typed failure a resilient Client returns.
type Error struct {
	// Op is the request path the failure happened on.
	Op string
	// Kind is the retry classification.
	Kind ErrorKind
	// Status is the HTTP status when one was received (0 otherwise).
	Status int
	// Attempts is how many tries the client made before giving up.
	Attempts int
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("dash: GET %s (%s, %d attempts)", e.Op, e.Kind, e.Attempts)
	if e.Status != 0 {
		msg += fmt.Sprintf(": status %d", e.Status)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// Retryable reports whether another attempt could succeed.
func (e *Error) Retryable() bool { return e.Kind == KindTransient }

// Retryable reports whether err is a dash client failure another
// attempt could fix.
func Retryable(err error) bool {
	var de *Error
	return errors.As(err, &de) && de.Retryable()
}

// classifyCtx maps a request error to a kind, preferring the caller's
// context state: a canceled or expired parent context is KindCanceled,
// everything else that reached the network is transient.
func classifyCtx(ctx context.Context, err error) ErrorKind {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	return KindTransient
}

package dash

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrorKind classifies a client failure so callers (and the client's
// own retry loop) can tell transient trouble from permanent failure and
// degrade instead of crash.
type ErrorKind int

// Error kinds.
const (
	// KindTransient marks failures worth retrying: network errors, 5xx
	// and 429 responses, and truncated or corrupt segment bodies.
	KindTransient ErrorKind = iota
	// KindFatal marks failures retrying cannot fix: 4xx responses and
	// malformed requests.
	KindFatal
	// KindCanceled marks the caller's context expiring; the client stops
	// retrying immediately.
	KindCanceled
	// KindOverload marks a 503/429 carrying a Retry-After hint: the
	// server shed the request under load. Retryable, but the hint floors
	// the backoff so shed requests do not hammer a recovering node.
	KindOverload
)

func (k ErrorKind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindFatal:
		return "fatal"
	case KindOverload:
		return "overload"
	default:
		return "canceled"
	}
}

// Error is the typed failure a resilient Client returns.
type Error struct {
	// Op is the request path the failure happened on.
	Op string
	// Kind is the retry classification.
	Kind ErrorKind
	// Status is the HTTP status when one was received (0 otherwise).
	Status int
	// Attempts is how many tries the client made before giving up.
	Attempts int
	// RetryAfter is the server's Retry-After hint on a KindOverload
	// failure (zero otherwise). The retry loop uses it as the backoff
	// floor.
	RetryAfter time.Duration
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("dash: GET %s (%s, %d attempts)", e.Op, e.Kind, e.Attempts)
	if e.Status != 0 {
		msg += fmt.Sprintf(": status %d", e.Status)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// Retryable reports whether another attempt could succeed.
func (e *Error) Retryable() bool { return e.Kind == KindTransient || e.Kind == KindOverload }

// Retryable reports whether err is a dash client failure another
// attempt could fix.
func Retryable(err error) bool {
	var de *Error
	return errors.As(err, &de) && de.Retryable()
}

// ErrUnavailable marks a ChunkSource failure meaning "this server
// cannot serve right now" — a crashed cluster node, a draining
// process. The server maps anything wrapping it to 503 so resilient
// clients retry elsewhere instead of treating it as a synthesis bug.
var ErrUnavailable = errors.New("dash: service unavailable")

// OverloadError is what an admission-controlled ChunkSource returns
// when it sheds a request instead of queueing it: the edge/origin
// cluster's bounded in-flight guard is the canonical source. The
// server maps it to 503 with a Retry-After header carrying the hint;
// the client turns that into a KindOverload error whose RetryAfter
// floors the retry backoff.
type OverloadError struct {
	// RetryAfter hints when the caller should try again.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("dash: overloaded, retry after %v", e.RetryAfter)
}

// Is matches ErrUnavailable, so errors.Is(err, ErrUnavailable) covers
// both the crashed and the saturated flavors of "not now".
func (e *OverloadError) Is(target error) bool { return target == ErrUnavailable }

// classifyCtx maps a request error to a kind, preferring the caller's
// context state: a canceled or expired parent context is KindCanceled,
// everything else that reached the network is transient.
func classifyCtx(ctx context.Context, err error) ErrorKind {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	return KindTransient
}

package dash

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/tiling"
)

// Catalog is the server-side content store of Fig. 2: videos organized
// as qualities × tiles × chunks. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	videos map[string]*media.Video
	// live windows: videoID → [first, last] available chunk index.
	windows map[string][2]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		videos:  make(map[string]*media.Video),
		windows: make(map[string][2]int),
	}
}

// Add registers a video. It returns an error for invalid videos or
// duplicate IDs.
func (c *Catalog) Add(v *media.Video) error {
	if err := v.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.videos[v.ID]; ok {
		return fmt.Errorf("dash: video %q already in catalog", v.ID)
	}
	c.videos[v.ID] = v
	return nil
}

// IDs returns the catalog's video IDs in sorted order.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.videos))
	for id := range c.videos {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns a video by ID.
func (c *Catalog) Get(id string) (*media.Video, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.videos[id]
	return v, ok
}

// SetLiveWindow marks a video live with the given available chunk
// range; the MPD turns dynamic.
func (c *Catalog) SetLiveWindow(id string, first, last int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows[id] = [2]int{first, last}
}

// liveWindow returns the live window if the video is live.
func (c *Catalog) liveWindow(id string) ([2]int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.windows[id]
	return w, ok
}

// ChunkSource serves pre-built chunk bodies. The sharded, singleflight
// chunk store of internal/serve implements it; a Server with a source
// configured (WithStore) serves bodies from it instead of
// re-synthesizing every request. Implementations must return the exact
// bytes BuildChunkBody would produce for the same address.
type ChunkSource interface {
	Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error)
}

// ChunkStreamer is the streaming counterpart of ChunkSource: instead
// of returning a materialized body it writes the chunk straight into
// the caller's ResponseWriter, setting Content-Type and Content-Length
// itself before the first byte when it knows the length. The wire
// cluster's router implements it to proxy edge responses without
// buffering them. A Server whose Store also implements ChunkStreamer
// serves chunk bodies through this path; it reports the bytes written
// so the server can tell a clean failure (nothing sent, map the error
// to a status) from a poisoned response (bytes on the wire, abandon).
type ChunkStreamer interface {
	StreamChunk(ctx context.Context, w http.ResponseWriter, videoID string, quality, tile, index int, layer bool) (int64, error)
}

// Server serves manifests and segments over HTTP:
//
//	GET /v/{video}/manifest.mpd
//	GET /v/{video}/c/{quality}/{tile}/{index}          (AVC chunk)
//	GET /v/{video}/c/{quality}/{tile}/{index}?layer=1  (one SVC layer)
//
// Segment bodies are the binary container of package media with
// deterministic synthetic payloads sized by the video's rate model.
type Server struct {
	Catalog *Catalog
	Log     *slog.Logger
	// Obs, when set before the first request, records request counts,
	// response bytes, error counts and a per-request latency histogram
	// (dash.server.*). Nil disables metrics.
	Obs *obs.Registry
	// Store, when set before the first request, serves chunk bodies from
	// a cache instead of re-synthesizing them per request. Nil keeps the
	// original synthesize-per-request behaviour.
	Store ChunkSource

	mux  *http.ServeMux
	once sync.Once
	met  serverMetrics
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithLogger sets the server's logger; nil is ignored.
func WithLogger(log *slog.Logger) ServerOption {
	return func(s *Server) {
		if log != nil {
			s.Log = log
		}
	}
}

// WithObs wires the server's request metrics into a registry.
func WithObs(r *obs.Registry) ServerOption {
	return func(s *Server) { s.Obs = r }
}

// WithStore serves chunk bodies through a ChunkSource — typically the
// sharded cache of internal/serve — instead of synthesizing per
// request.
func WithStore(src ChunkSource) ServerOption {
	return func(s *Server) { s.Store = src }
}

// serverMetrics caches the server's instruments; nil fields no-op.
type serverMetrics struct {
	requests  *obs.Counter
	mpd       *obs.Counter
	chunks    *obs.Counter
	errors    *obs.Counter
	canceled  *obs.Counter
	bytesTx   *obs.Counter
	requestMS *obs.Histogram
	wall      *obs.Wall
}

// countingWriter captures status and body bytes for metrics. A handler
// that returns early because the client went away marks the writer
// aborted instead of writing a status — otherwise the default 200
// would count a request nobody received as a success.
type countingWriter struct {
	http.ResponseWriter
	status  int
	bytes   int64
	aborted bool
}

func (w *countingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush passes http.Flusher through to the wrapped writer, so the
// streaming chunk path can push blocks to a live viewer mid-body.
func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// markAborted records a client-side abort on w when it is a metrics
// wrapper; on a bare ResponseWriter there is nothing to record.
func markAborted(w http.ResponseWriter) {
	if cw, ok := w.(*countingWriter); ok {
		cw.aborted = true
	}
}

// NewServer builds a server over a catalog. Options (WithLogger,
// WithObs, WithStore) configure the optional hooks; nil options are
// ignored so legacy NewServer(catalog, nil) call sites keep compiling.
func NewServer(catalog *Catalog, opts ...ServerOption) *Server {
	s := &Server{Catalog: catalog, Log: slog.Default()}
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	return s
}

func (s *Server) init() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v", s.handleList)
	s.mux.HandleFunc("GET /v/{video}/manifest.mpd", s.handleMPD)
	s.mux.HandleFunc("GET /v/{video}/c/{quality}/{tile}/{index}", s.handleChunk)
	s.met = serverMetrics{
		requests:  s.Obs.Counter("dash.server.requests"),
		mpd:       s.Obs.Counter("dash.server.mpd_requests"),
		chunks:    s.Obs.Counter("dash.server.chunk_requests"),
		errors:    s.Obs.Counter("dash.server.errors"),
		canceled:  s.Obs.Counter("dash.server.canceled"),
		bytesTx:   s.Obs.Counter("dash.server.bytes_tx"),
		requestMS: s.Obs.Histogram("dash.server.request_ms"),
	}
	if s.Obs != nil {
		s.met.wall = obs.NewWall()
	}
}

// handleList returns the catalog's video IDs, one per line.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, id := range s.Catalog.IDs() {
		fmt.Fprintln(w, id)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.once.Do(s.init)
	if s.met.wall == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := s.met.wall.Now()
	cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(cw, r)
	s.met.requests.Inc()
	s.met.bytesTx.Add(cw.bytes)
	switch {
	case cw.aborted:
		// The client canceled mid-request: neither a success nor a server
		// error (the 499 class nginx coined).
		s.met.canceled.Inc()
	case cw.status >= 400:
		s.met.errors.Inc()
	}
	s.met.requestMS.Observe(float64(s.met.wall.Now()-start) / float64(time.Millisecond))
}

func (s *Server) handleMPD(w http.ResponseWriter, r *http.Request) {
	s.met.mpd.Inc()
	v, ok := s.Catalog.Get(r.PathValue("video"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	win, live := s.Catalog.liveWindow(v.ID)
	mpd := BuildMPD(v, live, win[0], win[1])
	if live {
		// A live manifest's duration reflects what has been produced.
		mpd.DurationMs = int64(win[1]+1) * v.ChunkDuration.Milliseconds()
	}
	out, err := mpd.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/dash+xml")
	w.Write(out)
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	s.met.chunks.Inc()
	v, ok := s.Catalog.Get(r.PathValue("video"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	q, err1 := strconv.Atoi(r.PathValue("quality"))
	tile, err2 := strconv.Atoi(r.PathValue("tile"))
	idx, err3 := strconv.Atoi(r.PathValue("index"))
	if err1 != nil || err2 != nil || err3 != nil {
		http.Error(w, "dash: bad chunk address", http.StatusBadRequest)
		return
	}
	if q < 0 || q >= v.Qualities() || !v.Grid.Valid(tiling.TileID(tile)) || idx < 0 || idx >= v.NumChunks() {
		http.Error(w, "dash: chunk out of range", http.StatusNotFound)
		return
	}
	if win, live := s.Catalog.liveWindow(v.ID); live && (idx < win[0] || idx > win[1]) {
		http.Error(w, "dash: chunk outside live window", http.StatusNotFound)
		return
	}
	isLayer := false
	if r.URL.RawQuery != "" {
		isLayer = r.URL.Query().Get("layer") == "1"
	}
	if isLayer && v.Encoding != media.EncodingSVC {
		http.Error(w, "dash: video is not SVC encoded", http.StatusBadRequest)
		return
	}
	start := v.ChunkStart(idx)
	var size int64
	if isLayer {
		size = v.LayerBytes(q, tiling.TileID(tile), start)
	} else {
		size = v.ChunkBytes(q, tiling.TileID(tile), start)
	}
	if size <= 0 {
		http.Error(w, "dash: empty chunk", http.StatusNotFound)
		return
	}
	if s.Store == nil {
		// Writer-first store-less path: Content-Length comes from the
		// size model, the body streams block by block straight into the
		// response writer — no body-sized buffer anywhere.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(media.SegmentLen(v.ID, int(size))))
		if err := WriteChunkBody(w, v, q, tile, idx, isLayer); err != nil {
			// The address was fully validated above, so a failure here is
			// the client hanging up mid-stream.
			markAborted(w)
			s.Log.Debug("dash: segment write aborted", "video", v.ID, "err", err)
		}
		return
	}
	if st, ok := s.Store.(ChunkStreamer); ok {
		// Streaming source: the body flows straight from the source into
		// the response writer — nothing is materialized here. Once bytes
		// are on the wire (or the client has left) a failure can only be
		// abandoned, not repaired into an error status.
		n, err := st.StreamChunk(r.Context(), w, v.ID, q, tile, idx, isLayer)
		if err != nil {
			if n > 0 || r.Context().Err() != nil {
				markAborted(w)
				s.Log.Debug("dash: streamed chunk aborted", "video", v.ID, "err", err)
				return
			}
			// The streamer may have promised a length before its source
			// failed; an error body under a stale Content-Length would
			// truncate or pad on the wire.
			w.Header().Del("Content-Length")
			s.writeChunkError(w, r, v.ID, err)
		}
		return
	}
	body, err := s.Store.Chunk(r.Context(), v.ID, q, tile, idx, isLayer)
	if err != nil {
		s.writeChunkError(w, r, v.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		markAborted(w)
		s.Log.Debug("dash: segment write aborted", "video", v.ID, "err", err)
	}
}

// writeChunkError maps a chunk-source failure onto the wire: a caller
// that went away is an abort (nobody left to answer), an overload shed
// is 503 with the Retry-After hint so a resilient client backs off
// instead of hammering, unavailability is a plain 503, and anything
// else a 500.
func (s *Server) writeChunkError(w http.ResponseWriter, r *http.Request, videoID string, err error) {
	if r.Context().Err() != nil {
		markAborted(w)
		s.Log.Debug("dash: chunk request canceled", "video", videoID, "err", err)
		return
	}
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		if secs := retryAfterSeconds(oe.RetryAfter); secs > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// retryAfterSeconds renders a Retry-After hint in whole seconds,
// rounded up so the client never comes back early (0 means no header).
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

// chunkSpec resolves a chunk address against the video's rate model:
// the segment header, the payload seed and the payload size every
// synthesis entry point shares. One resolver means the streamed, the
// appended and the cached forms of a body cannot disagree.
func chunkSpec(v *media.Video, q, tile, idx int, layer bool) (h media.SegmentHeader, seed uint64, size int64, err error) {
	start := v.ChunkStart(idx)
	var flags uint8
	if layer {
		if v.Encoding != media.EncodingSVC {
			return h, 0, 0, fmt.Errorf("dash: video %q is not SVC encoded", v.ID)
		}
		size = v.LayerBytes(q, tiling.TileID(tile), start)
		flags |= media.FlagSVCLayer
	} else {
		size = v.ChunkBytes(q, tiling.TileID(tile), start)
	}
	if size <= 0 {
		return h, 0, 0, fmt.Errorf("dash: empty chunk %s/%d/%d/%d", v.ID, q, tile, idx)
	}
	h = media.SegmentHeader{
		VideoID:  v.ID,
		Quality:  q,
		Flags:    flags,
		Tile:     tiling.TileID(tile),
		Start:    start,
		Duration: v.ChunkDuration,
	}
	seed = uint64(q)<<40 ^ uint64(tile)<<20 ^ uint64(idx) ^ 0x5eed
	if layer {
		// The layer flag must reach the seed: without it an SVC layer at
		// (q,tile,idx) is a byte-prefix of the full chunk at the same
		// address — the seed-collision class PR 5 fixed for adjacent
		// seeds, reintroduced through the address space.
		seed ^= 1 << 63
	}
	return h, seed, size, nil
}

// ChunkBodyLen reports the exact wire length of a chunk body without
// building it — the Content-Length of the streaming path, from
// media.SegmentLen and the size model.
func ChunkBodyLen(v *media.Video, q, tile, idx int, layer bool) (int, error) {
	h, _, size, err := chunkSpec(v, q, tile, idx, layer)
	if err != nil {
		return 0, err
	}
	return media.SegmentLen(h.VideoID, int(size)), nil
}

// WriteChunkBody streams the wire body of one chunk into w with zero
// body materialization: peak scratch is media's fixed block size, not
// the body. This is the primary synthesis form; the byte-slice
// builders below wrap it, so streamed, appended and cached bodies are
// byte-identical by construction.
func WriteChunkBody(w io.Writer, v *media.Video, q, tile, idx int, layer bool) error {
	h, seed, size, err := chunkSpec(v, q, tile, idx, layer)
	if err != nil {
		return err
	}
	if err := media.WriteSyntheticSegment(w, h, seed, int(size)); err != nil {
		return fmt.Errorf("dash: writing chunk body: %w", err)
	}
	return nil
}

// BuildChunkBody synthesizes the wire body of one chunk — the segment
// container holding a deterministic payload sized by the video's rate
// model — into a fresh exactly-sized slice. A thin wrapper over
// AppendChunkBody.
func BuildChunkBody(v *media.Video, q, tile, idx int, layer bool) ([]byte, error) {
	return AppendChunkBody(nil, v, q, tile, idx, layer)
}

// AppendChunkBody appends the wire body of one chunk to dst and
// returns the extended slice, allocating only when dst lacks capacity —
// the appending variant of WriteChunkBody for pooled scratch buffers.
// On error dst is returned unchanged.
func AppendChunkBody(dst []byte, v *media.Video, q, tile, idx int, layer bool) ([]byte, error) {
	h, seed, size, err := chunkSpec(v, q, tile, idx, layer)
	if err != nil {
		return dst, err
	}
	out, err := media.AppendSyntheticSegment(dst, h, seed, int(size))
	if err != nil {
		return dst, fmt.Errorf("dash: building chunk body: %w", err)
	}
	return out, nil
}

// chunkPath renders the URL path of a chunk.
func chunkPath(videoID string, q, tile, idx int, layer bool) string {
	p := fmt.Sprintf("/v/%s/c/%d/%d/%d", videoID, q, tile, idx)
	if layer {
		p += "?layer=1"
	}
	return p
}

// mpdPath renders the URL path of a manifest.
func mpdPath(videoID string) string { return "/v/" + videoID + "/manifest.mpd" }

// ChunkIndexAt converts a media time to a chunk index for a video.
func ChunkIndexAt(v *media.Video, at time.Duration) int {
	if v.ChunkDuration <= 0 {
		return 0
	}
	return int(at / v.ChunkDuration)
}

package dash

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/tiling"
)

// Catalog is the server-side content store of Fig. 2: videos organized
// as qualities × tiles × chunks. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	videos map[string]*media.Video
	// live windows: videoID → [first, last] available chunk index.
	windows map[string][2]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		videos:  make(map[string]*media.Video),
		windows: make(map[string][2]int),
	}
}

// Add registers a video. It returns an error for invalid videos or
// duplicate IDs.
func (c *Catalog) Add(v *media.Video) error {
	if err := v.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.videos[v.ID]; ok {
		return fmt.Errorf("dash: video %q already in catalog", v.ID)
	}
	c.videos[v.ID] = v
	return nil
}

// IDs returns the catalog's video IDs in sorted order.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.videos))
	for id := range c.videos {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns a video by ID.
func (c *Catalog) Get(id string) (*media.Video, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.videos[id]
	return v, ok
}

// SetLiveWindow marks a video live with the given available chunk
// range; the MPD turns dynamic.
func (c *Catalog) SetLiveWindow(id string, first, last int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows[id] = [2]int{first, last}
}

// liveWindow returns the live window if the video is live.
func (c *Catalog) liveWindow(id string) ([2]int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.windows[id]
	return w, ok
}

// ChunkSource serves pre-built chunk bodies. The sharded, singleflight
// chunk store of internal/serve implements it; a Server with a source
// configured (WithStore) serves bodies from it instead of
// re-synthesizing every request. Implementations must return the exact
// bytes BuildChunkBody would produce for the same address.
type ChunkSource interface {
	Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error)
}

// Server serves manifests and segments over HTTP:
//
//	GET /v/{video}/manifest.mpd
//	GET /v/{video}/c/{quality}/{tile}/{index}          (AVC chunk)
//	GET /v/{video}/c/{quality}/{tile}/{index}?layer=1  (one SVC layer)
//
// Segment bodies are the binary container of package media with
// deterministic synthetic payloads sized by the video's rate model.
type Server struct {
	Catalog *Catalog
	Log     *slog.Logger
	// Obs, when set before the first request, records request counts,
	// response bytes, error counts and a per-request latency histogram
	// (dash.server.*). Nil disables metrics.
	Obs *obs.Registry
	// Store, when set before the first request, serves chunk bodies from
	// a cache instead of re-synthesizing them per request. Nil keeps the
	// original synthesize-per-request behaviour.
	Store ChunkSource

	mux  *http.ServeMux
	once sync.Once
	met  serverMetrics
	// scratch recycles chunk-body build buffers on the store-less path,
	// so steady-state synthesis allocates nothing per request
	// (dash.server.pool_hits / pool_misses).
	scratch *obs.BufferPool
}

// maxPooledBody caps the capacity of recycled build buffers: bodies
// that grew larger are dropped on Put rather than pinning memory.
const maxPooledBody = 8 << 20

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithLogger sets the server's logger; nil is ignored.
func WithLogger(log *slog.Logger) ServerOption {
	return func(s *Server) {
		if log != nil {
			s.Log = log
		}
	}
}

// WithObs wires the server's request metrics into a registry.
func WithObs(r *obs.Registry) ServerOption {
	return func(s *Server) { s.Obs = r }
}

// WithStore serves chunk bodies through a ChunkSource — typically the
// sharded cache of internal/serve — instead of synthesizing per
// request.
func WithStore(src ChunkSource) ServerOption {
	return func(s *Server) { s.Store = src }
}

// serverMetrics caches the server's instruments; nil fields no-op.
type serverMetrics struct {
	requests  *obs.Counter
	mpd       *obs.Counter
	chunks    *obs.Counter
	errors    *obs.Counter
	bytesTx   *obs.Counter
	requestMS *obs.Histogram
	wall      *obs.Wall
}

// countingWriter captures status and body bytes for metrics.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *countingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// NewServer builds a server over a catalog. Options (WithLogger,
// WithObs, WithStore) configure the optional hooks; nil options are
// ignored so legacy NewServer(catalog, nil) call sites keep compiling.
func NewServer(catalog *Catalog, opts ...ServerOption) *Server {
	s := &Server{Catalog: catalog, Log: slog.Default()}
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	return s
}

func (s *Server) init() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v", s.handleList)
	s.mux.HandleFunc("GET /v/{video}/manifest.mpd", s.handleMPD)
	s.mux.HandleFunc("GET /v/{video}/c/{quality}/{tile}/{index}", s.handleChunk)
	s.met = serverMetrics{
		requests:  s.Obs.Counter("dash.server.requests"),
		mpd:       s.Obs.Counter("dash.server.mpd_requests"),
		chunks:    s.Obs.Counter("dash.server.chunk_requests"),
		errors:    s.Obs.Counter("dash.server.errors"),
		bytesTx:   s.Obs.Counter("dash.server.bytes_tx"),
		requestMS: s.Obs.Histogram("dash.server.request_ms"),
	}
	if s.Obs != nil {
		s.met.wall = obs.NewWall()
	}
	s.scratch = obs.NewBufferPool(s.Obs, "dash.server", maxPooledBody)
}

// handleList returns the catalog's video IDs, one per line.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, id := range s.Catalog.IDs() {
		fmt.Fprintln(w, id)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.once.Do(s.init)
	if s.met.wall == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := s.met.wall.Now()
	cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(cw, r)
	s.met.requests.Inc()
	s.met.bytesTx.Add(cw.bytes)
	if cw.status >= 400 {
		s.met.errors.Inc()
	}
	s.met.requestMS.Observe(float64(s.met.wall.Now()-start) / float64(time.Millisecond))
}

func (s *Server) handleMPD(w http.ResponseWriter, r *http.Request) {
	s.met.mpd.Inc()
	v, ok := s.Catalog.Get(r.PathValue("video"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	win, live := s.Catalog.liveWindow(v.ID)
	mpd := BuildMPD(v, live, win[0], win[1])
	if live {
		// A live manifest's duration reflects what has been produced.
		mpd.DurationMs = int64(win[1]+1) * v.ChunkDuration.Milliseconds()
	}
	out, err := mpd.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/dash+xml")
	w.Write(out)
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	s.met.chunks.Inc()
	v, ok := s.Catalog.Get(r.PathValue("video"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	q, err1 := strconv.Atoi(r.PathValue("quality"))
	tile, err2 := strconv.Atoi(r.PathValue("tile"))
	idx, err3 := strconv.Atoi(r.PathValue("index"))
	if err1 != nil || err2 != nil || err3 != nil {
		http.Error(w, "dash: bad chunk address", http.StatusBadRequest)
		return
	}
	if q < 0 || q >= v.Qualities() || !v.Grid.Valid(tiling.TileID(tile)) || idx < 0 || idx >= v.NumChunks() {
		http.Error(w, "dash: chunk out of range", http.StatusNotFound)
		return
	}
	if win, live := s.Catalog.liveWindow(v.ID); live && (idx < win[0] || idx > win[1]) {
		http.Error(w, "dash: chunk outside live window", http.StatusNotFound)
		return
	}
	isLayer := r.URL.Query().Get("layer") == "1"
	if isLayer && v.Encoding != media.EncodingSVC {
		http.Error(w, "dash: video is not SVC encoded", http.StatusBadRequest)
		return
	}
	start := v.ChunkStart(idx)
	var size int64
	if isLayer {
		size = v.LayerBytes(q, tiling.TileID(tile), start)
	} else {
		size = v.ChunkBytes(q, tiling.TileID(tile), start)
	}
	if size <= 0 {
		http.Error(w, "dash: empty chunk", http.StatusNotFound)
		return
	}
	var body []byte
	var err error
	if s.Store != nil {
		body, err = s.Store.Chunk(r.Context(), v.ID, q, tile, idx, isLayer)
	} else {
		// Build into pooled scratch: the body is written to the response
		// below and the buffer recycled on return, so the store-less path
		// stops allocating once the pool is warm.
		scratch := s.scratch.Get()
		defer s.scratch.Put(scratch)
		body, err = AppendChunkBody((*scratch)[:0], v, q, tile, idx, isLayer)
		*scratch = body
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away while we waited on the store; there is
			// nobody left to answer.
			s.Log.Debug("dash: chunk request canceled", "video", v.ID, "err", err)
			return
		}
		var oe *OverloadError
		switch {
		case errors.As(err, &oe):
			// The source shed us under load: 503 with the Retry-After hint
			// so a resilient client backs off instead of hammering.
			if secs := retryAfterSeconds(oe.RetryAfter); secs > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, ErrUnavailable):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		s.Log.Debug("dash: segment write aborted", "video", v.ID, "err", err)
	}
}

// retryAfterSeconds renders a Retry-After hint in whole seconds,
// rounded up so the client never comes back early (0 means no header).
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

// BuildChunkBody synthesizes the wire body of one chunk — the segment
// container holding a deterministic payload sized by the video's rate
// model. This is the single synthesis routine both the per-request path
// and the sharded store (internal/serve) share, so cached and fresh
// bodies are byte-identical. It is a thin wrapper over AppendChunkBody
// with a fresh exactly-sized destination.
func BuildChunkBody(v *media.Video, q, tile, idx int, layer bool) ([]byte, error) {
	return AppendChunkBody(nil, v, q, tile, idx, layer)
}

// AppendChunkBody appends the wire body of one chunk to dst and
// returns the extended slice, allocating only when dst lacks capacity —
// the appending variant of BuildChunkBody for pooled scratch buffers.
// The payload is synthesized directly into dst in a single pass. On
// error dst is returned unchanged.
func AppendChunkBody(dst []byte, v *media.Video, q, tile, idx int, layer bool) ([]byte, error) {
	start := v.ChunkStart(idx)
	var size int64
	var flags uint8
	if layer {
		if v.Encoding != media.EncodingSVC {
			return dst, fmt.Errorf("dash: video %q is not SVC encoded", v.ID)
		}
		size = v.LayerBytes(q, tiling.TileID(tile), start)
		flags |= media.FlagSVCLayer
	} else {
		size = v.ChunkBytes(q, tiling.TileID(tile), start)
	}
	if size <= 0 {
		return dst, fmt.Errorf("dash: empty chunk %s/%d/%d/%d", v.ID, q, tile, idx)
	}
	h := media.SegmentHeader{
		VideoID:  v.ID,
		Quality:  q,
		Flags:    flags,
		Tile:     tiling.TileID(tile),
		Start:    start,
		Duration: v.ChunkDuration,
	}
	seed := uint64(q)<<40 ^ uint64(tile)<<20 ^ uint64(idx) ^ 0x5eed
	out, err := media.AppendSyntheticSegment(dst, h, seed, int(size))
	if err != nil {
		return dst, fmt.Errorf("dash: building chunk body: %w", err)
	}
	return out, nil
}

// chunkPath renders the URL path of a chunk.
func chunkPath(videoID string, q, tile, idx int, layer bool) string {
	p := fmt.Sprintf("/v/%s/c/%d/%d/%d", videoID, q, tile, idx)
	if layer {
		p += "?layer=1"
	}
	return p
}

// mpdPath renders the URL path of a manifest.
func mpdPath(videoID string) string { return "/v/" + videoID + "/manifest.mpd" }

// ChunkIndexAt converts a media time to a chunk index for a video.
func ChunkIndexAt(v *media.Video, at time.Duration) int {
	if v.ChunkDuration <= 0 {
		return 0
	}
	return int(at / v.ChunkDuration)
}

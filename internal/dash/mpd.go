// Package dash implements the HTTP adaptive-streaming substrate Sperke
// rides on (§2, §3.4.1): a simplified MPEG-DASH [38] Media Presentation
// Description extended with the tiling attributes FoV-guided streaming
// needs, an HTTP segment server organized as Fig. 2 (quality → tile →
// chunk), and a fetch client that measures per-transfer throughput for
// rate adaptation.
//
// The download path of commercial live 360° platforms (Facebook,
// YouTube) is exactly this pull-based DASH pattern: viewers
// periodically re-fetch the MPD to learn about newly produced chunks
// and pick a quality per chunk (§3.4.1).
package dash

import (
	"encoding/xml"
	"fmt"
	"time"

	"sperke/internal/media"
	"sperke/internal/tiling"
)

// MPD is the manifest describing one (possibly live) tiled 360° video.
type MPD struct {
	XMLName xml.Name `xml:"MPD"`
	// Type is "static" for on-demand, "dynamic" for live.
	Type    string `xml:"type,attr"`
	VideoID string `xml:"videoId,attr"`
	// DurationMs is the media duration (grows over time for live).
	DurationMs int64 `xml:"mediaPresentationDurationMs,attr"`
	// ChunkMs is the chunk duration in milliseconds.
	ChunkMs int64 `xml:"chunkDurationMs,attr"`
	// Tiling geometry.
	Rows int `xml:"tileRows,attr"`
	Cols int `xml:"tileCols,attr"`
	// Projection names the texture mapping ("equirectangular",
	// "cubemap").
	Projection string `xml:"projection,attr"`
	// Encoding is "AVC" or "SVC" (§3.1.1).
	Encoding string `xml:"encoding,attr"`
	// Live window: the oldest and newest available chunk indices
	// (dynamic only).
	FirstChunk int `xml:"firstChunk,attr"`
	LastChunk  int `xml:"lastChunk,attr"`

	Representations []Representation `xml:"Representation"`
}

// Representation is one quality level of the ladder.
type Representation struct {
	ID int `xml:"id,attr"`
	// Name is the human label ("720p").
	Name   string `xml:"name,attr"`
	Width  int    `xml:"width,attr"`
	Height int    `xml:"height,attr"`
	// Bandwidth is the full-panorama rate in bits/s.
	Bandwidth int64 `xml:"bandwidth,attr"`
}

// BuildMPD renders a video's manifest. For live manifests pass
// live=true and the current chunk window.
func BuildMPD(v *media.Video, live bool, firstChunk, lastChunk int) *MPD {
	m := &MPD{
		Type:       "static",
		VideoID:    v.ID,
		DurationMs: v.Duration.Milliseconds(),
		ChunkMs:    v.ChunkDuration.Milliseconds(),
		Rows:       v.Grid.Rows,
		Cols:       v.Grid.Cols,
		Projection: v.ProjectionName,
		Encoding:   v.Encoding.String(),
	}
	if live {
		m.Type = "dynamic"
		m.FirstChunk = firstChunk
		m.LastChunk = lastChunk
	}
	for i, q := range v.Ladder {
		m.Representations = append(m.Representations, Representation{
			ID: i, Name: q.Name, Width: q.Width, Height: q.Height,
			Bandwidth: int64(q.Bitrate),
		})
	}
	return m
}

// Marshal renders the MPD as XML.
func (m *MPD) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// ParseMPD decodes a manifest and validates its basic invariants.
func ParseMPD(data []byte) (*MPD, error) {
	var m MPD
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dash: parsing MPD: %w", err)
	}
	if m.VideoID == "" {
		return nil, fmt.Errorf("dash: MPD missing videoId")
	}
	if m.ChunkMs <= 0 {
		return nil, fmt.Errorf("dash: MPD chunk duration %dms", m.ChunkMs)
	}
	if m.Rows < 1 || m.Cols < 1 {
		return nil, fmt.Errorf("dash: MPD tile grid %dx%d", m.Rows, m.Cols)
	}
	if len(m.Representations) == 0 {
		return nil, fmt.Errorf("dash: MPD has no representations")
	}
	if m.Type != "static" && m.Type != "dynamic" {
		return nil, fmt.Errorf("dash: MPD type %q", m.Type)
	}
	return &m, nil
}

// Grid returns the manifest's tile grid.
func (m *MPD) Grid() tiling.Grid { return tiling.Grid{Rows: m.Rows, Cols: m.Cols} }

// ChunkDuration returns the chunk duration.
func (m *MPD) ChunkDuration() time.Duration {
	return time.Duration(m.ChunkMs) * time.Millisecond
}

// NumChunks returns the number of chunk intervals described.
func (m *MPD) NumChunks() int {
	if m.ChunkMs <= 0 {
		return 0
	}
	n := m.DurationMs / m.ChunkMs
	if m.DurationMs%m.ChunkMs != 0 {
		n++
	}
	return int(n)
}

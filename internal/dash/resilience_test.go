package dash

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sperke/internal/faults"
	"sperke/internal/obs"
)

// faultyServer serves the demo catalog behind a fault injector and
// counts requests reaching the real handler.
func faultyServer(t *testing.T, in *faults.Injector) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	inner := http.Handler(NewServer(cat, nil))
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		inner.ServeHTTP(w, r)
	})
	h := http.Handler(counted)
	if in != nil {
		h = in.Wrap(counted)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, &served
}

// fastClient disables real sleeping so retry tests run instantly,
// recording each backoff it would have waited.
func fastClient(url string, slept *[]time.Duration) *Client {
	c := NewClient(url)
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		if slept != nil {
			*slept = append(*slept, d)
		}
		return ctx.Err()
	}
	return c
}

func TestClientRetriesThrough5xxBurst(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{ErrorProb: 1, MaxCount: 2})
	srv, _ := faultyServer(t, in)
	var slept []time.Duration
	c := fastClient(srv.URL, &slept)
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatalf("fetch through a 2-deep 503 burst failed: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (two 503s, then success)", res.Attempts)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoffs, want 2", len(slept))
	}
	if slept[1] <= slept[0]/2 {
		t.Fatalf("backoff not growing: %v", slept)
	}
}

func TestClientRefetchesTruncatedSegment(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{TruncateProb: 1, MaxCount: 1})
	srv, _ := faultyServer(t, in)
	c := fastClient(srv.URL, nil)
	res, err := c.FetchChunk(context.Background(), "demo", 1, 2, 3)
	if err != nil {
		t.Fatalf("fetch with one truncated body failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	if res.Header.Quality != 1 || res.Header.Tile != 2 {
		t.Fatalf("refetched segment decoded wrong: %+v", res.Header)
	}
	if st := in.Stats(); st.Truncations != 1 {
		t.Fatalf("injector stats %+v", st)
	}
}

func TestClientRefetchesCorruptSegment(t *testing.T) {
	// The HTTP layer succeeds but the first body does not decode: valid
	// status, garbage bytes. fetchSegment must refetch within its budget.
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	inner := NewServer(cat, nil)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Write([]byte("this is not a segment"))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := fastClient(srv.URL, nil)
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatalf("fetch with one corrupt body failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
}

func TestClient404IsFatalAndNotRetried(t *testing.T) {
	srv, served := faultyServer(t, nil)
	c := fastClient(srv.URL, nil)
	_, err := c.FetchChunk(context.Background(), "no-such-video", 0, 0, 0)
	if err == nil {
		t.Fatal("missing video fetched")
	}
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("untyped error: %v", err)
	}
	if de.Kind != KindFatal || de.Status != http.StatusNotFound {
		t.Fatalf("error %+v, want fatal 404", de)
	}
	if Retryable(err) {
		t.Fatal("404 classified retryable")
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries on 4xx)", got)
	}
}

func TestClientExhaustsRetriesOnPersistent5xx(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{ErrorProb: 1})
	srv, served := faultyServer(t, in)
	c := fastClient(srv.URL, nil)
	c.Retry.MaxAttempts = 3
	_, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("error %v", err)
	}
	if de.Kind != KindTransient || de.Attempts != 3 {
		t.Fatalf("error %+v, want transient after 3 attempts", de)
	}
	if got := served.Load(); got != 0 {
		t.Fatalf("injected 503s should short-circuit the handler, saw %d", got)
	}
}

func TestClientCancellationStopsRetries(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{ErrorProb: 1})
	srv, _ := faultyServer(t, in)
	c := NewClient(srv.URL)
	c.Retry.BaseDelay = time.Hour // any real backoff would hang the test
	ctx, cancel := context.WithCancel(context.Background())
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := c.FetchChunk(ctx, "demo", 0, 0, 0)
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("error %v", err)
	}
	if de.Kind != KindCanceled {
		t.Fatalf("kind %v, want canceled when ctx dies mid-backoff", de.Kind)
	}
	if de.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", de.Attempts)
	}
}

func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
		Multiplier: 2, Jitter: -1}.withDefaults()
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
	} {
		if got := p.backoff(i + 1); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	jittered := RetryPolicy{BaseDelay: time.Second, Jitter: 0.2}.withDefaults()
	for i := 0; i < 32; i++ {
		d := jittered.backoff(1)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±20%% of 1s", d)
		}
	}
}

func TestClientElapsedFlooredAtMillisecond(t *testing.T) {
	srv, _ := faultyServer(t, nil)
	c := NewClient(srv.URL)
	frozen := time.Unix(1700000000, 0)
	c.Now = func() time.Time { return frozen } // zero observed wall time
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != time.Millisecond {
		t.Fatalf("Elapsed = %v, want the 1ms floor", res.Elapsed)
	}
	if res.ThroughputBPS <= 0 {
		t.Fatal("throughput sample not finite")
	}
}

func TestClientDefaultHTTPClientHasTimeout(t *testing.T) {
	c := NewClient("http://example.invalid")
	if got := c.httpClient().Timeout; got != DefaultTimeout {
		t.Fatalf("default client timeout %v, want %v", got, DefaultTimeout)
	}
	override := &http.Client{Timeout: time.Second}
	c.HTTPClient = override
	if c.httpClient() != override {
		t.Fatal("explicit HTTPClient not honored")
	}
}

// TestClientRetryAfterFloorsBackoff: a 503 carrying Retry-After must
// stretch the next backoff to at least the server's hint — the server
// named its drain time; coming back earlier just re-sheds.
func TestClientRetryAfterFloorsBackoff(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	inner := NewServer(cat, nil)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	var slept []time.Duration
	c := fastClient(srv.URL, &slept)
	reg := obs.NewRegistry()
	c.Obs = reg
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatalf("fetch through one shed failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		// The default first backoff is ~200ms; the floor must win.
		t.Fatalf("backoffs = %v, want exactly [2s]", slept)
	}
	if got := reg.Counter("dash.client.retry_after_floors").Value(); got != 1 {
		t.Fatalf("retry_after_floors = %d, want 1", got)
	}
}

// TestClientOverloadExhaustionKeepsKind: a persistent shedder exhausts
// the retry budget with KindOverload, Retryable, and the hint attached,
// so callers can tell "drowning but alive" from a plain 5xx.
func TestClientOverloadExhaustionKeepsKind(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	c := fastClient(srv.URL, nil)
	reg := obs.NewRegistry()
	c.Obs = reg
	_, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	var derr *Error
	if !errors.As(err, &derr) {
		t.Fatalf("error %v is not *Error", err)
	}
	if derr.Kind != KindOverload || derr.Status != http.StatusServiceUnavailable {
		t.Fatalf("Kind=%v Status=%d, want overload/503", derr.Kind, derr.Status)
	}
	if derr.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", derr.RetryAfter)
	}
	if !derr.Retryable() {
		t.Fatal("overload errors must be retryable")
	}
	if got := reg.Counter("dash.client.errors.overload").Value(); got != 1 {
		t.Fatalf("errors.overload = %d, want 1", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	// RFC 9110 §10.2.3 allows both delay-seconds and an HTTP-date; the
	// date form converts against the caller-supplied clock so the test
	// (and sim-clocked clients) stay deterministic.
	now := time.Date(2015, 10, 21, 7, 28, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"2", 2 * time.Second},
		{" 3 ", 3 * time.Second},
		{"0", 0},
		{"", 0},
		{"-1", 0},
		{"garbage", 0},
		{"Wed, 21 Oct 2015 07:28:30 GMT", 30 * time.Second}, // HTTP-date, 30s out
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},                // HTTP-date, exactly now
		{"Wed, 21 Oct 2015 07:20:00 GMT", 0},                // HTTP-date in the past
		{"Wed, 41 Oct 2015 07:28:00 GMT", 0},                // malformed date
	} {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRetryAfterHTTPDateUpgradesToOverload pins the wire behavior of
// the date form end to end: a 503 whose Retry-After is an HTTP-date
// must classify as overload with the deadline converted against the
// client's clock seam, exactly like the integer form.
func TestRetryAfterHTTPDateUpgradesToOverload(t *testing.T) {
	now := time.Date(2015, 10, 21, 7, 28, 0, 0, time.UTC)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", now.Add(42*time.Second).UTC().Format(http.TimeFormat))
		http.Error(w, "shedding", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, WithRetry(RetryPolicy{MaxAttempts: -1}))
	c.Now = func() time.Time { return now }
	_, err := c.FetchChunk(context.Background(), "v", 0, 0, 0)
	var derr *Error
	if !errors.As(err, &derr) {
		t.Fatalf("expected *dash.Error, got %v", err)
	}
	if derr.Kind != KindOverload {
		t.Fatalf("Kind = %v, want overload (HTTP-date Retry-After dropped?)", derr.Kind)
	}
	if derr.RetryAfter != 42*time.Second {
		t.Fatalf("RetryAfter = %v, want 42s", derr.RetryAfter)
	}
}

// overloadedSource sheds every chunk request with the given hint.
type overloadedSource struct{ retryAfter time.Duration }

func (o overloadedSource) Chunk(ctx context.Context, videoID string, q, tile, idx int, layer bool) ([]byte, error) {
	return nil, &OverloadError{RetryAfter: o.retryAfter}
}

// downSource fails every chunk request as unavailable (a crashed
// cluster node seen through its HTTP face).
type downSource struct{}

func (downSource) Chunk(ctx context.Context, videoID string, q, tile, idx int, layer bool) ([]byte, error) {
	return nil, fmt.Errorf("node down: %w", ErrUnavailable)
}

func TestServerMapsOverloadTo503WithRetryAfter(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(cat, WithStore(overloadedSource{retryAfter: 1500 * time.Millisecond})))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + chunkPath("demo", 0, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		// 1.5s rounds up: the client must never come back early.
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
}

func TestServerMapsUnavailableTo503(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(cat, WithStore(downSource{})))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + chunkPath("demo", 0, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Fatalf("down (not overloaded) response carries Retry-After %q", got)
	}
}

package dash

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sperke/internal/faults"
)

// faultyServer serves the demo catalog behind a fault injector and
// counts requests reaching the real handler.
func faultyServer(t *testing.T, in *faults.Injector) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	inner := http.Handler(NewServer(cat, nil))
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		inner.ServeHTTP(w, r)
	})
	h := http.Handler(counted)
	if in != nil {
		h = in.Wrap(counted)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, &served
}

// fastClient disables real sleeping so retry tests run instantly,
// recording each backoff it would have waited.
func fastClient(url string, slept *[]time.Duration) *Client {
	c := NewClient(url)
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		if slept != nil {
			*slept = append(*slept, d)
		}
		return ctx.Err()
	}
	return c
}

func TestClientRetriesThrough5xxBurst(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{ErrorProb: 1, MaxCount: 2})
	srv, _ := faultyServer(t, in)
	var slept []time.Duration
	c := fastClient(srv.URL, &slept)
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatalf("fetch through a 2-deep 503 burst failed: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (two 503s, then success)", res.Attempts)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoffs, want 2", len(slept))
	}
	if slept[1] <= slept[0]/2 {
		t.Fatalf("backoff not growing: %v", slept)
	}
}

func TestClientRefetchesTruncatedSegment(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{TruncateProb: 1, MaxCount: 1})
	srv, _ := faultyServer(t, in)
	c := fastClient(srv.URL, nil)
	res, err := c.FetchChunk(context.Background(), "demo", 1, 2, 3)
	if err != nil {
		t.Fatalf("fetch with one truncated body failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	if res.Header.Quality != 1 || res.Header.Tile != 2 {
		t.Fatalf("refetched segment decoded wrong: %+v", res.Header)
	}
	if st := in.Stats(); st.Truncations != 1 {
		t.Fatalf("injector stats %+v", st)
	}
}

func TestClientRefetchesCorruptSegment(t *testing.T) {
	// The HTTP layer succeeds but the first body does not decode: valid
	// status, garbage bytes. fetchSegment must refetch within its budget.
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	inner := NewServer(cat, nil)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Write([]byte("this is not a segment"))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := fastClient(srv.URL, nil)
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatalf("fetch with one corrupt body failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
}

func TestClient404IsFatalAndNotRetried(t *testing.T) {
	srv, served := faultyServer(t, nil)
	c := fastClient(srv.URL, nil)
	_, err := c.FetchChunk(context.Background(), "no-such-video", 0, 0, 0)
	if err == nil {
		t.Fatal("missing video fetched")
	}
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("untyped error: %v", err)
	}
	if de.Kind != KindFatal || de.Status != http.StatusNotFound {
		t.Fatalf("error %+v, want fatal 404", de)
	}
	if Retryable(err) {
		t.Fatal("404 classified retryable")
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries on 4xx)", got)
	}
}

func TestClientExhaustsRetriesOnPersistent5xx(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{ErrorProb: 1})
	srv, served := faultyServer(t, in)
	c := fastClient(srv.URL, nil)
	c.Retry.MaxAttempts = 3
	_, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("error %v", err)
	}
	if de.Kind != KindTransient || de.Attempts != 3 {
		t.Fatalf("error %+v, want transient after 3 attempts", de)
	}
	if got := served.Load(); got != 0 {
		t.Fatalf("injected 503s should short-circuit the handler, saw %d", got)
	}
}

func TestClientCancellationStopsRetries(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{ErrorProb: 1})
	srv, _ := faultyServer(t, in)
	c := NewClient(srv.URL)
	c.Retry.BaseDelay = time.Hour // any real backoff would hang the test
	ctx, cancel := context.WithCancel(context.Background())
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := c.FetchChunk(ctx, "demo", 0, 0, 0)
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("error %v", err)
	}
	if de.Kind != KindCanceled {
		t.Fatalf("kind %v, want canceled when ctx dies mid-backoff", de.Kind)
	}
	if de.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", de.Attempts)
	}
}

func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
		Multiplier: 2, Jitter: -1}.withDefaults()
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
	} {
		if got := p.backoff(i + 1); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	jittered := RetryPolicy{BaseDelay: time.Second, Jitter: 0.2}.withDefaults()
	for i := 0; i < 32; i++ {
		d := jittered.backoff(1)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±20%% of 1s", d)
		}
	}
}

func TestClientElapsedFlooredAtMillisecond(t *testing.T) {
	srv, _ := faultyServer(t, nil)
	c := NewClient(srv.URL)
	frozen := time.Unix(1700000000, 0)
	c.Now = func() time.Time { return frozen } // zero observed wall time
	res, err := c.FetchChunk(context.Background(), "demo", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != time.Millisecond {
		t.Fatalf("Elapsed = %v, want the 1ms floor", res.Elapsed)
	}
	if res.ThroughputBPS <= 0 {
		t.Fatal("throughput sample not finite")
	}
}

func TestClientDefaultHTTPClientHasTimeout(t *testing.T) {
	c := NewClient("http://example.invalid")
	if got := c.httpClient().Timeout; got != DefaultTimeout {
		t.Fatalf("default client timeout %v, want %v", got, DefaultTimeout)
	}
	override := &http.Client{Timeout: time.Second}
	c.HTTPClient = override
	if c.httpClient() != override {
		t.Fatal("explicit HTTPClient not honored")
	}
}

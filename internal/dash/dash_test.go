package dash

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sperke/internal/media"
	"sperke/internal/tiling"
)

func testVideo() *media.Video {
	return &media.Video{
		ID:             "demo",
		Duration:       20 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingSVC,
	}
}

func testServer(t *testing.T) (*httptest.Server, *Catalog) {
	t.Helper()
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(cat, nil))
	t.Cleanup(srv.Close)
	return srv, cat
}

func TestMPDRoundTrip(t *testing.T) {
	v := testVideo()
	m := BuildMPD(v, false, 0, 0)
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<?xml") {
		t.Fatal("missing XML header")
	}
	got, err := ParseMPD(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.VideoID != "demo" || got.Type != "static" {
		t.Fatalf("parsed %+v", got)
	}
	if got.NumChunks() != 10 {
		t.Fatalf("NumChunks = %d, want 10", got.NumChunks())
	}
	if got.Grid() != v.Grid {
		t.Fatalf("grid = %v", got.Grid())
	}
	if got.ChunkDuration() != 2*time.Second {
		t.Fatalf("chunk duration = %v", got.ChunkDuration())
	}
	if len(got.Representations) != len(v.Ladder) {
		t.Fatalf("representations = %d", len(got.Representations))
	}
}

func TestParseMPDRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not xml":    "hello",
		"no videoId": `<MPD type="static" chunkDurationMs="2000" tileRows="2" tileCols="4"><Representation id="0"/></MPD>`,
		"no chunks":  `<MPD type="static" videoId="x" tileRows="2" tileCols="4"><Representation id="0"/></MPD>`,
		"no grid":    `<MPD type="static" videoId="x" chunkDurationMs="2000"><Representation id="0"/></MPD>`,
		"no reps":    `<MPD type="static" videoId="x" chunkDurationMs="2000" tileRows="2" tileCols="4"></MPD>`,
		"bad type":   `<MPD type="weird" videoId="x" chunkDurationMs="2000" tileRows="2" tileCols="4"><Representation id="0"/></MPD>`,
	}
	for name, data := range cases {
		if _, err := ParseMPD([]byte(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCatalogDuplicateAndInvalid(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(testVideo()); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := cat.Add(&media.Video{}); err == nil {
		t.Fatal("invalid video accepted")
	}
	if _, ok := cat.Get("nope"); ok {
		t.Fatal("phantom video")
	}
}

func TestServerServesMPD(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	m, err := c.FetchMPD(context.Background(), "demo")
	if err != nil {
		t.Fatal(err)
	}
	if m.VideoID != "demo" || m.Encoding != "SVC" {
		t.Fatalf("MPD = %+v", m)
	}
	if _, err := c.FetchMPD(context.Background(), "missing"); err == nil {
		t.Fatal("missing video served")
	}
}

func TestServerServesChunk(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	v := testVideo()
	res, err := c.FetchChunk(context.Background(), "demo", 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Quality != 2 || res.Header.Tile != 5 {
		t.Fatalf("header %+v", res.Header)
	}
	if res.Header.Start != 6*time.Second {
		t.Fatalf("start = %v", res.Header.Start)
	}
	want := v.ChunkBytes(2, 5, 6*time.Second)
	if int64(len(res.Payload)) != want {
		t.Fatalf("payload %d bytes, want %d (rate model)", len(res.Payload), want)
	}
	if res.ThroughputBPS <= 0 {
		t.Fatal("no throughput sample")
	}
	if res.WireBytes <= int64(len(res.Payload)) {
		t.Fatal("wire bytes missing header")
	}
}

func TestServerChunkDeterministic(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	a, err := c.FetchChunk(context.Background(), "demo", 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.FetchChunk(context.Background(), "demo", 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Payload) != string(b.Payload) {
		t.Fatal("same chunk differs across fetches")
	}
}

func TestServerServesSVCLayer(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	v := testVideo()
	res, err := c.FetchLayer(context.Background(), "demo", 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Flags&media.FlagSVCLayer == 0 {
		t.Fatal("layer flag missing")
	}
	want := v.LayerBytes(3, 1, 0)
	if int64(len(res.Payload)) != want {
		t.Fatalf("layer %d bytes, want %d", len(res.Payload), want)
	}
	// A layer is smaller than the corresponding full chunk.
	full, err := c.FetchChunk(context.Background(), "demo", 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payload) >= len(full.Payload) {
		t.Fatal("SVC layer not smaller than full chunk")
	}
}

func TestServerRejectsOutOfRange(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.FetchChunk(ctx, "demo", 99, 0, 0); err == nil {
		t.Fatal("quality 99 served")
	}
	if _, err := c.FetchChunk(ctx, "demo", 0, 99, 0); err == nil {
		t.Fatal("tile 99 served")
	}
	if _, err := c.FetchChunk(ctx, "demo", 0, 0, 99); err == nil {
		t.Fatal("index 99 served")
	}
	if _, err := c.FetchChunk(ctx, "demo", -1, 0, 0); err == nil {
		t.Fatal("negative quality served")
	}
}

func TestServerLayerOnAVCVideoRejected(t *testing.T) {
	cat := NewCatalog()
	v := testVideo()
	v.ID = "avc-video"
	v.Encoding = media.EncodingAVC
	if err := cat.Add(v); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(cat, nil))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.FetchLayer(context.Background(), "avc-video", 1, 0, 0); err == nil {
		t.Fatal("SVC layer served from AVC video")
	}
}

func TestLiveWindowEnforced(t *testing.T) {
	srv, cat := testServer(t)
	cat.SetLiveWindow("demo", 3, 5)
	c := NewClient(srv.URL)
	ctx := context.Background()
	m, err := c.FetchMPD(ctx, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "dynamic" || m.FirstChunk != 3 || m.LastChunk != 5 {
		t.Fatalf("live MPD %+v", m)
	}
	if _, err := c.FetchChunk(ctx, "demo", 0, 0, 4); err != nil {
		t.Fatalf("in-window chunk rejected: %v", err)
	}
	if _, err := c.FetchChunk(ctx, "demo", 0, 0, 1); err == nil {
		t.Fatal("expired chunk served")
	}
	if _, err := c.FetchChunk(ctx, "demo", 0, 0, 7); err == nil {
		t.Fatal("future chunk served")
	}
}

func TestChunkIndexAt(t *testing.T) {
	v := testVideo()
	if ChunkIndexAt(v, 5*time.Second) != 2 {
		t.Fatal("bad chunk index")
	}
	if ChunkIndexAt(&media.Video{}, time.Second) != 0 {
		t.Fatal("zero chunk duration not handled")
	}
}

func TestServerListsCatalog(t *testing.T) {
	srv, cat := testServer(t)
	v2 := testVideo()
	v2.ID = "another"
	if err := cat.Add(v2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	got := strings.Fields(string(body))
	want := []string{"another", "demo"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("catalog list = %v, want %v", got, want)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	// Many viewers fetch MPDs and chunks in parallel while the live
	// window advances — the catalog's locking must hold up (run under
	// -race).
	srv, cat := testServer(t)
	c := NewClient(srv.URL)
	done := make(chan error, 16)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				if _, err := c.FetchMPD(context.Background(), "demo"); err != nil {
					done <- err
					return
				}
				if _, err := c.FetchChunk(context.Background(), "demo", g%3, i%8, i%10); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	go func() {
		for i := 0; i < 50; i++ {
			cat.SetLiveWindow("demo", 0, i%10)
		}
		cat.SetLiveWindow("demo", 0, 9)
		done <- nil
	}()
	for i := 0; i < 9; i++ {
		if err := <-done; err != nil {
			// Live-window races can legitimately 404 a chunk mid-update;
			// only transport-level failures are bugs.
			if !strings.Contains(err.Error(), "live window") {
				t.Fatal(err)
			}
		}
	}
}

func TestClientContextCancellation(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.FetchChunk(ctx, "demo", 0, 0, 0); err == nil {
		t.Fatal("cancelled context fetched a chunk")
	}
	if _, err := c.FetchMPD(ctx, "demo"); err == nil {
		t.Fatal("cancelled context fetched an MPD")
	}
}

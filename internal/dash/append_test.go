package dash

import (
	"bytes"
	"testing"

	"sperke/internal/obs"
)

// TestAppendChunkBodyMatchesBuild: the append variant is the build
// variant — byte-identical output for base chunks and SVC layers, and
// a dst prefix passes through untouched.
func TestAppendChunkBodyMatchesBuild(t *testing.T) {
	v := testVideo()
	for _, layer := range []bool{false, true} {
		want, err := BuildChunkBody(v, 2, 5, 3, layer)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendChunkBody(nil, v, 2, 5, 3, layer)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("layer=%v: append output differs from build", layer)
		}

		prefix := []byte("prefix")
		dst := append([]byte(nil), prefix...)
		dst, err = AppendChunkBody(dst, v, 2, 5, 3, layer)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst[:len(prefix)], prefix) || !bytes.Equal(dst[len(prefix):], want) {
			t.Fatalf("layer=%v: prefix not preserved or body differs", layer)
		}
	}

	// Error path: invalid tile leaves dst unchanged.
	dst := []byte("keep")
	got, err := AppendChunkBody(dst, v, 2, v.Grid.Tiles(), 3, false)
	if err == nil {
		t.Fatal("out-of-range tile accepted")
	}
	if !bytes.Equal(got, []byte("keep")) {
		t.Fatal("dst modified on error")
	}
}

// TestAppendChunkBodyReuseZeroAlloc pins the buffer-reuse win the pool
// depends on: once dst has capacity, rebuilding a chunk body into it
// allocates nothing per op. A GC landing mid-measurement can empty the
// writer/block pools and force a one-off refill, so the assertion is
// "average under one" — a real per-op allocation would read >= 1.
func TestAppendChunkBodyReuseZeroAlloc(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random; the allocs/op pin holds only without -race")
	}
	v := testVideo()
	dst, err := AppendChunkBody(nil, v, 2, 5, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		dst, err = AppendChunkBody(dst[:0], v, 2, 5, 3, false)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Fatalf("AppendChunkBody reuse: %v allocs/op, want 0 per op", allocs)
	}
}

package dash

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"sperke/internal/media"
	"sperke/internal/obs"
)

// buildSource is an in-test ChunkSource backed by BuildChunkBody — the
// contract every real store implements (the sharded store's own
// equivalence is pinned in internal/serve, which can import dash).
type buildSource struct{ cat *Catalog }

func (b buildSource) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	v, ok := b.cat.Get(videoID)
	if !ok {
		return nil, ErrUnavailable
	}
	return BuildChunkBody(v, quality, tile, index, layer)
}

// TestWriteChunkBodyMatchesBuilders: the streaming form is the
// builders' single source of truth — byte-identical output and an
// exact length report, for base chunks and SVC layers.
func TestWriteChunkBodyMatchesBuilders(t *testing.T) {
	v := testVideo()
	for _, layer := range []bool{false, true} {
		want, err := BuildChunkBody(v, 2, 5, 3, layer)
		if err != nil {
			t.Fatal(err)
		}
		var streamed bytes.Buffer
		if err := WriteChunkBody(&streamed, v, 2, 5, 3, layer); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed.Bytes(), want) {
			t.Fatalf("layer=%v: streamed body differs from BuildChunkBody", layer)
		}
		n, err := ChunkBodyLen(v, 2, 5, 3, layer)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("layer=%v: ChunkBodyLen = %d, body is %d bytes", layer, n, len(want))
		}
	}

	// Error contract: invalid addresses fail the same way everywhere.
	if err := WriteChunkBody(io.Discard, v, 2, v.Grid.Tiles(), 3, false); err == nil {
		t.Fatal("out-of-range tile accepted by WriteChunkBody")
	}
	if _, err := ChunkBodyLen(v, 2, v.Grid.Tiles(), 3, false); err == nil {
		t.Fatal("out-of-range tile accepted by ChunkBodyLen")
	}
}

// TestLayerSeedDistinctFromChunk is the layer seed-collision
// regression test: before the fix the SVC-layer seed at (q,tile,idx)
// equaled the full chunk's, so the layer payload was a byte-prefix of
// the chunk payload at the same address — indistinguishable bodies for
// CRC dedup and cache comparisons. The layer flag now reaches the
// seed.
func TestLayerSeedDistinctFromChunk(t *testing.T) {
	v := testVideo()
	full, err := BuildChunkBody(v, 2, 5, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	layer, err := BuildChunkBody(v, 2, 5, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	_, fullPayload, err := media.ReadSegment(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	_, layerPayload, err := media.ReadSegment(bytes.NewReader(layer))
	if err != nil {
		t.Fatal(err)
	}
	if len(layerPayload) >= len(fullPayload) {
		t.Fatalf("layer payload (%d) not smaller than chunk payload (%d)", len(layerPayload), len(fullPayload))
	}
	if bytes.Equal(layerPayload, fullPayload[:len(layerPayload)]) {
		t.Fatal("SVC layer payload is a byte-prefix of the full chunk at the same address")
	}
}

// TestServerStreamedResponseMatchesStore: the store-less streaming
// path, the store-backed path and the builders all serve the same
// bytes, with Content-Length set up front.
func TestServerStreamedResponseMatchesStore(t *testing.T) {
	cat := NewCatalog()
	v := testVideo()
	if err := cat.Add(v); err != nil {
		t.Fatal(err)
	}
	want, err := BuildChunkBody(v, 2, 5, 3, false)
	if err != nil {
		t.Fatal(err)
	}

	fetch := func(h http.Handler, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	storeless := NewServer(cat)
	rec := fetch(storeless, "/v/demo/c/2/5/3")
	if rec.Code != http.StatusOK {
		t.Fatalf("store-less status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Length"); got != "" {
		n, _ := ChunkBodyLen(v, 2, 5, 3, false)
		if got != itoa(n) {
			t.Fatalf("Content-Length = %s, want %d", got, n)
		}
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("store-less streamed body differs from BuildChunkBody")
	}

	stored := NewServer(cat, WithStore(buildSource{cat: cat}))
	rec2 := fetch(stored, "/v/demo/c/2/5/3")
	if !bytes.Equal(rec2.Body.Bytes(), want) {
		t.Fatal("store-backed body differs from BuildChunkBody")
	}

	// SVC layer through both paths too.
	wantLayer, err := BuildChunkBody(v, 2, 5, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetch(storeless, "/v/demo/c/2/5/3?layer=1").Body.Bytes(); !bytes.Equal(got, wantLayer) {
		t.Fatal("store-less layer body differs from BuildChunkBody")
	}
	if got := fetch(stored, "/v/demo/c/2/5/3?layer=1").Body.Bytes(); !bytes.Equal(got, wantLayer) {
		t.Fatal("store-backed layer body differs from BuildChunkBody")
	}
}

func itoa(n int) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}

// cancelSource is a ChunkSource standing in for a store whose caller
// went away: it reports the context's own error.
type cancelSource struct{}

func (cancelSource) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCanceledChunkRequestCountsAsCanceled is the canceled-metrics
// regression test: a chunk request abandoned by its client used to be
// recorded as a 200 (the countingWriter's default status), silently
// inflating the success rate. It must count under dash.server.canceled
// and not under errors.
func TestCanceledChunkRequestCountsAsCanceled(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(testVideo()); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := NewServer(cat, WithObs(reg), WithStore(cancelSource{}))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v/demo/c/2/5/3", nil).WithContext(ctx)
	s.ServeHTTP(httptest.NewRecorder(), req)

	if got := reg.Counter("dash.server.canceled").Value(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
	if got := reg.Counter("dash.server.errors").Value(); got != 0 {
		t.Fatalf("errors = %d, want 0 for a client-side abort", got)
	}
	if got := reg.Counter("dash.server.requests").Value(); got != 1 {
		t.Fatalf("requests = %d, want 1", got)
	}
}

// flushRecorder counts Flush calls behind the countingWriter wrapper.
type flushRecorder struct {
	httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestCountingWriterPassesThroughFlusher: the metrics wrapper must not
// hide http.Flusher from the streaming path — a mid-body Flush has to
// reach the real connection.
func TestCountingWriterPassesThroughFlusher(t *testing.T) {
	inner := &flushRecorder{ResponseRecorder: *httptest.NewRecorder()}
	cw := &countingWriter{ResponseWriter: inner, status: http.StatusOK}
	var w http.ResponseWriter = cw
	fl, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("countingWriter does not implement http.Flusher")
	}
	fl.Flush()
	fl.Flush()
	if inner.flushes != 2 {
		t.Fatalf("flushes forwarded = %d, want 2", inner.flushes)
	}

	// Wrapping a non-flusher must not panic.
	cw2 := &countingWriter{ResponseWriter: nonFlusher{httptest.NewRecorder()}}
	cw2.Flush()
}

// nonFlusher hides the recorder's Flush method.
type nonFlusher struct{ http.ResponseWriter }

// discardWriter is a body sink with preallocated headers, so the
// allocation test below measures the handler, not the test harness.
type discardWriter struct {
	h http.Header
	n int64
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) WriteHeader(int)             {}
func (d *discardWriter) Write(p []byte) (int, error) { d.n += int64(len(p)); return len(p), nil }

// TestStorelessChunkAllocBudget pins the zero-materialization
// acceptance bar: a store-less cold chunk response must never allocate
// a body-sized buffer — per-request allocation stays bounded by mux
// routing overhead, far under the ~109KB body.
func TestStorelessChunkAllocBudget(t *testing.T) {
	cat := NewCatalog()
	v := testVideo()
	if err := cat.Add(v); err != nil {
		t.Fatal(err)
	}
	s := NewServer(cat)
	req := httptest.NewRequest("GET", "/v/demo/c/2/5/3", nil)
	w := &discardWriter{h: make(http.Header, 4)}
	bodyLen, err := ChunkBodyLen(v, 2, 5, 3, false)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the block pool and the mux.
	s.ServeHTTP(w, req)

	const iters = 64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		s.ServeHTTP(w, req)
	}
	runtime.ReadMemStats(&after)
	perOp := int64(after.TotalAlloc-before.TotalAlloc) / iters
	if perOp >= int64(bodyLen)/4 {
		t.Fatalf("store-less request allocates %d B/op — body-sized (body is %d B); streaming path must stay block-bounded", perOp, bodyLen)
	}
	if w.n == 0 {
		t.Fatal("no bytes served")
	}
}

package dash

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// handlerTransport dispatches requests straight into an http.Handler —
// the WithTransport seam exercised without sockets.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// flakyTransport fails the first n attempts with a transport error.
type flakyTransport struct {
	next  http.RoundTripper
	fails int
}

func (t *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.fails > 0 {
		t.fails--
		return nil, errors.New("synthetic connection refused")
	}
	return t.next.RoundTrip(req)
}

func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// TestOpenChunkStreamsThroughTransportSeam pins the two new client
// seams together: a client built over an injected RoundTripper (no
// sockets, no global state) opens a chunk and receives the exact bytes
// and Content-Length the server's writer-first path produced, as a
// stream rather than a materialized slice.
func TestOpenChunkStreamsThroughTransportSeam(t *testing.T) {
	v := testVideo()
	catalog := NewCatalog()
	if err := catalog.Add(v); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(catalog)
	c := NewClient("http://edge.test", WithTransport(handlerTransport{h: srv}))

	st, err := c.OpenChunk(context.Background(), v.ID, 1, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	want, err := BuildChunkBody(v, 1, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Length != int64(len(want)) {
		t.Fatalf("ChunkStream.Length = %d, want %d", st.Length, len(want))
	}
	got, err := io.ReadAll(st.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed body differs from BuildChunkBody (%d vs %d bytes)", len(got), len(want))
	}
	if st.Attempts != 1 {
		t.Fatalf("clean open took %d attempts", st.Attempts)
	}
}

// TestOpenChunkRetriesToHeaders pins the retry contract: transport
// failures before the response headers are retried under the bounded
// policy, and the eventual stream reports the attempt count.
func TestOpenChunkRetriesToHeaders(t *testing.T) {
	v := testVideo()
	catalog := NewCatalog()
	if err := catalog.Add(v); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(catalog)
	c := NewClient("http://edge.test",
		WithTransport(&flakyTransport{next: handlerTransport{h: srv}, fails: 2}),
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond}))
	c.Sleep = instantSleep

	st, err := c.OpenChunk(context.Background(), v.ID, 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if st.Attempts != 3 {
		t.Fatalf("open took %d attempts, want 3 (two transport failures, then headers)", st.Attempts)
	}

	// A single-attempt policy surfaces the first failure typed.
	c2 := NewClient("http://edge.test",
		WithTransport(&flakyTransport{next: handlerTransport{h: srv}, fails: 1}),
		WithRetry(RetryPolicy{MaxAttempts: -1}))
	c2.Sleep = instantSleep
	if _, err := c2.OpenChunk(context.Background(), v.ID, 0, 0, 0, false); err == nil {
		t.Fatal("single-attempt open over a failing transport succeeded")
	} else {
		var de *Error
		if !errors.As(err, &de) || de.Kind != KindTransient {
			t.Fatalf("transport failure classified as %v, want KindTransient *Error", err)
		}
	}
}

// TestClientPing pins the probe primitive: one attempt, nil on a live
// server, a typed error through a dead transport, and a typed status
// error on a non-200.
func TestClientPing(t *testing.T) {
	v := testVideo()
	catalog := NewCatalog()
	if err := catalog.Add(v); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(catalog)
	live := NewClient("http://edge.test", WithTransport(handlerTransport{h: srv}))
	if err := live.Ping(context.Background()); err != nil {
		t.Fatalf("ping against a live server: %v", err)
	}

	dead := NewClient("http://edge.test", WithTransport(&flakyTransport{fails: 1 << 30}))
	if err := dead.Ping(context.Background()); err == nil {
		t.Fatal("ping through a dead transport returned nil")
	}

	overloaded := NewClient("http://edge.test", WithTransport(handlerTransport{
		h: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "drowning", http.StatusServiceUnavailable)
		}),
	}))
	err := overloaded.Ping(context.Background())
	var de *Error
	if !errors.As(err, &de) || de.Kind != KindOverload {
		t.Fatalf("shed ping classified as %v, want KindOverload", err)
	}
}

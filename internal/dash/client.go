package dash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"sperke/internal/media"
)

// FetchResult is one completed segment download with the measurement
// rate adaptation consumes.
type FetchResult struct {
	Header  media.SegmentHeader
	Payload []byte
	// WireBytes is the segment size on the wire (header + payload).
	WireBytes int64
	// Elapsed is the request wall time; ThroughputBPS the observed
	// goodput in bits/s.
	Elapsed       time.Duration
	ThroughputBPS float64
}

// Client fetches manifests and segments from a Sperke DASH server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Now returns wall time; replaceable for tests. Defaults to
	// time.Now.
	Now func() time.Time
}

// NewClient builds a client for a server root URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("dash: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return io.ReadAll(resp.Body)
}

// FetchMPD downloads and parses a video's manifest.
func (c *Client) FetchMPD(ctx context.Context, videoID string) (*MPD, error) {
	data, err := c.get(ctx, mpdPath(videoID))
	if err != nil {
		return nil, err
	}
	return ParseMPD(data)
}

// FetchChunk downloads one AVC chunk C(q, tile, index).
func (c *Client) FetchChunk(ctx context.Context, videoID string, q, tile, idx int) (FetchResult, error) {
	return c.fetchSegment(ctx, chunkPath(videoID, q, tile, idx, false))
}

// FetchLayer downloads one SVC layer of a chunk — the incremental
// upgrade primitive of §3.1.1.
func (c *Client) FetchLayer(ctx context.Context, videoID string, layer, tile, idx int) (FetchResult, error) {
	return c.fetchSegment(ctx, chunkPath(videoID, layer, tile, idx, true))
}

func (c *Client) fetchSegment(ctx context.Context, path string) (FetchResult, error) {
	start := c.now()
	data, err := c.get(ctx, path)
	if err != nil {
		return FetchResult{}, err
	}
	elapsed := c.now().Sub(start)
	h, payload, err := media.ReadSegment(bytes.NewReader(data))
	if err != nil {
		return FetchResult{}, fmt.Errorf("dash: decoding segment %s: %w", path, err)
	}
	res := FetchResult{
		Header:    h,
		Payload:   payload,
		WireBytes: int64(len(data)),
		Elapsed:   elapsed,
	}
	if elapsed > 0 {
		res.ThroughputBPS = float64(len(data)) * 8 / elapsed.Seconds()
	}
	return res, nil
}

package dash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sperke/internal/media"
	"sperke/internal/obs"
)

// DefaultTimeout bounds a whole HTTP exchange when the caller does not
// supply an HTTPClient — the guard http.DefaultClient lacks.
const DefaultTimeout = 15 * time.Second

// defaultHTTPClient is shared by all clients without an explicit
// HTTPClient so connection pooling still works across sessions.
var defaultHTTPClient = &http.Client{Timeout: DefaultTimeout}

// RetryPolicy controls the client's bounded-retry loop: exponential
// backoff with jitter between attempts, a per-attempt timeout, and a
// cap on attempts. The zero value means defaults everywhere.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// 0 defaults to 4, negative disables retries (one attempt).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; 0 defaults to
	// 200ms. Each further attempt multiplies it by Multiplier (default
	// 2) up to MaxDelay (default 5s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each backoff uniformly over ±Jitter fraction of its
	// value; 0 defaults to 0.2. Negative disables jitter.
	Jitter float64
	// AttemptTimeout bounds each individual attempt; 0 defaults to 10s.
	// The caller's context deadline still applies on top.
	AttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 10 * time.Second
	}
	return p
}

// backoff returns the delay before attempt n+1 (n counts from 1).
// Jitter draws from the process-global stream, which is safe for
// concurrent clients; determinism matters for fault replay, not for
// pause lengths.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// FetchResult is one completed segment download with the measurement
// rate adaptation consumes.
type FetchResult struct {
	Header  media.SegmentHeader
	Payload []byte
	// WireBytes is the segment size on the wire (header + payload).
	WireBytes int64
	// Elapsed is the request wall time (floored at 1ms so mocked clocks
	// cannot yield a zero); ThroughputBPS the observed goodput in
	// bits/s. Retried attempts count toward Elapsed: a flaky fetch
	// correctly reads as a slow one.
	Elapsed       time.Duration
	ThroughputBPS float64
	// Attempts is how many tries the download took (1 = clean fetch).
	Attempts int
}

// Client fetches manifests and segments from a Sperke DASH server,
// absorbing transient faults: each request gets a per-attempt timeout
// and bounded retries with exponential backoff, and failures carry a
// typed taxonomy (*Error) so callers can degrade instead of crash.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a shared client with DefaultTimeout.
	HTTPClient *http.Client
	// Retry tunes the retry loop; the zero value uses the defaults
	// documented on RetryPolicy.
	Retry RetryPolicy
	// Now returns wall time; replaceable for tests. Defaults to
	// time.Now.
	Now func() time.Time
	// Sleep pauses between attempts; replaceable for tests. Defaults to
	// a context-aware sleep that returns early when ctx expires.
	Sleep func(ctx context.Context, d time.Duration) error
	// Obs, when set, records fetch counts, attempts, retry/backoff
	// outcomes, received bytes, error counts by kind, and a per-segment
	// latency histogram (dash.client.*). Nil disables metrics.
	Obs *obs.Registry
}

// NewClient builds a client for a server root URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// getOnce performs a single attempt with its own timeout and classifies
// any failure.
func (c *Client) getOnce(ctx context.Context, path string, timeout time.Duration) ([]byte, *Error) {
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, &Error{Op: path, Kind: KindFatal, Err: err}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, &Error{Op: path, Kind: classifyCtx(ctx, err), Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		kind := KindFatal
		var retryAfter time.Duration
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			kind = KindTransient
			// A Retry-After on a shed response upgrades the classification:
			// the server is alive but drowning, and told us when to come
			// back.
			if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
				kind, retryAfter = KindOverload, ra
			}
		}
		return nil, &Error{
			Op: path, Kind: kind, Status: resp.StatusCode, RetryAfter: retryAfter,
			Err: fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body)),
		}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// A body cut mid-segment (server fault, dropped connection) is
		// worth refetching.
		return nil, &Error{Op: path, Kind: classifyCtx(ctx, err), Err: err}
	}
	return data, nil
}

// get runs the bounded-retry loop around getOnce.
func (c *Client) get(ctx context.Context, path string) ([]byte, int, error) {
	pol := c.Retry.withDefaults()
	for attempt := 1; ; attempt++ {
		c.Obs.Counter("dash.client.attempts").Inc()
		data, derr := c.getOnce(ctx, path, pol.AttemptTimeout)
		if derr == nil {
			c.Obs.Counter("dash.client.bytes_rx").Add(int64(len(data)))
			return data, attempt, nil
		}
		derr.Attempts = attempt
		if !derr.Retryable() || attempt >= pol.MaxAttempts {
			c.Obs.Counter("dash.client.errors." + derr.Kind.String()).Inc()
			return nil, attempt, derr
		}
		c.Obs.Counter("dash.client.retries").Inc()
		delay := pol.backoff(attempt)
		if derr.Kind == KindOverload && derr.RetryAfter > delay {
			// The shedding server named its price; pay it rather than
			// hammering a node that is trying to drain.
			delay = derr.RetryAfter
			c.Obs.Counter("dash.client.retry_after_floors").Inc()
		}
		if err := c.sleep(ctx, delay); err != nil {
			derr.Kind = KindCanceled
			c.Obs.Counter("dash.client.errors." + derr.Kind.String()).Inc()
			return nil, attempt, derr
		}
	}
}

// parseRetryAfter reads the integer-seconds form of a Retry-After
// value. The HTTP-date form and garbage parse as 0 (no hint), which
// keeps the response a plain transient failure.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// FetchMPD downloads and parses a video's manifest.
func (c *Client) FetchMPD(ctx context.Context, videoID string) (*MPD, error) {
	c.Obs.Counter("dash.client.mpd_fetches").Inc()
	data, _, err := c.get(ctx, mpdPath(videoID))
	if err != nil {
		return nil, err
	}
	return ParseMPD(data)
}

// FetchChunk downloads one AVC chunk C(q, tile, index).
func (c *Client) FetchChunk(ctx context.Context, videoID string, q, tile, idx int) (FetchResult, error) {
	return c.fetchSegment(ctx, chunkPath(videoID, q, tile, idx, false))
}

// FetchLayer downloads one SVC layer of a chunk — the incremental
// upgrade primitive of §3.1.1.
func (c *Client) FetchLayer(ctx context.Context, videoID string, layer, tile, idx int) (FetchResult, error) {
	return c.fetchSegment(ctx, chunkPath(videoID, layer, tile, idx, true))
}

func (c *Client) fetchSegment(ctx context.Context, path string) (FetchResult, error) {
	pol := c.Retry.withDefaults()
	start := c.now()
	attempts := 0
	for {
		data, n, err := c.get(ctx, path)
		attempts += n
		if err != nil {
			return FetchResult{}, err
		}
		h, payload, derr := media.ReadSegment(bytes.NewReader(data))
		if derr != nil {
			// The bytes arrived but do not decode — a truncated or corrupt
			// segment. Refetch within the remaining attempt budget.
			if attempts < pol.MaxAttempts {
				if serr := c.sleep(ctx, pol.backoff(attempts)); serr == nil {
					continue
				}
			}
			return FetchResult{}, &Error{
				Op: path, Kind: KindTransient, Attempts: attempts,
				Err: fmt.Errorf("decoding segment: %w", derr),
			}
		}
		elapsed := c.now().Sub(start)
		if elapsed < time.Millisecond {
			// Mocked or coarse clocks can observe zero wall time; a zero
			// sample would poison downstream bandwidth estimates.
			elapsed = time.Millisecond
		}
		c.Obs.Counter("dash.client.segment_fetches").Inc()
		if attempts > 1 {
			c.Obs.Counter("dash.client.segment_fetches_retried").Inc()
		}
		c.Obs.Histogram("dash.client.fetch_ms").Observe(float64(elapsed) / float64(time.Millisecond))
		return FetchResult{
			Header:        h,
			Payload:       payload,
			WireBytes:     int64(len(data)),
			Elapsed:       elapsed,
			ThroughputBPS: float64(len(data)) * 8 / elapsed.Seconds(),
			Attempts:      attempts,
		}, nil
	}
}

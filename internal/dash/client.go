package dash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sperke/internal/media"
	"sperke/internal/obs"
)

// DefaultTimeout bounds a whole HTTP exchange when the caller does not
// supply an HTTPClient — the guard http.DefaultClient lacks.
const DefaultTimeout = 15 * time.Second

// defaultHTTPClient is shared by all clients without an explicit
// HTTPClient so connection pooling still works across sessions.
var defaultHTTPClient = &http.Client{Timeout: DefaultTimeout}

// RetryPolicy controls the client's bounded-retry loop: exponential
// backoff with jitter between attempts, a per-attempt timeout, and a
// cap on attempts. The zero value means defaults everywhere.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// 0 defaults to 4, negative disables retries (one attempt).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; 0 defaults to
	// 200ms. Each further attempt multiplies it by Multiplier (default
	// 2) up to MaxDelay (default 5s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each backoff uniformly over ±Jitter fraction of its
	// value; 0 defaults to 0.2. Negative disables jitter.
	Jitter float64
	// AttemptTimeout bounds each individual attempt; 0 defaults to 10s.
	// The caller's context deadline still applies on top.
	AttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 10 * time.Second
	}
	return p
}

// backoff returns the delay before attempt n+1 (n counts from 1).
// Jitter draws from the process-global stream, which is safe for
// concurrent clients; determinism matters for fault replay, not for
// pause lengths.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// FetchResult is one completed segment download with the measurement
// rate adaptation consumes.
type FetchResult struct {
	Header  media.SegmentHeader
	Payload []byte
	// WireBytes is the segment size on the wire (header + payload).
	WireBytes int64
	// Elapsed is the request wall time (floored at 1ms so mocked clocks
	// cannot yield a zero); ThroughputBPS the observed goodput in
	// bits/s. Retried attempts count toward Elapsed: a flaky fetch
	// correctly reads as a slow one.
	Elapsed       time.Duration
	ThroughputBPS float64
	// Attempts is how many tries the download took (1 = clean fetch).
	Attempts int
}

// Client fetches manifests and segments from a Sperke DASH server,
// absorbing transient faults: each request gets a per-attempt timeout
// and bounded retries with exponential backoff, and failures carry a
// typed taxonomy (*Error) so callers can degrade instead of crash.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a shared client with DefaultTimeout.
	HTTPClient *http.Client
	// Retry tunes the retry loop; the zero value uses the defaults
	// documented on RetryPolicy.
	Retry RetryPolicy
	// Now returns wall time; replaceable for tests. Defaults to
	// time.Now.
	Now func() time.Time
	// Sleep pauses between attempts; replaceable for tests. Defaults to
	// a context-aware sleep that returns early when ctx expires.
	Sleep func(ctx context.Context, d time.Duration) error
	// Obs, when set, records fetch counts, attempts, retry/backoff
	// outcomes, received bytes, error counts by kind, and a per-segment
	// latency histogram (dash.client.*). Nil disables metrics.
	Obs *obs.Registry
}

// ClientOption configures a Client at construction. The exported
// struct fields remain writable for legacy call sites; options are the
// composable form new code uses.
type ClientOption func(*Client)

// WithTransport routes the client's requests through rt — the seam the
// cluster router and tests use to splice in loopback, httptest or
// fault-injecting transports without touching global state. The
// transport rides a private http.Client with DefaultTimeout; combine
// with WithHTTPClient instead when the whole client needs replacing.
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) {
		if rt != nil {
			c.HTTPClient = &http.Client{Transport: rt, Timeout: DefaultTimeout}
		}
	}
}

// WithHTTPClient sets the exact *http.Client used; nil is ignored.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.HTTPClient = hc
		}
	}
}

// WithRetry sets the retry policy (zero fields keep the RetryPolicy
// defaults; MaxAttempts < 0 disables retries entirely).
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.Retry = p }
}

// WithClientObs wires the client's dash.client.* instruments into a
// registry.
func WithClientObs(r *obs.Registry) ClientOption {
	return func(c *Client) { c.Obs = r }
}

// NewClient builds a client for a server root URL. Options are
// variadic so every pre-existing NewClient(base) call site compiles
// unchanged; nil options are ignored.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: baseURL}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// getOnce performs a single attempt with its own timeout and classifies
// any failure.
func (c *Client) getOnce(ctx context.Context, path string, timeout time.Duration) ([]byte, *Error) {
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, &Error{Op: path, Kind: KindFatal, Err: err}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, &Error{Op: path, Kind: classifyCtx(ctx, err), Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError(path, resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// A body cut mid-segment (server fault, dropped connection) is
		// worth refetching.
		return nil, &Error{Op: path, Kind: classifyCtx(ctx, err), Err: err}
	}
	return data, nil
}

// statusError classifies a non-200 response into the typed taxonomy,
// consuming up to 256 bytes of the body for the message. 5xx and 429
// are transient; a Retry-After on a shed response upgrades the
// classification to overload — the server is alive but drowning, and
// told us when to come back. A method because the HTTP-date form of
// Retry-After is a deadline, and turning it into a duration needs the
// client's clock seam. The caller still owns closing resp.Body.
func (c *Client) statusError(path string, resp *http.Response) *Error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	kind := KindFatal
	var retryAfter time.Duration
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		kind = KindTransient
		if ra := parseRetryAfter(resp.Header.Get("Retry-After"), c.now()); ra > 0 {
			kind, retryAfter = KindOverload, ra
		}
	}
	return &Error{
		Op: path, Kind: kind, Status: resp.StatusCode, RetryAfter: retryAfter,
		Err: fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body)),
	}
}

// get runs the bounded-retry loop around getOnce.
func (c *Client) get(ctx context.Context, path string) ([]byte, int, error) {
	pol := c.Retry.withDefaults()
	for attempt := 1; ; attempt++ {
		c.Obs.Counter("dash.client.attempts").Inc()
		data, derr := c.getOnce(ctx, path, pol.AttemptTimeout)
		if derr == nil {
			c.Obs.Counter("dash.client.bytes_rx").Add(int64(len(data)))
			return data, attempt, nil
		}
		derr.Attempts = attempt
		if !derr.Retryable() || attempt >= pol.MaxAttempts {
			c.Obs.Counter("dash.client.errors." + derr.Kind.String()).Inc()
			return nil, attempt, derr
		}
		c.Obs.Counter("dash.client.retries").Inc()
		delay := pol.backoff(attempt)
		if derr.Kind == KindOverload && derr.RetryAfter > delay {
			// The shedding server named its price; pay it rather than
			// hammering a node that is trying to drain.
			delay = derr.RetryAfter
			c.Obs.Counter("dash.client.retry_after_floors").Inc()
		}
		if err := c.sleep(ctx, delay); err != nil {
			derr.Kind = KindCanceled
			c.Obs.Counter("dash.client.errors." + derr.Kind.String()).Inc()
			return nil, attempt, derr
		}
	}
}

// parseRetryAfter reads a Retry-After value in either RFC 9110 form:
// delay-seconds ("120") or an HTTP-date deadline, which converts to a
// duration against now (the client's clock seam, so tests and sim
// clocks stay deterministic). A date already past means "come back
// now" and parses as 0, as does garbage — either way the response
// stays a plain transient failure with no overload hint.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// FetchMPD downloads and parses a video's manifest.
func (c *Client) FetchMPD(ctx context.Context, videoID string) (*MPD, error) {
	c.Obs.Counter("dash.client.mpd_fetches").Inc()
	data, _, err := c.get(ctx, mpdPath(videoID))
	if err != nil {
		return nil, err
	}
	return ParseMPD(data)
}

// FetchChunk downloads one AVC chunk C(q, tile, index).
func (c *Client) FetchChunk(ctx context.Context, videoID string, q, tile, idx int) (FetchResult, error) {
	return c.fetchSegment(ctx, chunkPath(videoID, q, tile, idx, false))
}

// FetchLayer downloads one SVC layer of a chunk — the incremental
// upgrade primitive of §3.1.1.
func (c *Client) FetchLayer(ctx context.Context, videoID string, layer, tile, idx int) (FetchResult, error) {
	return c.fetchSegment(ctx, chunkPath(videoID, layer, tile, idx, true))
}

// ChunkStream is one opened chunk download: the live response body,
// ready to stream, plus the wire length from Content-Length (-1 when
// the server did not declare one). The caller owns closing Body.
type ChunkStream struct {
	Body   io.ReadCloser
	Length int64
	// Attempts is how many tries reaching the response headers took.
	Attempts int
}

// openOnce performs a single streaming attempt: headers classified
// through the same taxonomy as getOnce, but the body is returned live
// instead of materialized. No per-attempt timeout wraps the request —
// it would keep ticking under the returned body and cut it mid-copy;
// the caller's ctx and the http.Client's own Timeout still bound the
// exchange.
func (c *Client) openOnce(ctx context.Context, path string) (ChunkStream, *Error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return ChunkStream{}, &Error{Op: path, Kind: KindFatal, Err: err}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return ChunkStream{}, &Error{Op: path, Kind: classifyCtx(ctx, err), Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		derr := c.statusError(path, resp)
		resp.Body.Close()
		return ChunkStream{}, derr
	}
	return ChunkStream{Body: resp.Body, Length: resp.ContentLength}, nil
}

// OpenChunk starts one chunk download and returns the response body
// without materializing it — the wire cluster's proxy primitive. The
// bounded-retry loop (same taxonomy and Retry-After floors as the
// Fetch methods) covers everything up to the response headers; once a
// 200 arrives the body streams on the caller's context and mid-body
// failures are the caller's to handle — bytes may already have been
// forwarded downstream, so nothing can be transparently retried.
func (c *Client) OpenChunk(ctx context.Context, videoID string, q, tile, idx int, layer bool) (ChunkStream, error) {
	path := chunkPath(videoID, q, tile, idx, layer)
	pol := c.Retry.withDefaults()
	for attempt := 1; ; attempt++ {
		c.Obs.Counter("dash.client.attempts").Inc()
		st, derr := c.openOnce(ctx, path)
		if derr == nil {
			st.Attempts = attempt
			c.Obs.Counter("dash.client.opens").Inc()
			return st, nil
		}
		derr.Attempts = attempt
		if !derr.Retryable() || attempt >= pol.MaxAttempts {
			c.Obs.Counter("dash.client.errors." + derr.Kind.String()).Inc()
			return ChunkStream{}, derr
		}
		c.Obs.Counter("dash.client.retries").Inc()
		delay := pol.backoff(attempt)
		if derr.Kind == KindOverload && derr.RetryAfter > delay {
			delay = derr.RetryAfter
			c.Obs.Counter("dash.client.retry_after_floors").Inc()
		}
		if err := c.sleep(ctx, delay); err != nil {
			derr.Kind = KindCanceled
			c.Obs.Counter("dash.client.errors." + derr.Kind.String()).Inc()
			return ChunkStream{}, derr
		}
	}
}

// Ping performs one cheap liveness probe: a single GET /v attempt, no
// retries — probe loops bring their own pacing, and retrying inside a
// probe would only blur the failure detector's picture.
func (c *Client) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v", nil)
	if err != nil {
		return &Error{Op: "/v", Kind: KindFatal, Err: err}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return &Error{Op: "/v", Kind: classifyCtx(ctx, err), Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.statusError("/v", resp)
	}
	// Drain the (tiny) listing so the connection is reusable.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	return nil
}

func (c *Client) fetchSegment(ctx context.Context, path string) (FetchResult, error) {
	pol := c.Retry.withDefaults()
	start := c.now()
	attempts := 0
	for {
		data, n, err := c.get(ctx, path)
		attempts += n
		if err != nil {
			return FetchResult{}, err
		}
		h, payload, derr := media.ReadSegment(bytes.NewReader(data))
		if derr != nil {
			// The bytes arrived but do not decode — a truncated or corrupt
			// segment. Refetch within the remaining attempt budget.
			if attempts < pol.MaxAttempts {
				if serr := c.sleep(ctx, pol.backoff(attempts)); serr == nil {
					continue
				}
			}
			return FetchResult{}, &Error{
				Op: path, Kind: KindTransient, Attempts: attempts,
				Err: fmt.Errorf("decoding segment: %w", derr),
			}
		}
		elapsed := c.now().Sub(start)
		if elapsed < time.Millisecond {
			// Mocked or coarse clocks can observe zero wall time; a zero
			// sample would poison downstream bandwidth estimates.
			elapsed = time.Millisecond
		}
		c.Obs.Counter("dash.client.segment_fetches").Inc()
		if attempts > 1 {
			c.Obs.Counter("dash.client.segment_fetches_retried").Inc()
		}
		c.Obs.Histogram("dash.client.fetch_ms").Observe(float64(elapsed) / float64(time.Millisecond))
		return FetchResult{
			Header:        h,
			Payload:       payload,
			WireBytes:     int64(len(data)),
			Elapsed:       elapsed,
			ThroughputBPS: float64(len(data)) * 8 / elapsed.Seconds(),
			Attempts:      attempts,
		}, nil
	}
}

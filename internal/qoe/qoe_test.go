package qoe

import (
	"math"
	"testing"
	"time"
)

func TestZeroMetrics(t *testing.T) {
	var m Metrics
	if m.MeanQuality() != 0 || m.MeanBitrate() != 0 || m.StallRatio() != 0 || m.WasteRatio() != 0 {
		t.Fatal("zero metrics not zero")
	}
	if m.Score(5) != 0 {
		t.Fatal("zero score not zero")
	}
}

func TestPlayAccumulates(t *testing.T) {
	var c Collector
	c.Play(2*time.Second, 4, 8e6)
	c.Play(2*time.Second, 2, 4e6)
	m := c.Metrics()
	if m.PlayTime != 4*time.Second {
		t.Fatalf("PlayTime = %v", m.PlayTime)
	}
	if q := m.MeanQuality(); q != 3 {
		t.Fatalf("MeanQuality = %v, want 3", q)
	}
	if b := m.MeanBitrate(); b != 6e6 {
		t.Fatalf("MeanBitrate = %v, want 6e6", b)
	}
}

func TestSwitchCounting(t *testing.T) {
	var c Collector
	c.Play(time.Second, 3, 1)
	c.Play(time.Second, 3.2, 1) // < 1 level: no switch
	c.Play(time.Second, 4.5, 1) // ≥ 1 level: switch
	c.Play(time.Second, 1, 1)   // switch
	if got := c.Metrics().Switches; got != 2 {
		t.Fatalf("Switches = %d, want 2", got)
	}
}

func TestStallRatioAndEvents(t *testing.T) {
	var c Collector
	c.Play(8*time.Second, 3, 1)
	c.Stall(2 * time.Second)
	c.Stall(0) // ignored
	m := c.Metrics()
	if m.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", m.Stalls)
	}
	if r := m.StallRatio(); r != 0.2 {
		t.Fatalf("StallRatio = %v, want 0.2", r)
	}
}

func TestScoreOrdering(t *testing.T) {
	// More stalls → lower score; higher quality → higher score.
	var good, stally, lowq Collector
	good.Play(time.Minute, 4, 1)
	stally.Play(time.Minute, 4, 1)
	stally.Stall(10 * time.Second)
	lowq.Play(time.Minute, 1, 1)
	g, s, l := good.Metrics().Score(5), stally.Metrics().Score(5), lowq.Metrics().Score(5)
	if !(g > s && g > l) {
		t.Fatalf("score ordering wrong: good=%v stally=%v lowq=%v", g, s, l)
	}
	if g > 100 || g < 0 {
		t.Fatalf("score %v out of [0,100]", g)
	}
}

func TestScoreSkipsPenalty(t *testing.T) {
	var clean, skippy Collector
	clean.Play(time.Minute, 3, 1)
	skippy.Play(time.Minute, 3, 1)
	for i := 0; i < 10; i++ {
		skippy.Skip()
	}
	if clean.Metrics().Score(5) <= skippy.Metrics().Score(5) {
		t.Fatal("skips did not lower score")
	}
}

func TestBlankPenalty(t *testing.T) {
	var clean, blank Collector
	clean.Play(time.Minute, 3, 1)
	blank.Play(time.Minute, 3, 1)
	blank.Blank(5 * time.Second)
	if clean.Metrics().Score(5) <= blank.Metrics().Score(5) {
		t.Fatal("blank time did not lower score")
	}
}

func TestWasteRatio(t *testing.T) {
	var c Collector
	c.Fetched(1000)
	c.Wasted(250)
	if r := c.Metrics().WasteRatio(); r != 0.25 {
		t.Fatalf("WasteRatio = %v, want 0.25", r)
	}
}

func TestScoreNeverNegative(t *testing.T) {
	var c Collector
	c.Play(time.Second, 0, 0)
	c.Stall(time.Hour)
	if s := c.Metrics().Score(5); s != 0 {
		t.Fatalf("score = %v, want clamped 0", s)
	}
}

func TestStringNonEmpty(t *testing.T) {
	var c Collector
	c.Play(time.Second, 2, 1e6)
	if c.Metrics().String() == "" {
		t.Fatal("empty String")
	}
}

func TestNegativeDurationsIgnored(t *testing.T) {
	var c Collector
	c.Play(-time.Second, 5, 1)
	c.Blank(-time.Second)
	m := c.Metrics()
	if m.PlayTime != 0 || m.BlankTime != 0 {
		t.Fatal("negative durations recorded")
	}
}

func TestPlayTilesVariance(t *testing.T) {
	var c Collector
	// Uniform FoV: zero variance.
	c.PlayTiles(2*time.Second, []int{3, 3, 3, 3}, 1e6)
	if v := c.Metrics().MeanFoVVariance(); v != 0 {
		t.Fatalf("uniform FoV variance %v", v)
	}
	// Mixed FoV (an OOS tile drifted in): variance appears.
	c.PlayTiles(2*time.Second, []int{4, 4, 1, 1}, 1e6)
	m := c.Metrics()
	if m.MeanFoVVariance() <= 0 {
		t.Fatal("mixed FoV produced no variance")
	}
	// Mean quality is the tile mean over time: (3×2 + 2.5×2)/4 = 2.75.
	if q := m.MeanQuality(); q < 2.74 || q > 2.76 {
		t.Fatalf("mean quality %v, want 2.75", q)
	}
	// Degenerate calls are ignored.
	c.PlayTiles(time.Second, nil, 1)
	c.PlayTiles(-time.Second, []int{1}, 1)
	if c.Metrics().PlayTime != 4*time.Second {
		t.Fatal("degenerate PlayTiles recorded")
	}
}

// TestZeroPlayTimeMeans is the regression guard for the divide-by-zero
// family: a session that stalls out before rendering a single frame has
// PlayTime == 0 but can still carry accumulated sums (e.g. variance or
// quality recorded through a pathological collector path). Every
// play-time-weighted mean must return 0, never NaN or ±Inf.
func TestZeroPlayTimeMeans(t *testing.T) {
	m := Metrics{
		QualitySum:     12.5,
		BitsPlayed:     4e6,
		FoVVarianceSum: 3.25,
		BlankTime:      time.Second,
		Switches:       3,
	}
	if q := m.MeanQuality(); q != 0 {
		t.Fatalf("MeanQuality with zero play time = %v, want 0", q)
	}
	if b := m.MeanBitrate(); b != 0 {
		t.Fatalf("MeanBitrate with zero play time = %v, want 0", b)
	}
	if v := m.MeanFoVVariance(); v != 0 {
		t.Fatalf("MeanFoVVariance with zero play time = %v, want 0", v)
	}
	// Negative play time (corrupt input) takes the same guard.
	m.PlayTime = -time.Second
	if m.MeanQuality() != 0 || m.MeanBitrate() != 0 || m.MeanFoVVariance() != 0 {
		t.Fatal("negative play time leaked through a mean")
	}
	// The composite score must also stay finite and non-negative.
	m.PlayTime = 0
	if s := m.Score(5); math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		t.Fatalf("Score with zero play time = %v", s)
	}
}

// Package qoe accounts the quality-of-experience metrics 360° rate
// adaptation optimizes (§3.1.2): stalls (rebuffering) for on-demand
// playback, skips for live playback, the quality level rendered inside
// the FoV, quality switches, and blank time (a visible tile that was
// never fetched). A composite score in the spirit of the predictive QoE
// model of [14] combines them.
package qoe

import (
	"fmt"
	"math"
	"time"
)

// Metrics is the accumulated QoE of one playback session.
type Metrics struct {
	// PlayTime is time spent rendering frames.
	PlayTime time.Duration
	// StallTime is time spent rebuffering (non-live).
	StallTime time.Duration
	// Stalls counts distinct rebuffering events.
	Stalls int
	// Skips counts chunks dropped for missing their live deadline.
	Skips int
	// BlankTime is play time during which at least one FoV tile had no
	// data at all (rendered black).
	BlankTime time.Duration
	// QualitySum accumulates FoV quality level × seconds; divide by
	// PlayTime for the mean.
	QualitySum float64
	// BitsPlayed accumulates the encoded bits of rendered content.
	BitsPlayed float64
	// Switches counts FoV quality level changes ≥ 1 level.
	Switches int
	// BytesFetched counts everything downloaded, including waste.
	BytesFetched int64
	// BytesWasted counts downloaded bytes never rendered (fetched tiles
	// that stayed out of view, replaced chunks, dropped layers).
	BytesWasted int64
	// FoVVarianceSum accumulates the within-FoV quality variance ×
	// seconds: §3.1.2 constrains super chunks to one quality because
	// "different subareas in a FoV will have different qualities, thus
	// worsening the QoE" — this measures how much of that leaked in
	// (via OOS tiles drifting into view).
	FoVVarianceSum float64
}

// MeanFoVVariance returns the play-time-weighted mean within-FoV
// quality variance (0 = every visible tile at one quality).
func (m Metrics) MeanFoVVariance() float64 {
	if m.PlayTime <= 0 {
		return 0
	}
	return m.FoVVarianceSum / m.PlayTime.Seconds()
}

// MeanQuality returns the play-time-weighted mean FoV quality level.
func (m Metrics) MeanQuality() float64 {
	if m.PlayTime <= 0 {
		return 0
	}
	return m.QualitySum / m.PlayTime.Seconds()
}

// MeanBitrate returns the mean rendered bitrate in bits/s.
func (m Metrics) MeanBitrate() float64 {
	if m.PlayTime <= 0 {
		return 0
	}
	return m.BitsPlayed / m.PlayTime.Seconds()
}

// StallRatio returns stall time over total session time.
func (m Metrics) StallRatio() float64 {
	total := m.PlayTime + m.StallTime
	if total <= 0 {
		return 0
	}
	return float64(m.StallTime) / float64(total)
}

// WasteRatio returns wasted bytes over fetched bytes.
func (m Metrics) WasteRatio() float64 {
	if m.BytesFetched <= 0 {
		return 0
	}
	return float64(m.BytesWasted) / float64(m.BytesFetched)
}

// Score condenses the session into a single comparable number per the
// structure of predictive QoE models [14]: quality helps; stalls, skips,
// blank frames and switches hurt. maxQuality normalizes the quality
// term; the result is roughly in [0, 100].
func (m Metrics) Score(maxQuality int) float64 {
	if maxQuality <= 0 {
		maxQuality = 1
	}
	q := m.MeanQuality() / float64(maxQuality) * 100
	stall := m.StallRatio() * 200
	blank := 0.0
	if m.PlayTime > 0 {
		blank = float64(m.BlankTime) / float64(m.PlayTime) * 150
	}
	switches := 0.0
	if m.PlayTime > 0 {
		perMin := float64(m.Switches) / m.PlayTime.Minutes()
		switches = math.Min(perMin, 30) * 0.5
	}
	skips := 0.0
	if total := m.PlayTime.Seconds(); total > 0 {
		skips = math.Min(float64(m.Skips)/total*60, 30) * 0.8
	}
	s := q - stall - blank - switches - skips
	if s < 0 {
		s = 0
	}
	return s
}

func (m Metrics) String() string {
	return fmt.Sprintf("play=%v stalls=%d(%v) skips=%d q̄=%.2f switches=%d waste=%.0f%%",
		m.PlayTime.Round(time.Millisecond), m.Stalls, m.StallTime.Round(time.Millisecond),
		m.Skips, m.MeanQuality(), m.Switches, m.WasteRatio()*100)
}

// Collector accumulates Metrics during a session. The zero value is
// ready to use.
type Collector struct {
	m        Metrics
	lastQ    float64
	haveLast bool
}

// PlayTiles records d of rendered content from the per-tile quality
// levels visible in the FoV, capturing both the mean and the within-FoV
// variance. Missing tiles are not included (account them via Blank).
func (c *Collector) PlayTiles(d time.Duration, qualities []int, bitrate float64) {
	if d <= 0 || len(qualities) == 0 {
		return
	}
	var sum float64
	for _, q := range qualities {
		sum += float64(q)
	}
	mean := sum / float64(len(qualities))
	var varSum float64
	for _, q := range qualities {
		diff := float64(q) - mean
		varSum += diff * diff
	}
	c.m.FoVVarianceSum += varSum / float64(len(qualities)) * d.Seconds()
	c.Play(d, mean, bitrate)
}

// Play records d of rendered content at the given mean FoV quality
// level and encoded bitrate (bits/s).
func (c *Collector) Play(d time.Duration, fovQuality float64, bitrate float64) {
	if d <= 0 {
		return
	}
	c.m.PlayTime += d
	c.m.QualitySum += fovQuality * d.Seconds()
	c.m.BitsPlayed += bitrate * d.Seconds()
	if c.haveLast && math.Abs(fovQuality-c.lastQ) >= 1 {
		c.m.Switches++
	}
	c.lastQ = fovQuality
	c.haveLast = true
}

// Stall records one rebuffering event of duration d.
func (c *Collector) Stall(d time.Duration) {
	if d <= 0 {
		return
	}
	c.m.Stalls++
	c.m.StallTime += d
}

// Skip records a chunk skipped at its live deadline.
func (c *Collector) Skip() { c.m.Skips++ }

// Blank records d of play time with a missing FoV tile.
func (c *Collector) Blank(d time.Duration) {
	if d > 0 {
		c.m.BlankTime += d
	}
}

// Fetched records downloaded bytes; wasted marks them as never
// rendered.
func (c *Collector) Fetched(bytes int64) { c.m.BytesFetched += bytes }

// Wasted records bytes that were fetched but never rendered.
func (c *Collector) Wasted(bytes int64) { c.m.BytesWasted += bytes }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Collector) Metrics() Metrics { return c.m }

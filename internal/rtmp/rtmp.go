// Package rtmp implements the live upload path of §3.4.1: a compact
// RTMP-like message protocol over TCP. The paper's measurements find
// all three commercial platforms (Facebook, YouTube, Periscope) ingest
// live 360° broadcasts over RTMP [7], and Periscope also pushes to
// viewers over it.
//
// This implementation models the public specification's shape — a
// version handshake, then typed, timestamped messages — while
// simplifying the chunk-interleaving layer: each message carries its
// full length up front and its payload follows contiguously. That
// preserves everything the streaming pipeline cares about (framing,
// timestamps, ordering, head-of-line behaviour on a single TCP
// connection) without the bookkeeping RTMP needs for multiplexing many
// streams on one connection.
//
// Wire format after the handshake, all integers big-endian:
//
//	offset size field
//	0      1    message type
//	1      4    timestamp, milliseconds
//	5      4    payload length
//	9      ...  payload
package rtmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Protocol version, mirroring RTMP's version 3.
const Version = 3

// MessageType tags a message.
type MessageType uint8

// Message types (a subset shaped like RTMP's).
const (
	// TypePublish starts a named stream; payload is the stream name.
	TypePublish MessageType = 8
	// TypeVideo carries one media segment (package media container).
	TypeVideo MessageType = 9
	// TypeEOS ends the stream.
	TypeEOS MessageType = 10
	// TypeAck is a server acknowledgment (payload: 4-byte sequence).
	TypeAck MessageType = 3
)

// MaxPayload bounds a single message (a segment plus slack).
const MaxPayload = 96 << 20

// Message is one protocol message.
type Message struct {
	Type MessageType
	// Timestamp is the media timestamp of the payload.
	Timestamp time.Duration
	Payload   []byte
}

// Errors.
var (
	ErrBadHandshake = errors.New("rtmp: bad handshake")
	ErrPayloadSize  = errors.New("rtmp: payload exceeds maximum")
)

// wallNow is the package's only wall-clock read. Handshake stamps and
// the Server's default receive clock route through it, so deterministic
// harnesses see exactly one seam (Server.Now overrides it per
// instance).
func wallNow() time.Time { return time.Now() }

// handshakeMillis is the C1/S1 timestamp: a wall-clock nonce on real
// deployments, but never a scheduling input.
func handshakeMillis() uint64 { return uint64(wallNow().UnixMilli()) }

// Handshake performs the client side of the version handshake: send
// C0 (version) + C1 (8-byte timestamp + 8 random-ish bytes), expect
// S0+S1 back.
func Handshake(rw io.ReadWriter) error {
	var c [17]byte
	c[0] = Version
	binary.BigEndian.PutUint64(c[1:], handshakeMillis())
	if _, err := rw.Write(c[:]); err != nil {
		return err
	}
	var s [17]byte
	if _, err := io.ReadFull(rw, s[:]); err != nil {
		return err
	}
	if s[0] != Version {
		return fmt.Errorf("%w: server version %d", ErrBadHandshake, s[0])
	}
	return nil
}

// AcceptHandshake performs the server side.
func AcceptHandshake(rw io.ReadWriter) error {
	var c [17]byte
	if _, err := io.ReadFull(rw, c[:]); err != nil {
		return err
	}
	if c[0] != Version {
		return fmt.Errorf("%w: client version %d", ErrBadHandshake, c[0])
	}
	var s [17]byte
	s[0] = Version
	binary.BigEndian.PutUint64(s[1:], handshakeMillis())
	_, err := rw.Write(s[:])
	return err
}

// WriteMessage frames and sends one message.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Payload) > MaxPayload {
		return ErrPayloadSize
	}
	var h [9]byte
	h[0] = byte(m.Type)
	binary.BigEndian.PutUint32(h[1:], uint32(m.Timestamp/time.Millisecond))
	binary.BigEndian.PutUint32(h[5:], uint32(len(m.Payload)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(m.Payload) == 0 {
		return nil
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var h [9]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(h[5:])
	if n > MaxPayload {
		return Message{}, ErrPayloadSize
	}
	m := Message{
		Type:      MessageType(h[0]),
		Timestamp: time.Duration(binary.BigEndian.Uint32(h[1:])) * time.Millisecond,
	}
	if n > 0 {
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return Message{}, err
		}
	}
	return m, nil
}

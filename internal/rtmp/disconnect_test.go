package rtmp

import (
	"net"
	"testing"
	"time"

	"sperke/internal/media"
)

// TestServerSurvivesAbruptDisconnect severs a publisher's connection in
// the middle of a video message and asserts the server neither panics
// nor stops serving: a fresh publisher on the same server must still
// complete a full session.
func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	segments := make(chan string, 16)
	ended := make(chan string, 2)
	srv := &Server{
		OnSegment: func(stream string, _ time.Time, _ time.Duration, _ media.SegmentHeader, _ []byte) {
			segments <- stream
		},
		OnEOS: func(s string) { ended <- s },
	}
	go srv.Serve(ln)
	defer srv.Close()

	// First publisher: handshake, publish, then die mid-message — a
	// header promising a payload that never arrives.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := Handshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, Message{Type: TypePublish, Payload: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	partial := []byte{byte(TypeVideo), 0, 0, 0, 0, 0, 0, 64, 0} // declares 16384 bytes
	if _, err := conn.Write(partial); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 100)); err != nil { // a fraction of the payload
		t.Fatal(err)
	}
	conn.Close() // abrupt: no EOS, payload cut mid-flight

	// Second publisher: the server must still accept and serve a complete
	// session.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(conn2, "survivor")
	if err != nil {
		t.Fatalf("server stopped accepting after an abrupt disconnect: %v", err)
	}
	h := media.SegmentHeader{VideoID: "survivor", Quality: 1, Start: 0, Duration: time.Second}
	if err := pub.SendSegment(0, h, media.SyntheticPayload(1, 2048)); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-segments:
		if s != "survivor" {
			t.Fatalf("segment from %q, want the new session", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no segment delivered after the disconnect")
	}
	pub.Close()
	select {
	case s := <-ended:
		if s != "survivor" {
			t.Fatalf("EOS for %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("clean session did not end")
	}
	// The doomed session must not have surfaced a segment or an EOS.
	select {
	case s := <-segments:
		t.Fatalf("unexpected extra segment from %q", s)
	case s := <-ended:
		t.Fatalf("unexpected EOS from %q", s)
	default:
	}
}

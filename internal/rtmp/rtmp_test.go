package rtmp

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sperke/internal/media"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := Message{Type: TypeVideo, Timestamp: 1500 * time.Millisecond, Payload: []byte("hello")}
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Timestamp != m.Timestamp || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(typ uint8, tsMs uint32, payload []byte) bool {
		var buf bytes.Buffer
		m := Message{Type: MessageType(typ), Timestamp: time.Duration(tsMs) * time.Millisecond, Payload: payload}
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.Timestamp == m.Timestamp && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: TypeEOS}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeEOS || len(got.Payload) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, Message{Type: TypeVideo, Payload: make([]byte, 100)})
	data := buf.Bytes()
	for _, cut := range []int{0, 5, 9, 50} {
		if _, err := ReadMessage(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestHandshakeOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	errc := make(chan error, 1)
	go func() { errc <- AcceptHandshake(server) }()
	if err := Handshake(client); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeRejectsWrongVersion(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		var junk [17]byte
		junk[0] = 99
		client.Write(junk[:])
		io.ReadAll(client)
	}()
	if err := AcceptHandshake(server); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
}

func TestPublisherToServerEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type rx struct {
		stream string
		ts     time.Duration
		h      media.SegmentHeader
		n      int
	}
	rxs := make(chan rx, 16)
	published := make(chan string, 1)
	ended := make(chan string, 1)
	srv := &Server{
		OnSegment: func(stream string, at time.Time, ts time.Duration, h media.SegmentHeader, payload []byte) {
			rxs <- rx{stream, ts, h, len(payload)}
		},
		OnPublish: func(s string) { published <- s },
		OnEOS:     func(s string) { ended <- s },
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(conn, "concert")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-published:
		if s != "concert" {
			t.Fatalf("published %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publish not seen")
	}
	for i := 0; i < 3; i++ {
		h := media.SegmentHeader{VideoID: "concert", Quality: 2, Tile: 1, Flags: media.FlagLive,
			Start: time.Duration(i) * time.Second, Duration: time.Second}
		payload := media.SyntheticPayload(uint64(i), 5000)
		if err := pub.SendSegment(time.Duration(i)*time.Second, h, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case r := <-rxs:
			if r.stream != "concert" || r.n != 5000 {
				t.Fatalf("segment %d: %+v", i, r)
			}
			if r.ts != time.Duration(i)*time.Second {
				t.Fatalf("segment %d timestamp %v", i, r.ts)
			}
			if r.h.Flags&media.FlagLive == 0 {
				t.Fatal("live flag lost")
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("segment %d not received", i)
		}
	}
	pub.Close()
	select {
	case s := <-ended:
		if s != "concert" {
			t.Fatalf("EOS for %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EOS not seen")
	}
}

func TestPublisherEmptyStreamName(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	if _, err := NewPublisher(client, ""); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestServerIgnoresCorruptSegments(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	good := 0
	srv := &Server{OnSegment: func(string, time.Time, time.Duration, media.SegmentHeader, []byte) {
		mu.Lock()
		good++
		mu.Unlock()
	}}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Handshake(conn); err != nil {
		t.Fatal(err)
	}
	WriteMessage(conn, Message{Type: TypePublish, Payload: []byte("s")})
	// A garbage video message, then a valid one.
	WriteMessage(conn, Message{Type: TypeVideo, Payload: []byte("garbage")})
	var seg bytes.Buffer
	media.WriteSegment(&seg, media.SegmentHeader{VideoID: "s"}, []byte("ok"))
	WriteMessage(conn, Message{Type: TypeVideo, Payload: seg.Bytes()})

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		g := good
		mu.Unlock()
		if g == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("valid segment after garbage not delivered")
}

func TestWriteMessageOversizedPayload(t *testing.T) {
	// Don't allocate MaxPayload bytes; fake the length via a huge slice
	// header is not possible safely — use a just-over-limit empty-backed
	// check through the exported constant instead.
	m := Message{Type: TypeVideo, Payload: make([]byte, 0)}
	if err := WriteMessage(io.Discard, m); err != nil {
		t.Fatal(err)
	}
	// Craft a frame declaring an oversized payload and confirm the
	// reader rejects it before allocating.
	var h [9]byte
	h[0] = byte(TypeVideo)
	h[5] = 0xff
	h[6] = 0xff
	h[7] = 0xff
	h[8] = 0xff
	if _, err := ReadMessage(bytes.NewReader(h[:])); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("err = %v, want ErrPayloadSize", err)
	}
}

func TestServerIgnoresUnknownMessageTypes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 1)
	srv := &Server{OnSegment: func(string, time.Time, time.Duration, media.SegmentHeader, []byte) {
		select {
		case got <- struct{}{}:
		default:
		}
	}}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Handshake(conn); err != nil {
		t.Fatal(err)
	}
	WriteMessage(conn, Message{Type: TypePublish, Payload: []byte("s")})
	WriteMessage(conn, Message{Type: MessageType(42), Payload: []byte("mystery")})
	var seg bytes.Buffer
	media.WriteSegment(&seg, media.SegmentHeader{VideoID: "s"}, []byte("ok"))
	WriteMessage(conn, Message{Type: TypeVideo, Payload: seg.Bytes()})
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("segment after unknown message type not delivered")
	}
}

func TestServerRejectsNonPublishFirst(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	called := false
	srv := &Server{OnSegment: func(string, time.Time, time.Duration, media.SegmentHeader, []byte) {
		called = true
	}}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Handshake(conn); err != nil {
		t.Fatal(err)
	}
	// Send a video message without publishing first: the server must
	// hang up.
	var seg bytes.Buffer
	media.WriteSegment(&seg, media.SegmentHeader{VideoID: "s"}, []byte("ok"))
	WriteMessage(conn, Message{Type: TypeVideo, Payload: seg.Bytes()})
	// The connection should be closed by the server shortly.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection after a protocol violation")
	}
	if called {
		t.Fatal("segment delivered without publish")
	}
}

func TestPublisherCloseSendsEOS(t *testing.T) {
	client, server := net.Pipe()
	done := make(chan Message, 4)
	go func() {
		AcceptHandshake(server)
		for {
			m, err := ReadMessage(server)
			if err != nil {
				close(done)
				return
			}
			done <- m
		}
	}()
	pub, err := NewPublisher(client, "s")
	if err != nil {
		t.Fatal(err)
	}
	if m := <-done; m.Type != TypePublish {
		t.Fatalf("first message %v", m.Type)
	}
	pub.Close()
	if m := <-done; m.Type != TypeEOS {
		t.Fatalf("close sent %v, want EOS", m.Type)
	}
}

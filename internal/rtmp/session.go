package rtmp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"sperke/internal/media"
)

// Publisher is the broadcaster side of an ingest session: it performs
// the handshake, announces a stream name, and pushes media segments.
type Publisher struct {
	conn net.Conn
	bw   *bufio.Writer
}

// NewPublisher dials nothing — it wraps an established connection (so
// callers can shape it with netem.RateLimitedConn), handshakes, and
// publishes the named stream.
func NewPublisher(conn net.Conn, stream string) (*Publisher, error) {
	if stream == "" {
		return nil, fmt.Errorf("rtmp: empty stream name")
	}
	if err := Handshake(conn); err != nil {
		return nil, err
	}
	p := &Publisher{conn: conn, bw: bufio.NewWriter(conn)}
	if err := WriteMessage(p.bw, Message{Type: TypePublish, Payload: []byte(stream)}); err != nil {
		return nil, err
	}
	return p, p.bw.Flush()
}

// SendSegment pushes one media segment with the given media timestamp.
func (p *Publisher) SendSegment(ts time.Duration, h media.SegmentHeader, payload []byte) error {
	var buf bytes.Buffer
	buf.Grow(media.SegmentLen(h.VideoID, len(payload)))
	if err := media.WriteSegment(&buf, h, payload); err != nil {
		return err
	}
	if err := WriteMessage(p.bw, Message{Type: TypeVideo, Timestamp: ts, Payload: buf.Bytes()}); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Close ends the stream gracefully.
func (p *Publisher) Close() error {
	WriteMessage(p.bw, Message{Type: TypeEOS})
	p.bw.Flush()
	return p.conn.Close()
}

// SegmentHandler receives each segment a publisher pushes: the stream
// name, the receive wall time, the media timestamp, and the decoded
// segment.
type SegmentHandler func(stream string, receivedAt time.Time, ts time.Duration, h media.SegmentHeader, payload []byte)

// Server is the ingest endpoint: it accepts publisher connections and
// delivers their segments to a handler (the live pipeline's server
// stage).
type Server struct {
	// OnSegment is required.
	OnSegment SegmentHandler
	// OnPublish, if set, is told when a stream starts.
	OnPublish func(stream string)
	// OnEOS, if set, is told when a stream ends.
	OnEOS func(stream string)
	// Now stamps segment arrival times; deterministic harnesses inject
	// a virtual clock here. Nil means wall time.
	Now func() time.Time
	Log *slog.Logger

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections on l until l is closed. Each connection is
// handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) log() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return slog.Default()
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return wallNow()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if err := AcceptHandshake(conn); err != nil {
		s.log().Debug("rtmp: handshake failed", "err", err)
		return
	}
	br := bufio.NewReader(conn)
	first, err := ReadMessage(br)
	if err != nil || first.Type != TypePublish || len(first.Payload) == 0 {
		s.log().Debug("rtmp: expected publish", "err", err)
		return
	}
	stream := string(first.Payload)
	if s.OnPublish != nil {
		s.OnPublish(stream)
	}
	for {
		m, err := ReadMessage(br)
		if err != nil {
			if err != io.EOF {
				s.log().Debug("rtmp: read", "stream", stream, "err", err)
			}
			return
		}
		switch m.Type {
		case TypeVideo:
			h, payload, err := media.ReadSegment(bytes.NewReader(m.Payload))
			if err != nil {
				s.log().Debug("rtmp: bad segment", "stream", stream, "err", err)
				continue
			}
			if s.OnSegment != nil {
				s.OnSegment(stream, s.now(), m.Timestamp, h, payload)
			}
		case TypeEOS:
			if s.OnEOS != nil {
				s.OnEOS(stream)
			}
			return
		default:
			// Ignore unknown types, per robustness principle.
		}
	}
}

package rtmp

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadMessage hardens the ingest framing against arbitrary bytes:
// no panics, and accepted messages round-trip.
func FuzzReadMessage(f *testing.F) {
	for _, m := range []Message{
		{Type: TypePublish, Payload: []byte("stream")},
		{Type: TypeVideo, Timestamp: 1500 * time.Millisecond, Payload: make([]byte, 512)},
		{Type: TypeEOS},
	} {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	// Truncated-header seeds: a peer can die after any byte of the 9-byte
	// frame header.
	{
		var buf bytes.Buffer
		if err := WriteMessage(&buf, Message{Type: TypeVideo, Payload: make([]byte, 64)}); err != nil {
			f.Fatal(err)
		}
		whole := buf.Bytes()
		for _, cut := range []int{1, 4, 8} {
			f.Add(append([]byte(nil), whole[:cut]...))
		}
		// Mid-message cuts: a complete header whose declared payload is cut
		// short — the abrupt-disconnect shape ReadMessage must refuse
		// without panicking.
		f.Add(append([]byte(nil), whole[:9]...))
		f.Add(append([]byte(nil), whole[:9+32]...))
	}
	// A header declaring a huge payload followed by almost nothing: the
	// reader must bound allocation, not trust the length field.
	f.Add([]byte{byte(TypeVideo), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encoded message differs from consumed bytes")
		}
	})
}

package rtmp

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadMessage hardens the ingest framing against arbitrary bytes:
// no panics, and accepted messages round-trip.
func FuzzReadMessage(f *testing.F) {
	for _, m := range []Message{
		{Type: TypePublish, Payload: []byte("stream")},
		{Type: TypeVideo, Timestamp: 1500 * time.Millisecond, Payload: make([]byte, 512)},
		{Type: TypeEOS},
	} {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encoded message differs from consumed bytes")
		}
	})
}

package core

import (
	"fmt"
	"time"

	"sperke/internal/tiling"
)

// EventKind tags a session event.
type EventKind int

// Session event kinds, in rough pipeline order.
const (
	// EventPlanned: an interval's super chunk and OOS plan were decided.
	EventPlanned EventKind = iota
	// EventFetched: a tile chunk arrived.
	EventFetched
	// EventDropped: a best-effort tile chunk was lost in transit.
	EventDropped
	// EventUpgraded: an incremental upgrade completed (§3.1.1).
	EventUpgraded
	// EventUrgent: an HMP correction forced a rush fetch (Table 1).
	EventUrgent
	// EventPlay: an interval began displaying.
	EventPlay
	// EventStall: playback rebuffered.
	EventStall
)

var eventNames = [...]string{
	"planned", "fetched", "dropped", "upgraded", "urgent", "play", "stall",
}

func (k EventKind) String() string {
	if k < 0 || int(k) >= len(eventNames) {
		return fmt.Sprintf("event(%d)", int(k))
	}
	return eventNames[k]
}

// Event is one observable step of a streaming session. The zero tile
// (-1) marks interval-level events.
type Event struct {
	At       time.Duration
	Kind     EventKind
	Interval int
	Tile     tiling.TileID // -1 for interval-level events
	Quality  int
	Bytes    int64
	// Dur carries the stall length for EventStall, the play span for
	// EventPlay.
	Dur time.Duration
}

func (e Event) String() string {
	switch e.Kind {
	case EventStall:
		return fmt.Sprintf("%8s %-8s interval=%d dur=%v",
			e.At.Round(time.Millisecond), e.Kind, e.Interval, e.Dur.Round(time.Millisecond))
	case EventPlay:
		return fmt.Sprintf("%8s %-8s interval=%d q̄=%d",
			e.At.Round(time.Millisecond), e.Kind, e.Interval, e.Quality)
	case EventPlanned:
		return fmt.Sprintf("%8s %-8s interval=%d q=%d",
			e.At.Round(time.Millisecond), e.Kind, e.Interval, e.Quality)
	default:
		return fmt.Sprintf("%8s %-8s interval=%d tile=%d q=%d bytes=%d",
			e.At.Round(time.Millisecond), e.Kind, e.Interval, e.Tile, e.Quality, e.Bytes)
	}
}

// emit delivers an event to the configured observer, if any.
func (s *Session) emit(kind EventKind, interval int, tile tiling.TileID, quality int, bytes int64, dur time.Duration) {
	if s.cfg.Observer == nil {
		return
	}
	s.cfg.Observer(Event{
		At:       s.clock.Now(),
		Kind:     kind,
		Interval: interval,
		Tile:     tile,
		Quality:  quality,
		Bytes:    bytes,
		Dur:      dur,
	})
}

package core_test

import (
	"fmt"
	"math/rand"
	"time"

	"sperke/internal/core"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

// ExampleSession runs a complete FoV-guided streaming session on the
// deterministic simulator: this is the package's front door.
func ExampleSession() {
	video := &media.Video{
		ID:            "example",
		Duration:      20 * time.Second,
		ChunkDuration: 2 * time.Second,
		Grid:          tiling.GridCellular,
		Ladder:        media.DefaultLadder,
		Encoding:      media.EncodingAVC,
	}
	clock := sim.NewClock(1)
	path := netem.NewPath(clock, "net", netem.Constant(20e6), 20*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)

	rng := rand.New(rand.NewSource(1))
	att := trace.GenerateAttention(rand.New(rand.NewSource(2)), 30*time.Second)
	head := trace.Generate(rng, trace.UserProfile{ID: "demo", SpeedScale: 1}, att, 30*time.Second)

	session, err := core.NewSession(clock, core.Config{
		Video: video,
		Mode:  core.FoVGuided,
	}, head, sched)
	if err != nil {
		panic(err)
	}
	report := session.Run()
	fmt.Printf("played %v with %d stalls\n", report.QoE.PlayTime, report.QoE.Stalls)
	// Output:
	// played 20s with 0 stalls
}

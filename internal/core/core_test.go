package core

import (
	"math/rand"
	"testing"
	"time"

	"sperke/internal/abr"
	"sperke/internal/codec"
	"sperke/internal/hmp"
	"sperke/internal/media"
	"sperke/internal/multipath"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

func testVideo(enc media.Encoding) *media.Video {
	return &media.Video{
		ID:             "session-test",
		Duration:       30 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridCellular,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       enc,
	}
}

func testHead(seed int64, dur time.Duration) *trace.HeadTrace {
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+500)), dur)
	return trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, dur)
}

// runSession executes a session over a single constant-rate path.
func runSession(t *testing.T, cfg Config, bps float64, seed int64) Report {
	t.Helper()
	clock := sim.NewClock(seed)
	path := netem.NewPath(clock, "net", netem.Constant(bps), 20*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)
	head := testHead(seed, cfg.Video.Duration+10*time.Second)
	s, err := NewSession(clock, cfg, head, sched)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestSessionPlaysWholeVideo(t *testing.T) {
	rep := runSession(t, Config{Video: testVideo(media.EncodingAVC)}, 20e6, 1)
	if rep.QoE.PlayTime != 30*time.Second {
		t.Fatalf("PlayTime = %v, want full 30s", rep.QoE.PlayTime)
	}
	if rep.BytesFetched == 0 {
		t.Fatal("nothing fetched")
	}
	if rep.QoE.MeanQuality() <= 0 {
		t.Fatal("zero mean quality on a fat link")
	}
}

func TestSessionValidation(t *testing.T) {
	clock := sim.NewClock(1)
	path := netem.NewPath(clock, "p", nil, 0, 0)
	sched := transport.NewSinglePath(clock, path)
	if _, err := NewSession(clock, Config{}, testHead(1, time.Second), sched); err == nil {
		t.Fatal("config without video accepted")
	}
	if _, err := NewSession(clock, Config{Video: testVideo(media.EncodingAVC)}, nil, sched); err == nil {
		t.Fatal("nil head accepted")
	}
	if _, err := NewSession(clock, Config{Video: testVideo(media.EncodingAVC)}, testHead(1, time.Second), nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestFoVGuidedSavesVsAgnostic(t *testing.T) {
	// The §2 headline: at equal quality, FoV-guided fetches far fewer
	// bytes. [16] reports ~45%, [37] 60–80% savings. Quality is held
	// fixed so the byte comparison is apples to apples.
	alg := func() *abr.Fixed { return &abr.Fixed{Q: 4} }
	guided := runSession(t, Config{Video: testVideo(media.EncodingAVC), Mode: FoVGuided, Algorithm: alg()}, 20e6, 3)
	agnostic := runSession(t, Config{Video: testVideo(media.EncodingAVC), Mode: FoVAgnostic, Algorithm: alg()}, 20e6, 3)
	if guided.BytesFetched >= agnostic.BytesFetched {
		t.Fatalf("guided fetched %d ≥ agnostic %d", guided.BytesFetched, agnostic.BytesFetched)
	}
	saving := 1 - float64(guided.BytesFetched)/float64(agnostic.BytesFetched)
	if saving < 0.2 {
		t.Fatalf("saving only %.0f%%, expected ≥20%% with default (conservative) OOS", saving*100)
	}
	// Quality in the FoV must not collapse.
	if guided.QoE.MeanQuality() < agnostic.QoE.MeanQuality()-1.5 {
		t.Fatalf("guided quality %.2f collapsed vs agnostic %.2f",
			guided.QoE.MeanQuality(), agnostic.QoE.MeanQuality())
	}
	// An aggressive OOS policy (thin ring, steep falloff) reaches the
	// savings band prior tile-based systems report (45% [16], 60–80%
	// [37]).
	aggressive := runSession(t, Config{
		Video:     testVideo(media.EncodingAVC),
		Mode:      FoVGuided,
		Algorithm: alg(),
		OOS:       abr.OOSPolicy{MaxRing: 1, QualityDropPerRing: 3},
	}, 20e6, 3)
	aggSaving := 1 - float64(aggressive.BytesFetched)/float64(agnostic.BytesFetched)
	if aggSaving < 0.4 {
		t.Fatalf("aggressive OOS saving %.0f%%, expected ≥40%%", aggSaving*100)
	}
}

func TestFoVGuidedHigherQualityOnTightLink(t *testing.T) {
	// On a link that cannot carry the full panorama at high quality,
	// FoV-guided streaming spends the budget where the user looks.
	guided := runSession(t, Config{Video: testVideo(media.EncodingAVC), Mode: FoVGuided}, 6e6, 4)
	agnostic := runSession(t, Config{Video: testVideo(media.EncodingAVC), Mode: FoVAgnostic}, 6e6, 4)
	if guided.QoE.MeanQuality() <= agnostic.QoE.MeanQuality() {
		t.Fatalf("guided FoV quality %.2f not above agnostic %.2f on a 6 Mbps link",
			guided.QoE.MeanQuality(), agnostic.QoE.MeanQuality())
	}
}

func TestSessionDeterministic(t *testing.T) {
	a := runSession(t, Config{Video: testVideo(media.EncodingAVC)}, 10e6, 7)
	b := runSession(t, Config{Video: testVideo(media.EncodingAVC)}, 10e6, 7)
	if a != b {
		t.Fatalf("same-seed sessions differ:\n%+v\n%+v", a, b)
	}
}

func TestStallsOnStarvedLink(t *testing.T) {
	rep := runSession(t, Config{Video: testVideo(media.EncodingAVC)}, 300e3, 5)
	if rep.QoE.Stalls == 0 && rep.QoE.MeanQuality() > 0.5 {
		t.Fatalf("300 kbps link produced neither stalls nor low quality: %+v", rep.QoE)
	}
}

func TestUpgradesHappenUnderSVC(t *testing.T) {
	cfg := Config{
		Video:          testVideo(media.EncodingSVC),
		Mode:           FoVGuided,
		EnableUpgrades: true,
	}
	rep := runSession(t, cfg, 15e6, 6)
	if rep.Upgrades+rep.UpgradesDeferred+rep.UpgradesSkipped == 0 {
		t.Fatal("upgrade machinery never consulted")
	}
	if rep.Upgrades == 0 {
		t.Fatal("no upgrade ever executed on a fat link with SVC")
	}
}

func TestSVCUpgradesCheaperThanAVC(t *testing.T) {
	// E5's core comparison at session level: under the same conditions,
	// the SVC session wastes fewer bytes on upgrades than AVC re-fetches.
	run := func(enc media.Encoding) Report {
		return runSession(t, Config{
			Video:          testVideo(enc),
			Mode:           FoVGuided,
			EnableUpgrades: true,
		}, 15e6, 8)
	}
	svc := run(media.EncodingSVC)
	avc := run(media.EncodingAVC)
	if svc.Upgrades == 0 || avc.Upgrades == 0 {
		t.Skipf("upgrades: svc=%d avc=%d — scenario produced none", svc.Upgrades, avc.Upgrades)
	}
	if svc.QoE.WasteRatio() >= avc.QoE.WasteRatio() {
		t.Fatalf("SVC waste ratio %.3f not below AVC %.3f",
			svc.QoE.WasteRatio(), avc.QoE.WasteRatio())
	}
}

func TestUrgentFetchesOnHMPCorrections(t *testing.T) {
	cfg := Config{
		Video:          testVideo(media.EncodingAVC),
		Mode:           FoVGuided,
		EnableUpgrades: true,
		OOS:            abr.OOSPolicy{MaxRing: 1},
	}
	rep := runSession(t, cfg, 15e6, 9)
	// With thin OOS coverage and a moving head some corrections are
	// inevitable.
	if rep.UrgentFetches == 0 {
		t.Log("no urgent fetches this seed; trying a faster head")
		// A deliberately erratic viewer must trigger corrections.
		clock := sim.NewClock(99)
		path := netem.NewPath(clock, "net", netem.Constant(15e6), 20*time.Millisecond, 0)
		sched := transport.NewSinglePath(clock, path)
		rng := rand.New(rand.NewSource(99))
		att := trace.GenerateAttention(rand.New(rand.NewSource(98)), 40*time.Second)
		head := trace.Generate(rng, trace.UserProfile{ID: "fast", SpeedScale: 2.2}, att, 40*time.Second)
		s, err := NewSession(clock, cfg, head, sched)
		if err != nil {
			t.Fatal(err)
		}
		rep = s.Run()
		if rep.UrgentFetches == 0 {
			t.Fatal("even an erratic viewer triggered no urgent fetches")
		}
	}
}

func TestCrowdHeatmapReducesFetchVolume(t *testing.T) {
	// §3.2: crowd statistics prune OOS tiles nobody looks at, cutting
	// fetch volume without hurting FoV quality.
	v := testVideo(media.EncodingAVC)
	dur := v.Duration + 10*time.Second
	rng := rand.New(rand.NewSource(21))
	att := trace.GenerateAttention(rand.New(rand.NewSource(522)), dur)
	pop := trace.NewPopulation(rng, 10)
	sessions := pop.Sessions(rng, att, dur)
	heat := hmp.BuildHeatmap(v.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
		v.ChunkDuration, v.Duration, sessions)

	// The viewer watches the same video (same attention schedule).
	// Compare crowd pruning on vs off under the same heatmap: pruning
	// must cut fetch volume without collapsing FoV quality.
	run := func(minProb float64) Report {
		clock := sim.NewClock(22)
		path := netem.NewPath(clock, "net", netem.Constant(20e6), 20*time.Millisecond, 0)
		sched := transport.NewSinglePath(clock, path)
		head := trace.Generate(rand.New(rand.NewSource(23)),
			trace.UserProfile{ID: "viewer", SpeedScale: 1}, att, dur)
		cfg := Config{
			Video:   v,
			Mode:    FoVGuided,
			Heatmap: heat,
			OOS:     abr.OOSPolicy{MaxRing: 3, MinCrowdProb: minProb},
		}
		s, err := NewSession(clock, cfg, head, sched)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	pruned := run(0.2)
	unpruned := run(0)
	if pruned.BytesFetched >= unpruned.BytesFetched {
		t.Fatalf("crowd pruning did not reduce fetch volume: %d vs %d",
			pruned.BytesFetched, unpruned.BytesFetched)
	}
	if pruned.QoE.MeanQuality() < unpruned.QoE.MeanQuality()-1 {
		t.Fatalf("crowd pruning collapsed quality: %.2f vs %.2f",
			pruned.QoE.MeanQuality(), unpruned.QoE.MeanQuality())
	}
}

func TestModeString(t *testing.T) {
	if FoVGuided.String() != "fov-guided" || FoVAgnostic.String() != "fov-agnostic" {
		t.Fatal("bad mode strings")
	}
}

func TestCloudletTranscodingAddsLatencyNotFailure(t *testing.T) {
	// §3.1.1 offloading: a LAN cloudlet transcodes SVC→AVC per chunk.
	// A fast cloudlet must not hurt the session; a pathological one
	// (slower than realtime) must show up as stalls or blanks.
	base := Config{Video: testVideo(media.EncodingSVC), Mode: FoVGuided}
	noCloudlet := runSession(t, base, 15e6, 12)

	withFast := base
	withFast.Cloudlet = &codec.DefaultCloudlet
	fast := runSession(t, withFast, 15e6, 12)
	if fast.QoE.Stalls > noCloudlet.QoE.Stalls+1 {
		t.Fatalf("fast cloudlet added stalls: %d vs %d", fast.QoE.Stalls, noCloudlet.QoE.Stalls)
	}
	if fast.QoE.MeanQuality() < noCloudlet.QoE.MeanQuality()-0.5 {
		t.Fatalf("fast cloudlet collapsed quality: %.2f vs %.2f",
			fast.QoE.MeanQuality(), noCloudlet.QoE.MeanQuality())
	}

	withSlow := base
	withSlow.Cloudlet = &codec.Transcoder{Latency: 3 * time.Second, ByteRate: 1 << 18}
	slow := runSession(t, withSlow, 15e6, 12)
	degraded := slow.QoE.Stalls > fast.QoE.Stalls ||
		slow.QoE.BlankTime > fast.QoE.BlankTime ||
		slow.QoE.MeanQuality() < fast.QoE.MeanQuality()
	if !degraded {
		t.Fatal("a slower-than-realtime cloudlet had no visible effect")
	}
}

func TestCloudletIgnoredForAVC(t *testing.T) {
	cfg := Config{Video: testVideo(media.EncodingAVC), Mode: FoVGuided}
	cfg.Cloudlet = &codec.Transcoder{Latency: time.Hour} // absurd, must be bypassed
	rep := runSession(t, cfg, 15e6, 13)
	if rep.QoE.PlayTime != 30*time.Second || rep.QoE.MeanQuality() <= 0 {
		t.Fatalf("AVC session routed through the cloudlet: %+v", rep.QoE)
	}
}

func TestDecodeStageWithDevice(t *testing.T) {
	// With the Fig. 4 decode stage enabled on a capable device, the
	// session plays normally and the decode pipeline is exercised.
	dev := codec.SGS7
	cfg := Config{
		Video:  testVideo(media.EncodingAVC),
		Mode:   FoVGuided,
		Device: &dev,
	}
	rep := runSession(t, cfg, 15e6, 14)
	if rep.QoE.PlayTime != 30*time.Second {
		t.Fatalf("PlayTime = %v with decode stage", rep.QoE.PlayTime)
	}
	// A modern pool keeps up: re-decode hiccups should be rare.
	if rep.SyncRedecodeTime > 2*time.Second {
		t.Fatalf("sync re-decode time %v on an SGS7", rep.SyncRedecodeTime)
	}

	// A pathological single slow decoder must show up as hiccups.
	slow := codec.DeviceProfile{
		Name:          "potato",
		HWDecoders:    1,
		Decoder:       codec.DecoderSpec{PixelRate: 2e6, SubmitOverhead: 5 * time.Millisecond},
		MaxDisplayFPS: 60,
	}
	cfgSlow := cfg
	cfgSlow.Device = &slow
	cfgSlow.Decoders = 1
	repSlow := runSession(t, cfgSlow, 15e6, 14)
	if repSlow.SyncRedecodes == 0 {
		t.Fatal("a 2 Mpx/s decoder never fell behind a 4x6-tile 360° stream")
	}
	if repSlow.QoE.StallTime <= rep.QoE.StallTime {
		t.Fatalf("slow decoder stall time %v not above SGS7's %v",
			repSlow.QoE.StallTime, rep.QoE.StallTime)
	}
}

func TestSessionOverContentAwareMultipath(t *testing.T) {
	// The session API composes with any transport.Scheduler (§3.3): run
	// a full playback over a WiFi+LTE pair with the content-aware
	// scheduler and confirm it behaves like a healthy session.
	clock := sim.NewClock(15)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 15*time.Millisecond, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(6e6), 45*time.Millisecond, 0.01)
	sched := multipath.NewContentAware(clock, wifi, lte)
	head := testHead(15, 40*time.Second)
	s, err := NewSession(clock, Config{
		Video: testVideo(media.EncodingAVC),
		Mode:  FoVGuided,
	}, head, sched)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()
	if rep.QoE.PlayTime != 30*time.Second {
		t.Fatalf("PlayTime = %v over multipath", rep.QoE.PlayTime)
	}
	if wifi.BytesMoved() == 0 {
		t.Fatal("wifi path unused")
	}
	if lte.BytesMoved() == 0 {
		t.Fatal("lte path unused (OOS chunks should ride it)")
	}
	// Combined capacity beats either single path: quality must be decent.
	if rep.QoE.MeanQuality() < 1 {
		t.Fatalf("multipath session quality %.2f", rep.QoE.MeanQuality())
	}
}

func TestHybridSessionMixesEncodings(t *testing.T) {
	cfg := Config{
		Video:          testVideo(media.EncodingSVC),
		Mode:           FoVGuided,
		EnableUpgrades: true,
		HybridSVC:      true,
	}
	rep := runSession(t, cfg, 15e6, 16)
	if rep.HybridAVCFetches == 0 || rep.HybridSVCFetches == 0 {
		t.Fatalf("hybrid session did not mix encodings: AVC=%d SVC=%d",
			rep.HybridAVCFetches, rep.HybridSVCFetches)
	}
	// FoV tiles (low upgrade probability) should mostly go AVC.
	if rep.HybridAVCFetches < rep.HybridSVCFetches/4 {
		t.Fatalf("suspicious hybrid split: AVC=%d SVC=%d",
			rep.HybridAVCFetches, rep.HybridSVCFetches)
	}
}

func TestHybridNoCheaperThanPureAlternatives(t *testing.T) {
	// §3.1.2: the hybrid avoids the SVC overhead where upgrades are
	// unlikely. Its wire usage must not exceed pure SVC's.
	run := func(hybrid bool, enc media.Encoding) Report {
		return runSession(t, Config{
			Video:          testVideo(enc),
			Mode:           FoVGuided,
			EnableUpgrades: true,
			HybridSVC:      hybrid,
		}, 15e6, 17)
	}
	hybrid := run(true, media.EncodingSVC)
	pureSVC := run(false, media.EncodingSVC)
	if hybrid.BytesFetched > pureSVC.BytesFetched*102/100 {
		t.Fatalf("hybrid fetched %d > pure SVC %d", hybrid.BytesFetched, pureSVC.BytesFetched)
	}
	if hybrid.QoE.MeanQuality() < pureSVC.QoE.MeanQuality()-0.5 {
		t.Fatalf("hybrid quality %.2f collapsed vs pure SVC %.2f",
			hybrid.QoE.MeanQuality(), pureSVC.QoE.MeanQuality())
	}
}

func TestHybridIgnoredOutsideSVCGuided(t *testing.T) {
	// Hybrid is meaningless on AVC videos or FoV-agnostic sessions.
	rep := runSession(t, Config{
		Video:     testVideo(media.EncodingAVC),
		Mode:      FoVGuided,
		HybridSVC: true,
	}, 15e6, 18)
	if rep.HybridAVCFetches+rep.HybridSVCFetches != 0 {
		t.Fatal("hybrid decisions on an AVC video")
	}
}

func TestBandwidthBudgetCapsUsage(t *testing.T) {
	// §3.1.2: "the bandwidth budget configured by the user". On a fat
	// link, a 4 Mbps budget must keep the session's rate near 4 Mbps.
	unbudgeted := runSession(t, Config{
		Video: testVideo(media.EncodingAVC),
		Mode:  FoVGuided,
	}, 50e6, 19)
	budgeted := runSession(t, Config{
		Video:           testVideo(media.EncodingAVC),
		Mode:            FoVGuided,
		BandwidthBudget: 4e6,
	}, 50e6, 19)
	if budgeted.BytesFetched >= unbudgeted.BytesFetched {
		t.Fatalf("budget did not cap usage: %d vs %d",
			budgeted.BytesFetched, unbudgeted.BytesFetched)
	}
	// 30 s at 4 Mbps = 15 MB; allow slack for urgent corrections.
	if budgeted.BytesFetched > 20e6 {
		t.Fatalf("budgeted session used %.1f MB against a 4 Mbps budget",
			float64(budgeted.BytesFetched)/1e6)
	}
	// The budget bounds spend, not correctness: FoV quality must stay in
	// a sane band (a stable cap can even beat a noisy estimator).
	if budgeted.QoE.MeanQuality() < unbudgeted.QoE.MeanQuality()-2 {
		t.Fatalf("budgeted quality collapsed: %.2f vs %.2f",
			budgeted.QoE.MeanQuality(), unbudgeted.QoE.MeanQuality())
	}
}

func TestKitchenSinkLongSession(t *testing.T) {
	// Everything at once, for five minutes: SVC + hybrid + upgrades +
	// crowd heatmap + speed bound + bandwidth budget + device decode
	// stage + content-aware multipath on fluctuating links. The point is
	// robustness: the full feature matrix must compose and finish with a
	// sane report.
	v := testVideo(media.EncodingSVC)
	v.Duration = 5 * time.Minute
	dur := v.Duration + 15*time.Second

	clock := sim.NewClock(99)
	wifi := netem.NewPath(clock, "wifi",
		netem.WiFiTrace(clock.RNG("wifi"), 14e6, time.Second, dur), 15*time.Millisecond, 0.002)
	lte := netem.NewPath(clock, "lte",
		netem.LTETrace(clock.RNG("lte"), 8e6, time.Second, dur), 45*time.Millisecond, 0.015)
	sched := multipath.NewContentAware(clock, wifi, lte)

	att := trace.GenerateAttention(rand.New(rand.NewSource(98)), dur)
	pop := trace.NewPopulation(rand.New(rand.NewSource(97)), 8)
	sessions := pop.Sessions(rand.New(rand.NewSource(96)), att, dur)
	heat := hmp.BuildHeatmap(v.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
		v.ChunkDuration, v.Duration, sessions)
	user := trace.UserProfile{ID: "sink", SpeedScale: 1.2}
	head := trace.Generate(rand.New(rand.NewSource(95)), user, att, dur)
	dev := codec.SGS7

	s, err := NewSession(clock, Config{
		Video:           v,
		Mode:            FoVGuided,
		EnableUpgrades:  true,
		HybridSVC:       true,
		Heatmap:         heat,
		SpeedBound:      hmp.LearnSpeedBound(sessions),
		BandwidthBudget: 10e6,
		Device:          &dev,
		Cloudlet:        &codec.DefaultCloudlet,
		OOS:             abr.OOSPolicy{MaxRing: 2, MinCrowdProb: 0.1},
	}, head, sched)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()
	if rep.QoE.PlayTime != v.Duration {
		t.Fatalf("played %v of %v", rep.QoE.PlayTime, v.Duration)
	}
	if rep.QoE.MeanQuality() < 1 {
		t.Fatalf("mean quality %.2f over five minutes", rep.QoE.MeanQuality())
	}
	if rep.QoE.StallRatio() > 0.1 {
		t.Fatalf("stall ratio %.2f", rep.QoE.StallRatio())
	}
	if rep.BytesFetched > int64(10e6/8*float64(v.Duration/time.Second))*13/10 {
		t.Fatalf("budget blown: %.1f MB", float64(rep.BytesFetched)/1e6)
	}
	if rep.Upgrades == 0 || rep.HybridSVCFetches == 0 {
		t.Fatalf("feature matrix inert: upgrades=%d hybridSVC=%d",
			rep.Upgrades, rep.HybridSVCFetches)
	}
}

func TestObserverEventStream(t *testing.T) {
	var events []Event
	cfg := Config{
		Video:          testVideo(media.EncodingSVC),
		Mode:           FoVGuided,
		EnableUpgrades: true,
		Observer:       func(e Event) { events = append(events, e) },
	}
	clock := sim.NewClock(20)
	path := netem.NewPath(clock, "net", netem.Constant(15e6), 20*time.Millisecond, 0)
	sched := transport.NewSinglePath(clock, path)
	head := testHead(20, 40*time.Second)
	s, err := NewSession(clock, cfg, head, sched)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()

	counts := map[EventKind]int{}
	var last time.Duration
	for _, e := range events {
		if e.At < last {
			t.Fatalf("events out of order: %v after %v", e.At, last)
		}
		last = e.At
		counts[e.Kind]++
	}
	nChunks := cfg.Video.NumChunks()
	if counts[EventPlanned] != nChunks {
		t.Fatalf("planned events %d, want %d", counts[EventPlanned], nChunks)
	}
	if counts[EventPlay] != nChunks {
		t.Fatalf("play events %d, want %d", counts[EventPlay], nChunks)
	}
	if counts[EventFetched] == 0 {
		t.Fatal("no fetch events")
	}
	if counts[EventUpgraded] != rep.Upgrades {
		t.Fatalf("upgrade events %d, report says %d", counts[EventUpgraded], rep.Upgrades)
	}
	if counts[EventStall] != rep.QoE.Stalls {
		t.Fatalf("stall events %d, report says %d", counts[EventStall], rep.QoE.Stalls)
	}
}

func TestEventStrings(t *testing.T) {
	for _, e := range []Event{
		{Kind: EventPlanned, Interval: 3, Quality: 4},
		{Kind: EventFetched, Interval: 1, Tile: 5, Quality: 2, Bytes: 100},
		{Kind: EventStall, Interval: 2, Dur: time.Second},
		{Kind: EventPlay, Interval: 2, Quality: 3},
	} {
		if e.String() == "" {
			t.Fatalf("empty string for %v", e.Kind)
		}
	}
	if EventKind(99).String() != "event(99)" {
		t.Fatal("unknown kind string")
	}
}

// BenchmarkFullSession measures the cost of one complete 30s FoV-guided
// session on the simulator — the unit every experiment multiplies.
func BenchmarkFullSession(b *testing.B) {
	v := testVideo(media.EncodingAVC)
	att := trace.GenerateAttention(rand.New(rand.NewSource(2)), 40*time.Second)
	head := trace.Generate(rand.New(rand.NewSource(1)), trace.UserProfile{ID: "b", SpeedScale: 1}, att, 40*time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := sim.NewClock(1)
		path := netem.NewPath(clock, "net", netem.Constant(15e6), 20*time.Millisecond, 0)
		s, err := NewSession(clock, Config{Video: v, Mode: FoVGuided}, head,
			transport.NewSinglePath(clock, path))
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

func TestSuperChunkKeepsFoVVarianceLow(t *testing.T) {
	// §3.1.2 part one: all chunks within a super chunk share one quality
	// so the FoV looks uniform. With good prediction, the within-FoV
	// variance stays far below the ladder's spread; it grows only when
	// OOS tiles (fetched a level lower) drift into view.
	rep := runSession(t, Config{Video: testVideo(media.EncodingAVC), Mode: FoVGuided}, 20e6, 21)
	v := rep.QoE.MeanFoVVariance()
	if v < 0 {
		t.Fatalf("negative variance %v", v)
	}
	// A uniform-quality FoV would be 0; OOS drift adds some. More than
	// 2.0 would mean the super-chunk constraint is broken.
	if v > 2.0 {
		t.Fatalf("within-FoV quality variance %v — super chunks not uniform", v)
	}
}

func TestEncodedCacheBudget(t *testing.T) {
	// Fig. 4's main-memory chunk cache: a generous budget changes
	// nothing; a starved one evicts prefetched chunks before they play,
	// forcing rush re-fetches and waste.
	base := Config{Video: testVideo(media.EncodingAVC), Mode: FoVGuided}
	roomy := base
	roomy.EncodedCacheBytes = 256 << 20
	r1 := runSession(t, base, 20e6, 23)
	r2 := runSession(t, roomy, 20e6, 23)
	if r1.QoE.PlayTime != r2.QoE.PlayTime {
		t.Fatalf("roomy cache changed playback: %v vs %v", r2.QoE.PlayTime, r1.QoE.PlayTime)
	}
	if r2.BytesFetched > r1.BytesFetched*101/100 {
		t.Fatalf("roomy cache inflated fetches: %d vs %d", r2.BytesFetched, r1.BytesFetched)
	}

	starved := base
	starved.EncodedCacheBytes = 64 << 10 // 64 KiB: a handful of tiles
	r3 := runSession(t, starved, 20e6, 23)
	if r3.QoE.PlayTime != 30*time.Second {
		t.Fatalf("starved cache broke playback: %v", r3.QoE.PlayTime)
	}
	if r3.UrgentFetches <= r1.UrgentFetches {
		t.Fatalf("starved cache caused no rush re-fetches: %d vs %d",
			r3.UrgentFetches, r1.UrgentFetches)
	}
	// Evictions force play-time rushes at base quality: the viewer sees
	// worse frames than with a healthy cache.
	if r3.QoE.MeanQuality() >= r1.QoE.MeanQuality() {
		t.Fatalf("starved cache cost no quality: %.2f vs %.2f",
			r3.QoE.MeanQuality(), r1.QoE.MeanQuality())
	}
}

func TestRunIsIdempotent(t *testing.T) {
	clock := sim.NewClock(30)
	path := netem.NewPath(clock, "net", netem.Constant(20e6), 20*time.Millisecond, 0)
	s, err := NewSession(clock, Config{Video: testVideo(media.EncodingAVC)},
		testHead(30, 40*time.Second), transport.NewSinglePath(clock, path))
	if err != nil {
		t.Fatal(err)
	}
	first := s.Run()
	second := s.Run()
	if first != second {
		t.Fatal("second Run changed the report")
	}
}

func TestMaxStallPlaysWithBlanks(t *testing.T) {
	// A link that dies mid-session: rush fetches cannot complete, so
	// after MaxStall the interval plays with blank tiles instead of
	// hanging forever.
	clock := sim.NewClock(31)
	dead := netem.MustSteps(
		netem.Step{Start: 0, BPS: 20e6},
		netem.Step{Start: 8 * time.Second, BPS: 0},
	)
	path := netem.NewPath(clock, "dying", dead, 20*time.Millisecond, 0)
	cfg := Config{
		Video:    testVideo(media.EncodingAVC),
		Mode:     FoVGuided,
		MaxStall: 2 * time.Second,
	}
	s, err := NewSession(clock, cfg, testHead(31, 40*time.Second), transport.NewSinglePath(clock, path))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Report, 1)
	go func() { done <- s.Run() }()
	var rep Report
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("session hung on a dead link")
	}
	if rep.QoE.PlayTime != 30*time.Second {
		t.Fatalf("playback did not complete: %v", rep.QoE.PlayTime)
	}
	if rep.QoE.BlankTime == 0 {
		t.Fatal("dead link produced no blank time")
	}
	if rep.QoE.Stalls == 0 {
		t.Fatal("dead link produced no stalls")
	}
}

// Package core is Sperke itself: the FoV-guided adaptive streaming
// session that ties the substrates together exactly as Fig. 4 sketches.
// Head sensor samples feed the HMP predictor; the fetching scheduler
// turns predictions into super chunks, OOS rings and upgrade decisions
// (§3.1); the transport scheduler moves them over one or more network
// paths (§3.3); and the playback stage renders whatever arrived,
// accounting QoE.
//
// The session runs on the deterministic simulation clock, so identical
// configurations reproduce identical reports — the property every
// experiment in EXPERIMENTS.md relies on.
package core

import (
	"context"
	"fmt"
	"time"

	"sperke/internal/abr"
	"sperke/internal/codec"
	"sperke/internal/hmp"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/player"
	"sperke/internal/qoe"
	"sperke/internal/sim"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

// StreamMode selects the delivery strategy.
type StreamMode int

// Modes.
const (
	// FoVGuided fetches the predicted FoV at high quality plus OOS rings
	// — Sperke's approach.
	FoVGuided StreamMode = iota
	// FoVAgnostic always fetches the full panorama — today's YouTube/
	// Facebook behaviour the paper contrasts against (§2).
	FoVAgnostic
)

func (m StreamMode) String() string {
	if m == FoVAgnostic {
		return "fov-agnostic"
	}
	return "fov-guided"
}

// Config describes one streaming session.
type Config struct {
	Video      *media.Video
	Projection sphere.Projection
	FoV        sphere.FoV
	Mode       StreamMode
	// Algorithm is the regular VRA applied to super chunks (§3.1.2 part
	// one); nil defaults to Throughput.
	Algorithm abr.Algorithm
	// OOS parameterizes out-of-sight fetching (part two).
	OOS abr.OOSPolicy
	// EnableUpgrades turns on incremental chunk upgrades (part three);
	// Upgrades tunes them.
	EnableUpgrades bool
	Upgrades       abr.UpgradePolicy
	// HybridSVC enables the §3.1.2 closing extension on an SVC video:
	// the server keeps both SVC and AVC forms of every chunk, and each
	// fetch picks the cheaper expected encoding — AVC for chunks
	// unlikely to be upgraded (dodging the SVC overhead), SVC where an
	// upgrade is probable.
	HybridSVC bool
	// NewPredictor builds the HMP; nil defaults to linear regression.
	NewPredictor func() hmp.Predictor
	// Heatmap, if set, informs OOS selection with crowd statistics
	// (§3.2).
	Heatmap *hmp.Heatmap
	// SpeedBound, if positive, prunes unreachable OOS tiles (§3.2).
	SpeedBound float64
	// BandwidthBudget, if positive, caps the session's planned rate in
	// bits/s — §3.1.2's "bandwidth budget configured by the user", e.g.
	// a metered cellular plan. The FoV super chunk is planned within it
	// and OOS fetching spends only what remains.
	BandwidthBudget float64
	// PredictionWindow bounds prefetching: content further ahead than
	// this is not planned (HMP has nothing to say about it). Zero
	// defaults to 2 s.
	PredictionWindow time.Duration
	// MaxStall caps one rebuffering wait; after it the interval plays
	// with blank tiles. Zero defaults to 10 s.
	MaxStall time.Duration
	// Cloudlet, when set on an SVC video, models the §3.1.1 offloading
	// path: phones lack hardware SVC decoders, so a nearby cloudlet
	// transcodes each delivered SVC chunk to AVC before the player can
	// decode it, adding its processing time to every delivery.
	Cloudlet *codec.Transcoder
	// Device, when set, simulates the client decode stage of Fig. 4:
	// delivered chunks pass through the device's hardware decoder pool
	// into the decoded-frame cache before playback; a tile reaching its
	// play time undecoded costs a synchronous re-decode hiccup (§3.5).
	Device *codec.DeviceProfile
	// Decoders bounds the parallel decoder count when Device is set;
	// 0 uses min(8, the device's hardware decoders).
	Decoders int
	// Observer, when set, receives a structured Event for every step of
	// the session — planning, fetches, upgrades, plays, stalls — for
	// timelines and debugging. Called synchronously on the sim clock.
	Observer func(Event)
	// EncodedCacheBytes bounds the main-memory encoded-chunk cache of
	// Fig. 4. Chunks evicted before they play are lost and must be
	// rushed again at play time. 0 means unlimited.
	EncodedCacheBytes int64
	// Obs, when set, wires the session's player-side components (chunk
	// cache, frame cache, decode scheduler) into a metrics registry so
	// decode-deadline outcomes and cache hit ratios are observable
	// outside test assertions. Nil disables metrics.
	Obs *obs.Registry
}

func (c *Config) withDefaults() error {
	if c.Video == nil {
		return fmt.Errorf("core: config has no video")
	}
	if err := c.Video.Validate(); err != nil {
		return err
	}
	if c.Projection == nil {
		c.Projection = sphere.Equirectangular{}
	}
	if c.FoV == (sphere.FoV{}) {
		c.FoV = sphere.DefaultFoV
	}
	if c.Algorithm == nil {
		c.Algorithm = &abr.Throughput{}
	}
	if c.NewPredictor == nil {
		c.NewPredictor = func() hmp.Predictor { return &hmp.LinearRegression{} }
	}
	if c.PredictionWindow <= 0 {
		c.PredictionWindow = 2 * time.Second
	}
	if c.MaxStall <= 0 {
		c.MaxStall = 10 * time.Second
	}
	return nil
}

// Report is the outcome of a session.
type Report struct {
	QoE qoe.Metrics
	// BytesFetched is total wire usage; BytesWasted the share never
	// rendered.
	BytesFetched, BytesWasted int64
	// Upgrades counts incremental upgrades executed; UpgradesDeferred
	// and UpgradesSkipped the other outcomes (§3.1.2 part three).
	Upgrades, UpgradesDeferred, UpgradesSkipped int
	// UrgentFetches counts HMP corrections that needed a rush fetch
	// (Table 1 "urgent chunks").
	UrgentFetches int
	// SyncRedecodes counts tiles that reached their play time before the
	// decode pipeline finished them (§3.5); SyncRedecodeTime is the
	// render hiccup they cost.
	SyncRedecodes    int
	SyncRedecodeTime time.Duration
	// HybridAVCFetches and HybridSVCFetches count per-chunk encoding
	// decisions in hybrid sessions (§3.1.2 extension).
	HybridAVCFetches, HybridSVCFetches int
	// StartupDelay is the time before the first frame.
	StartupDelay time.Duration
}

// tileState tracks one (interval, tile) download.
type tileState struct {
	quality int // -1 = not downloaded
	bytes   int64
	pending bool // a fetch or upgrade is in flight
	// enc is the encoding the tile was fetched in (hybrid sessions mix
	// them; otherwise it is the video's encoding).
	enc media.Encoding
}

// Session drives one playback. Create with NewSession, run with Run.
type Session struct {
	clock *sim.Clock
	cfg   Config
	head  *trace.HeadTrace
	sched transport.Scheduler

	col       qoe.Collector
	est       netem.ThroughputEstimator
	predictor hmp.Predictor
	fedIdx    int

	pool   *codec.Pool
	fcache *player.FrameCache
	dsched *player.DecodeScheduler
	ccache *player.ChunkCache

	state       map[int]map[tiling.TileID]*tileState
	planned     map[int]bool
	fovQuality  map[int]int
	visibleEver map[int]map[tiling.TileID]bool

	playIdx      int
	nextPlayWall time.Duration
	started      bool
	ran          bool
	ctx          context.Context

	rep Report
}

// SessionOption configures a Session at construction without growing
// NewSession's positional parameter list — the hooks (metrics, event
// observers) that used to be Config fields callers had to know about.
type SessionOption func(*Config)

// WithObs wires the session's player-side components and final report
// into a metrics registry (equivalent to setting Config.Obs).
func WithObs(r *obs.Registry) SessionOption {
	return func(c *Config) { c.Obs = r }
}

// WithObserver attaches a structured-event observer (equivalent to
// setting Config.Observer).
func WithObserver(fn func(Event)) SessionOption {
	return func(c *Config) { c.Observer = fn }
}

// NewSession builds a session. head is the viewer's actual head
// movement; sched delivers chunk requests (single-path or multipath).
// Options apply on top of cfg, overriding the matching fields.
func NewSession(clock *sim.Clock, cfg Config, head *trace.HeadTrace, sched transport.Scheduler, opts ...SessionOption) (*Session, error) {
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if head == nil {
		return nil, fmt.Errorf("core: session needs a head trace")
	}
	if sched == nil {
		return nil, fmt.Errorf("core: session needs a transport scheduler")
	}
	s := &Session{
		clock:       clock,
		cfg:         cfg,
		head:        head,
		sched:       sched,
		est:         &netem.HarmonicMean{},
		predictor:   cfg.NewPredictor(),
		state:       make(map[int]map[tiling.TileID]*tileState),
		planned:     make(map[int]bool),
		fovQuality:  make(map[int]int),
		visibleEver: make(map[int]map[tiling.TileID]bool),
	}
	if cfg.EncodedCacheBytes > 0 {
		s.ccache = player.NewChunkCache(cfg.EncodedCacheBytes)
		if cfg.Obs != nil {
			s.ccache.SetObs(cfg.Obs)
		}
	}
	if cfg.Device != nil {
		n := cfg.Decoders
		if n <= 0 {
			n = 8
		}
		if n > cfg.Device.HWDecoders {
			n = cfg.Device.HWDecoders
		}
		s.pool = codec.NewPool(clock, cfg.Device.Decoder, n)
		s.fcache = player.NewFrameCache(4 * cfg.Video.Grid.Tiles())
		s.dsched = player.NewDecodeScheduler(clock, s.pool, s.fcache)
		if cfg.Obs != nil {
			s.fcache.SetObs(cfg.Obs)
			s.dsched.SetObs(cfg.Obs)
		}
	}
	return s, nil
}

// tilePixels returns one tile's luma pixels at a ladder quality.
func (s *Session) tilePixels(q int) int64 {
	if q < 0 || q >= len(s.cfg.Video.Ladder) {
		return 0
	}
	return int64(s.cfg.Video.Ladder[q].Pixels() / s.cfg.Video.Grid.Tiles())
}

// submitDecode queues a delivered tile chunk for decoding (Fig. 4's
// decoding scheduler); a no-op when no device is configured.
func (s *Session) submitDecode(i int, id tiling.TileID, q int, inFoV bool) {
	if s.dsched == nil {
		return
	}
	s.dsched.Submit(player.DecodeJob{
		Key:    player.FrameCacheKey{Tile: id, Interval: i, Quality: q},
		Pixels: s.tilePixels(q),
		PlayAt: s.deadlineWall(i),
		InFoV:  inFoV,
	})
}

// Run plays the whole video and returns the report. It drives the
// clock until the session completes. A session runs once; further
// calls return the same report.
func (s *Session) Run() Report { return s.RunContext(context.Background()) }

// RunContext is Run under a caller context: cancellation is observed at
// the session's planning and playback ticks — the clock halts, pending
// fetches are shed by context-aware schedulers, and the partial report
// accumulated so far is returned. The context does not alter any
// behaviour while it stays live, so RunContext(Background) is
// byte-identical to Run.
func (s *Session) RunContext(ctx context.Context) Report {
	if s.ran {
		return s.rep
	}
	s.ran = true
	s.ctx = ctx
	s.nextPlayWall = 0
	s.schedulePlanner()
	s.clock.Schedule(s.clock.Now(), func() { s.playInterval(0, s.clock.Now()) })
	s.clock.Run()
	s.accountWaste()
	s.rep.QoE = s.col.Metrics()
	s.publishReport()
	return s.rep
}

// canceled reports whether the session's context is done; checked at
// event boundaries on the sim thread (sim.Clock itself is not safe for
// cross-goroutine Halt).
func (s *Session) canceled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// publishReport mirrors the finished session's report into the metrics
// registry (core.session.*). Counters add across sessions, so a bench
// run over many sessions accumulates aggregate totals.
func (s *Session) publishReport() {
	r := s.cfg.Obs
	if r == nil {
		return
	}
	r.Counter("core.session.runs").Inc()
	r.Counter("core.session.bytes_fetched").Add(s.rep.BytesFetched)
	r.Counter("core.session.bytes_wasted").Add(s.rep.BytesWasted)
	r.Counter("core.session.urgent_fetches").Add(int64(s.rep.UrgentFetches))
	r.Counter("core.session.upgrades").Add(int64(s.rep.Upgrades))
	r.Counter("core.session.sync_redecodes").Add(int64(s.rep.SyncRedecodes))
	r.Counter("core.session.stalls").Add(int64(s.rep.QoE.Stalls))
	r.Histogram("core.session.startup_ms").Observe(
		float64(s.rep.StartupDelay) / float64(time.Millisecond))
	r.Histogram("core.session.stall_ms").Observe(
		float64(s.rep.QoE.StallTime) / float64(time.Millisecond))
	r.Histogram("core.session.mean_fov_quality").Observe(s.rep.QoE.MeanQuality())
}

// ---- bookkeeping helpers ----

func (s *Session) tile(i int, id tiling.TileID) *tileState {
	m, ok := s.state[i]
	if !ok {
		m = make(map[tiling.TileID]*tileState)
		s.state[i] = m
	}
	ts, ok := m[id]
	if !ok {
		ts = &tileState{quality: -1, enc: s.cfg.Video.Encoding}
		m[id] = ts
	}
	return ts
}

// feedPredictor delivers head samples up to virtual now.
func (s *Session) feedPredictor() {
	now := s.clock.Now()
	for s.fedIdx < len(s.head.Samples) && s.head.Samples[s.fedIdx].At <= now {
		s.predictor.Observe(s.head.Samples[s.fedIdx])
		s.fedIdx++
	}
}

// deadlineWall projects the wall time interval i will start playing.
func (s *Session) deadlineWall(i int) time.Duration {
	ahead := i - s.playIdx
	if ahead < 0 {
		ahead = 0
	}
	return s.nextPlayWall + time.Duration(ahead)*s.cfg.Video.ChunkDuration
}

// bufferLevel estimates playable content ahead of the playhead:
// consecutive planned intervals whose FoV tiles all arrived.
func (s *Session) bufferLevel() time.Duration {
	n := 0
	for i := s.playIdx; i < s.cfg.Video.NumChunks(); i++ {
		if !s.intervalReady(i) {
			break
		}
		n++
	}
	return time.Duration(n) * s.cfg.Video.ChunkDuration
}

// intervalReady reports whether all planned FoV tiles of interval i are
// downloaded.
func (s *Session) intervalReady(i int) bool {
	if !s.planned[i] {
		return false
	}
	for _, ts := range s.state[i] {
		if ts.pending && ts.quality < 0 {
			return false
		}
	}
	// At least one tile must exist (planning always creates some).
	return len(s.state[i]) > 0
}

// ---- planning (the fetching scheduler of Fig. 4) ----

func (s *Session) schedulePlanner() {
	const tick = 250 * time.Millisecond
	var loop func()
	loop = func() {
		if s.canceled() {
			s.clock.Halt()
			return
		}
		if s.playIdx >= s.cfg.Video.NumChunks() {
			return // session over
		}
		s.planAhead()
		if s.cfg.EnableUpgrades && s.cfg.Mode == FoVGuided {
			s.checkUpgrades()
		}
		s.clock.After(tick, loop)
	}
	s.clock.Schedule(s.clock.Now(), loop)
}

// planAhead plans every unplanned interval starting within the
// prediction window.
func (s *Session) planAhead() {
	v := s.cfg.Video
	now := s.clock.Now()
	for i := s.playIdx; i < v.NumChunks(); i++ {
		if s.planned[i] {
			continue
		}
		deadline := s.deadlineWall(i)
		if deadline > now+s.cfg.PredictionWindow+v.ChunkDuration {
			break
		}
		s.planInterval(i, deadline)
	}
}

func (s *Session) planInterval(i int, deadline time.Duration) {
	v := s.cfg.Video
	s.planned[i] = true
	contentMid := v.ChunkStart(i) + v.ChunkDuration/2

	s.feedPredictor()
	// The predictor is asked for the view at the interval's projected
	// wall deadline: while playback is realtime, wall time and content
	// time advance together, so this is the head position when the
	// interval displays.
	pred := s.predictor.Predict(deadline)

	var fovTiles []tiling.TileID
	if s.cfg.Mode == FoVAgnostic {
		for t := tiling.TileID(0); int(t) < v.Grid.Tiles(); t++ {
			fovTiles = append(fovTiles, t)
		}
	} else {
		sc := abr.BuildSuperChunk(v.Grid, s.cfg.Projection, s.cfg.FoV, pred, i, v.ChunkDuration)
		fovTiles = sc.Tiles
	}

	// Part one: regular VRA over the super chunk.
	effectiveBW := s.est.Estimate()
	if s.cfg.BandwidthBudget > 0 && (effectiveBW == 0 || s.cfg.BandwidthBudget < effectiveBW) {
		effectiveBW = s.cfg.BandwidthBudget
	}
	ctx := abr.Context{
		EstimatedBandwidth: effectiveBW,
		Buffer:             s.bufferLevel(),
		MaxBuffer:          s.cfg.PredictionWindow,
		ChunkDuration:      v.ChunkDuration,
		Ladder:             v.Ladder,
		LastQuality:        s.lastQuality(i),
		SizeAt: func(q int) int64 {
			var sum int64
			for _, id := range fovTiles {
				sum += v.FetchBytes(q, id, v.ChunkStart(i))
			}
			return sum
		},
	}
	q := s.cfg.Algorithm.ChooseQuality(ctx)
	s.fovQuality[i] = q
	s.emit(EventPlanned, i, -1, q, 0, 0)

	for _, id := range fovTiles {
		s.submitFetch(i, id, q, transport.ClassFoV, false, 1.0, deadline)
	}

	// Part two: OOS rings (FoV-guided only). Under a user bandwidth
	// budget, OOS fetching spends only what the FoV left over.
	if s.cfg.Mode == FoVGuided {
		oosPolicy := s.cfg.OOS
		if s.cfg.BandwidthBudget > 0 {
			var fovBytes int64
			for _, id := range fovTiles {
				fovBytes += v.FetchBytes(q, id, v.ChunkStart(i))
			}
			remaining := int64(s.cfg.BandwidthBudget*v.ChunkDuration.Seconds()/8) - fovBytes
			if remaining < 0 {
				remaining = 1 // poorest-effort OOS: effectively nothing fits
			}
			if oosPolicy.BudgetBytes == 0 || remaining < oosPolicy.BudgetBytes {
				oosPolicy.BudgetBytes = remaining
			}
		}
		plan := abr.PlanOOS(abr.OOSInput{
			Grid:       v.Grid,
			Projection: s.cfg.Projection,
			FoVTiles:   fovTiles,
			FoVQuality: q,
			Prediction: pred,
			FoV:        s.cfg.FoV,
			Heatmap:    s.cfg.Heatmap,
			At:         contentMid,
			SpeedBound: s.cfg.SpeedBound,
			TimeToPlay: deadline - s.clock.Now(),
			SizeAt: func(tile tiling.TileID, qq int) int64 {
				return v.FetchBytes(qq, tile, v.ChunkStart(i))
			},
		}, oosPolicy)
		for _, tq := range plan {
			s.submitFetch(i, tq.Tile, tq.Quality, transport.ClassOOS, false, tq.Probability, deadline)
		}
	}
}

// lastQuality returns the most recent planned FoV quality before i, or
// -1.
func (s *Session) lastQuality(i int) int {
	for j := i - 1; j >= 0 && j >= i-3; j-- {
		if q, ok := s.fovQuality[j]; ok {
			return q
		}
	}
	return -1
}

// fetchCost returns the bytes to fetch a fresh tile-chunk at quality q
// in a given encoding (hybrid sessions mix encodings per chunk).
func (s *Session) fetchCost(enc media.Encoding, q int, id tiling.TileID, start time.Duration) int64 {
	v := s.cfg.Video
	if enc == media.EncodingSVC {
		return v.CumulativeLayerBytes(q, id, start)
	}
	return v.ChunkBytes(q, id, start)
}

// upgradeCost returns the bytes to raise a fetched tile-chunk from
// quality `from` to `to` given the encoding it was fetched in.
func (s *Session) upgradeCost(enc media.Encoding, from, to int, id tiling.TileID, start time.Duration) int64 {
	v := s.cfg.Video
	if to <= from {
		return 0
	}
	if enc == media.EncodingSVC {
		return v.CumulativeLayerBytes(to, id, start) - v.CumulativeLayerBytes(from, id, start)
	}
	return v.ChunkBytes(to, id, start)
}

// pickEncoding chooses the per-chunk encoding: the video's own in plain
// sessions; the cheaper expected form in hybrid sessions (§3.1.2),
// using the tile's display/upgrade probability.
func (s *Session) pickEncoding(q int, id tiling.TileID, start time.Duration,
	class transport.Class, prob float64) media.Encoding {
	v := s.cfg.Video
	if !s.cfg.HybridSVC || v.Encoding != media.EncodingSVC || s.cfg.Mode != FoVGuided {
		return v.Encoding
	}
	// FoV tiles rarely upgrade (they are already at target); OOS tiles
	// upgrade exactly when they drift into view, i.e. with their display
	// probability.
	upgradeProb := 0.1
	if class == transport.ClassOOS {
		upgradeProb = prob
	}
	to := q + 2
	if to >= v.Qualities() {
		to = v.Qualities() - 1
	}
	enc := abr.HybridChoice(upgradeProb,
		s.fetchCost(media.EncodingAVC, q, id, start),
		s.fetchCost(media.EncodingSVC, q, id, start),
		s.upgradeCost(media.EncodingAVC, q, to, id, start),
		s.upgradeCost(media.EncodingSVC, q, to, id, start))
	if enc == media.EncodingAVC {
		s.rep.HybridAVCFetches++
	} else {
		s.rep.HybridSVCFetches++
	}
	return enc
}

// submit hands a request to the transport scheduler under the
// session's run context, so cancelling RunContext sheds queued fetches
// on context-aware schedulers.
func (s *Session) submit(r *transport.Request) {
	if s.ctx != nil {
		transport.SubmitContext(s.sched, s.ctx, r)
		return
	}
	s.sched.Submit(r)
}

func (s *Session) submitFetch(i int, id tiling.TileID, q int, class transport.Class,
	urgent bool, prob float64, deadline time.Duration) {
	v := s.cfg.Video
	ts := s.tile(i, id)
	if ts.pending || ts.quality >= q {
		return
	}
	ts.pending = true
	start := v.ChunkStart(i)
	enc := s.pickEncoding(q, id, start, class, prob)
	bytes := s.fetchCost(enc, q, id, start)
	if bytes <= 0 {
		ts.pending = false
		return
	}
	if urgent {
		s.rep.UrgentFetches++
		s.emit(EventUrgent, i, id, q, bytes, 0)
	}
	s.submit(&transport.Request{
		Chunk:       tiling.ChunkID{Quality: q, Tile: id, Start: v.ChunkStart(i)},
		Bytes:       bytes,
		Deadline:    deadline,
		Class:       class,
		Urgent:      urgent,
		Probability: prob,
		OnDone: func(d netem.Delivery, met bool) {
			ts.pending = false
			s.est.Add(d.Throughput())
			s.rep.BytesFetched += d.Bytes
			s.col.Fetched(d.Bytes)
			if !d.OK {
				s.col.Wasted(d.Bytes)
				s.rep.BytesWasted += d.Bytes
				s.emit(EventDropped, i, id, q, d.Bytes, 0)
				return // best-effort loss: tile stays at its old quality
			}
			s.emit(EventFetched, i, id, q, d.Bytes, 0)
			s.afterTranscode(d.Bytes, func() {
				if q > ts.quality {
					ts.quality = q
					ts.bytes += d.Bytes
					ts.enc = enc
					if s.ccache != nil {
						s.ccache.Put(tiling.ChunkID{Quality: q, Tile: id, Start: v.ChunkStart(i)}, d.Bytes)
					}
					s.submitDecode(i, id, q, class == transport.ClassFoV)
				}
			})
		},
	})
}

// ---- part three: incremental upgrades ----

func (s *Session) checkUpgrades() {
	v := s.cfg.Video
	now := s.clock.Now()
	s.feedPredictor()
	horizon := 2 * v.ChunkDuration
	for i := s.playIdx; i < v.NumChunks(); i++ {
		deadline := s.deadlineWall(i)
		if deadline <= now {
			continue
		}
		if deadline > now+horizon {
			break
		}
		if !s.planned[i] {
			continue
		}
		pred := s.predictor.Predict(deadline)
		target := s.fovQuality[i]
		prob := 1 - pred.Radius/120
		if prob < 0.05 {
			prob = 0.05
		}
		if prob > 0.99 {
			prob = 0.99
		}
		for _, id := range tiling.VisibleTiles(v.Grid, s.cfg.Projection, pred.View, s.cfg.FoV) {
			ts := s.tile(i, id)
			if ts.pending {
				continue
			}
			if ts.quality < 0 {
				// HMP correction: a tile we never fetched is now expected
				// in view — rush it at base-or-better quality (Table 1
				// urgent chunk).
				q := target - 1
				if q < 0 {
					q = 0
				}
				s.submitFetch(i, id, q, transport.ClassFoV, true, prob, deadline)
				continue
			}
			if ts.quality >= target {
				continue
			}
			req := abr.UpgradeRequest{
				Encoding:           ts.enc,
				BytesNeeded:        s.upgradeCost(ts.enc, ts.quality, target, id, v.ChunkStart(i)),
				TimeToDeadline:     deadline - now,
				DisplayProbability: prob,
				QualityGain:        target - ts.quality,
			}
			switch abr.DecideUpgrade(req, s.est.Estimate(), s.cfg.Upgrades) {
			case abr.UpgradeNow:
				s.executeUpgrade(i, id, ts, target, deadline)
			case abr.UpgradeDefer:
				s.rep.UpgradesDeferred++
			case abr.UpgradeSkip:
				s.rep.UpgradesSkipped++
			}
		}
	}
}

func (s *Session) executeUpgrade(i int, id tiling.TileID, ts *tileState, target int, deadline time.Duration) {
	v := s.cfg.Video
	bytes := s.upgradeCost(ts.enc, ts.quality, target, id, v.ChunkStart(i))
	if bytes <= 0 {
		return
	}
	if ts.enc == media.EncodingAVC {
		// The AVC re-fetch makes the previously downloaded bytes waste —
		// the §3.1.1 mismatch.
		s.col.Wasted(ts.bytes)
		s.rep.BytesWasted += ts.bytes
		ts.bytes = 0
	}
	ts.pending = true
	urgent := deadline-s.clock.Now() < v.ChunkDuration
	s.submit(&transport.Request{
		Chunk:    tiling.ChunkID{Quality: target, Tile: id, Start: v.ChunkStart(i)},
		Bytes:    bytes,
		Deadline: deadline,
		Class:    transport.ClassFoV,
		Urgent:   urgent,
		OnDone: func(d netem.Delivery, met bool) {
			ts.pending = false
			s.est.Add(d.Throughput())
			s.rep.BytesFetched += d.Bytes
			s.col.Fetched(d.Bytes)
			if d.OK {
				s.emit(EventUpgraded, i, id, target, d.Bytes, 0)
				s.afterTranscode(d.Bytes, func() {
					ts.quality = target
					ts.bytes += d.Bytes
					s.rep.Upgrades++
					s.submitDecode(i, id, target, true)
				})
			}
		},
	})
}

// ---- playback ----

func (s *Session) playInterval(i int, stallSince time.Duration) {
	v := s.cfg.Video
	if s.canceled() || i >= v.NumChunks() {
		s.clock.Halt()
		return
	}
	now := s.clock.Now()
	view := s.head.At(now)
	visible := tiling.VisibleTiles(v.Grid, s.cfg.Projection, view, s.cfg.FoV)

	missing := 0
	for _, id := range visible {
		st, ok := s.state[i][id]
		if ok && st.quality >= 0 && s.ccache != nil {
			// The encoded copy must still be resident in main memory: a
			// budget eviction throws the download away (Fig. 4).
			cid := tiling.ChunkID{Quality: st.quality, Tile: id, Start: v.ChunkStart(i)}
			if !s.ccache.Has(cid) {
				s.col.Wasted(st.bytes)
				s.rep.BytesWasted += st.bytes
				st.quality = -1
				st.bytes = 0
				ok = false
			}
		}
		if !ok || st.quality < 0 {
			if st == nil || !st.pending {
				// Rush the gap at base quality.
				s.submitFetch(i, id, 0, transport.ClassFoV, true, 1, now)
			}
			missing++
		}
	}
	stalledFor := now - stallSince
	if missing > 0 && stalledFor < s.cfg.MaxStall {
		// Wait for the urgent fetches; re-check shortly.
		s.clock.After(100*time.Millisecond, func() { s.playInterval(i, stallSince) })
		return
	}

	// Decode stage (§3.5): tiles that arrived but have not cleared the
	// decoder pool by play time are decoded synchronously, delaying the
	// frame — the hiccup the decoded-frame cache exists to avoid.
	if s.fcache != nil {
		var redecode time.Duration
		for _, id := range visible {
			st := s.state[i][id]
			if st == nil || st.quality < 0 {
				continue
			}
			key := player.FrameCacheKey{Tile: id, Interval: i, Quality: st.quality}
			if !s.fcache.Has(key) {
				redecode += s.cfg.Device.Decoder.SyncDecodeTime(s.tilePixels(st.quality))
				s.fcache.Put(key) // decoded now, synchronously
				s.rep.SyncRedecodes++
			}
		}
		if redecode > 0 {
			s.rep.SyncRedecodeTime += redecode
			s.col.Stall(redecode)
			s.clock.After(redecode, func() { s.playInterval(i, s.clock.Now()) })
			return
		}
	}

	// Account the wait.
	if stalledFor > 0 {
		if !s.started {
			s.rep.StartupDelay = now
		} else {
			s.col.Stall(stalledFor)
			s.emit(EventStall, i, -1, 0, 0, stalledFor)
		}
	}
	s.started = true
	s.playIdx = i
	s.nextPlayWall = now + v.ChunkDuration

	// Render: per-tile qualities and bitrate over the visible tiles.
	var bits float64
	var shownQ []int
	blanks := 0
	for _, id := range visible {
		st := s.state[i][id]
		if st == nil || st.quality < 0 {
			blanks++
			continue
		}
		shownQ = append(shownQ, st.quality)
		bits += float64(st.bytes) * 8 / v.ChunkDuration.Seconds()
	}
	meanQ := 0.0
	for _, q := range shownQ {
		meanQ += float64(q)
	}
	if len(shownQ) > 0 {
		meanQ /= float64(len(shownQ))
	}
	playDur := s.playDur(i)
	s.emit(EventPlay, i, -1, int(meanQ+0.5), 0, playDur)
	if len(shownQ) > 0 {
		s.col.PlayTiles(playDur, shownQ, bits)
	} else {
		// An entirely blank FoV still consumes play time (at quality 0).
		s.col.Play(playDur, 0, 0)
	}
	if blanks > 0 && len(visible) > 0 {
		s.col.Blank(playDur * time.Duration(blanks) / time.Duration(len(visible)))
	}

	// Waste accounting input: every tile visible at any of four probe
	// points during the play span counts as rendered.
	ever, ok := s.visibleEver[i]
	if !ok {
		ever = make(map[tiling.TileID]bool)
		s.visibleEver[i] = ever
	}
	for k := 0; k < 4; k++ {
		probe := now + time.Duration(k)*v.ChunkDuration/4
		for _, id := range tiling.VisibleTiles(v.Grid, s.cfg.Projection, s.head.At(probe), s.cfg.FoV) {
			ever[id] = true
		}
	}

	if s.ccache != nil {
		for id, st := range s.state[i] {
			if st.quality >= 0 {
				s.ccache.Remove(tiling.ChunkID{Quality: st.quality, Tile: id, Start: v.ChunkStart(i)})
			}
		}
	}
	s.clock.Schedule(s.nextPlayWall, func() { s.playInterval(i+1, s.nextPlayWall) })
}

// afterTranscode runs fn once the chunk is decodable: immediately for
// AVC content, after the cloudlet's SVC→AVC transcoding delay when the
// §3.1.1 offloading path is configured.
func (s *Session) afterTranscode(bytes int64, fn func()) {
	if s.cfg.Cloudlet == nil || s.cfg.Video.Encoding != media.EncodingSVC {
		fn()
		return
	}
	s.clock.After(s.cfg.Cloudlet.TranscodeTime(bytes), fn)
}

// playDur is the actual play duration of interval i (the final
// interval may be partial).
func (s *Session) playDur(i int) time.Duration {
	v := s.cfg.Video
	start := v.ChunkStart(i)
	if start+v.ChunkDuration > v.Duration {
		return v.Duration - start
	}
	return v.ChunkDuration
}

// accountWaste charges every fetched-but-never-rendered byte after the
// session.
func (s *Session) accountWaste() {
	for i, tiles := range s.state {
		ever := s.visibleEver[i]
		for id, ts := range tiles {
			if ts.bytes == 0 {
				continue
			}
			if ever == nil || !ever[id] {
				s.col.Wasted(ts.bytes)
				s.rep.BytesWasted += ts.bytes
			}
		}
	}
}

// DebugQualities exposes the per-interval planned FoV quality for
// debugging and tests.
func DebugQualities(s *Session) []int {
	out := make([]int, s.cfg.Video.NumChunks())
	for i := range out {
		q, ok := s.fovQuality[i]
		if !ok {
			q = -1
		}
		out[i] = q
	}
	return out
}

package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/serve"
	"sperke/internal/sim"
)

// originFunc adapts a key-level function into a dash.ChunkSource.
type originFunc func(ctx context.Context, key serve.ChunkKey) ([]byte, error)

func (f originFunc) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	return f(ctx, serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer})
}

func originBody(key serve.ChunkKey) []byte { return []byte("origin:" + key.String()) }

// countingOrigin is a deterministic origin that counts synthesis calls.
type countingOrigin struct {
	mu    sync.Mutex
	calls int
}

func (o *countingOrigin) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
	return originBody(serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer}), nil
}

func (o *countingOrigin) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

func fetchKey(t *testing.T, c *Cluster, key serve.ChunkKey) []byte {
	t.Helper()
	body, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	if err != nil {
		t.Fatalf("Chunk(%v): %v", key, err)
	}
	return body
}

func TestChunkRoutesToTopRankedNode(t *testing.T) {
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(3), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(60)
	for _, key := range keys {
		got := fetchKey(t, c, key)
		if string(got) != string(originBody(key)) {
			t.Fatalf("key %v: body %q, want %q", key, got, originBody(key))
		}
	}
	// Every key must live on exactly its rendezvous winner.
	owned := 0
	for _, key := range keys {
		top := Rank(key, c.NodeNames())[0]
		for _, n := range c.Nodes() {
			if n.Store().Contains(key) != (n.ID() == top) {
				t.Fatalf("key %v: cached on %s, rendezvous owner is %s", key, n.ID(), top)
			}
		}
		owned++
	}
	if owned != len(keys) {
		t.Fatalf("checked %d keys, want %d", owned, len(keys))
	}
	var reqs int64
	for _, n := range c.Nodes() {
		reqs += n.Requests()
	}
	if reqs != int64(len(keys)) {
		t.Fatalf("nodes admitted %d requests, want %d", reqs, len(keys))
	}
	if c.met.reroutes.Value() != 0 {
		t.Fatalf("reroutes = %d on a healthy cluster", c.met.reroutes.Value())
	}
}

func TestChunkSecondFetchIsEdgeHit(t *testing.T) {
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(3), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(30)
	for _, key := range keys {
		fetchKey(t, c, key)
	}
	cold := origin.count()
	if cold != len(keys) {
		t.Fatalf("cold pass hit the origin %d times, want %d", cold, len(keys))
	}
	for _, key := range keys {
		fetchKey(t, c, key)
	}
	if origin.count() != cold {
		t.Fatalf("warm pass hit the origin %d more times, want 0", origin.count()-cold)
	}
	if got := c.met.offload.Value(); got != 5000 {
		// 60 requests, 30 origin fetches → 50.0% offload in basis points.
		t.Fatalf("origin_offload_ratio = %d bp, want 5000", got)
	}
}

func TestNodeShedsWhenSaturated(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	blocked := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	origin := originFunc(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		if key == blocked {
			close(started)
			<-release
		}
		return originBody(key), nil
	})
	c, err := New(origin, WithNodes(1), WithMaxInFlight(1),
		WithRetryAfter(3*time.Second), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("edge-0")
	done := make(chan error, 1)
	go func() {
		_, err := n.Chunk(context.Background(), blocked.Video, blocked.Quality, blocked.Tile, blocked.Index, blocked.Layer)
		done <- err
	}()
	<-started
	_, err = n.Chunk(context.Background(), "vid", 1, 1, 1, false)
	var oe *dash.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("saturated node returned %v, want *dash.OverloadError", err)
	}
	if oe.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want the configured 3s", oe.RetryAfter)
	}
	if !errors.Is(err, dash.ErrUnavailable) {
		t.Fatal("overload error does not match dash.ErrUnavailable")
	}
	if n.Requests() != 1 {
		t.Fatalf("shed request counted as admitted: Requests = %d", n.Requests())
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("occupying request failed: %v", err)
	}
}

func TestClusterShedGoesStraightToOrigin(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	blocked := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	origin := originFunc(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		if key == blocked {
			close(started)
			<-release
		}
		return originBody(key), nil
	})
	c, err := New(origin, WithNodes(1), WithMaxInFlight(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Chunk(context.Background(), blocked.Video, blocked.Quality, blocked.Tile, blocked.Index, blocked.Layer)
		done <- err
	}()
	<-started
	// The only edge is saturated: the router must absorb the shed at the
	// origin rather than queueing or erroring.
	other := serve.ChunkKey{Video: "vid", Quality: 1, Tile: 1, Index: 1}
	body := fetchKey(t, c, other)
	if string(body) != string(originBody(other)) {
		t.Fatalf("shed fallback body %q, want %q", body, originBody(other))
	}
	if got := c.met.sheds.Value(); got != 1 {
		t.Fatalf("cluster.sheds = %d, want 1", got)
	}
	if got := c.met.originFallbacks.Value(); got != 1 {
		t.Fatalf("cluster.origin_fallbacks = %d, want 1", got)
	}
	// A shed is overload, not failure: the node must still be alive.
	if got := c.reg.Gauge("cluster.health.edge-0.alive").Value(); got != 1 {
		t.Fatalf("shedding node marked dead: alive = %d", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("occupying request failed: %v", err)
	}
}

func TestKilledNodeFailsOverAndIsDeclaredDown(t *testing.T) {
	origin := &countingOrigin{}
	clock := sim.NewClock(1)
	c, err := New(origin, WithNodes(3), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(60)
	// Pick a key owned by a known node, then kill that node.
	key := keys[0]
	ranked := Rank(key, c.NodeNames())
	dead, second := ranked[0], ranked[1]
	c.KillNode(dead)

	for i := 1; i <= 3; i++ {
		body := fetchKey(t, c, key)
		if string(body) != string(originBody(key)) {
			t.Fatalf("failover body %q, want %q", body, originBody(key))
		}
	}
	if !c.Node(second).Store().Contains(key) {
		t.Fatalf("failover did not land on next-ranked node %s", second)
	}
	if got := c.met.reroutes.Value(); got != 3 {
		t.Fatalf("reroutes = %d, want 3", got)
	}
	// Three straight denials cross FailThreshold: the dead node is now
	// declared down and requests stop knocking.
	if got := c.Node(dead).met.denials.Value(); got != 3 {
		t.Fatalf("down_denials = %d, want 3", got)
	}
	if got := c.reg.Counter("cluster.health.down_transitions").Value(); got != 1 {
		t.Fatalf("down_transitions = %d, want 1", got)
	}
	if got := c.reg.Gauge("cluster.health." + dead + ".alive").Value(); got != 0 {
		t.Fatalf("alive gauge for %s = %d, want 0", dead, got)
	}
	fetchKey(t, c, key)
	if got := c.Node(dead).met.denials.Value(); got != 3 {
		t.Fatalf("declared-down node still receives requests: denials = %d", got)
	}
}

func TestKillDropsCacheAndRecoverComesBackCold(t *testing.T) {
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	key := serve.ChunkKey{Video: "vid", Quality: 1, Tile: 2, Index: 3}
	fetchKey(t, c, key)
	n := c.Node("edge-0")
	if !n.Store().Contains(key) {
		t.Fatal("warm key not cached")
	}
	c.KillNode("edge-0")
	if !n.Down() {
		t.Fatal("KillNode did not crash the node")
	}
	c.RecoverNode("edge-0")
	if n.Down() {
		t.Fatal("RecoverNode did not restart the node")
	}
	if n.Store().Contains(key) {
		t.Fatal("restarted node kept its cache; a crashed process comes back cold")
	}
}

func TestProbesReadmitRecoveredNode(t *testing.T) {
	origin := &countingOrigin{}
	clock := sim.NewClock(1)
	c, err := New(origin, WithNodes(2), WithClock(clock),
		WithHealth(HealthConfig{FailThreshold: 3, ProbeSuccesses: 2, Cooldown: 500 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	c.KillNode("edge-1")
	// Three failed probe sweeps trip the detector.
	for i := 0; i < 3; i++ {
		c.ProbeAll()
	}
	if got := c.reg.Gauge("cluster.health.edge-1.alive").Value(); got != 0 {
		t.Fatalf("killed node still alive after 3 failed probes")
	}
	c.RecoverNode("edge-1")
	// Inside the cooldown the breaker admits nothing, recovered or not.
	c.ProbeAll()
	if got := c.reg.Gauge("cluster.health.edge-1.alive").Value(); got != 0 {
		t.Fatal("node re-admitted during cooldown")
	}
	clock.RunUntil(clock.Now() + time.Second)
	// Past the cooldown: ProbeSuccesses clean sweeps close the breaker.
	c.ProbeAll()
	if got := c.reg.Gauge("cluster.health.edge-1.alive").Value(); got != 0 {
		t.Fatal("one probe success re-admitted the node; want two")
	}
	c.ProbeAll()
	if got := c.reg.Gauge("cluster.health.edge-1.alive").Value(); got != 1 {
		t.Fatal("recovered node not re-admitted after two clean probes")
	}
	if got := c.reg.Counter("cluster.health.up_transitions").Value(); got != 1 {
		t.Fatalf("up_transitions = %d, want 1", got)
	}
}

func TestConfigRequiresOrigin(t *testing.T) {
	if _, err := New(nil, WithNodes(3)); err == nil {
		t.Fatal("New accepted a nil origin")
	}
	if _, err := NewFromConfig(Config{Nodes: 3}); err == nil {
		t.Fatal("NewFromConfig accepted a config without an origin")
	}
	if _, err := New(&countingOrigin{}, WithLoopback()); err == nil {
		t.Fatal("New accepted a wire form without a catalog")
	}
}

// TestNewFromConfigBridge pins the deprecated Config wrapper: a
// cluster built from the legacy struct behaves exactly like one built
// with the equivalent options.
func TestNewFromConfigBridge(t *testing.T) {
	origin := &countingOrigin{}
	c, err := NewFromConfig(Config{Nodes: 2, Origin: origin, MaxInFlight: 7,
		RetryAfter: 2 * time.Second, Clock: sim.NewClock(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NodeNames(); len(got) != 2 {
		t.Fatalf("NodeNames = %v, want 2 nodes", got)
	}
	if c.Wire() || c.Replication() != 1 {
		t.Fatalf("legacy bridge changed semantics: wire=%v R=%d", c.Wire(), c.Replication())
	}
	n := c.Node("edge-0")
	if n.maxInFlight != 7 || n.retryAfter != 2*time.Second {
		t.Fatalf("legacy sizing lost: maxInFlight=%d retryAfter=%v", n.maxInFlight, n.retryAfter)
	}
	key := serve.ChunkKey{Video: "vid", Quality: 1, Tile: 2, Index: 3}
	if got := fetchKey(t, c, key); string(got) != string(originBody(key)) {
		t.Fatalf("bridge cluster served %q", got)
	}
}

func TestCanceledContextDoesNotPunishNode(t *testing.T) {
	origin := originFunc(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		return nil, ctx.Err()
	})
	c, err := New(origin, WithNodes(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.Chunk(ctx, "vid", 0, 0, i, false); err == nil {
			t.Fatal("canceled fetch succeeded")
		}
	}
	// Five canceled calls must not trip the caller's favorite node.
	if got := c.reg.Gauge("cluster.health.edge-0.alive").Value(); got != 1 {
		t.Fatal("canceled requests were counted as node failures")
	}
}

// TestCanceledViewerAbortsOriginFetch is the ctx-drop regression for
// the node miss path: a node's origin pull now rides the store's
// per-flight context, which is canceled when the last interested
// viewer departs. Before the fix the pull ran on context.Background,
// so this origin — which blocks until it observes cancellation —
// would have hung forever.
func TestCanceledViewerAbortsOriginFetch(t *testing.T) {
	entered := make(chan struct{})
	aborted := make(chan error, 1)
	origin := originFunc(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		close(entered)
		<-ctx.Done()
		aborted <- ctx.Err()
		return nil, ctx.Err()
	})
	c, err := New(origin, WithNodes(3), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Chunk(ctx, "vid", 1, 2, 3, false)
		done <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-aborted:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("origin context ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("origin fetch never observed the viewer's cancellation")
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Chunk returned %v, want context.Canceled", err)
	}
}

// TestCanceledViewerDoesNotPoisonSharedFlight: when two viewers share
// one cold fetch, the first one leaving must not break the second —
// the flight is canceled only when the last viewer departs.
func TestCanceledViewerDoesNotPoisonSharedFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	origin := originFunc(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		close(entered)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return originBody(key), nil
		}
	})
	c, err := New(origin, WithNodes(3), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := serve.ChunkKey{Video: "vid", Quality: 1, Tile: 2, Index: 3}
	stayDone := make(chan error, 1)
	var stayBody []byte
	go func() {
		b, err := c.Chunk(context.Background(), want.Video, want.Quality, want.Tile, want.Index, want.Layer)
		stayBody = b
		stayDone <- err
	}()
	<-entered
	leaveCtx, cancelLeave := context.WithCancel(context.Background())
	leaveDone := make(chan error, 1)
	go func() {
		_, err := c.Chunk(leaveCtx, want.Video, want.Quality, want.Tile, want.Index, want.Layer)
		leaveDone <- err
	}()
	cancelLeave()
	if err := <-leaveDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leaving viewer got %v, want context.Canceled", err)
	}
	close(release)
	if err := <-stayDone; err != nil {
		t.Fatalf("staying viewer got %v — a peer's cancellation poisoned the shared flight", err)
	}
	if string(stayBody) != string(originBody(want)) {
		t.Fatalf("staying viewer got %q, want %q", stayBody, originBody(want))
	}
}

// Package cluster runs N edge nodes — each a serve.Store + dash.Server
// pair — in front of one origin ChunkSource, with chunk keys routed by
// rendezvous hashing so membership changes move only the resharded
// keys. In the wire forms (WithWire / WithLoopback) every node is a
// real HTTP process: its dash.Server bound to a loopback listener, the
// router reaching it through dash.Client — so node death is an actual
// connection refusal and re-routed responses proxy writer-first, never
// materialized at the router. A health layer combines periodic probes
// with passive per-request error accounting to declare nodes down and
// up, failing requests over to the next-ranked live edge and, when no
// edge can serve, to the origin. With replication R>1 every key has R
// rendezvous owners and served bodies are written through to the other
// live owners, so killing any one owner costs zero incremental origin
// fetches. Each edge bounds its in-flight work and sheds the excess
// with 503+Retry-After rather than queueing into collapse; shed
// requests go straight to the origin instead of the next edge, so one
// hot node's overflow cannot cascade through its peers. Membership is
// live — AddNode/RemoveNode under load — and node crashes and
// recoveries can be scripted through faults.Plan node-outage events
// (Cluster implements faults.NodeTarget).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sperke/internal/dash"
	"sperke/internal/obs"
	"sperke/internal/serve"
)

// clusterMetrics caches the router's own instruments.
type clusterMetrics struct {
	requests        *obs.Counter // front-door chunk requests
	reroutes        *obs.Counter // served by a non-primary edge
	sheds           *obs.Counter // refused by an edge's admission guard
	warms           *obs.Counter // replication writes into co-owner caches
	originFallbacks *obs.Counter // requests no edge served
	originFetches   *obs.Counter // origin syntheses a viewer waited on (fallbacks + edge misses)
	offload         *obs.Gauge   // cluster.origin_offload_ratio, basis points

	coalesced        *obs.Counter // requests served from another request's in-flight body
	warmDrops        *obs.Counter // warm jobs dropped by the bounded queue
	prewarms         *obs.Counter // crowd-prior bodies written into edge caches
	prewarmFetches   *obs.Counter // origin syntheses performed speculatively by the pre-warmer
	originStreamErrs *obs.Counter // origin-fallback streams that failed (not counted as fetches)
	originChunkErrs  *obs.Counter // origin-fallback materialized fetches that failed
}

// membership is one immutable snapshot of the routing table. Routing
// loads it once per request; AddNode/RemoveNode publish a new snapshot
// under memMu — readers never block on membership changes.
type membership struct {
	ids  []string
	byID map[string]*Node
}

func (m *membership) with(n *Node) *membership {
	next := &membership{
		ids:  make([]string, 0, len(m.ids)+1),
		byID: make(map[string]*Node, len(m.ids)+1),
	}
	next.ids = append(next.ids, m.ids...)
	next.ids = append(next.ids, n.id)
	for id, node := range m.byID {
		next.byID[id] = node
	}
	next.byID[n.id] = n
	return next
}

func (m *membership) without(name string) *membership {
	next := &membership{
		ids:  make([]string, 0, len(m.ids)),
		byID: make(map[string]*Node, len(m.ids)),
	}
	for _, id := range m.ids {
		if id == name {
			continue
		}
		next.ids = append(next.ids, id)
		next.byID[id] = m.byID[id]
	}
	return next
}

// Cluster is the router: it ranks edges per key, skips the ones the
// health layer has declared down, warms the key's co-owners when R>1,
// and falls back to the origin when no edge answers. It implements
// dash.ChunkSource (the front door) and faults.NodeTarget (scripted
// outages).
type Cluster struct {
	origin dash.ChunkSource
	front  *dash.Server
	health *health
	cfg    config
	loop   *LoopbackTransport // non-nil in the loopback wire form

	mem    atomic.Pointer[membership]
	memMu  sync.Mutex // serializes membership writers; readers use mem
	nextID atomic.Int64

	probeEvery time.Duration
	clock      obs.Clock

	met      clusterMetrics
	reg      *obs.Registry
	copyBufs *obs.BufferPool // proxy copy blocks (wire streaming path)

	coal  *coalescer // router-level singleflight; nil with WithCoalescing(false)
	warmQ *warmQueue // background replica-warm / pre-warm queue
}

// New builds a cluster of WithNodes edges named "edge-0" … "edge-N-1"
// around the required origin. With no options it is three in-process
// edges; WithWire/WithLoopback put each edge behind its own HTTP
// listener and WithReplication(R) gives every key R owners.
func New(origin dash.ChunkSource, opts ...Option) (*Cluster, error) {
	if origin == nil {
		return nil, errors.New("cluster: origin is required")
	}
	cfg := defaultClusterConfig()
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.wire && cfg.catalog == nil {
		return nil, errors.New("cluster: the wire forms need a catalog (WithCatalog) — each node serves chunks through its own dash.Server")
	}
	cfg.health = cfg.health.withDefaults()
	if cfg.clock == nil {
		cfg.clock = obs.NewWall()
	}
	if cfg.obs == nil {
		cfg.obs = obs.NewRegistry()
	}
	c := &Cluster{
		origin:     origin,
		cfg:        cfg,
		probeEvery: cfg.health.ProbeInterval,
		clock:      cfg.clock,
		reg:        cfg.obs,
		met: clusterMetrics{
			requests:        cfg.obs.Counter("cluster.requests"),
			reroutes:        cfg.obs.Counter("cluster.reroutes"),
			sheds:           cfg.obs.Counter("cluster.sheds"),
			warms:           cfg.obs.Counter("cluster.warms"),
			originFallbacks: cfg.obs.Counter("cluster.origin_fallbacks"),
			originFetches:   cfg.obs.Counter("cluster.origin_fetches"),
			offload:         cfg.obs.Gauge("cluster.origin_offload_ratio"),

			coalesced:        cfg.obs.Counter("cluster.coalesced"),
			warmDrops:        cfg.obs.Counter("cluster.warm_drops"),
			prewarms:         cfg.obs.Counter("cluster.prewarms"),
			prewarmFetches:   cfg.obs.Counter("cluster.prewarm_fetches"),
			originStreamErrs: cfg.obs.Counter("cluster.origin_stream_errors"),
			originChunkErrs:  cfg.obs.Counter("cluster.origin_errors"),
		},
		copyBufs: obs.NewSizedBufferPool(cfg.obs, "cluster.proxy", proxyBlock, proxyBlock),
		warmQ:    newWarmQueue(),
	}
	if cfg.coalesce {
		c.coal = newCoalescer()
	}
	if cfg.loopback {
		c.loop = NewLoopbackTransport()
	}
	c.health = newHealth(cfg.health, cfg.clock, cfg.obs, nil)
	m := &membership{byID: make(map[string]*Node, cfg.nodes)}
	for i := 0; i < cfg.nodes; i++ {
		id := fmt.Sprintf("edge-%d", c.nextID.Add(1)-1)
		n, err := c.buildNode(id)
		if err != nil {
			for _, prev := range m.byID {
				prev.retire()
			}
			return nil, err
		}
		m.ids = append(m.ids, id)
		m.byID[id] = n
		c.health.add(id)
	}
	c.mem.Store(m)
	if cfg.catalog != nil {
		store := dash.ChunkSource(c)
		if cfg.wire {
			// Only the wire front door advertises the streaming path, so
			// the in-process form keeps its exact legacy behavior.
			store = streamFront{c}
		}
		c.front = dash.NewServer(cfg.catalog, dash.WithObs(cfg.obs), dash.WithStore(store))
	}
	return c, nil
}

// buildNode constructs (and in the wire forms, starts) one edge. No
// cluster lock is held — listeners come up before the node is
// published to the routing table.
func (c *Cluster) buildNode(id string) (*Node, error) {
	n := newNode(id, c.origin, c.cfg.catalog, c.cfg.nodeShards,
		c.cfg.nodeBudget, c.cfg.maxInFlight, c.cfg.retryAfter,
		c.reg, c.met.originFetches.Inc)
	if c.cfg.wire {
		if err := n.startWire(c.loop, c.cfg.transport, c.cfg.nodeRetry, c.reg); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// AddNode grows the cluster by one edge while it serves. The node is
// fully built — listener bound and accepting in the wire forms —
// before it enters the routing table, so the first request rendezvous
// hands it finds a live process. An empty name auto-assigns the next
// "edge-N". The new node starts cold: rendezvous moves exactly the
// keys whose ownership reshards onto it, and every other key keeps its
// champion.
func (c *Cluster) AddNode(name string) (*Node, error) {
	if name == "" {
		name = fmt.Sprintf("edge-%d", c.nextID.Add(1)-1)
	}
	if m := c.mem.Load(); m.byID[name] != nil {
		return nil, fmt.Errorf("cluster: node %q already exists", name)
	}
	n, err := c.buildNode(name)
	if err != nil {
		return nil, err
	}
	c.memMu.Lock()
	cur := c.mem.Load()
	if cur.byID[name] != nil {
		c.memMu.Unlock()
		n.retire()
		return nil, fmt.Errorf("cluster: node %q already exists", name)
	}
	c.health.add(name)
	c.mem.Store(cur.with(n))
	c.memMu.Unlock()
	return n, nil
}

// RemoveNode drains one edge out of the routing table and stops it
// (its listener closes in the wire forms). Keys it owned rendezvous to
// the survivors; with replication the next-ranked owner already holds
// the warmed copies, so removal costs no origin refetch for warm keys.
// Requests already routed to the node finish against its closing
// process and fail over normally.
func (c *Cluster) RemoveNode(name string) error {
	c.memMu.Lock()
	cur := c.mem.Load()
	n := cur.byID[name]
	if n == nil {
		c.memMu.Unlock()
		return fmt.Errorf("cluster: no node %q", name)
	}
	c.health.remove(name)
	c.mem.Store(cur.without(name))
	c.memMu.Unlock()
	n.retire()
	return nil
}

// Replication reports R, the configured owners per key.
func (c *Cluster) Replication() int { return c.cfg.replication }

// Wire reports whether the cluster's edges are HTTP processes reached
// over the wire.
func (c *Cluster) Wire() bool { return c.cfg.wire }

// Chunk implements dash.ChunkSource: route the key to its
// rendezvous-ranked edges, skipping nodes the health layer holds down,
// then fall back to the origin. An edge error feeds the passive side
// of the failure detector and moves on to the next-ranked edge; an
// edge shed breaks straight to the origin — the other edges are not
// this key's owners and pushing overflow at them just spreads the
// overload. A served body is queued for write-through to the key's
// other live cold owners when replication is on. With coalescing on,
// a request arriving while the same key is already being fetched
// attaches to that flight instead of walking at all.
func (c *Cluster) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	c.met.requests.Inc()
	defer c.updateOffload()
	key := serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer}
	if c.coal == nil {
		return c.walkChunk(ctx, key)
	}
	f, role := c.coal.enter(key)
	switch role {
	case roleFollow:
		return c.awaitFlight(ctx, key, f)
	case roleBypass:
		return c.walkChunk(ctx, key)
	}
	var body []byte
	var err error
	defer func() { c.coal.finish(key, f, body, err) }()
	body, err = c.walkChunk(ctx, key)
	return body, err
}

// awaitFlight is the coalesced follower's path: wait for the leader's
// body, or give up when the follower's own caller cancels. A leader
// failure — which includes the leader's caller canceling — must not
// poison the herd, so on error the follower falls back to its own
// ranked walk (the edge stores' singleflight still keeps that cheap).
func (c *Cluster) awaitFlight(ctx context.Context, key serve.ChunkKey, f *routeFlight) ([]byte, error) {
	select {
	case <-ctx.Done():
		c.coal.detach(f)
		return nil, ctx.Err()
	case <-f.done:
	}
	if f.err != nil || f.body == nil {
		return c.walkChunk(ctx, key)
	}
	c.met.coalesced.Inc()
	return f.body, nil
}

// walkChunk is the materialized ranked walk — everything Chunk does
// after request accounting and coalescing.
func (c *Cluster) walkChunk(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
	m := c.mem.Load()
	ranked := Rank(key, m.ids)
	owners := ranked[:min(c.cfg.replication, len(ranked))]
	for rank, id := range ranked {
		if !c.health.allow(id) {
			continue
		}
		n := m.byID[id]
		var body []byte
		var err error
		if n.client != nil {
			body, err = c.fetchWire(ctx, n, key)
		} else {
			body, err = n.Chunk(ctx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		}
		if err == nil {
			c.health.observe(id, nil)
			if rank > 0 {
				c.met.reroutes.Inc()
			}
			if targets := c.warmTargets(m, owners, id, key); len(targets) > 0 {
				c.enqueueWarm(warmJob{key: key, body: body, targets: targets})
			}
			c.enqueuePrewarms(key)
			return body, nil
		}
		if ctx.Err() != nil {
			// The caller left; don't punish the node for it.
			return nil, err
		}
		if isShed(err) {
			c.met.sheds.Inc()
			break
		}
		c.health.observe(id, err)
	}
	c.met.originFallbacks.Inc()
	body, err := c.origin.Chunk(ctx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	if err != nil {
		// A failed or canceled fallback synthesized nothing; counting it
		// as an origin fetch would skew the offload ratio downward.
		c.met.originChunkErrs.Inc()
		return nil, err
	}
	c.met.originFetches.Inc()
	c.enqueuePrewarms(key)
	return body, nil
}

// enqueuePrewarms queues crowd-prior warm candidates for the other
// tiles viewers at this playhead are most likely to request next — the
// cache-tier application of §3.2's cross-user FoV correlation. A
// candidate already queued is skipped; residency and ownership are
// re-checked by the worker at execution time.
func (c *Cluster) enqueuePrewarms(key serve.ChunkKey) {
	if c.cfg.prior == nil {
		return
	}
	for _, tile := range c.cfg.prior.TopTilesAt(key.Index, c.cfg.prewarmFanout) {
		if tile == key.Tile {
			continue
		}
		pk := key
		pk.Tile = tile
		if !c.warmQ.markPending(pk) {
			continue
		}
		c.enqueueWarm(warmJob{key: pk})
	}
}

// isShed reports an admission-guard refusal in either its in-process
// (*dash.OverloadError) or over-the-wire (KindOverload *dash.Error)
// form.
func isShed(err error) bool {
	var oe *dash.OverloadError
	if errors.As(err, &oe) {
		return true
	}
	var de *dash.Error
	return errors.As(err, &de) && de.Kind == dash.KindOverload
}

// warmTargets returns the key's other owners that are alive and cold —
// the replicas a just-served body should be written through to. The
// health check is the non-consuming alive (a warm decision must not
// eat a half-open breaker's trial admission).
func (c *Cluster) warmTargets(m *membership, owners []string, served string, key serve.ChunkKey) []*Node {
	var targets []*Node
	for _, id := range owners {
		if id == served {
			continue
		}
		n := m.byID[id]
		if n == nil || n.Down() || !c.health.alive(id) {
			continue
		}
		if n.store.Contains(key) {
			continue
		}
		targets = append(targets, n)
	}
	return targets
}

// updateOffload republishes cluster.origin_offload_ratio: the fraction
// of front-door requests the edge tier absorbed without an origin
// synthesis, in basis points (10000 = full offload). Cumulative since
// start; windowed readings come from OffloadCounts deltas.
func (c *Cluster) updateOffload() {
	req := c.met.requests.Value()
	if req <= 0 {
		return
	}
	fetches := c.met.originFetches.Value()
	bp := (req - fetches) * 10000 / req
	if bp < 0 {
		bp = 0
	}
	c.met.offload.Set(bp)
}

// OffloadCounts returns the cumulative front-door request and origin
// fetch counters, so callers can compute offload over a window by
// differencing two snapshots.
func (c *Cluster) OffloadCounts() (requests, originFetches int64) {
	return c.met.requests.Value(), c.met.originFetches.Value()
}

// Warms reports the cumulative replication writes applied by the warm
// worker. Asynchronous — call DrainWarms first when asserting exact
// counts.
func (c *Cluster) Warms() int64 { return c.met.warms.Value() }

// Coalesced reports requests served from another request's in-flight
// body by the router-level singleflight.
func (c *Cluster) Coalesced() int64 { return c.met.coalesced.Value() }

// WarmDrops reports warm jobs the bounded queue discarded under
// pressure.
func (c *Cluster) WarmDrops() int64 { return c.met.warmDrops.Value() }

// Prewarms reports crowd-prior bodies written into edge caches.
func (c *Cluster) Prewarms() int64 { return c.met.prewarms.Value() }

// PrewarmFetches reports origin syntheses performed speculatively by
// the pre-warmer — kept apart from cluster.origin_fetches so the
// offload ratio keeps meaning "viewers served without waiting on the
// origin" while total origin load stays visible.
func (c *Cluster) PrewarmFetches() int64 { return c.met.prewarmFetches.Value() }

// ProbeAll runs one active probe sweep: every node the detector lets
// through gets a Ping — a real GET /v in the wire forms — and the
// outcome feeds the same breakers as passive traffic. Down nodes in
// cooldown are skipped; once the cooldown passes the breaker admits
// trial probes, and ProbeSuccesses clean ones in a row re-admit the
// node.
func (c *Cluster) ProbeAll() {
	m := c.mem.Load()
	for _, id := range m.ids {
		if !c.health.allow(id) {
			continue
		}
		c.health.observe(id, m.byID[id].Ping())
	}
}

// StartProbes runs ProbeAll every Health.ProbeInterval until ctx is
// done. It paces itself on the wall clock; deterministic tests call
// ProbeAll directly from sim-clock callbacks instead.
func (c *Cluster) StartProbes(ctx context.Context) {
	go func() {
		for {
			if err := wallSleep(ctx, c.probeEvery); err != nil {
				return
			}
			c.ProbeAll()
		}
	}()
}

// wallSleep blocks for d or until ctx is done. This is the cluster's
// one real-time wait — probe pacing is inherently wall-clock — and the
// clockhygiene allowlist names it so nothing else in the package grows
// a timer.
func wallSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// NodeNames implements faults.NodeTarget.
func (c *Cluster) NodeNames() []string {
	m := c.mem.Load()
	out := make([]string, len(m.ids))
	copy(out, m.ids)
	return out
}

// KillNode implements faults.NodeTarget: crash the named node (cache
// dropped, listener closed, every request denied) until RecoverNode.
// Unknown names are ignored so wildcard plans stay forgiving.
func (c *Cluster) KillNode(name string) {
	if n := c.mem.Load().byID[name]; n != nil {
		n.Kill()
	}
}

// RecoverNode implements faults.NodeTarget: restart the named node
// cold. The health layer still holds it down until probes or traffic
// re-admit it.
func (c *Cluster) RecoverNode(name string) {
	if n := c.mem.Load().byID[name]; n != nil {
		n.Recover()
	}
}

// Node returns the named edge, or nil.
func (c *Cluster) Node(id string) *Node { return c.mem.Load().byID[id] }

// Nodes returns the current members in join order.
func (c *Cluster) Nodes() []*Node {
	m := c.mem.Load()
	out := make([]*Node, 0, len(m.ids))
	for _, id := range m.ids {
		out = append(out, m.byID[id])
	}
	return out
}

// FrontDoor returns the cluster's HTTP entry point: a dash.Server
// whose chunk source is the router, so every request flows through
// rendezvous routing, health checks and failover — and, in the wire
// forms, streams proxied edge bodies writer-first. Nil without a
// catalog.
func (c *Cluster) FrontDoor() http.Handler {
	if c.front == nil {
		return nil
	}
	return c.front
}

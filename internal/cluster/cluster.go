// Package cluster runs N in-process edge nodes — each a serve.Store +
// dash.Server pair — in front of one origin ChunkSource, with chunk
// keys routed by rendezvous hashing so membership changes move only
// the dead node's keys. A router health layer combines periodic probes
// with passive per-request error accounting to declare nodes down and
// up, failing requests over to the next-ranked live edge and, when no
// edge can serve, to the origin. Each edge bounds its in-flight work
// and sheds the excess with 503+Retry-After rather than queueing into
// collapse; shed requests go straight to the origin instead of the
// next edge, so one hot node's overflow cannot cascade through its
// peers. Node crashes and recoveries can be scripted through
// faults.Plan node-outage events (Cluster implements
// faults.NodeTarget).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sperke/internal/dash"
	"sperke/internal/obs"
	"sperke/internal/serve"
)

// Config sizes a cluster. Zero values mean defaults; only Origin is
// required.
type Config struct {
	// Nodes is the edge count; 0 defaults to 3.
	Nodes int
	// Origin is the authoritative ChunkSource every edge cache pulls
	// misses from. Required.
	Origin dash.ChunkSource
	// Catalog, when set, gives every node (and the front door) its own
	// dash.Server so the cluster can be driven over HTTP.
	Catalog *dash.Catalog
	// NodeBudgetBytes caps each edge cache; 0 defaults to 64 MiB.
	NodeBudgetBytes int64
	// NodeShards sets each edge store's shard count; 0 defaults to 8.
	NodeShards int
	// MaxInFlight bounds concurrent admitted requests per edge; beyond
	// it the edge sheds with 503+Retry-After. 0 defaults to 256.
	MaxInFlight int
	// RetryAfter is the backoff hint attached to sheds; 0 defaults to 1s.
	RetryAfter time.Duration
	// Health tunes the failure detector (see HealthConfig).
	Health HealthConfig
	// Clock drives breaker cooldowns and probe pacing: *sim.Clock for
	// deterministic tests, nil for a fresh obs.NewWall().
	Clock obs.Clock
	// Obs receives cluster.* instruments; nil creates a private registry.
	Obs *obs.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.Origin == nil {
		return c, errors.New("cluster: Config.Origin is required")
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.NodeBudgetBytes <= 0 {
		c.NodeBudgetBytes = 64 << 20
	}
	if c.NodeShards <= 0 {
		c.NodeShards = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Clock == nil {
		c.Clock = obs.NewWall()
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	return c, nil
}

// clusterMetrics caches the router's own instruments.
type clusterMetrics struct {
	requests        *obs.Counter // front-door chunk requests
	reroutes        *obs.Counter // served by a non-primary edge
	sheds           *obs.Counter // refused by an edge's admission guard
	originFallbacks *obs.Counter // requests no edge served
	originFetches   *obs.Counter // origin syntheses (fallbacks + edge misses)
	offload         *obs.Gauge   // cluster.origin_offload_ratio, basis points
}

// Cluster is the router: it ranks edges per key, skips the ones the
// health layer has declared down, and falls back to the origin when no
// edge answers. It implements dash.ChunkSource (the front door) and
// faults.NodeTarget (scripted outages).
type Cluster struct {
	nodes  []*Node
	ids    []string
	byID   map[string]*Node
	origin dash.ChunkSource
	front  *dash.Server
	health *health

	probeEvery time.Duration
	clock      obs.Clock

	met clusterMetrics
	reg *obs.Registry
}

// New builds a cluster of cfg.Nodes edges named "edge-0" … "edge-N-1".
func New(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	hcfg := cfg.Health.withDefaults()
	c := &Cluster{
		nodes:      make([]*Node, 0, cfg.Nodes),
		ids:        make([]string, 0, cfg.Nodes),
		byID:       make(map[string]*Node, cfg.Nodes),
		origin:     cfg.Origin,
		probeEvery: hcfg.ProbeInterval,
		clock:      cfg.Clock,
		reg:        cfg.Obs,
		met: clusterMetrics{
			requests:        cfg.Obs.Counter("cluster.requests"),
			reroutes:        cfg.Obs.Counter("cluster.reroutes"),
			sheds:           cfg.Obs.Counter("cluster.sheds"),
			originFallbacks: cfg.Obs.Counter("cluster.origin_fallbacks"),
			originFetches:   cfg.Obs.Counter("cluster.origin_fetches"),
			offload:         cfg.Obs.Gauge("cluster.origin_offload_ratio"),
		},
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("edge-%d", i)
		n := newNode(id, cfg.Origin, cfg.Catalog, cfg.NodeShards,
			cfg.NodeBudgetBytes, cfg.MaxInFlight, cfg.RetryAfter,
			cfg.Obs, c.met.originFetches.Inc)
		c.nodes = append(c.nodes, n)
		c.ids = append(c.ids, id)
		c.byID[id] = n
	}
	c.health = newHealth(hcfg, cfg.Clock, cfg.Obs, c.ids)
	if cfg.Catalog != nil {
		c.front = dash.NewServer(cfg.Catalog, dash.WithObs(cfg.Obs), dash.WithStore(c))
	}
	return c, nil
}

// Chunk implements dash.ChunkSource: route the key to its
// rendezvous-ranked edges, skipping nodes the health layer holds down,
// then fall back to the origin. An edge error feeds the passive side
// of the failure detector and moves on to the next-ranked edge; an
// edge shed breaks straight to the origin — the other edges are not
// this key's owners and pushing overflow at them just spreads the
// overload.
func (c *Cluster) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	c.met.requests.Inc()
	defer c.updateOffload()
	key := serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer}
	for rank, id := range Rank(key, c.ids) {
		if !c.health.allow(id) {
			continue
		}
		body, err := c.byID[id].Chunk(ctx, videoID, quality, tile, index, layer)
		if err == nil {
			c.health.observe(id, nil)
			if rank > 0 {
				c.met.reroutes.Inc()
			}
			return body, nil
		}
		if ctx.Err() != nil {
			// The caller left; don't punish the node for it.
			return nil, err
		}
		var oe *dash.OverloadError
		if errors.As(err, &oe) {
			c.met.sheds.Inc()
			break
		}
		c.health.observe(id, err)
	}
	c.met.originFallbacks.Inc()
	c.met.originFetches.Inc()
	return c.origin.Chunk(ctx, videoID, quality, tile, index, layer)
}

// updateOffload republishes cluster.origin_offload_ratio: the fraction
// of front-door requests the edge tier absorbed without an origin
// synthesis, in basis points (10000 = full offload). Cumulative since
// start; windowed readings come from OffloadCounts deltas.
func (c *Cluster) updateOffload() {
	req := c.met.requests.Value()
	if req <= 0 {
		return
	}
	fetches := c.met.originFetches.Value()
	bp := (req - fetches) * 10000 / req
	if bp < 0 {
		bp = 0
	}
	c.met.offload.Set(bp)
}

// OffloadCounts returns the cumulative front-door request and origin
// fetch counters, so callers can compute offload over a window by
// differencing two snapshots.
func (c *Cluster) OffloadCounts() (requests, originFetches int64) {
	return c.met.requests.Value(), c.met.originFetches.Value()
}

// ProbeAll runs one active probe sweep: every node the detector lets
// through gets a Ping, and the outcome feeds the same breakers as
// passive traffic. Down nodes in cooldown are skipped; once the
// cooldown passes the breaker admits trial probes, and ProbeSuccesses
// clean ones in a row re-admit the node.
func (c *Cluster) ProbeAll() {
	for _, n := range c.nodes {
		if !c.health.allow(n.ID()) {
			continue
		}
		c.health.observe(n.ID(), n.Ping())
	}
}

// StartProbes runs ProbeAll every Health.ProbeInterval until ctx is
// done. It paces itself on the wall clock; deterministic tests call
// ProbeAll directly from sim-clock callbacks instead.
func (c *Cluster) StartProbes(ctx context.Context) {
	go func() {
		for {
			if err := wallSleep(ctx, c.probeEvery); err != nil {
				return
			}
			c.ProbeAll()
		}
	}()
}

// wallSleep blocks for d or until ctx is done. This is the cluster's
// one real-time wait — probe pacing is inherently wall-clock — and the
// clockhygiene allowlist names it so nothing else in the package grows
// a timer.
func wallSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// NodeNames implements faults.NodeTarget.
func (c *Cluster) NodeNames() []string {
	out := make([]string, len(c.ids))
	copy(out, c.ids)
	return out
}

// KillNode implements faults.NodeTarget: crash the named node (cache
// dropped, every request denied) until RecoverNode. Unknown names are
// ignored so wildcard plans stay forgiving.
func (c *Cluster) KillNode(name string) {
	if n, ok := c.byID[name]; ok {
		n.Kill()
	}
}

// RecoverNode implements faults.NodeTarget: restart the named node
// cold. The health layer still holds it down until probes or traffic
// re-admit it.
func (c *Cluster) RecoverNode(name string) {
	if n, ok := c.byID[name]; ok {
		n.Recover()
	}
}

// Node returns the named edge, or nil.
func (c *Cluster) Node(id string) *Node { return c.byID[id] }

// Nodes returns the edges in id order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// FrontDoor returns the cluster's HTTP entry point: a dash.Server
// whose chunk source is the router, so every request flows through
// rendezvous routing, health checks and failover. Nil without a
// catalog.
func (c *Cluster) FrontDoor() http.Handler {
	if c.front == nil {
		return nil
	}
	return c.front
}

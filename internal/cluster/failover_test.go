package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sperke/internal/faults"
	"sperke/internal/obs"
	"sperke/internal/sim"
)

// nodeRequestSnapshot captures every node's admitted-request counter.
func nodeRequestSnapshot(c *Cluster) map[string]int64 {
	out := make(map[string]int64)
	for _, n := range c.Nodes() {
		out[n.ID()] = n.Requests()
	}
	return out
}

// TestClusterFailoverDeterministic is the PR's acceptance scenario: a
// seeded run with a scripted mid-run node kill and recovery, asserting
// zero failed fetches, rendezvous moving only the dead node's keys
// (via per-node request counters), and the origin offload ratio
// returning to its pre-outage value once the node is back and warm.
func TestClusterFailoverDeterministic(t *testing.T) {
	const dead = "edge-1"
	origin := &countingOrigin{}
	clock := sim.NewClock(7)
	reg := obs.NewRegistry()
	c, err := New(origin, WithNodes(3), WithClock(clock), WithObs(reg),
		WithHealth(HealthConfig{FailThreshold: 3, ProbeSuccesses: 2,
			Cooldown: 500 * time.Millisecond, ProbeInterval: 250 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}

	// The outage script: edge-1 crashes at 10s and restarts at 15s.
	// ApplyNodes arms it before the probe pump so the recovery event
	// precedes the same-tick probe sweep.
	plan := faults.MustParse("node:" + dead + ":10s:5s")
	if err := plan.ApplyNodes(clock, c); err != nil {
		t.Fatal(err)
	}
	// Probe pump on the virtual clock: deterministic stand-in for
	// StartProbes' wall-clock loop.
	for at := 250 * time.Millisecond; at <= 20*time.Second; at += 250 * time.Millisecond {
		clock.Schedule(at, c.ProbeAll)
	}

	keys := testKeys(90)
	ids := c.NodeNames()
	primaryCount := map[string]int{}
	deadKeys := 0
	for _, key := range keys {
		top := Rank(key, ids)[0]
		primaryCount[top]++
		if top == dead {
			deadKeys++
		}
	}
	if deadKeys == 0 {
		t.Fatal("no key routes to the node being killed; scenario asserts nothing")
	}

	fetchAll := func() int {
		errs := 0
		for _, key := range keys {
			if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
				errs++
			}
		}
		return errs
	}
	// windowed offload over one fetchAll pass, in basis points.
	offloadWindow := func(fetch func() int) (errs int, bp int64) {
		reqA, fetchA := c.OffloadCounts()
		errs = fetch()
		reqB, fetchB := c.OffloadCounts()
		dreq, dfetch := reqB-reqA, fetchB-fetchA
		if dreq == 0 {
			t.Fatal("offload window saw no requests")
		}
		return errs, (dreq - dfetch) * 10000 / dreq
	}

	// Phase A: warm the cluster, then measure steady-state offload.
	if errs := fetchAll(); errs != 0 {
		t.Fatalf("warm pass: %d failed fetches", errs)
	}
	errs, warmBP := offloadWindow(fetchAll)
	if errs != 0 {
		t.Fatalf("steady pass: %d failed fetches", errs)
	}
	if warmBP != 10000 {
		t.Fatalf("steady-state offload = %d bp, want 10000 (all edge hits)", warmBP)
	}

	// Advance through the kill at 10s; by 11s the probe pump has fed the
	// detector three failures and declared the node down.
	clock.RunUntil(11 * time.Second)
	if got := reg.Gauge("cluster.health." + dead + ".alive").Value(); got != 0 {
		t.Fatal("probes did not declare the killed node down")
	}

	// Phase B: during the outage. Every fetch must still succeed, only
	// the dead node's keys may move, and each moves to its next-ranked
	// survivor (per-node request counters prove both).
	before := nodeRequestSnapshot(c)
	reroutesBefore := c.met.reroutes.Value()
	if errs := fetchAll(); errs != 0 {
		t.Fatalf("outage pass: %d failed fetches", errs)
	}
	after := nodeRequestSnapshot(c)
	if after[dead] != before[dead] {
		t.Fatalf("dead node admitted %d requests", after[dead]-before[dead])
	}
	survivors := []string{}
	for _, id := range ids {
		if id != dead {
			survivors = append(survivors, id)
		}
	}
	expect := map[string]int64{}
	for _, key := range keys {
		expect[Rank(key, survivors)[0]]++
	}
	for _, id := range survivors {
		if got := after[id] - before[id]; got != expect[id] {
			t.Fatalf("node %s served %d keys during the outage, rendezvous over survivors expects %d",
				id, got, expect[id])
		}
	}
	if got := c.met.reroutes.Value() - reroutesBefore; got != int64(deadKeys) {
		t.Fatalf("outage pass rerouted %d keys, want exactly the dead node's %d", got, deadKeys)
	}
	// The moved keys are cold on their new owners: the origin absorbs
	// exactly those, then the tier re-warms to full offload.
	errs, outageBP := offloadWindow(fetchAll)
	if errs != 0 {
		t.Fatalf("re-warm pass: %d failed fetches", errs)
	}
	if outageBP != 10000 {
		t.Fatalf("re-warmed outage offload = %d bp, want 10000", outageBP)
	}

	// Advance through the recovery at 15s; the probe pump needs the
	// 500ms cooldown plus two clean sweeps to re-admit the node.
	clock.RunUntil(17 * time.Second)
	if got := reg.Gauge("cluster.health." + dead + ".alive").Value(); got != 1 {
		t.Fatal("probes did not re-admit the recovered node")
	}
	if got := reg.Counter("cluster.health.down_transitions").Value(); got != 1 {
		t.Fatalf("down_transitions = %d, want 1", got)
	}
	if got := reg.Counter("cluster.health.up_transitions").Value(); got != 1 {
		t.Fatalf("up_transitions = %d, want 1", got)
	}

	// Phase C: the recovered node owns its keys again — cold, because a
	// crash dropped its cache — then offload returns to the pre-outage
	// value.
	before = nodeRequestSnapshot(c)
	if errs := fetchAll(); errs != 0 {
		t.Fatalf("post-recovery pass: %d failed fetches", errs)
	}
	after = nodeRequestSnapshot(c)
	if got := after[dead] - before[dead]; got != int64(deadKeys) {
		t.Fatalf("recovered node served %d keys, want its %d back", got, deadKeys)
	}
	errs, finalBP := offloadWindow(fetchAll)
	if errs != 0 {
		t.Fatalf("final pass: %d failed fetches", errs)
	}
	if finalBP != warmBP {
		t.Fatalf("post-recovery offload = %d bp, want pre-outage %d", finalBP, warmBP)
	}
}

// TestClusterFailoverUnderLoad drives the router from many goroutines
// across a kill/recover cycle with the race detector watching. Zero
// fetches may fail: the worst a client sees is a reroute or an origin
// fallback.
func TestClusterFailoverUnderLoad(t *testing.T) {
	const (
		workers = 8
		rounds  = 10
		dead    = "edge-1"
	)
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(3),
		WithHealth(HealthConfig{FailThreshold: 3, ProbeSuccesses: 2,
			Cooldown: time.Millisecond, ProbeInterval: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(96)
	var failures atomic.Int64

	runRound := func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(keys); i += workers {
					key := keys[i]
					if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
						failures.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
	}

	for r := 0; r < rounds; r++ {
		switch r {
		case 3:
			c.KillNode(dead)
		case 6:
			c.RecoverNode(dead)
			// Give the detector its cooldown plus two clean sweeps.
			time.Sleep(5 * time.Millisecond)
			c.ProbeAll()
			c.ProbeAll()
		}
		runRound()
		c.ProbeAll()
	}
	if got := failures.Load(); got != 0 {
		t.Fatalf("%d fetches failed across the kill/recover cycle", got)
	}
	if got := c.Node(dead).Requests(); got == 0 {
		t.Fatal("recovered node never served again")
	}
	if got := c.met.reroutes.Value(); got == 0 {
		t.Fatal("outage rounds produced no reroutes; the kill was not exercised")
	}
}

package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"syscall"

	"sperke/internal/dash"
	"sperke/internal/serve"
)

// proxyBlock is the copy-block size the router streams proxied bodies
// through. 32 KiB matches io.Copy's internal default; pooling it keeps
// the streaming path's per-request allocations flat.
const proxyBlock = 32 << 10

// streamFront is the front door's chunk store in the wire forms:
// dash.ChunkSource for the materialized path plus dash.ChunkStreamer,
// so the dash.Server serves chunk bodies by proxying the winning
// edge's response straight into the caller's ResponseWriter. The
// in-process form deliberately does not expose the streamer — its
// front door keeps the legacy materialized behavior.
type streamFront struct{ c *Cluster }

func (f streamFront) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	return f.c.Chunk(ctx, videoID, quality, tile, index, layer)
}

// StreamChunk implements dash.ChunkStreamer.
func (f streamFront) StreamChunk(ctx context.Context, w http.ResponseWriter, videoID string, quality, tile, index int, layer bool) (int64, error) {
	return f.c.streamChunk(ctx, w, videoID, quality, tile, index, layer)
}

// streamChunk is the wire router's serve path: rank the key's edges,
// open the first live one as a stream, and relay body bytes into the
// caller's ResponseWriter through a pooled copy block — the router
// never holds a whole chunk body unless replication or coalescing
// needs one teed on the way past. Failover before the first body byte
// behaves exactly like the materialized walk (next edge, shed breaks
// to origin); a failure mid-body is unrecoverable — bytes are already
// on the wire — so it feeds the detector and aborts the response.
// With coalescing on, a request arriving while the same key is in
// flight is served from the flight's teed body instead of walking.
func (c *Cluster) streamChunk(ctx context.Context, w http.ResponseWriter, videoID string, quality, tile, index int, layer bool) (int64, error) {
	c.met.requests.Inc()
	defer c.updateOffload()
	key := serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer}
	if c.coal == nil {
		n, _, err := c.walkStream(ctx, w, key, nil)
		return n, err
	}
	f, role := c.coal.enter(key)
	switch role {
	case roleFollow:
		return c.serveFlightStream(ctx, w, key, f)
	case roleBypass:
		n, _, err := c.walkStream(ctx, w, key, nil)
		return n, err
	}
	var body []byte
	var n int64
	var err error
	defer func() { c.coal.finish(key, f, body, err) }()
	n, body, err = c.walkStream(ctx, w, key, f)
	return n, err
}

// serveFlightStream is the coalesced follower's streaming path: wait
// for the leader's teed body and write it out whole. A failed leader
// (including one whose own caller canceled) must not poison the herd,
// so on error — or when the leader committed to the no-tee form before
// this follower could be refused — the follower runs its own walk.
func (c *Cluster) serveFlightStream(ctx context.Context, w http.ResponseWriter, key serve.ChunkKey, f *routeFlight) (int64, error) {
	select {
	case <-ctx.Done():
		c.coal.detach(f)
		return 0, ctx.Err()
	case <-f.done:
	}
	if f.err != nil || f.body == nil {
		n, _, err := c.walkStream(ctx, w, key, nil)
		return n, err
	}
	c.met.coalesced.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(f.body)))
	wn, err := w.Write(f.body)
	return int64(wn), err
}

// walkStream is the streaming ranked walk. When the caller is a
// coalescing flight leader (fl != nil) the served body is teed on the
// way past and returned for publication to the flight's followers;
// otherwise the body slice is nil unless replication needed it.
func (c *Cluster) walkStream(ctx context.Context, w http.ResponseWriter, key serve.ChunkKey, fl *routeFlight) (int64, []byte, error) {
	m := c.mem.Load()
	ranked := Rank(key, m.ids)
	owners := ranked[:min(c.cfg.replication, len(ranked))]
	for rank, id := range ranked {
		if !c.health.allow(id) {
			continue
		}
		st, err := m.byID[id].openWire(ctx, key)
		if err != nil {
			if ctx.Err() != nil {
				// The caller left; don't punish the node for it.
				return 0, nil, err
			}
			if isShed(err) {
				c.met.sheds.Inc()
				break
			}
			c.health.observe(id, err)
			continue
		}
		targets := c.warmTargets(m, owners, id, key)
		written, body, err := c.proxyBody(w, st, targets, key, fl)
		if err != nil {
			c.health.observe(id, err)
			return written, nil, err
		}
		c.health.observe(id, nil)
		if rank > 0 {
			c.met.reroutes.Inc()
		}
		c.enqueuePrewarms(key)
		return written, body, nil
	}
	c.met.originFallbacks.Inc()
	return c.streamOrigin(ctx, w, key, fl)
}

// bodySink accumulates a teed body into a pre-sized buffer: the
// replication copy built on the way past, not router scratch.
type bodySink struct{ buf []byte }

func (b *bodySink) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

// proxyBody forwards an opened edge response into the caller's
// ResponseWriter with Content-Length preserved, streaming through a
// pooled copy block. The body tees into one exact-size buffer on the
// way past only when someone needs it whole: the key has other live
// cold owners (the buffer is queued as their replication write) or
// coalesced followers are attached to the leader's flight (the buffer
// is published as their response). A leader with neither commits the
// flight to the no-tee form first, so the warm-cache fast path stays
// allocation-flat. A drained stream shorter or longer than the edge's
// declared Content-Length is a wire fault: the response is already
// ruined for the caller, so it returns a typed transient error that
// feeds the failure detector instead of posing as a success.
func (c *Cluster) proxyBody(w http.ResponseWriter, st dash.ChunkStream, targets []*Node, key serve.ChunkKey, fl *routeFlight) (int64, []byte, error) {
	defer st.Body.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	if st.Length >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(st.Length, 10))
	}
	dst := io.Writer(w)
	var warm *bodySink
	if st.Length >= 0 {
		tee := len(targets) > 0
		if !tee && fl != nil && !c.coal.tryNoTee(fl) {
			// Followers are already waiting on this flight; tee for them.
			tee = true
		}
		if tee {
			warm = &bodySink{buf: make([]byte, 0, st.Length)}
			dst = io.MultiWriter(w, warm)
		}
	}
	block := c.copyBufs.Get()
	n, err := io.CopyBuffer(dst, st.Body, (*block)[:cap(*block)])
	c.copyBufs.Put(block)
	if err != nil {
		return n, nil, err
	}
	if st.Length >= 0 && n != st.Length {
		return n, nil, &dash.Error{
			Op: key.String(), Kind: dash.KindTransient,
			Err: fmt.Errorf("cluster: edge body length mismatch: copied %d of %d declared bytes", n, st.Length),
		}
	}
	if warm == nil {
		return n, nil, nil
	}
	if len(targets) > 0 {
		c.enqueueWarm(warmJob{key: key, body: warm.buf, targets: targets})
	}
	return n, warm.buf, nil
}

// chunkSizer and chunkStreamerTo are the origin's optional streaming
// seam (serve.Store satisfies both): size without synthesis, then a
// single write from the sealed allocation.
type chunkSizer interface {
	ChunkLen(videoID string, quality, tile, index int, layer bool) (int, error)
}

type chunkStreamerTo interface {
	ChunkTo(ctx context.Context, w io.Writer, videoID string, quality, tile, index int, layer bool) (int64, error)
}

// streamOrigin is the no-edge-left fallback of the streaming path.
// When the origin exposes the sized streaming seam — and no coalesced
// follower needs the body whole — the body streams from the origin's
// own sealed allocation with Content-Length declared up front;
// otherwise the plain ChunkSource form serves (and publishes to the
// flight's followers). cluster.origin_fetches counts only streams that
// completed: a failed or canceled fallback synthesized nothing a
// viewer got, and counting it would skew the offload ratio, so those
// land under cluster.origin_stream_errors instead.
func (c *Cluster) streamOrigin(ctx context.Context, w http.ResponseWriter, key serve.ChunkKey, fl *routeFlight) (int64, []byte, error) {
	w.Header().Set("Content-Type", "application/octet-stream")
	sizer, hasSize := c.origin.(chunkSizer)
	streamer, hasStream := c.origin.(chunkStreamerTo)
	if hasSize && hasStream && (fl == nil || c.coal.tryNoTee(fl)) {
		n, err := sizer.ChunkLen(key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		if err != nil {
			c.met.originStreamErrs.Inc()
			return 0, nil, err
		}
		w.Header().Set("Content-Length", strconv.Itoa(n))
		wn, err := streamer.ChunkTo(ctx, w, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		if err != nil {
			c.met.originStreamErrs.Inc()
			return wn, nil, err
		}
		c.met.originFetches.Inc()
		c.enqueuePrewarms(key)
		return wn, nil, nil
	}
	body, err := c.origin.Chunk(ctx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	if err != nil {
		c.met.originStreamErrs.Inc()
		return 0, nil, err
	}
	c.met.originFetches.Inc()
	c.enqueuePrewarms(key)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	wn, err := w.Write(body)
	return int64(wn), body, err
}

// fetchWire serves the materialized ChunkSource contract over the
// wire: open the edge's stream and drain it into one exact-size
// buffer. Only the front door's []byte path pays this; the streaming
// path (streamChunk) never builds the slice. A drained body that
// disagrees with the edge's declared Content-Length is a wire fault —
// handing short bytes to the caller (or worse, a replica's cache)
// would launder a truncation into a valid-looking chunk — so it fails
// with a typed transient error and lets the ranked walk move on.
func (c *Cluster) fetchWire(ctx context.Context, n *Node, key serve.ChunkKey) ([]byte, error) {
	st, err := n.openWire(ctx, key)
	if err != nil {
		return nil, err
	}
	defer st.Body.Close()
	sink := &bodySink{}
	if st.Length >= 0 {
		sink.buf = make([]byte, 0, st.Length)
	}
	if _, err := io.Copy(sink, st.Body); err != nil {
		return nil, err
	}
	if st.Length >= 0 && int64(len(sink.buf)) != st.Length {
		return nil, &dash.Error{
			Op: key.String(), Kind: dash.KindTransient,
			Err: fmt.Errorf("cluster: edge body length mismatch: drained %d of %d declared bytes", len(sink.buf), st.Length),
		}
	}
	return sink.buf, nil
}

// LoopbackTransport is the in-process wire: an http.RoundTripper that
// dispatches requests addressed to cluster nodes straight into each
// node's dash.Server, preserving streaming semantics — the response
// body is a pipe fed by the handler's goroutine, so bytes reach the
// reader as the handler writes them, with no sockets or materialized
// bodies. A request to a killed (or deregistered) node fails the dial
// the way a closed listener does: ECONNREFUSED. Deterministic wire
// tests and benchmarks ride it; WithWire(true) uses real listeners
// instead.
type LoopbackTransport struct {
	mu    sync.RWMutex
	hosts map[string]*Node
}

// NewLoopbackTransport returns an empty transport; cluster nodes
// register themselves as they start.
func NewLoopbackTransport() *LoopbackTransport {
	return &LoopbackTransport{hosts: make(map[string]*Node)}
}

func (t *LoopbackTransport) register(host string, n *Node) {
	t.mu.Lock()
	t.hosts[host] = n
	t.mu.Unlock()
}

func (t *LoopbackTransport) deregister(host string) {
	t.mu.Lock()
	delete(t.hosts, host)
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper. It returns as soon as the
// handler commits response headers — the same moment a real client
// would see them — while the body keeps streaming through the pipe.
func (t *LoopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.RLock()
	n := t.hosts[req.URL.Host]
	t.mu.RUnlock()
	if n == nil || !n.accepting.Load() {
		return nil, fmt.Errorf("cluster: dial %s: %w", req.URL.Host, syscall.ECONNREFUSED)
	}
	pr, pw := io.Pipe()
	lw := &loopbackWriter{header: make(http.Header, 4), pw: pw, ready: make(chan struct{})}
	go func() {
		n.server.ServeHTTP(lw, req)
		lw.finish()
		pw.Close()
	}()
	<-lw.ready
	cl := int64(-1)
	if v := lw.header.Get("Content-Length"); v != "" {
		if parsed, perr := strconv.ParseInt(v, 10, 64); perr == nil {
			cl = parsed
		}
	}
	return &http.Response{
		Status:        http.StatusText(lw.status),
		StatusCode:    lw.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        lw.header,
		Body:          pr,
		ContentLength: cl,
		Request:       req,
	}, nil
}

// loopbackWriter adapts a node handler's response onto a pipe,
// releasing the round-trip at WriteHeader time. The header map must
// not be mutated after the first write — true of the dash handlers,
// as of any handler correct over a real connection.
type loopbackWriter struct {
	header      http.Header
	status      int
	wroteHeader bool
	pw          *io.PipeWriter
	ready       chan struct{}
	readyOnce   sync.Once
}

func (w *loopbackWriter) Header() http.Header { return w.header }

func (w *loopbackWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = status
	w.readyOnce.Do(func() { close(w.ready) })
}

func (w *loopbackWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.pw.Write(p)
}

// finish covers handlers that return without writing anything, so the
// round-trip always completes.
func (w *loopbackWriter) finish() {
	w.WriteHeader(http.StatusOK)
}

package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"sperke/internal/dash"
	"sperke/internal/obs"
	"sperke/internal/serve"
)

// ErrNodeDown is the in-process stand-in for connection-refused: the
// node crashed (KillNode / a faults node-outage event) and answers
// nothing until it recovers. It wraps dash.ErrUnavailable so a node
// served directly over HTTP maps it to 503.
var ErrNodeDown = fmt.Errorf("cluster: node down: %w", dash.ErrUnavailable)

// Node is one edge of the cluster: a serve.Store + dash.Server pair
// fronting the shared origin. The store gives the node its own LRU
// cache with singleflight miss coalescing — a re-routed cold herd for
// one key costs the origin one synthesis — and the admission guard
// bounds in-flight work, shedding the excess with 503+Retry-After so a
// cascade from a failed peer is shed, not amplified.
type Node struct {
	id     string
	store  *serve.Store
	server *dash.Server

	down        atomic.Bool
	inflight    atomic.Int64
	maxInFlight int64
	retryAfter  time.Duration

	met nodeMetrics
}

// nodeMetrics caches the node's instruments; nil fields no-op.
type nodeMetrics struct {
	requests *obs.Counter // admitted chunk requests
	misses   *obs.Counter // cache misses = origin fetches from this node
	sheds    *obs.Counter // requests refused by the admission guard
	denials  *obs.Counter // requests refused because the node is down
	up       *obs.Gauge   // 1 while the node process is alive
}

// newNode wires one edge. onOriginFetch (may be nil) is called once
// per cache miss, before the origin synthesis runs — the cluster's
// origin-offload accounting hangs off it.
func newNode(id string, origin dash.ChunkSource, catalog *dash.Catalog,
	shards int, budget int64, maxInFlight int, retryAfter time.Duration,
	reg *obs.Registry, onOriginFetch func()) *Node {
	n := &Node{
		id:          id,
		maxInFlight: int64(maxInFlight),
		retryAfter:  retryAfter,
		met: nodeMetrics{
			requests: reg.Counter("cluster.node." + id + ".requests"),
			misses:   reg.Counter("cluster.node." + id + ".misses"),
			sheds:    reg.Counter("cluster.node." + id + ".sheds"),
			denials:  reg.Counter("cluster.node." + id + ".down_denials"),
			up:       reg.Gauge("cluster.node." + id + ".up"),
		},
	}
	n.met.up.Set(1)
	// The miss path pulls from the origin on the store's per-flight
	// context: the singleflight leader synthesizes for every waiter
	// sharing the flight, and the store cancels the flight only when
	// the last interested caller departs — so a canceled viewer aborts
	// an origin fetch nobody else wants, without poisoning a body other
	// viewers are waiting on.
	n.store = serve.NewCtxStore(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		n.met.misses.Inc()
		if onOriginFetch != nil {
			onOriginFetch()
		}
		return origin.Chunk(ctx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	}, serve.StoreConfig{Shards: shards, BudgetBytes: budget})
	if catalog != nil {
		n.server = dash.NewServer(catalog, dash.WithObs(reg), dash.WithStore(n))
	}
	return n
}

// ID returns the node's name ("edge-0", "edge-1", …).
func (n *Node) ID() string { return n.id }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down.Load() }

// Kill crashes the node: its cache is dropped (a restarted process
// comes back cold) and every request or probe fails with ErrNodeDown
// until Recover. Idempotent.
func (n *Node) Kill() {
	if n.down.Swap(true) {
		return
	}
	n.met.up.Set(0)
	n.store.Reset()
}

// Recover restarts a killed node (cold — Kill dropped the cache).
// Idempotent.
func (n *Node) Recover() {
	if !n.down.Swap(false) {
		return
	}
	n.met.up.Set(1)
}

// Ping is the active health probe: nil iff the node can take traffic.
// It deliberately ignores load — an overloaded node is alive, and
// declaring it dead would amplify the cascade shedding exists to stop.
func (n *Node) Ping() error {
	if n.down.Load() {
		return fmt.Errorf("cluster: probe %s: %w", n.id, ErrNodeDown)
	}
	return nil
}

// Chunk implements dash.ChunkSource. A down node fails immediately
// with ErrNodeDown; a saturated one sheds with *dash.OverloadError
// before touching the store, so the refusal costs almost nothing.
func (n *Node) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	if n.down.Load() {
		n.met.denials.Inc()
		return nil, fmt.Errorf("cluster: %s: %w", n.id, ErrNodeDown)
	}
	if cur := n.inflight.Add(1); cur > n.maxInFlight {
		n.inflight.Add(-1)
		n.met.sheds.Inc()
		return nil, &dash.OverloadError{RetryAfter: n.retryAfter}
	}
	defer n.inflight.Add(-1)
	n.met.requests.Inc()
	return n.store.Get(ctx, serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer})
}

// Handler returns the node's own dash.Server — the edge as an HTTP
// process, overload and down semantics included (503+Retry-After).
// Nil when the cluster was built without a catalog.
func (n *Node) Handler() http.Handler {
	if n.server == nil {
		return nil
	}
	return n.server
}

// Store exposes the node's chunk store for inspection.
func (n *Node) Store() *serve.Store { return n.store }

// Requests, Misses and Hits report the node's admitted requests, cache
// misses (each one an origin fetch) and the difference — the per-node
// hit/miss accounting routing assertions key off.
func (n *Node) Requests() int64 { return n.met.requests.Value() }

// Misses reports the node's cache misses (origin fetches).
func (n *Node) Misses() int64 { return n.met.misses.Value() }

// Hits reports requests served without an origin fetch (singleflight
// waiters count as hits: they were served by a peer's synthesis).
func (n *Node) Hits() int64 { return n.Requests() - n.Misses() }

// InFlight reports the admission guard's current occupancy.
func (n *Node) InFlight() int64 { return n.inflight.Load() }

package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"sperke/internal/dash"
	"sperke/internal/obs"
	"sperke/internal/serve"
)

// ErrNodeDown is the in-process stand-in for connection-refused: the
// node crashed (KillNode / a faults node-outage event) and answers
// nothing until it recovers. It wraps dash.ErrUnavailable so a node
// served directly over HTTP maps it to 503. In the wire form the
// router does not see this error at all — it sees the actual refused
// connection from the node's closed listener.
var ErrNodeDown = fmt.Errorf("cluster: node down: %w", dash.ErrUnavailable)

// Node is one edge of the cluster: a serve.Store + dash.Server pair
// fronting the shared origin. The store gives the node its own LRU
// cache with singleflight miss coalescing — a re-routed cold herd for
// one key costs the origin one synthesis — and the admission guard
// bounds in-flight work, shedding the excess with 503+Retry-After so a
// cascade from a failed peer is shed, not amplified.
//
// In the wire form the node additionally owns a real HTTP process: its
// dash.Server bound to a loopback listener (or an in-process
// LoopbackTransport host), with the router reaching it only through a
// dash.Client. Kill closes the listener — requests meet an actual
// connection refusal — and Recover re-binds the same address.
type Node struct {
	id     string
	store  *serve.Store
	server *dash.Server

	down        atomic.Bool
	inflight    atomic.Int64
	maxInFlight int64
	retryAfter  time.Duration

	// Wire lifecycle. addr is recorded at the first bind and reused by
	// Recover so the node's identity (its address) survives a crash;
	// accepting gates the LoopbackTransport the way a live listener
	// gates a dial; rt holds the current listener+server pair, swapped
	// atomically so Kill never races a concurrent relisten.
	wireMode bool
	loop     *LoopbackTransport
	addr     string
	baseURL  string
	client   *dash.Client
	rt       atomic.Pointer[wireRuntime]

	accepting atomic.Bool

	met nodeMetrics
}

// wireRuntime is one incarnation of a node's listening process.
type wireRuntime struct {
	ln  net.Listener
	srv *http.Server
}

// nodeMetrics caches the node's instruments; nil fields no-op.
type nodeMetrics struct {
	requests *obs.Counter // admitted chunk requests
	misses   *obs.Counter // cache misses = origin fetches from this node
	sheds    *obs.Counter // requests refused by the admission guard
	denials  *obs.Counter // requests refused because the node is down
	up       *obs.Gauge   // 1 while the node process is alive
}

// newNode wires one edge. onOriginFetch (may be nil) is called once
// per cache miss, before the origin synthesis runs — the cluster's
// origin-offload accounting hangs off it.
func newNode(id string, origin dash.ChunkSource, catalog *dash.Catalog,
	shards int, budget int64, maxInFlight int, retryAfter time.Duration,
	reg *obs.Registry, onOriginFetch func()) *Node {
	n := &Node{
		id:          id,
		maxInFlight: int64(maxInFlight),
		retryAfter:  retryAfter,
		met: nodeMetrics{
			requests: reg.Counter("cluster.node." + id + ".requests"),
			misses:   reg.Counter("cluster.node." + id + ".misses"),
			sheds:    reg.Counter("cluster.node." + id + ".sheds"),
			denials:  reg.Counter("cluster.node." + id + ".down_denials"),
			up:       reg.Gauge("cluster.node." + id + ".up"),
		},
	}
	n.met.up.Set(1)
	// The miss path pulls from the origin on the store's per-flight
	// context: the singleflight leader synthesizes for every waiter
	// sharing the flight, and the store cancels the flight only when
	// the last interested caller departs — so a canceled viewer aborts
	// an origin fetch nobody else wants, without poisoning a body other
	// viewers are waiting on.
	n.store = serve.New(serve.WithCtxSynth(func(ctx context.Context, key serve.ChunkKey) ([]byte, error) {
		n.met.misses.Inc()
		if onOriginFetch != nil {
			onOriginFetch()
		}
		return origin.Chunk(ctx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	}), serve.WithShards(shards), serve.WithBudget(budget))
	if catalog != nil {
		n.server = dash.NewServer(catalog, dash.WithObs(reg), dash.WithStore(n))
	}
	return n
}

// startWire turns the node into an HTTP process and builds the client
// the router will reach it through. Exactly one of three wire carriers
// applies: an in-process LoopbackTransport (deterministic tests and
// benchmarks), a caller-supplied RoundTripper (fault injection), or —
// the default — a real TCP listener on 127.0.0.1.
func (n *Node) startWire(loop *LoopbackTransport, rt http.RoundTripper,
	retry dash.RetryPolicy, reg *obs.Registry) error {
	n.wireMode = true
	switch {
	case loop != nil:
		n.loop = loop
		n.baseURL = "http://" + n.loopbackHost()
		loop.register(n.loopbackHost(), n)
		n.client = dash.NewClient(n.baseURL,
			dash.WithTransport(loop), dash.WithRetry(retry), dash.WithClientObs(reg))
	case rt != nil:
		n.baseURL = "http://" + n.loopbackHost()
		n.client = dash.NewClient(n.baseURL,
			dash.WithTransport(rt), dash.WithRetry(retry), dash.WithClientObs(reg))
	default:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("cluster: bind %s: %w", n.id, err)
		}
		n.addr = ln.Addr().String()
		n.baseURL = "http://" + n.addr
		n.serveOn(ln)
		n.client = dash.NewClient(n.baseURL,
			dash.WithRetry(retry), dash.WithClientObs(reg))
	}
	n.accepting.Store(true)
	return nil
}

// loopbackHost is the node's synthetic host name on transport-backed
// wire carriers.
func (n *Node) loopbackHost() string { return n.id + ".edge.sperke" }

// serveOn starts the node's HTTP server on ln and records the runtime
// so Kill can close it.
func (n *Node) serveOn(ln net.Listener) {
	srv := &http.Server{Handler: n.server}
	n.rt.Store(&wireRuntime{ln: ln, srv: srv})
	go func() {
		// Serve returns on Close with ErrServerClosed; nothing to do —
		// Kill/retire own the lifecycle.
		_ = srv.Serve(ln)
	}()
}

// relisten re-binds the node's recorded address after a crash.
func (n *Node) relisten() error {
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return fmt.Errorf("cluster: rebind %s on %s: %w", n.id, n.addr, err)
	}
	n.serveOn(ln)
	return nil
}

// Addr returns the node's listen address ("127.0.0.1:port") in the
// real-listener wire form, or "" otherwise.
func (n *Node) Addr() string { return n.addr }

// BaseURL returns the URL the router's client dials for this node; ""
// outside the wire form.
func (n *Node) BaseURL() string { return n.baseURL }

// ID returns the node's name ("edge-0", "edge-1", …).
func (n *Node) ID() string { return n.id }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down.Load() }

// Kill crashes the node: its cache is dropped (a restarted process
// comes back cold), its listener — when it has one — closes so
// in-flight and future connections meet a real refusal, and every
// in-process request or probe fails with ErrNodeDown until Recover.
// Idempotent.
func (n *Node) Kill() {
	if n.down.Swap(true) {
		return
	}
	n.met.up.Set(0)
	n.accepting.Store(false)
	n.store.Reset()
	if rt := n.rt.Swap(nil); rt != nil {
		// Close (not Shutdown): a crash does not drain gracefully.
		_ = rt.srv.Close()
	}
}

// Recover restarts a killed node (cold — Kill dropped the cache) and,
// in the real-listener wire form, re-binds its recorded address. If
// the port cannot be re-taken the node stays unreachable and the
// health layer keeps routing around it. Idempotent.
func (n *Node) Recover() {
	if !n.down.Swap(false) {
		return
	}
	n.met.up.Set(1)
	if n.wireMode && n.addr != "" {
		if err := n.relisten(); err != nil {
			return
		}
	}
	n.accepting.Store(true)
}

// retire permanently stops the node after removal from the membership:
// listener closed, loopback host deregistered, gauge dropped. Not
// idempotent-sensitive — the cluster calls it exactly once, after the
// node left the routing table.
func (n *Node) retire() {
	n.accepting.Store(false)
	n.down.Store(true)
	n.met.up.Set(0)
	if n.loop != nil {
		n.loop.deregister(n.loopbackHost())
	}
	if rt := n.rt.Swap(nil); rt != nil {
		_ = rt.srv.Close()
	}
}

// Ping is the active health probe: nil iff the node can take traffic.
// In the wire form it is a real GET /v through the node's client — a
// closed listener fails it the honest way. It deliberately ignores
// load — an overloaded node is alive, and declaring it dead would
// amplify the cascade shedding exists to stop.
func (n *Node) Ping() error {
	if n.down.Load() {
		return fmt.Errorf("cluster: probe %s: %w", n.id, ErrNodeDown)
	}
	if n.client != nil {
		return n.client.Ping(probeCtx())
	}
	return nil
}

// openWire opens the chunk as a stream through the node's HTTP client.
// This is the cluster's one client-facing seam — the clockhygiene
// allowlist names it, since the client's retry machinery owns the real
// backoff timers.
func (n *Node) openWire(ctx context.Context, key serve.ChunkKey) (dash.ChunkStream, error) {
	return n.client.OpenChunk(ctx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
}

// Warm hands the node a pre-built body for key — the replication write
// path. A down node refuses (its restarted cache must come back cold);
// a resident key is left alone. Reports whether the body went in.
func (n *Node) Warm(key serve.ChunkKey, body []byte) bool {
	if n.down.Load() {
		return false
	}
	return n.store.Put(key, body)
}

// Chunk implements dash.ChunkSource. A down node fails immediately
// with ErrNodeDown; a saturated one sheds with *dash.OverloadError
// before touching the store, so the refusal costs almost nothing.
func (n *Node) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	if n.down.Load() {
		n.met.denials.Inc()
		return nil, fmt.Errorf("cluster: %s: %w", n.id, ErrNodeDown)
	}
	if cur := n.inflight.Add(1); cur > n.maxInFlight {
		n.inflight.Add(-1)
		n.met.sheds.Inc()
		return nil, &dash.OverloadError{RetryAfter: n.retryAfter}
	}
	defer n.inflight.Add(-1)
	n.met.requests.Inc()
	return n.store.Get(ctx, serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer})
}

// Handler returns the node's own dash.Server — the edge as an HTTP
// process, overload and down semantics included (503+Retry-After).
// Nil when the cluster was built without a catalog.
func (n *Node) Handler() http.Handler {
	if n.server == nil {
		return nil
	}
	return n.server
}

// Store exposes the node's chunk store for inspection.
func (n *Node) Store() *serve.Store { return n.store }

// Requests, Misses and Hits report the node's admitted requests, cache
// misses (each one an origin fetch) and the difference — the per-node
// hit/miss accounting routing assertions key off.
func (n *Node) Requests() int64 { return n.met.requests.Value() }

// Misses reports the node's cache misses (origin fetches).
func (n *Node) Misses() int64 { return n.met.misses.Value() }

// Hits reports requests served without an origin fetch (singleflight
// waiters count as hits: they were served by a peer's synthesis).
func (n *Node) Hits() int64 { return n.Requests() - n.Misses() }

// InFlight reports the admission guard's current occupancy.
func (n *Node) InFlight() int64 { return n.inflight.Load() }

// probeCtx is the root context for router-initiated probes — probes
// belong to no request, so there is nothing to inherit from. Named (and
// allowlisted by the ctxflow checker) to keep context.Background out of
// the rest of the package.
func probeCtx() context.Context { return context.Background() }

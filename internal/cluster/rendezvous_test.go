package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"sperke/internal/serve"
)

func testKeys(n int) []serve.ChunkKey {
	keys := make([]serve.ChunkKey, n)
	for i := range keys {
		keys[i] = serve.ChunkKey{
			Video:   "vid",
			Quality: i % 3,
			Tile:    i % 16,
			Index:   i / 3,
			Layer:   i%2 == 1,
		}
	}
	return keys
}

func TestRankIsDeterministicAndOrderIndependent(t *testing.T) {
	nodes := []string{"edge-0", "edge-1", "edge-2", "edge-3"}
	shuffled := []string{"edge-3", "edge-1", "edge-0", "edge-2"}
	for _, key := range testKeys(50) {
		a := Rank(key, nodes)
		b := Rank(key, shuffled)
		c := Rank(key, nodes)
		if len(a) != len(nodes) {
			t.Fatalf("Rank returned %d nodes, want %d", len(a), len(nodes))
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("key %v: rankings differ: %v vs %v vs %v", key, a, b, c)
			}
		}
	}
}

func TestRankMinimalMovementOnMemberLoss(t *testing.T) {
	nodes := []string{"edge-0", "edge-1", "edge-2", "edge-3", "edge-4"}
	const dead = "edge-2"
	survivors := make([]string, 0, len(nodes)-1)
	for _, id := range nodes {
		if id != dead {
			survivors = append(survivors, id)
		}
	}
	moved := 0
	for _, key := range testKeys(500) {
		before := Rank(key, nodes)
		after := Rank(key, survivors)
		if before[0] == dead {
			// The dead node's keys — and only those — promote to their
			// next-ranked survivor.
			moved++
			if after[0] != before[1] {
				t.Fatalf("key %v: moved to %s, want next-ranked %s", key, after[0], before[1])
			}
			continue
		}
		if after[0] != before[0] {
			t.Fatalf("key %v moved from %s to %s though %s was not its owner",
				key, before[0], after[0], dead)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed node; the test asserted nothing")
	}
}

func TestRankSpreadsKeys(t *testing.T) {
	nodes := []string{"edge-0", "edge-1", "edge-2"}
	counts := map[string]int{}
	keys := testKeys(900)
	for _, key := range keys {
		counts[Rank(key, nodes)[0]]++
	}
	for _, id := range nodes {
		// Perfect balance is 300 each; demand each node owns at least a
		// third of its fair share so a broken hash fold shows up.
		if counts[id] < len(keys)/9 {
			t.Fatalf("node %s owns %d of %d keys; distribution collapsed: %v",
				id, counts[id], len(keys), counts)
		}
	}
}

func TestRendezvousScoreSeparatesNodeAndKey(t *testing.T) {
	// The separator byte keeps ("ab", video "c") and ("a", video "bc")
	// from folding identically.
	k1 := serve.ChunkKey{Video: "c"}
	k2 := serve.ChunkKey{Video: "bc"}
	if rendezvousScore("ab", k1) == rendezvousScore("a", k2) {
		t.Fatal("node/key boundary collision")
	}
	if rendezvousScore("edge-0", k1) == rendezvousScore("edge-1", k1) {
		t.Fatal("distinct nodes scored identically for one key")
	}
}

// TestRankPropertyMinimalMovementUnderChurn is the property form of
// the minimal-movement guarantee: across seeded random memberships and
// random add/remove steps, an addition may move keys only onto the new
// member, and a removal moves only the removed member's keys — each to
// its next-ranked survivor.
func TestRankPropertyMinimalMovementUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(360))
	keys := testKeys(200)
	for trial := 0; trial < 25; trial++ {
		pool := rng.Perm(64)
		size := 3 + rng.Intn(8)
		nodes := make([]string, size)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("edge-%d", pool[i])
		}
		if rng.Intn(2) == 0 {
			// Addition: only the newcomer may steal.
			joined := fmt.Sprintf("edge-%d", pool[size])
			grown := append(append([]string{}, nodes...), joined)
			stolen := 0
			for _, key := range keys {
				was, now := Rank(key, nodes)[0], Rank(key, grown)[0]
				if now == joined {
					stolen++
					continue
				}
				if now != was {
					t.Fatalf("trial %d: key %v moved %s→%s though %s joined", trial, key, was, now, joined)
				}
			}
			if stolen == 0 {
				t.Fatalf("trial %d: newcomer %s stole nothing from %d nodes", trial, joined, size)
			}
			continue
		}
		// Removal: only the departed member's keys move, each to its
		// next-ranked survivor.
		dead := nodes[rng.Intn(size)]
		survivors := make([]string, 0, size-1)
		for _, id := range nodes {
			if id != dead {
				survivors = append(survivors, id)
			}
		}
		for _, key := range keys {
			before := Rank(key, nodes)
			after := Rank(key, survivors)
			if before[0] == dead {
				if after[0] != before[1] {
					t.Fatalf("trial %d: key %v moved to %s, want next-ranked %s", trial, key, after[0], before[1])
				}
				continue
			}
			if after[0] != before[0] {
				t.Fatalf("trial %d: key %v moved %s→%s though %s departed", trial, key, before[0], after[0], dead)
			}
		}
	}
}

// TestOwnersSurviveSingleRemoval is the replication placement property:
// with R=2, after removing any single member every key keeps at least
// one of its previous owners in its new owner set — the copy that makes
// the removal free for warm keys.
func TestOwnersSurviveSingleRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(361))
	keys := testKeys(150)
	for trial := 0; trial < 15; trial++ {
		pool := rng.Perm(64)
		size := 3 + rng.Intn(6)
		nodes := make([]string, size)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("edge-%d", pool[i])
		}
		for _, dead := range nodes {
			survivors := make([]string, 0, size-1)
			for _, id := range nodes {
				if id != dead {
					survivors = append(survivors, id)
				}
			}
			for _, key := range keys {
				was := Owners(key, nodes, 2)
				now := Owners(key, survivors, 2)
				if len(was) != 2 || len(now) != 2 {
					t.Fatalf("trial %d: owner sets sized %d/%d, want 2/2", trial, len(was), len(now))
				}
				kept := false
				for _, old := range was {
					if old == dead {
						continue
					}
					for _, cur := range now {
						if cur == old {
							kept = true
						}
					}
				}
				if !kept {
					t.Fatalf("trial %d: key %v lost both prior owners %v after removing %s (now %v)",
						trial, key, was, dead, now)
				}
			}
		}
	}
}

func BenchmarkRank(b *testing.B) {
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("edge-%d", i)
	}
	key := serve.ChunkKey{Video: "vid", Quality: 2, Tile: 7, Index: 123}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rank(key, nodes)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/serve"
	"sperke/internal/sim"
	"sperke/internal/tiling"
)

// wireVideo is the catalog entry wire tests address chunks against —
// node dash.Servers validate every chunk address against it.
func wireVideo() *media.Video {
	return &media.Video{
		ID:             "wire",
		Duration:       20 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}
}

// wireKeys is 48 distinct valid chunk addresses for wireVideo.
func wireKeys(v *media.Video) []serve.ChunkKey {
	var keys []serve.ChunkKey
	for idx := 0; idx < 2; idx++ {
		for tile := 0; tile < v.Grid.Tiles(); tile++ {
			for q := 0; q < 3; q++ {
				keys = append(keys, serve.ChunkKey{Video: v.ID, Quality: q, Tile: tile, Index: idx})
			}
		}
	}
	return keys
}

func wireCatalog(t *testing.T, v *media.Video) *dash.Catalog {
	t.Helper()
	catalog := dash.NewCatalog()
	if err := catalog.Add(v); err != nil {
		t.Fatal(err)
	}
	return catalog
}

func chunkGET(t *testing.T, h http.Handler, key serve.ChunkKey) *httptest.ResponseRecorder {
	t.Helper()
	path := fmt.Sprintf("/v/%s/c/%d/%d/%d", key.Video, key.Quality, key.Tile, key.Index)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestWireClusterServesOverLoopback pins the wire tentpole end to end
// on the deterministic transport: the front door proxies each chunk
// from its rendezvous owner's own HTTP process as a stream
// (Content-Length forwarded), the owner caches it, and a warm replay
// never touches the origin.
func TestWireClusterServesOverLoopback(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(3), WithLoopback(), WithCatalog(wireCatalog(t, v)),
		WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := wireKeys(v)
	for _, key := range keys {
		rec := chunkGET(t, c.FrontDoor(), key)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %v: status %d: %s", key, rec.Code, rec.Body.String())
		}
		want := originBody(key)
		if rec.Body.String() != string(want) {
			t.Fatalf("key %v: body %q, want %q", key, rec.Body.String(), want)
		}
		if got := rec.Header().Get("Content-Length"); got != strconv.Itoa(len(want)) {
			t.Fatalf("key %v: Content-Length %q, want %d", key, got, len(want))
		}
	}
	if origin.count() != len(keys) {
		t.Fatalf("cold pass cost %d origin fetches, want %d", origin.count(), len(keys))
	}
	// Every key lives on exactly its rendezvous owner (R=1).
	for _, key := range keys {
		top := Rank(key, c.NodeNames())[0]
		for _, n := range c.Nodes() {
			if n.Store().Contains(key) != (n.ID() == top) {
				t.Fatalf("key %v: cached on %s, rendezvous owner is %s", key, n.ID(), top)
			}
		}
	}
	for _, key := range keys {
		if rec := chunkGET(t, c.FrontDoor(), key); rec.Code != http.StatusOK {
			t.Fatalf("warm GET %v: status %d", key, rec.Code)
		}
	}
	if origin.count() != len(keys) {
		t.Fatalf("warm pass refetched from the origin (%d total, want %d)", origin.count(), len(keys))
	}
}

// TestWireKillIsConnectionRefused pins the honest failure mode of the
// wire form: a killed node's client meets ECONNREFUSED — not a typed
// in-process sentinel — and the router fails the key over to its
// next-ranked owner.
func TestWireKillIsConnectionRefused(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(3), WithLoopback(), WithCatalog(wireCatalog(t, v)),
		WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	key := wireKeys(v)[0]
	ranked := Rank(key, c.NodeNames())
	dead, second := ranked[0], ranked[1]
	c.KillNode(dead)

	if _, err := c.Node(dead).openWire(context.Background(), key); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("killed node's wire error = %v, want ECONNREFUSED", err)
	}
	body, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	if err != nil {
		t.Fatalf("failover fetch: %v", err)
	}
	if string(body) != string(originBody(key)) {
		t.Fatalf("failover body %q, want %q", body, originBody(key))
	}
	if !c.Node(second).Store().Contains(key) {
		t.Fatalf("failover did not land on next-ranked %s", second)
	}
	if got := c.met.reroutes.Value(); got != 1 {
		t.Fatalf("reroutes = %d, want 1", got)
	}
	// Recover rebinds (loopback: re-accepts); the probe path comes back.
	c.RecoverNode(dead)
	if err := c.Node(dead).Ping(); err != nil {
		t.Fatalf("recovered node's wire probe: %v", err)
	}
}

// TestWireRealListeners exercises WithWire(true) — actual TCP
// listeners on loopback: chunks served over real sockets, Kill closes
// the listener (dial refused), Recover re-binds the same address.
func TestWireRealListeners(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(2), WithWire(true), WithCatalog(wireCatalog(t, v)),
		WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range c.Nodes() {
			n.retire()
		}
	}()
	key := wireKeys(v)[0]
	top := Rank(key, c.NodeNames())[0]
	n := c.Node(top)
	if n.Addr() == "" {
		t.Fatal("wire node has no listen address")
	}
	body, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	if err != nil {
		t.Fatalf("wire fetch over real listener: %v", err)
	}
	if string(body) != string(originBody(key)) {
		t.Fatalf("wire body %q, want %q", body, originBody(key))
	}

	addr := n.Addr()
	n.Kill()
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("dialing a killed node's listener succeeded")
	}
	n.Recover()
	if n.Addr() != addr {
		t.Fatalf("recovered node moved from %s to %s", addr, n.Addr())
	}
	if err := n.Ping(); err != nil {
		t.Fatalf("probe after re-bind: %v", err)
	}
}

// TestWireReplicationSurvivesOwnerKill is the replication acceptance
// (E23): with R=2 every served body lands on both rendezvous owners,
// so killing either one and replaying the whole key set costs exactly
// zero incremental origin fetches — an equality on counters, not a
// bound. Warm writes are asynchronous now, so the equality is eventual
// until DrainWarms fences the warm queue; after the fence it is exact
// again.
func TestWireReplicationSurvivesOwnerKill(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(3), WithReplication(2), WithLoopback(),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := wireKeys(v)
	for _, key := range keys {
		if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
			t.Fatalf("warm pass %v: %v", key, err)
		}
	}
	if origin.count() != len(keys) {
		t.Fatalf("warm pass cost %d origin fetches, want %d", origin.count(), len(keys))
	}
	// The replication write-through runs on the warm worker; the fence
	// turns "eventually both owners hold every key" into an exact
	// assertion.
	c.DrainWarms()
	if got := c.Warms(); got != int64(len(keys)) {
		t.Fatalf("warms = %d, want one per key = %d", got, len(keys))
	}
	for _, key := range keys {
		for _, id := range Owners(key, c.NodeNames(), 2) {
			if !c.Node(id).Store().Contains(key) {
				t.Fatalf("key %v missing from owner %s", key, id)
			}
		}
	}

	const dead = "edge-1"
	deadOwned := 0
	for _, key := range keys {
		if Rank(key, c.NodeNames())[0] == dead {
			deadOwned++
		}
	}
	if deadOwned == 0 {
		t.Fatal("no key's primary owner is the node being killed; scenario asserts nothing")
	}
	c.KillNode(dead)
	before := origin.count()
	reroutesBefore := c.met.reroutes.Value()
	for _, key := range keys {
		body, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		if err != nil {
			t.Fatalf("post-kill fetch %v: %v", key, err)
		}
		if string(body) != string(originBody(key)) {
			t.Fatalf("post-kill body mismatch for %v", key)
		}
	}
	if got := origin.count(); got != before {
		t.Fatalf("killing a replicated owner cost %d incremental origin fetches, want exactly 0", got-before)
	}
	if got := c.met.reroutes.Value() - reroutesBefore; got != int64(deadOwned) {
		t.Fatalf("post-kill pass rerouted %d keys, want exactly the dead node's %d", got, deadOwned)
	}
}

// TestRemoveNodeWithReplicationCostsNoRefetch: draining a member out of
// a replicated cluster is free for warm keys — the surviving owner
// already holds every copy — and the retired node's process refuses.
func TestRemoveNodeWithReplicationCostsNoRefetch(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(3), WithReplication(2), WithLoopback(),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := wireKeys(v)
	for _, key := range keys {
		if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
			t.Fatal(err)
		}
	}
	// Fence the async replication writes: removal is only free once the
	// surviving owner actually holds the copies.
	c.DrainWarms()
	const drained = "edge-2"
	removed := c.Node(drained)
	if err := c.RemoveNode(drained); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(drained); err == nil {
		t.Fatal("second RemoveNode of the same name succeeded")
	}
	if len(c.NodeNames()) != 2 {
		t.Fatalf("membership after removal: %v", c.NodeNames())
	}
	if _, err := removed.openWire(context.Background(), keys[0]); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("retired node's wire error = %v, want ECONNREFUSED", err)
	}
	before := origin.count()
	for _, key := range keys {
		if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
			t.Fatalf("post-removal fetch %v: %v", key, err)
		}
	}
	if got := origin.count(); got != before {
		t.Fatalf("removing a replicated member cost %d origin refetches, want exactly 0", got-before)
	}
}

// TestAddNodeMovesOnlyReshardedKeys is the live-membership acceptance:
// growing the cluster moves exactly the keys rendezvous reshards onto
// the new member — counted precisely by per-node miss counters — and
// disturbs nothing else.
func TestAddNodeMovesOnlyReshardedKeys(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(3), WithLoopback(), WithCatalog(wireCatalog(t, v)),
		WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := wireKeys(v)
	for _, key := range keys {
		if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
			t.Fatal(err)
		}
	}
	oldIDs := c.NodeNames()
	missesBefore := map[string]int64{}
	for _, n := range c.Nodes() {
		missesBefore[n.ID()] = n.Misses()
	}

	added, err := c.AddNode("")
	if err != nil {
		t.Fatal(err)
	}
	if added.ID() != "edge-3" {
		t.Fatalf("auto-assigned name %q, want edge-3", added.ID())
	}
	if _, err := c.AddNode("edge-0"); err == nil {
		t.Fatal("AddNode accepted a duplicate name")
	}
	newIDs := c.NodeNames()
	moved := 0
	for _, key := range keys {
		was, now := Rank(key, oldIDs)[0], Rank(key, newIDs)[0]
		if now != was && now != added.ID() {
			t.Fatalf("key %v moved %s→%s; only the new node may steal keys", key, was, now)
		}
		if now == added.ID() {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key resharded onto the new node; the test asserts nothing")
	}

	for _, key := range keys {
		if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
			t.Fatalf("post-add fetch %v: %v", key, err)
		}
	}
	if got := added.Misses(); got != int64(moved) {
		t.Fatalf("new node pulled %d keys from the origin, rendezvous resharded exactly %d", got, moved)
	}
	for _, id := range oldIDs {
		if got := c.Node(id).Misses(); got != missesBefore[id] {
			t.Fatalf("unmoved member %s refetched %d keys from the origin", id, got-missesBefore[id])
		}
	}
}

// TestWireClusterChaosUnderLoad hammers the over-the-wire cluster from
// many goroutines through a kill/recover cycle plus a live AddNode and
// RemoveNode, with the race detector watching. No fetch may fail: the
// worst a client sees is a reroute or an origin fallback.
func TestWireClusterChaosUnderLoad(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin,
		WithNodes(4), WithReplication(2), WithLoopback(),
		WithCatalog(wireCatalog(t, v)),
		WithHealth(HealthConfig{FailThreshold: 3, ProbeSuccesses: 2,
			Cooldown: time.Millisecond, ProbeInterval: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	keys := wireKeys(v)
	const (
		workers = 8
		rounds  = 10
		dead    = "edge-1"
	)
	var failures atomic.Int64
	runRound := func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(keys); i += workers {
					key := keys[i]
					if _, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer); err != nil {
						failures.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	for r := 0; r < rounds; r++ {
		switch r {
		case 2:
			c.KillNode(dead)
		case 4:
			if _, err := c.AddNode(""); err != nil {
				t.Fatalf("AddNode mid-run: %v", err)
			}
		case 6:
			c.RecoverNode(dead)
			time.Sleep(5 * time.Millisecond)
			c.ProbeAll()
			c.ProbeAll()
		case 8:
			if err := c.RemoveNode("edge-2"); err != nil {
				t.Fatalf("RemoveNode mid-run: %v", err)
			}
		}
		runRound()
		c.ProbeAll()
	}
	if got := failures.Load(); got != 0 {
		t.Fatalf("%d fetches failed across the wire chaos run", got)
	}
	if got := c.met.reroutes.Value(); got == 0 {
		t.Fatal("chaos run produced no reroutes; the kill was not exercised")
	}
	if got := c.Node(dead).Requests() + c.Node(dead).Misses(); got == 0 {
		t.Fatal("recovered node never served again")
	}
}

package cluster

import (
	"context"
	"sync"

	"sperke/internal/serve"
)

// Asynchronous warm tier. Replication warms used to run synchronously
// on the serving path — the viewer's response did not complete until
// every co-owner held the copy — which made E23's zero-incremental-
// origin-fetch property an exact counter equality but put O(R) cache
// writes inside the serving p99. The warm queue moves those writes
// (and the crowd-prior pre-warms) onto a single background worker
// behind a bounded drop-oldest queue: serving enqueues and returns,
// the worker drains, and overload degrades to dropped warms
// (cluster.warm_drops) instead of a slower tail. The equality survives
// in eventual form — DrainWarms blocks until the worker has gone idle
// over an empty queue, after which every enqueued warm has been
// applied or dropped, and the counters can be asserted exactly.

// warmJob is one unit of background warm work. A replica warm carries
// the just-served body and its pre-computed targets; a pre-warm
// carries only the key (body == nil) and resolves owners, fetches the
// origin, and writes at execution time.
type warmJob struct {
	key     serve.ChunkKey
	body    []byte
	targets []*Node
}

// warmQueue is a bounded FIFO drained by one lazily-started worker
// goroutine. All fields are guarded by mu except the channels, which
// are only ever touched outside it (the lockscope checker enforces
// exactly that shape): enqueue appends under mu then signals wake
// after unlocking, and the worker collects drain waiters under mu but
// closes them unlocked.
type warmQueue struct {
	mu      sync.Mutex
	jobs    []warmJob
	pending map[serve.ChunkKey]struct{} // pre-warm keys queued but not yet executed
	waiters []chan struct{}             // DrainWarms callers, released at idle-empty
	idle    bool                        // worker is parked (or not yet started)
	started bool
	stopped bool

	wake chan struct{} // capacity 1: coalesces enqueue signals
	stop chan struct{}
}

func newWarmQueue() *warmQueue {
	return &warmQueue{
		pending: make(map[serve.ChunkKey]struct{}),
		idle:    true,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
}

// enqueueWarm queues a job, dropping the oldest entry when the queue
// is full, and starts the worker on first use. Jobs enqueued after
// Close are discarded.
func (c *Cluster) enqueueWarm(j warmJob) {
	q := c.warmQ
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	if len(q.jobs) >= c.cfg.warmQueueCap {
		old := q.jobs[0]
		copy(q.jobs, q.jobs[1:])
		q.jobs[len(q.jobs)-1] = warmJob{}
		q.jobs = q.jobs[:len(q.jobs)-1]
		if old.body == nil {
			delete(q.pending, old.key)
		}
		c.met.warmDrops.Inc()
	}
	q.jobs = append(q.jobs, j)
	start := !q.started
	q.started = true
	q.mu.Unlock()
	if start {
		go c.warmWorker()
	}
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// markPending records a pre-warm key as queued; false means the key is
// already waiting and the caller should not enqueue a duplicate.
func (q *warmQueue) markPending(key serve.ChunkKey) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stopped {
		return false
	}
	if _, dup := q.pending[key]; dup {
		return false
	}
	q.pending[key] = struct{}{}
	return true
}

// warmWorker is the queue's single consumer. It parks on wake when the
// queue empties — releasing any drain waiters first, so DrainWarms
// unblocks exactly at the all-applied point — and exits on stop,
// abandoning whatever is still queued (Close is a teardown, not a
// flush).
func (c *Cluster) warmWorker() {
	q := c.warmQ
	for {
		q.mu.Lock()
		if q.stopped {
			ws := q.waiters
			q.waiters = nil
			q.mu.Unlock()
			releaseWaiters(ws)
			return
		}
		if len(q.jobs) == 0 {
			q.idle = true
			ws := q.waiters
			q.waiters = nil
			q.mu.Unlock()
			releaseWaiters(ws)
			select {
			case <-q.wake:
			case <-q.stop:
			}
			continue
		}
		j := q.jobs[0]
		copy(q.jobs, q.jobs[1:])
		q.jobs[len(q.jobs)-1] = warmJob{}
		q.jobs = q.jobs[:len(q.jobs)-1]
		q.idle = false
		q.mu.Unlock()
		c.runWarmJob(j)
	}
}

func releaseWaiters(ws []chan struct{}) {
	for _, w := range ws {
		close(w)
	}
}

// runWarmJob applies one dequeued job on the worker goroutine.
func (c *Cluster) runWarmJob(j warmJob) {
	if j.body != nil {
		for _, t := range j.targets {
			if t.Warm(j.key, j.body) {
				c.met.warms.Inc()
			}
		}
		return
	}
	c.runPrewarm(j.key)
}

// runPrewarm executes one crowd-prior pre-warm: resolve the key's
// current live cold owners, synthesize the body from the origin once,
// and write it into each of them. Owners are resolved at execution
// time, not enqueue time, so membership churn between the two cannot
// warm a node that no longer owns the key. The origin fetch is
// deliberately direct — not through a node store — so node miss
// counters and cluster.origin_fetches keep meaning "a viewer waited on
// this synthesis"; speculative fetches count under
// cluster.prewarm_fetches instead.
func (c *Cluster) runPrewarm(key serve.ChunkKey) {
	defer c.clearPending(key)
	m := c.mem.Load()
	ranked := Rank(key, m.ids)
	owners := ranked[:min(c.cfg.replication, len(ranked))]
	var targets []*Node
	for _, id := range owners {
		n := m.byID[id]
		if n == nil || n.Down() || !c.health.alive(id) || n.store.Contains(key) {
			continue
		}
		targets = append(targets, n)
	}
	if len(targets) == 0 {
		return
	}
	if c.coal != nil && c.coal.inFlight(key) {
		// A viewer is fetching this key right now; its flight will warm
		// the owners on the way past.
		return
	}
	body, err := c.origin.Chunk(warmCtx(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
	if err != nil {
		return
	}
	c.met.prewarmFetches.Inc()
	for _, t := range targets {
		if t.Warm(key, body) {
			c.met.prewarms.Inc()
		}
	}
}

func (c *Cluster) clearPending(key serve.ChunkKey) {
	q := c.warmQ
	q.mu.Lock()
	delete(q.pending, key)
	q.mu.Unlock()
}

// DrainWarms blocks until the warm worker has applied (or dropped)
// every job enqueued before the call — the explicit synchronization
// point that turns the async tier's eventual properties back into
// exact counter equalities for tests and experiment harnesses. Returns
// immediately when the queue is already drained or the cluster is
// closed.
func (c *Cluster) DrainWarms() {
	q := c.warmQ
	q.mu.Lock()
	if q.stopped || (q.idle && len(q.jobs) == 0) {
		q.mu.Unlock()
		return
	}
	w := make(chan struct{})
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()
	<-w
}

// Close stops the warm worker. Queued jobs are abandoned — Close is
// the cluster's teardown, and a warm that never lands only costs a
// future cache miss. Idempotent; safe to call on a cluster whose
// worker never started.
func (c *Cluster) Close() {
	q := c.warmQ
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	q.stopped = true
	started := q.started
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	close(q.stop)
	if !started {
		// No worker will ever run to release waiters (there can be none,
		// since DrainWarms returns early on an idle queue, but keep the
		// invariant explicit).
		releaseWaiters(ws)
	}
}

// warmCtx is the root context for background warm work — replica
// writes and pre-warm syntheses belong to no viewer request, so there
// is nothing to inherit from. Named (and allowlisted by the ctxflow
// checker) to keep context.Background out of the rest of the package.
func warmCtx() context.Context { return context.Background() }

package cluster

import (
	"sync"
	"time"

	"sperke/internal/obs"
	"sperke/internal/transport"
)

// HealthConfig tunes the router's failure detector. Zero values mean
// defaults.
type HealthConfig struct {
	// FailThreshold consecutive failures — passive routed-request
	// errors or failed active probes — declare a node down; 0 defaults
	// to 3.
	FailThreshold int
	// ProbeSuccesses consecutive clean probes re-admit a down node; 0
	// defaults to 2, so one lucky probe against a flapping node does
	// not restore full traffic.
	ProbeSuccesses int
	// Cooldown is how long a down node is left alone before probes are
	// allowed through again; 0 defaults to 500ms.
	Cooldown time.Duration
	// ProbeInterval paces StartProbes sweeps; 0 defaults to 250ms.
	ProbeInterval time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	return c
}

// health is the router's view of which edges can take traffic: one
// transport.Breaker per node behind a mutex. The breaker is the repo's
// existing failure-detection state machine — consecutive-failure trip,
// cooldown, half-open probe admission — so the cluster reuses it
// rather than growing a parallel one; the mutex is needed because the
// breaker itself is documented single-owner and here every request
// goroutine reports into it.
type health struct {
	mu       sync.Mutex
	breakers map[string]*transport.Breaker
	last     map[string]transport.BreakerState // last published state

	// Kept so dynamically added members (Cluster.AddNode) get breakers
	// built from the same recipe as the founders.
	cfg   HealthConfig
	clock transport.Clock
	reg   *obs.Registry

	aliveGauges map[string]*obs.Gauge
	downs       *obs.Counter
	ups         *obs.Counter
}

// newHealth builds the detector with every node believed alive.
func newHealth(cfg HealthConfig, clock transport.Clock, reg *obs.Registry, ids []string) *health {
	h := &health{
		breakers:    make(map[string]*transport.Breaker, len(ids)),
		last:        make(map[string]transport.BreakerState, len(ids)),
		cfg:         cfg.withDefaults(),
		clock:       clock,
		reg:         reg,
		aliveGauges: make(map[string]*obs.Gauge, len(ids)),
		downs:       reg.Counter("cluster.health.down_transitions"),
		ups:         reg.Counter("cluster.health.up_transitions"),
	}
	for _, id := range ids {
		h.add(id)
	}
	return h
}

// add registers one node with the detector, believed alive and with a
// fresh breaker — a re-added name does not inherit its predecessor's
// failure history. Idempotent for present members.
func (h *health) add(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.breakers[id] != nil {
		return
	}
	h.breakers[id] = transport.NewBreaker(h.clock, transport.BreakerConfig{
		FailureThreshold: h.cfg.FailThreshold,
		Cooldown:         h.cfg.Cooldown,
		ProbeSuccesses:   h.cfg.ProbeSuccesses,
	})
	delete(h.last, id)
	g := h.reg.Gauge("cluster.health." + id + ".alive")
	g.Set(1)
	h.aliveGauges[id] = g
}

// remove forgets one node; its gauge drops to 0 and later allow calls
// for the name refuse.
func (h *health) remove(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if g := h.aliveGauges[id]; g != nil {
		g.Set(0)
	}
	delete(h.breakers, id)
	delete(h.last, id)
	delete(h.aliveGauges, id)
}

// allow reports whether a request (or probe) may be sent to the node
// right now: always while believed alive, never during a down node's
// cooldown, one trial at a time once the cooldown passes.
func (h *health) allow(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.breakers[id]
	if b == nil {
		return false
	}
	ok := b.Allow()
	h.publishLocked(id)
	return ok
}

// observe feeds one request or probe outcome into the node's breaker.
func (h *health) observe(id string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.breakers[id]
	if b == nil {
		return
	}
	if err != nil {
		b.OnFailure()
	} else {
		b.OnSuccess()
	}
	h.publishLocked(id)
}

// alive reports whether the node is currently believed healthy.
// Unlike allow it never consumes a half-open breaker's trial
// admission, so warm decisions and snapshots cannot eat the token a
// probe needs.
func (h *health) alive(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.breakers[id]
	return b != nil && b.State() == transport.BreakerClosed
}

// state reports the node's current breaker state.
func (h *health) state(id string) transport.BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.breakers[id]
	if b == nil {
		return transport.BreakerOpen
	}
	s := b.State()
	h.publishLocked(id)
	return s
}

// publishLocked mirrors breaker transitions into the cluster.health.*
// instruments: down on entering Open, up on returning to Closed. The
// half-open window keeps the alive gauge at 0 — the node is a suspect
// on trial, not a member in good standing.
func (h *health) publishLocked(id string) {
	s := h.breakers[id].State()
	prev, seen := h.last[id]
	if seen && s == prev {
		return
	}
	h.last[id] = s
	switch {
	case s == transport.BreakerOpen:
		h.aliveGauges[id].Set(0)
		// Re-opening from a failed half-open probe is the same outage
		// continuing, not a new down transition.
		if !seen || prev == transport.BreakerClosed {
			h.downs.Inc()
		}
	case s == transport.BreakerClosed && seen && prev != transport.BreakerClosed:
		h.ups.Inc()
		h.aliveGauges[id].Set(1)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/serve"
	"sperke/internal/sim"
)

// blockingOrigin blocks synthesis of one key until released, signaling
// each blocked arrival, and counts every call. The herd tests use it
// to hold a flight open while followers pile on.
type blockingOrigin struct {
	mu       sync.Mutex
	calls    int
	block    serve.ChunkKey
	arrived  chan struct{} // one buffered send per blocked call
	release  chan struct{}
	honorCtx bool
}

func newBlockingOrigin(block serve.ChunkKey) *blockingOrigin {
	return &blockingOrigin{
		block:   block,
		arrived: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (o *blockingOrigin) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	key := serve.ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer}
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
	if key == o.block {
		o.arrived <- struct{}{}
		if o.honorCtx {
			select {
			case <-o.release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			<-o.release
		}
	}
	return originBody(key), nil
}

func (o *blockingOrigin) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

// waitForFollowers polls the coalescer until n followers are attached
// to key's flight — the deterministic "everyone is waiting" barrier
// the herd tests release against.
func waitForFollowers(t *testing.T, c *Cluster, key serve.ChunkKey, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.coal.mu.Lock()
		got := 0
		if f := c.coal.flights[key]; f != nil {
			got = f.followers
		}
		c.coal.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers on %v = %d, want %d", key, got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHerdColdKeyCoalescesToOneOriginFetch is the tentpole acceptance
// on the materialized path: a seeded herd of concurrent cold requests
// for one key — against a cluster whose only edge can admit just one
// of them, so before coalescing every excess request shed straight to
// the origin — costs the origin exactly one synthesis, with every
// late arrival attached to the leader's flight. Counter equalities,
// not bounds. Run under -race in CI.
func TestHerdColdKeyCoalescesToOneOriginFetch(t *testing.T) {
	const herd = 8
	key := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	origin := newBlockingOrigin(key)
	c, err := New(origin, WithNodes(1), WithMaxInFlight(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results := make(chan []byte, herd)
	errs := make(chan error, herd)
	fetch := func() {
		body, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		results <- body
		errs <- err
	}
	go fetch() // the flight leader
	<-origin.arrived
	for i := 1; i < herd; i++ {
		go fetch()
	}
	waitForFollowers(t, c, key, herd-1)
	close(origin.release)
	for i := 0; i < herd; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("herd member failed: %v", err)
		}
		if body := <-results; string(body) != string(originBody(key)) {
			t.Fatalf("herd body %q, want %q", body, originBody(key))
		}
	}
	if got := origin.count(); got != 1 {
		t.Fatalf("herd of %d cost %d origin fetches, want exactly 1", herd, got)
	}
	if got := c.Coalesced(); got != herd-1 {
		t.Fatalf("cluster.coalesced = %d, want exactly %d", got, herd-1)
	}
	if got := c.met.sheds.Value(); got != 0 {
		t.Fatalf("cluster.sheds = %d, want 0 — followers must never reach the saturated edge", got)
	}
}

// TestHerdWithoutCoalescingPaysPerShed pins the pre-coalescing
// behavior the tentpole exists to fix: with the router singleflight
// disabled, every herd member past the edge's admission bound sheds
// straight to the origin, costing one synthesis each — the
// failing-before half of the regression pair.
func TestHerdWithoutCoalescingPaysPerShed(t *testing.T) {
	const herd = 5
	key := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	origin := newBlockingOrigin(key)
	c, err := New(origin, WithNodes(1), WithMaxInFlight(1),
		WithCoalescing(false), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errs := make(chan error, herd)
	fetch := func() {
		_, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		errs <- err
	}
	go fetch()
	<-origin.arrived // the first request holds the only edge slot
	for i := 1; i < herd; i++ {
		go fetch()
		<-origin.arrived // each follower sheds and lands on the origin
	}
	close(origin.release)
	for i := 0; i < herd; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("herd member failed: %v", err)
		}
	}
	if got := origin.count(); got != herd {
		t.Fatalf("uncoalesced herd of %d cost %d origin fetches, want one each", herd, got)
	}
	if got := c.met.sheds.Value(); got != herd-1 {
		t.Fatalf("cluster.sheds = %d, want %d", got, herd-1)
	}
}

// TestWireHerdStreamsColdKeyOnce is the tentpole acceptance over the
// wire: concurrent cold GETs for one key through the front door — the
// leader streaming from its edge's HTTP process, the followers
// attached to the flight's teed body — produce byte-identical bodies
// with declared Content-Length and exactly one origin synthesis.
func TestWireHerdStreamsColdKeyOnce(t *testing.T) {
	const herd = 6
	v := wireVideo()
	key := serve.ChunkKey{Video: v.ID, Quality: 0, Tile: 0, Index: 0}
	origin := newBlockingOrigin(key)
	c, err := New(origin, WithNodes(2), WithLoopback(),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	front := c.FrontDoor()
	recs := make(chan *httptest.ResponseRecorder, herd)
	get := func() { recs <- chunkGET(t, front, key) }
	go get()
	<-origin.arrived
	for i := 1; i < herd; i++ {
		go get()
	}
	waitForFollowers(t, c, key, herd-1)
	close(origin.release)
	want := string(originBody(key))
	for i := 0; i < herd; i++ {
		rec := <-recs
		if rec.Code != http.StatusOK {
			t.Fatalf("herd GET status %d", rec.Code)
		}
		if rec.Body.String() != want {
			t.Fatalf("herd body %q, want %q", rec.Body.String(), want)
		}
		if cl := rec.Header().Get("Content-Length"); cl != fmt.Sprint(len(want)) {
			t.Fatalf("Content-Length %q, want %d", cl, len(want))
		}
	}
	if got := origin.count(); got != 1 {
		t.Fatalf("wire herd of %d cost %d origin fetches, want exactly 1", herd, got)
	}
	if got := c.Coalesced(); got != herd-1 {
		t.Fatalf("cluster.coalesced = %d, want exactly %d", got, herd-1)
	}
}

// TestCanceledLeaderDoesNotPoisonFollowers: the flight leader's caller
// cancels mid-synthesis. Followers must not inherit the cancellation —
// they fall back to their own ranked walk and still get bodies, with
// the edge-store singleflight keeping the retry to one synthesis.
func TestCanceledLeaderDoesNotPoisonFollowers(t *testing.T) {
	const followers = 3
	key := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	origin := newBlockingOrigin(key)
	origin.honorCtx = true
	c, err := New(origin, WithNodes(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	leadCtx, cancelLead := context.WithCancel(context.Background())
	leadErr := make(chan error, 1)
	go func() {
		_, err := c.Chunk(leadCtx, key.Video, key.Quality, key.Tile, key.Index, key.Layer)
		leadErr <- err
	}()
	<-origin.arrived
	errs := make(chan error, followers)
	bodies := make(chan []byte, followers)
	for i := 0; i < followers; i++ {
		go func() {
			body, err := c.Chunk(context.Background(), key.Video, key.Quality, key.Tile, key.Index, key.Layer)
			bodies <- body
			errs <- err
		}()
	}
	waitForFollowers(t, c, key, followers)
	cancelLead()
	if err := <-leadErr; err == nil {
		t.Fatal("canceled leader returned no error")
	}
	// The followers retry on their own; the retry's synthesis blocks on
	// the origin until released.
	<-origin.arrived
	close(origin.release)
	for i := 0; i < followers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("follower failed after leader cancel: %v", err)
		}
		if body := <-bodies; string(body) != string(originBody(key)) {
			t.Fatalf("follower body %q, want %q", body, originBody(key))
		}
	}
	if got := c.Coalesced(); got != 0 {
		t.Fatalf("cluster.coalesced = %d after a failed flight, want 0", got)
	}
}

// truncatingTransport answers every chunk GET with a 200 that declares
// more bytes than it delivers — a server or middlebox cutting the body
// mid-stream without breaking the connection.
type truncatingTransport struct {
	declared int64
	body     string
}

func (tr *truncatingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h := make(http.Header)
	h.Set("Content-Length", fmt.Sprint(tr.declared))
	return &http.Response{
		Status:        http.StatusText(http.StatusOK),
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(tr.body)),
		ContentLength: tr.declared,
		Request:       req,
	}, nil
}

// TestFetchWireRejectsTruncatedBody: a drained edge body shorter than
// the declared Content-Length must fail with a typed transient error,
// not hand short bytes to the caller (or a replica's cache) as a
// valid-looking chunk.
func TestFetchWireRejectsTruncatedBody(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(1),
		WithTransport(&truncatingTransport{declared: 100, body: "short"}),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := serve.ChunkKey{Video: v.ID, Quality: 0, Tile: 0, Index: 0}
	_, err = c.fetchWire(context.Background(), c.Node("edge-0"), key)
	var derr *dash.Error
	if !errors.As(err, &derr) {
		t.Fatalf("fetchWire on a truncated body returned %v, want *dash.Error", err)
	}
	if derr.Kind != dash.KindTransient {
		t.Fatalf("Kind = %v, want transient", derr.Kind)
	}
	if !strings.Contains(derr.Error(), "length mismatch") {
		t.Fatalf("error %q does not name the length mismatch", derr)
	}
}

// TestProxyBodyRejectsTruncatedStream is the streaming-path analog:
// the router relayed fewer bytes than the edge declared, so the
// response is ruined and must surface as a typed transient error that
// feeds the failure detector, never as a success.
func TestProxyBodyRejectsTruncatedStream(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(1),
		WithTransport(&truncatingTransport{declared: 100, body: "short"}),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := httptest.NewRecorder()
	_, err = c.streamChunk(context.Background(), rec, v.ID, 0, 0, 0, false)
	var derr *dash.Error
	if !errors.As(err, &derr) || derr.Kind != dash.KindTransient {
		t.Fatalf("streamChunk on a truncated edge stream returned %v, want transient *dash.Error", err)
	}
	if !strings.Contains(derr.Error(), "length mismatch") {
		t.Fatalf("error %q does not name the length mismatch", derr)
	}
}

// failingOrigin errors every synthesis.
type failingOrigin struct{}

func (o *failingOrigin) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	return nil, errors.New("origin storage offline")
}

// TestStreamOriginFetchCountsOnSuccessOnly is the accounting
// regression for the wire fallback: a failed origin stream used to
// increment cluster.origin_fetches before streamOrigin ran, skewing
// the offload ratio and the E23 equalities. Failures must land under
// cluster.origin_stream_errors; only completed streams count as
// fetches.
func TestStreamOriginFetchCountsOnSuccessOnly(t *testing.T) {
	v := wireVideo()
	c, err := New(&failingOrigin{}, WithNodes(2), WithLoopback(),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, id := range c.NodeNames() {
		c.KillNode(id)
	}
	rec := chunkGET(t, c.FrontDoor(), serve.ChunkKey{Video: v.ID})
	if rec.Code == http.StatusOK {
		t.Fatalf("GET with a dead origin returned %d", rec.Code)
	}
	if got := c.met.originFallbacks.Value(); got != 1 {
		t.Fatalf("origin_fallbacks = %d, want 1", got)
	}
	if got := c.met.originFetches.Value(); got != 0 {
		t.Fatalf("origin_fetches = %d after a failed stream, want 0", got)
	}
	if got := c.met.originStreamErrs.Value(); got != 1 {
		t.Fatalf("origin_stream_errors = %d, want 1", got)
	}
	if req, fetches := c.OffloadCounts(); req != 1 || fetches != 0 {
		t.Fatalf("OffloadCounts = (%d, %d), want (1, 0)", req, fetches)
	}
}

// TestStreamOriginFetchCountedOnSuccess is the passing half: a
// completed fallback stream counts exactly once.
func TestStreamOriginFetchCountedOnSuccess(t *testing.T) {
	v := wireVideo()
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(2), WithLoopback(),
		WithCatalog(wireCatalog(t, v)), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, id := range c.NodeNames() {
		c.KillNode(id)
	}
	key := serve.ChunkKey{Video: v.ID}
	rec := chunkGET(t, c.FrontDoor(), key)
	if rec.Code != http.StatusOK {
		t.Fatalf("fallback GET status %d", rec.Code)
	}
	if rec.Body.String() != string(originBody(key)) {
		t.Fatalf("fallback body %q, want %q", rec.Body.String(), originBody(key))
	}
	if got := c.met.originFetches.Value(); got != 1 {
		t.Fatalf("origin_fetches = %d, want 1", got)
	}
	if got := c.met.originStreamErrs.Value(); got != 0 {
		t.Fatalf("origin_stream_errors = %d, want 0", got)
	}
}

// TestChunkOriginFallbackCountsOnSuccessOnly covers the materialized
// path's fallback accounting the same way.
func TestChunkOriginFallbackCountsOnSuccessOnly(t *testing.T) {
	c, err := New(&failingOrigin{}, WithNodes(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.KillNode("edge-0")
	if _, err := c.Chunk(context.Background(), "vid", 0, 0, 0, false); err == nil {
		t.Fatal("Chunk with a dead origin succeeded")
	}
	if got := c.met.originFetches.Value(); got != 0 {
		t.Fatalf("origin_fetches = %d after a failed fallback, want 0", got)
	}
	if got := c.met.originChunkErrs.Value(); got != 1 {
		t.Fatalf("origin_errors = %d, want 1", got)
	}
}

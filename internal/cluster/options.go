package cluster

import (
	"net/http"
	"time"

	"sperke/internal/dash"
	"sperke/internal/obs"
)

// config is the resolved construction state every option writes into.
// The cluster keeps it after New so AddNode can build later members
// from the same recipe.
type config struct {
	nodes       int
	replication int
	catalog     *dash.Catalog
	nodeBudget  int64
	nodeShards  int
	maxInFlight int
	retryAfter  time.Duration
	health      HealthConfig
	clock       obs.Clock
	obs         *obs.Registry
	wire        bool
	loopback    bool
	transport   http.RoundTripper
	nodeRetry   dash.RetryPolicy

	coalesce      bool
	warmQueueCap  int
	prior         TilePrior
	prewarmFanout int
}

func defaultClusterConfig() config {
	return config{
		nodes:       3,
		replication: 1,
		nodeBudget:  64 << 20,
		nodeShards:  8,
		maxInFlight: 256,
		retryAfter:  time.Second,
		// Failover is the retry: the router's per-edge clients take one
		// shot and let the ranked walk move on, so a dead edge costs one
		// connection refusal, not a backoff ladder.
		nodeRetry:    dash.RetryPolicy{MaxAttempts: -1},
		coalesce:     true,
		warmQueueCap: 256,
	}
}

// TilePrior ranks tiles by crowd viewing probability at a chunk index
// — the seam WithPrewarm consumes. hmp.Heatmap satisfies it (chunk
// index and heatmap interval are the same axis); any other popularity
// source that can answer "which tiles will viewers at this playhead
// want" plugs in the same way.
type TilePrior interface {
	// TopTilesAt returns up to k tile IDs for chunk interval index,
	// most-viewed first, deterministically ordered.
	TopTilesAt(index, k int) []int
}

// Option configures a Cluster built by New. Nil options are ignored;
// sizing options treat non-positive values as "keep the default" so a
// zero Config field bridges cleanly through NewFromConfig.
type Option func(*config)

// WithNodes sets the initial edge count ("edge-0" … "edge-N-1");
// values <= 0 keep the default of 3.
func WithNodes(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.nodes = n
		}
	}
}

// WithReplication sets R, the number of rendezvous owners per key.
// Every served body is written through to the key's other live owners,
// so killing any one owner leaves a warm copy behind and costs zero
// incremental origin fetches. Values <= 0 keep the default of 1 (no
// replication); R larger than the membership clamps per key.
func WithReplication(r int) Option {
	return func(c *config) {
		if r > 0 {
			c.replication = r
		}
	}
}

// WithCatalog gives every node (and the front door) its own
// dash.Server so the cluster can be driven over HTTP. Required for the
// wire forms.
func WithCatalog(cat *dash.Catalog) Option {
	return func(c *config) { c.catalog = cat }
}

// WithNodeBudget caps each edge cache in bytes; values <= 0 keep the
// default of 64 MiB.
func WithNodeBudget(b int64) Option {
	return func(c *config) {
		if b > 0 {
			c.nodeBudget = b
		}
	}
}

// WithNodeShards sets each edge store's shard count; values <= 0 keep
// the default of 8.
func WithNodeShards(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.nodeShards = n
		}
	}
}

// WithMaxInFlight bounds concurrent admitted requests per edge; beyond
// it the edge sheds with 503+Retry-After. Values <= 0 keep the default
// of 256.
func WithMaxInFlight(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxInFlight = n
		}
	}
}

// WithRetryAfter sets the backoff hint attached to sheds; values <= 0
// keep the default of 1s.
func WithRetryAfter(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.retryAfter = d
		}
	}
}

// WithHealth tunes the failure detector (see HealthConfig).
func WithHealth(h HealthConfig) Option {
	return func(c *config) { c.health = h }
}

// WithClock drives breaker cooldowns and probe pacing: *sim.Clock for
// deterministic tests, nil for a fresh obs.NewWall().
func WithClock(clk obs.Clock) Option {
	return func(c *config) { c.clock = clk }
}

// WithObs receives cluster.* instruments; nil creates a private
// registry.
func WithObs(r *obs.Registry) Option {
	return func(c *config) { c.obs = r }
}

// WithWire(true) puts the cluster over the wire: every node binds its
// dash.Server to a real loopback listener and the router reaches it
// through dash.Client — so node death is an actual connection refusal,
// recovery is a re-bind, and re-routed responses proxy as streams.
// Requires WithCatalog.
func WithWire(on bool) Option {
	return func(c *config) { c.wire = on }
}

// WithLoopback is the wire form without sockets: node clients speak
// HTTP through an in-process LoopbackTransport that preserves
// streaming and connection-refused semantics deterministically — what
// the wire chaos tests and benchmarks run on. Implies WithWire.
func WithLoopback() Option {
	return func(c *config) {
		c.wire = true
		c.loopback = true
	}
}

// WithTransport overrides the RoundTripper the router's per-node
// clients ride (node hosts become synthetic names), for fault-wrapped
// or recording transports in tests. A killed node behind a custom
// transport still answers — as a 503 from its down handler — rather
// than refusing the dial; use WithWire or WithLoopback when the
// listener lifecycle itself is under test. Implies WithWire.
func WithTransport(rt http.RoundTripper) Option {
	return func(c *config) {
		if rt != nil {
			c.wire = true
			c.transport = rt
		}
	}
}

// WithCoalescing turns the router-level singleflight on or off. On by
// default: concurrent cold requests for one key — even when the ranked
// walk would spread them across different edges, or push them onto the
// origin fallback — collapse into a single upstream fetch, with late
// arrivals served from the in-flight body (cluster.coalesced counts
// them). Off exists for measurement: the herd experiments quantify
// what coalescing saves by disabling it.
func WithCoalescing(on bool) Option {
	return func(c *config) { c.coalesce = on }
}

// WithWarmQueue bounds the background warm queue (replication writes
// and pre-warms). When full, the oldest queued warm is dropped and
// counted under cluster.warm_drops — warming degrades under pressure
// instead of the serving path slowing down. Values <= 0 keep the
// default of 256.
func WithWarmQueue(depth int) Option {
	return func(c *config) {
		if depth > 0 {
			c.warmQueueCap = depth
		}
	}
}

// WithPrewarm enables playhead-correlated cache warming: every chunk
// the cluster serves enqueues warm candidates for the fanout
// most-probable other tiles at the same chunk index per the crowd
// prior, so the next viewer at that playhead finds its FoV already at
// the edge (§3.2's cross-user correlation, applied to the cache tier).
// Pre-warm syntheses run on the background warm worker and count under
// cluster.prewarm_fetches, never under cluster.origin_fetches — the
// offload ratio keeps meaning "viewers served without waiting on the
// origin". A nil prior or fanout <= 0 leaves pre-warming off.
func WithPrewarm(prior TilePrior, fanout int) Option {
	return func(c *config) {
		if prior != nil && fanout > 0 {
			c.prior = prior
			c.prewarmFanout = fanout
		}
	}
}

// WithNodeRetry overrides the retry policy of the router's per-node
// clients. The default is a single attempt — failover is the retry —
// so only set this when an edge's transient blips should be retried in
// place instead of rerouted.
func WithNodeRetry(p dash.RetryPolicy) Option {
	return func(c *config) { c.nodeRetry = p }
}

// Config sizes a cluster. Zero values mean defaults; only Origin is
// required.
//
// Deprecated: build clusters with New(origin, WithNodes(n), ...); the
// functional options cover everything Config does plus the wire,
// replication and membership controls. Config remains as a compiling
// bridge for pre-options call sites via NewFromConfig.
type Config struct {
	// Nodes is the edge count; 0 defaults to 3.
	Nodes int
	// Origin is the authoritative ChunkSource every edge cache pulls
	// misses from. Required.
	Origin dash.ChunkSource
	// Catalog, when set, gives every node (and the front door) its own
	// dash.Server so the cluster can be driven over HTTP.
	Catalog *dash.Catalog
	// NodeBudgetBytes caps each edge cache; 0 defaults to 64 MiB.
	NodeBudgetBytes int64
	// NodeShards sets each edge store's shard count; 0 defaults to 8.
	NodeShards int
	// MaxInFlight bounds concurrent admitted requests per edge; beyond
	// it the edge sheds with 503+Retry-After. 0 defaults to 256.
	MaxInFlight int
	// RetryAfter is the backoff hint attached to sheds; 0 defaults to 1s.
	RetryAfter time.Duration
	// Health tunes the failure detector (see HealthConfig).
	Health HealthConfig
	// Clock drives breaker cooldowns and probe pacing: *sim.Clock for
	// deterministic tests, nil for a fresh obs.NewWall().
	Clock obs.Clock
	// Obs receives cluster.* instruments; nil creates a private registry.
	Obs *obs.Registry
}

// NewFromConfig builds a cluster from the legacy Config form.
//
// Deprecated: use New with functional options.
func NewFromConfig(cfg Config) (*Cluster, error) {
	return New(cfg.Origin,
		WithNodes(cfg.Nodes),
		WithCatalog(cfg.Catalog),
		WithNodeBudget(cfg.NodeBudgetBytes),
		WithNodeShards(cfg.NodeShards),
		WithMaxInFlight(cfg.MaxInFlight),
		WithRetryAfter(cfg.RetryAfter),
		WithHealth(cfg.Health),
		WithClock(cfg.Clock),
		WithObs(cfg.Obs),
	)
}

package cluster

import (
	"sort"

	"sperke/internal/serve"
)

// rendezvousScore folds one node name and one chunk key through FNV-1a
// into the node's weight for that key. Highest-random-weight routing
// falls out: every router computes the same scores, so placement needs
// no coordination, and removing a node from the live set disturbs only
// the keys that node was winning — every other key keeps its champion.
func rendezvousScore(node string, key serve.ChunkKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(node); i++ {
		step(node[i])
	}
	step(0xff) // separator: ("ab","c…") must not collide with ("a","bc…")
	for i := 0; i < len(key.Video); i++ {
		step(key.Video[i])
	}
	for _, v := range [3]int{key.Quality, key.Tile, key.Index} {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			step(byte(u >> s))
		}
	}
	if key.Layer {
		step(1)
	} else {
		step(0)
	}
	return h
}

// Rank orders nodes for key by rendezvous (highest-random-weight)
// hashing, best first. The ranking is a pure function of (key, node
// set): independent of the input order, stable across processes, and
// minimal-movement under membership change — dropping one node from
// the set promotes each of its keys to that key's next-ranked node and
// moves nothing else. Ties (astronomically unlikely with 64-bit
// scores) break by name so the order stays total.
// Owners returns the key's R rendezvous owners — the Rank prefix —
// clamped to the node set. With replication R>1 these are the caches a
// served body is written through to; removing any single owner leaves
// the key with R-1 surviving owners, all already warm.
func Owners(key serve.ChunkKey, nodes []string, r int) []string {
	ranked := Rank(key, nodes)
	return ranked[:min(r, len(ranked))]
}

func Rank(key serve.ChunkKey, nodes []string) []string {
	type scored struct {
		id string
		s  uint64
	}
	ranked := make([]scored, len(nodes))
	for i, id := range nodes {
		ranked[i] = scored{id: id, s: rendezvousScore(id, key)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].id < ranked[j].id
	})
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.id
	}
	return out
}

package cluster

import (
	"sync"

	"sperke/internal/serve"
)

// Cross-node miss coalescing. Each edge store already collapses a
// same-key herd that lands on ONE node into a single origin synthesis
// (serve.Store's singleflight), but the router can spray a cold herd
// across edges: a request that arrives while its primary's breaker is
// half-open walks to the next-ranked edge, and the origin fallback
// bypasses the edges entirely — so two concurrent cold opens of the
// same key could still cost the origin two syntheses. The coalescer is
// the router-level singleflight that closes that gap: the first
// request for a key becomes the flight leader and does the ranked walk;
// requests arriving while the flight is open attach as followers and
// are served from the leader's body — teed on the way past on the
// streaming path, shared directly on the materialized path — without
// touching an edge or the origin at all.
//
// The one body-less case: a streaming leader that reaches its copy
// loop with no followers attached and no replication targets skips the
// tee (keeping the warm-path serve allocation-flat), and marks the
// flight noTee so later arrivals bypass the coalescer and do their own
// walk. Bypass is safe — the ranked walk is deterministic, so a
// bypasser lands on the same edge, whose store singleflight (or
// now-resident cache entry) still keeps the origin cost at one.

// routeRole is the position a request takes relative to a key's
// in-flight fetch.
type routeRole int

const (
	// roleLead does the ranked walk and publishes the outcome.
	roleLead routeRole = iota
	// roleFollow waits for the leader's body.
	roleFollow
	// roleBypass walks on its own: the open flight is streaming without
	// a tee, so there is no body to attach to.
	roleBypass
)

// routeFlight is one in-flight fetch of a key at the router. body and
// err are written by the leader (under the coalescer's mutex) before
// done closes; followers read them only after <-done, so the channel
// close is the publication barrier. done is made lazily by the first
// follower — a flight nobody attaches to (the common warm-path case)
// costs the leader one struct allocation and no channel.
type routeFlight struct {
	body []byte
	err  error

	// done, followers and noTee are guarded by the coalescer's mutex
	// (body and err are written under it too, but followers may read
	// them unlocked after <-done). noTee is set by a streaming leader
	// the moment it commits to copying without a tee; from then on
	// followers can never be > 0.
	done      chan struct{}
	followers int
	noTee     bool
}

// coalescer is the router's flight table.
type coalescer struct {
	mu      sync.Mutex
	flights map[serve.ChunkKey]*routeFlight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[serve.ChunkKey]*routeFlight)}
}

// enter joins or opens the key's flight and reports the caller's role.
func (co *coalescer) enter(key serve.ChunkKey) (*routeFlight, routeRole) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if f := co.flights[key]; f != nil {
		if f.noTee {
			return f, roleBypass
		}
		if f.done == nil {
			f.done = make(chan struct{})
		}
		f.followers++
		return f, roleFollow
	}
	f := &routeFlight{}
	co.flights[key] = f
	return f, roleLead
}

// finish publishes the leader's outcome and closes the flight. Every
// leader must call it exactly once, on every exit path — a leader that
// panics without finishing would hang its followers forever, so
// leaders run it from a defer.
func (co *coalescer) finish(key serve.ChunkKey, f *routeFlight, body []byte, err error) {
	co.mu.Lock()
	if co.flights[key] == f {
		delete(co.flights, key)
	}
	f.body, f.err = body, err
	done := f.done
	co.mu.Unlock()
	if done != nil {
		close(done)
	}
}

// tryNoTee attempts to commit the flight to the no-tee streaming form.
// It succeeds only while no follower is attached; on success, later
// arrivals bypass. A false return means at least one follower is
// waiting and the leader must tee.
func (co *coalescer) tryNoTee(f *routeFlight) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if f.followers > 0 {
		return false
	}
	f.noTee = true
	return true
}

// detach removes one follower that stopped waiting (its caller
// canceled). The leader keeps running — other followers, or the
// leader's own caller, may still want the body.
func (co *coalescer) detach(f *routeFlight) {
	co.mu.Lock()
	if f.followers > 0 {
		f.followers--
	}
	co.mu.Unlock()
}

// inFlight reports whether a fetch of key is currently open — the
// pre-warmer checks it to avoid racing a synthesis that is about to
// warm the same owners anyway.
func (co *coalescer) inFlight(key serve.ChunkKey) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.flights[key] != nil
}

package cluster

import (
	"context"
	"testing"

	"sperke/internal/hmp"
	"sperke/internal/serve"
	"sperke/internal/sim"
)

// The crowd heatmap is the production TilePrior — pin the structural
// match at compile time so a signature drift in either package fails
// the build, not a deployment.
var _ TilePrior = (*hmp.Heatmap)(nil)

// fakePrior predicts the same tile set at every playhead.
type fakePrior struct{ tiles []int }

func (p *fakePrior) TopTilesAt(index, k int) []int {
	if k > len(p.tiles) {
		k = len(p.tiles)
	}
	return p.tiles[:k]
}

// TestPrewarmFetchesPredictedNeighbors is the tentpole's pre-warm
// acceptance: serving one tile enqueues the crowd prior's neighbor
// tiles, the worker synthesizes each once into its rendezvous owner
// under cluster.prewarm_fetches (never cluster.origin_fetches), and
// the next viewer of those tiles is served warm — the offload ratio
// counts them as origin-free.
func TestPrewarmFetchesPredictedNeighbors(t *testing.T) {
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(2),
		WithPrewarm(&fakePrior{tiles: []int{1, 2}}, 2), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	fetchKey(t, c, key)
	c.DrainWarms()
	if got := c.PrewarmFetches(); got != 2 {
		t.Fatalf("prewarm_fetches = %d, want 2", got)
	}
	if got := c.Prewarms(); got != 2 {
		t.Fatalf("prewarms = %d, want 2", got)
	}
	if got := c.met.originFetches.Value(); got != 1 {
		t.Fatalf("origin_fetches = %d after prewarming, want 1 — speculative fetches must not count", got)
	}
	// Each predicted tile landed in its own rendezvous owner's cache.
	m := c.mem.Load()
	for _, tile := range []int{1, 2} {
		pk := key
		pk.Tile = tile
		owner := m.byID[Rank(pk, m.ids)[0]]
		if !owner.store.Contains(pk) {
			t.Fatalf("tile %d not resident on its owner %s after prewarm", tile, owner.ID())
		}
	}
	// The predicted viewers arrive: warm serves, no new origin work.
	before := origin.count()
	for _, tile := range []int{1, 2} {
		pk := key
		pk.Tile = tile
		if got := fetchKey(t, c, pk); string(got) != string(originBody(pk)) {
			t.Fatalf("prewarmed tile %d body %q, want %q", tile, got, originBody(pk))
		}
	}
	c.DrainWarms()
	if origin.count() != before {
		t.Fatalf("serving prewarmed tiles cost %d extra origin calls, want 0", origin.count()-before)
	}
	if req, fetches := c.OffloadCounts(); req != 3 || fetches != 1 {
		t.Fatalf("OffloadCounts = (%d, %d), want (3, 1)", req, fetches)
	}
}

// TestPrewarmSkipsServedTileAndDuplicates: the prior ranks the served
// tile itself first — it must be skipped, and a key already pending in
// the queue must not be enqueued twice.
func TestPrewarmSkipsServedTileAndDuplicates(t *testing.T) {
	origin := &countingOrigin{}
	c, err := New(origin, WithNodes(1),
		WithPrewarm(&fakePrior{tiles: []int{0, 1}}, 2), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := serve.ChunkKey{Video: "vid", Quality: 0, Tile: 0, Index: 0}
	fetchKey(t, c, key)
	fetchKey(t, c, key) // warm replay re-ranks the same neighbors
	c.DrainWarms()
	if got := c.PrewarmFetches(); got != 1 {
		t.Fatalf("prewarm_fetches = %d, want 1 — tile 0 is being served and tile 1 dedupes", got)
	}
}

// TestWarmQueueDropsOldestWhenFull pins the bounded queue's overload
// behavior: with the worker stuck on one job and the queue at
// capacity, a new enqueue evicts the OLDEST waiting job — the one
// whose playhead relevance has decayed most — counts it under
// cluster.warm_drops, and clears its pending mark so the key can be
// predicted again later.
func TestWarmQueueDropsOldestWhenFull(t *testing.T) {
	keyAt := func(tile int) serve.ChunkKey {
		return serve.ChunkKey{Video: "vid", Quality: 0, Tile: tile, Index: 0}
	}
	origin := newBlockingOrigin(keyAt(0))
	c, err := New(origin, WithNodes(1), WithWarmQueue(2), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Occupy the worker: it dequeues tile 0's pre-warm and blocks inside
	// the origin synthesis, leaving the queue empty.
	c.warmQ.markPending(keyAt(0))
	c.enqueueWarm(warmJob{key: keyAt(0)})
	<-origin.arrived
	// Fill the queue to its cap of 2, then overflow it.
	for tile := 1; tile <= 3; tile++ {
		c.warmQ.markPending(keyAt(tile))
		c.enqueueWarm(warmJob{key: keyAt(tile)})
	}
	if got := c.WarmDrops(); got != 1 {
		t.Fatalf("warm_drops = %d, want 1", got)
	}
	close(origin.release)
	c.DrainWarms()
	if got := c.PrewarmFetches(); got != 3 {
		t.Fatalf("prewarm_fetches = %d, want 3 — tiles 0, 2, 3 execute", got)
	}
	edge := c.Node("edge-0")
	for tile, want := range map[int]bool{0: true, 1: false, 2: true, 3: true} {
		if got := edge.store.Contains(keyAt(tile)); got != want {
			t.Fatalf("tile %d resident = %v, want %v", tile, got, want)
		}
	}
	// The dropped key's pending mark was cleared — it can be re-queued.
	if !c.warmQ.markPending(keyAt(1)) {
		t.Fatal("dropped key still marked pending")
	}
}

// TestDrainWarmsIdleAndCloseIdempotent: DrainWarms on a never-used
// queue returns immediately, Close is idempotent, and jobs enqueued
// after Close are discarded rather than leaked to a dead worker.
func TestDrainWarmsIdleAndCloseIdempotent(t *testing.T) {
	c, err := New(&countingOrigin{}, WithNodes(1), WithClock(sim.NewClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	c.DrainWarms() // must not block: worker never started
	c.Close()
	c.Close() // idempotent
	c.enqueueWarm(warmJob{key: serve.ChunkKey{Video: "vid"}})
	c.DrainWarms() // must not block: queue is stopped
	if got := c.PrewarmFetches(); got != 0 {
		t.Fatalf("job enqueued after Close ran anyway (prewarm_fetches = %d)", got)
	}
	if _, err := c.Chunk(context.Background(), "vid", 0, 0, 0, false); err != nil {
		t.Fatalf("serving after Close failed: %v", err)
	}
}

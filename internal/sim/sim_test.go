package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock(1)
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	c := NewClock(1)
	var got []int
	c.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", c.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	c := NewClock(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	c := NewClock(1)
	var at time.Duration
	c.Schedule(time.Second, func() {
		c.After(500*time.Millisecond, func() { at = c.Now() })
	})
	c.Run()
	if at != 1500*time.Millisecond {
		t.Fatalf("After fired at %v, want 1.5s", at)
	}
}

func TestCancel(t *testing.T) {
	c := NewClock(1)
	fired := false
	e := c.Schedule(time.Second, func() { fired = true })
	e.Cancel()
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIdempotent(t *testing.T) {
	c := NewClock(1)
	e := c.Schedule(time.Second, func() {})
	e.Cancel()
	e.Cancel()
	c.Run() // must not panic
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock(1)
	c.Schedule(time.Second, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.Schedule(time.Millisecond, func() {})
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	c := NewClock(1)
	fired := 0
	c.Schedule(time.Second, func() { fired++ })
	c.Schedule(3*time.Second, func() { fired++ })
	c.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", c.Now())
	}
	c.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunForRelative(t *testing.T) {
	c := NewClock(1)
	c.RunFor(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", c.Now())
	}
	c.RunFor(5 * time.Second)
	if c.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", c.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	c := NewClock(1)
	n := 0
	for i := 1; i <= 10; i++ {
		c.Schedule(time.Duration(i)*time.Second, func() {
			n++
			if n == 3 {
				c.Halt()
			}
		})
	}
	c.Run()
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	// Run can resume afterwards.
	c.Run()
	if n != 10 {
		t.Fatalf("ran %d events after resume, want 10", n)
	}
}

func TestRNGDeterministicAcrossClocks(t *testing.T) {
	a := NewClock(42)
	b := NewClock(42)
	// Create streams in different orders: the values must not depend on
	// creation order.
	_ = a.RNG("other")
	ra := a.RNG("net")
	rb := b.RNG("net")
	for i := 0; i < 100; i++ {
		if ra.Int63() != rb.Int63() {
			t.Fatal("same-name RNG streams diverged across clocks")
		}
	}
}

func TestRNGDistinctStreams(t *testing.T) {
	c := NewClock(42)
	a, b := c.RNG("a"), c.RNG("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams %q and %q look identical (%d/64 equal)", "a", "b", same)
	}
}

func TestRNGSameNameSameStream(t *testing.T) {
	c := NewClock(7)
	if c.RNG("x") != c.RNG("x") {
		t.Fatal("RNG returned different objects for the same name")
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			c.After(time.Millisecond, rec)
		}
	}
	c.After(0, rec)
	c.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if c.Now() != 99*time.Millisecond {
		t.Fatalf("Now = %v, want 99ms", c.Now())
	}
}

func TestPendingCount(t *testing.T) {
	c := NewClock(1)
	for i := 0; i < 5; i++ {
		c.Schedule(time.Duration(i+1)*time.Second, func() {})
	}
	if c.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", c.Pending())
	}
	c.Step()
	if c.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", c.Pending())
	}
}

// Property: for any set of delays, Run visits events in nondecreasing
// time order and ends at the max delay.
func TestPropertyEventsMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock(3)
		var last time.Duration = -1
		ok := true
		var maxAt time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			if at > maxAt {
				maxAt = at
			}
			c.Schedule(at, func() {
				if c.Now() < last {
					ok = false
				}
				last = c.Now()
			})
		}
		c.Run()
		if len(delays) > 0 && c.Now() != maxAt {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	c := NewClock(1)
	fired := false
	c.Schedule(time.Second, func() {
		c.After(-time.Hour, func() { fired = true })
	})
	c.Run()
	if !fired {
		t.Fatal("After with negative delay never fired")
	}
}

package sim_test

import (
	"fmt"
	"time"

	"sperke/internal/sim"
)

// ExampleClock shows the kernel every substrate runs on: schedule,
// run, observe deterministic virtual time.
func ExampleClock() {
	clock := sim.NewClock(1)
	clock.After(2*time.Second, func() {
		fmt.Println("chunk deadline at", clock.Now())
	})
	clock.Schedule(time.Second, func() {
		fmt.Println("fetch completes at", clock.Now())
	})
	clock.Run()
	// Output:
	// fetch completes at 1s
	// chunk deadline at 2s
}

// Package sim provides a deterministic discrete-event simulation kernel
// used by every Sperke substrate that needs virtual time: the network
// emulator, the streaming session loop, the live-broadcast pipeline, and
// the player pipeline.
//
// The kernel is intentionally small: a virtual clock, a priority queue of
// timestamped events, and seeded random-number streams. Everything above
// it (links, players, servers) is expressed as events scheduled on a
// *Clock. Running the same scenario with the same seed produces
// byte-for-byte identical results, which is what makes the experiment
// harness reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a unit of scheduled work. Events run in timestamp order;
// events with equal timestamps run in scheduling order (FIFO), which
// keeps the simulation deterministic without requiring callers to
// tie-break.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clock is a virtual clock driving a discrete-event simulation. The zero
// value is not usable; create one with NewClock.
type Clock struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rngs   map[string]*rand.Rand
	seed   int64
	halted bool
}

// NewClock returns a clock at virtual time zero whose random streams are
// derived from seed.
func NewClock(seed int64) *Clock {
	return &Clock{rngs: make(map[string]*rand.Rand), seed: seed}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Seed reports the seed the clock's random streams derive from.
func (c *Clock) Seed() int64 { return c.seed }

// RNG returns the named deterministic random stream, creating it on
// first use. Distinct names give independent streams; the same name
// always gives the same stream for a given clock seed, regardless of the
// order streams are created in.
func (c *Clock) RNG(name string) *rand.Rand {
	if r, ok := c.rngs[name]; ok {
		return r
	}
	// Derive a per-stream seed from the clock seed and the stream name
	// with a simple FNV-1a fold: stable across runs and Go versions.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(c.seed ^ int64(h)))
	c.rngs[name] = r
	return r
}

// Schedule runs fn at the given absolute virtual time. Scheduling in the
// past (before Now) is an error in the caller; the kernel panics to
// surface it immediately rather than silently reordering time.
func (c *Clock) Schedule(at time.Duration, fn func()) *Event {
	if at < c.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, c.now))
	}
	e := &Event{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After runs fn after delay d, like time.AfterFunc on virtual time.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.Schedule(c.now+d, fn)
}

// Halt stops the currently executing Run/RunUntil after the current
// event returns.
func (c *Clock) Halt() { c.halted = true }

// Pending reports the number of events waiting to fire (including
// cancelled events not yet drained).
func (c *Clock) Pending() int { return len(c.queue) }

// Step fires the single next event, advancing time to it. It reports
// whether an event fired.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.dead {
			continue
		}
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
func (c *Clock) Run() {
	c.halted = false
	for !c.halted && c.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, advancing the clock
// to exactly deadline afterwards even if no event landed on it.
func (c *Clock) RunUntil(deadline time.Duration) {
	c.halted = false
	for !c.halted {
		if len(c.queue) == 0 {
			break
		}
		// Peek: the heap root is the earliest event.
		if c.queue[0].at > deadline {
			break
		}
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// RunFor advances the clock by d, firing everything that falls inside.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

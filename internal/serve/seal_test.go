package serve

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"

	"sperke/internal/obs"
)

// appendSynthFor builds a deterministic AppendSynth whose output is a
// pure function of the key, so tests can recompute the expected body.
func appendSynthFor(size int) AppendSynth {
	return func(dst []byte, k ChunkKey) ([]byte, error) {
		b := byte(k.Index*31 + k.Tile*7 + k.Quality)
		for i := 0; i < size; i++ {
			dst = append(dst, b+byte(i))
		}
		return dst, nil
	}
}

// TestStoreBodiesSealed is the PR 5 aliasing regression test: the
// cache hands out sealed exact-size copies, so a caller appending to a
// returned body reallocates instead of scribbling over the next
// reader's bytes — and the pooled scratch the miss path built into
// never aliases what Get returns.
func TestStoreBodiesSealed(t *testing.T) {
	st := NewAppendStore(appendSynthFor(512), StoreConfig{Shards: 2, BudgetBytes: 1 << 20})
	k := key(3)
	body, err := st.Get(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != cap(body) {
		t.Fatalf("cached body not sealed: len %d cap %d", len(body), cap(body))
	}
	want := append([]byte(nil), body...)

	// An append through the returned slice must not reach the cache.
	_ = append(body, 0xde, 0xad)
	// Neither may an in-place write... (callers must not do this, but
	// the test needs an untouched pristine copy to prove sealing; write
	// through a second fetch instead of the one we compare.)
	again, err := st.Get(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("cached body changed after caller append")
	}

	// The cold build went through pooled scratch; a second key must not
	// alias the first body's memory (the first is sealed, the scratch
	// recycled). Mutating the scratch-built second body's backing array
	// through append must leave the first intact.
	b2, err := st.Get(context.Background(), key(4))
	if err != nil {
		t.Fatal(err)
	}
	_ = append(b2[:0:0], 0xff)
	if got, _ := st.Get(context.Background(), k); !bytes.Equal(got, want) {
		t.Fatal("first body corrupted by second synthesis")
	}
}

// TestConcurrentReadersStableChecksums hammers a store small enough to
// evict constantly (so the scratch pool recycles under load) with
// parallel readers, checksumming every body against its expected
// value. Run under -race this is the aliasing smoking gun: any reader
// observing a body mid-recycle fails the checksum or trips the race
// detector.
func TestConcurrentReadersStableChecksums(t *testing.T) {
	const bodySize = 1024
	synth := appendSynthFor(bodySize)
	// Budget holds only ~8 of 64 keys: constant eviction + resynthesis.
	st := NewAppendStore(synth, StoreConfig{Shards: 4, BudgetBytes: 8 * bodySize})

	wantSum := make(map[ChunkKey]uint32)
	for i := 0; i < 64; i++ {
		body, err := synth(nil, key(i))
		if err != nil {
			t.Fatal(err)
		}
		wantSum[key(i)] = crc32.ChecksumIEEE(body)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := key((g*13 + i*7) % 64)
				body, err := st.Get(context.Background(), k)
				if err != nil {
					errCh <- err
					return
				}
				if sum := crc32.ChecksumIEEE(body); sum != wantSum[k] {
					errCh <- fmt.Errorf("key %+v: checksum %08x, want %08x", k, sum, wantSum[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestAppendStoreMatchesPlainStore: routing synthesis through pooled
// scratch and sealing must not change a single byte versus the plain
// Synth path.
func TestAppendStoreMatchesPlainStore(t *testing.T) {
	as := appendSynthFor(256)
	plain := NewStore(func(k ChunkKey) ([]byte, error) { return as(nil, k) }, StoreConfig{Shards: 2})
	pooled := NewAppendStore(as, StoreConfig{Shards: 2})
	for i := 0; i < 8; i++ {
		a, err := plain.Get(context.Background(), key(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := pooled.Get(context.Background(), key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("key %d: pooled body differs from plain", i)
		}
	}
}

// TestWarmHitZeroAlloc pins the warm path: a cache hit performs no
// allocations at all.
func TestWarmHitZeroAlloc(t *testing.T) {
	st := NewAppendStore(appendSynthFor(512), StoreConfig{Shards: 2, BudgetBytes: 1 << 20})
	ctx := context.Background()
	k := key(1)
	if _, err := st.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := st.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Get: %v allocs/op, want 0", allocs)
	}
}

// TestScratchPoolRecycles reads the pool's own counters: the first
// miss mints a buffer, and later misses recycle it. sync.Pool may shed
// a Put (GC, or the race detector's deliberate random drops), so
// recycling is asserted as "a hit within a few cold builds", not on
// the second one.
func TestScratchPoolRecycles(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewAppendStore(appendSynthFor(128), StoreConfig{Shards: 1, BudgetBytes: 1 << 20, Obs: reg})
	ctx := context.Background()
	if _, err := st.Get(ctx, key(0)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve.store.pool_misses").Value(); got != 1 {
		t.Fatalf("after first cold build: pool_misses = %d, want 1", got)
	}
	for i := 1; i < 32 && reg.Counter("serve.store.pool_hits").Value() == 0; i++ {
		if _, err := st.Get(ctx, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Counter("serve.store.pool_hits").Value() == 0 {
		t.Fatal("no pool hit across 32 cold builds")
	}
}

// TestAppendSynthErrorReturnsScratch: a failed synthesis still repays
// the pool and caches nothing. Only the error path ever Puts here, so
// a later pool hit proves the repayment; sync.Pool may shed a Put
// (GC, race-detector drops), hence the retry loop.
func TestAppendSynthErrorReturnsScratch(t *testing.T) {
	reg := obs.NewRegistry()
	boom := fmt.Errorf("boom")
	st := NewAppendStore(func(dst []byte, k ChunkKey) ([]byte, error) {
		return dst, boom
	}, StoreConfig{Shards: 1, Obs: reg})
	ctx := context.Background()
	if _, err := st.Get(ctx, key(0)); err == nil {
		t.Fatal("error not propagated")
	}
	if st.Contains(key(0)) {
		t.Fatal("failed synthesis cached")
	}
	for i := 1; i < 32 && reg.Counter("serve.store.pool_hits").Value() == 0; i++ {
		if _, err := st.Get(ctx, key(i)); err == nil {
			t.Fatal("error not propagated")
		}
	}
	if reg.Counter("serve.store.pool_hits").Value() == 0 {
		t.Fatal("scratch not recycled after error path: no pool hit across 32 failed builds")
	}
}
